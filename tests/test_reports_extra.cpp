// Tests for the op-level roofline report, hardware sensitivities and the
// Chrome-trace exporter.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "report/op_report.hpp"
#include "report/sensitivity.hpp"
#include "sim/trace_export.hpp"

namespace tfpe {
namespace {

parallel::ParallelConfig fig1_optimum() {
  parallel::ParallelConfig c;
  c.strategy = parallel::TpStrategy::TP1D;
  c.n1 = 8;
  c.np = 64;
  c.nd = 32;
  c.microbatches = 128;
  c.nvs1 = 8;
  return c;
}

TEST(OpReport, ListsEveryOpWithBoundness) {
  std::ostringstream os;
  report::print_op_report(os, model::gpt3_1t(),
                          hw::make_system(hw::GpuGeneration::B200, 8, 16384),
                          fig1_optimum(), 4096);
  const std::string s = os.str();
  for (const char* op : {"ln1", "qkv_proj", "attention", "out_proj", "gelu",
                         "mlp_fc1", "mlp_fc2"}) {
    EXPECT_NE(s.find(op), std::string::npos) << op;
  }
  EXPECT_NE(s.find("compute"), std::string::npos);
  EXPECT_NE(s.find("memory"), std::string::npos);
  EXPECT_NE(s.find("block totals"), std::string::npos);
}

TEST(OpReport, RejectsInvalidConfig) {
  std::ostringstream os;
  auto cfg = fig1_optimum();
  cfg.np = 96;
  EXPECT_THROW(
      report::print_op_report(os, model::gpt3_1t(),
                              hw::make_system(hw::GpuGeneration::B200, 8, 16384),
                              cfg, 4096),
      std::invalid_argument);
}

TEST(Sensitivity, TensorFlopsDominateForGpt) {
  // Paper Fig. A5a: FLOP rate is the primary factor for GPT3-1T.
  const auto sens = report::hardware_sensitivities(
      model::gpt3_175b(), hw::make_system(hw::GpuGeneration::B200, 8, 256),
      parallel::TpStrategy::TP1D, 512);
  double tensor = 0, hbm_bw = 0;
  for (const auto& s : sens) {
    if (s.parameter == "tensor_flops") tensor = s.elasticity;
    if (s.parameter == "hbm_bandwidth") hbm_bw = s.elasticity;
  }
  EXPECT_LT(tensor, -0.4);           // strongly negative: faster cores help
  EXPECT_GT(hbm_bw, tensor);         // memory bandwidth matters less
  EXPECT_EQ(sens.size(), 6u);
}

TEST(Sensitivity, ElasticitiesAreNonPositive) {
  // More of any resource never slows the optimum down.
  const auto sens = report::hardware_sensitivities(
      model::gpt3_175b(), hw::make_system(hw::GpuGeneration::A100, 4, 128),
      parallel::TpStrategy::TP1D, 256);
  for (const auto& s : sens) {
    if (std::isnan(s.elasticity)) continue;
    EXPECT_LE(s.elasticity, 1e-9) << s.parameter;
  }
}

TEST(Sensitivity, RejectsBadStep) {
  EXPECT_THROW(report::hardware_sensitivities(
                   model::gpt3_175b(),
                   hw::make_system(hw::GpuGeneration::B200, 8, 64),
                   parallel::TpStrategy::TP1D, 64, 1.5),
               std::invalid_argument);
}

TEST(ChromeTrace, EmitsOneEventPerTask) {
  const auto trace = sim::simulate_pipeline({4, 8, Seconds(1.0), Seconds(2.0), Seconds(0.1)});
  ASSERT_EQ(trace.tasks.size(), 4u * 16u);
  std::ostringstream os;
  sim::write_chrome_trace(os, trace);
  const std::string s = os.str();
  // JSON array with one "ph": "X" event per task.
  std::size_t events = 0, pos = 0;
  while ((pos = s.find("\"ph\": \"X\"", pos)) != std::string::npos) {
    ++events;
    ++pos;
  }
  EXPECT_EQ(events, trace.tasks.size());
  EXPECT_EQ(s.front(), '[');
  EXPECT_NE(s.find("\"tid\": 3"), std::string::npos);  // last stage present
  EXPECT_NE(s.find("\"name\": \"B7\""), std::string::npos);
}

TEST(ChromeTrace, TasksAreConsistentWithSchedule) {
  const auto trace = sim::simulate_pipeline({2, 4, Seconds(1.0), Seconds(1.0), Seconds(0.0)});
  for (const auto& t : trace.tasks) {
    EXPECT_GE(t.start, 0.0);
    EXPECT_GT(t.end, t.start);
    EXPECT_LE(t.end, trace.completion_time + 1e-12);
  }
  // Forward of microbatch 0 on stage 1 starts only after stage 0 finishes it.
  double f0_s0_end = -1, f0_s1_start = -1;
  for (const auto& t : trace.tasks) {
    if (!t.backward && t.microbatch == 0 && t.stage == 0) f0_s0_end = t.end;
    if (!t.backward && t.microbatch == 0 && t.stage == 1) f0_s1_start = t.start;
  }
  EXPECT_GE(f0_s1_start, f0_s0_end);
}

TEST(ChromeTrace, FileWriter) {
  const auto trace = sim::simulate_pipeline({2, 2, Seconds(1.0), Seconds(1.0), Seconds(0.0)});
  const std::string path = "tfpe_trace_test.json";
  sim::write_chrome_trace_file(path, trace);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
  EXPECT_THROW(sim::write_chrome_trace_file("/nonexistent/dir/x.json", trace),
               std::runtime_error);
}

}  // namespace
}  // namespace tfpe
