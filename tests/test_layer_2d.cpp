// Tests for the 2D tensor-parallel layer builder against paper Table II.

#include <gtest/gtest.h>

#include "parallel/layer_builder.hpp"

namespace tfpe::parallel {
namespace {

model::TransformerConfig tiny() {
  model::TransformerConfig m{"tiny", 256, 128, 8, 4, 512};
  m.validate();
  return m;
}

ParallelConfig cfg_2d(std::int64_t n1, std::int64_t n2) {
  ParallelConfig c;
  c.strategy = TpStrategy::TP2D;
  c.n1 = n1;
  c.n2 = n2;
  return c;
}

TEST(Layer2D, Tp1VolumeScalesWithN2) {
  // Table II: the LN AllGathers and projection ReduceScatters move
  // b*(l/n2)*e — doubling n2 halves the TP1 volume.
  const auto m = tiny();
  const double v1 = build_layer_2d(m, cfg_2d(2, 2), 4)
                        .fwd_comm_bytes(ops::CommGroup::TP1)
                        .value();
  const double v2 = build_layer_2d(m, cfg_2d(2, 4), 4)
                        .fwd_comm_bytes(ops::CommGroup::TP1)
                        .value();
  EXPECT_DOUBLE_EQ(v1, 2.0 * v2);
}

TEST(Layer2D, KvGatherVolumeScalesWithN1) {
  // The two K/V AllGathers move b*l*(e/n1) each over the n2 group.
  const auto m = tiny();
  const std::int64_t B = 4;
  const double expected = 2.0 * (2.0 * B * m.seq_len * m.embed / 2);
  EXPECT_DOUBLE_EQ(build_layer_2d(m, cfg_2d(2, 4), B)
                       .fwd_comm_bytes(ops::CommGroup::TP2)
                       .value(),
                   expected);
  EXPECT_DOUBLE_EQ(build_layer_2d(m, cfg_2d(4, 4), B)
                       .fwd_comm_bytes(ops::CommGroup::TP2)
                       .value(),
                   expected / 2.0);
}

TEST(Layer2D, ReducesToTableIVolumesWhenN2IsOne) {
  // With n2 == 1 the TP1 collectives carry the full b*l*e, as in 1D TP.
  const auto m = tiny();
  const std::int64_t B = 2;
  const LayerCost lc1d = build_layer_1d(m, [] {
    ParallelConfig c;
    c.strategy = TpStrategy::TP1D;
    c.n1 = 4;
    return c;
  }(), B);
  const LayerCost lc2d = build_layer_2d(m, cfg_2d(4, 1), B);
  EXPECT_DOUBLE_EQ(lc1d.fwd_comm_bytes(ops::CommGroup::TP1).value(),
                   lc2d.fwd_comm_bytes(ops::CommGroup::TP1).value());
  // FLOPs also agree (same shards).
  EXPECT_NEAR(lc1d.fwd_flops().value(), lc2d.fwd_flops().value(), 1e-6 * lc1d.fwd_flops().value());
}

TEST(Layer2D, WeightsSharedAcrossN2) {
  // weight_params depends on n1 only — the paper's "redundant memory" note.
  const auto m = tiny();
  EXPECT_DOUBLE_EQ(build_layer_2d(m, cfg_2d(4, 1), 1).weight_params,
                   build_layer_2d(m, cfg_2d(4, 8), 1).weight_params);
  EXPECT_TRUE(build_layer_2d(m, cfg_2d(4, 2), 1).dp_group_includes_tp2);
}

TEST(Layer2D, ActivationStorageShrinksWithN2) {
  const auto m = tiny();
  const double s1 = build_layer_2d(m, cfg_2d(4, 1), 2).stored_bytes().value();
  const double s4 = build_layer_2d(m, cfg_2d(4, 4), 2).stored_bytes().value();
  EXPECT_GT(s1, 2.0 * s4);  // roughly linear in 1/n2
}

TEST(Layer2D, FlopsConservedAcrossGrid) {
  const auto m = tiny();
  const double total =
      build_layer_2d(m, cfg_2d(1, 1), 2).fwd_flops().value();
  const double sharded =
      build_layer_2d(m, cfg_2d(4, 2), 2).fwd_flops().value();
  EXPECT_NEAR(total, 8.0 * sharded, 0.02 * total);
}

TEST(Layer2D, AttentionQueriesShardedKeysFull) {
  const auto m = tiny();
  const LayerCost lc = build_layer_2d(m, cfg_2d(2, 4), 1);
  const ops::Op* att = nullptr;
  for (const auto& op : lc.ops) {
    if (op.name == "attention") att = &op;
  }
  ASSERT_NE(att, nullptr);
  // Logit/Attend FLOPs: 2 matmuls over (l/n2) x l x eh for h/n1 heads, plus
  // the fused softmax. Check the l x (l/n2) asymmetry is present: halving
  // only the query length (n2: 4 -> 8 invalid for l=256? use ratio check).
  const LayerCost wide = build_layer_2d(m, cfg_2d(2, 2), 1);
  const ops::Op* att_wide = nullptr;
  for (const auto& op : wide.ops) {
    if (op.name == "attention") att_wide = &op;
  }
  ASSERT_NE(att_wide, nullptr);
  EXPECT_NEAR(att_wide->fwd_flops.value(), 2.0 * att->fwd_flops.value(),
              0.01 * att_wide->fwd_flops.value());
}

TEST(Layer2D, PipelineBoundaryShardedByGrid) {
  const auto m = tiny();
  const std::int64_t B = 2;
  EXPECT_DOUBLE_EQ(build_layer_2d(m, cfg_2d(2, 4), B).pp_boundary_bytes.value(),
                   2.0 * B * m.seq_len * m.embed / 8);
}

}  // namespace
}  // namespace tfpe::parallel
