// Tests for the 1D tensor-parallel layer builder against paper Table I.

#include <gtest/gtest.h>

#include "parallel/layer_builder.hpp"

namespace tfpe::parallel {
namespace {

model::TransformerConfig tiny() {
  model::TransformerConfig m{"tiny", 256, 128, 8, 4, 512};
  m.validate();
  return m;
}

ParallelConfig cfg_1d(std::int64_t nt) {
  ParallelConfig c;
  c.strategy = TpStrategy::TP1D;
  c.n1 = nt;
  return c;
}

TEST(Layer1D, CommVolumeIndependentOfNt) {
  // Table I: every collective moves b*l*e regardless of nt.
  const auto m = tiny();
  const LayerCost a = build_layer_1d(m, cfg_1d(2), 4);
  const LayerCost b = build_layer_1d(m, cfg_1d(8), 4);
  EXPECT_DOUBLE_EQ(a.fwd_comm_bytes(ops::CommGroup::TP1).value(),
                   b.fwd_comm_bytes(ops::CommGroup::TP1).value());
}

TEST(Layer1D, FourCollectivesOfBle) {
  // 2 AllGathers (LN1, LN2) + 2 ReduceScatters (proj, fc2), each b*l*e.
  const auto m = tiny();
  const std::int64_t B = 4;
  const LayerCost lc = build_layer_1d(m, cfg_1d(2), B);
  const double ble = 2.0 * B * m.seq_len * m.embed;  // bytes
  EXPECT_DOUBLE_EQ(lc.fwd_comm_bytes(ops::CommGroup::TP1).value(),
                   4.0 * ble);
  int ag = 0, rs = 0;
  for (const auto& op : lc.ops) {
    for (const auto& r : op.fwd_comm) {
      if (r.collective == ops::Collective::AllGather) ++ag;
      if (r.collective == ops::Collective::ReduceScatter) ++rs;
    }
  }
  EXPECT_EQ(ag, 2);
  EXPECT_EQ(rs, 2);
}

TEST(Layer1D, NoTp2Communication) {
  const LayerCost lc = build_layer_1d(tiny(), cfg_1d(4), 2);
  EXPECT_DOUBLE_EQ(lc.fwd_comm_bytes(ops::CommGroup::TP2).value(), 0.0);
}

TEST(Layer1D, FlopsConservedAcrossPartitioning) {
  // Total matmul FLOPs across all nt GPUs must not depend on nt (modulo the
  // -1 in (2k-1), negligible here).
  const auto m = tiny();
  const LayerCost a = build_layer_1d(m, cfg_1d(1), 2);
  const LayerCost b = build_layer_1d(m, cfg_1d(8), 2);
  EXPECT_NEAR(a.fwd_flops().value(), 8.0 * b.fwd_flops().value(), 0.01 * a.fwd_flops().value());
}

TEST(Layer1D, WeightShardScalesWithNt) {
  const auto m = tiny();
  const double w1 = build_layer_1d(m, cfg_1d(1), 1).weight_params;
  const double w8 = build_layer_1d(m, cfg_1d(8), 1).weight_params;
  // LN params (4e) stay replicated; matrices shard by 8.
  const double e = static_cast<double>(m.embed);
  const double f = static_cast<double>(m.hidden);
  EXPECT_NEAR(w8, (4 * e * e + 2 * e * f + 5 * e + f) / 8.0 + 4 * e, 1.0);
  EXPECT_GT(w1, w8);
}

TEST(Layer1D, UnshardedWeightsMatchModelCount) {
  const auto m = tiny();
  const double w = build_layer_1d(m, cfg_1d(1), 1).weight_params;
  EXPECT_DOUBLE_EQ(w, static_cast<double>(m.params_per_layer()));
}

TEST(Layer1D, ReplicatedActivationsDominateStorage) {
  // The gathered X~ and Y~ are replicated: stored activation bytes contain
  // the full 2 * b*l*e twice, independent of nt.
  const auto m = tiny();
  const std::int64_t B = 2;
  const double full = 2.0 * B * m.seq_len * m.embed;
  const LayerCost lc = build_layer_1d(m, cfg_1d(8), B);
  EXPECT_GE(lc.stored_bytes().value(), 2.0 * full);
}

TEST(Layer1D, StoredBytesDecreaseWithNt) {
  const auto m = tiny();
  const double s2 = build_layer_1d(m, cfg_1d(2), 2).stored_bytes().value();
  const double s8 = build_layer_1d(m, cfg_1d(8), 2).stored_bytes().value();
  EXPECT_LT(s8, s2);
}

TEST(Layer1D, PipelineBoundaryIsShardedActivation) {
  const auto m = tiny();
  const std::int64_t B = 4;
  const LayerCost lc = build_layer_1d(m, cfg_1d(4), B);
  EXPECT_DOUBLE_EQ(lc.pp_boundary_bytes.value(), 2.0 * B * m.seq_len * m.embed / 4);
}

TEST(Layer1D, DpGroupExcludesTp2) {
  EXPECT_FALSE(build_layer_1d(tiny(), cfg_1d(2), 1).dp_group_includes_tp2);
}

TEST(Layer1D, BackwardCostsExceedForward) {
  const LayerCost lc = build_layer_1d(tiny(), cfg_1d(2), 2);
  EXPECT_GT(lc.bwd_flops().value(), lc.fwd_flops().value());
  EXPECT_LT(lc.bwd_flops().value(), 3.0 * lc.fwd_flops().value());
}

TEST(Layer1D, OpSequenceShape) {
  const LayerCost lc = build_layer_1d(tiny(), cfg_1d(2), 1);
  ASSERT_EQ(lc.ops.size(), 12u);
  EXPECT_EQ(lc.ops[0].name, "ln1");
  EXPECT_EQ(lc.ops[1].name, "qkv_proj");
  EXPECT_EQ(lc.ops[2].name, "attention");
  EXPECT_EQ(lc.ops[3].name, "out_proj");
  EXPECT_EQ(lc.ops.back().name, "mlp_residual");
}

}  // namespace
}  // namespace tfpe::parallel
