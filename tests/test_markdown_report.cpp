// Tests for the Markdown report generator.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "report/markdown_report.hpp"

namespace tfpe::report {
namespace {

LabeledResult feasible_row() {
  parallel::ParallelConfig cfg;
  cfg.strategy = parallel::TpStrategy::TP1D;
  cfg.n1 = 8;
  cfg.np = 64;
  cfg.nd = 32;
  cfg.microbatches = 128;
  cfg.nvs1 = 8;
  return {"opt", core::evaluate(model::gpt3_1t(),
                                hw::make_system(hw::GpuGeneration::B200, 8,
                                                16384),
                                cfg, 4096)};
}

LabeledResult infeasible_row() {
  core::EvalResult r;
  r.feasible = false;
  r.reason = "exceeds HBM capacity";
  return {"bad", r};
}

TEST(MarkdownReport, ContainsAllSections) {
  std::ostringstream os;
  write_markdown_report(os, "My plan", {"line one", "line two"},
                        {feasible_row()});
  const std::string s = os.str();
  EXPECT_NE(s.find("# My plan"), std::string::npos);
  EXPECT_NE(s.find("> line one"), std::string::npos);
  EXPECT_NE(s.find("## Configurations"), std::string::npos);
  EXPECT_NE(s.find("## Iteration time"), std::string::npos);
  EXPECT_NE(s.find("## Memory per GPU"), std::string::npos);
  EXPECT_NE(s.find("1D TP"), std::string::npos);
}

TEST(MarkdownReport, TablesAreWellFormed) {
  std::ostringstream os;
  write_markdown_report(os, "t", {}, {feasible_row()});
  std::istringstream in(os.str());
  std::string line;
  // Every table row must start and end with '|' and the rule rows must
  // follow a header immediately.
  bool prev_was_header = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != '|') {
      prev_was_header = false;
      continue;
    }
    EXPECT_EQ(line.back(), '|') << line;
    if (line.find("---") != std::string::npos) {
      EXPECT_TRUE(prev_was_header) << "rule without header: " << line;
    }
    prev_was_header = line.find("---") == std::string::npos;
  }
}

TEST(MarkdownReport, MarksInfeasibleRows) {
  std::ostringstream os;
  write_markdown_report(os, "t", {}, {infeasible_row()});
  EXPECT_NE(os.str().find("infeasible: exceeds HBM capacity"),
            std::string::npos);
}

TEST(MarkdownReport, PercentagesPresent) {
  std::ostringstream os;
  write_markdown_report(os, "t", {}, {feasible_row()});
  EXPECT_NE(os.str().find('%'), std::string::npos);
}

TEST(MarkdownReport, FileWriter) {
  const std::string path = "tfpe_md_test.md";
  write_markdown_report_file(path, "t", {}, {feasible_row()});
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
  EXPECT_THROW(
      write_markdown_report_file("/nonexistent/x.md", "t", {}, {}),
      std::runtime_error);
}

}  // namespace
}  // namespace tfpe::report
