// Unit tests for the hardware presets (paper Table A3) and system builders.

#include <gtest/gtest.h>

#include "hw/system.hpp"
#include "util/units.hpp"

namespace tfpe::hw {
namespace {

TEST(GpuPresets, TableA3Values) {
  const GpuSpec a = a100();
  EXPECT_DOUBLE_EQ(a.tensor_flops.value(), 312e12);
  EXPECT_DOUBLE_EQ(a.vector_flops.value(), 78e12);
  EXPECT_DOUBLE_EQ(a.hbm_bandwidth.value(), 1555e9);
  EXPECT_DOUBLE_EQ(a.hbm_capacity.value(), 80e9);
  EXPECT_DOUBLE_EQ(a.flops_latency.value(), 2e-5);

  const GpuSpec h = h200();
  EXPECT_DOUBLE_EQ(h.tensor_flops.value(), 990e12);
  EXPECT_DOUBLE_EQ(h.hbm_capacity.value(), 141e9);

  const GpuSpec b = b200();
  EXPECT_DOUBLE_EQ(b.tensor_flops.value(), 2500e12);
  EXPECT_DOUBLE_EQ(b.vector_flops.value(), 339e12);
  EXPECT_DOUBLE_EQ(b.hbm_bandwidth.value(), 8000e9);
  EXPECT_DOUBLE_EQ(b.hbm_capacity.value(), 192e9);
}

TEST(GpuPresets, GenerationsImproveMonotonically) {
  const GpuSpec gens[] = {a100(), h200(), b200()};
  for (int i = 1; i < 3; ++i) {
    EXPECT_GT(gens[i].tensor_flops.value(), gens[i - 1].tensor_flops.value());
    EXPECT_GT(gens[i].vector_flops.value(), gens[i - 1].vector_flops.value());
    EXPECT_GT(gens[i].hbm_bandwidth.value(), gens[i - 1].hbm_bandwidth.value());
    EXPECT_GT(gens[i].hbm_capacity.value(), gens[i - 1].hbm_capacity.value());
  }
}

TEST(GpuPresets, WithMemoryAndCompute) {
  const GpuSpec g = b200()
                        .with_memory(Bytes(1e12), BytesPerSec(2e12))
                        .with_compute(FlopsPerSec(1e15), FlopsPerSec(1e14));
  EXPECT_DOUBLE_EQ(g.hbm_capacity.value(), 1e12);
  EXPECT_DOUBLE_EQ(g.hbm_bandwidth.value(), 2e12);
  EXPECT_DOUBLE_EQ(g.tensor_flops.value(), 1e15);
  EXPECT_DOUBLE_EQ(g.vector_flops.value(), 1e14);
  EXPECT_EQ(g.name, "B200");  // identity preserved
}

TEST(NetworkPresets, TableA3Values) {
  const NetworkSpec a = network_preset(GpuGeneration::A100);
  EXPECT_DOUBLE_EQ(a.nvs_bandwidth.value(), 300e9);
  EXPECT_DOUBLE_EQ(a.ib_bandwidth.value(), 25e9);
  EXPECT_DOUBLE_EQ(a.nvs_latency.value(), 2.5e-6);
  EXPECT_DOUBLE_EQ(a.ib_latency.value(), 5e-6);

  const NetworkSpec b = network_preset(GpuGeneration::B200);
  EXPECT_DOUBLE_EQ(b.nvs_bandwidth.value(), 900e9);
  EXPECT_DOUBLE_EQ(b.ib_bandwidth.value(), 100e9);
}

TEST(NetworkPresets, EfficiencyDeratesBandwidth) {
  const NetworkSpec n = network_preset(GpuGeneration::B200);
  EXPECT_DOUBLE_EQ(n.effective_nvs_bandwidth().value(), 0.7 * 900e9);
  EXPECT_DOUBLE_EQ(n.effective_ib_bandwidth_per_gpu().value(), 0.7 * 100e9);
}

TEST(SystemConfig, MakeSystem) {
  const SystemConfig sys = make_system(GpuGeneration::H200, 8, 2048);
  EXPECT_EQ(sys.gpu.name, "H200");
  EXPECT_EQ(sys.nvs_domain, 8);
  EXPECT_EQ(sys.n_gpus, 2048);
  EXPECT_DOUBLE_EQ(sys.net.nvs_bandwidth.value(), 450e9);
  EXPECT_NE(sys.describe().find("H200"), std::string::npos);
}

TEST(SystemConfig, Perlmutter) {
  const SystemConfig sys = perlmutter(512);
  EXPECT_EQ(sys.gpu.name, "A100");
  EXPECT_EQ(sys.nvs_domain, 4);
  EXPECT_EQ(sys.n_gpus, 512);
}

TEST(GpuGeneration, ToString) {
  EXPECT_EQ(to_string(GpuGeneration::A100), "A100");
  EXPECT_EQ(to_string(GpuGeneration::H200), "H200");
  EXPECT_EQ(to_string(GpuGeneration::B200), "B200");
}

}  // namespace
}  // namespace tfpe::hw
