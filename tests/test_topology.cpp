// Hierarchical fabric topology layer: golden bitwise equivalence against
// the frozen legacy two-level closed forms, builders, placements, lint
// rules, the hierarchical two-phase algorithm, DES cross-validation,
// [topology] config round-trip, lower-bound conservativeness, and the
// topology sweep axis.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "analysis/invariants.hpp"
#include "comm/collective_algorithm.hpp"
#include "comm/collective_model.hpp"
#include "core/evaluator.hpp"
#include "core/lower_bounds.hpp"
#include "hw/system.hpp"
#include "hw/topology.hpp"
#include "io/config_file.hpp"
#include "search/enumerate.hpp"
#include "search/sweep.hpp"
#include "sim/ring_sim.hpp"

namespace tfpe {
namespace {

using comm::GroupPlacement;
using ops::Collective;

// ---------------------------------------------------------------------------
// Frozen legacy closed forms: the exact pre-topology two-level expressions
// this PR replaced (copied verbatim from the old comm/collective_model.cpp).
// The adapter must reproduce them BIT FOR BIT on every valid placement.
// ---------------------------------------------------------------------------
namespace legacy {

Seconds ring_latency(const hw::NetworkSpec& net, GroupPlacement g) {
  const std::int64_t nvs = std::clamp<std::int64_t>(g.nvs, 1, g.size);
  const double nodes = static_cast<double>(g.size) / static_cast<double>(nvs);
  const double slow_hops = nodes - 1.0;
  const double fast_hops = static_cast<double>(g.size) - nodes;
  return net.ib_latency * slow_hops + net.nvs_latency * fast_hops;
}

BytesPerSec effective_bandwidth(const hw::NetworkSpec& net, GroupPlacement g) {
  const std::int64_t nvs = std::clamp<std::int64_t>(g.nvs, 1, g.size);
  const BytesPerSec bw_fast = net.effective_nvs_bandwidth();
  if (nvs == g.size) return bw_fast;
  BytesPerSec bw_slow =
      static_cast<double>(nvs) * net.effective_ib_bandwidth_per_gpu();
  if (net.pod_size > 0 && g.size > net.pod_size && net.oversubscription > 1) {
    bw_slow /= net.oversubscription;
  }
  return std::min(bw_slow, bw_fast);
}

Seconds tree_time(const hw::NetworkSpec& net, Collective coll, Bytes bytes,
                  GroupPlacement g) {
  if (g.size <= 1 || bytes <= Bytes(0)) return Seconds(0);
  const std::int64_t nvs = std::clamp<std::int64_t>(g.nvs, 1, g.size);
  const double nodes = static_cast<double>(g.size) / static_cast<double>(nvs);
  const double slow_depth = nodes > 1 ? std::ceil(std::log2(nodes)) : 0.0;
  const double fast_depth =
      nvs > 1 ? std::ceil(std::log2(static_cast<double>(nvs))) : 0.0;
  Seconds latency = net.ib_latency * slow_depth + net.nvs_latency * fast_depth;
  double passes = 1.0;
  if (coll == Collective::AllReduce) {
    passes = 2.0;
    latency *= 2.0;
  }
  return latency + passes * (bytes / legacy::effective_bandwidth(net, g));
}

Seconds collective_time(const hw::NetworkSpec& net, Collective coll,
                        Bytes bytes, GroupPlacement g) {
  if (coll == Collective::None || bytes == Bytes(0)) return Seconds(0);
  if (coll == Collective::PointToPoint) {
    const bool in_domain = g.nvs >= 2;
    const BytesPerSec bw = in_domain ? net.effective_nvs_bandwidth()
                                     : net.effective_ib_bandwidth_per_gpu();
    const Seconds alpha = in_domain ? net.nvs_latency : net.ib_latency;
    return alpha + bytes / bw;
  }
  if (g.size <= 1) return Seconds(0);

  const double gsz = static_cast<double>(g.size);
  const double ring_factor = (gsz - 1.0) / gsz;
  double factor = ring_factor;
  Seconds latency = legacy::ring_latency(net, g);
  if (coll == Collective::AllReduce) {
    factor = 2.0 * ring_factor;
    latency *= 2.0;
  }
  Seconds best = latency + factor * (bytes / legacy::effective_bandwidth(net, g));
  if (net.enable_ll) {
    const Seconds ll = latency * net.ll_latency_scale +
                       factor * (bytes / (legacy::effective_bandwidth(net, g) *
                                          net.ll_bandwidth_scale));
    best = std::min(best, ll);
  }
  if (net.enable_tree &&
      (coll == Collective::AllReduce || coll == Collective::Broadcast ||
       coll == Collective::Reduce)) {
    best = std::min(best, legacy::tree_time(net, coll, bytes, g));
  }
  return best;
}

}  // namespace legacy

std::vector<std::pair<std::string, hw::NetworkSpec>> golden_nets() {
  std::vector<std::pair<std::string, hw::NetworkSpec>> nets;
  nets.emplace_back("b200", hw::network_preset(hw::GpuGeneration::B200));
  nets.emplace_back("h200", hw::network_preset(hw::GpuGeneration::H200));
  nets.emplace_back("a100", hw::network_preset(hw::GpuGeneration::A100));
  nets.emplace_back("perlmutter", hw::perlmutter(64).net);

  hw::NetworkSpec tree = hw::network_preset(hw::GpuGeneration::B200);
  tree.enable_tree = true;
  nets.emplace_back("b200+tree", tree);

  hw::NetworkSpec ll = hw::network_preset(hw::GpuGeneration::B200);
  ll.enable_ll = true;
  nets.emplace_back("b200+ll", ll);

  hw::NetworkSpec oversub = hw::network_preset(hw::GpuGeneration::B200);
  oversub.pod_size = 256;
  oversub.oversubscription = 4.0;
  nets.emplace_back("b200+oversub", oversub);

  hw::NetworkSpec rails = hw::network_preset(hw::GpuGeneration::H200);
  rails.nics_per_gpu = 4.0;
  nets.emplace_back("h200+rails", rails);
  return nets;
}

TEST(TopologyGolden, AdapterReproducesLegacyClosedFormsBitwise) {
  const std::vector<GroupPlacement> placements = {
      {1, 1},   {2, 1},    {2, 2},    {8, 2},     {8, 8},   {32, 8},
      {64, 4},  {96, 8},   {256, 8},  {512, 64},  {1024, 8}, {4096, 8}};
  const std::vector<Collective> colls = {
      Collective::AllGather, Collective::ReduceScatter, Collective::AllReduce,
      Collective::Broadcast, Collective::Reduce,         Collective::AllToAll};
  const std::vector<double> volumes = {1.0, 1e3, 1e6, 1e9};

  for (const auto& [name, net] : golden_nets()) {
    for (const GroupPlacement g : placements) {
      for (const Collective coll : colls) {
        for (const double v : volumes) {
          const double got =
              comm::collective_time(net, coll, Bytes(v), g).value();
          const double want =
              legacy::collective_time(net, coll, Bytes(v), g).value();
          EXPECT_EQ(got, want)
              << name << " coll=" << static_cast<int>(coll) << " g=" << g.size
              << "/" << g.nvs << " V=" << v;
        }
      }
      EXPECT_EQ(comm::ring_latency(net, g).value(),
                legacy::ring_latency(net, g).value())
          << name << " g=" << g.size << "/" << g.nvs;
      EXPECT_EQ(comm::effective_bandwidth(net, g).value(),
                legacy::effective_bandwidth(net, g).value())
          << name << " g=" << g.size << "/" << g.nvs;
    }
    for (const GroupPlacement g : {GroupPlacement{2, 1}, GroupPlacement{2, 2}}) {
      for (const double v : volumes) {
        EXPECT_EQ(
            comm::collective_time(net, Collective::PointToPoint, Bytes(v), g)
                .value(),
            legacy::collective_time(net, Collective::PointToPoint, Bytes(v), g)
                .value())
            << name << " p2p nvs=" << g.nvs;
      }
    }
  }
}

TEST(TopologyGolden, ExplicitTwoLevelFabricMatchesAdapter) {
  const hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::B200);
  const hw::Topology topo = hw::two_level_topology(net, 8, 1024);
  for (const GroupPlacement g :
       {GroupPlacement{8, 8}, GroupPlacement{64, 8}, GroupPlacement{1024, 4}}) {
    for (const Collective coll :
         {Collective::AllGather, Collective::AllReduce}) {
      EXPECT_EQ(comm::collective_time(topo, coll, Bytes(1e8), g).value(),
                comm::collective_time(net, coll, Bytes(1e8), g).value());
    }
  }
}

// ---------------------------------------------------------------------------
// Whole-evaluator equivalence: a SystemConfig with an explicitly attached
// canonical fabric (and its degenerate three-level extension) must evaluate
// bit-for-bit like the legacy implicit two-level system.
// ---------------------------------------------------------------------------

void expect_bitwise(const core::EvalResult& ref, const core::EvalResult& got,
                    const std::string& label) {
  ASSERT_EQ(ref.feasible, got.feasible) << label;
  EXPECT_EQ(ref.reason, got.reason) << label;
  EXPECT_EQ(ref.time.compute, got.time.compute) << label;
  EXPECT_EQ(ref.time.memory, got.time.memory) << label;
  EXPECT_EQ(ref.time.tp_comm, got.time.tp_comm) << label;
  EXPECT_EQ(ref.time.pp_comm, got.time.pp_comm) << label;
  EXPECT_EQ(ref.time.dp_comm, got.time.dp_comm) << label;
  EXPECT_EQ(ref.time.bubble, got.time.bubble) << label;
  EXPECT_EQ(ref.time.optimizer, got.time.optimizer) << label;
  EXPECT_EQ(ref.iteration(), got.iteration()) << label;
  EXPECT_EQ(ref.mem.total().value(), got.mem.total().value()) << label;
}

parallel::ParallelConfig paper_optimum() {
  parallel::ParallelConfig c;
  c.strategy = parallel::TpStrategy::TP1D;
  c.n1 = 8;
  c.np = 64;
  c.nd = 32;
  c.microbatches = 128;
  c.nvs1 = 8;
  return c;
}

TEST(TopologyEval, ExplicitCanonicalFabricIsBitwiseIdentical) {
  const model::TransformerConfig mdl = model::gpt3_1t();
  const hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8,
                                               16384);
  hw::SystemConfig with_fabric = sys;
  with_fabric.fabric = hw::two_level_topology(sys.net, sys.nvs_domain,
                                              sys.n_gpus);
  const auto ref = core::evaluate(mdl, sys, paper_optimum(), 4096);
  const auto got = core::evaluate(mdl, with_fabric, paper_optimum(), 4096);
  ASSERT_TRUE(ref.feasible) << ref.reason;
  expect_bitwise(ref, got, "explicit two-level");
}

TEST(TopologyEval, DegenerateLeafSpineIsBitwiseIdentical) {
  // leaf pods of exactly one NVS domain (fan-in 1, no oversubscription):
  // the middle level contributes zero hops and zero extra bandwidth terms,
  // so the three-level walk is bitwise the two-level walk.
  const model::TransformerConfig mdl = model::gpt3_1t();
  const hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8,
                                               16384);
  hw::SystemConfig degenerate = sys;
  degenerate.fabric =
      hw::leaf_spine_topology(sys.net, sys.nvs_domain, sys.nvs_domain,
                              sys.n_gpus, 1.0);
  const auto ref = core::evaluate(mdl, sys, paper_optimum(), 4096);
  const auto got = core::evaluate(mdl, degenerate, paper_optimum(), 4096);
  ASSERT_TRUE(ref.feasible) << ref.reason;
  expect_bitwise(ref, got, "degenerate leaf/spine");
}

TEST(TopologyEval, OversubscribedSpineIsNeverFaster) {
  const model::TransformerConfig mdl = model::gpt3_1t();
  const hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8,
                                               16384);
  hw::SystemConfig tapered = sys;
  tapered.fabric =
      hw::leaf_spine_topology(sys.net, sys.nvs_domain, 64, sys.n_gpus, 4.0);
  const auto ref = core::evaluate(mdl, sys, paper_optimum(), 4096);
  const auto got = core::evaluate(mdl, tapered, paper_optimum(), 4096);
  ASSERT_TRUE(ref.feasible) << ref.reason;
  ASSERT_TRUE(got.feasible) << got.reason;
  EXPECT_GE(got.iteration(), ref.iteration());
}

// ---------------------------------------------------------------------------
// Builders and placements.
// ---------------------------------------------------------------------------

TEST(TopologyBuilders, TwoLevelShape) {
  const hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::B200);
  const hw::Topology t = hw::two_level_topology(net, 8, 1024);
  ASSERT_EQ(t.depth(), 2u);
  EXPECT_EQ(t.levels[0].name, "nvs");
  EXPECT_EQ(t.levels[0].fan_in, 8);
  EXPECT_EQ(t.levels[1].name, "ib");
  EXPECT_EQ(t.levels[1].fan_in, 128);
  EXPECT_EQ(t.total_capacity(), 1024);
  EXPECT_DOUBLE_EQ(t.efficiency, net.efficiency);
  EXPECT_EQ(t.describe(), "nvs8 > ib128");
}

TEST(TopologyBuilders, LeafSpineShapeAndValidation) {
  const hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::B200);
  const hw::Topology t = hw::leaf_spine_topology(net, 8, 32, 1024, 4.0);
  ASSERT_EQ(t.depth(), 3u);
  EXPECT_EQ(t.levels[1].name, "leaf");
  EXPECT_EQ(t.levels[1].fan_in, 4);
  EXPECT_EQ(t.levels[2].name, "spine");
  EXPECT_EQ(t.levels[2].fan_in, 32);
  EXPECT_EQ(t.levels[2].pod_size, 32);
  EXPECT_DOUBLE_EQ(t.levels[2].oversubscription, 4.0);
  EXPECT_EQ(t.total_capacity(), 1024);
  EXPECT_EQ(t.describe(), "nvs8 > leaf4 > spine32(os4)");

  EXPECT_THROW(hw::leaf_spine_topology(net, 8, 12, 1024, 1.0),
               std::invalid_argument);
  EXPECT_THROW(hw::leaf_spine_topology(net, 0, 8, 1024, 1.0),
               std::invalid_argument);
}

TEST(TopologyBuilders, RailOptimizedTradesLatencyForBandwidth) {
  const hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::B200);
  const hw::Topology t = hw::rail_optimized_topology(net, 8, 32, 1024);
  ASSERT_EQ(t.depth(), 3u);
  EXPECT_EQ(t.levels[2].name, "spine-rail");
  EXPECT_DOUBLE_EQ(t.levels[2].latency.value(), 2.0 * net.ib_latency.value());
  EXPECT_DOUBLE_EQ(t.levels[2].oversubscription, 1.0);
}

TEST(TopologyBuilders, UnboundedTopLevel) {
  const hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::B200);
  const hw::Topology t = hw::two_level_topology(net, 8, 0);
  EXPECT_EQ(t.levels[1].fan_in, 0);
  EXPECT_EQ(t.total_capacity(), 0);  // unbounded
}

TEST(TopologyPlacement, MakePlacementFillsLevels) {
  const hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::B200);
  const hw::Topology t3 = hw::leaf_spine_topology(net, 8, 32, 1024, 1.0);

  const comm::TopoPlacement p = comm::make_placement(t3, {256, 8});
  EXPECT_EQ(p.size, 256);
  EXPECT_EQ(p.occupancy[0], 8);    // one full NVS domain
  EXPECT_EQ(p.occupancy[1], 32);   // one full leaf pod
  EXPECT_EQ(p.occupancy[2], 256);  // top level spans the group

  // Sparse placement: one member per domain still spans the whole group at
  // the top.
  const comm::TopoPlacement sparse = comm::make_placement(t3, {16, 1});
  EXPECT_EQ(sparse.occupancy[0], 1);
  EXPECT_EQ(sparse.occupancy[1], 4);
  EXPECT_EQ(sparse.occupancy[2], 16);

  // Group inside one fast domain.
  const comm::TopoPlacement inside = comm::make_placement(t3, {4, 4});
  EXPECT_EQ(inside.occupancy[0], 4);
  EXPECT_EQ(inside.occupancy[2], 4);
}

// ---------------------------------------------------------------------------
// Lint rules.
// ---------------------------------------------------------------------------

TEST(TopologyLint, CanonicalFabricsAreClean) {
  const hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::B200);
  EXPECT_TRUE(
      analysis::lint_topology(hw::two_level_topology(net, 8, 1024), 1024)
          .clean());
  EXPECT_TRUE(
      analysis::lint_topology(hw::leaf_spine_topology(net, 8, 32, 1024, 4.0),
                              1024)
          .clean());
  EXPECT_TRUE(analysis::lint_topology(hw::Topology{}, 1024).clean());
}

TEST(TopologyLint, FanInCoverage) {
  const hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::B200);
  const hw::Topology t = hw::two_level_topology(net, 8, 1024);  // capacity 1024
  const auto too_small = analysis::lint_topology(t, 2048);
  ASSERT_EQ(too_small.errors(), 1u);
  EXPECT_EQ(too_small.diagnostics[0].rule, "topology-fan-in");

  const auto oversized = analysis::lint_topology(t, 512);
  EXPECT_EQ(oversized.errors(), 0u);
  ASSERT_EQ(oversized.warnings(), 1u);
  EXPECT_EQ(oversized.diagnostics[0].rule, "topology-fan-in");

  // An unbounded top level covers any count.
  EXPECT_TRUE(
      analysis::lint_topology(hw::two_level_topology(net, 8, 0), 1 << 20)
          .clean());
}

TEST(TopologyLint, RejectsNonPositiveLevels) {
  const hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::B200);
  hw::Topology t = hw::two_level_topology(net, 8, 1024);
  t.levels[1].bandwidth = BytesPerSec(0);
  t.levels[1].rails = 0.0;
  t.levels[0].oversubscription = 0.5;
  const auto report = analysis::lint_topology(t, 1024);
  EXPECT_GE(report.errors(), 3u);
  for (const auto& d : report.diagnostics) {
    EXPECT_EQ(d.rule, "topology-positive");
  }
}

TEST(TopologyLint, WarnsOnNonMonotoneBandwidth) {
  const hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::B200);
  hw::Topology t = hw::two_level_topology(net, 8, 1024);
  t.levels[1].bandwidth = t.levels[0].bandwidth * 4.0;  // outer faster: typo
  const auto report = analysis::lint_topology(t, 1024);
  EXPECT_EQ(report.errors(), 0u);
  ASSERT_EQ(report.warnings(), 1u);
  EXPECT_EQ(report.diagnostics[0].rule, "topology-monotone-bw");
}

TEST(TopologyLint, PlacementRule) {
  EXPECT_TRUE(analysis::lint_placement({32, 8}).clean());
  const auto bad = analysis::lint_placement({12, 8});
  ASSERT_EQ(bad.errors(), 1u);
  EXPECT_EQ(bad.diagnostics[0].rule, "placement-valid");
  EXPECT_FALSE(analysis::lint_placement({2, 8}).clean());
  EXPECT_FALSE(analysis::lint_placement({8, 0}).clean());
}

// ---------------------------------------------------------------------------
// Hierarchical two-phase algorithm.
// ---------------------------------------------------------------------------

TEST(TopologyHierarchical, AllReduceIsTwoMirroredPhases) {
  const hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::B200);
  const hw::Topology t3 = hw::leaf_spine_topology(net, 8, 32, 1024, 1.0);
  const comm::TopoPlacement p = comm::make_placement(t3, {256, 8});
  const double ag =
      comm::hierarchical_time(t3, Collective::AllGather, Bytes(1e9), p).value();
  const double ar =
      comm::hierarchical_time(t3, Collective::AllReduce, Bytes(1e9), p).value();
  EXPECT_GT(ag, 0.0);
  EXPECT_EQ(ar, 2.0 * ag);
}

TEST(TopologyHierarchical, EnableFlagTakesTheMinimum) {
  const hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::B200);
  hw::Topology t3 = hw::leaf_spine_topology(net, 8, 32, 1024, 1.0);
  const comm::TopoPlacement p = comm::make_placement(t3, {256, 8});
  const double ring_only =
      comm::collective_time(t3, Collective::AllGather, Bytes(1e9), p).value();
  t3.enable_hierarchical = true;
  const double with_hier =
      comm::collective_time(t3, Collective::AllGather, Bytes(1e9), p).value();
  const double hier =
      comm::hierarchical_time(t3, Collective::AllGather, Bytes(1e9), p).value();
  EXPECT_LE(with_hier, ring_only);
  EXPECT_EQ(with_hier, std::min(ring_only, hier));
}

TEST(TopologyHierarchical, StaysAboveTheFloor) {
  const hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::B200);
  for (double oversub : {1.0, 4.0}) {
    const hw::Topology t3 = hw::leaf_spine_topology(net, 8, 32, 4096, oversub);
    for (std::int64_t size : {64, 256, 1024}) {
      const comm::TopoPlacement p = comm::make_placement(t3, {size, 8});
      for (double v : {1e6, 1e9}) {
        const double floor =
            comm::collective_time_floor(t3, size, Bytes(v)).value();
        for (Collective coll :
             {Collective::AllGather, Collective::ReduceScatter,
              Collective::AllReduce}) {
          EXPECT_LE(floor,
                    comm::hierarchical_time(t3, coll, Bytes(v), p).value())
              << "os=" << oversub << " size=" << size << " V=" << v;
          EXPECT_LE(floor, comm::collective_time(t3, coll, Bytes(v), p).value())
              << "os=" << oversub << " size=" << size << " V=" << v;
        }
      }
    }
  }
}

TEST(TopologyFloor, ConservativeForLlAndTree) {
  hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::B200);
  net.enable_ll = true;
  net.enable_tree = true;
  const hw::Topology t = hw::two_level_topology(net, 8, 4096);
  for (std::int64_t size : {16, 256, 4096}) {
    for (double v : {1.0, 1e6, 1e9}) {
      const double floor =
          comm::collective_time_floor(t, size, Bytes(v)).value();
      const double actual =
          comm::collective_time(t, Collective::AllReduce, Bytes(v),
                                GroupPlacement{size, 8})
              .value();
      EXPECT_LE(floor, actual) << "size=" << size << " V=" << v;
    }
  }
}

// ---------------------------------------------------------------------------
// DES cross-validation (Fig. A1 style) on a three-level fabric.
// ---------------------------------------------------------------------------

double pct_error(double analytic, double simulated) {
  return std::abs(analytic - simulated) / simulated * 100.0;
}

TEST(TopologySim, ThreeLevelRingWithinFigA1Tolerance) {
  // Fig. A1 validates the analytic model in the bandwidth-bound regime
  // (multi-GB tensors); at small volumes the packet-level DES charges ring
  // pipeline fill that the closed form deliberately omits.
  const hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::B200);
  const hw::Topology t3 = hw::leaf_spine_topology(net, 4, 16, 64, 1.0);
  const comm::TopoPlacement p = comm::make_placement(t3, {64, 4});
  for (Collective coll : {Collective::AllGather, Collective::AllReduce}) {
    const double analytic =
        comm::collective_time(t3, coll, Bytes(8e9), p).value();
    const double simulated =
        sim::simulate_collective(t3, coll, Bytes(8e9), p, 8).value();
    EXPECT_LT(pct_error(analytic, simulated), 20.0)
        << "coll=" << static_cast<int>(coll) << " analytic=" << analytic
        << " simulated=" << simulated;
  }
}

TEST(TopologySim, TwoLevelFabricMatchesNetworkSpecSim) {
  // The fabric-based DES on the canonical two-level topology must agree
  // with the legacy NetworkSpec-based DES (same rings, same rails).
  const hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::B200);
  const hw::Topology t2 = hw::two_level_topology(net, 8, 1024);
  const comm::TopoPlacement p = comm::make_placement(t2, {64, 8});
  for (Collective coll : {Collective::AllGather, Collective::AllReduce}) {
    EXPECT_DOUBLE_EQ(
        sim::simulate_collective(t2, coll, Bytes(1e8), p).value(),
        sim::simulate_collective(net, coll, Bytes(1e8), 64, 8).value());
  }
}

TEST(TopologySim, HierarchicalScheduleTracksAnalyticModel) {
  const hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::B200);
  const hw::Topology t3 = hw::leaf_spine_topology(net, 4, 16, 64, 1.0);
  const comm::TopoPlacement p = comm::make_placement(t3, {64, 4});
  for (Collective coll :
       {Collective::AllGather, Collective::ReduceScatter,
        Collective::AllReduce}) {
    const double analytic =
        comm::hierarchical_time(t3, coll, Bytes(1e9), p).value();
    const double simulated =
        sim::simulate_hierarchical(t3, coll, Bytes(1e9), p, 8).value();
    EXPECT_LT(pct_error(analytic, simulated), 20.0)
        << "coll=" << static_cast<int>(coll) << " analytic=" << analytic
        << " simulated=" << simulated;
  }
  EXPECT_THROW(sim::simulate_hierarchical(t3, Collective::Broadcast,
                                          Bytes(1e6), p),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// [topology] config sections.
// ---------------------------------------------------------------------------

io::ConfigSections parse(const std::string& text) {
  std::istringstream in(text);
  return io::parse_config(in);
}

TEST(TopologyConfig, ParsesThreeLevelSection) {
  const auto sections = parse(
      "[topology]\n"
      "levels = nvs, leaf, spine\n"
      "fan_in = 8, 4, 0\n"
      "latency_us = 2.5, 5, 5\n"
      "gbs = 900, 100, 100\n"
      "rails = 1, 4, 4\n"
      "pod_size = 0, 0, 256\n"
      "oversubscription = 1, 1, 4\n"
      "efficiency = 0.8\n"
      "enable_hierarchical = 1\n");
  const hw::Topology t = io::topology_from_section(sections.at("topology"));
  ASSERT_EQ(t.depth(), 3u);
  EXPECT_EQ(t.levels[0].name, "nvs");
  EXPECT_EQ(t.levels[0].fan_in, 8);
  EXPECT_DOUBLE_EQ(t.levels[0].bandwidth.value(), 900e9);
  EXPECT_NEAR(t.levels[0].latency.value(), 2.5e-6, 1e-18);
  EXPECT_EQ(t.levels[2].fan_in, 0);  // unbounded spine
  EXPECT_EQ(t.levels[2].pod_size, 256);
  EXPECT_DOUBLE_EQ(t.levels[2].oversubscription, 4.0);
  EXPECT_DOUBLE_EQ(t.levels[1].rails, 4.0);
  EXPECT_DOUBLE_EQ(t.efficiency, 0.8);
  EXPECT_TRUE(t.enable_hierarchical);
  EXPECT_FALSE(t.enable_tree);
}

TEST(TopologyConfig, RejectsMalformedSections) {
  // List length mismatch.
  EXPECT_THROW(io::topology_from_section(parse("[topology]\n"
                                               "levels = nvs, ib\n"
                                               "fan_in = 8\n"
                                               "gbs = 900, 100\n")
                                             .at("topology")),
               std::runtime_error);
  // Missing bandwidth.
  EXPECT_THROW(io::topology_from_section(
                   parse("[topology]\nlevels = nvs\nfan_in = 8\n")
                       .at("topology")),
               std::runtime_error);
  // Unknown key.
  EXPECT_THROW(io::topology_from_section(parse("[topology]\n"
                                               "levels = nvs\n"
                                               "gbs = 900\n"
                                               "bandwidth = 900\n")
                                             .at("topology")),
               std::runtime_error);
  // Non-positive values.
  EXPECT_THROW(io::topology_from_section(parse("[topology]\n"
                                               "levels = nvs\n"
                                               "gbs = 0\n")
                                             .at("topology")),
               std::runtime_error);
  EXPECT_THROW(io::topology_from_section(parse("[topology]\n"
                                               "levels = nvs\n"
                                               "gbs = 900\n"
                                               "oversubscription = 0.5\n")
                                             .at("topology")),
               std::runtime_error);
}

TEST(TopologyConfig, RoundTripsThroughSectionForm) {
  hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::H200);
  net.nics_per_gpu = 4.0;
  hw::Topology t = hw::leaf_spine_topology(net, 8, 32, 2048, 4.0);
  t.enable_hierarchical = true;
  const io::Section s = io::topology_to_section(t);
  const hw::Topology back = io::topology_from_section(s);
  ASSERT_EQ(back.depth(), t.depth());
  for (std::size_t i = 0; i < t.depth(); ++i) {
    EXPECT_EQ(back.levels[i].name, t.levels[i].name) << i;
    EXPECT_EQ(back.levels[i].fan_in, t.levels[i].fan_in) << i;
    EXPECT_NEAR(back.levels[i].latency.value(), t.levels[i].latency.value(),
                1e-12 * (t.levels[i].latency.value() + 1e-30))
        << i;
    EXPECT_DOUBLE_EQ(back.levels[i].bandwidth.value(),
                     t.levels[i].bandwidth.value())
        << i;
    EXPECT_DOUBLE_EQ(back.levels[i].rails, t.levels[i].rails) << i;
    EXPECT_EQ(back.levels[i].pod_size, t.levels[i].pod_size) << i;
    EXPECT_DOUBLE_EQ(back.levels[i].oversubscription,
                     t.levels[i].oversubscription)
        << i;
  }
  EXPECT_DOUBLE_EQ(back.efficiency, t.efficiency);
  EXPECT_EQ(back.enable_hierarchical, t.enable_hierarchical);
  EXPECT_EQ(back.enable_tree, t.enable_tree);
}

TEST(TopologyConfig, LoadAttachesFabricToSystem) {
  const std::string path = "tfpe_test_topology.tfpe";
  {
    std::ofstream out(path);
    out << "[system]\ngpu = b200\nn_gpus = 1024\nnvs_domain = 8\n\n"
        << "[topology]\nlevels = nvs, leaf, spine\nfan_in = 8, 4, 32\n"
        << "latency_us = 2.5, 5, 5\ngbs = 900, 100, 100\n";
  }
  const io::LoadedConfig loaded = io::load_config_file(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.system.has_value());
  ASSERT_TRUE(loaded.topology.has_value());
  ASSERT_FALSE(loaded.system->fabric.empty());
  EXPECT_EQ(loaded.system->fabric.depth(), 3u);
  EXPECT_EQ(loaded.system->resolved_fabric().describe(),
            "nvs8 > leaf4 > spine32");
}

// ---------------------------------------------------------------------------
// Search integration: lower bounds, placement enumeration, sweep axis.
// ---------------------------------------------------------------------------

TEST(TopologyBounds, TimeFloorStaysBelowEvaluationOnDeepFabrics) {
  const model::TransformerConfig mdl = model::gpt3_175b();
  hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8, 256);
  sys.fabric = hw::leaf_spine_topology(sys.net, 8, 32, 256, 4.0);
  const std::int64_t batch = 256;

  std::vector<parallel::ParallelConfig> cfgs;
  for (auto [np, nd] : {std::pair<int, int>{4, 8}, {8, 4}, {2, 16}}) {
    parallel::ParallelConfig c;
    c.strategy = parallel::TpStrategy::TP1D;
    c.n1 = 8;
    c.np = np;
    c.nd = nd;
    c.microbatches = 8;
    c.nvs1 = 8;
    c.zero = parallel::ZeroStage::kWeights;
    cfgs.push_back(c);
  }
  for (const auto& cfg : cfgs) {
    const auto bounds = core::search_bounds(mdl, sys, cfg, batch);
    const auto r = core::evaluate(mdl, sys, cfg, batch);
    if (!r.feasible) continue;
    EXPECT_LE(bounds.time_floor, r.iteration()) << cfg.describe();
    EXPECT_LE(bounds.memory_floor, r.mem.total().value()) << cfg.describe();
  }
}

TEST(TopologyEnumerate, FabricOverloadMatchesNvsDomain) {
  parallel::ParallelConfig cfg;
  cfg.strategy = parallel::TpStrategy::TP1D;
  cfg.n1 = 8;
  cfg.np = 4;
  cfg.nd = 8;
  const hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::B200);
  const auto by_domain = search::enumerate_placements(cfg, 8);
  EXPECT_EQ(search::enumerate_placements(
                cfg, hw::two_level_topology(net, 8, 1024)),
            by_domain);
  EXPECT_EQ(search::enumerate_placements(
                cfg, hw::leaf_spine_topology(net, 8, 32, 1024, 4.0)),
            by_domain);
  EXPECT_EQ(search::enumerate_placements(cfg, hw::Topology{}),
            search::enumerate_placements(cfg, 1));
}

TEST(TopologySweep, HardwareGridOversubscriptionAxis) {
  const auto grid = search::hardware_grid(
      {hw::GpuGeneration::B200, hw::GpuGeneration::H200}, {4, 8}, {1.0, 4.0},
      256, 32);
  ASSERT_EQ(grid.size(), 8u);
  // Oversubscription innermost: even entries keep the canonical two-level
  // fabric, odd entries attach a three-level leaf/spine.
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(grid[i].fabric.empty()) << i;
    } else {
      ASSERT_EQ(grid[i].fabric.depth(), 3u) << i;
      EXPECT_DOUBLE_EQ(grid[i].fabric.levels[2].oversubscription, 4.0) << i;
      // Leaf pods are a multiple of the NVS domain.
      EXPECT_EQ(grid[i].fabric.levels[1].fan_in *
                    grid[i].fabric.levels[0].fan_in,
                32)
          << i;
    }
  }
}

TEST(TopologySweep, OversubscribedPointIsNeverFaster) {
  const model::TransformerConfig mdl = model::gpt3_175b();
  const auto grid = search::hardware_grid({hw::GpuGeneration::B200}, {8},
                                          {1.0, 8.0}, 256, 32);
  search::SweepOptions opts;
  opts.search.global_batch = 256;
  opts.threads = 2;
  const auto swept = search::run_sweep(mdl, grid, opts);
  ASSERT_EQ(swept.best.size(), 2u);
  ASSERT_TRUE(swept.best[0].feasible) << swept.best[0].reason;
  ASSERT_TRUE(swept.best[1].feasible) << swept.best[1].reason;
  EXPECT_GE(swept.best[1].iteration(), swept.best[0].iteration());
}

}  // namespace
}  // namespace tfpe
