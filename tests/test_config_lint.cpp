// Config-file schema lint: every TFPE-CFG rule with line-accurate
// locations, plus the pass-through into lint_system/lint_topology for
// schema-clean files describing unsound machines.
#include "io/config_lint.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace tfpe {
namespace {

using analysis::LintReport;
using analysis::RuleId;
using analysis::Severity;

LintReport lint(const std::string& text) {
  std::istringstream in(text);
  return io::lint_config_text(in, "test.tfpe");
}

/// The first diagnostic with rule `id`; fails the test when absent.
const analysis::Diagnostic& first(const LintReport& report, RuleId id) {
  for (const auto& d : report.diagnostics) {
    if (d.id == id) return d;
  }
  ADD_FAILURE() << "expected rule " << analysis::rule_info(id).code
                << " in:\n"
                << report.summary();
  static const analysis::Diagnostic none{};
  return none;
}

std::size_t count_rule(const LintReport& report, RuleId id) {
  std::size_t n = 0;
  for (const auto& d : report.diagnostics) n += d.id == id;
  return n;
}

TEST(ConfigLint, CleanPlanFileIsClean) {
  const LintReport report = lint(
      "[plan]\n"
      "strategy = 2d\n"
      "n1 = 8\n"
      "n2 = 2\n"
      "np = 4\n"
      "nd = 16\n"
      "microbatches = 8\n"
      "global_batch = 2048\n");
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(ConfigLint, UnparseableTextFiresConfigParseWithLine) {
  const LintReport report = lint("[plan]\nthis line has no equals sign\n");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  const auto& d = first(report, RuleId::kConfigParse);
  EXPECT_EQ(d.file, "test.tfpe");
  EXPECT_EQ(d.line, 2);
  EXPECT_EQ(d.severity, Severity::kError);
}

TEST(ConfigLint, UnknownSectionWarnsAtHeaderLine) {
  const LintReport report = lint(
      "# comment\n"
      "[nonsense]\n"
      "foo = 1\n");
  const auto& d = first(report, RuleId::kConfigUnknownSection);
  EXPECT_EQ(d.line, 2);
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(report.errors(), 0u);
}

TEST(ConfigLint, PreambleKeysWarn) {
  const LintReport report = lint("stray = 1\n[sweep]\nnvs = 8\n");
  const auto& d = first(report, RuleId::kConfigUnknownSection);
  EXPECT_EQ(d.op, "<preamble>");
}

TEST(ConfigLint, UnknownKeyFiresAtItsOwnLine) {
  const LintReport report = lint(
      "[plan]\n"
      "strategy = 1d\n"
      "n1 = 8\n"
      "np = 1\n"
      "nd = 1\n"
      "microbatches = 1\n"
      "global_batch = 8\n"
      "bogus = 3\n");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  const auto& d = first(report, RuleId::kConfigUnknownKey);
  EXPECT_EQ(d.line, 8);
  EXPECT_EQ(d.op, "[plan] bogus");
}

TEST(ConfigLint, BadPlanValuesFireConfigValue) {
  const LintReport report = lint(
      "[plan]\n"
      "strategy = 3d\n"
      "n1 = 8\n"
      "np = 1\n"
      "nd = zero\n"
      "microbatches = 1\n"
      "global_batch = 8\n");
  EXPECT_EQ(count_rule(report, RuleId::kConfigValue), 2u)
      << report.summary();
  const auto& d = first(report, RuleId::kConfigValue);
  EXPECT_EQ(d.line, 2);  // strategy first ([plan] iterates alphabetically
                         // for values, but strategy is checked first)
}

TEST(ConfigLint, MissingRequiredPlanKeysFireConfigMissingKey) {
  const LintReport report = lint("[plan]\nstrategy = 1d\n");
  EXPECT_EQ(count_rule(report, RuleId::kConfigMissingKey), 5u)
      << report.summary();
  EXPECT_EQ(first(report, RuleId::kConfigMissingKey).line, 1);
}

TEST(ConfigLint, TopologyListLengthMismatchFiresAtKeyLine) {
  const LintReport report = lint(
      "[topology]\n"
      "levels = nvs, spine\n"
      "fan_in = 8, 64, 2\n"
      "gbs = 900, 50\n");
  ASSERT_EQ(report.diagnostics.size(), 1u) << report.summary();
  const auto& d = first(report, RuleId::kConfigListLength);
  EXPECT_EQ(d.line, 3);
  EXPECT_EQ(d.expected, 2.0);
  EXPECT_EQ(d.actual, 3.0);
}

TEST(ConfigLint, TopologyMissingRequiredKeys) {
  const LintReport report = lint("[topology]\nlevels = nvs, spine\n");
  EXPECT_EQ(count_rule(report, RuleId::kConfigMissingKey), 1u)
      << report.summary();  // gbs missing; levels present
}

TEST(ConfigLint, SchemaCleanTopologyStillRunsTopologyLint) {
  // Parses, consistent lists, builder-acceptable — but the outer level is
  // FASTER than the inner one, which the fabric sanity pass flags: the
  // merged lint_topology must fire, anchored to the file.
  const LintReport report = lint(
      "[topology]\n"
      "levels = nvs, spine\n"
      "fan_in = 8, 8\n"
      "gbs = 100, 900\n");
  const auto& d = first(report, RuleId::kTopologyMonotoneBw);
  EXPECT_EQ(d.file, "test.tfpe");
  EXPECT_EQ(d.line, 1);
  EXPECT_EQ(d.severity, Severity::kWarning);
}

TEST(ConfigLint, SchemaCleanSystemStillRunsSystemLint) {
  const LintReport report = lint(
      "[system]\n"
      "gpu = b200\n"
      "efficiency = 2.0\n"
      "nvs_domain = 8\n"
      "n_gpus = 64\n");
  const auto& d = first(report, RuleId::kSystemNetwork);
  EXPECT_EQ(d.file, "test.tfpe");
  EXPECT_EQ(d.line, 1);
}

TEST(ConfigLint, SweepAxisValuesAreValidated) {
  const LintReport report = lint(
      "[sweep]\n"
      "model = gpt3-175b, not-a-model\n"
      "gpu = b200, k80\n"
      "nvs = 8, -2\n"
      "oversub = 0.5\n"
      "strategy = 1d\n");
  EXPECT_EQ(count_rule(report, RuleId::kConfigValue), 4u)
      << report.summary();
}

TEST(ConfigLint, CalibrationSchemaIsChecked) {
  const LintReport report = lint(
      "[calibration]\n"
      "compute_efficiency = 1.5\n"
      "bandwidth_efficiency = 0.8\n"
      "global_batch = 512\n"
      "measured_seconds = -3\n");
  EXPECT_EQ(count_rule(report, RuleId::kConfigValue), 2u)
      << report.summary();
  const auto& d = first(report, RuleId::kConfigValue);
  EXPECT_EQ(d.line, 2);
  const LintReport clean = lint(
      "[calibration]\n"
      "compute_efficiency = 0.45\n"
      "bandwidth_efficiency = 0.8\n"
      "global_batch = 512\n"
      "measured_seconds = 31.5\n");
  EXPECT_TRUE(clean.clean()) << clean.summary();
}

TEST(ConfigLint, UnreadableFileFiresConfigParse) {
  const LintReport report =
      io::lint_config_file("/nonexistent/nowhere.tfpe");
  const auto& d = first(report, RuleId::kConfigParse);
  EXPECT_EQ(d.file, "/nonexistent/nowhere.tfpe");
}

TEST(ConfigLint, SuppressionSilencesARule) {
  analysis::LintOptions opts;
  ASSERT_TRUE(opts.rules.suppress("TFPE-CFG-002"));
  std::istringstream in("[nonsense]\nfoo = 1\n");
  EXPECT_TRUE(io::lint_config_text(in, "test.tfpe", opts).clean());
}

// ------------------------------------------------------- [codesign] rules

/// A schema-clean [codesign] section (with a base [model] so the
/// empty-family probe can run) that must lint clean — the baseline every
/// mutation below perturbs by exactly one key.
const char* kCleanCodesign =
    "[model]\n"
    "preset = gpt3-175b\n"
    "[codesign]\n"
    "target_params_b = 175\n"
    "tolerance = 0.05\n"
    "depths = 48, 96, 192\n"
    "heads = 64, 96\n"
    "head_dims = 128\n"
    "aspect_min = 1.0\n"
    "aspect_max = 8.0\n"
    "hidden_multiple = 128\n"
    "kv_heads = 0\n"
    "moe_experts = 0\n";

TEST(ConfigLint, CleanCodesignSectionIsClean) {
  const LintReport report = lint(kCleanCodesign);
  EXPECT_TRUE(report.clean()) << report.summary();
}

/// Replace the line starting with `key` in kCleanCodesign by `mutation`.
std::string mutate_codesign(const std::string& key,
                            const std::string& mutation) {
  std::string text(kCleanCodesign);
  const auto at = text.find("\n" + key);
  EXPECT_NE(at, std::string::npos) << key;
  const auto end = text.find('\n', at + 1);
  return text.substr(0, at + 1) + mutation + text.substr(end);
}

TEST(ConfigLint, CodesignBudgetMutationsFire) {
  for (const char* mutation :
       {"target_params_b = -1", "target_params_b = many",
        "tolerance = 0", "tolerance = 1", "tolerance = -0.1",
        "tolerance = approximately"}) {
    const std::string key =
        std::string(mutation).substr(0, std::string(mutation).find(' '));
    const LintReport report = lint(mutate_codesign(key, mutation));
    const auto& d = first(report, RuleId::kCodesignBudget);
    EXPECT_EQ(d.severity, Severity::kError) << mutation;
    EXPECT_EQ(d.file, "test.tfpe") << mutation;
    EXPECT_GT(d.line, 0) << mutation;
    EXPECT_EQ(d.code(), "TFPE-CODESIGN-001") << mutation;
  }
}

TEST(ConfigLint, CodesignAxisMutationsFire) {
  const std::pair<const char*, const char*> mutations[] = {
      {"depths", "depths = 48, 0, 192"},
      {"depths", "depths = 48, deep"},
      {"heads", "heads = -64"},
      {"head_dims", "head_dims = 0"},
      {"kv_heads", "kv_heads = -1"},
      {"moe_experts", "moe_experts = -8"},
      {"aspect_min", "aspect_min = 0"},
      {"aspect_max", "aspect_max = -2"},
      {"aspect_min", "aspect_min = 9.5"},  // exceeds aspect_max = 8.0
      {"hidden_multiple", "hidden_multiple = 0"},
  };
  for (const auto& [key, mutation] : mutations) {
    const LintReport report = lint(mutate_codesign(key, mutation));
    const auto& d = first(report, RuleId::kCodesignAxis);
    EXPECT_EQ(d.severity, Severity::kError) << mutation;
    EXPECT_GT(d.line, 0) << mutation;
    EXPECT_EQ(d.code(), "TFPE-CODESIGN-002") << mutation;
  }
}

TEST(ConfigLint, CodesignRangeAxisMutationsFire) {
  const LintReport report = lint(
      "[codesign]\n"
      "depth_min = 96\n"
      "depth_max = 32\n"
      "heads_step = 0\n");
  EXPECT_GE(count_rule(report, RuleId::kCodesignAxis), 2u)
      << report.summary();
  const auto& d = first(report, RuleId::kCodesignAxis);
  EXPECT_EQ(d.file, "test.tfpe");
}

TEST(ConfigLint, CodesignEmptyFamilyWarns) {
  // A 1000x parameter budget no shape in these narrow axes can reach.
  const LintReport report =
      lint(mutate_codesign("target_params_b", "target_params_b = 175000"));
  const auto& d = first(report, RuleId::kCodesignEmptyFamily);
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.code(), "TFPE-CODESIGN-003");
  EXPECT_EQ(report.errors(), 0u) << report.summary();
}

TEST(ConfigLint, CodesignUnknownKeyFires) {
  const LintReport report =
      lint(mutate_codesign("hidden_multiple", "hidden_multiples = 128"));
  const auto& d = first(report, RuleId::kConfigUnknownKey);
  EXPECT_NE(d.message.find("hidden_multiples"), std::string::npos);
}

}  // namespace
}  // namespace tfpe
