// Tests for the mixture-of-experts extension: routing FLOPs, AllToAll
// volumes, expert-parallel weight sharding and end-to-end search behavior.

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "parallel/layer_builder.hpp"
#include "parallel/moe_mlp.hpp"
#include "search/search.hpp"

namespace tfpe {
namespace {

using parallel::ParallelConfig;
using parallel::TpStrategy;

model::TransformerConfig tiny_moe(std::int64_t experts = 8,
                                  std::int64_t top_k = 2) {
  model::TransformerConfig m{"tiny-moe", 256, 128, 8, 4, 512};
  m.moe_experts = experts;
  m.moe_top_k = top_k;
  m.validate();
  return m;
}

ParallelConfig cfg_1d(std::int64_t nt, std::int64_t nd) {
  ParallelConfig c;
  c.strategy = TpStrategy::TP1D;
  c.n1 = nt;
  c.nd = nd;
  return c;
}

TEST(MoeModel, ParamsScaleWithExperts) {
  const auto dense = [] {
    model::TransformerConfig m{"d", 256, 128, 8, 4, 512};
    m.validate();
    return m;
  }();
  const auto moe = tiny_moe(8);
  // MLP params multiplied by E (plus the router); attention unchanged.
  EXPECT_GT(moe.params_per_layer(), 5 * dense.params_per_layer());
  EXPECT_LT(moe.params_per_layer(), 9 * dense.params_per_layer());
}

TEST(MoeModel, PresetIsTrillionClass) {
  const auto m = model::gpt_moe_1t();
  EXPECT_GT(m.total_params(), 1.0e12);
  EXPECT_EQ(m.moe_experts, 64);
  EXPECT_EQ(m.moe_top_k, 2);
}

TEST(MoeModel, ValidatesTopK) {
  auto m = tiny_moe();
  m.moe_top_k = 9;  // > experts
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.moe_top_k = 0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(MoeLayer, ExpertParallelDegree) {
  const auto m = tiny_moe(8);
  EXPECT_EQ(parallel::expert_parallel_degree(m, cfg_1d(1, 4)), 4);
  EXPECT_EQ(parallel::expert_parallel_degree(m, cfg_1d(1, 16)), 8);
  EXPECT_EQ(parallel::expert_parallel_degree(m, cfg_1d(1, 1)), 1);
}

TEST(MoeLayer, OpsIncludeRouterDispatchCombine) {
  const auto m = tiny_moe();
  const auto lc = parallel::build_layer(m, cfg_1d(2, 4), 2);
  std::vector<std::string> names;
  for (const auto& op : lc.ops) names.push_back(op.name);
  for (const char* expected : {"moe_router", "moe_dispatch", "moe_fc1",
                               "moe_gelu", "moe_fc2", "moe_combine"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  // The dense MLP must be gone.
  EXPECT_EQ(std::find(names.begin(), names.end(), "mlp_fc1"), names.end());
}

TEST(MoeLayer, AllToAllVolumeMatchesRoutedTokens) {
  const auto m = tiny_moe(8, 2);
  const std::int64_t B = 2, nt = 2;
  const auto lc = parallel::build_layer(m, cfg_1d(nt, 4), B);
  Bytes a2a;
  int a2a_count = 0;
  for (const auto& op : lc.ops) {
    for (const auto& r : op.fwd_comm) {
      if (r.collective == ops::Collective::AllToAll) {
        EXPECT_EQ(r.group, ops::CommGroup::DP);
        a2a += r.bytes;
        ++a2a_count;
      }
    }
  }
  EXPECT_EQ(a2a_count, 2);  // dispatch + combine
  // Each: 2 bytes * (B*l/nt tokens) * e * top_k.
  const double expected = 2.0 * (2.0 * B * m.seq_len / nt * m.embed * 2.0);
  EXPECT_DOUBLE_EQ(a2a.value(), expected);
}

TEST(MoeLayer, ExpertFlopsScaleWithTopK) {
  const auto top1 = parallel::build_layer(tiny_moe(8, 1), cfg_1d(2, 4), 2);
  const auto top2 = parallel::build_layer(tiny_moe(8, 2), cfg_1d(2, 4), 2);
  auto fc1_flops = [](const parallel::LayerCost& lc) {
    for (const auto& op : lc.ops) {
      if (op.name == "moe_fc1") return op.fwd_flops.value();
    }
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(fc1_flops(top2), 2.0 * fc1_flops(top1));
}

TEST(MoeLayer, WeightsShrinkWithExpertParallelism) {
  const auto m = tiny_moe(8);
  const double w1 = parallel::build_layer(m, cfg_1d(2, 1), 1).weight_params;
  const double w8 = parallel::build_layer(m, cfg_1d(2, 8), 1).weight_params;
  EXPECT_GT(w1, 3.0 * w8);  // 8 local experts vs 1
}

TEST(MoeConfig, RejectsSumma) {
  const auto m = tiny_moe();
  ParallelConfig c;
  c.strategy = TpStrategy::Summa2D;
  c.n1 = 2;
  c.n2 = 2;
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 64);
  EXPECT_EQ(*c.invalid_reason(m, sys, 64), "MoE is not supported with SUMMA");
}

TEST(MoeConfig, RequiresAlignedExpertSharding) {
  const auto m = tiny_moe(8);
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 64);
  ParallelConfig c = cfg_1d(1, 3);
  c.microbatches = 1;
  // nd = 3 does not divide 8 experts.
  EXPECT_EQ(*c.invalid_reason(m, sys, 3),
            "nd and moe_experts must divide each other");
}

TEST(MoeSearch, FindsFeasibleTrillionConfig) {
  const auto m = model::gpt_moe_1t();
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 2048);
  search::SearchOptions opts;
  opts.strategy = TpStrategy::TP1D;
  opts.global_batch = 2048;
  const auto r = search::find_optimal(m, sys, opts);
  ASSERT_TRUE(r.best.feasible) << r.best.reason;
  // Expert parallelism demands real DP width.
  EXPECT_GE(r.best.cfg.nd, 8);
  // AllToAll shows up as data-parallel-group communication.
  EXPECT_GT(r.best.time.tp_comm + r.best.time.dp_comm, 0.0);
}

TEST(MoeSearch, SummaSpaceIsEmpty) {
  const auto m = tiny_moe();
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 64);
  search::EnumerationOptions opts;
  opts.strategy = TpStrategy::Summa2D;
  opts.global_batch = 64;
  EXPECT_TRUE(search::enumerate_parallel(m, sys, opts).empty());
}

TEST(MoeVsDense, ActiveComputeAdvantage) {
  // A top-2-of-64 MoE with the same total parameter count as a dense model
  // spends far fewer FLOPs per token.
  const auto moe = model::gpt_moe_1t();
  const auto dense = model::gpt3_1t();
  ASSERT_NEAR(static_cast<double>(moe.total_params()),
              static_cast<double>(dense.total_params()), 0.5e12);
  const double moe_flops = moe.mlp_flops(1) + moe.attention_flops(1);
  const double dense_flops = dense.mlp_flops(1) + dense.attention_flops(1);
  EXPECT_LT(moe_flops, 0.25 * dense_flops);
}

}  // namespace
}  // namespace tfpe
