// Tests for the string-list helpers used by the tools.

#include <gtest/gtest.h>

#include "util/strings.hpp"

namespace tfpe::util {
namespace {

TEST(SplitList, Basic) {
  EXPECT_EQ(split_list("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitList, TrimsAndDropsEmpties) {
  EXPECT_EQ(split_list(" a , b ,, c ,"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_list(""), (std::vector<std::string>{}));
  EXPECT_EQ(split_list(" , ,"), (std::vector<std::string>{}));
}

TEST(SplitList, SingleElement) {
  EXPECT_EQ(split_list("gpt3-1t"), (std::vector<std::string>{"gpt3-1t"}));
}

TEST(SplitList, CustomSeparator) {
  EXPECT_EQ(split_list("a|b|c", '|'), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> v{"x", "y", "z"};
  EXPECT_EQ(join(v, ","), "x,y,z");
  EXPECT_EQ(split_list(join(v, ",")), v);
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ", "), "solo");
}

}  // namespace
}  // namespace tfpe::util
