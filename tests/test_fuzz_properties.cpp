// Deterministic fuzz / property sweep: drive the evaluator across a large
// pseudo-random sample of (model, system, configuration) points and check
// structural invariants on every one. Catches crashes, NaNs, negative
// times, broken breakdown accounting and feasibility inconsistencies that
// targeted tests might miss.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/consistency.hpp"
#include "analysis/invariants.hpp"
#include "core/batched_signature.hpp"
#include "core/cost_signature.hpp"
#include "core/evaluator.hpp"
#include "parallel/layer_builder.hpp"
#include "search/search.hpp"
#include "search/sweep_lint.hpp"

namespace tfpe {
namespace {

/// Deterministic 64-bit LCG (no std random, reproducible across platforms).
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 16;
  }
  /// Uniform pick from a list.
  template <typename T>
  T pick(std::initializer_list<T> values) {
    auto it = values.begin();
    std::advance(it, next() % values.size());
    return *it;
  }

 private:
  std::uint64_t state_;
};

model::TransformerConfig random_model(Lcg& rng) {
  model::TransformerConfig m;
  m.name = "fuzz";
  m.seq_len = rng.pick({512L, 1024L, 2048L, 8192L, 64800L});
  m.embed = rng.pick({512L, 1024L, 4096L, 12288L});
  m.heads = rng.pick({8L, 16L, 32L});
  m.depth = rng.pick({4L, 8L, 16L, 48L});
  m.hidden = 4 * m.embed;
  if (rng.next() % 4 == 0) m.kv_heads = m.heads / 2;
  const int kind = static_cast<int>(rng.next() % 4);
  if (kind == 1) {
    m.attention = model::AttentionKind::kWindowed;
    m.window = m.seq_len / 4;
  } else if (kind == 2) {
    m.attention = model::AttentionKind::kLinear;
  } else if (kind == 3 && m.embed <= 4096) {
    m.moe_experts = 8;
    m.moe_top_k = 2;
  }
  m.validate();
  return m;
}

TEST(Fuzz, EvaluatorInvariantsOverRandomSpace) {
  Lcg rng(0xC0FFEE);
  int feasible_seen = 0, invalid_seen = 0, oom_seen = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const model::TransformerConfig mdl = random_model(rng);
    const auto gen = rng.pick({hw::GpuGeneration::A100, hw::GpuGeneration::H200,
                               hw::GpuGeneration::B200});
    const std::int64_t nvs = rng.pick({4L, 8L, 64L});
    const std::int64_t n = rng.pick({16L, 64L, 256L, 1024L});
    const hw::SystemConfig sys = hw::make_system(gen, nvs, n);

    parallel::ParallelConfig cfg;
    cfg.strategy = mdl.is_moe()
                       ? rng.pick({parallel::TpStrategy::TP1D,
                                   parallel::TpStrategy::TP2D})
                       : rng.pick({parallel::TpStrategy::TP1D,
                                   parallel::TpStrategy::TP2D,
                                   parallel::TpStrategy::Summa2D});
    cfg.n1 = rng.pick({1L, 2L, 4L, 8L});
    cfg.n2 = cfg.strategy == parallel::TpStrategy::TP1D
                 ? 1
                 : rng.pick({1L, 2L, 4L});
    cfg.np = rng.pick({1L, 2L, 4L});
    cfg.nd = rng.pick({1L, 2L, 8L, 32L});
    cfg.microbatches = rng.pick({1L, 2L, 8L, 32L});
    cfg.nb = cfg.strategy == parallel::TpStrategy::Summa2D
                 ? rng.pick({1L, 2L, 4L})
                 : 1;
    cfg.interleave = rng.pick({1L, 1L, 1L, 2L});
    if (rng.next() % 4 == 0) cfg.zero = parallel::ZeroStage::kWeights;

    core::EvalOptions eopts;
    if (rng.next() % 3 == 0) eopts.tp_overlap = 0.5;
    if (rng.next() % 3 == 0) eopts.activation_offload = 0.5;

    const std::int64_t b = rng.pick({64L, 256L, 4096L});
    const core::EvalResult r = core::evaluate(mdl, sys, cfg, b, eopts);

    if (!r.feasible) {
      EXPECT_FALSE(r.reason.empty()) << trial;
      if (r.reason == "exceeds HBM capacity") {
        ++oom_seen;
        // Even infeasible-on-memory results carry a valid breakdown.
        EXPECT_GT(r.mem.total().value(), sys.gpu.hbm_capacity.value());
      } else {
        ++invalid_seen;
      }
      continue;
    }
    ++feasible_seen;
    // Every feasible point's op list must satisfy the conservation laws.
    // Looser FLOP tolerance: the fuzz grids include extreme aspect ratios
    // where the (2k-1)-vs-2k counting deviation approaches its bound.
    analysis::LintOptions lopts;
    lopts.flop_rtol = 5e-2;
    const analysis::LintReport lint =
        analysis::lint_config(mdl, cfg, cfg.local_microbatch(b), lopts);
    EXPECT_EQ(lint.errors(), 0u) << trial << "\n" << lint.summary();
    const auto& t = r.time;
    for (double part : {t.compute, t.memory, t.tp_comm, t.pp_comm, t.dp_comm,
                        t.bubble, t.optimizer}) {
      EXPECT_GE(part, 0.0) << trial;
      EXPECT_TRUE(std::isfinite(part)) << trial;
    }
    EXPECT_GT(r.iteration(), 0.0) << trial;
    EXPECT_NEAR(r.iteration(),
                t.compute + t.memory + t.tp_comm + t.pp_comm + t.dp_comm +
                    t.bubble + t.optimizer,
                1e-9 * r.iteration())
        << trial;
    EXPECT_GT(r.t_fwd_micro, 0.0) << trial;
    EXPECT_GT(r.t_bwd_micro, r.t_fwd_micro * 0.5) << trial;
    EXPECT_LE(r.mem.total().value(), sys.gpu.hbm_capacity.value()) << trial;
    EXPECT_GT(r.mem.weights.value(), 0.0) << trial;
    if (cfg.np == 1) EXPECT_DOUBLE_EQ(t.bubble, 0.0) << trial;

    // The two-phase path (compile -> bind -> time) must reproduce the
    // single-phase evaluator bitwise on every feasible fuzz point, and the
    // compiled signature must satisfy its own conservation laws against the
    // layer it was lowered from.
    const parallel::LayerCost layer =
        parallel::build_layer(mdl, cfg, cfg.local_microbatch(b));
    const core::CostSignature sig =
        core::compile_signature(mdl, cfg, b, layer, eopts);
    const analysis::LintReport slint =
        analysis::lint_signature(mdl, cfg, sig, layer, lopts);
    EXPECT_EQ(slint.errors(), 0u) << trial << "\n" << slint.summary();
    // The batched SoA lowering of every fuzzed signature must mirror it
    // slot for slot (the cross-layer consistency pass, bitwise checks).
    const analysis::LintReport blint =
        analysis::lint_batched(sig, core::lower_batched(sig), lopts);
    EXPECT_EQ(blint.errors(), 0u) << trial << "\n" << blint.summary();
    const core::EvalResult two =
        core::time_signature(sig, mdl, sys, cfg, b, eopts);
    EXPECT_EQ(two.feasible, r.feasible) << trial;
    EXPECT_EQ(two.time.compute, t.compute) << trial;
    EXPECT_EQ(two.time.memory, t.memory) << trial;
    EXPECT_EQ(two.time.tp_comm, t.tp_comm) << trial;
    EXPECT_EQ(two.time.pp_comm, t.pp_comm) << trial;
    EXPECT_EQ(two.time.dp_comm, t.dp_comm) << trial;
    EXPECT_EQ(two.time.bubble, t.bubble) << trial;
    EXPECT_EQ(two.time.optimizer, t.optimizer) << trial;
    EXPECT_EQ(two.t_fwd_micro, r.t_fwd_micro) << trial;
    EXPECT_EQ(two.t_bwd_micro, r.t_bwd_micro) << trial;
    EXPECT_EQ(two.mem.total().value(), r.mem.total().value()) << trial;
  }
  // The sweep must exercise all three outcome classes.
  EXPECT_GT(feasible_seen, 50);
  EXPECT_GT(invalid_seen, 20);
  EXPECT_GT(oom_seen, 5);
}

TEST(Fuzz, SweepPlansOverRandomGridsLintClean) {
  // Every fuzzed hardware grid must pass the sweep-plan lint: the cache-key
  // probes are hardware-independent, and the per-point system lint plus the
  // warm-chain analysis must accept every grid hardware_grid can produce.
  Lcg rng(0xFACADE);
  for (int trial = 0; trial < 20; ++trial) {
    const auto gen = rng.pick({hw::GpuGeneration::A100, hw::GpuGeneration::H200,
                               hw::GpuGeneration::B200});
    const std::int64_t n = rng.pick({64L, 256L, 1024L});
    const std::vector<std::int64_t> nvs = {rng.pick({4L, 8L}),
                                           rng.pick({16L, 64L})};
    const std::vector<double> oversub = {1.0, rng.pick({2.0, 4.0})};
    const auto points =
        search::hardware_grid({gen}, nvs, oversub, n, /*leaf_size=*/64);
    ASSERT_FALSE(points.empty()) << trial;
    const analysis::LintReport lint = search::lint_sweep_plan(
        random_model(rng), points, search::SweepOptions{});
    EXPECT_EQ(lint.errors(), 0u) << trial << "\n" << lint.summary();
  }
}

TEST(Fuzz, SearchNeverReturnsWorseThanSampledConfigs) {
  // For a handful of random spaces, find_optimal must dominate every
  // directly-sampled valid configuration.
  Lcg rng(0xBEEF);
  for (int round = 0; round < 5; ++round) {
    const auto mdl = model::gpt3_175b();
    const std::int64_t n = rng.pick({64L, 128L});
    const hw::SystemConfig sys =
        hw::make_system(hw::GpuGeneration::B200, 8, n);
    search::SearchOptions opts;
    opts.strategy = parallel::TpStrategy::TP1D;
    opts.global_batch = 256;
    const auto best = search::find_optimal(mdl, sys, opts).best;
    ASSERT_TRUE(best.feasible);
    for (int s = 0; s < 20; ++s) {
      parallel::ParallelConfig cfg;
      cfg.strategy = parallel::TpStrategy::TP1D;
      cfg.n1 = rng.pick({1L, 2L, 4L, 8L});
      cfg.np = rng.pick({1L, 2L, 4L, 8L});
      if (n % (cfg.n1 * cfg.np)) continue;
      cfg.nd = n / (cfg.n1 * cfg.np);
      if (256 % cfg.nd) continue;
      cfg.microbatches = rng.pick({1L, 4L, 16L});
      if ((256 / cfg.nd) % cfg.microbatches) continue;
      const auto r = search::best_placement(mdl, sys, cfg, 256);
      if (r.feasible) {
        EXPECT_LE(best.iteration(), r.iteration() * (1 + 1e-12))
            << cfg.describe();
      }
    }
  }
}

}  // namespace
}  // namespace tfpe
