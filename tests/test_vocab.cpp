// Tests for the vocabulary/embedding-head extension.

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "search/search.hpp"

namespace tfpe {
namespace {

using parallel::ParallelConfig;
using parallel::TpStrategy;

model::TransformerConfig gpt_with_vocab(std::int64_t vocab) {
  auto m = model::gpt3_175b();
  m.vocab = vocab;
  return m;
}

ParallelConfig cfg_1d(std::int64_t nt, std::int64_t np, std::int64_t nd,
                      std::int64_t m) {
  ParallelConfig c;
  c.strategy = TpStrategy::TP1D;
  c.n1 = nt;
  c.np = np;
  c.nd = nd;
  c.microbatches = m;
  c.nvs1 = std::min<std::int64_t>(8, nt);
  return c;
}

TEST(Vocab, ZeroMatchesPaperBaseline) {
  // vocab = 0 must reproduce the block-level model exactly.
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 512);
  const auto base =
      core::evaluate(model::gpt3_175b(), sys, cfg_1d(8, 8, 8, 64), 1024);
  const auto zero =
      core::evaluate(gpt_with_vocab(0), sys, cfg_1d(8, 8, 8, 64), 1024);
  ASSERT_TRUE(base.feasible && zero.feasible);
  EXPECT_DOUBLE_EQ(base.iteration(), zero.iteration());
  EXPECT_DOUBLE_EQ(base.mem.total().value(), zero.mem.total().value());
}

TEST(Vocab, AddsTiedEmbeddingParams) {
  const auto m = gpt_with_vocab(51200);
  EXPECT_EQ(m.total_params(),
            model::gpt3_175b().total_params() + 51200 * m.embed);
}

TEST(Vocab, HeadCostsShowUpInTimeAndMemory) {
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 512);
  const auto cfg = cfg_1d(8, 8, 8, 64);
  const auto base = core::evaluate(gpt_with_vocab(0), sys, cfg, 1024);
  const auto with = core::evaluate(gpt_with_vocab(51200), sys, cfg, 1024);
  ASSERT_TRUE(base.feasible && with.feasible);
  EXPECT_GT(with.iteration(), base.iteration());
  EXPECT_GT(with.t_fwd_micro, base.t_fwd_micro);
  EXPECT_GT(with.mem.weights, base.mem.weights);
  // The head matmul is a small fraction of 96 transformer layers.
  EXPECT_LT(with.iteration(), 1.10 * base.iteration());
}

TEST(Vocab, HeadShardedOverTp) {
  // More TP shards the head: the vocab overhead shrinks with n1.
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 512);
  const auto over = [&](std::int64_t nt) {
    // Same DP (so the same microbatch size); PP absorbs the grid change.
    const auto cfg = cfg_1d(nt, 64 / nt, 8, 16);
    const auto base = core::evaluate(gpt_with_vocab(0), sys, cfg, 1024);
    const auto with = core::evaluate(gpt_with_vocab(51200), sys, cfg, 1024);
    return with.t_fwd_micro - base.t_fwd_micro;
  };
  EXPECT_GT(over(2), over(8));
}

TEST(Vocab, SearchStillWorks) {
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 256);
  search::SearchOptions opts;
  opts.strategy = TpStrategy::TP1D;
  opts.global_batch = 512;
  const auto r = search::find_optimal(gpt_with_vocab(51200), sys, opts);
  ASSERT_TRUE(r.best.feasible) << r.best.reason;
}

}  // namespace
}  // namespace tfpe
