// Unit tests for the S1 counting primitives: matmul, vector ops, fused
// attention, SUMMA multiplies and the forward/backward comm conjugation.

#include <gtest/gtest.h>

#include "ops/op_factory.hpp"

namespace tfpe::ops {
namespace {

TEST(Matmul, FlopAndByteCounts) {
  // C[4x6] = A[4x5] B[5x6]: lf = (2*5-1)*4*6 = 216,
  // lm = 2*(4*5 + 5*6 + 4*6) = 148 bytes.
  const Op op = matmul("mm", 4, 6, 5);
  EXPECT_DOUBLE_EQ(op.fwd_flops.value(), 216.0);
  EXPECT_DOUBLE_EQ(op.fwd_bytes.value(), 148.0);
  EXPECT_EQ(op.unit, ComputeUnit::TensorCore);
}

TEST(Matmul, BackwardIsTwoMatmuls) {
  const Op op = matmul("mm", 4, 6, 5);
  // dA = dC B^T: (2*6-1)*4*5 = 220; dB = A^T dC: (2*4-1)*5*6 = 210.
  EXPECT_DOUBLE_EQ(op.bwd_flops.value(), 430.0);
  EXPECT_DOUBLE_EQ(op.bwd_bytes.value(), 2.0 * op.fwd_bytes.value());
}

TEST(Matmul, BatchScalesEverything) {
  const Op one = matmul("mm", 8, 8, 8, 1.0);
  const Op four = matmul("mm", 8, 8, 8, 4.0);
  EXPECT_DOUBLE_EQ(four.fwd_flops.value(), 4.0 * one.fwd_flops.value());
  EXPECT_DOUBLE_EQ(four.fwd_bytes.value(), 4.0 * one.fwd_bytes.value());
  EXPECT_DOUBLE_EQ(four.stored_bytes.value(), 4.0 * one.stored_bytes.value());
}

TEST(Matmul, StorageFlags) {
  EXPECT_DOUBLE_EQ(matmul("mm", 4, 6, 5, 1, true, false).stored_bytes.value(),
                   2.0 * 4 * 5);
  EXPECT_DOUBLE_EQ(matmul("mm", 4, 6, 5, 1, true, true).stored_bytes.value(),
                   2.0 * (4 * 5 + 5 * 6));
  EXPECT_DOUBLE_EQ(
      matmul("mm", 4, 6, 5, 1, false, false).stored_bytes.value(), 0.0);
}

TEST(FusedAttention, IoAwareBytes) {
  // Only Q, K, V and the output stream through HBM; no l x l logits.
  const double B = 2, H = 4, L = 128, EH = 16;
  const Op op = fused_attention("att", B, H, L, L, EH, 0.0);
  EXPECT_DOUBLE_EQ(op.fwd_bytes.value(), 2.0 * B * H * (2 * L * EH + 2 * L * EH));
  // The logits would have been 2 * B*H*L*L = 65536 bytes; ensure they are
  // absent (IO is far smaller).
  EXPECT_LT(op.fwd_bytes.value(), 2.0 * B * H * L * L);
}

TEST(FusedAttention, RecomputeCostsExtraBackwardFlops) {
  const Op op = fused_attention("att", 1, 8, 128, 128, 32, 0.0);
  EXPECT_DOUBLE_EQ(op.bwd_flops.value(), 2.5 * op.fwd_flops.value());
}

TEST(FusedAttention, QuadraticInSequence) {
  const Op small = fused_attention("att", 1, 1, 128, 128, 32, 0.0);
  const Op big = fused_attention("att", 1, 1, 256, 256, 32, 0.0);
  EXPECT_NEAR(big.fwd_flops.value() / small.fwd_flops.value(), 4.0, 0.1);
}

TEST(VectorOps, LayerNormCounts) {
  const Op op = layernorm("ln", 1000);
  EXPECT_EQ(op.unit, ComputeUnit::Vector);
  EXPECT_DOUBLE_EQ(op.fwd_flops.value(), 5000.0);
  EXPECT_DOUBLE_EQ(op.fwd_bytes.value(), 4000.0);   // read + write FP16
  EXPECT_DOUBLE_EQ(op.stored_bytes.value(), 2000.0);  // input kept for backward
}

TEST(VectorOps, DropoutStoresOnlyMask) {
  const Op op = dropout("do", 1000);
  EXPECT_DOUBLE_EQ(op.stored_bytes.value(), 1000.0);  // 1 byte per element
}

TEST(VectorOps, ResidualStoresNothing) {
  EXPECT_DOUBLE_EQ(residual_add("res", 1000).stored_bytes.value(), 0.0);
}

TEST(ConjugateComm, AllGatherBecomesReduceScatter) {
  Op op = layernorm("ln", 10);
  add_conjugate_comm(op, Collective::AllGather, CommGroup::TP1, Bytes(123.0));
  ASSERT_EQ(op.fwd_comm.size(), 1u);
  ASSERT_EQ(op.bwd_comm.size(), 1u);
  EXPECT_EQ(op.fwd_comm[0].collective, Collective::AllGather);
  EXPECT_EQ(op.bwd_comm[0].collective, Collective::ReduceScatter);
  EXPECT_DOUBLE_EQ(op.bwd_comm[0].bytes.value(), 123.0);
}

TEST(ConjugateComm, AllReduceIsSelfConjugate) {
  Op op = layernorm("ln", 10);
  add_conjugate_comm(op, Collective::AllReduce, CommGroup::TP2, Bytes(5.0));
  EXPECT_EQ(op.bwd_comm[0].collective, Collective::AllReduce);
}

TEST(Summa, FlopsMatchShardedMatmul) {
  // SUMMA should perform the same per-GPU FLOPs as a perfectly sharded
  // multiply: (2K-1) M N / (n1 n2).
  const Op op = summa_matmul("s", 256, 512, 128, 4, 2, 1);
  EXPECT_DOUBLE_EQ(op.fwd_flops.value(), (2.0 * 128 - 1) * 256 * 512 / 8.0);
}

TEST(Summa, BlockBroadcastVolumes) {
  // V = M*K/n2 elements over TP1 plus K*N/n1 elements over TP2 (Table A2).
  const Op op = summa_matmul("s", 256, 512, 128, 4, 2, 1);
  ASSERT_EQ(op.fwd_comm.size(), 2u);
  EXPECT_EQ(op.fwd_comm[0].group, CommGroup::TP1);
  EXPECT_DOUBLE_EQ(op.fwd_comm[0].bytes.value(), 2.0 * 256 * 128 / 2);
  EXPECT_EQ(op.fwd_comm[1].group, CommGroup::TP2);
  EXPECT_DOUBLE_EQ(op.fwd_comm[1].bytes.value(), 2.0 * 128 * 512 / 4);
  EXPECT_EQ(op.fwd_comm[0].collective, Collective::Broadcast);
}

TEST(Summa, BackwardUsesBroadcastAndReduce) {
  const Op op = summa_matmul("s", 64, 64, 64, 2, 2, 4);
  ASSERT_EQ(op.bwd_comm.size(), 4u);
  int broadcasts = 0, reduces = 0;
  for (const auto& r : op.bwd_comm) {
    if (r.collective == Collective::Broadcast) ++broadcasts;
    if (r.collective == Collective::Reduce) ++reduces;
  }
  EXPECT_EQ(broadcasts, 2);
  EXPECT_EQ(reduces, 2);
  EXPECT_EQ(op.summa_panels, 4);
}

TEST(Summa, NoSharedWeightStorage) {
  // Fully sharded A tile only: M*K/(n1*n2) elements.
  const Op op = summa_matmul("s", 256, 512, 128, 4, 2, 1);
  EXPECT_DOUBLE_EQ(op.stored_bytes.value(), 2.0 * 256 * 128 / 8);
}

TEST(ToString, Coverage) {
  EXPECT_EQ(to_string(Collective::AllGather), "AG");
  EXPECT_EQ(to_string(Collective::ReduceScatter), "RS");
  EXPECT_EQ(to_string(Collective::AllReduce), "AR");
  EXPECT_EQ(to_string(Collective::Broadcast), "B");
  EXPECT_EQ(to_string(CommGroup::DP), "DP");
  EXPECT_EQ(to_string(ComputeUnit::TensorCore), "tensor");
}

}  // namespace
}  // namespace tfpe::ops
