// Tests for the 1F1B pipeline-schedule model (S1/S2).

#include <gtest/gtest.h>

#include "pipeline/pipeline_model.hpp"

namespace tfpe::pipeline {
namespace {

TEST(Bubble, PaperFormula) {
  EXPECT_DOUBLE_EQ(bubble_time(64, Seconds(0.01), Seconds(0.02)).value(),
                   63 * 0.03);
  EXPECT_DOUBLE_EQ(bubble_time(1, Seconds(0.01), Seconds(0.02)).value(), 0.0);
}

TEST(InFlight, OneF1BKeepsMinOfMAndNp) {
  EXPECT_EQ(in_flight_microbatches(8, 128), 8);
  EXPECT_EQ(in_flight_microbatches(64, 16), 16);
  EXPECT_EQ(in_flight_microbatches(1, 16), 1);
}

TEST(IterationTime, SteadyPlusBubble) {
  // (m + np - 1)(tf + tb)
  EXPECT_DOUBLE_EQ(iteration_time(4, 16, Seconds(1.0), Seconds(2.0)).value(),
                   (16 + 3) * 3.0);
}

TEST(P2p, ZeroWithoutPipeline) {
  const auto net = hw::network_preset(hw::GpuGeneration::B200);
  EXPECT_DOUBLE_EQ(p2p_time(net, 1, 128, Bytes(1e6), 1).value(), 0.0);
}

TEST(P2p, ScalesWithMicrobatches) {
  const auto net = hw::network_preset(hw::GpuGeneration::B200);
  const double t1 = p2p_time(net, 4, 8, Bytes(1e6), 1).value();
  const double t2 = p2p_time(net, 4, 16, Bytes(1e6), 1).value();
  EXPECT_DOUBLE_EQ(t2, 2.0 * t1);
}

TEST(P2p, FasterInsideNvsDomain) {
  const auto net = hw::network_preset(hw::GpuGeneration::B200);
  EXPECT_LT(p2p_time(net, 4, 8, Bytes(1e8), 2).value(),
            p2p_time(net, 4, 8, Bytes(1e8), 1).value());
}

}  // namespace
}  // namespace tfpe::pipeline
