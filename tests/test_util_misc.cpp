// Unit tests for formatting, tables, CSV, thread pool and ASCII plots.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/object_pool.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace tfpe::util {
namespace {

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(2e3), "2.00 KB");
  EXPECT_EQ(format_bytes(80e9), "80.00 GB");
  EXPECT_EQ(format_bytes(1.5e12), "1.50 TB");
}

TEST(Units, FormatTime) {
  EXPECT_EQ(format_time(5e-7), "500.00 ns");
  EXPECT_EQ(format_time(2.5e-5), "25.00 us");
  EXPECT_EQ(format_time(0.004), "4.00 ms");
  EXPECT_EQ(format_time(12.0), "12.00 s");
  EXPECT_EQ(format_time(7200.0), "2.00 hr");
  EXPECT_EQ(format_time(3.0 * kSecondsPerDay), "3.00 days");
}

TEST(Units, FormatFlopsAndBandwidth) {
  EXPECT_EQ(format_flops(312e12), "312.00 TFLOP");
  EXPECT_EQ(format_bandwidth(900e9), "900.00 GB/s");
}

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.set_header({"a", "long_column"});
  t.add_row({"xx", "1"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("a   long_column"), std::string::npos);
  EXPECT_NE(s.find("xx  1"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(CsvWriter, EscapesAndRoundTrips) {
  const std::string path = "tfpe_test_csv.csv";
  {
    CsvWriter csv(path);
    csv.write_header({"x", "note"});
    csv.write_row(std::vector<std::string>{"1", "has,comma"});
    csv.write_row(std::vector<double>{2.5, 3.0});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,note");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"has,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "2.5,3");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsArityMismatch) {
  const std::string path = "tfpe_test_csv2.csv";
  CsvWriter csv(path);
  csv.write_header({"a", "b"});
  EXPECT_THROW(csv.write_row(std::vector<std::string>{"1"}),
               std::invalid_argument);
  std::remove(path.c_str());
}

TEST(ObjectPool, ReusesReturnedObjectsWithCapacity) {
  ObjectPool<std::vector<int>> pool;
  const int* warm_data = nullptr;
  {
    auto lease = pool.acquire();
    lease->resize(1024);
    warm_data = lease->data();
  }  // returned to the pool, capacity intact
  auto again = pool.acquire();
  EXPECT_EQ(again->data(), warm_data);  // the same warm buffer came back
  EXPECT_GE(again->capacity(), 1024u);  // the pool never clears
  EXPECT_EQ(pool.constructions(), 1u);
  EXPECT_EQ(pool.reuses(), 1u);
}

TEST(ObjectPool, MoveTransfersOwnershipOnce) {
  ObjectPool<std::vector<int>> pool;
  auto a = pool.acquire();
  a->push_back(7);
  ObjectPool<std::vector<int>>::Lease b = std::move(a);
  EXPECT_EQ((*b)[0], 7);
  b = pool.acquire();  // assignment releases the first object back
  EXPECT_EQ(pool.constructions() + pool.reuses(), 2u);
}

TEST(ObjectPool, ConcurrentAcquireReleaseIsSafe) {
  // The sweep engines lease one scratch per chain task from many workers;
  // hammer that pattern so TSan sees the acquire/release paths race-free.
  // Steady-state constructions must stay at the peak concurrency, not the
  // task count — the free list really recycles under contention.
  ObjectPool<std::vector<int>> pool;
  ThreadPool tp(8);
  std::atomic<std::size_t> leased{0};
  parallel_for_dynamic(tp, 2048, [&](std::size_t i) {
    auto lease = pool.acquire();
    lease->assign(64, static_cast<int>(i));
    EXPECT_EQ(lease->back(), static_cast<int>(i));
    leased.fetch_add(1);
  });
  EXPECT_EQ(leased.load(), 2048u);
  EXPECT_EQ(pool.constructions() + pool.reuses(), 2048u);
  EXPECT_LE(pool.constructions(), 8u);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  parallel_for_index(pool, hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_index(pool, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, DynamicForCoversRangeOncePerIndex) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1003);
  const std::size_t executed = parallel_for_dynamic(
      pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  EXPECT_EQ(executed, hits.size());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, DynamicForGrainedChunks) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(130);  // not a multiple of the grain
  const std::size_t executed = parallel_for_dynamic(
      pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); },
      /*grain=*/32);
  EXPECT_EQ(executed, hits.size());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, DynamicForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  const std::size_t executed =
      parallel_for_dynamic(pool, 0, [&](std::size_t) { called = true; });
  EXPECT_EQ(executed, 0u);
  EXPECT_FALSE(called);
}

TEST(ThreadPool, DynamicForStopsEarly) {
  // A single worker (deterministic claim order) with grain 1: stop after
  // the 10th index -> exactly the first 10 run, and the return value says
  // how many were executed.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  const std::size_t executed = parallel_for_dynamic(
      pool, 1000, [&](std::size_t) { ran.fetch_add(1); },
      /*grain=*/1, /*stop=*/[&] { return ran.load() >= 10; });
  EXPECT_EQ(executed, 10u);
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, DynamicForStopNeverLosesInFlightWork) {
  // With many workers, stopping must still count every executed index.
  ThreadPool pool(8);
  std::atomic<int> ran{0};
  std::vector<std::atomic<int>> hits(512);
  const std::size_t executed = parallel_for_dynamic(
      pool, hits.size(),
      [&](std::size_t i) {
        hits[i].fetch_add(1);
        ran.fetch_add(1);
      },
      /*grain=*/4, /*stop=*/[&] { return ran.load() >= 64; });
  int total = 0;
  for (auto& h : hits) {
    EXPECT_LE(h.load(), 1);
    total += h.load();
  }
  EXPECT_EQ(executed, static_cast<std::size_t>(total));
  EXPECT_GE(executed, 64u);
}

TEST(AsciiHeatmap, RendersAndScales) {
  std::ostringstream os;
  ascii_heatmap(os, {{1.0, 10.0}, {100.0, 1000.0}}, {"r0", "r1"}, {"c0", "c1"});
  const std::string s = os.str();
  EXPECT_NE(s.find("scale:"), std::string::npos);
  EXPECT_NE(s.find('@'), std::string::npos);  // max glyph present
}

TEST(AsciiHeatmap, HandlesNaN) {
  std::ostringstream os;
  ascii_heatmap(os, {{std::nan(""), 2.0}}, {}, {});
  EXPECT_NE(os.str().find('.'), std::string::npos);
}

TEST(AsciiChart, RendersSeries) {
  std::ostringstream os;
  ascii_chart(os, {{"a", {1, 10, 100}, {1, 2, 4}}});
  const std::string s = os.str();
  EXPECT_NE(s.find("'o' = a"), std::string::npos);
}

}  // namespace
}  // namespace tfpe::util
