// Serving evaluator: KV-cache accounting, continuous-batching estimates,
// the decode HBM floor, the serve-plan Pareto front, and the TFPE-SERVE
// lint rules. Trend assertions follow the TensorRT-LLM throughput-table
// shapes: tok/s/GPU grows with resident batch and shrinks as tensor
// parallelism spreads one replica over more GPUs.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/inference_estimate.hpp"
#include "core/workload.hpp"
#include "io/config_lint.hpp"
#include "memory/memory_model.hpp"
#include "ops/op_factory.hpp"
#include "search/search.hpp"
#include "search/serve_plan.hpp"

namespace tfpe {
namespace {

using analysis::LintReport;
using analysis::RuleId;
using analysis::Severity;

/// The dense ~7B model of tests/data/serving_smoke.tfpe: every tp in
/// {1,2,4,8} divides heads/kv_heads/embed/seq, every pp in {1,2} divides
/// depth, and one replica fits a single H200 NVS domain.
model::TransformerConfig dense7b() {
  model::TransformerConfig m;
  m.name = "dense-7b";
  m.seq_len = 2048;
  m.embed = 4096;
  m.heads = 32;
  m.depth = 32;
  m.hidden = 16384;
  m.kv_heads = 8;
  m.vocab = 128256;
  return m;
}

hw::SystemConfig h200x8() {
  return hw::make_system(hw::GpuGeneration::H200, 8, 8);
}

core::Workload serve_load() { return core::Workload::decode(2048, 256); }

TEST(Serving, KvCacheBytesFormula) {
  const auto m = dense7b();
  // 2 (K and V) x 2 B/element x kv_heads/tp x head_dim x tokens x layers.
  const double expect = 2.0 * ops::kBytesPerElement * (8.0 / 2.0) * 128.0 *
                        2304.0 * 16.0;
  EXPECT_DOUBLE_EQ(
      memory::kv_cache_bytes(m, /*layers=*/16, /*tokens=*/2304.0, /*tp=*/2)
          .value(),
      expect);
  // GQA replication floor: tp beyond kv_heads still holds one head's cache.
  EXPECT_DOUBLE_EQ(
      memory::kv_cache_bytes(m, 32, 2304.0, 8).value(),
      2.0 * ops::kBytesPerElement * 1.0 * 128.0 * 2304.0 * 32.0);
}

TEST(Serving, TokensPerGpuMonotoneInBatch) {
  const auto m = dense7b();
  const auto sys = h200x8();
  double prev = 0.0;
  for (const std::int64_t batch : {1, 2, 4, 8, 16, 32, 64, 128}) {
    core::ServingConfig sc;
    sc.tp = 2;
    sc.batch = batch;
    const auto est = core::estimate_serving(m, sys, serve_load(), sc);
    ASSERT_TRUE(est.feasible) << est.reason << " at batch " << batch;
    EXPECT_GE(est.tokens_per_sec_per_gpu, prev) << "batch " << batch;
    prev = est.tokens_per_sec_per_gpu;
  }
}

TEST(Serving, TensorParallelismCostsPerGpuThroughput) {
  // At a fixed resident batch, spreading the replica over more GPUs buys
  // latency but never per-GPU throughput — the TensorRT-LLM table shape.
  const auto m = dense7b();
  const auto sys = h200x8();
  double prev = 0.0;
  for (const std::int64_t tp : {8, 4, 2, 1}) {
    core::ServingConfig sc;
    sc.tp = tp;
    sc.batch = 32;
    const auto est = core::estimate_serving(m, sys, serve_load(), sc);
    ASSERT_TRUE(est.feasible) << est.reason << " at tp " << tp;
    EXPECT_GT(est.tokens_per_sec_per_gpu, prev) << "tp " << tp;
    prev = est.tokens_per_sec_per_gpu;
  }
}

TEST(Serving, TpotRespectsTheDecodeHbmFloor) {
  const auto m = dense7b();
  const auto sys = h200x8();
  for (const std::int64_t tp : {1, 2, 4, 8}) {
    for (const std::int64_t pp : {1, 2}) {
      for (const std::int64_t batch : {1, 8, 32, 128}) {
        core::ServingConfig sc;
        sc.tp = tp;
        sc.pp = pp;
        sc.batch = batch;
        const auto est = core::estimate_serving(m, sys, serve_load(), sc);
        if (!est.feasible) continue;
        EXPECT_GE(est.tpot, est.decode_floor)
            << "tp" << tp << " pp" << pp << " batch " << batch;
        EXPECT_GT(est.decode_floor, 0.0);
      }
    }
  }
}

TEST(Serving, EveryFeasiblePointIsKvResident) {
  const auto m = dense7b();
  const auto sys = h200x8();
  const double hbm = sys.gpu.hbm_capacity.value();
  for (const std::int64_t tp : {1, 2, 4, 8}) {
    for (const std::int64_t batch : {1, 32, 4096}) {
      core::ServingConfig sc;
      sc.tp = tp;
      sc.batch = batch;
      const auto est = core::estimate_serving(m, sys, serve_load(), sc);
      if (!est.feasible) continue;
      EXPECT_LE(est.mem.total().value(), hbm);
      EXPECT_LE(est.mem.kv_cache.value(), sc.kv_cap_fraction * hbm);
      EXPECT_GE(est.admitted_batch, 1);
      EXPECT_LE(est.admitted_batch, batch);
      EXPECT_DOUBLE_EQ(est.mem.kv_cache.value(),
                       est.kv_bytes_per_request.value() *
                           static_cast<double>(est.admitted_batch));
    }
  }
}

TEST(Serving, OversizedBatchIsClippedNotRejected) {
  const auto m = dense7b();
  const auto sys = h200x8();
  core::ServingConfig sc;
  sc.tp = 1;
  sc.batch = 1000000;
  const auto est = core::estimate_serving(m, sys, serve_load(), sc);
  ASSERT_TRUE(est.feasible) << est.reason;
  EXPECT_LT(est.admitted_batch, sc.batch);
  EXPECT_GE(est.admitted_batch, 1);
}

TEST(Serving, InvalidShapesCarryReasons) {
  const auto sys = h200x8();
  const auto w = serve_load();
  auto moe = dense7b();
  moe.moe_experts = 8;
  EXPECT_TRUE(core::serve_invalid_reason(moe, sys, w, {}).has_value());
  auto gqa = dense7b();
  gqa.kv_heads = 4;  // tp = 8 cannot divide 4 K/V heads
  core::ServingConfig wide;
  wide.tp = 8;
  EXPECT_TRUE(core::serve_invalid_reason(gqa, sys, w, wide).has_value());
  core::ServingConfig toobig;
  toobig.tp = 8;
  toobig.pp = 2;  // replica of 16 GPUs on an 8-GPU system
  EXPECT_TRUE(
      core::serve_invalid_reason(dense7b(), sys, w, toobig).has_value());
  core::ServingConfig ok;
  ok.tp = 2;
  EXPECT_FALSE(core::serve_invalid_reason(dense7b(), sys, w, ok).has_value());
}

TEST(Serving, CachedSignatureOverloadMatchesSelfCompile) {
  // The serve-plan search hands estimate_serving a SignatureCache'd prefill
  // signature; the result must be identical to the self-compiling overload.
  const auto m = dense7b();
  const auto sys = h200x8();
  const auto w = serve_load();
  core::ServingConfig sc;
  sc.tp = 2;
  sc.batch = 32;
  auto prompt = m;
  prompt.seq_len = w.prompt_len;
  const auto cfg = core::serving_parallel_config(sys, sc);
  const auto sig =
      core::compile_signature(prompt, cfg, 1, core::EvalOptions{});
  const auto direct = core::estimate_serving(m, sys, w, sc);
  const auto cached = core::estimate_serving(m, sys, w, sc, sig, {});
  EXPECT_EQ(direct.ttft, cached.ttft);
  EXPECT_EQ(direct.tpot, cached.tpot);
  EXPECT_EQ(direct.tokens_per_sec_per_gpu, cached.tokens_per_sec_per_gpu);
  EXPECT_EQ(direct.admitted_batch, cached.admitted_batch);
  EXPECT_EQ(direct.mem.total().value(), cached.mem.total().value());
}

TEST(Serving, PlacementPackerAgreesWithTheTrainingSearch) {
  // core cannot link against search/, so serving_parallel_config re-states
  // pack_placement's divisor rule; this pins the two implementations
  // together.
  const auto sys = h200x8();
  for (const std::int64_t tp : {1, 2, 4, 8}) {
    for (const std::int64_t pp : {1, 2, 4}) {
      core::ServingConfig sc;
      sc.tp = tp;
      sc.pp = pp;
      const auto cfg = core::serving_parallel_config(sys, sc);
      parallel::ParallelConfig ref;
      ref.strategy = parallel::TpStrategy::TP1D;
      ref.n1 = tp;
      ref.np = pp;
      ref.nd = 1;
      ref.microbatches = 1;
      search::pack_placement(ref, sys.nvs_domain);
      EXPECT_EQ(cfg.nvs1, ref.nvs1) << "tp" << tp << " pp" << pp;
      EXPECT_EQ(cfg.nvsp, ref.nvsp) << "tp" << tp << " pp" << pp;
    }
  }
}

TEST(Serving, ServePlanFrontIsAParetoFront) {
  const auto m = dense7b();
  const auto sys = h200x8();
  search::ServePlanOptions opts;
  opts.spec.tp = {1, 2, 4, 8};
  opts.spec.pp = {1, 2};
  opts.spec.batch = {1, 8, 32, 128};
  const auto run = search::run_serve_plan(m, sys, opts);
  ASSERT_FALSE(run.front.empty());
  EXPECT_GT(run.stats.feasible, 0u);
  EXPECT_GT(run.stats.signature_reuses, 0u);  // batch axis shares lowerings
  for (const std::size_t i : run.front) {
    const auto& p = run.points[i];
    ASSERT_TRUE(p.feasible);
    for (const auto& q : run.points) {
      if (!q.feasible) continue;
      const bool dominates =
          q.request_latency <= p.request_latency &&
          q.tokens_per_sec_per_gpu >= p.tokens_per_sec_per_gpu &&
          (q.request_latency < p.request_latency ||
           q.tokens_per_sec_per_gpu > p.tokens_per_sec_per_gpu);
      EXPECT_FALSE(dominates)
          << "tp" << q.cfg.tp << " pp" << q.cfg.pp << " batch " << q.cfg.batch
          << " dominates front point tp" << p.cfg.tp << " pp" << p.cfg.pp
          << " batch " << p.cfg.batch;
    }
  }
  // Front is sorted: latency ascending, efficiency strictly ascending.
  for (std::size_t k = 1; k < run.front.size(); ++k) {
    const auto& a = run.points[run.front[k - 1]];
    const auto& b = run.points[run.front[k]];
    EXPECT_LE(a.request_latency, b.request_latency);
    EXPECT_LT(a.tokens_per_sec_per_gpu, b.tokens_per_sec_per_gpu);
  }
}

TEST(Serving, MaxBatchCapsTheGrid) {
  const auto m = dense7b();
  const auto sys = h200x8();
  search::ServePlanOptions opts;
  opts.spec.tp = {2};
  opts.spec.pp = {1};
  opts.spec.batch = {1, 8, 32, 128};
  opts.spec.max_batch = 16;
  const auto run = search::run_serve_plan(m, sys, opts);
  EXPECT_EQ(run.stats.evaluated, 2u);  // 32 and 128 are skipped
  for (const auto& p : run.points) EXPECT_LE(p.cfg.batch, 16);
}

// --- TFPE-SERVE lint rules, one mutation per rule --------------------------

constexpr const char* kCleanServing =
    "[model]\n"
    "name = dense-7b\n"
    "seq_len = 2048\n"
    "embed = 4096\n"
    "heads = 32\n"
    "depth = 32\n"
    "hidden = 16384\n"
    "kv_heads = 8\n"
    "vocab = 128256\n"
    "[system]\n"
    "gpu = h200\n"
    "nvs_domain = 8\n"
    "n_gpus = 8\n"
    "[serving]\n"
    "prompt_len = 2048\n"
    "output_len = 256\n"
    "tp = 1, 2, 4, 8\n"
    "pp = 1, 2\n"
    "batch = 1, 8, 32, 128\n"
    "kv_cap_fraction = 0.9\n";

LintReport lint(const std::string& text) {
  std::istringstream in(text);
  return io::lint_config_text(in, "test.tfpe");
}

const analysis::Diagnostic& first(const LintReport& report, RuleId id) {
  for (const auto& d : report.diagnostics) {
    if (d.id == id) return d;
  }
  ADD_FAILURE() << "expected rule " << analysis::rule_info(id).code << " in:\n"
                << report.summary();
  static const analysis::Diagnostic none{};
  return none;
}

/// Replace the line starting with `key` in kCleanServing by `mutation`.
std::string mutate_serving(const std::string& key,
                           const std::string& mutation) {
  std::string text(kCleanServing);
  const auto at = text.find("\n" + key);
  EXPECT_NE(at, std::string::npos) << key;
  const auto end = text.find('\n', at + 1);
  return text.substr(0, at + 1) + mutation + text.substr(end);
}

TEST(ServingLint, CleanServingFileIsClean) {
  const LintReport report = lint(kCleanServing);
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(ServingLint, ValueMutationsFire) {
  for (const char* mutation :
       {"prompt_len = 0", "output_len = -5", "tp = 1, zero",
        "batch = 0, 8", "kv_cap_fraction = 1.5", "kv_cap_fraction = 0"}) {
    const std::string key =
        std::string(mutation).substr(0, std::string(mutation).find(' '));
    const LintReport report = lint(mutate_serving(key, mutation));
    const auto& d = first(report, RuleId::kConfigValue);
    EXPECT_EQ(d.severity, Severity::kError) << mutation;
    EXPECT_GT(d.line, 0) << mutation;
  }
}

TEST(ServingLint, KvBudgetExhaustionFires) {
  // A starved KV cap: the budget fraction is smaller than the weights on
  // every (tp, pp) shape of the grid, so no shape can hold even one
  // request's cache. TFPE-SERVE-001, error.
  const LintReport report =
      lint(mutate_serving("kv_cap_fraction", "kv_cap_fraction = 0.001"));
  const auto& d = first(report, RuleId::kServeKvBudget);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.code(), "TFPE-SERVE-001");
  EXPECT_EQ(d.file, "test.tfpe");
}

TEST(ServingLint, BatchBeyondResidencyWarns) {
  // 100k requested residents: admissible on no shape, so the scheduler
  // would clip. TFPE-SERVE-002, warning — the grid still runs.
  const LintReport report =
      lint(mutate_serving("batch", "batch = 1, 100000"));
  const auto& d = first(report, RuleId::kServeBatchCap);
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.code(), "TFPE-SERVE-002");
  EXPECT_EQ(report.errors(), 0u) << report.summary();
}

TEST(ServingLint, UnknownServingKeyFires) {
  const LintReport report =
      lint(mutate_serving("kv_cap_fraction", "kv_cap = 0.9"));
  const auto& d = first(report, RuleId::kConfigUnknownKey);
  EXPECT_EQ(d.severity, Severity::kError);
}

}  // namespace
}  // namespace tfpe
