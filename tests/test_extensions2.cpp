// Tests for the second wave of extensions: full activation recomputation
// (checkpointing) and fat-tree oversubscription.

#include <gtest/gtest.h>

#include "comm/collective_model.hpp"
#include "core/evaluator.hpp"
#include "search/search.hpp"

namespace tfpe {
namespace {

using parallel::ParallelConfig;
using parallel::TpStrategy;

hw::SystemConfig b200(std::int64_t nvs = 8, std::int64_t n = 16384) {
  return hw::make_system(hw::GpuGeneration::B200, nvs, n);
}

ParallelConfig gpt_cfg() {
  ParallelConfig c;
  c.strategy = TpStrategy::TP1D;
  c.n1 = 8;
  c.np = 64;
  c.nd = 32;
  c.microbatches = 128;
  c.nvs1 = 8;
  return c;
}

// ---- activation recompute ----

TEST(Recompute, ShrinksActivationsToBlockBoundaries) {
  const auto mdl = model::gpt3_1t();
  const auto cfg = gpt_cfg();
  const auto base = core::evaluate(mdl, b200(), cfg, 4096);
  core::EvalOptions opts;
  opts.activation_recompute = true;
  const auto rc = core::evaluate(mdl, b200(), cfg, 4096, opts);
  ASSERT_TRUE(base.feasible && rc.feasible);
  EXPECT_LT(rc.mem.activations.value(), 0.1 * base.mem.activations.value());
  EXPECT_DOUBLE_EQ(rc.mem.weights.value(), base.mem.weights.value());
}

TEST(Recompute, PaysRoughlyOneExtraForward) {
  const auto mdl = model::gpt3_1t();
  const auto cfg = gpt_cfg();
  const auto base = core::evaluate(mdl, b200(), cfg, 4096);
  core::EvalOptions opts;
  opts.activation_recompute = true;
  const auto rc = core::evaluate(mdl, b200(), cfg, 4096, opts);
  ASSERT_TRUE(base.feasible && rc.feasible);
  // Backward per microbatch grows by ~the forward time.
  EXPECT_NEAR(rc.t_bwd_micro, base.t_bwd_micro + base.t_fwd_micro,
              0.02 * base.t_bwd_micro);
  EXPECT_DOUBLE_EQ(rc.t_fwd_micro, base.t_fwd_micro);
  EXPECT_GT(rc.iteration(), base.iteration());
}

TEST(Recompute, UnlocksOtherwiseInfeasibleConfigs) {
  // A large-microbatch ViT config that overflows HBM fits with recompute.
  const auto mdl = model::vit_64k();
  ParallelConfig cfg;
  cfg.strategy = TpStrategy::TP2D;
  cfg.n1 = 1;
  cfg.n2 = 8;
  cfg.np = 4;
  cfg.nd = 8;
  cfg.microbatches = 512;
  const auto sys = b200(8, 256);
  ASSERT_FALSE(core::evaluate(mdl, sys, cfg, 4096).feasible);
  core::EvalOptions opts;
  opts.activation_recompute = true;
  const auto rc = core::evaluate(mdl, sys, cfg, 4096, opts);
  EXPECT_TRUE(rc.feasible) << rc.reason;
}

TEST(Recompute, ComposesWithOffload) {
  const auto mdl = model::gpt3_1t();
  const auto cfg = gpt_cfg();
  core::EvalOptions opts;
  opts.activation_recompute = true;
  opts.activation_offload = 0.5;
  const auto r = core::evaluate(mdl, b200(), cfg, 4096, opts);
  ASSERT_TRUE(r.feasible);
  core::EvalOptions only_rc;
  only_rc.activation_recompute = true;
  const auto rc = core::evaluate(mdl, b200(), cfg, 4096, only_rc);
  EXPECT_NEAR(r.mem.activations.value(), 0.5 * rc.mem.activations.value(),
              1e-9 * rc.mem.activations.value());
}

// ---- fat-tree oversubscription ----

TEST(Oversubscription, OnlyAffectsGroupsSpanningPods) {
  auto net = hw::network_preset(hw::GpuGeneration::B200);
  const Seconds in_pod_before = comm::collective_time(
      net, ops::Collective::AllGather, Bytes(1e9), {64, 8});
  const Seconds cross_before = comm::collective_time(
      net, ops::Collective::AllGather, Bytes(1e9), {1024, 8});
  net.pod_size = 256;
  net.oversubscription = 4.0;
  const Seconds in_pod_after = comm::collective_time(
      net, ops::Collective::AllGather, Bytes(1e9), {64, 8});
  const Seconds cross_after = comm::collective_time(
      net, ops::Collective::AllGather, Bytes(1e9), {1024, 8});
  EXPECT_DOUBLE_EQ(in_pod_after.value(), in_pod_before.value());
  EXPECT_GT(cross_after.value(), 2.0 * cross_before.value());
}

TEST(Oversubscription, DisabledByDefault) {
  const auto net = hw::network_preset(hw::GpuGeneration::B200);
  EXPECT_EQ(net.pod_size, 0);
  EXPECT_DOUBLE_EQ(net.oversubscription, 1.0);
}

TEST(Oversubscription, SearchAvoidsCrossPodTpGroups) {
  // With a 4:1 oversubscribed 512-GPU pod, the optimizer should keep the
  // iteration time close to the full-bisection result by routing the heavy
  // TP traffic inside pods — the slowdown stays well under the 4x raw
  // bandwidth loss.
  const auto mdl = model::gpt3_1t();
  hw::SystemConfig sys = b200(8, 8192);
  search::SearchOptions opts;
  opts.strategy = TpStrategy::TP1D;
  opts.global_batch = 4096;
  const auto full = search::find_optimal(mdl, sys, opts).best;
  sys.net.pod_size = 512;
  sys.net.oversubscription = 4.0;
  const auto oversub = search::find_optimal(mdl, sys, opts).best;
  ASSERT_TRUE(full.feasible && oversub.feasible);
  EXPECT_GE(oversub.iteration(), full.iteration());
  EXPECT_LT(oversub.iteration(), 1.5 * full.iteration());
}

}  // namespace
}  // namespace tfpe
