// MUST NOT COMPILE: only dimensionless quantities convert to double; a
// Bytes value must be read out explicitly via .value().
#include "util/units.hpp"

int main() {
  double d = tfpe::util::Bytes(1e9);
  return static_cast<int>(d);
}
