// Must NOT compile: RuleId is a scoped enum — rule identities come from the
// registry, never from raw integers that could drift as rules are added.
#include "analysis/diagnostics.hpp"

int main() {
  tfpe::analysis::RuleId r = 3;  // error: no int -> RuleId conversion
  (void)r;
}
