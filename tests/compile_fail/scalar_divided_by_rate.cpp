// MUST NOT COMPILE: double / Quantity is not provided — the numerator's
// dimension must be stated, e.g. Bytes(x) / BytesPerSec(y).
#include "util/units.hpp"

int main() {
  auto t = 1e9 / tfpe::util::BytesPerSec(1e12);
  return static_cast<int>(t.value());
}
