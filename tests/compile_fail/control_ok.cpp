// Positive control for the negative-compile harness: dimensionally sound
// unit arithmetic must be ACCEPTED by the same compiler invocation.
#include "util/units.hpp"

int main() {
  using namespace tfpe::util;
  const Seconds t = Bytes(1e9) / BytesPerSec(1e12);
  const Seconds u = Flops(1e12) / FlopsPerSec(1e15);
  const Bytes moved = BytesPerSec(1e12) * (t + u);
  const double ratio = moved / Bytes(2e9);  // dimensionless -> double
  return ratio > 0.0 ? 0 : 1;
}
