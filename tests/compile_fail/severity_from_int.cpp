// Must NOT compile: Severity is a scoped enum, so a raw integer can never
// silently become a diagnostic severity.
#include "analysis/diagnostics.hpp"

int main() {
  tfpe::analysis::Severity s = 0;  // error: no int -> Severity conversion
  (void)s;
}
