// MUST NOT COMPILE: construction from a raw double is explicit, so an
// untagged magnitude cannot silently acquire a dimension.
#include "util/units.hpp"

int main() {
  tfpe::util::Bytes b = 1e9;
  return static_cast<int>(b.value());
}
