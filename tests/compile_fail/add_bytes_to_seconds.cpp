// MUST NOT COMPILE: adding quantities of different dimensions.
#include "util/units.hpp"

int main() {
  auto x = tfpe::util::Bytes(8.0) + tfpe::util::Seconds(1.0);
  return static_cast<int>(x.value());
}
