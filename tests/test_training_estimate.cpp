// Tests for the days-to-train estimates (Fig. 5 inputs).

#include <gtest/gtest.h>

#include "core/training_estimate.hpp"

namespace tfpe::core {
namespace {

TEST(TokenTraining, StepArithmetic) {
  const auto mdl = model::gpt3_1t();
  // 1T tokens / (4096 * 2048 tokens per step) = 119209.3 steps.
  const TrainingEstimate est =
      estimate_token_training(mdl, 4096, 2.0, kGpt3PretrainTokens);
  EXPECT_NEAR(est.steps, 1e12 / (4096.0 * 2048.0), 1.0);
  EXPECT_DOUBLE_EQ(est.total_seconds, est.steps * 2.0);
  EXPECT_NEAR(est.days, est.total_seconds / 86400.0, 1e-9);
}

TEST(SampleTraining, StepArithmetic) {
  const TrainingEstimate est =
      estimate_sample_training(4096, 1.5, kEra5TrainingSamples);
  EXPECT_NEAR(est.steps, 40.0 * 365 * 24 * 80 / 4096.0, 1e-6);
  EXPECT_DOUBLE_EQ(est.step_time, 1.5);
}

TEST(Budgets, MatchPaperNumbers) {
  EXPECT_DOUBLE_EQ(kGpt3PretrainTokens, 1e12);
  EXPECT_NEAR(kEra5TrainingSamples, 2.8e7, 0.3e6);
}

TEST(Cost, ArithmeticAndPue) {
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 1024);
  // 1024 GPUs x 1 kW x PUE 1.3 for one hour = 1.33 MWh, 1024 GPU-hours.
  const CostEstimate c = estimate_cost(sys, 1024, 3600.0, 1.3, 5.0);
  EXPECT_DOUBLE_EQ(c.gpu_hours, 1024.0);
  EXPECT_NEAR(c.energy_mwh, 1.3312, 1e-9);
  EXPECT_DOUBLE_EQ(c.cost_usd, 5120.0);
}

TEST(Cost, ZeroRateSkipsDollars) {
  const auto sys = hw::make_system(hw::GpuGeneration::A100, 8, 16);
  const CostEstimate c = estimate_cost(sys, 16, 7200.0);
  EXPECT_DOUBLE_EQ(c.cost_usd, 0.0);
  EXPECT_GT(c.energy_mwh, 0.0);
}

TEST(Cost, TdpPresetsOrdered) {
  EXPECT_DOUBLE_EQ(hw::a100().tdp_watts, 400.0);
  EXPECT_DOUBLE_EQ(hw::h200().tdp_watts, 700.0);
  EXPECT_DOUBLE_EQ(hw::b200().tdp_watts, 1000.0);
}

TEST(TokenTraining, ScalesInverselyWithIterationTime) {
  const auto mdl = model::gpt3_1t();
  const auto slow = estimate_token_training(mdl, 4096, 4.0, 1e12);
  const auto fast = estimate_token_training(mdl, 4096, 1.0, 1e12);
  EXPECT_DOUBLE_EQ(slow.days, 4.0 * fast.days);
}

}  // namespace
}  // namespace tfpe::core
