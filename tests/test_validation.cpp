// Tests for the model-vs-simulation validation layer (the repo's substitute
// for the paper's Perlmutter empirical validation).

#include <gtest/gtest.h>

#include "sim/validation.hpp"

namespace tfpe::sim {
namespace {

TEST(ValidateCollective, SmallErrorInBandwidthRegime) {
  const auto net = hw::network_preset(hw::GpuGeneration::A100);
  const ValidationPoint p = validate_collective(
      net, ops::Collective::AllGather, Bytes(8e9), 32, 4, "AG 8GB 32 GPUs");
  EXPECT_LT(p.abs_pct_error(), 20.0);
  EXPECT_EQ(p.label, "AG 8GB 32 GPUs");
}

TEST(ValidateIteration, Gpt175bWithinPaperErrorBand) {
  // Paper: the 512-GPU GPT3-175B validation configs show 4-15% error.
  const auto mdl = model::gpt3_175b();
  const auto sys = hw::perlmutter(512);
  parallel::ParallelConfig cfg;
  cfg.strategy = parallel::TpStrategy::TP1D;
  cfg.n1 = 4;
  cfg.np = 16;
  cfg.nd = 8;
  cfg.microbatches = 128;  // b=1024, nd=8 -> local batch 128, b_loc=1
  cfg.nvs1 = 4;
  const ValidationPoint p = validate_iteration(mdl, sys, cfg, 1024, "opt");
  EXPECT_GT(p.analytic_seconds, 0.0);
  EXPECT_GT(p.simulated_seconds, 0.0);
  EXPECT_LT(p.abs_pct_error(), 30.0);
}

TEST(ValidateIteration, OrderingConsistentAcrossConfigs) {
  // The paper checks that larger observed times correspond to larger
  // predicted times across sub-optimal configurations.
  const auto mdl = model::gpt3_175b();
  const auto sys = hw::perlmutter(512);
  struct Cfg {
    std::int64_t nt, np, nd;
  };
  std::vector<double> analytic, simulated;
  for (const Cfg& c : {Cfg{4, 16, 8}, Cfg{8, 8, 8}, Cfg{2, 32, 8}, Cfg{4, 8, 16}}) {
    parallel::ParallelConfig cfg;
    cfg.strategy = parallel::TpStrategy::TP1D;
    cfg.n1 = c.nt;
    cfg.np = c.np;
    cfg.nd = c.nd;
    cfg.microbatches = 1024 / c.nd;
    cfg.nvs1 = std::min<std::int64_t>(4, c.nt);
    const ValidationPoint p = validate_iteration(mdl, sys, cfg, 1024, "cfg");
    analytic.push_back(p.analytic_seconds);
    simulated.push_back(p.simulated_seconds);
  }
  // Kendall-style concordance: every pair ordered the same way.
  for (std::size_t i = 0; i < analytic.size(); ++i) {
    for (std::size_t j = i + 1; j < analytic.size(); ++j) {
      EXPECT_GT((analytic[i] - analytic[j]) * (simulated[i] - simulated[j]),
                0.0)
          << "pair " << i << "," << j;
    }
  }
}

TEST(ValidateIteration, ThrowsOnInfeasibleConfig) {
  const auto mdl = model::gpt3_1t();
  const auto sys = hw::perlmutter(4);
  parallel::ParallelConfig cfg;  // 1 GPU, everything unsharded: overflows
  cfg.microbatches = 1;
  EXPECT_THROW(validate_iteration(mdl, sys, cfg, 4096, "x"),
               std::invalid_argument);
}

TEST(ValidationPoint, PctError) {
  ValidationPoint p{"x", 1.1, 1.0};
  EXPECT_NEAR(p.pct_error(), 10.0, 1e-9);
  EXPECT_NEAR(p.abs_pct_error(), 10.0, 1e-9);
  p.analytic_seconds = 0.9;
  EXPECT_NEAR(p.pct_error(), -10.0, 1e-9);
  EXPECT_NEAR(p.abs_pct_error(), 10.0, 1e-9);
}

}  // namespace
}  // namespace tfpe::sim
