// Tests for the activation-residency timeline: the executed 1F1B schedule
// must exhibit exactly the in-flight counts the HBM model assumes.

#include <gtest/gtest.h>

#include "pipeline/pipeline_model.hpp"
#include "sim/interleaved_sim.hpp"
#include "sim/memory_timeline.hpp"

namespace tfpe::sim {
namespace {

TEST(MemoryTimeline, MatchesMinOfMAndNpPerStage) {
  // Deep pipeline, many microbatches: stage s holds min(m, np - s).
  const std::int64_t np = 8, m = 64;
  const auto trace = simulate_pipeline(
      {np, m, Seconds(1.0), Seconds(2.0), Seconds(0.0)});
  const auto profiles = activation_timeline(trace, np);
  ASSERT_EQ(profiles.size(), static_cast<std::size_t>(np));
  for (std::int64_t s = 0; s < np; ++s) {
    EXPECT_EQ(profiles[static_cast<std::size_t>(s)].high_water_microbatches,
              np - s)
        << "stage " << s;
  }
}

TEST(MemoryTimeline, CappedByMicrobatchCount) {
  // Fewer microbatches than stages: residency is capped at m everywhere it
  // would otherwise exceed it.
  const std::int64_t np = 8, m = 3;
  const auto trace = simulate_pipeline(
      {np, m, Seconds(1.0), Seconds(1.0), Seconds(0.0)});
  const auto profiles = activation_timeline(trace, np);
  for (std::int64_t s = 0; s < np; ++s) {
    EXPECT_EQ(profiles[static_cast<std::size_t>(s)].high_water_microbatches,
              std::min<std::int64_t>(m, np - s))
        << "stage " << s;
  }
}

TEST(MemoryTimeline, PeakMatchesMemoryModelAssumption) {
  for (const auto [np, m] : {std::pair<std::int64_t, std::int64_t>{4, 16},
                             {16, 4}, {1, 8}, {8, 8}}) {
    const auto trace = simulate_pipeline(
      {np, m, Seconds(0.5), Seconds(1.0), Seconds(0.01)});
    EXPECT_EQ(peak_in_flight(trace, np),
              pipeline::in_flight_microbatches(np, m))
        << "np=" << np << " m=" << m;
  }
}

TEST(MemoryTimeline, Stage0IsTheBusiest) {
  const auto trace = simulate_pipeline(
      {6, 32, Seconds(1.0), Seconds(2.0), Seconds(0.0)});
  const auto profiles = activation_timeline(trace, 6);
  for (std::size_t s = 1; s < profiles.size(); ++s) {
    EXPECT_LE(profiles[s].high_water_microbatches,
              profiles[0].high_water_microbatches);
  }
}

TEST(MemoryTimeline, InterleavedScheduleHoldsMoreChunkActivations) {
  // With v chunks each microbatch contributes v resident chunk-activations
  // on a GPU; the interleaved schedule's deeper warmup raises the peak in
  // chunk units (its bubble advantage is paid in memory).
  const std::int64_t np = 4, m = 16;
  const auto plain = simulate_pipeline(
      {np, m, Seconds(1.0), Seconds(1.0), Seconds(0.0)});
  const auto inter = simulate_interleaved_pipeline({np, 2, m, 0.5, 0.5, 0.0});
  EXPECT_GT(peak_in_flight(inter, np), peak_in_flight(plain, np));
}

TEST(MemoryTimeline, PeakTimeIsDuringWarmup) {
  const std::int64_t np = 4, m = 32;
  const auto trace = simulate_pipeline(
      {np, m, Seconds(1.0), Seconds(1.0), Seconds(0.0)});
  const auto profiles = activation_timeline(trace, np);
  // Stage 0 reaches its peak by the time its warmup forwards are done.
  EXPECT_LE(profiles[0].peak_time, np * 1.0 + 1e-9);
}

TEST(MemoryTimeline, RejectsBadInput) {
  const auto trace = simulate_pipeline(
      {2, 2, Seconds(1.0), Seconds(1.0), Seconds(0.0)});
  EXPECT_THROW(activation_timeline(trace, 0), std::invalid_argument);
  EXPECT_THROW(activation_timeline(trace, 1), std::invalid_argument);
}

}  // namespace
}  // namespace tfpe::sim
