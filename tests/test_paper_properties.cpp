// Integration tests asserting the paper's qualitative findings hold in the
// model — these are the repo's regression guard for the figure shapes.

#include <gtest/gtest.h>

#include "core/training_estimate.hpp"
#include "report/figure_data.hpp"
#include "search/search.hpp"

namespace tfpe {
namespace {

using parallel::TpStrategy;

hw::SystemConfig b200(std::int64_t nvs, std::int64_t n) {
  return hw::make_system(hw::GpuGeneration::B200, nvs, n);
}

// Fig. 1: with PP=64 on 16384 B200 / NVS8 and microbatch size 1, iteration
// time is convex in TP with the minimum at nt=8, nd=32, m=128.
TEST(PaperFig1, ConvexWithMinimumAtTp8) {
  const auto mdl = model::gpt3_1t();
  const auto sys = b200(8, 16384);
  std::vector<double> times;
  std::vector<std::int64_t> nts;
  for (std::int64_t nt = 1; nt <= 32; nt *= 2) {
    parallel::ParallelConfig cfg;
    cfg.strategy = TpStrategy::TP1D;
    cfg.n1 = nt;
    cfg.np = 64;
    cfg.nd = 256 / nt;
    cfg.microbatches = 4096 / cfg.nd;
    const auto r = search::best_placement(mdl, sys, cfg, 4096);
    ASSERT_TRUE(r.feasible) << cfg.describe() << ": " << r.reason;
    times.push_back(r.iteration());
    nts.push_back(nt);
  }
  const auto argmin = static_cast<std::size_t>(
      std::min_element(times.begin(), times.end()) - times.begin());
  EXPECT_EQ(nts[argmin], 8);
  // Convex: strictly decreasing to the min, strictly increasing after.
  for (std::size_t i = 0; i < argmin; ++i) EXPECT_GT(times[i], times[i + 1]);
  for (std::size_t i = argmin; i + 1 < times.size(); ++i) {
    EXPECT_LT(times[i], times[i + 1]);
  }
}

// Fig. 2b: on a 64-GPU NVS domain, the PP/DP sweep favors low PP (the domain
// absorbs DP communication).
TEST(PaperFig2, LargeNvsFavorsLowPp) {
  const auto mdl = model::gpt3_1t();
  auto best_np = [&](std::int64_t nvs) {
    const auto sys = b200(nvs, 16384);
    double best_time = 1e30;
    std::int64_t best = -1;
    for (std::int64_t np : {2, 4, 8, 16, 32, 64, 128}) {
      parallel::ParallelConfig cfg;
      cfg.strategy = TpStrategy::TP1D;
      cfg.n1 = 8;
      cfg.np = np;
      cfg.nd = 2048 / np;
      if (4096 % cfg.nd) continue;
      cfg.microbatches = 4096 / cfg.nd;
      const auto r = search::best_placement(mdl, sys, cfg, 4096);
      if (r.feasible && r.iteration() < best_time) {
        best_time = r.iteration();
        best = np;
      }
    }
    return best;
  };
  EXPECT_LT(best_np(64), best_np(8));
}

// Fig. 4a: GPT3-1T spends most of its time in compute at every scale, and
// HBM utilization drops at large scale.
TEST(PaperFig4a, ComputeDominatedAndMemoryDropsAtScale) {
  const auto mdl = model::gpt3_1t();
  const auto sys = b200(8, 16384);
  const auto small = report::optimal_at_scale(mdl, sys, TpStrategy::TP1D, 4096, 512);
  const auto large =
      report::optimal_at_scale(mdl, sys, TpStrategy::TP1D, 4096, 16384);
  ASSERT_TRUE(small.feasible && large.feasible);
  EXPECT_GT(small.time.compute, 0.5 * small.iteration());
  EXPECT_GT(large.time.compute, 0.35 * large.iteration());
  EXPECT_LT(large.mem.total(), 0.75 * small.mem.total());
}

// Fig. 4b: for the ViT-64K the paper finds 1D TP unusable (activation
// memory) and 2D TP necessary with large TP. In this model's accounting 1D
// TP sits exactly at the HBM cliff (>95% utilization) and is decisively
// slower; 2D TP with a sequence-parallel dimension is the optimum.
TEST(PaperFig4b, VitNeeds2dTp) {
  const auto mdl = model::vit_64k();
  const auto sys = b200(8, 4096);

  search::SearchOptions opt1d;
  opt1d.strategy = TpStrategy::TP1D;
  opt1d.global_batch = 4096;
  const auto r1d = search::find_optimal(mdl, sys, opt1d);

  search::SearchOptions opt2d;
  opt2d.strategy = TpStrategy::TP2D;
  opt2d.global_batch = 4096;
  const auto r2d = search::find_optimal(mdl, sys, opt2d);
  ASSERT_TRUE(r2d.best.feasible) << r2d.best.reason;
  EXPECT_GE(r2d.best.cfg.tp(), 8);
  EXPECT_GT(r2d.best.cfg.n2, 1);
  if (r1d.best.feasible) {
    // 1D TP pinned to the memory cliff and clearly slower than 2D TP.
    EXPECT_GT(r1d.best.mem.total().value(), 0.95 * sys.gpu.hbm_capacity.value());
    EXPECT_GT(r1d.best.iteration(), 1.3 * r2d.best.iteration());
  }
  // TP communication dominates the other communication costs.
  const auto& t = r2d.best.time;
  EXPECT_GT(t.tp_comm, t.dp_comm);
  EXPECT_GT(t.tp_comm, t.pp_comm);
}

// Fig. 5a: B200 trains GPT3-1T on 1T tokens in O(days) at 16K GPUs; A100
// takes O(30) days; generations strictly improve.
TEST(PaperFig5a, GenerationsAndAbsoluteScale) {
  const auto mdl = model::gpt3_1t();
  double prev_days = 1e30;
  for (auto gen : {hw::GpuGeneration::A100, hw::GpuGeneration::H200,
                   hw::GpuGeneration::B200}) {
    const auto sys = hw::make_system(gen, 8, 16384);
    const auto r =
        report::optimal_at_scale(mdl, sys, TpStrategy::TP1D, 4096, 16384);
    ASSERT_TRUE(r.feasible) << hw::to_string(gen);
    const auto est = core::estimate_token_training(
        mdl, 4096, r.iteration(), core::kGpt3PretrainTokens);
    EXPECT_LT(est.days, prev_days);
    prev_days = est.days;
    if (gen == hw::GpuGeneration::A100) {
      EXPECT_GT(est.days, 10.0);  // paper: O(30) days
      EXPECT_LT(est.days, 80.0);
    }
    if (gen == hw::GpuGeneration::B200) {
      EXPECT_GT(est.days, 1.0);  // paper: O(3-5) days
      EXPECT_LT(est.days, 10.0);
    }
  }
}

// Fig. 5b / Q3(iv): the ViT depends on the NVS domain size at moderate scale
// (TP must span the domain), unlike GPT3-1T whose mid-scale sensitivity is
// mild.
TEST(PaperFig5b, VitMoreSensitiveToNvsThanGpt) {
  const std::int64_t n = 2048;
  auto ratio = [&](const model::TransformerConfig& mdl, TpStrategy strat) {
    const auto r4 = report::optimal_at_scale(mdl, b200(4, n), strat, 4096, n);
    const auto r64 = report::optimal_at_scale(mdl, b200(64, n), strat, 4096, n);
    EXPECT_TRUE(r4.feasible && r64.feasible);
    return r4.iteration() / r64.iteration();
  };
  const double gpt_gain = ratio(model::gpt3_1t(), TpStrategy::TP1D);
  const double vit_gain = ratio(model::vit_64k(), TpStrategy::TP2D);
  EXPECT_GT(vit_gain, gpt_gain);
  EXPECT_GT(vit_gain, 1.05);  // ViT sees real benefit
}

// Q2(iii)/(iv): ViT keeps HBM highly utilized at scale while GPT3-1T does not.
TEST(PaperQ2, VitKeepsHbmFull) {
  const auto vit = report::optimal_at_scale(model::vit_64k(), b200(8, 4096),
                                            TpStrategy::TP2D, 4096, 4096);
  ASSERT_TRUE(vit.feasible);
  EXPECT_GT(vit.mem.total().value(), 0.5 * 192e9);
}

}  // namespace
}  // namespace tfpe
