// Architecture x configuration co-design engine: the shape-family
// generator's iso-parameter / divisibility / lint properties, the
// architecture-level floor's soundness against the per-configuration
// bounds, and the product search's bitwise contract against find_optimal —
// single-shape golden runs across the engine arms, full-matrix equality
// with shape pruning off, winner preservation with it on, the
// (shape, n_gpus) candidate-memo aliasing regression, and thread-count
// invariance of the CodesignStats work counters. Suites are named
// Codesign/ShapeFamily on purpose — the tsan CTest preset filters on
// Codesign.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/invariants.hpp"
#include "core/lower_bounds.hpp"
#include "model/shape_family.hpp"
#include "search/codesign.hpp"
#include "search/search.hpp"
#include "search/sweep.hpp"

namespace tfpe {
namespace {

void expect_same_optimum(const core::EvalResult& ref,
                         const core::EvalResult& got,
                         const std::string& label) {
  ASSERT_EQ(ref.feasible, got.feasible) << label;
  if (!ref.feasible) return;
  EXPECT_EQ(ref.cfg.describe(), got.cfg.describe()) << label;
  EXPECT_EQ(ref.iteration(), got.iteration()) << label;
  EXPECT_EQ(ref.mem.total().value(), got.mem.total().value()) << label;
}

/// A small, FLOP-diverse iso-parameter family around GPT3-175B's budget
/// (wide depth range and aspect window so the shapes' attention floors
/// actually spread).
std::vector<model::TransformerConfig> small_family() {
  model::ShapeFamilyOptions fam;
  fam.tolerance = 0.05;
  fam.depths = {48, 96, 192};
  fam.heads = {64, 96};
  fam.head_dims = {128};
  fam.aspect_min = 1.0;
  fam.aspect_max = 8.0;
  auto shapes = model::shape_family(model::gpt3_175b(), fam);
  EXPECT_GE(shapes.size(), 3u);
  return shapes;
}

TEST(ShapeFamily, ShapesMeetToleranceAndDivisibility) {
  const auto base = model::gpt3_1t();
  model::ShapeFamilyOptions fam;
  fam.tolerance = 0.03;
  fam.depth_min = 64;
  fam.depth_max = 192;
  fam.depth_step = 32;
  fam.heads_min = 64;
  fam.heads_max = 224;
  fam.heads_step = 32;
  fam.head_dims = {128, 160};
  fam.aspect_min = 1.0;
  fam.aspect_max = 8.0;
  fam.kv_heads = {0, 8};
  const auto shapes = model::shape_family(base, fam);
  ASSERT_GE(shapes.size(), 20u);
  const double target = static_cast<double>(base.total_params());
  for (const auto& s : shapes) {
    // validate() already ran inside shape_family; re-check the family
    // invariants explicitly.
    EXPECT_EQ(s.embed % s.heads, 0) << s.name;
    EXPECT_EQ(s.hidden % fam.hidden_multiple, 0) << s.name;
    if (s.kv_heads > 0) EXPECT_EQ(s.heads % s.kv_heads, 0) << s.name;
    EXPECT_EQ(s.seq_len, base.seq_len) << s.name;
    const double total = static_cast<double>(s.total_params());
    EXPECT_LE(std::abs(total - target), fam.tolerance * target) << s.name;
    const double aspect = static_cast<double>(s.hidden) /
                          static_cast<double>(s.embed);
    EXPECT_GE(aspect, fam.aspect_min) << s.name;
    EXPECT_LE(aspect, fam.aspect_max) << s.name;
  }
}

TEST(ShapeFamily, EveryShapeLintsClean) {
  for (const auto& s : small_family()) {
    parallel::ParallelConfig cfg;
    cfg.n1 = 8;
    cfg.np = 1;
    cfg.nd = 1;
    cfg.microbatches = 1;
    const auto report = analysis::lint_config(s, cfg, 2);
    EXPECT_TRUE(report.clean()) << s.name << "\n" << report.summary();
  }
}

TEST(ShapeFamily, RejectsMalformedOptions) {
  const auto base = model::gpt3_175b();
  model::ShapeFamilyOptions fam;
  fam.tolerance = 0.0;
  EXPECT_THROW(model::shape_family(base, fam), std::invalid_argument);
  fam = {};
  fam.tolerance = 1.5;
  EXPECT_THROW(model::shape_family(base, fam), std::invalid_argument);
  fam = {};
  fam.depth_min = 64;
  fam.depth_max = 32;
  EXPECT_THROW(model::shape_family(base, fam), std::invalid_argument);
  fam = {};
  fam.depth_step = 0;
  EXPECT_THROW(model::shape_family(base, fam), std::invalid_argument);
  fam = {};
  fam.head_dims = {};
  EXPECT_THROW(model::shape_family(base, fam), std::invalid_argument);
  fam = {};
  fam.head_dims = {0};
  EXPECT_THROW(model::shape_family(base, fam), std::invalid_argument);
  fam = {};
  fam.aspect_min = 4.0;
  fam.aspect_max = 2.0;
  EXPECT_THROW(model::shape_family(base, fam), std::invalid_argument);
  fam = {};
  fam.hidden_multiple = 0;
  EXPECT_THROW(model::shape_family(base, fam), std::invalid_argument);
  fam = {};
  fam.kv_heads = {};
  EXPECT_THROW(model::shape_family(base, fam), std::invalid_argument);
  fam = {};
  fam.moe_experts = {-1};
  EXPECT_THROW(model::shape_family(base, fam), std::invalid_argument);
}

/// The architecture-level floor must sit below every candidate's
/// per-configuration bound — the property that keeps shape pruning exact.
TEST(Codesign, ShapeFloorBelowEveryConfigFloor) {
  const auto sys = hw::make_system(hw::GpuGeneration::H200, 8, 256);
  search::SearchOptions opts;
  opts.global_batch = 1024;
  opts.allow_zero3 = true;
  opts.interleave_candidates = {1, 2};
  for (const auto& shape : small_family()) {
    const double floor =
        core::shape_time_floor(shape, sys, sys.n_gpus, opts.global_batch);
    EXPECT_GT(floor, 0.0) << shape.name;
    const auto configs = search::expand_candidates(shape, sys, opts);
    ASSERT_FALSE(configs.empty()) << shape.name;
    for (const auto& cfg : configs) {
      if (cfg.invalid_reason(shape, sys, opts.global_batch)) continue;
      const auto bounds =
          core::search_bounds(shape, sys, cfg, opts.global_batch);
      EXPECT_LE(floor, bounds.time_floor * (1.0 + 1e-12))
          << shape.name << " " << cfg.describe();
    }
  }
}

/// Golden satellite: a single-shape co-design run IS find_optimal, bit for
/// bit, across prune on/off x batch on/off (warm starts exercised too —
/// with one shape they reduce to the PR 6 chain seeds).
TEST(Codesign, SingleShapeReproducesFindOptimal) {
  const auto mdl = model::gpt3_175b();
  const auto points = search::hardware_grid(
      {hw::GpuGeneration::A100, hw::GpuGeneration::B200}, {4, 16}, 256);
  for (bool prune : {false, true}) {
    for (bool batch : {false, true}) {
      search::CodesignOptions opts;
      opts.sweep.search.global_batch = 1024;
      opts.sweep.search.prune = prune;
      opts.sweep.batch = batch;
      opts.sweep.warm_start = true;
      opts.sweep.threads = 2;
      const auto run = search::run_codesign({mdl}, points, opts);
      ASSERT_EQ(run.best.size(), points.size());
      for (std::size_t p = 0; p < points.size(); ++p) {
        ASSERT_FALSE(run.pruned[0][p]);
        const auto direct = search::find_optimal(mdl, points[p],
                                                 opts.sweep.search);
        const std::string label = "point " + std::to_string(p) + " prune=" +
                                  std::to_string(prune) + " batch=" +
                                  std::to_string(batch);
        expect_same_optimum(direct.best, run.per_shape[0][p], label);
        expect_same_optimum(direct.best, run.best[p].best, label);
        if (direct.best.feasible) EXPECT_EQ(run.best[p].shape, 0u) << label;
      }
    }
  }
}

/// With shape pruning off, the full (shape x point) matrix is exact and
/// the winner is the shape-order better_result reduction.
TEST(Codesign, MatrixMatchesFindOptimalPerShape) {
  const auto shapes = small_family();
  const auto points = search::hardware_grid(
      {hw::GpuGeneration::A100, hw::GpuGeneration::B200}, {8}, 128);
  search::CodesignOptions opts;
  opts.sweep.search.global_batch = 512;
  opts.sweep.warm_start = true;
  opts.sweep.threads = 2;
  opts.prune_shapes = false;
  const auto run = search::run_codesign(shapes, points, opts);
  EXPECT_EQ(run.stats.shapes_pruned, 0u);
  EXPECT_EQ(run.stats.shapes_evaluated, shapes.size() * points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    core::EvalResult ref;
    ref.reason = "no feasible configuration";
    std::size_t ref_shape = search::CodesignResult::kNoShape;
    for (std::size_t s = 0; s < shapes.size(); ++s) {
      const auto direct =
          search::find_optimal(shapes[s], points[p], opts.sweep.search);
      expect_same_optimum(direct.best, run.per_shape[s][p],
                          shapes[s].name + " point " + std::to_string(p));
      if (search::better_result(direct.best, ref)) {
        ref = direct.best;
        ref_shape = s;
      }
    }
    expect_same_optimum(ref, run.best[p].best,
                        "winner point " + std::to_string(p));
    EXPECT_EQ(run.best[p].shape, ref_shape) << "point " << p;
  }
}

/// Shape pruning must not move any winner, and every pair it skips is
/// flagged with the shape-pruned reason instead of a fabricated result.
TEST(Codesign, ShapePruningPreservesWinnersBitwise) {
  const auto shapes = small_family();
  const auto points = search::hardware_grid(
      {hw::GpuGeneration::A100, hw::GpuGeneration::H200}, {4, 16}, 128);
  search::CodesignOptions exhaustive;
  exhaustive.sweep.search.global_batch = 512;
  exhaustive.sweep.warm_start = true;
  exhaustive.sweep.threads = 2;
  exhaustive.prune_shapes = false;
  search::CodesignOptions pruned = exhaustive;
  pruned.prune_shapes = true;
  const auto ref = search::run_codesign(shapes, points, exhaustive);
  const auto got = search::run_codesign(shapes, points, pruned);
  EXPECT_EQ(got.stats.shapes_pruned + got.stats.shapes_evaluated,
            shapes.size() * points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    expect_same_optimum(ref.best[p].best, got.best[p].best,
                        "winner point " + std::to_string(p));
    EXPECT_EQ(ref.best[p].shape, got.best[p].shape) << "point " << p;
    for (std::size_t s = 0; s < shapes.size(); ++s) {
      if (got.pruned[s][p]) {
        EXPECT_FALSE(got.per_shape[s][p].feasible);
        EXPECT_NE(got.per_shape[s][p].reason.find("shape pruned"),
                  std::string::npos);
      } else {
        expect_same_optimum(ref.per_shape[s][p], got.per_shape[s][p],
                            shapes[s].name + " point " + std::to_string(p));
      }
    }
  }
}

/// Work counters are thread-invariant: shapes reduce sequentially, chains
/// are sequential inside, so only the stage profile may differ.
TEST(Codesign, StatsAreThreadInvariant) {
  const auto shapes = small_family();
  const auto points = search::hardware_grid(
      {hw::GpuGeneration::A100, hw::GpuGeneration::B200}, {4, 8, 16}, 128);
  search::CodesignOptions opts;
  opts.sweep.search.global_batch = 512;
  opts.sweep.warm_start = true;
  search::CodesignStats stats[2];
  for (int i = 0; i < 2; ++i) {
    opts.sweep.threads = i == 0 ? 1 : 4;
    const auto run = search::run_codesign(shapes, points, opts);
    stats[i] = run.stats;
  }
  EXPECT_EQ(stats[0].shapes_pruned, stats[1].shapes_pruned);
  EXPECT_EQ(stats[0].shapes_evaluated, stats[1].shapes_evaluated);
  EXPECT_EQ(stats[0].feasible_shape_points, stats[1].feasible_shape_points);
  EXPECT_EQ(stats[0].enumerations, stats[1].enumerations);
  EXPECT_EQ(stats[0].candidates, stats[1].candidates);
  EXPECT_EQ(stats[0].evaluated, stats[1].evaluated);
  EXPECT_EQ(stats[0].bound_pruned, stats[1].bound_pruned);
  EXPECT_EQ(stats[0].memory_pruned, stats[1].memory_pruned);
  EXPECT_EQ(stats[0].batch_calls, stats[1].batch_calls);
  EXPECT_EQ(stats[0].batch_placements, stats[1].batch_placements);
  EXPECT_EQ(stats[0].warm_seeded, stats[1].warm_seeded);
  EXPECT_EQ(stats[0].warm_seed_feasible, stats[1].warm_seed_feasible);
  EXPECT_EQ(stats[0].signature_compiles, stats[1].signature_compiles);
  EXPECT_EQ(stats[0].signature_lowers, stats[1].signature_lowers);
  EXPECT_EQ(stats[0].build_layer_calls, stats[1].build_layer_calls);
  EXPECT_EQ(stats[0].placement_sets, stats[1].placement_sets);
}

/// Satellite regression: the candidate memo keys on the FULL (shape,
/// n_gpus) pair — two different shapes at the same scale must not alias.
TEST(Codesign, CandidateCacheDoesNotAliasShapesAtEqualScale) {
  const auto shapes = small_family();
  ASSERT_GE(shapes.size(), 2u);
  const auto a = shapes.front();
  const auto b = shapes.back();
  ASSERT_NE(search::shape_key(a, 128), search::shape_key(b, 128));
  const auto sys = hw::make_system(hw::GpuGeneration::A100, 8, 128);
  search::SearchOptions opts;
  opts.global_batch = 512;
  search::CandidateCache cache;
  const auto la = cache.get(a, sys, opts);
  const auto lb = cache.get(b, sys, opts);
  EXPECT_EQ(cache.builds(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_NE(la.get(), lb.get());
  // Each memoized list is exactly the direct enumeration for its shape.
  const auto da = search::expand_candidates(a, sys, opts);
  const auto db = search::expand_candidates(b, sys, opts);
  ASSERT_EQ(la->size(), da.size());
  ASSERT_EQ(lb->size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ((*la)[i].describe(), da[i].describe());
  }
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ((*lb)[i].describe(), db[i].describe());
  }
  // Same shape, same scale: a hit sharing the same immutable list.
  const auto la2 = cache.get(a, sys, opts);
  EXPECT_EQ(la2.get(), la.get());
  EXPECT_EQ(cache.hits(), 1u);
  // Same shape, different scale: a distinct entry.
  const auto sys2 = hw::make_system(hw::GpuGeneration::A100, 8, 64);
  const auto la64 = cache.get(a, sys2, opts);
  EXPECT_NE(la64.get(), la.get());
  EXPECT_EQ(cache.builds(), 3u);
}

TEST(Codesign, RejectsUnsupportedOptions) {
  const auto points = search::hardware_grid({hw::GpuGeneration::A100}, {8},
                                            64);
  search::CodesignOptions opts;
  opts.sweep.search.global_batch = 256;
  opts.sweep.search.top_k = 3;
  EXPECT_THROW(
      search::run_codesign({model::gpt3_175b()}, points, opts),
      std::invalid_argument);
  opts.sweep.search.top_k = 0;
  opts.sweep.search.threads = 2;
  EXPECT_THROW(
      search::run_codesign({model::gpt3_175b()}, points, opts),
      std::invalid_argument);
}

/// The naive arm (use_signatures = false) fills the same exact matrix.
TEST(Codesign, NaiveArmMatchesSignatureArm) {
  const auto shapes = small_family();
  const auto points =
      search::hardware_grid({hw::GpuGeneration::B200}, {4, 16}, 128);
  search::CodesignOptions fast;
  fast.sweep.search.global_batch = 512;
  fast.sweep.warm_start = true;
  fast.sweep.threads = 2;
  fast.prune_shapes = false;
  search::CodesignOptions naive = fast;
  naive.sweep.use_signatures = false;
  const auto a = search::run_codesign(shapes, points, fast);
  const auto b = search::run_codesign(shapes, points, naive);
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    for (std::size_t p = 0; p < points.size(); ++p) {
      expect_same_optimum(b.per_shape[s][p], a.per_shape[s][p],
                          shapes[s].name + " point " + std::to_string(p));
    }
  }
  for (std::size_t p = 0; p < points.size(); ++p) {
    expect_same_optimum(b.best[p].best, a.best[p].best,
                        "winner point " + std::to_string(p));
    EXPECT_EQ(b.best[p].shape, a.best[p].shape) << "point " << p;
  }
}

}  // namespace
}  // namespace tfpe
