// Golden regression tests: pin the headline reproduced numbers to windows
// so model refactors cannot silently change the figures. The windows are
// intentionally loose enough to survive small counting changes but tight
// enough to catch real regressions (a factor-2 FLOP bug, a lost collective,
// a broken overlap rule).

#include <gtest/gtest.h>

#include "comm/collective_model.hpp"
#include "core/training_estimate.hpp"
#include "report/figure_data.hpp"
#include "search/search.hpp"
#include "sim/validation.hpp"

namespace tfpe {
namespace {

using parallel::TpStrategy;

TEST(Golden, Fig1OptimumIterationTime) {
  // Paper Fig. 1 config D on 16384 B200: our model gives 2.63 s.
  parallel::ParallelConfig cfg;
  cfg.strategy = TpStrategy::TP1D;
  cfg.n1 = 8;
  cfg.np = 64;
  cfg.nd = 32;
  cfg.microbatches = 128;
  cfg.nvs1 = 8;
  const auto r = core::evaluate(
      model::gpt3_1t(), hw::make_system(hw::GpuGeneration::B200, 8, 16384),
      cfg, 4096);
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.iteration(), 2.0);
  EXPECT_LT(r.iteration(), 3.3);
  EXPECT_GT(r.mem.total().value(), 45e9);
  EXPECT_LT(r.mem.total().value(), 80e9);
}

TEST(Golden, Gpt3DaysOn16kB200) {
  // Fig. 5a: O(3-5) days in the paper; 3.6 in this model.
  const auto best = report::optimal_at_scale(
      model::gpt3_1t(), hw::make_system(hw::GpuGeneration::B200, 8, 16384),
      TpStrategy::TP1D, 4096, 16384);
  ASSERT_TRUE(best.feasible);
  const auto est = core::estimate_token_training(model::gpt3_1t(), 4096,
                                                 best.iteration(), 1e12);
  EXPECT_GT(est.days, 2.5);
  EXPECT_LT(est.days, 5.0);
}

TEST(Golden, Gpt3DaysOn16kA100) {
  // Fig. 5a: O(30) days in the paper; ~23 in this model.
  const auto best = report::optimal_at_scale(
      model::gpt3_1t(), hw::make_system(hw::GpuGeneration::A100, 8, 16384),
      TpStrategy::TP1D, 4096, 16384);
  ASSERT_TRUE(best.feasible);
  const auto est = core::estimate_token_training(model::gpt3_1t(), 4096,
                                                 best.iteration(), 1e12);
  EXPECT_GT(est.days, 15.0);
  EXPECT_LT(est.days, 35.0);
}

TEST(Golden, VitEra5DaysOn4kB200) {
  // Fig. 5b-scale check: ~3 days for 80 epochs on 4096 B200 (2D TP).
  const auto best = report::optimal_at_scale(
      model::vit_64k(), hw::make_system(hw::GpuGeneration::B200, 8, 4096),
      TpStrategy::TP2D, 4096, 4096);
  ASSERT_TRUE(best.feasible);
  const auto est = core::estimate_sample_training(
      4096, best.iteration(), core::kEra5TrainingSamples);
  EXPECT_GT(est.days, 1.5);
  EXPECT_LT(est.days, 6.0);
}

TEST(Golden, Gpt3MfuAtModerateScale) {
  // ~80% model-FLOPs utilization at 1024 B200 (compute-dominated regime).
  const auto mdl = model::gpt3_1t();
  const auto best = report::optimal_at_scale(
      mdl, hw::make_system(hw::GpuGeneration::B200, 8, 1024), TpStrategy::TP1D,
      4096, 1024);
  ASSERT_TRUE(best.feasible);
  const double useful = 6.0 * static_cast<double>(mdl.total_params()) * 4096.0 *
                        static_cast<double>(mdl.seq_len);
  const double mfu = useful / (best.iteration() * 2500e12 * 1024.0);
  EXPECT_GT(mfu, 0.6);
  EXPECT_LT(mfu, 0.95);
}

TEST(Golden, ValidationErrorBand) {
  // The DES-based validation of the GPT3-175B optimum stays under 10%.
  parallel::ParallelConfig cfg;
  cfg.strategy = TpStrategy::TP1D;
  cfg.n1 = 4;
  cfg.np = 16;
  cfg.nd = 8;
  cfg.microbatches = 128;
  cfg.nvs1 = 4;
  const auto p = sim::validate_iteration(model::gpt3_175b(),
                                         hw::perlmutter(512), cfg, 1024, "opt");
  EXPECT_LT(p.abs_pct_error(), 10.0);
}

TEST(Golden, CollectiveTimeAnchors) {
  // 1 GB AllGather across 32 B200 GPUs, 8 per domain:
  //   bw = min(8 rails * 70 GB/s, 630 GB/s) = 560 GB/s;
  //   t ~ 31/32 * 1 GB / 560 GB/s = 1.73 ms.
  const auto net = hw::network_preset(hw::GpuGeneration::B200);
  const double t = comm::collective_time(net, ops::Collective::AllGather,
                                         Bytes(1e9), {32, 8})
                       .value();
  EXPECT_NEAR(t, 1.73e-3, 0.1e-3);
}

TEST(Golden, InterleaveSpeedupAtScale) {
  // Interleaved schedules buy 20-35% at 16K B200 in this model.
  search::SearchOptions opts;
  opts.strategy = TpStrategy::TP1D;
  opts.global_batch = 4096;
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 16384);
  const auto base = search::find_optimal(model::gpt3_1t(), sys, opts);
  opts.interleave_candidates = {1, 2, 4, 8};
  const auto inter = search::find_optimal(model::gpt3_1t(), sys, opts);
  ASSERT_TRUE(base.best.feasible && inter.best.feasible);
  const double speedup = base.best.iteration() / inter.best.iteration() - 1.0;
  EXPECT_GT(speedup, 0.10);
  EXPECT_LT(speedup, 0.45);
}

}  // namespace
}  // namespace tfpe
