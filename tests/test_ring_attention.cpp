// Tests for the ring-attention extension: P2P K/V circulation across n2,
// overlapped with blockwise attention compute.

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "parallel/layer_builder.hpp"
#include "search/search.hpp"

namespace tfpe {
namespace {

using parallel::ParallelConfig;
using parallel::TpStrategy;

ParallelConfig vit_cfg(bool ring) {
  ParallelConfig c;
  c.strategy = TpStrategy::TP2D;
  c.n1 = 2;
  c.n2 = 8;
  c.np = 2;
  c.nd = 128;
  c.microbatches = 32;
  c.nvs1 = 2;
  c.nvs2 = 4;
  c.ring_attention = ring;
  return c;
}

TEST(RingAttention, SameTotalVolumeDifferentExposure) {
  const auto mdl = model::vit_64k();
  const auto ag = parallel::build_layer(mdl, vit_cfg(false), 1);
  const auto ring = parallel::build_layer(mdl, vit_cfg(true), 1);
  // Ring moves (n2-1)/n2 of what the two AllGathers move in total.
  const double ag_vol = ag.fwd_comm_bytes(ops::CommGroup::TP2).value();
  const double ring_vol = ring.fwd_comm_bytes(ops::CommGroup::TP2).value();
  EXPECT_NEAR(ring_vol, ag_vol * 7.0 / 8.0, 1e-6 * ag_vol);
  // Attention FLOPs identical (full sequence still attended).
  EXPECT_NEAR(ag.fwd_flops().value(), ring.fwd_flops().value(), 1e-9 * ag.fwd_flops().value());
}

TEST(RingAttention, AttentionOpGetsRingSteps) {
  const auto ring = parallel::build_layer(model::vit_64k(), vit_cfg(true), 1);
  for (const auto& op : ring.ops) {
    if (op.name == "attention") {
      EXPECT_EQ(op.summa_panels, 8);
      ASSERT_EQ(op.fwd_comm.size(), 1u);
      EXPECT_EQ(op.fwd_comm[0].collective, ops::Collective::PointToPoint);
      return;
    }
  }
  FAIL() << "attention op not found";
}

TEST(RingAttention, ReducesExposedTpCommForVit) {
  // The ViT is TP-comm heavy (Fig. 4b); ring attention overlaps the K/V
  // movement and must strictly reduce the exposed TP time.
  const auto mdl = model::vit_64k();
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 4096);
  const auto ag = core::evaluate(mdl, sys, vit_cfg(false), 4096);
  const auto ring = core::evaluate(mdl, sys, vit_cfg(true), 4096);
  ASSERT_TRUE(ag.feasible && ring.feasible);
  EXPECT_LT(ring.time.tp_comm, ag.time.tp_comm);
  EXPECT_LT(ring.iteration(), ag.iteration());
}

TEST(RingAttention, ValidationRules) {
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 4096);
  ParallelConfig c = vit_cfg(true);
  c.strategy = TpStrategy::TP1D;
  c.n2 = 1;
  c.n1 = 16;
  EXPECT_EQ(*c.invalid_reason(model::vit_64k(), sys, 4096),
            "ring attention requires n2 > 1");
  c = vit_cfg(true);
  EXPECT_EQ(*c.invalid_reason(model::vit_64k_linear(), sys, 4096),
            "ring attention is incompatible with linear attention");
}

TEST(RingAttention, SearchExpansionNeverWorse) {
  const auto mdl = model::vit_64k();
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 2048);
  search::SearchOptions opts;
  opts.strategy = TpStrategy::TP2D;
  opts.global_batch = 4096;
  const auto base = search::find_optimal(mdl, sys, opts);
  opts.allow_ring_attention = true;
  const auto with = search::find_optimal(mdl, sys, opts);
  ASSERT_TRUE(base.best.feasible && with.best.feasible);
  EXPECT_LE(with.best.iteration(), base.best.iteration() * (1 + 1e-12));
  EXPECT_GT(with.stats.candidates, base.stats.candidates);
  // For the comm-heavy ViT the optimum should actually use the ring.
  EXPECT_TRUE(with.best.cfg.ring_attention);
}

TEST(RingAttention, DescribeMentionsIt) {
  EXPECT_NE(vit_cfg(true).describe().find("ringattn"), std::string::npos);
}

}  // namespace
}  // namespace tfpe
