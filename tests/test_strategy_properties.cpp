// Parameterized cross-strategy property suite: invariants that must hold for
// every TP strategy and grid shape (FLOP conservation, memory monotonicity,
// evaluator consistency).

#include <gtest/gtest.h>

#include <tuple>

#include "core/evaluator.hpp"
#include "parallel/layer_builder.hpp"

namespace tfpe {
namespace {

using parallel::ParallelConfig;
using parallel::TpStrategy;

model::TransformerConfig test_model() {
  model::TransformerConfig m{"tm", 1024, 512, 16, 8, 2048};
  m.validate();
  return m;
}

using Param = std::tuple<TpStrategy, std::int64_t, std::int64_t>;  // strat,n1,n2

class StrategyProperty : public ::testing::TestWithParam<Param> {
 protected:
  ParallelConfig make_cfg(std::int64_t np = 1, std::int64_t nd = 1,
                          std::int64_t m = 1) const {
    const auto [strat, n1, n2] = GetParam();
    ParallelConfig c;
    c.strategy = strat;
    c.n1 = n1;
    c.n2 = n2;
    c.np = np;
    c.nd = nd;
    c.microbatches = m;
    return c;
  }
};

TEST_P(StrategyProperty, FlopsConservedVsSingleGpu) {
  const auto mdl = test_model();
  const ParallelConfig cfg = make_cfg();
  ParallelConfig ref = cfg;
  ref.n1 = ref.n2 = 1;
  const auto sharded = parallel::build_layer(mdl, cfg, 2);
  const auto single = parallel::build_layer(mdl, ref, 2);
  const double p = static_cast<double>(cfg.tp());
  EXPECT_NEAR(single.fwd_flops().value(), p * sharded.fwd_flops().value(),
              0.03 * single.fwd_flops().value());
  EXPECT_NEAR(single.bwd_flops().value(), p * sharded.bwd_flops().value(),
              0.03 * single.bwd_flops().value());
}

TEST_P(StrategyProperty, StoredActivationsShrinkWithTp) {
  const auto mdl = test_model();
  const ParallelConfig cfg = make_cfg();
  ParallelConfig ref = cfg;
  ref.n1 = ref.n2 = 1;
  if (cfg.tp() == 1) GTEST_SKIP();
  EXPECT_LT(parallel::build_layer(mdl, cfg, 2).stored_bytes(),
            parallel::build_layer(mdl, ref, 2).stored_bytes());
}

TEST_P(StrategyProperty, WeightShardsNeverExceedFullWeights) {
  const auto mdl = test_model();
  const auto layer = parallel::build_layer(mdl, make_cfg(), 1);
  EXPECT_LE(layer.weight_params,
            static_cast<double>(mdl.params_per_layer()) + 1.0);
  EXPECT_GT(layer.weight_params, 0.0);
}

TEST_P(StrategyProperty, CostsScaleLinearlyWithMicrobatch) {
  const auto mdl = test_model();
  const ParallelConfig cfg = make_cfg();
  const auto b1 = parallel::build_layer(mdl, cfg, 1);
  const auto b4 = parallel::build_layer(mdl, cfg, 4);
  EXPECT_NEAR(b4.fwd_flops().value(), 4.0 * b1.fwd_flops().value(), 0.01 * b4.fwd_flops().value());
  EXPECT_NEAR(b4.stored_bytes().value(), 4.0 * b1.stored_bytes().value(),
              0.01 * b4.stored_bytes().value());
  EXPECT_DOUBLE_EQ(b4.pp_boundary_bytes.value(), 4.0 * b1.pp_boundary_bytes.value());
  // Weights are microbatch-independent.
  EXPECT_DOUBLE_EQ(b4.weight_params, b1.weight_params);
}

TEST_P(StrategyProperty, EvaluatorProducesConsistentBreakdown) {
  const auto mdl = test_model();
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8,
                                   make_cfg(2, 2, 4).total_gpus() * 4);
  const ParallelConfig cfg = make_cfg(2, 2, 4);
  const core::EvalResult r = core::evaluate(mdl, sys, cfg, 64);
  ASSERT_TRUE(r.feasible) << r.reason;
  EXPECT_GT(r.time.compute + r.time.memory, 0.0);
  EXPECT_GE(r.time.tp_comm, 0.0);
  EXPECT_GT(r.time.bubble, 0.0);  // np == 2
  EXPECT_NEAR(r.iteration(),
              r.time.compute + r.time.memory + r.time.tp_comm + r.time.pp_comm +
                  r.time.dp_comm + r.time.bubble + r.time.optimizer,
              1e-12);
  EXPECT_GT(r.mem.total().value(), 0.0);
}

TEST_P(StrategyProperty, MoreMicrobatchesReduceBubbleFraction) {
  const auto mdl = test_model();
  const ParallelConfig few = make_cfg(4, 1, 2);
  const ParallelConfig many = make_cfg(4, 1, 16);
  const auto sys =
      hw::make_system(hw::GpuGeneration::B200, 8, few.total_gpus());
  const auto a = core::evaluate(mdl, sys, few, 32);
  const auto b = core::evaluate(mdl, sys, many, 32);
  ASSERT_TRUE(a.feasible && b.feasible) << a.reason << "/" << b.reason;
  EXPECT_GT(a.time.bubble / a.iteration(), b.time.bubble / b.iteration());
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const TpStrategy strat = std::get<0>(info.param);
  const std::string s = strat == TpStrategy::TP1D   ? "TP1D"
                        : strat == TpStrategy::TP2D ? "TP2D"
                                                    : "SUMMA";
  return s + "_n1_" + std::to_string(std::get<1>(info.param)) + "_n2_" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Grids, StrategyProperty,
    ::testing::Values(Param{TpStrategy::TP1D, 1, 1},
                      Param{TpStrategy::TP1D, 2, 1},
                      Param{TpStrategy::TP1D, 8, 1},
                      Param{TpStrategy::TP2D, 2, 2},
                      Param{TpStrategy::TP2D, 4, 2},
                      Param{TpStrategy::TP2D, 2, 4},
                      Param{TpStrategy::TP2D, 1, 4},
                      Param{TpStrategy::Summa2D, 2, 2},
                      Param{TpStrategy::Summa2D, 4, 2},
                      Param{TpStrategy::Summa2D, 2, 4}),
    param_name);

}  // namespace
}  // namespace tfpe
