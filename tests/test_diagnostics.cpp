// Diagnostics engine: rule registry integrity, suppression switches and the
// machine-readable renderers (JSON / SARIF 2.1) behind `tfpe lint`.
#include "analysis/diagnostics.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>

namespace tfpe {
namespace {

using analysis::Diagnostic;
using analysis::DiagnosticSink;
using analysis::LintReport;
using analysis::RuleConfig;
using analysis::RuleId;
using analysis::Severity;

// ---------------------------------------------------------------- registry

TEST(RuleRegistry, EveryEnumeratorHasARowInOrder) {
  const auto& rules = analysis::all_rules();
  ASSERT_EQ(rules.size(), analysis::kRuleCount);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(rules[i].id), i)
        << "registry row " << i << " out of enumerator order";
    EXPECT_FALSE(rules[i].code.empty());
    EXPECT_FALSE(rules[i].name.empty());
    EXPECT_FALSE(rules[i].summary.empty());
  }
}

TEST(RuleRegistry, CodesAreUniqueAndWellFormed) {
  std::set<std::string> codes, names;
  for (const auto& r : analysis::all_rules()) {
    EXPECT_TRUE(codes.insert(std::string(r.code)).second)
        << "duplicate code " << r.code;
    EXPECT_TRUE(names.insert(std::string(r.name)).second)
        << "duplicate name " << r.name;
    // Shape: TFPE-<FAMILY>-<3 digits>.
    const std::string code(r.code);
    ASSERT_GE(code.size(), std::string("TFPE-X-000").size()) << code;
    EXPECT_EQ(code.substr(0, 5), "TFPE-") << code;
    const auto dash = code.rfind('-');
    ASSERT_NE(dash, std::string::npos);
    const std::string digits = code.substr(dash + 1);
    EXPECT_EQ(digits.size(), 3u) << code;
    for (char c : digits) EXPECT_TRUE(std::isdigit(c)) << code;
    const std::string family = code.substr(5, dash - 5);
    EXPECT_FALSE(family.empty()) << code;
    for (char c : family) EXPECT_TRUE(std::isupper(c)) << code;
  }
}

TEST(RuleRegistry, FindRuleRoundTripsCodesAndNames) {
  for (const auto& r : analysis::all_rules()) {
    const auto by_code = analysis::find_rule(r.code);
    ASSERT_TRUE(by_code.has_value()) << r.code;
    EXPECT_EQ(*by_code, r.id);
    const auto by_name = analysis::find_rule(r.name);
    ASSERT_TRUE(by_name.has_value()) << r.name;
    EXPECT_EQ(*by_name, r.id);
  }
  EXPECT_FALSE(analysis::find_rule("TFPE-XX-999").has_value());
  EXPECT_FALSE(analysis::find_rule("no-such-rule").has_value());
}

TEST(RuleRegistry, KnownAnchorCodesAreStable) {
  // Pin a few externally referenced codes so renumbering is caught.
  EXPECT_EQ(analysis::rule_info(RuleId::kOpSequence).code, "TFPE-OP-001");
  EXPECT_EQ(analysis::rule_info(RuleId::kSignatureFlopTotal).code,
            "TFPE-SIG-003");
  EXPECT_EQ(analysis::rule_info(RuleId::kPlacementLeafFanIn).code,
            "TFPE-PLACE-002");
  EXPECT_EQ(analysis::rule_info(RuleId::kBatchedScratchShape).code,
            "TFPE-BATCH-006");
  EXPECT_EQ(analysis::rule_info(RuleId::kConfigMissingKey).code,
            "TFPE-CFG-006");
  EXPECT_EQ(analysis::rule_info(RuleId::kCodesignEmptyFamily).code,
            "TFPE-CODESIGN-003");
}

// -------------------------------------------------------------------- sink

TEST(DiagnosticSink, FillsNameAndDefaultSeverityFromRegistry) {
  DiagnosticSink sink;
  sink.emit(RuleId::kFlopInvariance, "mlp_up", 1.0, 2.0, "off by 2x");
  sink.emit(RuleId::kSweepWarmChain, "point[3]", 0, 0, "roofline drifts");
  const LintReport report = sink.take();
  ASSERT_EQ(report.diagnostics.size(), 2u);
  EXPECT_EQ(report.diagnostics[0].rule, "flop-invariance");
  EXPECT_EQ(report.diagnostics[0].severity, Severity::kError);
  EXPECT_EQ(report.diagnostics[0].code(), "TFPE-OP-002");
  EXPECT_EQ(report.diagnostics[1].severity, Severity::kWarning);
  EXPECT_EQ(report.errors(), 1u);
  EXPECT_EQ(report.warnings(), 1u);
}

TEST(DiagnosticSink, SuppressionDropsAtEmissionAndMerge) {
  RuleConfig rules;
  ASSERT_TRUE(rules.suppress("TFPE-OP-002"));
  ASSERT_TRUE(rules.suppress("topology-monotone-bw"));
  EXPECT_FALSE(rules.suppress("TFPE-NOPE-001"));
  DiagnosticSink sink(rules);
  sink.emit(RuleId::kFlopInvariance, "qkv", 1, 2, "suppressed");
  sink.emit(RuleId::kOpSequence, "qkv", 1, 2, "kept");

  DiagnosticSink other;  // default config: everything enabled
  other.emit(RuleId::kTopologyMonotoneBw, "level[1]", 0, 0, "suppressed");
  other.emit(RuleId::kTopologyDepth, "fabric", 1, 9, "kept");
  sink.merge(other.take());

  const LintReport report = sink.take();
  ASSERT_EQ(report.diagnostics.size(), 2u);
  EXPECT_EQ(report.diagnostics[0].id, RuleId::kOpSequence);
  EXPECT_EQ(report.diagnostics[1].id, RuleId::kTopologyDepth);
}

TEST(DiagnosticSink, ExplicitSeverityOverridesDefault) {
  DiagnosticSink sink;
  sink.emit(RuleId::kTopologyFanIn, "level[0]", 8, 16, "oversized",
            Severity::kWarning);
  const LintReport report = sink.take();
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].severity, Severity::kWarning);
  EXPECT_EQ(report.warnings(), 1u);
}

// --------------------------------------------------------------- renderers

LintReport sample_report() {
  DiagnosticSink sink;
  sink.emit(RuleId::kConfigUnknownKey, "[system] bogus", 0, 0,
            "unknown key \"bogus\"", std::nullopt, "demo.tfpe", 7);
  sink.emit(RuleId::kSignatureFlopTotal, "<layer>", 1.5e12, 1.6e12,
            "fwd FLOP total drifted");
  sink.emit(RuleId::kSweepWarmChain, "point[2]", 0, 0,
            "chain crosses rooflines");
  return sink.take();
}

TEST(Renderers, TextCarriesCodeAnchorAndCounts) {
  const std::string text = analysis::render_text(sample_report());
  EXPECT_NE(text.find("TFPE-CFG-003"), std::string::npos);
  EXPECT_NE(text.find("demo.tfpe:7"), std::string::npos);
  EXPECT_NE(text.find("2 error(s), 1 warning(s)"), std::string::npos);
}

TEST(Renderers, JsonIsBalancedAndCarriesEveryDiagnostic) {
  const LintReport report = sample_report();
  const std::string json = analysis::render_json(report);
  // Structural schema check: balanced braces/brackets outside strings and
  // the fields the CI consumers key on.
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (char c : json) {
    if (escaped) { escaped = false; continue; }
    if (c == '\\') { escaped = true; continue; }
    if (c == '"') { in_string = !in_string; continue; }
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(json.find("\"tool\": \"tfpe-lint\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos);
  for (const auto& d : report.diagnostics) {
    EXPECT_NE(json.find(std::string(d.code())), std::string::npos) << d.rule;
  }
  EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
}

TEST(Renderers, JsonEscapesQuotesAndControlCharacters) {
  DiagnosticSink sink;
  sink.emit(RuleId::kConfigValue, "[plan] \"weird\"\tkey", 0, 0,
            "line1\nline2");
  const std::string json = analysis::render_json(sink.take());
  EXPECT_NE(json.find("\\\"weird\\\""), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  // No raw control characters may survive inside the output.
  for (char c : json) EXPECT_NE(c, '\t');
}

TEST(Renderers, SarifListsFullRegistryAndAnchorsResults) {
  const LintReport report = sample_report();
  const std::string sarif = analysis::render_sarif(report);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  // Every registered rule appears in tool.driver.rules even when it did not
  // fire — the SARIF ruleIndex contract.
  for (const auto& r : analysis::all_rules()) {
    EXPECT_NE(sarif.find(std::string(r.code)), std::string::npos) << r.code;
  }
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"warning\""), std::string::npos);
  EXPECT_NE(sarif.find("demo.tfpe"), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
}

TEST(Renderers, EmptyReportRendersCleanInAllFormats) {
  const LintReport empty;
  EXPECT_NE(analysis::render_text(empty).find("0 error(s), 0 warning(s)"),
            std::string::npos);
  EXPECT_NE(analysis::render_json(empty).find("\"clean\": true"),
            std::string::npos);
  const std::string sarif = analysis::render_sarif(empty);
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
}

}  // namespace
}  // namespace tfpe
