// Tests for the NCCL LL-protocol extension and the H100 preset.

#include <gtest/gtest.h>

#include "comm/collective_model.hpp"
#include "hw/gpu.hpp"

namespace tfpe {
namespace {

TEST(LlProtocol, OffByDefault) {
  const auto net = hw::network_preset(hw::GpuGeneration::B200);
  EXPECT_FALSE(net.enable_ll);
}

TEST(LlProtocol, WinsAtSmallVolumes) {
  auto net = hw::network_preset(hw::GpuGeneration::B200);
  const comm::GroupPlacement g{256, 8};
  const double simple =
      comm::collective_time(net, ops::Collective::AllGather, Bytes(1e4), g)
          .value();
  net.enable_ll = true;
  const double with_ll =
      comm::collective_time(net, ops::Collective::AllGather, Bytes(1e4), g)
          .value();
  EXPECT_LT(with_ll, 0.5 * simple);  // latency-dominated: LL wins big
}

TEST(LlProtocol, SimpleWinsAtLargeVolumes) {
  auto net = hw::network_preset(hw::GpuGeneration::B200);
  const comm::GroupPlacement g{16, 8};
  const double simple =
      comm::collective_time(net, ops::Collective::AllGather, Bytes(4e9), g)
          .value();
  net.enable_ll = true;
  const double with_ll =
      comm::collective_time(net, ops::Collective::AllGather, Bytes(4e9), g)
          .value();
  // min() semantics: never worse, and equal when Simple dominates.
  EXPECT_DOUBLE_EQ(with_ll, simple);
}

TEST(LlProtocol, CrossoverExists) {
  auto net = hw::network_preset(hw::GpuGeneration::B200);
  net.enable_ll = true;
  const comm::GroupPlacement g{256, 8};
  // Find volumes on both sides of the protocol switch.
  auto simple_only = hw::network_preset(hw::GpuGeneration::B200);
  bool ll_used_small = false, simple_used_large = false;
  for (double v : {1e3, 1e5, 1e7, 1e9, 1e10}) {
    const double t =
        comm::collective_time(net, ops::Collective::AllGather, Bytes(v), g)
            .value();
    const double ts = comm::collective_time(
                          simple_only, ops::Collective::AllGather, Bytes(v), g)
                          .value();
    if (t < ts - 1e-15) ll_used_small = true;
    if (t == ts && v >= 1e9) simple_used_large = true;
  }
  EXPECT_TRUE(ll_used_small);
  EXPECT_TRUE(simple_used_large);
}

TEST(H100Preset, DatasheetValues) {
  const auto g = hw::h100();
  EXPECT_EQ(g.name, "H100");
  EXPECT_DOUBLE_EQ(g.tensor_flops.value(), 990e12);
  EXPECT_DOUBLE_EQ(g.hbm_bandwidth.value(), 3350e9);
  EXPECT_DOUBLE_EQ(g.hbm_capacity.value(), 80e9);
  // Same compute generation as H200, smaller/slower memory.
  EXPECT_LT(g.hbm_bandwidth.value(), hw::h200().hbm_bandwidth.value());
  EXPECT_LT(g.hbm_capacity.value(), hw::h200().hbm_capacity.value());
}

}  // namespace
}  // namespace tfpe
