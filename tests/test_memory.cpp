// Tests for the HBM memory model (S2).

#include <gtest/gtest.h>

#include "memory/memory_model.hpp"
#include "parallel/layer_builder.hpp"

namespace tfpe::memory {
namespace {

using parallel::ParallelConfig;
using parallel::TpStrategy;

model::TransformerConfig tiny() {
  model::TransformerConfig m{"tiny", 256, 128, 8, 8, 512};
  m.validate();
  return m;
}

ParallelConfig cfg_1d(std::int64_t nt, std::int64_t np, std::int64_t nd,
                      std::int64_t m) {
  ParallelConfig c;
  c.strategy = TpStrategy::TP1D;
  c.n1 = nt;
  c.np = np;
  c.nd = nd;
  c.microbatches = m;
  return c;
}

TEST(MemoryModel, WeightAndGradientBytes) {
  const auto m = tiny();
  const ParallelConfig c = cfg_1d(2, 2, 1, 1);
  const auto layer = parallel::build_layer(m, c, 1);
  const MemoryBreakdown mem = compute_memory(layer, c, 4, 1);
  EXPECT_DOUBLE_EQ(mem.weights.value(), 2.0 * layer.weight_params * 4);
  EXPECT_DOUBLE_EQ(mem.gradients.value(), mem.weights.value());
}

TEST(MemoryModel, OptimizerIs12BytesPerParamShardedByDp) {
  const auto m = tiny();
  const ParallelConfig c1 = cfg_1d(2, 2, 1, 1);
  const ParallelConfig c4 = cfg_1d(2, 2, 4, 1);
  const auto layer = parallel::build_layer(m, c1, 1);
  const MemoryBreakdown m1 = compute_memory(layer, c1, 4, 1);
  const MemoryBreakdown m4 = compute_memory(layer, c4, 4, 1);
  EXPECT_DOUBLE_EQ(m1.optimizer.value(), 12.0 * layer.weight_params * 4);
  EXPECT_DOUBLE_EQ(m4.optimizer.value(), m1.optimizer.value() / 4.0);
}

TEST(MemoryModel, OptimizerShardsOverN2In2dTp) {
  const auto m = tiny();
  ParallelConfig c;
  c.strategy = TpStrategy::TP2D;
  c.n1 = 2;
  c.n2 = 4;
  c.nd = 2;
  const auto layer = parallel::build_layer(m, c, 1);
  ASSERT_TRUE(layer.dp_group_includes_tp2);
  const MemoryBreakdown mem = compute_memory(layer, c, 1, 1);
  EXPECT_DOUBLE_EQ(mem.optimizer.value(), 12.0 * layer.weight_params / 8.0);
}

TEST(MemoryModel, ActivationsScaleWithInFlightMicrobatches) {
  const auto m = tiny();
  const ParallelConfig c = cfg_1d(2, 4, 1, 8);
  const auto layer = parallel::build_layer(m, c, 2);
  const MemoryBreakdown one = compute_memory(layer, c, 2, 1);
  const MemoryBreakdown four = compute_memory(layer, c, 2, 4);
  EXPECT_DOUBLE_EQ(four.activations.value(), 4.0 * one.activations.value());
}

TEST(MemoryModel, ActivationsScaleWithLayersPerStage) {
  const auto m = tiny();
  const ParallelConfig c = cfg_1d(2, 1, 1, 1);
  const auto layer = parallel::build_layer(m, c, 1);
  const MemoryBreakdown a = compute_memory(layer, c, 2, 1);
  const MemoryBreakdown b = compute_memory(layer, c, 8, 1);
  EXPECT_DOUBLE_EQ(b.activations.value(), 4.0 * a.activations.value());
  EXPECT_DOUBLE_EQ(b.weights.value(), 4.0 * a.weights.value());
}

TEST(MemoryModel, TotalIsSumOfParts) {
  const auto m = tiny();
  const ParallelConfig c = cfg_1d(2, 2, 2, 2);
  const auto layer = parallel::build_layer(m, c, 1);
  const MemoryBreakdown mem = compute_memory(layer, c, 4, 2);
  EXPECT_DOUBLE_EQ(
      mem.total().value(),
      (mem.weights + mem.gradients + mem.optimizer + mem.activations)
          .value());
  EXPECT_GT(mem.total().value(), 0.0);
}

}  // namespace
}  // namespace tfpe::memory
