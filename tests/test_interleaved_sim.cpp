// Tests for the interleaved-1F1B discrete-event simulation: the executed
// schedule must reproduce the analytic claim that v virtual chunks divide
// the pipeline bubble by ~v.

#include <gtest/gtest.h>

#include "pipeline/pipeline_model.hpp"
#include "sim/interleaved_sim.hpp"

namespace tfpe::sim {
namespace {

TEST(InterleavedSim, ReducesToPlain1F1BForOneChunk) {
  const PipelineTrace plain =
      simulate_pipeline({4, 16, Seconds(1.0), Seconds(2.0), Seconds(0.0)});
  const PipelineTrace inter =
      simulate_interleaved_pipeline({4, 1, 16, 1.0, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(plain.completion_time, inter.completion_time);
}

TEST(InterleavedSim, ExecutesEveryChunkTaskOnce) {
  const InterleavedParams p{4, 2, 8, 1.0, 2.0, 0.0};
  const PipelineTrace trace = simulate_interleaved_pipeline(p);
  // Per rank: m*v forwards + m*v backwards.
  EXPECT_EQ(trace.tasks.size(), 4u * 2u * (8u * 2u));
}

TEST(InterleavedSim, BubbleShrinksWithChunks) {
  // np = 8, m = 32. Steady work per rank = m*v*(tfc+tbc) = m*(tf+tb) where
  // tf = v*tfc is held constant by scaling the chunk time with 1/v.
  const std::int64_t np = 8, m = 32;
  double prev_idle = 1e30;
  for (std::int64_t va : {1, 2, 4}) {
    const double tfc = 1.0 / static_cast<double>(va);
    const double tbc = 2.0 / static_cast<double>(va);
    const PipelineTrace t =
        simulate_interleaved_pipeline({np, va, m, tfc, tbc, 0.0});
    EXPECT_LT(t.stage0_idle, prev_idle) << "v=" << va;
    prev_idle = t.stage0_idle;
  }
}

TEST(InterleavedSim, BubbleMatchesAnalyticFactor) {
  // Analytic: bubble = (np-1)(tf+tb)/v with tf = v*tfc. The executed
  // Megatron schedule should land within ~50% of it (its warmup is slightly
  // deeper than the ideal bound).
  const std::int64_t np = 8, m = 64, v = 4;
  const double tfc = 0.25, tbc = 0.5;  // tf = 1.0, tb = 2.0
  const PipelineTrace t = simulate_interleaved_pipeline({np, v, m, tfc, tbc, 0.0});
  const double analytic =
      pipeline::bubble_time(np, Seconds(1.0), Seconds(2.0), v).value();
  EXPECT_LT(t.stage0_idle, 2.0 * analytic);
  EXPECT_GT(t.stage0_idle, 0.5 * analytic);
  // And decisively below the non-interleaved bubble.
  EXPECT_LT(t.stage0_idle,
            0.5 * pipeline::bubble_time(np, Seconds(1.0), Seconds(2.0), 1)
                      .value());
}

TEST(InterleavedSim, CompletionBoundedBelowBySteadyWork) {
  const PipelineTrace t = simulate_interleaved_pipeline({4, 2, 16, 0.5, 1.0, 0.0});
  EXPECT_GE(t.completion_time, 16 * 2 * (0.5 + 1.0) - 1e-9);
}

TEST(InterleavedSim, RejectsBadParams) {
  EXPECT_THROW(simulate_interleaved_pipeline({0, 2, 8, 1, 1, 0}),
               std::invalid_argument);
  EXPECT_THROW(simulate_interleaved_pipeline({4, 2, 6, 1, 1, 0}),
               std::invalid_argument);  // m not multiple of np
}

TEST(InterleavedSim, P2pDelaysStretchCompletion) {
  const double base =
      simulate_interleaved_pipeline({4, 2, 8, 1.0, 1.0, 0.0}).completion_time;
  const double slow =
      simulate_interleaved_pipeline({4, 2, 8, 1.0, 1.0, 0.25}).completion_time;
  EXPECT_GT(slow, base);
}

}  // namespace
}  // namespace tfpe::sim
