// Tests for configuration enumeration and the brute-force search (S3).

#include <gtest/gtest.h>

#include <set>

#include "core/lower_bounds.hpp"
#include "search/search.hpp"

namespace tfpe::search {
namespace {

hw::SystemConfig b200(std::int64_t nvs, std::int64_t n) {
  return hw::make_system(hw::GpuGeneration::B200, nvs, n);
}

TEST(Enumerate, AllConfigsSatisfyConstraints) {
  const auto mdl = model::gpt3_1t();
  const auto sys = b200(8, 512);
  EnumerationOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 4096;
  const auto configs = enumerate_parallel(mdl, sys, opts);
  EXPECT_FALSE(configs.empty());
  for (const auto& c : configs) {
    EXPECT_EQ(c.invalid_reason(mdl, sys, 4096), std::nullopt)
        << c.describe();
    EXPECT_EQ(c.total_gpus(), 512);
    EXPECT_EQ(c.n2, 1);
  }
}

TEST(Enumerate, CoversAllFactorizations) {
  // 1D TP over 64 GPUs: every (nt, np, nd) triple with nt*np*nd = 64 whose
  // divisibility holds must be present for every valid m.
  const auto mdl = model::gpt3_1t();
  const auto sys = b200(8, 64);
  EnumerationOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 64;
  opts.fixed_m = 1;
  const auto configs = enumerate_parallel(mdl, sys, opts);
  std::set<std::tuple<std::int64_t, std::int64_t, std::int64_t>> seen;
  for (const auto& c : configs) seen.insert({c.n1, c.np, c.nd});
  // nt in {1..32} (64 does not divide heads=160), np in divisors of 64 that
  // divide depth=128 (all of them), nd | 64.
  std::size_t expected = 0;
  for (std::int64_t nt : {1, 2, 4, 8, 16, 32}) {
    for (std::int64_t np = 1; nt * np <= 64; np *= 2) {
      const std::int64_t nd = 64 / (nt * np);
      if (nt * np * nd == 64) ++expected;
    }
  }
  EXPECT_EQ(seen.size(), expected);
}

TEST(Enumerate, FixedFactorsRespected) {
  const auto mdl = model::gpt3_1t();
  const auto sys = b200(8, 1024);
  EnumerationOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 4096;
  opts.fixed_np = 16;
  opts.fixed_local_microbatch = 1;
  const auto configs = enumerate_parallel(mdl, sys, opts);
  EXPECT_FALSE(configs.empty());
  for (const auto& c : configs) {
    EXPECT_EQ(c.np, 16);
    EXPECT_EQ(c.local_microbatch(4096), 1);
  }
}

TEST(Enumerate, SummaGeneratesPanelVariants) {
  const auto mdl = model::gpt3_1t();
  const auto sys = b200(8, 64);
  EnumerationOptions opts;
  opts.strategy = parallel::TpStrategy::Summa2D;
  opts.global_batch = 64;
  opts.fixed_n1 = 4;
  opts.fixed_n2 = 4;
  opts.fixed_np = 1;
  opts.fixed_m = 1;
  const auto configs = enumerate_parallel(mdl, sys, opts);
  std::set<std::int64_t> nbs;
  for (const auto& c : configs) nbs.insert(c.nb);
  EXPECT_EQ(nbs, (std::set<std::int64_t>{1, 2, 4, 8, 16}));
}

TEST(Enumerate, NonSummaHasSinglePanel) {
  const auto mdl = model::gpt3_1t();
  EnumerationOptions opts;
  opts.strategy = parallel::TpStrategy::TP2D;
  opts.global_batch = 64;
  const auto configs = enumerate_parallel(mdl, b200(8, 64), opts);
  for (const auto& c : configs) EXPECT_EQ(c.nb, 1);
}

TEST(Placements, AllValidAndNonDominated) {
  parallel::ParallelConfig c;
  c.n1 = 8;
  c.n2 = 1;
  c.np = 16;
  c.nd = 4;
  const auto pls = enumerate_placements(c, 8);
  EXPECT_FALSE(pls.empty());
  for (const auto& p : pls) {
    EXPECT_EQ(c.n1 % p[0], 0);
    EXPECT_EQ(c.n2 % p[1], 0);
    EXPECT_EQ(c.np % p[2], 0);
    EXPECT_EQ(c.nd % p[3], 0);
    EXPECT_LE(p[0] * p[1] * p[2] * p[3], 8);
  }
  // Dominated check: no pair where one placement >= the other everywhere.
  for (const auto& a : pls) {
    for (const auto& b : pls) {
      if (&a == &b) continue;
      const bool dominates = a[0] >= b[0] && a[1] >= b[1] && a[2] >= b[2] &&
                             a[3] >= b[3] &&
                             (a[0] > b[0] || a[1] > b[1] || a[2] > b[2] ||
                              a[3] > b[3]);
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(Placements, FullTpPackingAvailable) {
  parallel::ParallelConfig c;
  c.n1 = 8;
  c.np = 64;
  c.nd = 32;
  const auto pls = enumerate_placements(c, 8);
  bool has_full_tp = false;
  for (const auto& p : pls) {
    if (p[0] == 8) has_full_tp = true;
  }
  EXPECT_TRUE(has_full_tp);
}

TEST(FindOptimal, BeatsEveryManualConfig) {
  const auto mdl = model::gpt3_175b();
  const auto sys = b200(8, 64);
  SearchOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 256;
  const SearchResult res = find_optimal(mdl, sys, opts);
  ASSERT_TRUE(res.best.feasible);
  EXPECT_GT(res.evaluated, 0u);
  EXPECT_GT(res.feasible, 0u);
  // Spot-check against a handful of manual configurations.
  for (std::int64_t nt : {1, 2, 4, 8}) {
    for (std::int64_t np : {1, 2, 4, 8}) {
      parallel::ParallelConfig c;
      c.strategy = parallel::TpStrategy::TP1D;
      c.n1 = nt;
      c.np = np;
      c.nd = 64 / (nt * np);
      c.microbatches = 256 / c.nd;
      const auto r = best_placement(mdl, sys, c, 256);
      if (r.feasible) {
        EXPECT_LE(res.best.iteration(), r.iteration() * (1 + 1e-12))
            << c.describe();
      }
    }
  }
}

TEST(FindOptimal, DeterministicAcrossThreadCounts) {
  const auto mdl = model::gpt3_175b();
  const auto sys = b200(8, 128);
  SearchOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 512;
  opts.threads = 1;
  const SearchResult a = find_optimal(mdl, sys, opts);
  opts.threads = 8;
  const SearchResult b = find_optimal(mdl, sys, opts);
  ASSERT_TRUE(a.best.feasible && b.best.feasible);
  EXPECT_DOUBLE_EQ(a.best.iteration(), b.best.iteration());
  EXPECT_EQ(a.best.cfg.describe(), b.best.cfg.describe());
  EXPECT_EQ(a.evaluated, b.evaluated);
}

TEST(FindOptimal, GreedyPlacementFallback) {
  const auto mdl = model::gpt3_175b();
  const auto sys = b200(8, 64);
  SearchOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 256;
  opts.search_placement = false;
  const SearchResult res = find_optimal(mdl, sys, opts);
  ASSERT_TRUE(res.best.feasible);
  // With placement search the result can only improve.
  opts.search_placement = true;
  const SearchResult full = find_optimal(mdl, sys, opts);
  EXPECT_LE(full.best.iteration(), res.best.iteration() * (1 + 1e-12));
}

// --- Prune-and-memoize engine (branch-and-bound + caches) ---

void expect_same_optimum(const SearchResult& a, const SearchResult& b) {
  ASSERT_EQ(a.best.feasible, b.best.feasible);
  if (!a.best.feasible) return;
  EXPECT_EQ(a.best.cfg.describe(), b.best.cfg.describe());
  EXPECT_EQ(a.best.iteration(), b.best.iteration());  // bitwise
  EXPECT_EQ(a.best.mem.total(), b.best.mem.total());
}

TEST(Pruning, MatchesExhaustiveOnGpt3175b) {
  const auto mdl = model::gpt3_175b();
  const auto sys = b200(8, 128);
  SearchOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 512;
  opts.prune = false;
  const SearchResult brute = find_optimal(mdl, sys, opts);
  opts.prune = true;
  const SearchResult pruned = find_optimal(mdl, sys, opts);
  expect_same_optimum(pruned, brute);
  // The engine must actually prune, and share op lists across candidates:
  // >= 5x fewer build_layer invocations than one-per-candidate.
  EXPECT_GT(pruned.stats.bound_pruned + pruned.stats.memory_pruned, 0u);
  EXPECT_LE(pruned.stats.build_layer_calls * 5, brute.stats.build_layer_calls);
  EXPECT_LT(pruned.evaluated, brute.evaluated);
}

TEST(Pruning, MatchesExhaustiveOnVit32k) {
  // 2D TP with the ring/interleave expansion axes on the comm-heavy ViT.
  const auto mdl = model::vit_32k();
  const auto sys = b200(8, 256);
  SearchOptions opts;
  opts.strategy = parallel::TpStrategy::TP2D;
  opts.global_batch = 4096;
  opts.allow_ring_attention = true;
  opts.interleave_candidates = {1, 2};
  opts.prune = false;
  const SearchResult brute = find_optimal(mdl, sys, opts);
  opts.prune = true;
  const SearchResult pruned = find_optimal(mdl, sys, opts);
  expect_same_optimum(pruned, brute);
  EXPECT_LE(pruned.stats.build_layer_calls * 5, brute.stats.build_layer_calls);
}

TEST(Pruning, CountersInvariantAcrossThreadCounts) {
  // Round-barrier pruning makes the work counters — not just the optimum —
  // independent of the thread count in deterministic mode.
  const auto mdl = model::gpt3_175b();
  const auto sys = b200(8, 128);
  SearchOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 512;
  opts.threads = 1;
  const SearchResult a = find_optimal(mdl, sys, opts);
  opts.threads = 8;
  const SearchResult b = find_optimal(mdl, sys, opts);
  expect_same_optimum(a, b);
  EXPECT_EQ(a.evaluated, b.evaluated);
  EXPECT_EQ(a.stats.bound_pruned, b.stats.bound_pruned);
  EXPECT_EQ(a.stats.memory_pruned, b.stats.memory_pruned);
  EXPECT_EQ(a.stats.build_layer_calls, b.stats.build_layer_calls);
  EXPECT_EQ(a.stats.layer_cache_hits, b.stats.layer_cache_hits);
  EXPECT_EQ(a.stats.placement_sets, b.stats.placement_sets);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
}

TEST(Pruning, NonDeterministicModeFindsSameOptimum) {
  // deterministic = false allows mid-round skips and round abandonment;
  // the counters become schedule-dependent but the optimum may not.
  const auto mdl = model::gpt3_175b();
  const auto sys = b200(8, 128);
  SearchOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 512;
  opts.prune = false;
  const SearchResult brute = find_optimal(mdl, sys, opts);
  opts.prune = true;
  opts.deterministic = false;
  opts.threads = 8;
  const SearchResult racy = find_optimal(mdl, sys, opts);
  expect_same_optimum(racy, brute);
}

TEST(Pruning, TopKRankingUnaffected) {
  // top_k > 0 bypasses incumbent pruning; the ranking must match the
  // brute-force sweep exactly.
  const auto mdl = model::gpt3_175b();
  const auto sys = b200(8, 64);
  SearchOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 256;
  opts.top_k = 5;
  opts.prune = false;
  const SearchResult brute = find_optimal(mdl, sys, opts);
  opts.prune = true;
  const SearchResult pruned = find_optimal(mdl, sys, opts);
  ASSERT_EQ(pruned.top.size(), brute.top.size());
  for (std::size_t i = 0; i < brute.top.size(); ++i) {
    EXPECT_EQ(pruned.top[i].cfg.describe(), brute.top[i].cfg.describe());
    EXPECT_EQ(pruned.top[i].iteration(), brute.top[i].iteration());
  }
}

TEST(Pruning, RoundSizeDoesNotChangeOptimum) {
  const auto mdl = model::gpt3_175b();
  const auto sys = b200(8, 64);
  SearchOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 256;
  const SearchResult a = find_optimal(mdl, sys, opts);
  opts.round_size = 1;
  const SearchResult b = find_optimal(mdl, sys, opts);
  opts.round_size = 100000;
  const SearchResult c = find_optimal(mdl, sys, opts);
  expect_same_optimum(a, b);
  expect_same_optimum(a, c);
  // A single all-candidate round cannot prune anything after the barrier.
  EXPECT_GE(b.stats.bound_pruned, c.stats.bound_pruned);
}

// Property test for the analytic bounds: the floors must never exceed the
// achieved iteration time / HBM footprint of any valid configuration,
// across strategies, models (incl. MoE) and the expansion axes.
TEST(LowerBounds, FloorsNeverExceedActuals) {
  struct Case {
    model::TransformerConfig mdl;
    hw::SystemConfig sys;
    parallel::TpStrategy strategy;
    std::int64_t batch;
  };
  const Case cases[] = {
      {model::gpt3_175b(), b200(8, 64), parallel::TpStrategy::TP1D, 256},
      {model::vit_32k(), b200(8, 64), parallel::TpStrategy::TP2D, 4096},
      {model::gpt_moe_1t(), b200(8, 64), parallel::TpStrategy::TP1D, 256},
  };
  for (const auto& cs : cases) {
    EnumerationOptions eopts;
    eopts.strategy = cs.strategy;
    eopts.global_batch = cs.batch;
    const auto base = enumerate_parallel(cs.mdl, cs.sys, eopts);
    ASSERT_FALSE(base.empty());
    std::size_t checked = 0;
    const std::size_t step = std::max<std::size_t>(1, base.size() / 32);
    for (std::size_t i = 0; i < base.size(); i += step) {
      // Exercise the plain config plus the ZeRO-3 / ring / interleave
      // variants the search expands into.
      std::vector<parallel::ParallelConfig> variants{base[i]};
      variants.push_back(base[i]);
      variants.back().zero = parallel::ZeroStage::kWeights;
      if (base[i].n2 > 1 &&
          cs.mdl.attention != model::AttentionKind::kLinear) {
        variants.push_back(base[i]);
        variants.back().ring_attention = true;
      }
      if (base[i].np > 1 && (cs.mdl.depth / base[i].np) % 2 == 0) {
        variants.push_back(base[i]);
        variants.back().interleave = 2;
      }
      for (const auto& cfg : variants) {
        auto valid = cfg;
        valid.nvs1 = valid.nvs2 = valid.nvsp = valid.nvsd = 1;
        if (valid.invalid_reason(cs.mdl, cs.sys, cs.batch)) continue;
        const auto bounds =
            core::search_bounds(cs.mdl, cs.sys, cfg, cs.batch);
        const auto r = best_placement(cs.mdl, cs.sys, cfg, cs.batch);
        if (!r.feasible) {
          continue;  // memory floor <= actual is only meaningful if it fits
        }
        ++checked;
        EXPECT_LE(bounds.time_floor, r.iteration() * (1 + 1e-9))
            << cfg.describe();
        EXPECT_LE(bounds.memory_floor, r.mem.total().value() * (1 + 1e-9))
            << cfg.describe();
      }
    }
    EXPECT_GT(checked, 0u);
  }
}

TEST(FindOptimal, ReportsInfeasibleWhenNothingFits) {
  // 1D TP cannot fit the ViT-64K on a single A100 node.
  const auto mdl = model::vit_64k();
  const auto sys = hw::make_system(hw::GpuGeneration::A100, 4, 4);
  SearchOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 4096;
  const SearchResult res = find_optimal(mdl, sys, opts);
  EXPECT_FALSE(res.best.feasible);
  EXPECT_FALSE(res.best.reason.empty());
}

}  // namespace
}  // namespace tfpe::search
