// Tests for training-plan serialization round trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "io/plan_io.hpp"

namespace tfpe::io {
namespace {

core::EvalResult sample_result() {
  parallel::ParallelConfig cfg;
  cfg.strategy = parallel::TpStrategy::Summa2D;
  cfg.n1 = 4;
  cfg.n2 = 2;
  cfg.np = 8;
  cfg.nd = 16;
  cfg.microbatches = 32;
  cfg.nb = 4;
  cfg.interleave = 2;
  cfg.zero = parallel::ZeroStage::kWeights;
  cfg.nvs1 = 4;
  cfg.nvs2 = 2;
  core::EvalResult r;
  r.cfg = cfg;
  r.feasible = true;
  r.time.compute = 1.0;
  return r;
}

TEST(PlanIo, RoundTripsEveryField) {
  std::ostringstream os;
  write_plan(os, sample_result(), 4096);
  std::istringstream in(os.str());
  const auto sections = parse_config(in);
  const LoadedPlan plan = plan_from_section(sections.at("plan"));
  const auto& a = sample_result().cfg;
  const auto& b = plan.cfg;
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.n1, b.n1);
  EXPECT_EQ(a.n2, b.n2);
  EXPECT_EQ(a.np, b.np);
  EXPECT_EQ(a.nd, b.nd);
  EXPECT_EQ(a.microbatches, b.microbatches);
  EXPECT_EQ(a.nb, b.nb);
  EXPECT_EQ(a.interleave, b.interleave);
  EXPECT_EQ(a.zero, b.zero);
  EXPECT_EQ(a.nvs1, b.nvs1);
  EXPECT_EQ(a.nvs2, b.nvs2);
  EXPECT_EQ(plan.global_batch, 4096);
}

TEST(PlanIo, DefaultsOmittedFromOutput) {
  core::EvalResult r = sample_result();
  r.cfg.nb = 1;
  r.cfg.interleave = 1;
  r.cfg.zero = parallel::ZeroStage::kOptimizer;
  std::ostringstream os;
  write_plan(os, r, 64);
  const std::string s = os.str();
  EXPECT_EQ(s.find("nb ="), std::string::npos);
  EXPECT_EQ(s.find("interleave ="), std::string::npos);
  EXPECT_EQ(s.find("zero ="), std::string::npos);
}

TEST(PlanIo, LoadedPlanEvaluatesIdentically) {
  // A plan written from a search result must evaluate to the same time.
  const auto mdl = model::gpt3_1t();
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 16384);
  parallel::ParallelConfig cfg;
  cfg.strategy = parallel::TpStrategy::TP1D;
  cfg.n1 = 8;
  cfg.np = 64;
  cfg.nd = 32;
  cfg.microbatches = 128;
  cfg.nvs1 = 8;
  const auto original = core::evaluate(mdl, sys, cfg, 4096);
  ASSERT_TRUE(original.feasible);

  const std::string path = "tfpe_plan_test.tfpe";
  write_plan_file(path, original, 4096);
  const LoadedPlan plan = load_plan_file(path);
  std::remove(path.c_str());
  const auto reloaded = core::evaluate(mdl, sys, plan.cfg, plan.global_batch);
  ASSERT_TRUE(reloaded.feasible);
  EXPECT_DOUBLE_EQ(original.iteration(), reloaded.iteration());
}

TEST(PlanIo, RejectsMalformedPlans) {
  auto section_of = [](const std::string& text) {
    std::istringstream in(text);
    return parse_config(in).at("plan");
  };
  EXPECT_THROW(plan_from_section(section_of("[plan]\nn1 = 2\n")),
               std::runtime_error);  // missing strategy
  EXPECT_THROW(
      plan_from_section(section_of("[plan]\nstrategy = 3d\nn1 = 2\n")),
      std::runtime_error);
  EXPECT_THROW(plan_from_section(section_of(
                   "[plan]\nstrategy = 1d\nn1 = 2\nnp = 1\nnd = 1\n"
                   "microbatches = 1\nglobal_batch = 4\nbogus = 1\n")),
               std::runtime_error);
  EXPECT_THROW(plan_from_section(section_of(
                   "[plan]\nstrategy = 1d\nn1 = 0\nnp = 1\nnd = 1\n"
                   "microbatches = 1\nglobal_batch = 4\n")),
               std::runtime_error);
  EXPECT_THROW(load_plan_file("missing_plan.tfpe"), std::runtime_error);
}

}  // namespace
}  // namespace tfpe::io
