// Tests for the discrete-event substrate: event queue, ring collectives and
// the 1F1B pipeline execution.

#include <gtest/gtest.h>

#include <vector>

#include "comm/collective_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/pipeline_sim.hpp"
#include "sim/ring_sim.hpp"

namespace tfpe::sim {
namespace {

TEST(EventQueue, ProcessesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(q.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, FifoTieBreak) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(0); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, ReentrantScheduling) {
  EventQueue q;
  int hits = 0;
  std::function<void()> chain = [&] {
    ++hits;
    if (hits < 5) q.schedule_after(1.0, chain);
  };
  q.schedule(0.0, chain);
  EXPECT_DOUBLE_EQ(q.run(), 4.0);
  EXPECT_EQ(hits, 5);
}

TEST(EventQueue, RejectsPastEvents) {
  EventQueue q;
  q.schedule(1.0, [&] {
    EXPECT_THROW(q.schedule(0.5, [] {}), std::invalid_argument);
  });
  q.run();
}

TEST(RingTopology, TwoLevelLinkPattern) {
  const RingTopology ring = RingTopology::two_level(
      8, 4, Seconds(1e-6), BytesPerSec(100.0), Seconds(1e-5),
      BytesPerSec(10.0));
  ASSERT_EQ(ring.size(), 8);
  // Links 3 and 7 cross domains.
  for (std::int64_t i = 0; i < 8; ++i) {
    const bool crossing = (i == 3 || i == 7);
    EXPECT_DOUBLE_EQ(ring.links[static_cast<std::size_t>(i)].bandwidth.value(),
                     crossing ? 10.0 : 100.0)
        << i;
  }
}

TEST(RingTopology, SingleDomainHasNoSlowLinks) {
  const RingTopology ring = RingTopology::two_level(
      4, 4, Seconds(1e-6), BytesPerSec(100.0), Seconds(1e-5),
      BytesPerSec(10.0));
  for (const auto& l : ring.links) {
    EXPECT_DOUBLE_EQ(l.bandwidth.value(), 100.0);
  }
}

TEST(RingTopology, RejectsIndivisibleGrouping) {
  EXPECT_THROW(RingTopology::two_level(8, 3, Seconds(0), BytesPerSec(1),
                                       Seconds(0), BytesPerSec(1)),
               std::invalid_argument);
}

TEST(SimulateAllgather, HomogeneousRingMatchesClosedForm) {
  // g GPUs, bandwidth-dominated: t ~ (g-1)/g * V / bw.
  const std::int64_t g = 8;
  const double bw = 100e9, V = 1e9;
  RingTopology ring = RingTopology::two_level(
      g, g, Seconds(0), BytesPerSec(bw), Seconds(0), BytesPerSec(bw));
  const double t = simulate_allgather(ring, Bytes(V), 8).value();
  const double expected = (g - 1.0) / g * V / bw;
  EXPECT_NEAR(t, expected, 0.15 * expected);
}

TEST(SimulateAllgather, SlowLinkBecomesBottleneck) {
  const std::int64_t g = 8;
  RingTopology mixed = RingTopology::two_level(
      g, 4, Seconds(0), BytesPerSec(100e9), Seconds(0), BytesPerSec(10e9));
  RingTopology fast = RingTopology::two_level(
      g, g, Seconds(0), BytesPerSec(100e9), Seconds(0), BytesPerSec(100e9));
  const double tm = simulate_allgather(mixed, Bytes(1e9), 8).value();
  const double tf = simulate_allgather(fast, Bytes(1e9), 8).value();
  EXPECT_GT(tm, 3.0 * tf);
}

TEST(SimulateAllgather, TrivialRing) {
  RingTopology ring = RingTopology::two_level(
      1, 1, Seconds(0), BytesPerSec(1e9), Seconds(0), BytesPerSec(1e9));
  EXPECT_DOUBLE_EQ(simulate_allgather(ring, Bytes(1e9)).value(), 0.0);
}

TEST(SimulateCollective, AgreesWithAnalyticModelInBandwidthRegime) {
  // Fig. A1's purpose: theory tracks measurement. Here the DES plays the
  // role of the measurement; agreement within 20% in the bandwidth-bound
  // regime across group shapes.
  const auto net = hw::network_preset(hw::GpuGeneration::A100);
  for (const auto [g, nvs] : {std::pair<std::int64_t, std::int64_t>{8, 4},
                              {16, 4}, {32, 4}, {16, 2}}) {
    const Bytes V{4e9};
    const double analytic =
        comm::collective_time(net, ops::Collective::AllGather, V, {g, nvs})
            .value();
    const double sim =
        simulate_collective(net, ops::Collective::AllGather, V, g, nvs, 8)
            .value();
    EXPECT_NEAR(sim, analytic, 0.2 * analytic) << "g=" << g << " nvs=" << nvs;
  }
}

TEST(SimulateCollective, MoreGpusPerNodeIsFaster) {
  // Fig. A1's NVL2 vs NVL4 effect: more rails amplify the slow network.
  const auto net = hw::network_preset(hw::GpuGeneration::A100);
  const double t2 =
      simulate_collective(net, ops::Collective::AllGather, Bytes(4e9), 32, 2)
          .value();
  const double t4 =
      simulate_collective(net, ops::Collective::AllGather, Bytes(4e9), 32, 4)
          .value();
  EXPECT_GT(t2, 1.5 * t4);
}

TEST(SimulateCollective, AllReduceIsTwoPasses) {
  const auto net = hw::network_preset(hw::GpuGeneration::B200);
  const double ag =
      simulate_collective(net, ops::Collective::AllGather, Bytes(1e9), 16, 8)
          .value();
  const double ar =
      simulate_collective(net, ops::Collective::AllReduce, Bytes(1e9), 16, 8)
          .value();
  EXPECT_DOUBLE_EQ(ar, 2.0 * ag);
}

TEST(Schedule1F1B, WarmupShrinksTowardLastStage) {
  // Stage 0 of a 4-stage pipeline warms up 4 forwards; the last stage 1.
  const auto s0 = schedule_1f1b(4, 0, 8);
  const auto s3 = schedule_1f1b(4, 3, 8);
  EXPECT_FALSE(s0[3].first);  // 4th task still a forward
  EXPECT_TRUE(s3[1].first);   // second task already a backward
  EXPECT_EQ(s0.size(), 16u);
  EXPECT_EQ(s3.size(), 16u);
}

TEST(Schedule1F1B, EveryMicrobatchAppearsOnce) {
  const auto tasks = schedule_1f1b(4, 1, 16);
  std::vector<int> fwd(16, 0), bwd(16, 0);
  for (const auto& [is_bwd, j] : tasks) {
    (is_bwd ? bwd : fwd)[static_cast<std::size_t>(j)]++;
  }
  for (std::size_t j = 0; j < 16; ++j) {
    EXPECT_EQ(fwd[j], 1);
    EXPECT_EQ(bwd[j], 1);
  }
}

TEST(SimulatePipeline, MatchesClosedFormWithUniformTimes) {
  // No P2P cost: completion == (m + np - 1)(tf + tb).
  const PipelineTrace t = simulate_pipeline(
      {4, 16, Seconds(1.0), Seconds(2.0), Seconds(0.0)});
  EXPECT_NEAR(t.completion_time, (16 + 3) * 3.0, 1e-9);
}

TEST(SimulatePipeline, SingleStageHasNoBubble) {
  const PipelineTrace t = simulate_pipeline(
      {1, 8, Seconds(1.0), Seconds(2.0), Seconds(0.0)});
  EXPECT_NEAR(t.completion_time, 8 * 3.0, 1e-9);
  EXPECT_NEAR(t.stage0_idle, 0.0, 1e-9);
}

TEST(SimulatePipeline, BubbleMatchesPaperFormula) {
  const PipelineTrace t = simulate_pipeline(
      {8, 64, Seconds(0.5), Seconds(1.0), Seconds(0.0)});
  EXPECT_NEAR(t.stage0_idle, 7 * 1.5, 1e-9);
}

TEST(SimulatePipeline, P2pStretchesCompletion) {
  const double base = simulate_pipeline(
      {4, 8, Seconds(1.0), Seconds(1.0), Seconds(0.0)}).completion_time;
  const double slow = simulate_pipeline(
      {4, 8, Seconds(1.0), Seconds(1.0), Seconds(0.5)}).completion_time;
  EXPECT_GT(slow, base);
}

TEST(SimulatePipeline, RejectsBadParams) {
  EXPECT_THROW(simulate_pipeline(
      {0, 8, Seconds(1), Seconds(1), Seconds(0)}), std::invalid_argument);
  EXPECT_THROW(simulate_pipeline(
      {4, 0, Seconds(1), Seconds(1), Seconds(0)}), std::invalid_argument);
}

}  // namespace
}  // namespace tfpe::sim
