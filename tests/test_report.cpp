// Tests for the paper-style report panels and figure helpers.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "report/breakdown_report.hpp"
#include "report/figure_data.hpp"

namespace tfpe::report {
namespace {

core::EvalResult sample_result() {
  parallel::ParallelConfig cfg;
  cfg.strategy = parallel::TpStrategy::TP1D;
  cfg.n1 = 8;
  cfg.np = 64;
  cfg.nd = 32;
  cfg.microbatches = 128;
  cfg.nvs1 = 8;
  return core::evaluate(model::gpt3_1t(),
                        hw::make_system(hw::GpuGeneration::B200, 8, 16384),
                        cfg, 4096);
}

TEST(Panels, ConfigPanelShowsGridAndMemory) {
  std::ostringstream os;
  print_config_panel(os, {{"A", sample_result()}});
  const std::string s = os.str();
  EXPECT_NE(s.find("1D TP"), std::string::npos);
  EXPECT_NE(s.find("GB"), std::string::npos);
  EXPECT_NE(s.find("(8,1,1,1)"), std::string::npos);
}

TEST(Panels, TimePanelPercentagesSumToHundred) {
  std::ostringstream os;
  const auto r = sample_result();
  ASSERT_TRUE(r.feasible);
  print_time_panel(os, {{"A", r}});
  // Parse the data row and sum the percentage columns.
  std::istringstream in(os.str());
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);  // rule
  std::getline(in, line);  // row
  std::istringstream row(line);
  std::string label;
  double sum = 0, v;
  row >> label;
  for (int i = 0; i < 7; ++i) {
    row >> v;
    sum += v;
  }
  EXPECT_NEAR(sum, 100.0, 0.5);
}

TEST(Panels, InfeasibleRowsAnnotated) {
  core::EvalResult bad;
  bad.feasible = false;
  bad.reason = "exceeds HBM capacity";
  std::ostringstream os;
  print_panels(os, "cap", {{"X", bad}});
  EXPECT_NE(os.str().find("infeasible: exceeds HBM capacity"),
            std::string::npos);
}

TEST(Csv, RoundTrips) {
  const std::string path = "tfpe_test_report.csv";
  write_results_csv(path, {{"A", sample_result()}});
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_NE(header.find("iter_s"), std::string::npos);
  EXPECT_NE(row.find("1D TP"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FigureData, Pow2Range) {
  EXPECT_EQ(pow2_range(128, 1024),
            (std::vector<std::int64_t>{128, 256, 512, 1024}));
  EXPECT_EQ(pow2_range(8, 8), (std::vector<std::int64_t>{8}));
}

TEST(FigureData, OptimalAtScaleRespectsGpuCount) {
  const auto r = optimal_at_scale(
      model::gpt3_175b(), hw::make_system(hw::GpuGeneration::B200, 8, 4096),
      parallel::TpStrategy::TP1D, 512, 128);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cfg.total_gpus(), 128);
}

TEST(FigureData, ScalingSweepLabels) {
  const auto rows = scaling_sweep(
      model::gpt3_175b(), hw::make_system(hw::GpuGeneration::B200, 8, 4096),
      parallel::TpStrategy::TP1D, 512, {64, 128});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].label, "64 GPUs");
  EXPECT_EQ(rows[1].label, "128 GPUs");
}

}  // namespace
}  // namespace tfpe::report
