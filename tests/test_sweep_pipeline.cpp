// Pipelined, warm-started sweep engine: bitwise identity of the batched /
// warm-started arms against find_optimal, loud rejection of unsupported
// SweepOptions, thread-count invariance of the new work counters, and
// tsan-covered concurrency of the shared caches and the chain-streaming
// fan-out. Test suites are named Sweep/Signature on purpose — the tsan CTest
// preset filters on those suite names.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/batched_signature.hpp"
#include "search/search.hpp"
#include "search/search_cache.hpp"
#include "search/sweep.hpp"

namespace tfpe {
namespace {

void expect_same_optimum(const core::EvalResult& ref,
                         const core::EvalResult& got,
                         const std::string& label) {
  ASSERT_EQ(ref.feasible, got.feasible) << label;
  if (!ref.feasible) return;
  EXPECT_EQ(ref.cfg.describe(), got.cfg.describe()) << label;
  EXPECT_EQ(ref.iteration(), got.iteration()) << label;
  EXPECT_EQ(ref.mem.total().value(), got.mem.total().value()) << label;
}

/// Every engine arm — scalar, batched, batched+warm-started — must land on
/// find_optimal's optimum bit for bit, pruned or exhaustive.
TEST(Sweep, BatchedWarmStartedMatchesFindOptimal) {
  const auto mdl = model::gpt3_175b();
  const auto points = search::hardware_grid(
      {hw::GpuGeneration::A100, hw::GpuGeneration::B200}, {4, 16}, 256);
  for (bool prune : {false, true}) {
    for (const auto& [batch, warm] :
         std::vector<std::pair<bool, bool>>{{false, false},
                                            {true, false},
                                            {false, true},
                                            {true, true}}) {
      search::SweepOptions opts;
      opts.search.strategy = parallel::TpStrategy::TP1D;
      opts.search.global_batch = 1024;
      opts.search.prune = prune;
      opts.batch = batch;
      opts.warm_start = warm;
      opts.threads = 2;
      const auto swept = search::run_sweep(mdl, points, opts);
      ASSERT_EQ(swept.best.size(), points.size());
      for (std::size_t i = 0; i < points.size(); ++i) {
        const auto direct = search::find_optimal(mdl, points[i], opts.search);
        expect_same_optimum(direct.best, swept.best[i],
                            "point " + std::to_string(i) + " batch=" +
                                std::to_string(batch) + " warm=" +
                                std::to_string(warm) + " prune=" +
                                std::to_string(prune));
      }
      if (warm) {
        // Two chains (A100, B200) of two points each: exactly the second
        // point of each chain is seeded.
        EXPECT_EQ(swept.stats.warm_seeded, 2u);
        EXPECT_LE(swept.stats.warm_seed_feasible, swept.stats.warm_seeded);
      } else {
        EXPECT_EQ(swept.stats.warm_seeded, 0u);
      }
      if (batch) {
        EXPECT_GT(swept.stats.batch_calls, 0u);
        EXPECT_GT(swept.stats.signature_lowers, 0u);
        // The batch kernel runs once per feasible candidate scan; the
        // infeasible shortcut and pruning keep some evals out of batches.
        EXPECT_LE(swept.stats.batch_placements, swept.stats.evaluated);
        EXPECT_GE(swept.stats.batch_occupancy(), 1.0);
      } else {
        EXPECT_EQ(swept.stats.batch_calls, 0u);
        EXPECT_EQ(swept.stats.signature_lowers, 0u);
      }
    }
  }
}

/// A second model/strategy shape through the warm-started batch path: the
/// 2D tensor-parallel ViT case of the seed CLI matrix.
TEST(Sweep, WarmStartMatchesOnVit2d) {
  const auto mdl = model::vit_64k();
  const auto points =
      search::hardware_grid({hw::GpuGeneration::B200}, {4, 8, 16}, 256);
  search::SweepOptions opts;
  opts.search.strategy = parallel::TpStrategy::TP2D;
  opts.search.global_batch = 2048;
  opts.warm_start = true;
  opts.threads = 2;
  const auto swept = search::run_sweep(mdl, points, opts);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto direct = search::find_optimal(mdl, points[i], opts.search);
    expect_same_optimum(direct.best, swept.best[i],
                        "vit point " + std::to_string(i));
  }
  // One chain of three points: both successors are seeded.
  EXPECT_EQ(swept.stats.warm_seeded, 2u);
}

/// SweepOptions must reject the SearchOptions fields the sweep cannot
/// honor, instead of silently ignoring them.
TEST(Sweep, RejectsUnsupportedOptions) {
  const auto mdl = model::gpt3_175b();
  const auto points =
      search::hardware_grid({hw::GpuGeneration::B200}, {8}, 128);
  search::SweepOptions opts;
  opts.search.strategy = parallel::TpStrategy::TP1D;
  opts.search.global_batch = 512;

  search::SweepOptions top_k = opts;
  top_k.search.top_k = 3;
  EXPECT_THROW(search::run_sweep(mdl, points, top_k), std::invalid_argument);

  search::SweepOptions threads = opts;
  threads.search.threads = 2;
  EXPECT_THROW(search::run_sweep(mdl, points, threads), std::invalid_argument);

  // The legacy arm enforces the same contract (it would otherwise nest a
  // per-point pool inside the sweep's budget).
  search::SweepOptions legacy = threads;
  legacy.use_signatures = false;
  EXPECT_THROW(search::run_sweep(mdl, points, legacy), std::invalid_argument);

  // And the supported surface still runs (empty grid short-circuits after
  // validation).
  EXPECT_NO_THROW(search::run_sweep(mdl, {}, opts));
}

/// The new counters — batch occupancy, warm seeds — must be invariant to
/// the worker count, like every other work counter: chains are static and
/// sequential, so the schedule cannot leak in.
TEST(Sweep, WarmBatchCountersThreadInvariant) {
  const auto mdl = model::gpt3_175b();
  const auto points = search::hardware_grid(
      {hw::GpuGeneration::A100, hw::GpuGeneration::H200,
       hw::GpuGeneration::B200},
      {4, 8}, 128);
  search::SweepOptions opts;
  opts.search.strategy = parallel::TpStrategy::TP1D;
  opts.search.global_batch = 512;
  opts.warm_start = true;
  opts.threads = 1;
  const auto one = search::run_sweep(mdl, points, opts);
  opts.threads = 4;
  const auto four = search::run_sweep(mdl, points, opts);
  EXPECT_EQ(one.evaluated_per_point, four.evaluated_per_point);
  EXPECT_EQ(one.stats.evaluated, four.stats.evaluated);
  EXPECT_EQ(one.stats.bound_pruned, four.stats.bound_pruned);
  EXPECT_EQ(one.stats.memory_pruned, four.stats.memory_pruned);
  EXPECT_EQ(one.stats.batch_calls, four.stats.batch_calls);
  EXPECT_EQ(one.stats.batch_placements, four.stats.batch_placements);
  EXPECT_EQ(one.stats.warm_seeded, four.stats.warm_seeded);
  EXPECT_EQ(one.stats.warm_seed_feasible, four.stats.warm_seed_feasible);
  EXPECT_EQ(one.stats.signature_compiles, four.stats.signature_compiles);
  EXPECT_EQ(one.stats.signature_lowers, four.stats.signature_lowers);
  EXPECT_EQ(one.stats.candidates, four.stats.candidates);
  // Three chains (one per generation) of two points: one seed per chain.
  EXPECT_EQ(one.stats.warm_seeded, 3u);
}

/// tsan target: hammer the SignatureCache -> BatchedCache chain from many
/// threads the way concurrent pipeline stages do, in shuffled key orders.
/// Every thread must observe the same shared signature and lowering per
/// key, and each key must be built exactly once.
TEST(Signature, CacheHammerFromConcurrentStages) {
  const auto mdl = model::gpt3_175b();
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 128);
  search::SearchOptions sopts;
  sopts.strategy = parallel::TpStrategy::TP1D;
  sopts.global_batch = 512;
  std::vector<parallel::ParallelConfig> keys;
  for (const auto& cfg : search::expand_candidates(mdl, sys, sopts)) {
    if (cfg.invalid_reason(mdl, sys, 512)) continue;
    keys.push_back(cfg);
    if (keys.size() == 16) break;
  }
  ASSERT_GE(keys.size(), 8u);

  search::LayerCostCache layers;
  search::SignatureCache signatures;
  search::BatchedCache batched;
  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  std::vector<std::vector<const core::CostSignature*>> sig_seen(kThreads);
  std::vector<std::vector<const core::BatchedSignature*>> bat_seen(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<std::size_t> order(keys.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::mt19937 rng(1234u + static_cast<unsigned>(t));
      sig_seen[t].assign(keys.size(), nullptr);
      bat_seen[t].assign(keys.size(), nullptr);
      for (int round = 0; round < kRounds; ++round) {
        std::shuffle(order.begin(), order.end(), rng);
        for (const std::size_t i : order) {
          const auto sig = signatures.get(mdl, keys[i], 512, {}, layers);
          const auto bat = batched.get(sig);
          // Exercise the timing stage on the shared lowering, as the
          // pipelined scan does while other threads still compile.
          const auto base = core::bind_system_batched(*sig, *bat, sys);
          EXPECT_GT(base.fwd_cm.value(), 0.0);
          if (sig_seen[t][i] == nullptr) {
            sig_seen[t][i] = sig.get();
            bat_seen[t][i] = bat.get();
          } else {
            EXPECT_EQ(sig_seen[t][i], sig.get());
            EXPECT_EQ(bat_seen[t][i], bat.get());
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(sig_seen[0], sig_seen[t]);
    EXPECT_EQ(bat_seen[0], bat_seen[t]);
  }
  // Shard mutexes are held across the build: exactly one compile/lower per
  // distinct key, every other access a hit.
  EXPECT_EQ(signatures.compiles(), keys.size());
  EXPECT_EQ(batched.lowers(), keys.size());
  const std::size_t gets = keys.size() * kThreads * kRounds;
  EXPECT_EQ(signatures.compiles() + signatures.hits(), gets);
  EXPECT_EQ(batched.lowers() + batched.hits(), gets);
}

/// tsan target: the full pipelined engine — several chains streaming over
/// the pool, all stages sharing the sweep-wide caches — under the batched,
/// warm-started configuration.
TEST(Sweep, PipelinedEngineConcurrentChains) {
  const auto mdl = model::gpt3_175b();
  const auto points = search::hardware_grid(
      {hw::GpuGeneration::A100, hw::GpuGeneration::H200,
       hw::GpuGeneration::B200},
      {4, 8}, 128);
  search::SweepOptions opts;
  opts.search.strategy = parallel::TpStrategy::TP1D;
  opts.search.global_batch = 512;
  opts.warm_start = true;
  opts.threads = 4;
  const auto swept = search::run_sweep(mdl, points, opts);
  ASSERT_EQ(swept.best.size(), points.size());
  EXPECT_EQ(swept.stats.points, points.size());
  EXPECT_GT(swept.stats.feasible_points, 0u);
  EXPECT_GT(swept.stats.batch_calls, 0u);
  // The stage profile is schedule-dependent, but its busy totals must be
  // populated and bounded by worker-seconds.
  EXPECT_GT(swept.stats.profile.time_s, 0.0);
  EXPECT_GE(swept.stats.profile.wall_s, 0.0);
}

}  // namespace
}  // namespace tfpe
