// Tests for the parallel-configuration divisibility/feasibility rules (S3).

#include <gtest/gtest.h>

#include "parallel/parallel_config.hpp"

namespace tfpe::parallel {
namespace {

model::TransformerConfig mdl() { return model::gpt3_1t(); }
hw::SystemConfig sys() { return hw::make_system(hw::GpuGeneration::B200, 8, 16384); }

ParallelConfig base() {
  ParallelConfig c;
  c.strategy = TpStrategy::TP1D;
  c.n1 = 8;
  c.np = 64;
  c.nd = 32;
  c.microbatches = 128;
  c.nvs1 = 8;
  return c;
}

TEST(ParallelConfig, PaperFig1OptimumIsValid) {
  EXPECT_EQ(base().invalid_reason(mdl(), sys(), 4096), std::nullopt);
}

TEST(ParallelConfig, LocalMicrobatch) {
  EXPECT_EQ(base().local_microbatch(4096), 1);
  ParallelConfig c = base();
  c.microbatches = 64;
  EXPECT_EQ(c.local_microbatch(4096), 2);
}

TEST(ParallelConfig, RejectsN2In1D) {
  ParallelConfig c = base();
  c.n2 = 2;
  c.nd = 16;
  EXPECT_NE(c.invalid_reason(mdl(), sys(), 4096), std::nullopt);
}

TEST(ParallelConfig, RejectsTooManyGpus) {
  ParallelConfig c = base();
  c.nd = 64;  // 8*64*64 = 32768 > 16384
  c.microbatches = 64;
  EXPECT_EQ(*c.invalid_reason(mdl(), sys(), 4096),
            "configuration exceeds available GPUs");
}

TEST(ParallelConfig, RejectsDepthMismatch) {
  ParallelConfig c = base();
  c.np = 96;  // 128 % 96 != 0
  EXPECT_EQ(*c.invalid_reason(mdl(), sys(), 4096), "np must divide model depth");
}

TEST(ParallelConfig, RejectsBatchMismatch) {
  ParallelConfig c = base();
  c.nd = 3;
  EXPECT_EQ(*c.invalid_reason(mdl(), sys(), 4096), "nd must divide global batch");
}

TEST(ParallelConfig, RejectsMicrobatchMismatch) {
  ParallelConfig c = base();
  c.microbatches = 96;  // (4096/32) = 128 not divisible by 96
  EXPECT_EQ(*c.invalid_reason(mdl(), sys(), 4096), "m must divide the local batch");
}

TEST(ParallelConfig, RejectsHeadMismatch) {
  ParallelConfig c = base();
  c.n1 = 64;  // 160 heads % 64 != 0
  c.nd = 4;
  EXPECT_EQ(*c.invalid_reason(mdl(), sys(), 4096), "n1 must divide heads");
}

TEST(ParallelConfig, RejectsSequenceMismatch) {
  model::TransformerConfig m = mdl();
  ParallelConfig c;
  c.strategy = TpStrategy::TP2D;
  c.n1 = 2;
  c.n2 = 2048;  // n1*n2 = 4096 > l = 2048
  c.nvs1 = 1;
  EXPECT_EQ(*c.invalid_reason(m, sys(), 4096), "n1*n2 must divide seq_len");
}

TEST(ParallelConfig, SummaRequiresDivisiblePanels) {
  ParallelConfig c;
  c.strategy = TpStrategy::Summa2D;
  c.n1 = 4;
  c.n2 = 4;
  c.nb = 3;  // 25600 % 3 != 0
  EXPECT_EQ(*c.invalid_reason(mdl(), sys(), 4096),
            "nb must divide the contraction dim");
}

TEST(ParallelConfig, NbRejectedOutsideSumma) {
  ParallelConfig c = base();
  c.nb = 4;
  EXPECT_EQ(*c.invalid_reason(mdl(), sys(), 4096),
            "nb is only meaningful for SUMMA");
}

TEST(ParallelConfig, PlacementMustDivideGroup) {
  ParallelConfig c = base();
  c.nvs1 = 3;
  EXPECT_EQ(*c.invalid_reason(mdl(), sys(), 4096),
            "each nvs_i must divide its group size");
}

TEST(ParallelConfig, PlacementBoundedByDomain) {
  ParallelConfig c = base();
  c.nvs1 = 8;
  c.nvsd = 2;  // product 16 > domain 8
  EXPECT_EQ(*c.invalid_reason(mdl(), sys(), 4096),
            "placement exceeds the NVS domain");
}

TEST(ParallelConfig, Describe) {
  const std::string s = base().describe();
  EXPECT_NE(s.find("1D TP"), std::string::npos);
  EXPECT_NE(s.find("PP=64"), std::string::npos);
  EXPECT_NE(s.find("DP=32"), std::string::npos);
}

TEST(ParallelConfig, TotalsAndTp) {
  ParallelConfig c = base();
  EXPECT_EQ(c.total_gpus(), 8 * 64 * 32);
  EXPECT_EQ(c.tp(), 8);
  EXPECT_EQ(c.placement_product(), 8);
}

}  // namespace
}  // namespace tfpe::parallel
