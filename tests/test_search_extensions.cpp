// Tests for the extension-aware search: interleave/ZeRO-3 candidate axes,
// eval-option passthrough and top-k result collection.

#include <gtest/gtest.h>

#include "search/search.hpp"

namespace tfpe::search {
namespace {

hw::SystemConfig b200(std::int64_t n) {
  return hw::make_system(hw::GpuGeneration::B200, 8, n);
}

SearchOptions base_opts() {
  SearchOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 4096;
  return opts;
}

TEST(TopK, ReturnsSortedDistinctConfigs) {
  SearchOptions opts = base_opts();
  opts.top_k = 5;
  const auto r = find_optimal(model::gpt3_1t(), b200(1024), opts);
  ASSERT_TRUE(r.best.feasible);
  ASSERT_EQ(r.top.size(), 5u);
  EXPECT_DOUBLE_EQ(r.top[0].iteration(), r.best.iteration());
  for (std::size_t i = 1; i < r.top.size(); ++i) {
    EXPECT_GE(r.top[i].iteration(), r.top[i - 1].iteration());
    EXPECT_NE(r.top[i].cfg.describe(), r.top[i - 1].cfg.describe());
  }
}

TEST(TopK, EmptyWhenNotRequested) {
  const auto r = find_optimal(model::gpt3_1t(), b200(1024), base_opts());
  EXPECT_TRUE(r.top.empty());
}

TEST(InterleaveSearch, NeverWorseThanBaseline) {
  SearchOptions opts = base_opts();
  const auto base = find_optimal(model::gpt3_1t(), b200(16384), opts);
  opts.interleave_candidates = {1, 2, 4};
  const auto inter = find_optimal(model::gpt3_1t(), b200(16384), opts);
  ASSERT_TRUE(base.best.feasible && inter.best.feasible);
  EXPECT_LE(inter.best.iteration(), base.best.iteration() * (1 + 1e-12));
  EXPECT_GT(inter.stats.candidates, base.stats.candidates);
}

TEST(InterleaveSearch, PicksInterleavingAtBubbleBoundScale) {
  // At 16K GPUs bubbles are ~30% of the iteration (Fig. 4a), so the search
  // should use virtual chunks when offered.
  SearchOptions opts = base_opts();
  opts.interleave_candidates = {1, 2, 4, 8};
  const auto r = find_optimal(model::gpt3_1t(), b200(16384), opts);
  ASSERT_TRUE(r.best.feasible);
  EXPECT_GT(r.best.cfg.interleave, 1);
}

TEST(Zero3Search, ExpandsTheSpace) {
  SearchOptions opts = base_opts();
  const auto base = find_optimal(model::gpt3_1t(), b200(512), opts);
  opts.allow_zero3 = true;
  const auto z = find_optimal(model::gpt3_1t(), b200(512), opts);
  ASSERT_TRUE(base.best.feasible && z.best.feasible);
  EXPECT_LE(z.best.iteration(), base.best.iteration() * (1 + 1e-12));
  EXPECT_GT(z.stats.candidates, base.stats.candidates);
}

TEST(EvalOptionsPassthrough, OverlapSpeedsUpOptimum) {
  SearchOptions opts = base_opts();
  const auto base = find_optimal(model::gpt3_1t(), b200(4096), opts);
  opts.eval.tp_overlap = 0.8;
  const auto fast = find_optimal(model::gpt3_1t(), b200(4096), opts);
  ASSERT_TRUE(base.best.feasible && fast.best.feasible);
  EXPECT_LT(fast.best.iteration(), base.best.iteration());
}

TEST(BestPlacement, AcceptsEvalOptions) {
  parallel::ParallelConfig cfg;
  cfg.strategy = parallel::TpStrategy::TP1D;
  cfg.n1 = 8;
  cfg.np = 64;
  cfg.nd = 32;
  cfg.microbatches = 128;
  core::EvalOptions eval;
  eval.tp_overlap = 0.5;
  const auto plain = best_placement(model::gpt3_1t(), b200(16384), cfg, 4096);
  const auto overlapped =
      best_placement(model::gpt3_1t(), b200(16384), cfg, 4096, eval);
  ASSERT_TRUE(plain.feasible && overlapped.feasible);
  EXPECT_LT(overlapped.iteration(), plain.iteration());
}

}  // namespace
}  // namespace tfpe::search
