// Unit tests for the integer-math helpers that underpin the configuration
// enumeration (S3).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "util/math.hpp"

namespace tfpe::util {
namespace {

TEST(Divisors, One) { EXPECT_EQ(divisors(1), (std::vector<std::int64_t>{1})); }

TEST(Divisors, Twelve) {
  EXPECT_EQ(divisors(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
}

TEST(Divisors, PerfectSquare) {
  EXPECT_EQ(divisors(16), (std::vector<std::int64_t>{1, 2, 4, 8, 16}));
}

TEST(Divisors, Prime) {
  EXPECT_EQ(divisors(97), (std::vector<std::int64_t>{1, 97}));
}

TEST(Divisors, Sorted) {
  const auto d = divisors(64800);  // the ViT sequence length
  EXPECT_TRUE(std::is_sorted(d.begin(), d.end()));
  for (auto v : d) EXPECT_EQ(64800 % v, 0);
}

TEST(Divisors, ThrowsOnNonPositive) {
  EXPECT_THROW(divisors(0), std::invalid_argument);
  EXPECT_THROW(divisors(-4), std::invalid_argument);
}

TEST(OrderedFactorizations, CountForPowerOfTwo) {
  // Factorizations of 2^k into j ordered factors: C(k + j - 1, j - 1).
  const auto f = ordered_factorizations(16, 2);  // C(5,1) = 5
  EXPECT_EQ(f.size(), 5u);
  for (const auto& t : f) EXPECT_EQ(t[0] * t[1], 16);
}

TEST(OrderedFactorizations, FourWay) {
  const auto f = ordered_factorizations(8, 4);  // C(6,3) = 20
  EXPECT_EQ(f.size(), 20u);
  for (const auto& t : f) {
    EXPECT_EQ(std::accumulate(t.begin(), t.end(), std::int64_t{1},
                              std::multiplies<>()),
              8);
  }
}

TEST(OrderedFactorizations, OrderMatters) {
  const auto f = ordered_factorizations(6, 2);
  EXPECT_EQ(f.size(), 4u);  // (1,6),(2,3),(3,2),(6,1)
}

TEST(OrderedFactorizations, SingleFactor) {
  const auto f = ordered_factorizations(42, 1);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0][0], 42);
}

TEST(IsPowerOfTwo, Basics) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(16384));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(-8));
}

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_THROW(ceil_div(1, 0), std::invalid_argument);
}

TEST(Gcd, Basics) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(7, 13), 1);
  EXPECT_EQ(gcd(0, 5), 5);
}

}  // namespace
}  // namespace tfpe::util
