// Tests for the iteration-time evaluator (S2): roofline attribution, SUMMA
// overlap, DP overlap, feasibility and breakdown consistency.

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "ops/op_factory.hpp"

namespace tfpe::core {
namespace {

using parallel::ParallelConfig;
using parallel::TpStrategy;

hw::SystemConfig b200(std::int64_t nvs = 8, std::int64_t n = 16384) {
  return hw::make_system(hw::GpuGeneration::B200, nvs, n);
}

ParallelConfig fig1_optimum() {
  ParallelConfig c;
  c.strategy = TpStrategy::TP1D;
  c.n1 = 8;
  c.np = 64;
  c.nd = 32;
  c.microbatches = 128;
  c.nvs1 = 8;
  return c;
}

TEST(OpTime, LargeMatmulIsComputeBound) {
  const ops::Op op = ops::matmul("mm", 4096, 4096, 4096);
  const OpTime t = op_time(op, false, b200(), fig1_optimum());
  EXPECT_GT(t.compute.value(), 0.0);
  EXPECT_DOUBLE_EQ(t.memory.value(), 0.0);
  // Roofline: t >= flops/peak + launch latency.
  EXPECT_GE(t.compute.value(), op.fwd_flops.value() / 2500e12);
}

TEST(OpTime, TinyVectorOpIsMemoryBound) {
  const ops::Op op = ops::layernorm("ln", 1e6);
  const OpTime t = op_time(op, false, b200(), fig1_optimum());
  EXPECT_DOUBLE_EQ(t.compute.value(), 0.0);
  EXPECT_GT(t.memory.value(), 0.0);
}

TEST(OpTime, FlopsLatencyAppliesToTensorOps) {
  // A minuscule matmul still costs at least t_sf = 2e-5 s.
  const ops::Op op = ops::matmul("mm", 2, 2, 2);
  const OpTime t = op_time(op, false, b200(), fig1_optimum());
  EXPECT_GE((t.compute + t.memory).value(), 2e-5);
  const ops::Op vec = ops::residual_add("res", 4);
  const OpTime tv = op_time(vec, false, b200(), fig1_optimum());
  EXPECT_LT((tv.compute + tv.memory).value(), 2e-5);
}

TEST(OpTime, BackwardCostsMore) {
  const ops::Op op = ops::matmul("mm", 2048, 2048, 2048);
  const OpTime f = op_time(op, false, b200(), fig1_optimum());
  const OpTime b = op_time(op, true, b200(), fig1_optimum());
  EXPECT_GT(b.compute, f.compute);
}

TEST(OpTime, SummaOverlapHidesCommWhenComputeDominates) {
  // A SUMMA op whose per-panel compute far exceeds the broadcast time must
  // expose only ~one panel's communication (the prologue).
  ops::Op op = ops::summa_matmul("s", 65536, 65536, 8192, 2, 2, 8);
  const auto sys = b200();
  ParallelConfig cfg = fig1_optimum();
  cfg.strategy = TpStrategy::Summa2D;
  cfg.n1 = 2;
  cfg.n2 = 2;
  cfg.nvs1 = 2;
  cfg.nvs2 = 2;
  const OpTime t = op_time(op, false, sys, cfg);
  // exposed comm <= 1.5x a single panel's broadcasts.
  ops::Op one_panel = op;
  one_panel.summa_panels = 1;
  one_panel.fwd_comm[0].bytes /= 8;
  one_panel.fwd_comm[1].bytes /= 8;
  const OpTime tp = op_time(one_panel, false, sys, cfg);
  EXPECT_LE(t.comm, 1.5 * tp.comm);
}

TEST(OpTime, MorePanelsCostMoreLaunchLatency) {
  const auto sys = b200();
  ParallelConfig cfg = fig1_optimum();
  cfg.strategy = TpStrategy::Summa2D;
  cfg.n1 = cfg.n2 = 2;
  cfg.nvs1 = 2;  // collective_time rejects nvs1 > n1 placements
  const ops::Op p1 = ops::summa_matmul("s", 1024, 1024, 1024, 2, 2, 1);
  const ops::Op p16 = ops::summa_matmul("s", 1024, 1024, 1024, 2, 2, 16);
  const OpTime t1 = op_time(p1, false, sys, cfg);
  const OpTime t16 = op_time(p16, false, sys, cfg);
  EXPECT_GT(t16.compute + t16.memory, t1.compute + t1.memory);
}

TEST(Evaluate, PaperFig1OptimumFeasibleAndComputeDominated) {
  const EvalResult r = evaluate(model::gpt3_1t(), b200(), fig1_optimum(), 4096);
  ASSERT_TRUE(r.feasible) << r.reason;
  EXPECT_GT(r.time.compute, r.time.tp_comm);
  EXPECT_GT(r.time.compute, r.time.bubble);
  EXPECT_GT(r.time.bubble, 0.0);
  // ~40-60 GB HBM at this configuration (paper: ~40 GB).
  EXPECT_GT(r.mem.total().value(), 30e9);
  EXPECT_LT(r.mem.total().value(), 80e9);
}

TEST(Evaluate, InfeasibleWhenMemoryOverflows) {
  // GPT3-1T on 128 GPUs with no DP sharding of the optimizer and tiny TP:
  // np=128, nt=1, nd=1 -> one layer per GPU but full optimizer states.
  ParallelConfig c;
  c.strategy = TpStrategy::TP1D;
  c.n1 = 1;
  c.np = 1;
  c.nd = 1;
  c.microbatches = 1;
  const EvalResult r =
      evaluate(model::gpt3_1t(), b200(8, 1), c, 4096);
  EXPECT_FALSE(r.feasible);
}

TEST(Evaluate, ReportsInvalidConfigReason) {
  ParallelConfig c = fig1_optimum();
  c.np = 96;
  const EvalResult r = evaluate(model::gpt3_1t(), b200(), c, 4096);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.reason, "np must divide model depth");
}

TEST(Evaluate, BubbleMatchesClosedForm) {
  const EvalResult r = evaluate(model::gpt3_1t(), b200(), fig1_optimum(), 4096);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.time.bubble, 63.0 * (r.t_fwd_micro + r.t_bwd_micro),
              1e-9 * r.time.bubble);
}

TEST(Evaluate, TotalIsSumOfBreakdown) {
  const EvalResult r = evaluate(model::gpt3_1t(), b200(), fig1_optimum(), 4096);
  ASSERT_TRUE(r.feasible);
  const auto& t = r.time;
  EXPECT_NEAR(r.iteration(), t.compute + t.memory + t.tp_comm + t.pp_comm +
                                 t.dp_comm + t.bubble + t.optimizer,
              1e-12);
}

TEST(Evaluate, FasterGpuGenerationIsFaster) {
  const auto cfg = fig1_optimum();
  const EvalResult a =
      evaluate(model::gpt3_1t(), hw::make_system(hw::GpuGeneration::A100, 8, 16384),
               cfg, 4096);
  const EvalResult h =
      evaluate(model::gpt3_1t(), hw::make_system(hw::GpuGeneration::H200, 8, 16384),
               cfg, 4096);
  const EvalResult b = evaluate(model::gpt3_1t(), b200(), cfg, 4096);
  ASSERT_TRUE(h.feasible && b.feasible);
  if (a.feasible) EXPECT_GT(a.iteration(), h.iteration());
  EXPECT_GT(h.iteration(), b.iteration());
}

TEST(Evaluate, LargerNvsDomainNeverSlower) {
  ParallelConfig cfg = fig1_optimum();
  const EvalResult small = evaluate(model::gpt3_1t(), b200(8), cfg, 4096);
  cfg.nvsd = 8;  // use a 64-GPU domain for DP too
  const EvalResult large = evaluate(model::gpt3_1t(), b200(64), cfg, 4096);
  ASSERT_TRUE(small.feasible && large.feasible);
  EXPECT_LE(large.iteration(), small.iteration() * (1 + 1e-12));
}

TEST(Evaluate, DpCommOverlapExposesOnlyExcess) {
  // With few DP replicas and heavy per-microbatch compute the DP collectives
  // hide entirely.
  ParallelConfig c = fig1_optimum();
  const EvalResult r = evaluate(model::gpt3_1t(), b200(), c, 4096);
  ASSERT_TRUE(r.feasible);
  EXPECT_LT(r.time.dp_comm, 0.25 * r.iteration());
}

TEST(EvaluateWithLayer, MatchesEvaluate) {
  const auto mdl = model::gpt3_1t();
  const auto sys = b200();
  const auto cfg = fig1_optimum();
  const auto layer = parallel::build_layer(mdl, cfg, cfg.local_microbatch(4096));
  const EvalResult a = evaluate(mdl, sys, cfg, 4096);
  const EvalResult b = evaluate_with_layer(mdl, sys, cfg, 4096, layer);
  EXPECT_DOUBLE_EQ(a.iteration(), b.iteration());
  EXPECT_DOUBLE_EQ(a.mem.total().value(), b.mem.total().value());
}

}  // namespace
}  // namespace tfpe::core
