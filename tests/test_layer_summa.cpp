// Tests for the SUMMA layer builder against paper Table A2 / Appendix A.

#include <gtest/gtest.h>

#include "parallel/layer_builder.hpp"

namespace tfpe::parallel {
namespace {

model::TransformerConfig tiny() {
  model::TransformerConfig m{"tiny", 256, 128, 8, 4, 512};
  m.validate();
  return m;
}

ParallelConfig cfg_summa(std::int64_t n1, std::int64_t n2, std::int64_t nb = 1) {
  ParallelConfig c;
  c.strategy = TpStrategy::Summa2D;
  c.n1 = n1;
  c.n2 = n2;
  c.nb = nb;
  return c;
}

TEST(LayerSumma, NoSharedWeights) {
  // SUMMA shards WQKV/W1/W2 over both grid dims (Wp over n1 only, Table A2):
  // growing n2 must shrink the resident weights.
  const auto m = tiny();
  const double w1 = build_layer_summa(m, cfg_summa(4, 1), 1).weight_params;
  const double w4 = build_layer_summa(m, cfg_summa(4, 4), 1).weight_params;
  EXPECT_GT(w1, 2.0 * w4);
  EXPECT_FALSE(build_layer_summa(m, cfg_summa(4, 4), 1).dp_group_includes_tp2);
}

TEST(LayerSumma, LighterThan2dTp) {
  const auto m = tiny();
  const LayerCost summa = build_layer_summa(m, cfg_summa(4, 4), 2);
  ParallelConfig c2d = cfg_summa(4, 4);
  c2d.strategy = TpStrategy::TP2D;
  c2d.nb = 1;
  const LayerCost tp2d = build_layer_2d(m, c2d, 2);
  EXPECT_LT(summa.weight_params, tp2d.weight_params);
  EXPECT_LT(summa.stored_bytes().value(), tp2d.stored_bytes().value());
}

TEST(LayerSumma, BroadcastVolumesMatchTableA2) {
  // For QKV: V1 = b*l*e/n2 (A blocks over TP1) + e*3e/n1 (B blocks over TP2).
  const auto m = tiny();
  const std::int64_t B = 2;
  const LayerCost lc = build_layer_summa(m, cfg_summa(2, 4), B);
  const ops::Op* qkv = nullptr;
  for (const auto& op : lc.ops) {
    if (op.name == "qkv_proj") qkv = &op;
  }
  ASSERT_NE(qkv, nullptr);
  ASSERT_EQ(qkv->fwd_comm.size(), 2u);
  const double e = m.embed, l = m.seq_len;
  EXPECT_DOUBLE_EQ(qkv->fwd_comm[0].bytes.value(), 2.0 * B * l * e / 4);
  EXPECT_DOUBLE_EQ(qkv->fwd_comm[1].bytes.value(), 2.0 * e * 3 * e / 2);
}

TEST(LayerSumma, CommVolumeScalesWithBothDims) {
  // Unlike 1D TP, growing either grid dimension reduces total volume.
  const auto m = tiny();
  auto total = [&](std::int64_t n1, std::int64_t n2) {
    const LayerCost lc = build_layer_summa(m, cfg_summa(n1, n2), 2);
    return (lc.fwd_comm_bytes(ops::CommGroup::TP1) +
            lc.fwd_comm_bytes(ops::CommGroup::TP2))
        .value();
  };
  EXPECT_LT(total(4, 2), total(2, 2));
  EXPECT_LT(total(2, 4), total(2, 2));
}

TEST(LayerSumma, HigherAbsoluteVolumeThan2dTp) {
  // SUMMA also moves the weight panels, so its absolute volume exceeds the
  // activation-only 2D TP volume for small grids (paper §III).
  const auto m = tiny();
  const LayerCost summa = build_layer_summa(m, cfg_summa(2, 2), 1);
  ParallelConfig c2d = cfg_summa(2, 2);
  c2d.strategy = TpStrategy::TP2D;
  const LayerCost tp2d = build_layer_2d(m, c2d, 1);
  auto vol = [](const LayerCost& lc) {
    return (lc.fwd_comm_bytes(ops::CommGroup::TP1) +
            lc.fwd_comm_bytes(ops::CommGroup::TP2))
        .value();
  };
  EXPECT_GT(vol(summa), vol(tp2d));
}

TEST(LayerSumma, PanelsPropagateToMatmulOps) {
  const LayerCost lc = build_layer_summa(tiny(), cfg_summa(2, 2, 8), 1);
  int panelled = 0;
  for (const auto& op : lc.ops) {
    if (op.summa_panels == 8) ++panelled;
  }
  EXPECT_EQ(panelled, 3);  // qkv, fc1, fc2
}

TEST(LayerSumma, LayerNormUsesAllReduce) {
  const LayerCost lc = build_layer_summa(tiny(), cfg_summa(2, 2), 1);
  EXPECT_EQ(lc.ops[0].name, "ln1");
  ASSERT_EQ(lc.ops[0].fwd_comm.size(), 1u);
  EXPECT_EQ(lc.ops[0].fwd_comm[0].collective, ops::Collective::AllReduce);
  EXPECT_EQ(lc.ops[0].fwd_comm[0].group, ops::CommGroup::TP1);
}

TEST(LayerSumma, FlopsConservedAcrossGrid) {
  const auto m = tiny();
  const double total =
      build_layer_summa(m, cfg_summa(1, 1), 2).fwd_flops().value();
  const double sharded =
      build_layer_summa(m, cfg_summa(2, 4), 2).fwd_flops().value();
  EXPECT_NEAR(total, 8.0 * sharded, 0.02 * total);
}

}  // namespace
}  // namespace tfpe::parallel
