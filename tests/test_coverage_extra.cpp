// Cross-cutting coverage: corners of the API combinations (SUMMA op report,
// MoE reporting, single-GPU edge cases, config files exercising every
// extension key, evaluator corner configurations).

#include <gtest/gtest.h>

#include <sstream>

#include "core/evaluator.hpp"
#include "io/config_file.hpp"
#include "report/markdown_report.hpp"
#include "report/op_report.hpp"
#include "search/search.hpp"

namespace tfpe {
namespace {

using parallel::ParallelConfig;
using parallel::TpStrategy;

TEST(CoverageExtra, OpReportForSummaShowsPanels) {
  ParallelConfig cfg;
  cfg.strategy = TpStrategy::Summa2D;
  cfg.n1 = 4;
  cfg.n2 = 2;
  cfg.nb = 4;
  cfg.nd = 8;
  cfg.np = 2;
  cfg.microbatches = 64;
  cfg.nvs1 = 4;
  cfg.nvs2 = 2;
  std::ostringstream os;
  report::print_op_report(os, model::gpt3_1t(),
                          hw::make_system(hw::GpuGeneration::B200, 8, 64 * 2),
                          cfg, 512);
  const std::string s = os.str();
  EXPECT_NE(s.find("qkv_proj"), std::string::npos);
  EXPECT_NE(s.find("nb=4"), std::string::npos);
}

TEST(CoverageExtra, OpReportForMoeListsExpertOps) {
  ParallelConfig cfg;
  cfg.strategy = TpStrategy::TP1D;
  cfg.n1 = 4;
  cfg.nd = 64;
  cfg.microbatches = 8;
  std::ostringstream os;
  report::print_op_report(os, model::gpt_moe_1t(),
                          hw::make_system(hw::GpuGeneration::B200, 8, 256),
                          cfg, 512);
  EXPECT_NE(os.str().find("moe_dispatch"), std::string::npos);
  EXPECT_NE(os.str().find("moe_fc1"), std::string::npos);
}

TEST(CoverageExtra, SingleGpuEvaluation) {
  // np = nd = nt = 1: no communication at all, pure roofline.
  auto mdl = model::gpt3_175b();
  mdl.depth = 4;  // shrink so it fits on one GPU with ZeRO off
  mdl.validate();
  ParallelConfig cfg;
  cfg.microbatches = 1;
  const auto r = core::evaluate(
      mdl, hw::make_system(hw::GpuGeneration::B200, 8, 1), cfg, 1);
  ASSERT_TRUE(r.feasible) << r.reason;
  EXPECT_DOUBLE_EQ(r.time.tp_comm, 0.0);
  EXPECT_DOUBLE_EQ(r.time.dp_comm, 0.0);
  EXPECT_DOUBLE_EQ(r.time.pp_comm, 0.0);
  EXPECT_DOUBLE_EQ(r.time.bubble, 0.0);
  EXPECT_GT(r.time.compute, 0.0);
}

TEST(CoverageExtra, ConfigFileWithEveryModelExtension) {
  std::istringstream in(
      "[model]\n"
      "name = kitchen-sink\n"
      "seq_len = 4096\nembed = 1024\nheads = 16\ndepth = 8\n"
      "kv_heads = 4\nvocab = 32000\n"
      "moe_experts = 8\nmoe_top_k = 2\n");
  const auto sections = io::parse_config(in);
  const auto m = io::model_from_section(sections.at("model"));
  EXPECT_EQ(m.kv_heads, 4);
  EXPECT_EQ(m.vocab, 32000);
  EXPECT_TRUE(m.is_moe());
  EXPECT_GT(m.total_params(), 0);
}

TEST(CoverageExtra, ConfigFileWithEverySystemExtension) {
  std::istringstream in(
      "[system]\n"
      "gpu = h200\npod_size = 256\noversubscription = 2\n"
      "enable_tree = 1\nhost_gbs = 128\nnics_per_gpu = 2\n");
  const auto sections = io::parse_config(in);
  const auto sys = io::system_from_section(sections.at("system"));
  EXPECT_EQ(sys.net.pod_size, 256);
  EXPECT_DOUBLE_EQ(sys.net.oversubscription, 2.0);
  EXPECT_TRUE(sys.net.enable_tree);
  EXPECT_DOUBLE_EQ(sys.host_bandwidth.value(), 128e9);
  EXPECT_DOUBLE_EQ(sys.net.nics_per_gpu, 2.0);
}

TEST(CoverageExtra, MarkdownReportForMoeResult) {
  ParallelConfig cfg;
  cfg.strategy = TpStrategy::TP1D;
  cfg.n1 = 4;
  cfg.nd = 64;
  cfg.microbatches = 8;
  const auto r = core::evaluate(
      model::gpt_moe_1t(), hw::make_system(hw::GpuGeneration::B200, 8, 256),
      cfg, 512);
  ASSERT_TRUE(r.feasible) << r.reason;
  std::ostringstream os;
  report::write_markdown_report(os, "moe", {}, {{"m", r}});
  EXPECT_NE(os.str().find("## Memory per GPU"), std::string::npos);
}

TEST(CoverageExtra, DescribeStringsCoverExtensions) {
  ParallelConfig cfg;
  cfg.strategy = TpStrategy::Summa2D;
  cfg.n1 = 2;
  cfg.n2 = 2;
  cfg.np = 4;
  cfg.nb = 8;
  cfg.interleave = 2;
  cfg.zero = parallel::ZeroStage::kWeights;
  const std::string s = cfg.describe();
  EXPECT_NE(s.find("SUMMA"), std::string::npos);
  EXPECT_NE(s.find("nb=8"), std::string::npos);
  EXPECT_NE(s.find("v=2"), std::string::npos);
  EXPECT_NE(s.find("ZeRO3"), std::string::npos);
}

TEST(CoverageExtra, SearchWithOversubscribedFabricStaysFeasible) {
  hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8, 1024);
  sys.net.pod_size = 128;
  sys.net.oversubscription = 8.0;
  search::SearchOptions opts;
  opts.strategy = TpStrategy::TP1D;
  opts.global_batch = 1024;
  const auto r = search::find_optimal(model::gpt3_175b(), sys, opts);
  ASSERT_TRUE(r.best.feasible);
}

TEST(CoverageExtra, EvaluateIsDeterministic) {
  const auto mdl = model::vit_64k();
  ParallelConfig cfg;
  cfg.strategy = TpStrategy::TP2D;
  cfg.n1 = 2;
  cfg.n2 = 8;
  cfg.np = 2;
  cfg.nd = 128;
  cfg.microbatches = 32;
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 4096);
  const auto a = core::evaluate(mdl, sys, cfg, 4096);
  const auto b = core::evaluate(mdl, sys, cfg, 4096);
  EXPECT_DOUBLE_EQ(a.iteration(), b.iteration());
  EXPECT_DOUBLE_EQ(a.mem.total().value(), b.mem.total().value());
}

}  // namespace
}  // namespace tfpe
