// Unit + property tests for the analytical collective model (S2).

#include <gtest/gtest.h>

#include <tuple>

#include "comm/collective_model.hpp"
#include "hw/network.hpp"

namespace tfpe::comm {
namespace {

hw::NetworkSpec b200_net() {
  return hw::network_preset(hw::GpuGeneration::B200);
}

TEST(RingLatency, PureFastDomain) {
  // 8 GPUs all in one fast domain: 7 fast hops, no slow hops.
  const double t = ring_latency(b200_net(), {8, 8}).value();
  EXPECT_DOUBLE_EQ(t, 7 * 2.5e-6);
}

TEST(RingLatency, TwoLevel) {
  // 32 GPUs, 8 per domain: 3 slow hops + 28 fast hops (paper's formula).
  const double t = ring_latency(b200_net(), {32, 8}).value();
  EXPECT_DOUBLE_EQ(t, 3 * 5e-6 + 28 * 2.5e-6);
}

TEST(RingLatency, AllCrossNode) {
  const double t = ring_latency(b200_net(), {16, 1}).value();
  EXPECT_DOUBLE_EQ(t, 15 * 5e-6);
}

TEST(EffectiveBandwidth, InsideFastDomain) {
  EXPECT_DOUBLE_EQ(effective_bandwidth(b200_net(), {8, 8}).value(),
                   0.7 * 900e9);
}

TEST(EffectiveBandwidth, MultiRailAmplifiesIb) {
  const auto net = b200_net();
  // 1 GPU per node: a single NIC rail.
  EXPECT_DOUBLE_EQ(effective_bandwidth(net, {16, 1}).value(), 0.7 * 100e9);
  // 4 GPUs per node: 4 rails.
  EXPECT_DOUBLE_EQ(effective_bandwidth(net, {16, 4}).value(), 0.7 * 400e9);
}

TEST(EffectiveBandwidth, CappedByNvs) {
  // With enough rails the NVS bandwidth is the ceiling (paper: "eventually
  // constrained by beta_f for large NVS domains").
  auto net = b200_net();
  EXPECT_DOUBLE_EQ(effective_bandwidth(net, {128, 64}).value(),
                   net.effective_nvs_bandwidth().value());
}

TEST(CollectiveTime, AllGatherMatchesClosedForm) {
  const auto net = b200_net();
  const Bytes V{1e9};
  const GroupPlacement g{32, 8};
  const Seconds expected =
      ring_latency(net, g) + V * (31.0 / 32.0) / effective_bandwidth(net, g);
  EXPECT_DOUBLE_EQ(
      collective_time(net, ops::Collective::AllGather, V, g).value(),
      expected.value());
}

TEST(CollectiveTime, ReduceScatterEqualsAllGather) {
  const auto net = b200_net();
  EXPECT_DOUBLE_EQ(
      collective_time(net, ops::Collective::AllGather, Bytes(5e8), {16, 4})
          .value(),
      collective_time(net, ops::Collective::ReduceScatter, Bytes(5e8), {16, 4})
          .value());
}

TEST(CollectiveTime, AllReduceIsTwoPasses) {
  const auto net = b200_net();
  const GroupPlacement g{16, 4};
  const Seconds ag =
      collective_time(net, ops::Collective::AllGather, Bytes(1e9), g);
  const Seconds ar =
      collective_time(net, ops::Collective::AllReduce, Bytes(1e9), g);
  EXPECT_DOUBLE_EQ(ar.value(), 2.0 * ag.value());
}

TEST(CollectiveTime, TrivialGroupIsFree) {
  const auto net = b200_net();
  EXPECT_DOUBLE_EQ(
      collective_time(net, ops::Collective::AllGather, Bytes(1e9), {1, 1})
          .value(),
      0.0);
  EXPECT_DOUBLE_EQ(
      collective_time(net, ops::Collective::AllReduce, Bytes(0), {8, 8})
          .value(),
      0.0);
}

TEST(CollectiveTime, PointToPointUsesLinkType) {
  const auto net = b200_net();
  const Seconds fast =
      collective_time(net, ops::Collective::PointToPoint, Bytes(1e8), {2, 2});
  const Seconds slow =
      collective_time(net, ops::Collective::PointToPoint, Bytes(1e8), {2, 1});
  EXPECT_LT(fast.value(), slow.value());
  EXPECT_DOUBLE_EQ(fast.value(), 2.5e-6 + 1e8 / (0.7 * 900e9));
  EXPECT_DOUBLE_EQ(slow.value(), 5e-6 + 1e8 / (0.7 * 100e9));
}

TEST(CollectiveTime, RejectsNegativeBytes) {
  EXPECT_THROW(
      collective_time(b200_net(), ops::Collective::AllGather, Bytes(-1.0),
                      {8, 8}),
      std::invalid_argument);
}

TEST(CollectiveTime, RejectsInvalidPlacements) {
  // Regression: these placements used to produce negative slow-hop counts
  // (nodes = size/nvs < 1) silently; now they are rejected up front.
  const auto net = b200_net();
  const Bytes v{1e6};
  // nvs exceeds the group size.
  EXPECT_THROW(collective_time(net, ops::Collective::AllGather, v, {2, 8}),
               std::invalid_argument);
  // nvs not positive.
  EXPECT_THROW(collective_time(net, ops::Collective::AllGather, v, {8, 0}),
               std::invalid_argument);
  EXPECT_THROW(collective_time(net, ops::Collective::AllGather, v, {8, -1}),
               std::invalid_argument);
  // nvs does not divide the group size.
  EXPECT_THROW(collective_time(net, ops::Collective::AllGather, v, {12, 8}),
               std::invalid_argument);
  EXPECT_THROW(collective_time(net, ops::Collective::AllReduce, v, {6, 4}),
               std::invalid_argument);
  // Negative group size.
  EXPECT_THROW(collective_time(net, ops::Collective::AllGather, v, {-4, 1}),
               std::invalid_argument);
}

TEST(CollectiveTime, NoneAndZeroVolumeBypassPlacementValidation) {
  // Legacy ordering: None / zero-volume collectives returned 0 before the
  // placement was ever inspected; the adapter preserves that.
  const auto net = b200_net();
  EXPECT_DOUBLE_EQ(
      collective_time(net, ops::Collective::None, Bytes(1e6), {2, 8}).value(),
      0.0);
  EXPECT_DOUBLE_EQ(
      collective_time(net, ops::Collective::AllGather, Bytes(0), {12, 8})
          .value(),
      0.0);
  // Negative bytes still throw first.
  EXPECT_THROW(
      collective_time(net, ops::Collective::AllGather, Bytes(-1.0), {2, 8}),
      std::invalid_argument);
}

TEST(CollectiveTime, ClampingHelpersStayTolerant) {
  // ring_latency / effective_bandwidth keep the legacy clamp-to-size
  // behaviour so exploratory callers can probe degenerate shapes.
  const auto net = b200_net();
  EXPECT_DOUBLE_EQ(ring_latency(net, {2, 8}).value(),
                   ring_latency(net, {2, 2}).value());
  EXPECT_DOUBLE_EQ(effective_bandwidth(net, {2, 8}).value(),
                   effective_bandwidth(net, {2, 2}).value());
}

TEST(RingVsTree, TreeWinsTheLatencyBoundRegime) {
  // Large group, tiny volume: the ring pays O(g) hops, the double-binary
  // tree O(log g) — the dispatcher must pick the tree when enabled.
  auto net = b200_net();
  const GroupPlacement g{1024, 8};
  const Bytes tiny{1e3};
  const double ring_time =
      collective_time(net, ops::Collective::AllReduce, tiny, g).value();
  net.enable_tree = true;
  const double with_tree =
      collective_time(net, ops::Collective::AllReduce, tiny, g).value();
  EXPECT_LT(with_tree, ring_time);
  EXPECT_DOUBLE_EQ(with_tree,
                   tree_time(net, ops::Collective::AllReduce, tiny, g).value());
}

TEST(RingVsTree, RingWinsTheBandwidthBoundRegime) {
  // Huge volume: the ring's (g-1)/g factor beats the tree's full-tensor
  // passes, so enabling the tree must not change the answer. At g=1024 the
  // ring pays ~6 ms of hop latency, so the crossover sits near 1.7e12 bytes.
  auto net = b200_net();
  const GroupPlacement g{1024, 8};
  const Bytes huge{1e13};
  const double ring_time =
      collective_time(net, ops::Collective::AllReduce, huge, g).value();
  net.enable_tree = true;
  EXPECT_DOUBLE_EQ(
      collective_time(net, ops::Collective::AllReduce, huge, g).value(),
      ring_time);
}

TEST(MultiRail, SingleRailEdge) {
  // One GPU per node and one NIC per GPU: exactly one rail of slow
  // bandwidth, no amplification.
  auto net = b200_net();
  net.nics_per_gpu = 1.0;
  EXPECT_DOUBLE_EQ(effective_bandwidth(net, {16, 1}).value(),
                   net.ib_bandwidth.value() * net.efficiency);
}

TEST(MultiRail, FullDomainRailsCapAtNvs) {
  // nvs = full domain with many NICs: the aggregate rail bandwidth exceeds
  // the fast-domain bandwidth, which must stay the ceiling.
  auto net = b200_net();
  net.nics_per_gpu = 4.0;
  const GroupPlacement g{64, 8};
  const double rails_bw =
      8.0 * net.ib_bandwidth.value() * (net.nics_per_gpu * net.efficiency);
  ASSERT_GT(rails_bw, net.effective_nvs_bandwidth().value());
  EXPECT_DOUBLE_EQ(effective_bandwidth(net, g).value(),
                   net.effective_nvs_bandwidth().value());
}

TEST(MultiRail, GroupInsideOneFastDomain) {
  // A group smaller than the fast domain never touches the slow network:
  // full NVS bandwidth and fast-only latency.
  const auto net = b200_net();
  const GroupPlacement g{4, 4};
  EXPECT_DOUBLE_EQ(effective_bandwidth(net, g).value(),
                   net.effective_nvs_bandwidth().value());
  EXPECT_DOUBLE_EQ(ring_latency(net, g).value(), 3 * 2.5e-6);
}

// ---- Property suite: monotonicity of the model over the design space ----

class CollectiveProperty
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(CollectiveProperty, MoreNvsNeverHurts) {
  const auto [size, nvs] = GetParam();
  if (nvs * 2 > size) GTEST_SKIP();
  const auto net = b200_net();
  const double t1 =
      collective_time(net, ops::Collective::AllGather, Bytes(1e9), {size, nvs})
          .value();
  const double t2 = collective_time(net, ops::Collective::AllGather, Bytes(1e9),
                                    {size, nvs * 2})
                        .value();
  EXPECT_LE(t2, t1 * (1.0 + 1e-12));
}

TEST_P(CollectiveProperty, TimeIncreasesWithVolume) {
  const auto [size, nvs] = GetParam();
  const auto net = b200_net();
  const GroupPlacement g{size, nvs};
  double prev = 0;
  for (double v = 1e6; v <= 1e10; v *= 10) {
    const double t =
        collective_time(net, ops::Collective::AllGather, Bytes(v), g).value();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST_P(CollectiveProperty, LatencyFloorRespected) {
  const auto [size, nvs] = GetParam();
  const auto net = b200_net();
  const GroupPlacement g{size, nvs};
  const double t =
      collective_time(net, ops::Collective::AllGather, Bytes(1.0), g).value();
  EXPECT_GE(t, ring_latency(net, g).value());
}

INSTANTIATE_TEST_SUITE_P(
    GroupShapes, CollectiveProperty,
    ::testing::Values(std::make_tuple(4, 1), std::make_tuple(8, 2),
                      std::make_tuple(8, 8), std::make_tuple(32, 4),
                      std::make_tuple(64, 8), std::make_tuple(256, 8),
                      std::make_tuple(1024, 64)));

}  // namespace
}  // namespace tfpe::comm
