// Unit + property tests for the analytical collective model (S2).

#include <gtest/gtest.h>

#include <tuple>

#include "comm/collective_model.hpp"
#include "hw/network.hpp"

namespace tfpe::comm {
namespace {

hw::NetworkSpec b200_net() {
  return hw::network_preset(hw::GpuGeneration::B200);
}

TEST(RingLatency, PureFastDomain) {
  // 8 GPUs all in one fast domain: 7 fast hops, no slow hops.
  const double t = ring_latency(b200_net(), {8, 8}).value();
  EXPECT_DOUBLE_EQ(t, 7 * 2.5e-6);
}

TEST(RingLatency, TwoLevel) {
  // 32 GPUs, 8 per domain: 3 slow hops + 28 fast hops (paper's formula).
  const double t = ring_latency(b200_net(), {32, 8}).value();
  EXPECT_DOUBLE_EQ(t, 3 * 5e-6 + 28 * 2.5e-6);
}

TEST(RingLatency, AllCrossNode) {
  const double t = ring_latency(b200_net(), {16, 1}).value();
  EXPECT_DOUBLE_EQ(t, 15 * 5e-6);
}

TEST(EffectiveBandwidth, InsideFastDomain) {
  EXPECT_DOUBLE_EQ(effective_bandwidth(b200_net(), {8, 8}).value(),
                   0.7 * 900e9);
}

TEST(EffectiveBandwidth, MultiRailAmplifiesIb) {
  const auto net = b200_net();
  // 1 GPU per node: a single NIC rail.
  EXPECT_DOUBLE_EQ(effective_bandwidth(net, {16, 1}).value(), 0.7 * 100e9);
  // 4 GPUs per node: 4 rails.
  EXPECT_DOUBLE_EQ(effective_bandwidth(net, {16, 4}).value(), 0.7 * 400e9);
}

TEST(EffectiveBandwidth, CappedByNvs) {
  // With enough rails the NVS bandwidth is the ceiling (paper: "eventually
  // constrained by beta_f for large NVS domains").
  auto net = b200_net();
  EXPECT_DOUBLE_EQ(effective_bandwidth(net, {128, 64}).value(),
                   net.effective_nvs_bandwidth().value());
}

TEST(CollectiveTime, AllGatherMatchesClosedForm) {
  const auto net = b200_net();
  const Bytes V{1e9};
  const GroupPlacement g{32, 8};
  const Seconds expected =
      ring_latency(net, g) + V * (31.0 / 32.0) / effective_bandwidth(net, g);
  EXPECT_DOUBLE_EQ(
      collective_time(net, ops::Collective::AllGather, V, g).value(),
      expected.value());
}

TEST(CollectiveTime, ReduceScatterEqualsAllGather) {
  const auto net = b200_net();
  EXPECT_DOUBLE_EQ(
      collective_time(net, ops::Collective::AllGather, Bytes(5e8), {16, 4})
          .value(),
      collective_time(net, ops::Collective::ReduceScatter, Bytes(5e8), {16, 4})
          .value());
}

TEST(CollectiveTime, AllReduceIsTwoPasses) {
  const auto net = b200_net();
  const GroupPlacement g{16, 4};
  const Seconds ag =
      collective_time(net, ops::Collective::AllGather, Bytes(1e9), g);
  const Seconds ar =
      collective_time(net, ops::Collective::AllReduce, Bytes(1e9), g);
  EXPECT_DOUBLE_EQ(ar.value(), 2.0 * ag.value());
}

TEST(CollectiveTime, TrivialGroupIsFree) {
  const auto net = b200_net();
  EXPECT_DOUBLE_EQ(
      collective_time(net, ops::Collective::AllGather, Bytes(1e9), {1, 1})
          .value(),
      0.0);
  EXPECT_DOUBLE_EQ(
      collective_time(net, ops::Collective::AllReduce, Bytes(0), {8, 8})
          .value(),
      0.0);
}

TEST(CollectiveTime, PointToPointUsesLinkType) {
  const auto net = b200_net();
  const Seconds fast =
      collective_time(net, ops::Collective::PointToPoint, Bytes(1e8), {2, 2});
  const Seconds slow =
      collective_time(net, ops::Collective::PointToPoint, Bytes(1e8), {2, 1});
  EXPECT_LT(fast.value(), slow.value());
  EXPECT_DOUBLE_EQ(fast.value(), 2.5e-6 + 1e8 / (0.7 * 900e9));
  EXPECT_DOUBLE_EQ(slow.value(), 5e-6 + 1e8 / (0.7 * 100e9));
}

TEST(CollectiveTime, RejectsNegativeBytes) {
  EXPECT_THROW(
      collective_time(b200_net(), ops::Collective::AllGather, Bytes(-1.0),
                      {8, 8}),
      std::invalid_argument);
}

// ---- Property suite: monotonicity of the model over the design space ----

class CollectiveProperty
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(CollectiveProperty, MoreNvsNeverHurts) {
  const auto [size, nvs] = GetParam();
  if (nvs * 2 > size) GTEST_SKIP();
  const auto net = b200_net();
  const double t1 =
      collective_time(net, ops::Collective::AllGather, Bytes(1e9), {size, nvs})
          .value();
  const double t2 = collective_time(net, ops::Collective::AllGather, Bytes(1e9),
                                    {size, nvs * 2})
                        .value();
  EXPECT_LE(t2, t1 * (1.0 + 1e-12));
}

TEST_P(CollectiveProperty, TimeIncreasesWithVolume) {
  const auto [size, nvs] = GetParam();
  const auto net = b200_net();
  const GroupPlacement g{size, nvs};
  double prev = 0;
  for (double v = 1e6; v <= 1e10; v *= 10) {
    const double t =
        collective_time(net, ops::Collective::AllGather, Bytes(v), g).value();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST_P(CollectiveProperty, LatencyFloorRespected) {
  const auto [size, nvs] = GetParam();
  const auto net = b200_net();
  const GroupPlacement g{size, nvs};
  const double t =
      collective_time(net, ops::Collective::AllGather, Bytes(1.0), g).value();
  EXPECT_GE(t, ring_latency(net, g).value());
}

INSTANTIATE_TEST_SUITE_P(
    GroupShapes, CollectiveProperty,
    ::testing::Values(std::make_tuple(4, 1), std::make_tuple(8, 2),
                      std::make_tuple(8, 8), std::make_tuple(32, 4),
                      std::make_tuple(64, 8), std::make_tuple(256, 8),
                      std::make_tuple(1024, 64)));

}  // namespace
}  // namespace tfpe::comm
