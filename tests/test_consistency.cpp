// Cross-layer consistency passes: mutation tests proving every BATCH / SYS
// / PLACE / SWEEP rule fires on exactly the corruption it guards against,
// and stays silent on clean artifacts.
#include "analysis/consistency.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "comm/collective_algorithm.hpp"
#include "core/batched_signature.hpp"
#include "core/cost_signature.hpp"
#include "hw/system.hpp"
#include "model/transformer.hpp"
#include "search/search_cache.hpp"
#include "search/sweep_lint.hpp"

namespace tfpe {
namespace {

using analysis::LintReport;
using analysis::RuleId;
using analysis::Severity;

parallel::ParallelConfig summa_cfg() {
  parallel::ParallelConfig cfg;
  cfg.strategy = parallel::TpStrategy::Summa2D;
  cfg.n1 = 4;
  cfg.n2 = 4;
  cfg.nb = 4;
  return cfg;
}

struct Compiled {
  model::TransformerConfig mdl = model::gpt3_1t();
  parallel::ParallelConfig cfg = summa_cfg();
  core::CostSignature sig;
  core::BatchedSignature bat;

  Compiled() {
    sig = core::compile_signature(mdl, cfg, /*global_batch=*/2);
    bat = core::lower_batched(sig);
  }
};

/// Every diagnostic in `report` has rule `id`, and at least one fired.
void expect_only(const LintReport& report, RuleId id, const char* label) {
  EXPECT_FALSE(report.clean()) << label << ": corruption went undetected";
  for (const auto& d : report.diagnostics) {
    EXPECT_EQ(d.id, id) << label << " also fired " << d.code() << ": "
                        << d.message;
  }
}

// ------------------------------------------------------------ TFPE-BATCH

TEST(LintBatched, CleanLoweringFiresNothing) {
  const Compiled c;
  EXPECT_TRUE(analysis::lint_batched(c.sig, c.bat).clean());
}

TEST(LintBatched, DroppedArraySlotFiresBatchedShape) {
  Compiled c;
  c.bat.fwd_flops.pop_back();
  expect_only(analysis::lint_batched(c.sig, c.bat), RuleId::kBatchedShape,
              "pop fwd_flops");
}

TEST(LintBatched, CorruptedOperandFiresBatchedShape) {
  Compiled c;
  ASSERT_FALSE(c.bat.bwd_bytes.empty());
  c.bat.bwd_bytes[0] = c.bat.bwd_bytes[0] + Bytes(1.0);
  expect_only(analysis::lint_batched(c.sig, c.bat), RuleId::kBatchedShape,
              "bwd_bytes[0] += 1");
}

TEST(LintBatched, ScaledPanelVolumeFiresBatchedPanelScale) {
  Compiled c;
  // Pick a request that is the sole member of its pricing row, so the
  // corruption cannot also desynchronize a row-mate from its representative
  // (which would correctly fire batched-price-row as well).
  std::vector<int> members(c.bat.price_rep.size(), 0);
  for (std::uint32_t row : c.bat.comm_price_row) ++members[row];
  std::size_t victim = c.bat.comm_price_row.size();
  for (std::size_t r = 0; r < c.bat.comm_price_row.size(); ++r) {
    if (members[c.bat.comm_price_row[r]] == 1) {
      victim = r;
      break;
    }
  }
  ASSERT_LT(victim, c.bat.comm_price_row.size())
      << "fixture has no singleton pricing row";
  c.bat.comm_panel_bytes[victim] = c.bat.comm_panel_bytes[victim] * 2.0;
  expect_only(analysis::lint_batched(c.sig, c.bat),
              RuleId::kBatchedPanelScale, "comm_panel_bytes[victim] *= 2");
}

TEST(LintBatched, RemappedRequestFiresBatchedPriceRow) {
  Compiled c;
  ASSERT_GE(c.bat.price_rep.size(), 2u) << "fixture has a single pricing row";
  // Remap request price_rep[0] (row 0's representative) onto row 1: the
  // representative no longer maps back to its own row, and the request's
  // triple disagrees with row 1's representative.
  c.bat.comm_price_row[c.bat.price_rep[0]] = 1;
  expect_only(analysis::lint_batched(c.sig, c.bat), RuleId::kBatchedPriceRow,
              "comm_price_row[rep0] = 1");
}

TEST(LintBatched, ClearedMaskBitFiresBatchedGroupMask) {
  Compiled c;
  ASSERT_NE(c.bat.comm_groups_mask, 0);
  // Clear the lowest set bit: that group still appears in the pool.
  c.bat.comm_groups_mask &= static_cast<std::uint8_t>(
      c.bat.comm_groups_mask - 1);
  expect_only(analysis::lint_batched(c.sig, c.bat), RuleId::kBatchedGroupMask,
              "clear mask bit");
}

TEST(LintBatched, ExtraSummaOpFiresBatchedSummaOps) {
  Compiled c;
  ASSERT_FALSE(c.bat.summa_ops.empty()) << "SUMMA fixture has no panel ops";
  c.bat.summa_ops.push_back(c.bat.summa_ops.back());
  expect_only(analysis::lint_batched(c.sig, c.bat), RuleId::kBatchedSummaOps,
              "duplicate summa op");
}

TEST(LintBatched, AssertHookThrowsOnCorruptionOnly) {
  Compiled c;
  EXPECT_NO_THROW(analysis::assert_batched_invariants(c.sig, c.bat));
  c.bat.panels.back() += 1;
  EXPECT_THROW(analysis::assert_batched_invariants(c.sig, c.bat),
               std::logic_error);
}

// ------------------------------------------------- TFPE-BATCH-006 scratch

struct TimedBatch : Compiled {
  hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8, 16);
  core::BatchScratch scratch;
  std::vector<std::array<std::int64_t, 4>> placements = {
      {1, 1, 1, 1}, {2, 2, 1, 1}, {4, 4, 1, 1}};

  TimedBatch() {
    const core::SystemTiming base = core::bind_system(sig, sys);
    std::vector<core::PlacementTiming> out;
    core::time_placements_batch(sig, bat, base, sys, cfg, placements, {}, out,
                                &scratch);
  }
};

TEST(LintBatchScratch, PopulatedScratchIsClean) {
  const TimedBatch t;
  EXPECT_TRUE(
      analysis::lint_batch_scratch(t.bat, t.scratch, t.placements.size())
          .clean());
}

TEST(LintBatchScratch, BrokenPrefixSumFiresBatchedScratchShape) {
  TimedBatch t;
  ASSERT_GE(t.scratch.row_offset.size(), 2u);
  t.scratch.row_offset[1] += 1;
  expect_only(
      analysis::lint_batch_scratch(t.bat, t.scratch, t.placements.size()),
      RuleId::kBatchedScratchShape, "row_offset[1] += 1");
}

TEST(LintBatchScratch, TruncatedColumnMapFiresBatchedScratchShape) {
  TimedBatch t;
  ASSERT_FALSE(t.scratch.nvs_column[0].empty());
  t.scratch.nvs_column[0].pop_back();
  expect_only(
      analysis::lint_batch_scratch(t.bat, t.scratch, t.placements.size()),
      RuleId::kBatchedScratchShape, "pop nvs_column[0]");
}

// -------------------------------------------------------------- TFPE-SYS

TEST(LintSystem, CanonicalSystemIsClean) {
  EXPECT_TRUE(
      analysis::lint_system(hw::make_system(hw::GpuGeneration::B200, 8, 64))
          .clean());
}

TEST(LintSystem, ZeroTensorRateFiresSystemCompute) {
  auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 64);
  sys.gpu.tensor_flops = FlopsPerSec(0);
  expect_only(analysis::lint_system(sys), RuleId::kSystemCompute,
              "tensor_flops = 0");
}

TEST(LintSystem, EfficiencyAboveOneFiresSystemNetwork) {
  auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 64);
  sys.net.efficiency = 1.5;
  expect_only(analysis::lint_system(sys), RuleId::kSystemNetwork,
              "efficiency = 1.5");
}

TEST(LintSystem, DeadHostLinkFiresSystemDomain) {
  auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 64);
  sys.host_bandwidth = BytesPerSec(0);
  expect_only(analysis::lint_system(sys), RuleId::kSystemDomain,
              "host_bandwidth = 0");
}

TEST(LintSystem, NonDividingDomainFiresSystemDomain) {
  auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 64);
  sys.nvs_domain = 3;
  // The resolved fabric inherits the bad domain, so the merged topology
  // lint may add its own (correct) findings; the domain rule must be among
  // them.
  const LintReport report = analysis::lint_system(sys);
  bool fired = false;
  for (const auto& d : report.diagnostics) {
    fired |= d.id == RuleId::kSystemDomain;
  }
  EXPECT_TRUE(fired) << report.summary();
}

TEST(LintSystem, StaticResidencyOverflowFiresSystemHbmFloor) {
  const Compiled c;
  // gpt3-1t on 16 GPUs: the static residency alone is hundreds of GB per
  // GPU — far over any real HBM, detectable before any bind.
  auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 16);
  expect_only(analysis::lint_system(sys, c.sig), RuleId::kSystemHbmFloor,
              "1T params on 16 GPUs");
  // With enough (hypothetical) capacity the same signature is clean.
  sys.gpu.hbm_capacity = Bytes(1e15);
  EXPECT_TRUE(analysis::lint_system(sys, c.sig).clean());
}

// ------------------------------------------------------------ TFPE-PLACE

TEST(LintPlacement, LeafFanInBoundsNvs) {
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 64);
  const hw::Topology fab = sys.resolved_fabric();
  ASSERT_EQ(fab.leaf_fan_in(), 8);
  EXPECT_TRUE(analysis::lint_placement(fab, {16, 8}).clean());
  const LintReport report = analysis::lint_placement(fab, {16, 16});
  expect_only(report, RuleId::kPlacementLeafFanIn, "nvs 16 on leaf 8");
}

TEST(LintPlacement, CommLayerRejectsOverfilledLeaf) {
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 64);
  const hw::Topology fab = sys.resolved_fabric();
  // Valid divisor, but the fast domain cannot realize it: the validating
  // adapter must reject, exactly like the analysis rule.
  EXPECT_TRUE(comm::invalid_placement_reason(fab, {16, 16}).has_value());
  EXPECT_FALSE(comm::invalid_placement_reason(fab, {16, 8}).has_value());
  EXPECT_THROW(
      comm::collective_time(fab, ops::Collective::AllReduce, Bytes(1e6),
                            comm::GroupPlacement{16, 16}),
      std::invalid_argument);
}

// ------------------------------------------------------------ TFPE-SWEEP

TEST(LintSweepPlan, CleanPlanFiresNothing) {
  const std::vector<hw::SystemConfig> points = {
      hw::make_system(hw::GpuGeneration::B200, 8, 64)};
  EXPECT_TRUE(analysis::lint_system(points[0]).clean());
  EXPECT_TRUE(search::lint_sweep_plan(model::gpt3_1t(), points,
                                      search::SweepOptions{})
                  .clean());
}

TEST(LintSweepPlan, RejectedEngineKnobsFireSweepOptions) {
  search::SweepOptions opts;
  opts.search.top_k = 3;
  const std::vector<hw::SystemConfig> points = {
      hw::make_system(hw::GpuGeneration::B200, 8, 64)};
  expect_only(search::lint_sweep_plan(model::gpt3_1t(), points, opts),
              RuleId::kSweepOptions, "top_k = 3");
}

TEST(LintSweepPlan, PlacementDependentKeyFiresSweepCacheKey) {
  // A signature key that leaks nvs1 is not placement-invariant: the sweep
  // would compile one signature per placement and the cache would thrash —
  // or worse, serve stale artifacts. The behavioral probe must catch it.
  search::SweepLintHooks hooks;
  hooks.signature_key = [](const parallel::ParallelConfig& cfg) {
    search::SignatureKey key = search::signature_key(cfg);
    key.m = cfg.nvs1;  // leak a placement field into the key
    return key;
  };
  const std::vector<hw::SystemConfig> points = {
      hw::make_system(hw::GpuGeneration::B200, 8, 64)};
  expect_only(search::lint_sweep_plan(model::gpt3_1t(), points,
                                      search::SweepOptions{}, {}, &hooks),
              RuleId::kSweepCacheKey, "key leaks nvs1");
}

TEST(LintSweepPlan, CollapsingKeyFiresSweepCacheKey) {
  // A key that ignores n1 collapses configs whose compiled signatures
  // differ — one config's signature would be served for the other.
  search::SweepLintHooks hooks;
  hooks.signature_key = [](const parallel::ParallelConfig&) {
    return search::SignatureKey{};
  };
  const std::vector<hw::SystemConfig> points = {
      hw::make_system(hw::GpuGeneration::B200, 8, 64)};
  expect_only(search::lint_sweep_plan(model::gpt3_1t(), points,
                                      search::SweepOptions{}, {}, &hooks),
              RuleId::kSweepCacheKey, "constant key");
}

TEST(LintSweepPlan, RooflineDriftWithinChainWarnsSweepWarmChain) {
  auto a = hw::make_system(hw::GpuGeneration::B200, 8, 64);
  auto b = a;
  b.gpu.hbm_bandwidth = b.gpu.hbm_bandwidth * 2.0;  // same name, same n_gpus
  const LintReport report =
      search::lint_sweep_plan(model::gpt3_1t(), {a, b},
                              search::SweepOptions{});
  expect_only(report, RuleId::kSweepWarmChain, "hbm drift in chain");
  for (const auto& d : report.diagnostics) {
    EXPECT_EQ(d.severity, Severity::kWarning) << d.message;
  }
  // Different GPU counts start different chains: no warning.
  auto c = a;
  c.n_gpus = 128;
  EXPECT_TRUE(search::lint_sweep_plan(model::gpt3_1t(), {a, c},
                                      search::SweepOptions{})
                  .clean());
}

}  // namespace
}  // namespace tfpe
