// Tests for the CLI flag parser.

#include <gtest/gtest.h>

#include "util/args.hpp"

namespace tfpe::util {
namespace {

ArgParser parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), argv);
  return ArgParser(static_cast<int>(v.size()), v.data());
}

TEST(ArgParser, SpaceSeparatedValue) {
  const auto a = parse({"--model", "gpt3-1t"});
  EXPECT_EQ(a.get_or("model", ""), "gpt3-1t");
}

TEST(ArgParser, EqualsSeparatedValue) {
  const auto a = parse({"--gpus=4096"});
  EXPECT_EQ(a.get_int_or("gpus", 0), 4096);
}

TEST(ArgParser, BooleanFlag) {
  const auto a = parse({"--ops", "--model", "x"});
  EXPECT_TRUE(a.has("ops"));
  EXPECT_FALSE(a.has("sensitivity"));
  EXPECT_EQ(a.get_or("model", ""), "x");
}

TEST(ArgParser, BooleanFollowedByFlag) {
  const auto a = parse({"--interleave", "--zero3"});
  EXPECT_TRUE(a.has("interleave"));
  EXPECT_TRUE(a.has("zero3"));
}

TEST(ArgParser, DoubleParsing) {
  const auto a = parse({"--tokens", "1e12", "--tp-overlap=0.5"});
  EXPECT_DOUBLE_EQ(a.get_double_or("tokens", 0), 1e12);
  EXPECT_DOUBLE_EQ(a.get_double_or("tp-overlap", 0), 0.5);
}

TEST(ArgParser, DefaultsApply) {
  const auto a = parse({});
  EXPECT_EQ(a.get_int_or("gpus", 1024), 1024);
  EXPECT_EQ(a.get(std::string("missing")), std::nullopt);
}

TEST(ArgParser, RejectsMalformedNumbers) {
  const auto a = parse({"--gpus", "many"});
  EXPECT_THROW(a.get_int_or("gpus", 0), std::invalid_argument);
  const auto b = parse({"--tokens", "1e12x"});
  EXPECT_THROW(b.get_double_or("tokens", 0), std::invalid_argument);
}

TEST(ArgParser, PositionalArguments) {
  const auto a = parse({"file1", "--flag", "v", "file2"});
  EXPECT_EQ(a.positional(), (std::vector<std::string>{"file1", "file2"}));
}

TEST(ArgParser, UnusedDetectsTypos) {
  const auto a = parse({"--model", "x", "--tpyo", "y"});
  (void)a.get("model");
  const auto stray = a.unused();
  ASSERT_EQ(stray.size(), 1u);
  EXPECT_EQ(stray[0], "tpyo");
}

}  // namespace
}  // namespace tfpe::util
