// Tests for the op-graph invariant analyzer (src/analysis): the clean
// preset x strategy matrix, and mutation tests that corrupt one op and
// assert the specific conservation rule fires.

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/invariants.hpp"
#include "parallel/layer_builder.hpp"

namespace tfpe::analysis {
namespace {

using parallel::ParallelConfig;
using parallel::TpStrategy;

ParallelConfig cfg_of(TpStrategy s, std::int64_t n1, std::int64_t n2,
                      std::int64_t nb = 1, bool ring = false) {
  ParallelConfig c;
  c.strategy = s;
  c.n1 = n1;
  c.n2 = n2;
  c.nb = nb;
  c.ring_attention = ring;
  return c;
}

std::size_t count_rule(const LintReport& r, const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(r.diagnostics.begin(), r.diagnostics.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

/// True when every error-severity diagnostic carries the given rule.
bool only_rule_errors(const LintReport& r, const std::string& rule) {
  return std::all_of(r.diagnostics.begin(), r.diagnostics.end(),
                     [&](const Diagnostic& d) {
                       return d.severity != Severity::kError || d.rule == rule;
                     });
}

ops::Op& op_named(parallel::LayerCost& layer, const std::string& name) {
  for (auto& op : layer.ops) {
    if (op.name == name) return op;
  }
  ADD_FAILURE() << "no op named " << name;
  return layer.ops.front();
}

// --- Clean matrix -----------------------------------------------------------

struct MatrixCase {
  model::TransformerConfig mdl;
  ParallelConfig cfg;
  std::string label;
};

std::vector<MatrixCase> clean_matrix() {
  std::vector<MatrixCase> cases;
  for (const auto& mdl : {model::gpt3_1t(), model::vit_64k()}) {
    cases.push_back({mdl, cfg_of(TpStrategy::TP1D, 8, 1), "1d"});
    cases.push_back({mdl, cfg_of(TpStrategy::TP2D, 8, 2), "2d"});
    cases.push_back({mdl, cfg_of(TpStrategy::Summa2D, 4, 4, 4), "summa"});
    cases.push_back({mdl, cfg_of(TpStrategy::TP2D, 8, 2, 1, true), "2d+ring"});
  }
  cases.push_back({model::gpt_moe_1t(), cfg_of(TpStrategy::TP1D, 8, 1), "1d"});
  cases.push_back({model::gpt_moe_1t(), cfg_of(TpStrategy::TP2D, 8, 2), "2d"});
  return cases;
}

TEST(Analyzer, PresetStrategyMatrixLintsClean) {
  for (const auto& c : clean_matrix()) {
    const LintReport r = lint_config(c.mdl, c.cfg, 2);
    EXPECT_EQ(r.errors(), 0u)
        << c.mdl.name << " x " << c.label << "\n" << r.summary();
  }
}

TEST(Analyzer, CleanReportHasEmptySummaryCounts) {
  const LintReport r =
      lint_config(model::gpt3_1t(), cfg_of(TpStrategy::TP1D, 8, 1), 2);
  EXPECT_TRUE(r.clean()) << r.summary();
  EXPECT_EQ(r.warnings(), 0u);
  EXPECT_NE(r.summary().find("0 error(s)"), std::string::npos);
}

TEST(Analyzer, AssertHookAcceptsValidLayer) {
  const auto mdl = model::vit_64k();
  const auto cfg = cfg_of(TpStrategy::TP2D, 8, 2);
  const auto layer = parallel::build_layer(mdl, cfg, 2);
  EXPECT_NO_THROW(assert_layer_invariants(mdl, cfg, 2, layer));
}

// --- Mutation tests: corrupt one op, the matching rule (and only an
// error of that rule) fires. -------------------------------------------------

TEST(AnalyzerMutation, DoubledCollectiveVolumeFiresCollectiveVolume) {
  const auto mdl = model::gpt3_1t();
  const auto cfg = cfg_of(TpStrategy::TP1D, 8, 1);
  auto layer = parallel::build_layer(mdl, cfg, 2);
  // Doubling fwd AND bwd keeps the conjugacy rule satisfied, so only the
  // re-derived Table I volume can catch it.
  auto& op = op_named(layer, "out_proj");
  ASSERT_FALSE(op.fwd_comm.empty());
  op.fwd_comm[0].bytes = op.fwd_comm[0].bytes * 2.0;
  op.bwd_comm[0].bytes = op.bwd_comm[0].bytes * 2.0;
  const LintReport r = lint_layer(mdl, cfg, 2, layer);
  EXPECT_EQ(count_rule(r, "collective-volume"), 1u) << r.summary();
  EXPECT_TRUE(only_rule_errors(r, "collective-volume")) << r.summary();
}

TEST(AnalyzerMutation, DroppedActivationTermFiresActivationRules) {
  const auto mdl = model::gpt3_1t();
  const auto cfg = cfg_of(TpStrategy::TP1D, 8, 1);
  auto layer = parallel::build_layer(mdl, cfg, 2);
  auto& op = op_named(layer, "qkv_proj");
  ASSERT_GT(op.stored_bytes.value(), 0.0);
  op.stored_bytes = Bytes(0.0);
  const LintReport r = lint_layer(mdl, cfg, 2, layer);
  EXPECT_EQ(count_rule(r, "activation-term"), 1u) << r.summary();
  // The block total no longer partitions either — the aggregate rule is the
  // only legitimate companion diagnostic.
  EXPECT_EQ(count_rule(r, "activation-sum"), 1u) << r.summary();
  EXPECT_EQ(r.errors(), 2u) << r.summary();
  for (const auto& d : r.diagnostics) {
    if (d.rule == "activation-term") EXPECT_EQ(d.op, "qkv_proj");
  }
}

TEST(AnalyzerMutation, MismatchedShapesFireShapeChain) {
  const auto mdl = model::gpt3_1t();
  const auto cfg = cfg_of(TpStrategy::TP1D, 8, 1);
  auto layer = parallel::build_layer(mdl, cfg, 2);
  auto& op = op_named(layer, "gelu");
  ASSERT_GT(op.in_elems, 0.0);
  op.in_elems *= 3.0;
  op.out_elems *= 3.0;
  const LintReport r = lint_layer(mdl, cfg, 2, layer);
  // Both chain links around gelu break: fc1 -> gelu and gelu -> fc2.
  EXPECT_EQ(count_rule(r, "shape-chain"), 2u) << r.summary();
  EXPECT_TRUE(only_rule_errors(r, "shape-chain")) << r.summary();
}

TEST(AnalyzerMutation, DoubledFlopsFireFlopInvariance) {
  const auto mdl = model::gpt3_1t();
  const auto cfg = cfg_of(TpStrategy::TP2D, 8, 2);
  auto layer = parallel::build_layer(mdl, cfg, 2);
  auto& op = op_named(layer, "attention");
  // Doubling fwd AND bwd keeps their ratio inside the heuristic band; only
  // the conservation law against the serial baseline can catch it.
  op.fwd_flops = op.fwd_flops * 2.0;
  op.bwd_flops = op.bwd_flops * 2.0;
  const LintReport r = lint_layer(mdl, cfg, 2, layer);
  EXPECT_EQ(count_rule(r, "flop-invariance"), 2u) << r.summary();  // fwd + bwd
  EXPECT_TRUE(only_rule_errors(r, "flop-invariance")) << r.summary();
}

TEST(AnalyzerMutation, ReorderedOpsFireOpSequence) {
  const auto mdl = model::gpt3_1t();
  const auto cfg = cfg_of(TpStrategy::TP1D, 8, 1);
  auto layer = parallel::build_layer(mdl, cfg, 2);
  ASSERT_GE(layer.ops.size(), 2u);
  std::swap(layer.ops[0].name, layer.ops[1].name);
  const LintReport r = lint_layer(mdl, cfg, 2, layer);
  EXPECT_GE(count_rule(r, "op-sequence"), 1u) << r.summary();
}

TEST(AnalyzerMutation, DroppedOpFiresOpSequenceOnly) {
  const auto mdl = model::gpt3_1t();
  const auto cfg = cfg_of(TpStrategy::TP1D, 8, 1);
  auto layer = parallel::build_layer(mdl, cfg, 2);
  layer.ops.pop_back();
  const LintReport r = lint_layer(mdl, cfg, 2, layer);
  // Per-op table checks are suppressed when the sequence cannot be aligned.
  EXPECT_EQ(count_rule(r, "op-sequence"), 1u) << r.summary();
  EXPECT_EQ(count_rule(r, "activation-term"), 0u) << r.summary();
  EXPECT_EQ(count_rule(r, "collective-volume"), 0u) << r.summary();
}

TEST(AnalyzerMutation, WrongConjugateFiresFwdBwdComm) {
  const auto mdl = model::gpt3_1t();
  const auto cfg = cfg_of(TpStrategy::TP1D, 8, 1);
  auto layer = parallel::build_layer(mdl, cfg, 2);
  auto& op = op_named(layer, "ln1");
  ASSERT_FALSE(op.bwd_comm.empty());
  op.bwd_comm[0].collective = ops::Collective::AllReduce;
  const LintReport r = lint_layer(mdl, cfg, 2, layer);
  EXPECT_EQ(count_rule(r, "fwd-bwd-comm"), 1u) << r.summary();
  EXPECT_TRUE(only_rule_errors(r, "fwd-bwd-comm")) << r.summary();
}

TEST(AnalyzerMutation, WrongPpBoundaryFiresPpBoundary) {
  const auto mdl = model::gpt3_1t();
  const auto cfg = cfg_of(TpStrategy::TP1D, 8, 1);
  auto layer = parallel::build_layer(mdl, cfg, 2);
  layer.pp_boundary_bytes = layer.pp_boundary_bytes * 0.5;
  const LintReport r = lint_layer(mdl, cfg, 2, layer);
  EXPECT_EQ(count_rule(r, "pp-boundary"), 1u) << r.summary();
  EXPECT_TRUE(only_rule_errors(r, "pp-boundary")) << r.summary();
}

TEST(AnalyzerMutation, SkewedBwdFlopsWarnsOnly) {
  const auto mdl = model::gpt3_1t();
  const auto cfg = cfg_of(TpStrategy::TP1D, 8, 1);
  auto layer = parallel::build_layer(mdl, cfg, 2);
  auto& op = op_named(layer, "mlp_fc1");
  op.bwd_flops = op.fwd_flops * 10.0;  // far outside the tensor-core band
  const LintReport r = lint_layer(mdl, cfg, 2, layer);
  EXPECT_GE(count_rule(r, "fwd-bwd-flops"), 1u) << r.summary();
  for (const auto& d : r.diagnostics) {
    if (d.rule == "fwd-bwd-flops") EXPECT_EQ(d.severity, Severity::kWarning);
  }
  // flop-invariance also legitimately fires: the mutated bwd total no
  // longer matches the serial baseline.
  EXPECT_EQ(count_rule(r, "flop-invariance"), 1u) << r.summary();
}

TEST(AnalyzerMutation, AssertHookThrowsOnCorruptedLayer) {
  const auto mdl = model::gpt3_1t();
  const auto cfg = cfg_of(TpStrategy::TP1D, 8, 1);
  auto layer = parallel::build_layer(mdl, cfg, 2);
  op_named(layer, "qkv_proj").stored_bytes = Bytes(0.0);
  EXPECT_THROW(assert_layer_invariants(mdl, cfg, 2, layer), std::logic_error);
}

TEST(AnalyzerMutation, DiagnosticCarriesExpectedAndActual) {
  const auto mdl = model::gpt3_1t();
  const auto cfg = cfg_of(TpStrategy::TP1D, 8, 1);
  auto layer = parallel::build_layer(mdl, cfg, 2);
  auto& op = op_named(layer, "out_proj");
  const double want = op.fwd_comm[0].bytes.value();
  op.fwd_comm[0].bytes = op.fwd_comm[0].bytes * 2.0;
  op.bwd_comm[0].bytes = op.bwd_comm[0].bytes * 2.0;
  const LintReport r = lint_layer(mdl, cfg, 2, layer);
  ASSERT_EQ(count_rule(r, "collective-volume"), 1u);
  for (const auto& d : r.diagnostics) {
    if (d.rule != "collective-volume") continue;
    EXPECT_DOUBLE_EQ(d.expected, want);
    EXPECT_DOUBLE_EQ(d.actual, 2.0 * want);
    EXPECT_EQ(d.op, "out_proj");
    EXPECT_NE(d.message.find("out_proj"), std::string::npos);
  }
}

TEST(AnalyzerMutation, DiagnosticsCarryStableRuleIds) {
  // Every diagnostic the op-graph linter emits is tied to a registered
  // rule: the short name matches the registry row and the stable code
  // resolves back to the same rule.
  const auto mdl = model::gpt3_1t();
  const auto cfg = cfg_of(TpStrategy::TP1D, 8, 1);
  auto layer = parallel::build_layer(mdl, cfg, 2);
  op_named(layer, "out_proj").fwd_comm[0].bytes =
      op_named(layer, "out_proj").fwd_comm[0].bytes * 2.0;
  op_named(layer, "qkv_proj").stored_bytes = Bytes(0.0);
  const LintReport r = lint_layer(mdl, cfg, 2, layer);
  ASSERT_FALSE(r.clean());
  for (const auto& d : r.diagnostics) {
    const RuleInfo& info = rule_info(d.id);
    EXPECT_EQ(d.rule, info.name);
    EXPECT_EQ(d.code(), info.code);
    EXPECT_EQ(find_rule(d.code()), d.id);
  }
  // Specific anchor: collective-volume is TFPE-OP-006, fwd-bwd-comm not.
  bool saw_volume = false;
  for (const auto& d : r.diagnostics) {
    if (d.id == RuleId::kCollectiveVolume) {
      saw_volume = true;
      EXPECT_EQ(d.code(), "TFPE-OP-006");
    }
  }
  EXPECT_TRUE(saw_volume) << r.summary();
}

}  // namespace
}  // namespace tfpe::analysis
