// Two-phase evaluation: golden bitwise equivalence of
// compile_signature + bind_system + time_signature against the single-phase
// evaluate_with_layer, CostSignature invariants (analysis::lint_signature),
// cross-sweep cache behaviour, and sweep-vs-find_optimal identity.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "analysis/invariants.hpp"
#include "core/batched_signature.hpp"
#include "core/cost_signature.hpp"
#include "core/evaluator.hpp"
#include "search/search.hpp"
#include "search/search_cache.hpp"
#include "search/sweep.hpp"
#include "sim/validation.hpp"

namespace tfpe {
namespace {

hw::SystemConfig system_of(hw::GpuGeneration gen, std::int64_t nvs,
                           std::int64_t n) {
  return hw::make_system(gen, nvs, n);
}

/// Exact double-for-double comparison of two evaluation results — the
/// two-phase pipeline must reproduce the reference evaluator bitwise, not
/// approximately.
void expect_bitwise(const core::EvalResult& ref, const core::EvalResult& two,
                    const std::string& label) {
  ASSERT_EQ(ref.feasible, two.feasible) << label;
  EXPECT_EQ(ref.reason, two.reason) << label;
  EXPECT_EQ(ref.time.compute, two.time.compute) << label;
  EXPECT_EQ(ref.time.memory, two.time.memory) << label;
  EXPECT_EQ(ref.time.tp_comm, two.time.tp_comm) << label;
  EXPECT_EQ(ref.time.pp_comm, two.time.pp_comm) << label;
  EXPECT_EQ(ref.time.dp_comm, two.time.dp_comm) << label;
  EXPECT_EQ(ref.time.bubble, two.time.bubble) << label;
  EXPECT_EQ(ref.time.optimizer, two.time.optimizer) << label;
  EXPECT_EQ(ref.t_fwd_micro, two.t_fwd_micro) << label;
  EXPECT_EQ(ref.t_bwd_micro, two.t_bwd_micro) << label;
  EXPECT_EQ(ref.mem.weights.value(), two.mem.weights.value()) << label;
  EXPECT_EQ(ref.mem.gradients.value(), two.mem.gradients.value()) << label;
  EXPECT_EQ(ref.mem.optimizer.value(), two.mem.optimizer.value()) << label;
  EXPECT_EQ(ref.mem.activations.value(), two.mem.activations.value()) << label;
}

struct Case {
  model::TransformerConfig mdl;
  parallel::TpStrategy strategy;
  std::int64_t global_batch;
  std::string name;
};

std::vector<Case> preset_matrix() {
  return {
      {model::gpt3_1t(), parallel::TpStrategy::TP1D, 4096, "gpt3-1t/1d"},
      {model::gpt3_1t(), parallel::TpStrategy::Summa2D, 4096,
       "gpt3-1t/summa"},
      {model::gpt3_175b(), parallel::TpStrategy::TP1D, 1024, "gpt3-175b/1d"},
      {model::vit_64k(), parallel::TpStrategy::TP2D, 4096, "vit-64k/2d"},
  };
}

std::vector<core::EvalOptions> eval_variants() {
  core::EvalOptions overlap;
  overlap.tp_overlap = 0.6;
  core::EvalOptions offload;
  offload.activation_offload = 0.5;
  core::EvalOptions recompute;
  recompute.activation_recompute = true;
  core::EvalOptions all;
  all.tp_overlap = 0.3;
  all.activation_offload = 0.25;
  all.activation_recompute = true;
  return {core::EvalOptions{}, overlap, offload, recompute, all};
}

/// Every candidate (stride-sampled) at every placement, compared bitwise.
/// Covers the microbatch axis (enumeration expands every valid m), the
/// interleave/ZeRO/ring extension axes and both vocab and vocab-free models.
TEST(Signature, GoldenEquivalenceMatrix) {
  const auto sys = system_of(hw::GpuGeneration::B200, 8, 512);
  std::size_t compared = 0;
  for (const Case& c : preset_matrix()) {
    search::SearchOptions sopts;
    sopts.strategy = c.strategy;
    sopts.global_batch = c.global_batch;
    sopts.allow_zero3 = true;
    sopts.allow_ring_attention = true;
    sopts.interleave_candidates = {1, 2};
    const auto configs = search::expand_candidates(c.mdl, sys, sopts);
    ASSERT_FALSE(configs.empty()) << c.name;
    for (const core::EvalOptions& eval : eval_variants()) {
      for (std::size_t i = 0; i < configs.size(); i += 7) {
        parallel::ParallelConfig cfg = configs[i];
        if (cfg.invalid_reason(c.mdl, sys, c.global_batch)) continue;
        const parallel::LayerCost layer = parallel::build_layer(
            c.mdl, cfg, cfg.local_microbatch(c.global_batch));
        const core::CostSignature sig =
            core::compile_signature(c.mdl, cfg, c.global_batch, layer, eval);
        const core::SystemTiming base = core::bind_system(sig, sys, eval);
        for (const auto& pl :
             search::enumerate_placements(cfg, sys.nvs_domain)) {
          cfg.nvs1 = pl[0];
          cfg.nvs2 = pl[1];
          cfg.nvsp = pl[2];
          cfg.nvsd = pl[3];
          const core::EvalResult ref = core::evaluate_with_layer(
              c.mdl, sys, cfg, c.global_batch, layer, eval);
          const core::EvalResult two = core::time_signature(
              sig, base, c.mdl, sys, cfg, c.global_batch, eval);
          expect_bitwise(ref, two, c.name + " " + cfg.describe());
          ++compared;
        }
      }
    }
  }
  // Guard against the matrix silently collapsing to nothing.
  EXPECT_GT(compared, 500u);
}

/// The one-shot convenience overloads must agree with the staged calls.
TEST(Signature, ConvenienceOverloads) {
  const auto mdl = model::gpt3_1t();
  const auto sys = system_of(hw::GpuGeneration::A100, 8, 512);
  search::SearchOptions sopts;
  sopts.strategy = parallel::TpStrategy::TP1D;
  sopts.global_batch = 4096;
  for (auto cfg : search::expand_candidates(mdl, sys, sopts)) {
    if (cfg.invalid_reason(mdl, sys, 4096)) continue;
    search::pack_placement(cfg, sys.nvs_domain);
    const auto sig = core::compile_signature(mdl, cfg, 4096);
    const auto ref = core::evaluate(mdl, sys, cfg, 4096);
    const auto two = core::time_signature(sig, mdl, sys, cfg, 4096);
    expect_bitwise(ref, two, cfg.describe());
    break;
  }
}

/// time_placement is the inner body of time_signature: its breakdown total
/// must equal the packaged result's iteration time exactly.
TEST(Signature, PlacementTimingMatchesFullResult) {
  const auto mdl = model::gpt3_175b();
  const auto sys = system_of(hw::GpuGeneration::H200, 8, 256);
  search::SearchOptions sopts;
  sopts.strategy = parallel::TpStrategy::TP1D;
  sopts.global_batch = 512;
  std::size_t checked = 0;
  for (auto cfg : search::expand_candidates(mdl, sys, sopts)) {
    if (cfg.invalid_reason(mdl, sys, 512)) continue;
    search::pack_placement(cfg, sys.nvs_domain);
    const auto sig = core::compile_signature(mdl, cfg, 512);
    const auto base = core::bind_system(sig, sys);
    const auto pt = core::time_placement(sig, base, sys, cfg);
    const auto full = core::time_signature(sig, base, mdl, sys, cfg, 512);
    if (!full.feasible) continue;
    EXPECT_EQ(pt.time.total(), full.iteration()) << cfg.describe();
    EXPECT_EQ(pt.t_fwd_stage.value(), full.t_fwd_micro) << cfg.describe();
    EXPECT_EQ(pt.t_bwd_stage.value(), full.t_bwd_micro) << cfg.describe();
    if (++checked == 24) break;
  }
  EXPECT_GT(checked, 0u);
}

/// The simulator bridge: pipeline parameters derived from a signature must
/// carry the evaluator's stage times bitwise and drive simulate_pipeline to
/// a sane schedule (completion bounded below by the serial critical path of
/// one stage and above by the fully-serialized schedule).
TEST(Signature, PipelineParamsFeedSimulator) {
  const auto mdl = model::gpt3_175b();
  const auto sys = system_of(hw::GpuGeneration::B200, 8, 128);
  parallel::ParallelConfig cfg;
  cfg.strategy = parallel::TpStrategy::TP1D;
  cfg.n1 = 8;
  cfg.np = 8;
  cfg.nd = 2;
  cfg.microbatches = 16;
  search::pack_placement(cfg, sys.nvs_domain);
  const core::EvalResult ref = core::evaluate(mdl, sys, cfg, 256);
  ASSERT_TRUE(ref.feasible) << ref.reason;

  const auto sig = core::compile_signature(mdl, cfg, 256);
  const sim::PipelineParams params =
      sim::pipeline_params_from_signature(sys, cfg, sig);
  EXPECT_EQ(params.stages, cfg.np);
  EXPECT_EQ(params.microbatches, cfg.microbatches);
  EXPECT_EQ(params.t_fwd.value(), ref.t_fwd_micro);
  EXPECT_EQ(params.t_bwd.value(), ref.t_bwd_micro);
  EXPECT_GT(params.t_p2p.value(), 0.0);

  const sim::PipelineTrace trace = sim::simulate_pipeline(params);
  const double micro = params.t_fwd.value() + params.t_bwd.value();
  EXPECT_GE(trace.completion_time,
            micro * static_cast<double>(params.microbatches));
  EXPECT_LE(trace.completion_time,
            (micro + 2 * params.t_p2p.value()) *
                static_cast<double>(params.microbatches * params.stages));
}

/// CostSignature structural invariants via the analyzer, across strategies.
TEST(Signature, LintCleanAcrossMatrix) {
  const auto sys = system_of(hw::GpuGeneration::B200, 8, 512);
  for (const Case& c : preset_matrix()) {
    search::SearchOptions sopts;
    sopts.strategy = c.strategy;
    sopts.global_batch = c.global_batch;
    const auto configs = search::expand_candidates(c.mdl, sys, sopts);
    for (std::size_t i = 0; i < configs.size(); i += 11) {
      const parallel::ParallelConfig& cfg = configs[i];
      if (cfg.invalid_reason(c.mdl, sys, c.global_batch)) continue;
      const parallel::LayerCost layer = parallel::build_layer(
          c.mdl, cfg, cfg.local_microbatch(c.global_batch));
      const core::CostSignature sig =
          core::compile_signature(c.mdl, cfg, c.global_batch, layer);
      const auto report = analysis::lint_signature(c.mdl, cfg, sig, layer);
      EXPECT_TRUE(report.clean())
          << c.name << " " << cfg.describe() << "\n" << report.summary();
    }
  }
}

/// The lint must actually fire on a corrupted signature.
TEST(Signature, LintDetectsCorruption) {
  const auto mdl = model::gpt3_175b();
  const auto sys = system_of(hw::GpuGeneration::B200, 8, 64);
  search::SearchOptions sopts;
  sopts.strategy = parallel::TpStrategy::TP1D;
  sopts.global_batch = 256;
  for (const auto& cfg : search::expand_candidates(mdl, sys, sopts)) {
    if (cfg.invalid_reason(mdl, sys, 256)) continue;
    const parallel::LayerCost layer =
        parallel::build_layer(mdl, cfg, cfg.local_microbatch(256));
    core::CostSignature sig = core::compile_signature(mdl, cfg, 256, layer);
    sig.matmul_fwd_flops = sig.matmul_fwd_flops * 2.0;
    const auto doubled = analysis::lint_signature(mdl, cfg, sig, layer);
    EXPECT_FALSE(doubled.clean());
    sig = core::compile_signature(mdl, cfg, 256, layer);
    sig.ops.pop_back();
    const auto truncated = analysis::lint_signature(mdl, cfg, sig, layer);
    EXPECT_FALSE(truncated.clean());
    return;
  }
  FAIL() << "no valid candidate found";
}

/// The cache key deliberately excludes interleave and the NVS placement:
/// both enter only at time time, so all expansion points of one hardware-
/// free slice must share a single compiled signature.
TEST(Signature, CacheSharesAcrossInterleaveAndPlacement) {
  const auto mdl = model::gpt3_1t();
  const auto sys = system_of(hw::GpuGeneration::B200, 8, 512);
  search::SearchOptions sopts;
  sopts.strategy = parallel::TpStrategy::TP1D;
  sopts.global_batch = 4096;
  search::LayerCostCache layers;
  search::SignatureCache cache;
  for (const auto& cfg : search::expand_candidates(mdl, sys, sopts)) {
    if (cfg.invalid_reason(mdl, sys, 4096)) continue;
    if (mdl.depth / cfg.np % 2 != 0 || cfg.np <= 1) continue;
    parallel::ParallelConfig a = cfg;
    parallel::ParallelConfig b = cfg;
    b.interleave = 2;
    parallel::ParallelConfig c = cfg;
    c.nvs1 = cfg.n1 > 1 ? 2 : 1;
    const auto sa = cache.get(mdl, a, 4096, {}, layers);
    const auto sb = cache.get(mdl, b, 4096, {}, layers);
    const auto sc = cache.get(mdl, c, 4096, {}, layers);
    EXPECT_EQ(sa.get(), sb.get());
    EXPECT_EQ(sa.get(), sc.get());
    EXPECT_EQ(cache.compiles(), 1u);
    EXPECT_EQ(cache.hits(), 2u);
    return;
  }
  FAIL() << "no candidate with interleavable np found";
}

/// Concurrent gets on one shared cache: every thread must observe the same
/// compiled object, and the compile count must stay at the distinct-key
/// count. Runs under the tsan preset.
TEST(Signature, CacheIsThreadSafe) {
  const auto mdl = model::gpt3_175b();
  const auto sys = system_of(hw::GpuGeneration::B200, 8, 64);
  search::SearchOptions sopts;
  sopts.strategy = parallel::TpStrategy::TP1D;
  sopts.global_batch = 256;
  std::vector<parallel::ParallelConfig> valid;
  for (const auto& cfg : search::expand_candidates(mdl, sys, sopts)) {
    if (!cfg.invalid_reason(mdl, sys, 256)) valid.push_back(cfg);
  }
  ASSERT_GE(valid.size(), 4u);
  valid.resize(4);

  search::LayerCostCache layers;
  search::SignatureCache cache;
  std::vector<std::vector<const core::CostSignature*>> seen(4);
  std::vector<std::thread> workers;
  workers.reserve(4);
  for (std::size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int rep = 0; rep < 50; ++rep) {
        for (const auto& cfg : valid) {
          seen[t].push_back(cache.get(mdl, cfg, 256, {}, layers).get());
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(cache.compiles(), valid.size());
  EXPECT_EQ(cache.compiles() + cache.hits(), 4u * 50u * valid.size());
  for (std::size_t t = 1; t < 4; ++t) EXPECT_EQ(seen[t], seen[0]);
}

/// The sweep engine must return, at every grid point, exactly the result
/// find_optimal computes at that point — configuration, placement, time and
/// memory bits — for both engine arms and both prune settings.
/// PanelRoofline must construct with both attribution fields (and the panel
/// budget) reading exactly Seconds(0): panel_roofline assigns only the
/// dominant side, so the other is whatever construction left there.
TEST(Signature, PanelRooflineZeroInitialized) {
  const core::PanelRoofline pr;
  EXPECT_EQ(pr.compute.value(), 0.0);
  EXPECT_EQ(pr.memory.value(), 0.0);
  EXPECT_EQ(pr.t_panel.value(), 0.0);
  // And a computed roofline keeps the non-dominant side exactly zero, in
  // both dominance directions.
  const hw::GpuSpec gpu = system_of(hw::GpuGeneration::A100, 8, 8).gpu;
  const auto flop_bound =
      core::panel_roofline(Flops(1e18), Bytes(1), 1, true, gpu);
  EXPECT_GT(flop_bound.compute.value(), 0.0);
  EXPECT_EQ(flop_bound.memory.value(), 0.0);
  const auto mem_bound =
      core::panel_roofline(Flops(1), Bytes(1e12), 1, false, gpu);
  EXPECT_EQ(mem_bound.compute.value(), 0.0);
  EXPECT_GT(mem_bound.memory.value(), 0.0);
}

void expect_bind_bitwise(const core::SystemTiming& ref,
                         const core::SystemTiming& got,
                         const std::string& label) {
  EXPECT_EQ(ref.time_compute, got.time_compute) << label;
  EXPECT_EQ(ref.time_memory, got.time_memory) << label;
  EXPECT_EQ(ref.optimizer, got.optimizer) << label;
  EXPECT_EQ(ref.fwd_cm.value(), got.fwd_cm.value()) << label;
  EXPECT_EQ(ref.bwd_cm.value(), got.bwd_cm.value()) << label;
  EXPECT_EQ(ref.head_fwd_cm.value(), got.head_fwd_cm.value()) << label;
  EXPECT_EQ(ref.head_bwd_cm.value(), got.head_bwd_cm.value()) << label;
  ASSERT_EQ(ref.summa_panel_time.size(), got.summa_panel_time.size()) << label;
  for (std::size_t i = 0; i < ref.summa_panel_time.size(); ++i) {
    EXPECT_EQ(ref.summa_panel_time[i][0].value(),
              got.summa_panel_time[i][0].value())
        << label;
    EXPECT_EQ(ref.summa_panel_time[i][1].value(),
              got.summa_panel_time[i][1].value())
        << label;
  }
}

void expect_pt_bitwise(const core::PlacementTiming& ref,
                       const core::PlacementTiming& got,
                       const std::string& label) {
  EXPECT_EQ(ref.time.compute, got.time.compute) << label;
  EXPECT_EQ(ref.time.memory, got.time.memory) << label;
  EXPECT_EQ(ref.time.tp_comm, got.time.tp_comm) << label;
  EXPECT_EQ(ref.time.pp_comm, got.time.pp_comm) << label;
  EXPECT_EQ(ref.time.dp_comm, got.time.dp_comm) << label;
  EXPECT_EQ(ref.time.bubble, got.time.bubble) << label;
  EXPECT_EQ(ref.time.optimizer, got.time.optimizer) << label;
  EXPECT_EQ(ref.t_fwd_stage.value(), got.t_fwd_stage.value()) << label;
  EXPECT_EQ(ref.t_bwd_stage.value(), got.t_bwd_stage.value()) << label;
}

/// The SoA bind must reproduce the scalar bind_system bitwise, both the
/// one-system entry point and the M-system batch, across the preset matrix.
TEST(Signature, BatchedBindMatchesScalar) {
  const std::vector<hw::SystemConfig> systems = {
      system_of(hw::GpuGeneration::A100, 4, 512),
      system_of(hw::GpuGeneration::B200, 8, 512)};
  std::size_t compared = 0;
  for (const Case& c : preset_matrix()) {
    search::SearchOptions sopts;
    sopts.strategy = c.strategy;
    sopts.global_batch = c.global_batch;
    const auto configs = search::expand_candidates(c.mdl, systems[0], sopts);
    for (std::size_t i = 0; i < configs.size(); i += 11) {
      const parallel::ParallelConfig& cfg = configs[i];
      if (cfg.invalid_reason(c.mdl, systems[0], c.global_batch)) continue;
      const core::CostSignature sig =
          core::compile_signature(c.mdl, cfg, c.global_batch);
      const core::BatchedSignature bat = core::lower_batched(sig);
      ASSERT_EQ(bat.op_count(), sig.ops.size()) << c.name;
      ASSERT_EQ(bat.comm_count(), sig.comm.size()) << c.name;
      const auto multi = core::bind_systems_batch(sig, bat, systems);
      ASSERT_EQ(multi.size(), systems.size());
      for (std::size_t k = 0; k < systems.size(); ++k) {
        const std::string label = c.name + " " + cfg.describe();
        const core::SystemTiming ref = core::bind_system(sig, systems[k]);
        expect_bind_bitwise(ref, core::bind_system_batched(sig, bat, systems[k]),
                            label);
        expect_bind_bitwise(ref, multi[k], label + " [multi]");
      }
      ++compared;
    }
  }
  EXPECT_GT(compared, 8u);
}

/// Randomized property (fixed seed): time_placements_batch over a full
/// enumerated placement set must equal the scalar time_placement call per
/// placement, bit for bit, across random candidates, systems and
/// EvalOptions variants — the batched twin of GoldenEquivalenceMatrix.
TEST(Signature, BatchedTimingMatchesScalarRandomized) {
  std::mt19937 rng(0x5157eeu);
  const auto variants = eval_variants();
  const std::vector<hw::SystemConfig> systems = {
      system_of(hw::GpuGeneration::A100, 4, 256),
      system_of(hw::GpuGeneration::H200, 8, 256),
      system_of(hw::GpuGeneration::B200, 16, 256)};
  core::BatchScratch scratch;
  std::vector<core::PlacementTiming> batched;
  std::size_t compared = 0;
  for (const Case& c : preset_matrix()) {
    search::SearchOptions sopts;
    sopts.strategy = c.strategy;
    sopts.global_batch = c.global_batch;
    sopts.allow_zero3 = true;
    sopts.interleave_candidates = {1, 2};
    const auto configs = search::expand_candidates(c.mdl, systems[0], sopts);
    ASSERT_FALSE(configs.empty()) << c.name;
    std::uniform_int_distribution<std::size_t> pick_cfg(0, configs.size() - 1);
    std::uniform_int_distribution<std::size_t> pick_sys(0, systems.size() - 1);
    std::uniform_int_distribution<std::size_t> pick_eval(0,
                                                         variants.size() - 1);
    for (int draw = 0; draw < 16; ++draw) {
      parallel::ParallelConfig cfg = configs[pick_cfg(rng)];
      const hw::SystemConfig& sys = systems[pick_sys(rng)];
      const core::EvalOptions& eval = variants[pick_eval(rng)];
      if (cfg.invalid_reason(c.mdl, sys, c.global_batch)) continue;
      const core::CostSignature sig =
          core::compile_signature(c.mdl, cfg, c.global_batch, eval);
      const core::BatchedSignature bat = core::lower_batched(sig);
      const core::SystemTiming base = core::bind_system(sig, sys, eval);
      const auto placements =
          search::enumerate_placements(cfg, sys.nvs_domain);
      if (placements.empty()) continue;
      core::time_placements_batch(sig, bat, base, sys, cfg, placements, eval,
                                  batched, &scratch);
      ASSERT_EQ(batched.size(), placements.size());
      for (std::size_t p = 0; p < placements.size(); ++p) {
        cfg.nvs1 = placements[p][0];
        cfg.nvs2 = placements[p][1];
        cfg.nvsp = placements[p][2];
        cfg.nvsd = placements[p][3];
        const core::PlacementTiming ref =
            core::time_placement(sig, base, sys, cfg, eval);
        expect_pt_bitwise(ref, batched[p],
                          c.name + " " + cfg.describe() + " placement " +
                              std::to_string(p));
        ++compared;
      }
    }
  }
  EXPECT_GT(compared, 200u);
}

/// The N placements x M systems composition must match the nested scalar
/// loops (bind per system, then time per placement).
TEST(Signature, BatchedSystemsGridMatchesScalar) {
  const auto mdl = model::gpt3_175b();
  const std::vector<hw::SystemConfig> systems = {
      system_of(hw::GpuGeneration::A100, 8, 256),
      system_of(hw::GpuGeneration::H200, 8, 256),
      system_of(hw::GpuGeneration::B200, 8, 256)};
  search::SearchOptions sopts;
  sopts.strategy = parallel::TpStrategy::TP1D;
  sopts.global_batch = 512;
  std::size_t checked = 0;
  for (parallel::ParallelConfig cfg :
       search::expand_candidates(mdl, systems[0], sopts)) {
    if (cfg.invalid_reason(mdl, systems[0], 512)) continue;
    const core::CostSignature sig = core::compile_signature(mdl, cfg, 512);
    const core::BatchedSignature bat = core::lower_batched(sig);
    const auto placements =
        search::enumerate_placements(cfg, systems[0].nvs_domain);
    if (placements.empty()) continue;
    const auto grid =
        core::time_placements_systems_batch(sig, bat, systems, cfg, placements);
    ASSERT_EQ(grid.size(), systems.size());
    for (std::size_t k = 0; k < systems.size(); ++k) {
      ASSERT_EQ(grid[k].size(), placements.size());
      const core::SystemTiming base = core::bind_system(sig, systems[k]);
      for (std::size_t p = 0; p < placements.size(); ++p) {
        cfg.nvs1 = placements[p][0];
        cfg.nvs2 = placements[p][1];
        cfg.nvsp = placements[p][2];
        cfg.nvsd = placements[p][3];
        expect_pt_bitwise(core::time_placement(sig, base, systems[k], cfg),
                          grid[k][p], cfg.describe());
        ++checked;
      }
    }
    if (checked >= 64) break;
  }
  EXPECT_GT(checked, 0u);
}

/// Randomized property (fixed seed): FabricPricer::place/place_ref/price
/// must reproduce the full collective_time walk bitwise across random
/// fabrics (two-level, oversubscribed leaf/spine, rail-optimized), algorithm
/// knob combinations, group placements, collectives and volumes — the
/// contract the batch kernel's pricing rows stand on. Also pins place_ref's
/// stable-reference guarantee: memo entries keep their address and bits as
/// later placements are interned.
TEST(Signature, FabricPricerMatchesCollectiveTimeFuzz) {
  std::mt19937 rng(0xfab41cu);
  std::vector<hw::Topology> fabrics;
  for (hw::GpuGeneration gen :
       {hw::GpuGeneration::A100, hw::GpuGeneration::H200,
        hw::GpuGeneration::B200}) {
    const hw::NetworkSpec net = hw::network_preset(gen);
    fabrics.push_back(hw::two_level_topology(net, 8, 4096));
    fabrics.push_back(hw::leaf_spine_topology(net, 8, 32, 4096, 4.0));
    fabrics.push_back(hw::rail_optimized_topology(net, 16, 64, 4096));
  }
  const std::vector<ops::Collective> colls = {
      ops::Collective::AllGather, ops::Collective::ReduceScatter,
      ops::Collective::AllReduce, ops::Collective::Broadcast,
      ops::Collective::Reduce,    ops::Collective::AllToAll,
      ops::Collective::PointToPoint};
  const std::vector<std::int64_t> sizes = {1, 2, 4, 8, 16, 64, 256, 4096};
  std::uniform_int_distribution<std::size_t> pick_coll(0, colls.size() - 1);
  std::uniform_int_distribution<std::size_t> pick_size(0, sizes.size() - 1);
  std::uniform_real_distribution<double> pick_log_bytes(0.0, 9.0);
  std::size_t compared = 0;
  for (hw::Topology topo : fabrics) {
    for (int knobs = 0; knobs < 4; ++knobs) {
      topo.enable_tree = (knobs & 1) != 0;
      topo.enable_ll = (knobs & 1) != 0;
      topo.enable_hierarchical = (knobs & 2) != 0;
      const comm::FabricPricer pricer(topo);
      for (int draw = 0; draw < 64; ++draw) {
        const std::int64_t size = sizes[pick_size(rng)];
        std::vector<std::int64_t> divisors;
        for (std::int64_t d = 1; d <= size; ++d) {
          if (size % d == 0 && d <= topo.leaf_fan_in()) divisors.push_back(d);
        }
        std::uniform_int_distribution<std::size_t> pick_nvs(
            0, divisors.size() - 1);
        const comm::GroupPlacement g{size, divisors[pick_nvs(rng)]};
        if (comm::invalid_placement_reason(topo, g)) continue;
        const Bytes bytes(std::pow(10.0, pick_log_bytes(rng)));
        ops::Collective coll = colls[pick_coll(rng)];
        if (coll == ops::Collective::PointToPoint && g.size != 2) {
          coll = ops::Collective::AllReduce;
        }
        const double want = comm::collective_time(topo, coll, bytes, g).value();
        const comm::FabricPricer::Placed pl = pricer.place(g);
        const comm::FabricPricer::Placed& ref = pricer.place_ref(g);
        EXPECT_EQ(pricer.price(coll, bytes, pl).value(), want)
            << topo.describe() << " knobs=" << knobs << " g=" << g.size << "/"
            << g.nvs << " coll=" << static_cast<int>(coll);
        EXPECT_EQ(pricer.price(coll, bytes, ref).value(), want)
            << topo.describe() << " [place_ref]";
        ++compared;
      }
      // Stable references: interning more placements must not move or
      // change the bits of an entry handed out earlier.
      const comm::FabricPricer::Placed& first =
          pricer.place_ref(comm::GroupPlacement{8, 8});
      const double lat0 = first.ring_lat.value();
      for (std::int64_t s : sizes) {
        pricer.place_ref(comm::GroupPlacement{s, 1});
      }
      EXPECT_EQ(&first, &pricer.place_ref(comm::GroupPlacement{8, 8}));
      EXPECT_EQ(first.ring_lat.value(), lat0);
    }
  }
  EXPECT_GT(compared, 500u);
}

/// Randomized property (fixed seed): the generation-major kernel path — a
/// capture_fabric=false bind plus an external FabricPricer bound to the
/// point's resolved fabric — must equal the scalar time_placement walk
/// bitwise across random candidates, systems and EvalOptions. This is the
/// exact configuration the sweep chain runs (point_scan.cpp), where
/// base.fabric is never populated and every collective prices through the
/// chain's pricer.
TEST(Signature, BatchedExternalPricerMatchesScalarFuzz) {
  std::mt19937 rng(0x9e4e7au);
  const auto variants = eval_variants();
  const std::vector<hw::SystemConfig> systems = {
      system_of(hw::GpuGeneration::A100, 4, 256),
      system_of(hw::GpuGeneration::H200, 8, 256),
      system_of(hw::GpuGeneration::B200, 16, 256)};
  core::BatchScratch scratch;
  comm::FabricPricer pricer;
  std::vector<core::PlacementTiming> batched;
  std::size_t compared = 0;
  for (const Case& c : preset_matrix()) {
    search::SearchOptions sopts;
    sopts.strategy = c.strategy;
    sopts.global_batch = c.global_batch;
    sopts.allow_zero3 = true;
    sopts.interleave_candidates = {1, 2};
    const auto configs = search::expand_candidates(c.mdl, systems[0], sopts);
    ASSERT_FALSE(configs.empty()) << c.name;
    std::uniform_int_distribution<std::size_t> pick_cfg(0, configs.size() - 1);
    std::uniform_int_distribution<std::size_t> pick_sys(0, systems.size() - 1);
    std::uniform_int_distribution<std::size_t> pick_eval(0,
                                                         variants.size() - 1);
    for (int draw = 0; draw < 12; ++draw) {
      parallel::ParallelConfig cfg = configs[pick_cfg(rng)];
      const hw::SystemConfig& sys = systems[pick_sys(rng)];
      const core::EvalOptions& eval = variants[pick_eval(rng)];
      if (cfg.invalid_reason(c.mdl, sys, c.global_batch)) continue;
      const core::CostSignature sig =
          core::compile_signature(c.mdl, cfg, c.global_batch, eval);
      const core::BatchedSignature bat = core::lower_batched(sig);
      // The chain configuration: fabric held by the caller, pricer rebound
      // to it, bind skips the SystemTiming::fabric copy entirely.
      const hw::Topology fabric = sys.resolved_fabric();
      pricer.rebind(fabric);
      const core::SystemTiming base = core::bind_system_batched(
          sig, bat, sys, eval, /*capture_fabric=*/false);
      const auto placements = search::enumerate_placements(cfg, sys.nvs_domain);
      if (placements.empty()) continue;
      core::time_placements_batch(sig, bat, base, sys, cfg, placements, eval,
                                  batched, &scratch, &pricer);
      ASSERT_EQ(batched.size(), placements.size());
      const core::SystemTiming full = core::bind_system(sig, sys, eval);
      for (std::size_t p = 0; p < placements.size(); ++p) {
        cfg.nvs1 = placements[p][0];
        cfg.nvs2 = placements[p][1];
        cfg.nvsp = placements[p][2];
        cfg.nvsd = placements[p][3];
        const core::PlacementTiming ref =
            core::time_placement(sig, full, sys, cfg, eval);
        expect_pt_bitwise(ref, batched[p],
                          c.name + " " + cfg.describe() + " placement " +
                              std::to_string(p));
        ++compared;
      }
    }
  }
  EXPECT_GT(compared, 200u);
}

TEST(Sweep, MatchesFindOptimalPerPoint) {
  const auto mdl = model::gpt3_175b();
  const auto points = search::hardware_grid(
      {hw::GpuGeneration::A100, hw::GpuGeneration::B200}, {4, 16}, 256);
  ASSERT_EQ(points.size(), 4u);
  for (bool prune : {false, true}) {
    search::SweepOptions opts;
    opts.search.strategy = parallel::TpStrategy::TP1D;
    opts.search.global_batch = 1024;
    opts.search.prune = prune;
    opts.threads = 2;
    const auto swept = search::run_sweep(mdl, points, opts);
    search::SweepOptions legacy = opts;
    legacy.use_signatures = false;
    const auto ref = search::run_sweep(mdl, points, legacy);
    ASSERT_EQ(swept.best.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      search::SearchOptions po = opts.search;
      const auto direct = search::find_optimal(mdl, points[i], po);
      ASSERT_EQ(swept.best[i].feasible, direct.best.feasible) << i;
      ASSERT_EQ(ref.best[i].feasible, direct.best.feasible) << i;
      if (!direct.best.feasible) continue;
      EXPECT_EQ(swept.best[i].cfg.describe(), direct.best.cfg.describe());
      EXPECT_EQ(swept.best[i].iteration(), direct.best.iteration());
      EXPECT_EQ(swept.best[i].mem.total().value(),
                direct.best.mem.total().value());
      EXPECT_EQ(ref.best[i].cfg.describe(), direct.best.cfg.describe());
      EXPECT_EQ(ref.best[i].iteration(), direct.best.iteration());
    }
    EXPECT_EQ(swept.stats.points, points.size());
    if (prune) EXPECT_GT(swept.stats.bound_pruned, 0u);
    EXPECT_GT(swept.stats.signature_cache_hits, 0u);
    EXPECT_GT(swept.stats.signature_compiles, 0u);
  }
}

/// Per-point counters must not depend on the worker count.
TEST(Sweep, CountersThreadInvariant) {
  const auto mdl = model::gpt3_175b();
  const auto points = search::hardware_grid(
      {hw::GpuGeneration::B200}, {4, 8, 16}, 128);
  search::SweepOptions opts;
  opts.search.strategy = parallel::TpStrategy::TP1D;
  opts.search.global_batch = 512;
  opts.threads = 1;
  const auto one = search::run_sweep(mdl, points, opts);
  opts.threads = 4;
  const auto four = search::run_sweep(mdl, points, opts);
  EXPECT_EQ(one.evaluated_per_point, four.evaluated_per_point);
  EXPECT_EQ(one.stats.evaluated, four.stats.evaluated);
  EXPECT_EQ(one.stats.bound_pruned, four.stats.bound_pruned);
  EXPECT_EQ(one.stats.memory_pruned, four.stats.memory_pruned);
  EXPECT_EQ(one.stats.signature_compiles, four.stats.signature_compiles);
  EXPECT_EQ(one.stats.candidates, four.stats.candidates);
}

TEST(Sweep, HardwareGridOrderAndShape) {
  const auto grid = search::hardware_grid(
      {hw::GpuGeneration::A100, hw::GpuGeneration::H200}, {8, 64}, 2048);
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0].nvs_domain, 8);
  EXPECT_EQ(grid[1].nvs_domain, 64);
  for (const auto& sys : grid) EXPECT_EQ(sys.n_gpus, 2048);
  // Generations outer: the first two entries share the A100 GPU spec.
  EXPECT_EQ(grid[0].gpu.name, grid[1].gpu.name);
  EXPECT_NE(grid[1].gpu.name, grid[2].gpu.name);
}

TEST(Sweep, EmptyGrid) {
  const auto mdl = model::gpt3_175b();
  const auto r = search::run_sweep(mdl, {}, {});
  EXPECT_TRUE(r.best.empty());
  EXPECT_EQ(r.stats.points, 0u);
}

}  // namespace
}  // namespace tfpe
