// Tests for the efficiency-calibration module: recovery of known
// efficiencies from synthetic measurements.

#include <gtest/gtest.h>

#include "calibrate/calibration.hpp"
#include "core/evaluator.hpp"

namespace tfpe::calibrate {
namespace {

using parallel::ParallelConfig;
using parallel::TpStrategy;

ParallelConfig cfg_1d(std::int64_t nt, std::int64_t np, std::int64_t nd,
                      std::int64_t b) {
  ParallelConfig c;
  c.strategy = TpStrategy::TP1D;
  c.n1 = nt;
  c.np = np;
  c.nd = nd;
  c.microbatches = b / nd;
  c.nvs1 = std::min<std::int64_t>(4, nt);
  return c;
}

/// Synthetic measurements: the model itself evaluated under known
/// efficiencies, with a small deterministic multiplicative perturbation.
std::vector<Observation> synthetic(const model::TransformerConfig& mdl,
                                   const hw::SystemConfig& sys,
                                   std::int64_t b, double ce, double be,
                                   double noise) {
  const hw::SystemConfig truth = apply_efficiencies(sys, ce, be);
  std::vector<Observation> obs;
  int i = 0;
  for (const auto& cfg :
       {cfg_1d(4, 16, 8, 1024), cfg_1d(8, 8, 8, 1024), cfg_1d(2, 32, 8, 1024),
        cfg_1d(4, 8, 16, 1024), cfg_1d(16, 4, 8, 1024)}) {
    const auto r = core::evaluate(mdl, truth, cfg, 1024);
    if (!r.feasible) continue;
    const double wiggle = 1.0 + noise * ((i % 2 == 0) ? 1.0 : -1.0);
    obs.push_back({cfg, r.iteration() * wiggle});
    ++i;
  }
  return obs;
}

TEST(Calibration, RecoversKnownEfficiencies) {
  const auto mdl = model::gpt3_175b();
  const auto sys = hw::perlmutter(512);
  const auto obs = synthetic(mdl, sys, 1024, 0.85, 0.6, 0.0);
  ASSERT_GE(obs.size(), 4u);
  const EfficiencyFit fit = fit_efficiencies(mdl, sys, 1024, obs);
  EXPECT_NEAR(fit.compute_efficiency, 0.85, 0.05);
  EXPECT_NEAR(fit.bandwidth_efficiency, 0.6, 0.1);
  EXPECT_LT(fit.rms_pct_error, 2.0);
}

TEST(Calibration, ToleratesMeasurementNoise) {
  const auto mdl = model::gpt3_175b();
  const auto sys = hw::perlmutter(512);
  const auto obs = synthetic(mdl, sys, 1024, 0.7, 0.7, 0.05);
  const EfficiencyFit fit = fit_efficiencies(mdl, sys, 1024, obs);
  EXPECT_NEAR(fit.compute_efficiency, 0.7, 0.1);
  EXPECT_LT(fit.rms_pct_error, 10.0);
}

TEST(Calibration, ResidualGrowsAwayFromOptimum) {
  const auto mdl = model::gpt3_175b();
  const auto sys = hw::perlmutter(512);
  const auto obs = synthetic(mdl, sys, 1024, 0.8, 0.7, 0.0);
  const double at_truth = rms_pct_error(mdl, sys, 1024, obs, 0.8, 0.7);
  const double off = rms_pct_error(mdl, sys, 1024, obs, 0.4, 0.7);
  EXPECT_LT(at_truth, off);
}

TEST(Calibration, AppliesEfficienciesCorrectly) {
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 64);
  const auto derated = apply_efficiencies(sys, 0.5, 0.6);
  EXPECT_DOUBLE_EQ(derated.gpu.tensor_flops.value(), 0.5 * sys.gpu.tensor_flops.value());
  EXPECT_DOUBLE_EQ(derated.gpu.vector_flops.value(), 0.5 * sys.gpu.vector_flops.value());
  EXPECT_DOUBLE_EQ(derated.net.efficiency, 0.6);
  // Memory system untouched.
  EXPECT_DOUBLE_EQ(derated.gpu.hbm_bandwidth.value(), sys.gpu.hbm_bandwidth.value());
}

TEST(Calibration, RejectsBadInput) {
  const auto mdl = model::gpt3_175b();
  const auto sys = hw::perlmutter(512);
  EXPECT_THROW(fit_efficiencies(mdl, sys, 1024, {}), std::invalid_argument);
  std::vector<Observation> bad{{cfg_1d(4, 16, 8, 1024), -1.0}};
  EXPECT_THROW(rms_pct_error(mdl, sys, 1024, bad, 1.0, 0.7),
               std::invalid_argument);
}

}  // namespace
}  // namespace tfpe::calibrate
