// Unit tests for the transformer architecture descriptions (paper §III-B).

#include <gtest/gtest.h>

#include "model/transformer.hpp"

namespace tfpe::model {
namespace {

TEST(Presets, Gpt3_1T_Dimensions) {
  const TransformerConfig m = gpt3_1t();
  EXPECT_EQ(m.seq_len, 2048);
  EXPECT_EQ(m.embed, 25600);
  EXPECT_EQ(m.heads, 160);
  EXPECT_EQ(m.depth, 128);
  EXPECT_EQ(m.hidden, 4 * 25600);
  EXPECT_EQ(m.head_dim(), 160);
}

TEST(Presets, Gpt3_1T_HasAboutATrillionParams) {
  const TransformerConfig m = gpt3_1t();
  // 12 e^2 d = 12 * 25600^2 * 128 ~ 1.007e12.
  EXPECT_NEAR(static_cast<double>(m.total_params()), 1.007e12, 0.01e12);
}

TEST(Presets, Vit64k_Dimensions) {
  const TransformerConfig m = vit_64k();
  EXPECT_EQ(m.seq_len, 64800);
  EXPECT_EQ(m.embed, 12288);
  EXPECT_EQ(m.heads, 64);
  EXPECT_EQ(m.depth, 48);
}

TEST(Presets, Vit64k_SequenceFromEra5Grid) {
  // 720 x 1440 ERA5 grid at patch size 4: (720/4) * (1440/4) = 64800.
  EXPECT_EQ(vit_64k().seq_len, (720 / 4) * (1440 / 4));
}

TEST(Presets, Gpt3_175B_HasAbout175BParams) {
  EXPECT_NEAR(static_cast<double>(gpt3_175b().total_params()), 174e9, 4e9);
}

TEST(Presets, ValidationModelsAreConsistent) {
  EXPECT_NO_THROW(gpt3_175b().validate());
  EXPECT_NO_THROW(vit_32k().validate());
}

TEST(FlopRatio, Gpt3MlpDominatesAttention) {
  // The paper: GPT3-1T has MLP:S/A FLOP ratio of roughly 2x.
  const TransformerConfig m = gpt3_1t();
  const double ratio = m.mlp_flops(1) / m.attention_flops(1);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.5);
}

TEST(FlopRatio, VitAttentionDominatesMlp) {
  // The paper: ViT-64K has MLP:S/A FLOP ratio of roughly 0.5x.
  const TransformerConfig m = vit_64k();
  const double ratio = m.mlp_flops(1) / m.attention_flops(1);
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 0.8);
}

TEST(Validate, RejectsBadDimensions) {
  TransformerConfig m = gpt3_1t();
  m.heads = 7;  // does not divide 25600
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = gpt3_1t();
  m.depth = 0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(ParamsPerLayer, MatchesClosedForm) {
  const TransformerConfig m = gpt3_175b();
  const std::int64_t e = m.embed, f = m.hidden;
  const std::int64_t expected =
      4 * e * e + 4 * e + 2 * e * f + f + e + 4 * e;
  EXPECT_EQ(m.params_per_layer(), expected);
  EXPECT_EQ(m.total_params(), expected * m.depth);
}

}  // namespace
}  // namespace tfpe::model
