// Tests for the model/system configuration-file loader.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/config_file.hpp"

namespace tfpe::io {
namespace {

ConfigSections parse(const std::string& text) {
  std::istringstream in(text);
  return parse_config(in);
}

TEST(ParseConfig, SectionsAndComments) {
  const auto s = parse(
      "# header comment\n"
      "[model]\n"
      "seq_len = 2048   # trailing comment\n"
      "\n"
      "[system]\n"
      "gpu=b200\n");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.at("model").at("seq_len"), "2048");
  EXPECT_EQ(s.at("system").at("gpu"), "b200");
}

TEST(ParseConfig, RejectsMalformedLines) {
  EXPECT_THROW(parse("[model\n"), std::runtime_error);
  EXPECT_THROW(parse("[model]\nnot a kv pair\n"), std::runtime_error);
  EXPECT_THROW(parse("[model]\n= value\n"), std::runtime_error);
}

TEST(ModelSection, BuildsCustomModel) {
  const auto s = parse(
      "[model]\n"
      "name = my-model\n"
      "seq_len = 4096\n"
      "embed = 1024\n"
      "heads = 16\n"
      "depth = 12\n"
      "kv_heads = 4\n"
      "attention = windowed\n"
      "window = 512\n");
  const auto m = model_from_section(s.at("model"));
  EXPECT_EQ(m.name, "my-model");
  EXPECT_EQ(m.hidden, 4096);  // default 4e
  EXPECT_EQ(m.kv_heads, 4);
  EXPECT_EQ(m.attention, model::AttentionKind::kWindowed);
  EXPECT_EQ(m.attended_len(), 512);
}

TEST(ModelSection, SupportsPresets) {
  const auto s = parse("[model]\npreset = gpt3-1t\n");
  const auto m = model_from_section(s.at("model"));
  EXPECT_EQ(m.name, "GPT3-1T");
  EXPECT_EQ(m.embed, 25600);
}

TEST(ModelSection, RejectsUnknownKeyAndBadValues) {
  EXPECT_THROW(model_from_section(parse("[model]\nseqlen = 4\n").at("model")),
               std::runtime_error);
  EXPECT_THROW(
      model_from_section(parse("[model]\npreset = nope\n").at("model")),
      std::runtime_error);
  EXPECT_THROW(
      model_from_section(
          parse("[model]\nseq_len = 4\nembed = 8\nheads = 3\ndepth = 1\n")
              .at("model")),
      std::runtime_error);  // heads must divide embed
  EXPECT_THROW(
      model_from_section(parse("[model]\nseq_len = x\n").at("model")),
      std::exception);
}

TEST(SystemSection, PresetWithOverrides) {
  const auto s = parse(
      "[system]\n"
      "gpu = a100\n"
      "hbm_gb = 40\n"
      "nvs_domain = 4\n"
      "n_gpus = 512\n"
      "enable_tree = 1\n");
  const auto sys = system_from_section(s.at("system"));
  EXPECT_EQ(sys.gpu.name, "A100");
  EXPECT_DOUBLE_EQ(sys.gpu.hbm_capacity.value(), 40e9);
  EXPECT_DOUBLE_EQ(sys.gpu.tensor_flops.value(), 312e12);  // preset retained
  EXPECT_EQ(sys.nvs_domain, 4);
  EXPECT_EQ(sys.n_gpus, 512);
  EXPECT_TRUE(sys.net.enable_tree);
}

TEST(SystemSection, FullyCustomHardware) {
  const auto s = parse(
      "[system]\n"
      "tensor_tflops = 1000\n"
      "vector_tflops = 100\n"
      "hbm_gb = 256\n"
      "hbm_gbs = 6000\n"
      "nvs_gbs = 600\n"
      "ib_gbs = 50\n"
      "efficiency = 0.8\n"
      "n_gpus = 64\n");
  const auto sys = system_from_section(s.at("system"));
  EXPECT_DOUBLE_EQ(sys.gpu.tensor_flops.value(), 1000e12);
  EXPECT_DOUBLE_EQ(sys.gpu.hbm_capacity.value(), 256e9);
  EXPECT_DOUBLE_EQ(sys.net.efficiency, 0.8);
}

TEST(SystemSection, RejectsUnknownGpuAndKeys) {
  EXPECT_THROW(
      system_from_section(parse("[system]\ngpu = v100\n").at("system")),
      std::runtime_error);
  EXPECT_THROW(
      system_from_section(parse("[system]\nhbm = 80\n").at("system")),
      std::runtime_error);
}

TEST(LoadConfigFile, RoundTrip) {
  const std::string path = "tfpe_test_config.tfpe";
  {
    std::ofstream out(path);
    out << "[model]\npreset = gpt3-175b\n\n"
        << "[system]\ngpu = h200\nn_gpus = 256\n";
  }
  const LoadedConfig loaded = load_config_file(path);
  ASSERT_TRUE(loaded.model.has_value());
  ASSERT_TRUE(loaded.system.has_value());
  EXPECT_EQ(loaded.model->name, "GPT3-175B");
  EXPECT_EQ(loaded.system->n_gpus, 256);
  std::remove(path.c_str());
  EXPECT_THROW(load_config_file("does_not_exist.tfpe"), std::runtime_error);
}

TEST(CodesignSection, BuildsShapeFamilyOptions) {
  Section s;
  s["target_params_b"] = "1000";
  s["tolerance"] = "0.03";
  s["depths"] = "64, 96, 128";
  s["heads"] = "96, 128";
  s["head_dims"] = "128, 160";
  s["aspect_min"] = "1.5";
  s["aspect_max"] = "7";
  s["hidden_multiple"] = "256";
  s["kv_heads"] = "0, 8";
  s["moe_experts"] = "0";
  const model::ShapeFamilyOptions opts = codesign_from_section(s);
  EXPECT_EQ(opts.target_params, 1000000000000);
  EXPECT_DOUBLE_EQ(opts.tolerance, 0.03);
  EXPECT_EQ(opts.depths, (std::vector<std::int64_t>{64, 96, 128}));
  EXPECT_EQ(opts.heads, (std::vector<std::int64_t>{96, 128}));
  EXPECT_EQ(opts.head_dims, (std::vector<std::int64_t>{128, 160}));
  EXPECT_DOUBLE_EQ(opts.aspect_min, 1.5);
  EXPECT_DOUBLE_EQ(opts.aspect_max, 7.0);
  EXPECT_EQ(opts.hidden_multiple, 256);
  EXPECT_EQ(opts.kv_heads, (std::vector<std::int64_t>{0, 8}));

  // Range axes and defaults survive when the lists are absent.
  Section r;
  r["depth_min"] = "32";
  r["depth_max"] = "64";
  r["depth_step"] = "32";
  const model::ShapeFamilyOptions ranged = codesign_from_section(r);
  EXPECT_EQ(ranged.target_params, 0);
  EXPECT_EQ(ranged.depth_min, 32);
  EXPECT_EQ(ranged.depth_max, 64);
  EXPECT_TRUE(ranged.depths.empty());
}

TEST(CodesignSection, RejectsBadValuesAndUnknownKeys) {
  Section s;
  s["target_params_b"] = "-1";
  EXPECT_THROW(codesign_from_section(s), std::runtime_error);
  s.clear();
  s["tolerance"] = "1.5";
  EXPECT_THROW(codesign_from_section(s), std::runtime_error);
  s.clear();
  s["depths"] = "64, zero";
  EXPECT_THROW(codesign_from_section(s), std::runtime_error);
  s.clear();
  s["depths"] = "0";
  EXPECT_THROW(codesign_from_section(s), std::runtime_error);
  s.clear();
  s["depth_planes"] = "4";
  EXPECT_THROW(codesign_from_section(s), std::runtime_error);
}

TEST(LoadConfigFile, ParsesCodesignSection) {
  const std::string path = "tfpe_test_codesign.tfpe";
  {
    std::ofstream out(path);
    out << "[model]\npreset = gpt3-1t\n\n"
        << "[codesign]\ntolerance = 0.04\ndepths = 96, 128\n";
  }
  const LoadedConfig loaded = load_config_file(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.codesign.has_value());
  EXPECT_DOUBLE_EQ(loaded.codesign->tolerance, 0.04);
  EXPECT_EQ(loaded.codesign->depths, (std::vector<std::int64_t>{96, 128}));
}

}  // namespace
}  // namespace tfpe::io
