// Tests for the Pareto-frontier search and the tree-AllReduce simulation.

#include <gtest/gtest.h>

#include "comm/collective_model.hpp"
#include "search/search.hpp"
#include "sim/ring_sim.hpp"

namespace tfpe {
namespace {

TEST(Pareto, FrontierIsMonotoneAndNonDominated) {
  const auto mdl = model::gpt3_1t();
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 1024);
  search::SearchOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 4096;
  const auto frontier = search::pareto_frontier(mdl, sys, opts);
  ASSERT_GE(frontier.size(), 2u);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    // Time increases, memory strictly decreases along the frontier.
    EXPECT_GE(frontier[i].iteration(), frontier[i - 1].iteration());
    EXPECT_LT(frontier[i].mem.total(), frontier[i - 1].mem.total());
  }
}

TEST(Pareto, FirstEntryIsTheOptimum) {
  const auto mdl = model::gpt3_175b();
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 128);
  search::SearchOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 512;
  const auto best = search::find_optimal(mdl, sys, opts).best;
  const auto frontier = search::pareto_frontier(mdl, sys, opts);
  ASSERT_FALSE(frontier.empty());
  EXPECT_DOUBLE_EQ(frontier.front().iteration(), best.iteration());
}

TEST(Pareto, AnswersMemoryBudgetQuestions) {
  // "Fastest configuration under half the HBM": must exist on the frontier
  // and be slower than (or equal to) the unconstrained optimum.
  const auto mdl = model::gpt3_1t();
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 1024);
  search::SearchOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 4096;
  const auto frontier = search::pareto_frontier(mdl, sys, opts);
  const Bytes budget = sys.gpu.hbm_capacity * 0.5;
  const core::EvalResult* pick = nullptr;
  for (const auto& r : frontier) {
    if (r.mem.total() <= budget) {
      pick = &r;
      break;  // frontier is fastest-first
    }
  }
  ASSERT_NE(pick, nullptr);
  EXPECT_GE(pick->iteration(), frontier.front().iteration());
}

TEST(TreeSim, MatchesAnalyticTreeModel) {
  const auto net = hw::network_preset(hw::GpuGeneration::B200);
  for (const auto [g, nvs] : {std::pair<std::int64_t, std::int64_t>{16, 8},
                              {64, 8}, {64, 64}}) {
    const Bytes V{1e9};
    const double analytic =
        comm::tree_time(net, ops::Collective::AllReduce, V, {g, nvs}).value();
    const double sim =
        sim::simulate_tree_allreduce(net, V, g, nvs, 16).value();
    EXPECT_NEAR(sim, analytic, 0.5 * analytic) << "g=" << g << " nvs=" << nvs;
  }
}

TEST(TreeSim, BeatsRingSimAtSmallVolumeLargeGroup) {
  const auto net = hw::network_preset(hw::GpuGeneration::B200);
  const Bytes V{1e5};
  const std::int64_t g = 512, nvs = 8;
  const Seconds ring =
      sim::simulate_collective(net, ops::Collective::AllReduce, V, g, nvs);
  const Seconds tree = sim::simulate_tree_allreduce(net, V, g, nvs, 4);
  EXPECT_LT(tree.value(), ring.value());
}

TEST(TreeSim, TrivialCases) {
  const auto net = hw::network_preset(hw::GpuGeneration::B200);
  EXPECT_DOUBLE_EQ(
      sim::simulate_tree_allreduce(net, Bytes(1e9), 1, 1).value(), 0.0);
  EXPECT_DOUBLE_EQ(
      sim::simulate_tree_allreduce(net, Bytes(0), 16, 8).value(), 0.0);
  EXPECT_THROW(sim::simulate_tree_allreduce(net, Bytes(1e9), 16, 8, 0),
               std::invalid_argument);
}

TEST(TreeSim, SlicingImprovesPipelining) {
  const auto net = hw::network_preset(hw::GpuGeneration::B200);
  const Seconds coarse =
      sim::simulate_tree_allreduce(net, Bytes(1e9), 64, 8, 1);
  const Seconds fine =
      sim::simulate_tree_allreduce(net, Bytes(1e9), 64, 8, 32);
  EXPECT_LT(fine.value(), coarse.value());
}

}  // namespace
}  // namespace tfpe
