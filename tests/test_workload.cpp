// Phase-generic execution model: the Workload axis and its Training-phase
// adapter. The load-bearing contract is bitwise: compiling through
// Workload::training() must reproduce the legacy training lowering —
// signature, timing and search optimum — double for double, so the phase
// refactor cannot move any published number.

#include <gtest/gtest.h>

#include <vector>

#include "core/cost_signature.hpp"
#include "core/estimate.hpp"
#include "core/evaluator.hpp"
#include "core/training_estimate.hpp"
#include "core/workload.hpp"
#include "search/search.hpp"

namespace tfpe {
namespace {

using parallel::TpStrategy;

/// Exact double-for-double comparison — the Training adapter must be an
/// identity on the evaluation pipeline, not an approximation of it.
void expect_bitwise(const core::EvalResult& ref, const core::EvalResult& got,
                    const std::string& label) {
  ASSERT_EQ(ref.feasible, got.feasible) << label;
  EXPECT_EQ(ref.reason, got.reason) << label;
  EXPECT_EQ(ref.time.compute, got.time.compute) << label;
  EXPECT_EQ(ref.time.memory, got.time.memory) << label;
  EXPECT_EQ(ref.time.tp_comm, got.time.tp_comm) << label;
  EXPECT_EQ(ref.time.pp_comm, got.time.pp_comm) << label;
  EXPECT_EQ(ref.time.dp_comm, got.time.dp_comm) << label;
  EXPECT_EQ(ref.time.bubble, got.time.bubble) << label;
  EXPECT_EQ(ref.time.optimizer, got.time.optimizer) << label;
  EXPECT_EQ(ref.t_fwd_micro, got.t_fwd_micro) << label;
  EXPECT_EQ(ref.t_bwd_micro, got.t_bwd_micro) << label;
  EXPECT_EQ(ref.mem.weights.value(), got.mem.weights.value()) << label;
  EXPECT_EQ(ref.mem.gradients.value(), got.mem.gradients.value()) << label;
  EXPECT_EQ(ref.mem.optimizer.value(), got.mem.optimizer.value()) << label;
  EXPECT_EQ(ref.mem.activations.value(), got.mem.activations.value())
      << label;
  EXPECT_EQ(ref.mem.kv_cache.value(), got.mem.kv_cache.value()) << label;
}

TEST(Workload, FactoriesCarryThePhase) {
  EXPECT_EQ(core::Workload::training().phase,
            core::ExecutionPhase::kTraining);
  EXPECT_TRUE(core::Workload::training().is_training());
  const auto p = core::Workload::prefill(2048, 256);
  EXPECT_EQ(p.phase, core::ExecutionPhase::kPrefill);
  EXPECT_EQ(p.prompt_len, 2048);
  EXPECT_EQ(p.output_len, 256);
  EXPECT_FALSE(p.is_training());
  const auto d = core::Workload::decode(2048, 256);
  EXPECT_EQ(d.phase, core::ExecutionPhase::kDecode);
  // Steady-state decode sees the prompt plus half the generated tokens of
  // cache on average; an explicit kv_len overrides the midpoint.
  EXPECT_DOUBLE_EQ(d.decode_kv_len(), 2048.0 + 128.0);
  core::Workload pinned = d;
  pinned.kv_len = 4096.0;
  EXPECT_DOUBLE_EQ(pinned.decode_kv_len(), 4096.0);
}

TEST(Workload, PhaseNames) {
  EXPECT_STREQ(core::to_string(core::ExecutionPhase::kTraining), "training");
  EXPECT_STREQ(core::to_string(core::ExecutionPhase::kPrefill), "prefill");
  EXPECT_STREQ(core::to_string(core::ExecutionPhase::kDecode), "decode");
}

/// The golden matrix: legacy compile vs Workload::training() compile vs the
/// reference evaluator, over models x systems x strategies. All three must
/// agree bitwise.
TEST(Workload, TrainingAdapterBitwiseMatrix) {
  struct Case {
    parallel::ParallelConfig cfg;
    std::int64_t batch;
  };
  std::vector<Case> cases;
  {
    parallel::ParallelConfig c;
    c.strategy = TpStrategy::TP1D;
    c.n1 = 8;
    c.np = 2;
    c.nd = 4;
    c.microbatches = 8;
    cases.push_back({c, 128});
  }
  {
    parallel::ParallelConfig c;
    c.strategy = TpStrategy::TP2D;
    c.n1 = 4;
    c.n2 = 2;
    c.np = 2;
    c.nd = 4;
    c.microbatches = 8;
    cases.push_back({c, 128});
  }
  {
    parallel::ParallelConfig c;
    c.strategy = TpStrategy::Summa2D;
    c.n1 = 2;
    c.n2 = 2;
    c.np = 2;
    c.nd = 8;
    c.microbatches = 8;
    c.nb = 4;
    cases.push_back({c, 128});
  }

  const core::EvalOptions opts;
  for (const auto& mdl : {model::gpt3_175b(), model::llama3_405b()}) {
    for (const auto gen : {hw::GpuGeneration::A100, hw::GpuGeneration::B200}) {
      const auto sys = hw::make_system(gen, 8, 64);
      for (Case c : cases) {
        search::pack_placement(c.cfg, sys.nvs_domain);
        if (c.cfg.invalid_reason(mdl, sys, c.batch)) continue;
        const std::string label =
            mdl.name + "/" + sys.gpu.name + "/" + c.cfg.describe();
        const auto legacy =
            core::compile_signature(mdl, c.cfg, c.batch, opts);
        const auto phased = core::compile_signature(
            mdl, c.cfg, c.batch, core::Workload::training(), opts);
        EXPECT_EQ(phased.phase, core::ExecutionPhase::kTraining) << label;
        const auto ref = core::evaluate(mdl, sys, c.cfg, c.batch, opts);
        expect_bitwise(
            ref, core::time_signature(legacy, mdl, sys, c.cfg, c.batch, opts),
            label + " legacy");
        expect_bitwise(
            ref, core::time_signature(phased, mdl, sys, c.cfg, c.batch, opts),
            label + " workload");
      }
    }
  }
}

/// The search optimum is unchanged by the refactor: re-timing the winner's
/// configuration through the Workload::training() path reproduces the
/// result the search itself reported, bitwise.
TEST(Workload, SearchOptimumSurvivesWorkloadPath) {
  const auto mdl = model::gpt3_175b();
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 64);
  search::SearchOptions opts;
  opts.global_batch = 256;
  const auto run = search::find_optimal(mdl, sys, opts);
  ASSERT_TRUE(run.best.feasible);
  const auto sig = core::compile_signature(
      mdl, run.best.cfg, opts.global_batch, core::Workload::training(), {});
  expect_bitwise(run.best,
                 core::time_signature(sig, mdl, sys, run.best.cfg,
                                      opts.global_batch, {}),
                 "optimum");
}

TEST(Workload, AdaptToPhaseZeroesBackwardAndKeepsSourceIntact) {
  const auto mdl = model::gpt3_175b();
  parallel::ParallelConfig cfg;
  cfg.strategy = TpStrategy::TP1D;
  cfg.n1 = 8;
  cfg.np = 2;
  cfg.microbatches = 2;
  cfg.nvs1 = 8;
  const auto src = core::compile_signature(mdl, cfg, 2, core::EvalOptions{});
  const auto before_bwd = src.matmul_bwd_flops.value();
  ASSERT_GT(before_bwd, 0.0);
  const auto adapted =
      core::adapt_to_phase(src, core::ExecutionPhase::kPrefill);
  EXPECT_EQ(adapted.phase, core::ExecutionPhase::kPrefill);
  EXPECT_EQ(adapted.matmul_bwd_flops.value(), 0.0);
  EXPECT_EQ(adapted.vector_bwd_flops.value(), 0.0);
  EXPECT_EQ(adapted.dp_grad_bytes.value(), 0.0);
  EXPECT_EQ(adapted.optimizer_traffic.value(), 0.0);
  EXPECT_EQ(adapted.mem.gradients.value(), 0.0);
  EXPECT_EQ(adapted.mem.optimizer.value(), 0.0);
  for (const auto& op : adapted.ops) {
    EXPECT_EQ(op.bwd_flops.value(), 0.0);
    EXPECT_EQ(op.bwd_bytes.value(), 0.0);
    EXPECT_EQ(op.bwd_comm_count, 0u);
  }
  // The forward side and the source signature are untouched.
  EXPECT_EQ(adapted.matmul_fwd_flops.value(), src.matmul_fwd_flops.value());
  EXPECT_EQ(adapted.mem.weights.value(), src.mem.weights.value());
  EXPECT_EQ(src.matmul_bwd_flops.value(), before_bwd);
  EXPECT_EQ(src.phase, core::ExecutionPhase::kTraining);
  // Forward-only residency: one layer's transient buffers, not the
  // training stash of layers_per_stage of them.
  EXPECT_LT(adapted.mem.activations.value(), src.mem.activations.value());
}

TEST(Workload, TrainingMemoryIgnoresKvCache) {
  // The kv_cache field exists on every breakdown but must stay zero — and
  // cost nothing — on the training path.
  const auto mdl = model::gpt3_175b();
  parallel::ParallelConfig cfg;
  cfg.strategy = TpStrategy::TP1D;
  cfg.n1 = 8;
  cfg.np = 2;
  cfg.microbatches = 2;
  cfg.nvs1 = 8;
  const auto sig = core::compile_signature(mdl, cfg, 2, core::EvalOptions{});
  EXPECT_EQ(sig.mem.kv_cache.value(), 0.0);
  EXPECT_EQ(sig.mem.total().value(),
            (sig.mem.weights + sig.mem.gradients + sig.mem.optimizer +
             sig.mem.activations)
                .value());
}

TEST(Workload, RunLengthHelpersBackTrainingEstimates) {
  // training_estimate now delegates to the shared phase-agnostic helpers;
  // the alias and the arithmetic must agree with the legacy definitions.
  const core::RunLength r = core::run_length(1000, 2.5);
  EXPECT_DOUBLE_EQ(r.total_seconds, 2500.0);
  EXPECT_DOUBLE_EQ(r.days, 2500.0 / 86400.0);
  EXPECT_DOUBLE_EQ(core::tokens_per_unit(4096, 2048), 4096.0 * 2048.0);
  const auto mdl = model::gpt3_175b();
  const core::TrainingEstimate est =
      core::estimate_token_training(mdl, 1536, 2.0, 3e11);
  const double tokens_per_step = 1536.0 * static_cast<double>(mdl.seq_len);
  EXPECT_DOUBLE_EQ(est.steps, 3e11 / tokens_per_step);
  EXPECT_DOUBLE_EQ(est.total_seconds, est.steps * 2.0);
}

}  // namespace
}  // namespace tfpe
