// Tests for the modeling extensions beyond the paper's baseline (its §V
// limitations/outlook list): interleaved pipelines, ZeRO-3 weight sharding,
// TP-communication overlap, activation offload, grouped-query attention,
// windowed/linear attention and tree collectives.

#include <gtest/gtest.h>

#include "comm/collective_model.hpp"
#include "core/evaluator.hpp"
#include "ops/op_factory.hpp"
#include "parallel/layer_builder.hpp"
#include "pipeline/pipeline_model.hpp"
#include "search/search.hpp"

namespace tfpe {
namespace {

using parallel::ParallelConfig;
using parallel::TpStrategy;
using parallel::ZeroStage;

hw::SystemConfig b200(std::int64_t nvs = 8, std::int64_t n = 16384) {
  return hw::make_system(hw::GpuGeneration::B200, nvs, n);
}

ParallelConfig gpt_cfg() {
  ParallelConfig c;
  c.strategy = TpStrategy::TP1D;
  c.n1 = 8;
  c.np = 64;
  c.nd = 32;
  c.microbatches = 128;
  c.nvs1 = 8;
  return c;
}

// ---- Interleaved 1F1B ----

TEST(Interleave, BubbleShrinksByV) {
  EXPECT_DOUBLE_EQ(
      pipeline::bubble_time(8, Seconds(1.0), Seconds(2.0), 1).value(), 21.0);
  EXPECT_DOUBLE_EQ(
      pipeline::bubble_time(8, Seconds(1.0), Seconds(2.0), 2).value(), 10.5);
}

TEST(Interleave, P2pGrowsByV) {
  const auto net = hw::network_preset(hw::GpuGeneration::B200);
  EXPECT_DOUBLE_EQ(
      pipeline::p2p_time(net, 4, 8, Bytes(1e6), 1, 2).value(),
      2.0 * pipeline::p2p_time(net, 4, 8, Bytes(1e6), 1, 1).value());
}

TEST(Interleave, ReducesIterationWhenBubblesDominate) {
  const auto mdl = model::gpt3_1t();
  ParallelConfig cfg = gpt_cfg();
  const auto base = core::evaluate(mdl, b200(), cfg, 4096);
  cfg.interleave = 2;  // 128/64 = 2 layers per stage -> v=2 valid
  const auto inter = core::evaluate(mdl, b200(), cfg, 4096);
  ASSERT_TRUE(base.feasible && inter.feasible);
  EXPECT_NEAR(inter.time.bubble, base.time.bubble / 2.0,
              1e-9 * base.time.bubble);
  EXPECT_GT(inter.time.pp_comm, base.time.pp_comm);
  EXPECT_LT(inter.iteration(), base.iteration());
}

TEST(Interleave, ValidationRules) {
  const auto mdl = model::gpt3_1t();
  ParallelConfig cfg = gpt_cfg();
  cfg.interleave = 4;  // 2 layers per stage, 4 does not divide 2
  EXPECT_EQ(*cfg.invalid_reason(mdl, b200(), 4096),
            "interleave must divide the layers per stage");
  cfg = gpt_cfg();
  cfg.np = 1;
  cfg.nd = 2048;
  cfg.microbatches = 2;
  cfg.interleave = 2;
  EXPECT_EQ(*cfg.invalid_reason(mdl, b200(), 4096),
            "interleaving requires np > 1");
}

// ---- ZeRO-3 ----

TEST(Zero3, ShrinksWeightAndGradientMemory) {
  // Deep stages (np=8 -> 16 layers per stage) so the sharding dominates the
  // one-layer gathered working set.
  const auto mdl = model::gpt3_1t();
  ParallelConfig cfg;
  cfg.strategy = TpStrategy::TP1D;
  cfg.n1 = 8;
  cfg.np = 8;
  cfg.nd = 256;
  cfg.microbatches = 16;
  cfg.nvs1 = 8;
  const auto base = core::evaluate(mdl, b200(), cfg, 4096);
  cfg.zero = ZeroStage::kWeights;
  const auto z3 = core::evaluate(mdl, b200(), cfg, 4096);
  ASSERT_TRUE(base.feasible) << base.reason;
  ASSERT_TRUE(z3.feasible) << z3.reason;
  EXPECT_LT(z3.mem.weights.value(), 0.15 * base.mem.weights.value());
  EXPECT_LT(z3.mem.gradients.value(), 0.15 * base.mem.gradients.value());
  EXPECT_DOUBLE_EQ(z3.mem.optimizer.value(), base.mem.optimizer.value());
}

TEST(Zero3, PaysPerMicrobatchCommunication) {
  const auto mdl = model::gpt3_1t();
  ParallelConfig cfg = gpt_cfg();
  const auto base = core::evaluate(mdl, b200(), cfg, 4096);
  cfg.zero = ZeroStage::kWeights;
  const auto z3 = core::evaluate(mdl, b200(), cfg, 4096);
  ASSERT_TRUE(base.feasible && z3.feasible);
  EXPECT_GT(z3.time.dp_comm, base.time.dp_comm);
  EXPECT_GT(z3.time.dp_comm, 10.0 * base.time.dp_comm + 1e-12);
}

TEST(Zero3, DescribeMentionsIt) {
  ParallelConfig cfg = gpt_cfg();
  cfg.zero = ZeroStage::kWeights;
  EXPECT_NE(cfg.describe().find("ZeRO3"), std::string::npos);
  EXPECT_EQ(parallel::to_string(ZeroStage::kWeights), "ZeRO-3");
}

// ---- TP overlap ----

TEST(TpOverlap, ScalesExposedCommunication) {
  const auto mdl = model::gpt3_1t();
  const auto cfg = gpt_cfg();
  const auto base = core::evaluate(mdl, b200(), cfg, 4096);
  core::EvalOptions opts;
  opts.tp_overlap = 0.5;
  const auto half = core::evaluate(mdl, b200(), cfg, 4096, opts);
  ASSERT_TRUE(base.feasible && half.feasible);
  EXPECT_NEAR(half.time.tp_comm, 0.5 * base.time.tp_comm,
              1e-9 * base.time.tp_comm);
  EXPECT_LT(half.iteration(), base.iteration());
  EXPECT_DOUBLE_EQ(half.time.compute, base.time.compute);
}

TEST(TpOverlap, DoesNotTouchSummaOps) {
  // SUMMA carries its own prologue/overlap model; tp_overlap must leave its
  // exposed communication unchanged.
  const ops::Op op = ops::summa_matmul("s", 4096, 4096, 4096, 2, 2, 4);
  ParallelConfig cfg;
  cfg.strategy = TpStrategy::Summa2D;
  cfg.n1 = cfg.n2 = 2;
  const auto sys = b200();
  const auto t = core::op_time(op, false, sys, cfg);
  EXPECT_GT(t.comm.value(), 0.0);  // present regardless of overlap options
}

// ---- Activation offload ----

TEST(Offload, FreesHbmAndPaysHostTraffic) {
  const auto mdl = model::vit_64k();
  ParallelConfig cfg;
  cfg.strategy = TpStrategy::TP2D;
  cfg.n1 = 2;
  cfg.n2 = 8;
  cfg.np = 2;
  cfg.nd = 128;
  cfg.microbatches = 32;
  cfg.nvs1 = 2;
  cfg.nvs2 = 4;
  const auto sys = b200(8, 4096);
  const auto base = core::evaluate(mdl, sys, cfg, 4096);
  core::EvalOptions opts;
  opts.activation_offload = 0.5;
  const auto off = core::evaluate(mdl, sys, cfg, 4096, opts);
  ASSERT_TRUE(base.feasible && off.feasible);
  EXPECT_NEAR(off.mem.activations.value(), 0.5 * base.mem.activations.value(),
              1e-9 * base.mem.activations.value());
  EXPECT_GT(off.time.memory, base.time.memory);
  EXPECT_GT(off.iteration(), base.iteration());
}

TEST(Offload, CanMakeInfeasibleConfigFit) {
  // A config that overflows HBM without offload fits with it.
  const auto mdl = model::vit_64k();
  ParallelConfig cfg;
  cfg.strategy = TpStrategy::TP2D;
  cfg.n1 = 1;
  cfg.n2 = 8;
  cfg.np = 4;
  cfg.nd = 8;
  cfg.microbatches = 512;  // b_loc = 1; activations still overflow un-offloaded
  const auto sys = b200(8, 256);
  const auto base = core::evaluate(mdl, sys, cfg, 4096);
  ASSERT_FALSE(base.feasible);
  core::EvalOptions opts;
  opts.activation_offload = 0.9;
  const auto off = core::evaluate(mdl, sys, cfg, 4096, opts);
  EXPECT_TRUE(off.feasible) << off.reason;
}

// ---- Grouped-query attention / Llama ----

TEST(Gqa, PresetDimensions) {
  const auto m = model::llama3_405b();
  EXPECT_EQ(m.kv_heads, 8);
  EXPECT_EQ(m.kv_embed(), 8 * 128);
  EXPECT_NEAR(static_cast<double>(m.total_params()), 405e9, 25e9);
}

TEST(Gqa, ShrinksKvWeightsAndStorage) {
  auto mha = model::llama3_405b();
  mha.kv_heads = 0;  // full MHA variant of the same model
  const auto gqa = model::llama3_405b();
  ParallelConfig cfg;
  cfg.strategy = TpStrategy::TP1D;
  cfg.n1 = 8;
  const auto lc_mha = parallel::build_layer(mha, cfg, 1);
  const auto lc_gqa = parallel::build_layer(gqa, cfg, 1);
  EXPECT_LT(lc_gqa.weight_params, lc_mha.weight_params);
  EXPECT_LT(lc_gqa.stored_bytes().value(), lc_mha.stored_bytes().value());
  // Attention FLOPs are unchanged by GQA (all query heads still attend).
  const ops::Op* att_gqa = nullptr;
  const ops::Op* att_mha = nullptr;
  for (const auto& op : lc_gqa.ops) {
    if (op.name == "attention") att_gqa = &op;
  }
  for (const auto& op : lc_mha.ops) {
    if (op.name == "attention") att_mha = &op;
  }
  ASSERT_TRUE(att_gqa && att_mha);
  EXPECT_DOUBLE_EQ(att_gqa->fwd_flops.value(), att_mha->fwd_flops.value());
  EXPECT_LT(att_gqa->fwd_bytes.value(), att_mha->fwd_bytes.value());
}

TEST(Gqa, TpLimitedByKvHeads) {
  const auto m = model::llama3_405b();
  ParallelConfig cfg;
  cfg.strategy = TpStrategy::TP1D;
  cfg.n1 = 16;  // > 8 kv heads
  EXPECT_EQ(*cfg.invalid_reason(m, b200(8, 16), 4096),
            "n1 must divide kv heads");
}

TEST(Gqa, EndToEndSearchFindsConfig) {
  // Llama's depth (126 = 2 * 3^2 * 7) limits PP on power-of-two clusters and
  // its 8 KV heads cap 1D TP at nt=8, so SUMMA's fully sharded weights are
  // what make 405B fit here.
  const auto m = model::llama3_405b();
  const auto sys = b200(8, 2048);
  search::SearchOptions opts;
  opts.strategy = TpStrategy::Summa2D;
  opts.global_batch = 1024;
  const auto r = search::find_optimal(m, sys, opts);
  ASSERT_TRUE(r.best.feasible) << r.best.reason;
  EXPECT_LE(r.best.cfg.n1, 8);
}

// ---- Attention variants ----

TEST(AttentionVariants, AttendedLen) {
  EXPECT_EQ(model::vit_64k().attended_len(), 64800);
  EXPECT_EQ(model::vit_64k_windowed(4096).attended_len(), 4096);
  EXPECT_EQ(model::vit_64k_linear().attended_len(),
            model::vit_64k().head_dim());
}

TEST(AttentionVariants, WindowedCutsAttentionFlops) {
  ParallelConfig cfg;
  cfg.strategy = TpStrategy::TP2D;
  cfg.n1 = 4;
  cfg.n2 = 4;
  const auto full = parallel::build_layer(model::vit_64k(), cfg, 1);
  const auto win =
      parallel::build_layer(model::vit_64k_windowed(4050), cfg, 1);
  EXPECT_LT(win.fwd_flops().value(), full.fwd_flops().value());
  // The K/V gather volume shrinks toward the window halo.
  EXPECT_LT(win.fwd_comm_bytes(ops::CommGroup::TP2),
            full.fwd_comm_bytes(ops::CommGroup::TP2));
}

TEST(AttentionVariants, LinearRemovesQuadraticTerm) {
  ParallelConfig cfg;
  cfg.strategy = TpStrategy::TP2D;
  cfg.n1 = 4;
  cfg.n2 = 4;
  const auto lin = parallel::build_layer(model::vit_64k_linear(), cfg, 1);
  const auto full = parallel::build_layer(model::vit_64k(), cfg, 1);
  // Removing the O(l^2) Logit/Attend leaves the projections + MLP:
  // for the ViT that is a bit over half the layer FLOPs.
  EXPECT_LT(lin.fwd_flops().value(), 0.62 * full.fwd_flops().value());
  // The n2 collective becomes a tiny state AllReduce.
  EXPECT_LT(lin.fwd_comm_bytes(ops::CommGroup::TP2),
            0.01 * full.fwd_comm_bytes(ops::CommGroup::TP2));
}

TEST(AttentionVariants, WindowedVitTrainsFaster) {
  const auto sys = b200(8, 2048);
  search::SearchOptions opts;
  opts.strategy = TpStrategy::TP2D;
  opts.global_batch = 4096;
  const auto full = search::find_optimal(model::vit_64k(), sys, opts).best;
  const auto win =
      search::find_optimal(model::vit_64k_windowed(4050), sys, opts).best;
  ASSERT_TRUE(full.feasible && win.feasible);
  EXPECT_LT(win.iteration(), full.iteration());
}

TEST(AttentionVariants, ValidationRejectsZeroWindow) {
  auto m = model::vit_64k();
  m.attention = model::AttentionKind::kWindowed;
  m.window = 0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

// ---- Tree collectives ----

TEST(TreeCollectives, HelpLatencyBoundAllReduce) {
  auto net = hw::network_preset(hw::GpuGeneration::B200);
  const comm::GroupPlacement g{512, 8};
  const Seconds ring =
      comm::collective_time(net, ops::Collective::AllReduce, Bytes(1e5), g);
  net.enable_tree = true;
  const Seconds best =
      comm::collective_time(net, ops::Collective::AllReduce, Bytes(1e5), g);
  EXPECT_LT(best.value(), ring.value());
  EXPECT_DOUBLE_EQ(
      best.value(),
      comm::tree_time(net, ops::Collective::AllReduce, Bytes(1e5), g).value());
}

TEST(TreeCollectives, RingStillWinsAtLargeVolume) {
  auto net = hw::network_preset(hw::GpuGeneration::B200);
  net.enable_tree = true;
  const comm::GroupPlacement g{16, 8};
  const Seconds with_tree =
      comm::collective_time(net, ops::Collective::AllReduce, Bytes(10e9), g);
  net.enable_tree = false;
  const Seconds ring =
      comm::collective_time(net, ops::Collective::AllReduce, Bytes(10e9), g);
  // Tree pays 2V/bw vs ring's 2(g-1)/g V/bw: ring is (slightly) better.
  EXPECT_LE(ring.value(), with_tree.value());
}

TEST(TreeCollectives, NeverUsedForAllGather) {
  auto net = hw::network_preset(hw::GpuGeneration::B200);
  const comm::GroupPlacement g{512, 8};
  const Seconds off =
      comm::collective_time(net, ops::Collective::AllGather, Bytes(1e5), g);
  net.enable_tree = true;
  EXPECT_DOUBLE_EQ(
      comm::collective_time(net, ops::Collective::AllGather, Bytes(1e5), g)
          .value(),
      off.value());
}

}  // namespace
}  // namespace tfpe
