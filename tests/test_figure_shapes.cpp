// Regression tests pinning the *shapes* of the appendix figures (the main
// ones are covered by test_paper_properties): the qualitative claims each
// figure makes must hold in the model so a refactor cannot silently bend a
// curve. See EXPERIMENTS.md for the full paper-vs-repro record.

#include <gtest/gtest.h>

#include <algorithm>

#include "report/figure_data.hpp"
#include "search/search.hpp"
#include "sim/validation.hpp"

namespace tfpe {
namespace {

using parallel::TpStrategy;

hw::SystemConfig b200(std::int64_t nvs, std::int64_t n) {
  return hw::make_system(hw::GpuGeneration::B200, nvs, n);
}

// Fig. 2a: the DP communication fraction is non-convex over the PP sweep —
// it rises to a transition point and then falls as the placement hands NVS
// GPUs to DP.
TEST(FigureShapes, Fig2DpCommNonConvex) {
  const auto mdl = model::gpt3_1t();
  const auto sys = b200(8, 16384);
  std::vector<double> dp_frac;
  for (std::int64_t np : {4, 8, 16, 32, 64, 128}) {
    parallel::ParallelConfig cfg;
    cfg.strategy = TpStrategy::TP1D;
    cfg.n1 = 8;
    cfg.np = np;
    cfg.nd = 2048 / np;
    cfg.microbatches = 4096 / cfg.nd;
    const auto r = search::best_placement(mdl, sys, cfg, 4096);
    ASSERT_TRUE(r.feasible) << cfg.describe();
    dp_frac.push_back(r.time.dp_comm / r.iteration());
  }
  const auto peak = std::max_element(dp_frac.begin(), dp_frac.end());
  // The peak is strictly interior: smaller at both ends of the sweep.
  EXPECT_NE(peak, dp_frac.begin());
  EXPECT_NE(peak, dp_frac.end() - 1);
  EXPECT_GT(*peak, 2.0 * dp_frac.back());
}

// Fig. 3: within the SUMMA low-DP block, time degrades monotonically as n2
// grows (the second dimension inflates SUMMA volume over the slow network).
TEST(FigureShapes, Fig3SummaPrefersN2Of1OnSmallNvs) {
  const auto mdl = model::gpt3_1t();
  const auto sys = b200(8, 16384);
  double prev = 0;
  for (std::int64_t n1 : {8, 4, 2, 1}) {
    parallel::ParallelConfig cfg;
    cfg.strategy = TpStrategy::Summa2D;
    cfg.n1 = n1;
    cfg.n2 = 8 / n1;
    cfg.np = 128;
    cfg.nd = 16;
    cfg.microbatches = 256;
    cfg.nb = 4;
    const auto r = search::best_placement(mdl, sys, cfg, 4096);
    ASSERT_TRUE(r.feasible) << cfg.describe();
    if (prev > 0) EXPECT_GT(r.iteration(), prev) << cfg.describe();
    prev = r.iteration();
  }
}

// Fig. A3a: on a 64-GPU NVS domain the optimal PP at the largest scale is
// lower than on the 8-GPU domain (the domain absorbs DP costs).
TEST(FigureShapes, FigA3LargeNvsLowersOptimalPp) {
  const auto mdl = model::gpt3_1t();
  const auto small = report::optimal_at_scale(mdl, b200(8, 16384),
                                              TpStrategy::TP1D, 4096, 16384);
  const auto large = report::optimal_at_scale(mdl, b200(64, 16384),
                                              TpStrategy::TP1D, 4096, 16384);
  ASSERT_TRUE(small.feasible && large.feasible);
  EXPECT_LE(large.cfg.np, small.cfg.np);
  EXPECT_LE(large.iteration(), small.iteration());
}

// Fig. A4: plain 2D TP gives a positive speedup over 1D TP at the largest
// scale, and the speedup grows with scale.
TEST(FigureShapes, FigA4TwoDTpSpeedupGrowsWithScale) {
  const auto mdl = model::gpt3_1t();
  auto speedup = [&](std::int64_t n) {
    const auto sys = b200(8, n);
    const auto r1 =
        report::optimal_at_scale(mdl, sys, TpStrategy::TP1D, 4096, n);
    const auto r2 =
        report::optimal_at_scale(mdl, sys, TpStrategy::TP2D, 4096, n);
    EXPECT_TRUE(r1.feasible && r2.feasible);
    return r1.iteration() / r2.iteration();
  };
  const double at_4k = speedup(4096);
  const double at_16k = speedup(16384);
  EXPECT_GT(at_16k, 1.05);
  EXPECT_GT(at_16k, at_4k);
}

// Fig. A5: at 8192 GPUs, halving the FLOP rate hurts GPT3-1T far more than
// halving the memory system; for the ViT the memory axis matters too.
TEST(FigureShapes, FigA5FlopVsMemorySensitivity) {
  const std::int64_t n = 8192;
  auto time_scaled = [&](const model::TransformerConfig& mdl,
                         TpStrategy strat, double flop_scale,
                         double mem_scale) {
    hw::SystemConfig sys = b200(8, n);
    sys.gpu = sys.gpu
                  .with_compute(sys.gpu.tensor_flops * flop_scale,
                                sys.gpu.vector_flops * flop_scale)
                  .with_memory(sys.gpu.hbm_capacity * mem_scale,
                               sys.gpu.hbm_bandwidth * mem_scale);
    const auto r = report::optimal_at_scale(mdl, sys, strat, 4096, n);
    EXPECT_TRUE(r.feasible);
    return r.iteration();
  };
  const auto gpt = model::gpt3_1t();
  const double gpt_base = time_scaled(gpt, TpStrategy::TP1D, 1.0, 1.0);
  const double gpt_half_flops = time_scaled(gpt, TpStrategy::TP1D, 0.5, 1.0);
  const double gpt_half_mem = time_scaled(gpt, TpStrategy::TP1D, 1.0, 0.5);
  EXPECT_GT(gpt_half_flops / gpt_base, 1.4);   // flops dominate
  EXPECT_LT(gpt_half_mem / gpt_base, 1.25);    // memory matters little

  const auto vit = model::vit_64k();
  const double vit_base = time_scaled(vit, TpStrategy::TP2D, 1.0, 1.0);
  const double vit_half_mem = time_scaled(vit, TpStrategy::TP2D, 1.0, 0.5);
  const double gpt_mem_ratio = gpt_half_mem / gpt_base;
  EXPECT_GT(vit_half_mem / vit_base, gpt_mem_ratio);  // ViT more sensitive
}

// Fig. A6: the high-capacity/low-bandwidth (LPDDR-like) corner stays within
// a modest factor of the balanced HBM design for both models.
TEST(FigureShapes, FigA6LpddrCornerViable) {
  const std::int64_t n = 8192;
  auto lpddr_ratio = [&](const model::TransformerConfig& mdl,
                         TpStrategy strat) {
    hw::SystemConfig base = b200(8, n);
    hw::SystemConfig lpddr = base;
    lpddr.gpu = lpddr.gpu.with_memory(4.0 * base.gpu.hbm_capacity,
                                      0.25 * base.gpu.hbm_bandwidth);
    const auto rb = report::optimal_at_scale(mdl, base, strat, 4096, n);
    const auto rl = report::optimal_at_scale(mdl, lpddr, strat, 4096, n);
    EXPECT_TRUE(rb.feasible && rl.feasible);
    return rl.iteration() / rb.iteration();
  };
  EXPECT_LT(lpddr_ratio(model::gpt3_1t(), TpStrategy::TP1D), 1.3);
  EXPECT_LT(lpddr_ratio(model::vit_64k(), TpStrategy::TP2D), 1.5);
}

// §IV: the validation errors on the Perlmutter-like system stay within the
// paper's reported band for the whole sub-optimal set.
TEST(FigureShapes, ValidationErrorsWithinPaperBand) {
  const auto mdl = model::gpt3_175b();
  const auto sys = hw::perlmutter(512);
  for (const auto [nt, np, nd] :
       {std::tuple<std::int64_t, std::int64_t, std::int64_t>{4, 16, 8},
        {8, 8, 8},
        {2, 32, 8},
        {4, 8, 16}}) {
    parallel::ParallelConfig cfg;
    cfg.strategy = TpStrategy::TP1D;
    cfg.n1 = nt;
    cfg.np = np;
    cfg.nd = nd;
    cfg.microbatches = 1024 / nd;
    cfg.nvs1 = std::min<std::int64_t>(4, nt);
    const auto p = sim::validate_iteration(mdl, sys, cfg, 1024, "cfg");
    EXPECT_LT(p.abs_pct_error(), 26.0) << cfg.describe();
  }
}

}  // namespace
}  // namespace tfpe
