#pragma once
// Training-plan serialization: persist a chosen parallelization
// configuration (typically a search result) as a [plan] section in the same
// file format as the model/system configs, and load it back for
// re-evaluation. This is the artifact a planning session hands to the
// launch tooling.

#include <optional>
#include <ostream>
#include <string>

#include "core/evaluator.hpp"
#include "io/config_file.hpp"

namespace tfpe::io {

/// Serialize the configuration (plus a human-readable summary of the
/// evaluated result as comments) as a [plan] section.
void write_plan(std::ostream& os, const core::EvalResult& result,
                std::int64_t global_batch);

/// File convenience; throws std::runtime_error when the path cannot be
/// opened.
void write_plan_file(const std::string& path, const core::EvalResult& result,
                     std::int64_t global_batch);

struct LoadedPlan {
  parallel::ParallelConfig cfg;
  std::int64_t global_batch = 0;
};

/// Rebuild the configuration from a [plan] section. Throws
/// std::runtime_error on unknown keys or malformed values.
LoadedPlan plan_from_section(const Section& s);

/// Load a plan from a file containing a [plan] section.
LoadedPlan load_plan_file(const std::string& path);

}  // namespace tfpe::io
