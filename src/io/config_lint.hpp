#pragma once
// Config-file schema lint with line-accurate locations (`tfpe lint
// path.tfpe`). Where the loaders throw on the first problem, this pass
// reports every schema violation in one go, each anchored to the file and
// line that caused it:
//
//   config-parse            the file does not parse at all ([section] /
//                           key = value syntax)
//   config-unknown-section  a section no loader consumes (warning — the
//                           loaders ignore it silently today)
//   config-unknown-key      a key its section's schema does not define
//   config-value            a value the loader or validator rejects
//   config-list-length      a [topology] per-level list whose length does
//                           not match the declared levels
//   config-missing-key      a required key is absent
//
// Sections understood: [model], [system], [topology], [plan], [sweep],
// [codesign] (iso-parameter shape-family options for `tfpe codesign`, with
// its own TFPE-CODESIGN rules: budget band, enumeration axes, and an
// empty-family warning when a [model] is present) and the forward-looking
// [calibration] block (measured-run anchors for the calibration workflow:
// compute_efficiency / bandwidth_efficiency in (0, 1], positive
// global_batch / measured_seconds). Successfully built
// [system]/[topology] objects are additionally run through
// analysis::lint_system / lint_topology so a schema-clean file with an
// unsound machine description still fails strict mode.

#include <istream>
#include <string>

#include "analysis/invariants.hpp"

namespace tfpe::io {

/// Lint config text; `filename` anchors the diagnostics' locations.
analysis::LintReport lint_config_text(std::istream& in,
                                      const std::string& filename,
                                      const analysis::LintOptions& opts = {});

/// Lint a config file on disk (config-parse when unreadable).
analysis::LintReport lint_config_file(const std::string& path,
                                      const analysis::LintOptions& opts = {});

}  // namespace tfpe::io
