#include "io/plan_io.hpp"

#include <fstream>
#include <set>
#include <stdexcept>

#include "util/units.hpp"

namespace tfpe::io {

namespace {

std::string strategy_key(parallel::TpStrategy s) {
  switch (s) {
    case parallel::TpStrategy::TP1D: return "1d";
    case parallel::TpStrategy::TP2D: return "2d";
    case parallel::TpStrategy::Summa2D: return "summa";
  }
  return "?";
}

std::int64_t require_int(const Section& s, const std::string& key) {
  const auto it = s.find(key);
  if (it == s.end()) {
    throw std::runtime_error("plan: missing key '" + key + "'");
  }
  std::size_t pos = 0;
  const std::int64_t v = std::stoll(it->second, &pos);
  if (pos != it->second.size() || v < 1) {
    throw std::runtime_error("plan: '" + key + "' must be a positive integer");
  }
  return v;
}

std::int64_t optional_int(const Section& s, const std::string& key,
                          std::int64_t fallback) {
  return s.count(key) ? require_int(s, key) : fallback;
}

}  // namespace

void write_plan(std::ostream& os, const core::EvalResult& result,
                std::int64_t global_batch) {
  const auto& c = result.cfg;
  os << "# tfpe training plan: " << c.describe() << "\n";
  if (result.feasible) {
    os << "# iteration " << util::format_time(result.iteration()) << ", HBM "
       << util::format_bytes(result.mem.total()) << "\n";
  }
  os << "[plan]\n";
  os << "strategy = " << strategy_key(c.strategy) << "\n";
  os << "n1 = " << c.n1 << "\nn2 = " << c.n2 << "\nnp = " << c.np
     << "\nnd = " << c.nd << "\n";
  os << "microbatches = " << c.microbatches << "\n";
  if (c.nb != 1) os << "nb = " << c.nb << "\n";
  if (c.interleave != 1) os << "interleave = " << c.interleave << "\n";
  if (c.zero == parallel::ZeroStage::kWeights) os << "zero = 3\n";
  os << "nvs1 = " << c.nvs1 << "\nnvs2 = " << c.nvs2 << "\nnvsp = " << c.nvsp
     << "\nnvsd = " << c.nvsd << "\n";
  os << "global_batch = " << global_batch << "\n";
}

void write_plan_file(const std::string& path, const core::EvalResult& result,
                     std::int64_t global_batch) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_plan_file: cannot open " + path);
  write_plan(out, result, global_batch);
}

LoadedPlan plan_from_section(const Section& s) {
  const std::set<std::string> known{"strategy",     "n1",   "n2",   "np",
                                    "nd",           "microbatches", "nb",
                                    "interleave",   "zero", "nvs1", "nvs2",
                                    "nvsp",         "nvsd", "global_batch"};
  for (const auto& [key, value] : s) {
    (void)value;
    if (!known.count(key)) {
      throw std::runtime_error("plan: unknown key '" + key + "'");
    }
  }
  LoadedPlan plan;
  const auto strat = s.find("strategy");
  if (strat == s.end()) throw std::runtime_error("plan: missing strategy");
  if (strat->second == "1d") plan.cfg.strategy = parallel::TpStrategy::TP1D;
  else if (strat->second == "2d") plan.cfg.strategy = parallel::TpStrategy::TP2D;
  else if (strat->second == "summa") {
    plan.cfg.strategy = parallel::TpStrategy::Summa2D;
  } else {
    throw std::runtime_error("plan: unknown strategy '" + strat->second + "'");
  }
  plan.cfg.n1 = require_int(s, "n1");
  plan.cfg.n2 = optional_int(s, "n2", 1);
  plan.cfg.np = require_int(s, "np");
  plan.cfg.nd = require_int(s, "nd");
  plan.cfg.microbatches = require_int(s, "microbatches");
  plan.cfg.nb = optional_int(s, "nb", 1);
  plan.cfg.interleave = optional_int(s, "interleave", 1);
  if (optional_int(s, "zero", 1) == 3) {
    plan.cfg.zero = parallel::ZeroStage::kWeights;
  }
  plan.cfg.nvs1 = optional_int(s, "nvs1", 1);
  plan.cfg.nvs2 = optional_int(s, "nvs2", 1);
  plan.cfg.nvsp = optional_int(s, "nvsp", 1);
  plan.cfg.nvsd = optional_int(s, "nvsd", 1);
  plan.global_batch = require_int(s, "global_batch");
  return plan;
}

LoadedPlan load_plan_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open plan file " + path);
  const ConfigSections sections = parse_config(in);
  const auto it = sections.find("plan");
  if (it == sections.end()) {
    throw std::runtime_error(path + " has no [plan] section");
  }
  return plan_from_section(it->second);
}

}  // namespace tfpe::io
