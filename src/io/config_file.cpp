#include "io/config_file.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/units.hpp"

namespace tfpe::io {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::int64_t to_int(const Section& s, const std::string& key,
                    std::int64_t fallback) {
  const auto it = s.find(key);
  if (it == s.end()) return fallback;
  std::size_t pos = 0;
  const std::int64_t v = std::stoll(it->second, &pos);
  if (pos != it->second.size()) {
    throw std::runtime_error("config: '" + key + "' expects an integer, got '" +
                             it->second + "'");
  }
  return v;
}

double to_double(const Section& s, const std::string& key, double fallback) {
  const auto it = s.find(key);
  if (it == s.end()) return fallback;
  std::size_t pos = 0;
  const double v = std::stod(it->second, &pos);
  if (pos != it->second.size()) {
    throw std::runtime_error("config: '" + key + "' expects a number, got '" +
                             it->second + "'");
  }
  return v;
}

void reject_unknown(const Section& s, const std::set<std::string>& known,
                    const std::string& section) {
  for (const auto& [key, value] : s) {
    (void)value;
    if (!known.count(key)) {
      throw std::runtime_error("config: unknown key '" + key + "' in [" +
                               section + "]");
    }
  }
}

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(value);
  while (std::getline(in, item, ',')) out.push_back(trim(item));
  return out;
}

/// Per-level list of doubles: missing key -> `n` copies of `fallback`;
/// present key must have exactly `n` comma-separated entries.
std::vector<double> double_list(const Section& s, const std::string& key,
                                std::size_t n, double fallback) {
  const auto it = s.find(key);
  if (it == s.end()) return std::vector<double>(n, fallback);
  const auto items = split_list(it->second);
  if (items.size() != n) {
    throw std::runtime_error("config: '" + key + "' has " +
                             std::to_string(items.size()) + " entries, [" +
                             "topology] declares " + std::to_string(n) +
                             " levels");
  }
  std::vector<double> out;
  out.reserve(n);
  for (const auto& item : items) {
    std::size_t pos = 0;
    double v = 0;
    try {
      v = std::stod(item, &pos);
    } catch (const std::exception&) {
      pos = std::string::npos;
    }
    if (pos != item.size()) {
      throw std::runtime_error("config: '" + key + "' expects numbers, got '" +
                               item + "'");
    }
    out.push_back(v);
  }
  return out;
}

/// Variable-length comma-separated integer list; missing key -> fallback.
std::vector<std::int64_t> int_list(const Section& s, const std::string& key,
                                   std::vector<std::int64_t> fallback) {
  const auto it = s.find(key);
  if (it == s.end()) return fallback;
  std::vector<std::int64_t> out;
  for (const auto& item : split_list(it->second)) {
    std::size_t pos = 0;
    std::int64_t v = 0;
    try {
      v = std::stoll(item, &pos);
    } catch (const std::exception&) {
      pos = std::string::npos;
    }
    if (pos != item.size()) {
      throw std::runtime_error("config: '" + key +
                               "' expects integers, got '" + item + "'");
    }
    out.push_back(v);
  }
  return out;
}

std::string join_list(const std::vector<double>& values) {
  std::ostringstream out;
  out.precision(17);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out << ", ";
    out << values[i];
  }
  return out.str();
}

}  // namespace

ConfigSections parse_config(std::istream& in) {
  return parse_config(in, nullptr);
}

ConfigSections parse_config(std::istream& in, ConfigLocations* locations) {
  ConfigSections sections;
  std::string line;
  std::string current = "";
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        throw std::runtime_error("config line " + std::to_string(lineno) +
                                 ": unterminated section header");
      }
      current = trim(line.substr(1, line.size() - 2));
      sections[current];
      if (locations && !(*locations).count(current)) {
        (*locations)[current].line = lineno;
      }
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("config line " + std::to_string(lineno) +
                               ": expected 'key = value'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("config line " + std::to_string(lineno) +
                               ": empty key");
    }
    sections[current][key] = value;
    if (locations) (*locations)[current].keys[key] = lineno;
  }
  return sections;
}

model::TransformerConfig model_from_section(const Section& s) {
  reject_unknown(s,
                 {"name", "seq_len", "embed", "heads", "depth", "hidden",
                  "kv_heads", "vocab", "attention", "window", "moe_experts",
                  "moe_top_k", "preset"},
                 "model");
  if (const auto it = s.find("preset"); it != s.end()) {
    const auto preset = model::preset_by_name(it->second);
    if (!preset) {
      throw std::runtime_error("config: unknown model preset '" + it->second +
                               "'");
    }
    return *preset;
  }
  model::TransformerConfig m;
  const auto name = s.find("name");
  m.name = name != s.end() ? name->second : "custom";
  m.seq_len = to_int(s, "seq_len", 0);
  m.embed = to_int(s, "embed", 0);
  m.heads = to_int(s, "heads", 0);
  m.depth = to_int(s, "depth", 0);
  m.hidden = to_int(s, "hidden", 4 * m.embed);
  m.kv_heads = to_int(s, "kv_heads", 0);
  m.vocab = to_int(s, "vocab", 0);
  m.window = to_int(s, "window", 0);
  m.moe_experts = to_int(s, "moe_experts", 0);
  m.moe_top_k = to_int(s, "moe_top_k", 2);
  if (const auto it = s.find("attention"); it != s.end()) {
    if (it->second == "full") m.attention = model::AttentionKind::kFull;
    else if (it->second == "windowed") m.attention = model::AttentionKind::kWindowed;
    else if (it->second == "linear") m.attention = model::AttentionKind::kLinear;
    else {
      throw std::runtime_error("config: unknown attention '" + it->second +
                               "' (full|windowed|linear)");
    }
  }
  try {
    m.validate();
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("config: invalid [model]: ") +
                             e.what());
  }
  return m;
}

hw::SystemConfig system_from_section(const Section& s) {
  reject_unknown(s,
                 {"gpu", "tensor_tflops", "vector_tflops", "flops_latency",
                  "hbm_gb", "hbm_gbs", "nvs_gbs", "nvs_latency", "ib_gbs",
                  "ib_latency", "nics_per_gpu", "efficiency", "nvs_domain",
                  "n_gpus", "host_gbs", "enable_tree", "pod_size",
                  "oversubscription"},
                 "system");
  hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8, 1024);
  if (const auto it = s.find("gpu"); it != s.end()) {
    if (it->second == "a100") sys = hw::make_system(hw::GpuGeneration::A100, 8, 1024);
    else if (it->second == "h200") sys = hw::make_system(hw::GpuGeneration::H200, 8, 1024);
    else if (it->second == "b200") sys = hw::make_system(hw::GpuGeneration::B200, 8, 1024);
    else {
      throw std::runtime_error("config: unknown gpu preset '" + it->second +
                               "' (a100|h200|b200)");
    }
  }
  sys.gpu.tensor_flops = FlopsPerSec(
      to_double(s, "tensor_tflops", sys.gpu.tensor_flops.value() / 1e12) * 1e12);
  sys.gpu.vector_flops = FlopsPerSec(
      to_double(s, "vector_tflops", sys.gpu.vector_flops.value() / 1e12) * 1e12);
  sys.gpu.flops_latency =
      Seconds(to_double(s, "flops_latency", sys.gpu.flops_latency.value()));
  sys.gpu.hbm_capacity =
      Bytes(to_double(s, "hbm_gb", sys.gpu.hbm_capacity.value() / 1e9) * 1e9);
  sys.gpu.hbm_bandwidth = BytesPerSec(
      to_double(s, "hbm_gbs", sys.gpu.hbm_bandwidth.value() / 1e9) * 1e9);
  sys.net.nvs_bandwidth = BytesPerSec(
      to_double(s, "nvs_gbs", sys.net.nvs_bandwidth.value() / 1e9) * 1e9);
  sys.net.nvs_latency =
      Seconds(to_double(s, "nvs_latency", sys.net.nvs_latency.value()));
  sys.net.ib_bandwidth = BytesPerSec(
      to_double(s, "ib_gbs", sys.net.ib_bandwidth.value() / 1e9) * 1e9);
  sys.net.ib_latency =
      Seconds(to_double(s, "ib_latency", sys.net.ib_latency.value()));
  sys.net.nics_per_gpu = to_double(s, "nics_per_gpu", sys.net.nics_per_gpu);
  sys.net.efficiency = to_double(s, "efficiency", sys.net.efficiency);
  sys.net.enable_tree = to_int(s, "enable_tree", 0) != 0;
  sys.net.pod_size = to_int(s, "pod_size", 0);
  sys.net.oversubscription = to_double(s, "oversubscription", 1.0);
  sys.nvs_domain = to_int(s, "nvs_domain", sys.nvs_domain);
  sys.n_gpus = to_int(s, "n_gpus", sys.n_gpus);
  sys.host_bandwidth = BytesPerSec(
      to_double(s, "host_gbs", sys.host_bandwidth.value() / 1e9) * 1e9);
  return sys;
}

hw::Topology topology_from_section(const Section& s) {
  reject_unknown(s,
                 {"levels", "fan_in", "latency_us", "gbs", "rails", "pod_size",
                  "oversubscription", "efficiency", "enable_tree", "enable_ll",
                  "ll_latency_scale", "ll_bandwidth_scale",
                  "enable_hierarchical"},
                 "topology");
  const auto lv = s.find("levels");
  if (lv == s.end()) {
    throw std::runtime_error("config: [topology] requires 'levels'");
  }
  const std::vector<std::string> names = split_list(lv->second);
  const std::size_t n = names.size();
  if (n == 0) {
    throw std::runtime_error("config: [topology] 'levels' is empty");
  }
  if (n > hw::Topology::kMaxDepth) {
    throw std::runtime_error(
        "config: [topology] has " + std::to_string(n) + " levels, at most " +
        std::to_string(hw::Topology::kMaxDepth) + " supported");
  }
  const auto fan = double_list(s, "fan_in", n, 1.0);
  const auto latency_us = double_list(s, "latency_us", n, 0.0);
  const auto gbs = double_list(s, "gbs", n, 0.0);
  const auto rails = double_list(s, "rails", n, 1.0);
  const auto pods = double_list(s, "pod_size", n, 0.0);
  const auto oversub = double_list(s, "oversubscription", n, 1.0);
  if (s.find("gbs") == s.end()) {
    throw std::runtime_error("config: [topology] requires 'gbs'");
  }

  hw::Topology topo;
  topo.efficiency = to_double(s, "efficiency", topo.efficiency);
  topo.enable_tree = to_int(s, "enable_tree", 0) != 0;
  topo.enable_ll = to_int(s, "enable_ll", 0) != 0;
  topo.ll_latency_scale =
      to_double(s, "ll_latency_scale", topo.ll_latency_scale);
  topo.ll_bandwidth_scale =
      to_double(s, "ll_bandwidth_scale", topo.ll_bandwidth_scale);
  topo.enable_hierarchical = to_int(s, "enable_hierarchical", 0) != 0;
  for (std::size_t i = 0; i < n; ++i) {
    hw::FabricLevel level;
    level.name = names[i];
    level.fan_in = static_cast<std::int64_t>(fan[i]);
    level.latency = Seconds(latency_us[i] * 1e-6);
    level.bandwidth = BytesPerSec(gbs[i] * 1e9);
    level.rails = rails[i];
    level.pod_size = static_cast<std::int64_t>(pods[i]);
    level.oversubscription = oversub[i];
    if (level.name.empty()) {
      throw std::runtime_error("config: [topology] level " +
                               std::to_string(i) + " has an empty name");
    }
    if (!(level.bandwidth > BytesPerSec(0))) {
      throw std::runtime_error("config: [topology] level '" + level.name +
                               "' needs a positive bandwidth");
    }
    if (level.latency < Seconds(0)) {
      throw std::runtime_error("config: [topology] level '" + level.name +
                               "' has a negative latency");
    }
    if (!(level.rails > 0.0)) {
      throw std::runtime_error("config: [topology] level '" + level.name +
                               "' needs positive rails");
    }
    if (level.oversubscription < 1.0) {
      throw std::runtime_error("config: [topology] level '" + level.name +
                               "' has oversubscription < 1");
    }
    topo.levels.push_back(level);
  }
  return topo;
}

Section topology_to_section(const hw::Topology& topo) {
  Section s;
  std::vector<double> fan, latency_us, gbs, rails, pods, oversub;
  std::string names;
  for (std::size_t i = 0; i < topo.levels.size(); ++i) {
    const hw::FabricLevel& lvl = topo.levels[i];
    if (i) names += ", ";
    names += lvl.name;
    fan.push_back(static_cast<double>(lvl.fan_in));
    latency_us.push_back(lvl.latency.value() * 1e6);
    gbs.push_back(lvl.bandwidth.value() / 1e9);
    rails.push_back(lvl.rails);
    pods.push_back(static_cast<double>(lvl.pod_size));
    oversub.push_back(lvl.oversubscription);
  }
  s["levels"] = names;
  s["fan_in"] = join_list(fan);
  s["latency_us"] = join_list(latency_us);
  s["gbs"] = join_list(gbs);
  s["rails"] = join_list(rails);
  s["pod_size"] = join_list(pods);
  s["oversubscription"] = join_list(oversub);
  s["efficiency"] = join_list({topo.efficiency});
  s["enable_tree"] = topo.enable_tree ? "1" : "0";
  s["enable_ll"] = topo.enable_ll ? "1" : "0";
  s["ll_latency_scale"] = join_list({topo.ll_latency_scale});
  s["ll_bandwidth_scale"] = join_list({topo.ll_bandwidth_scale});
  s["enable_hierarchical"] = topo.enable_hierarchical ? "1" : "0";
  return s;
}

model::ShapeFamilyOptions codesign_from_section(const Section& s) {
  reject_unknown(s,
                 {"target_params_b", "tolerance", "depths", "depth_min",
                  "depth_max", "depth_step", "heads", "heads_min", "heads_max",
                  "heads_step", "head_dims", "aspect_min", "aspect_max",
                  "hidden_multiple", "kv_heads", "moe_experts"},
                 "codesign");
  model::ShapeFamilyOptions opts;
  const double billions = to_double(s, "target_params_b", 0.0);
  if (billions < 0.0) {
    throw std::runtime_error(
        "config: [codesign] target_params_b must be >= 0 (0 = the [model]'s "
        "own total)");
  }
  opts.target_params = static_cast<std::int64_t>(billions * 1e9);
  opts.tolerance = to_double(s, "tolerance", opts.tolerance);
  if (!(opts.tolerance > 0.0) || !(opts.tolerance < 1.0)) {
    throw std::runtime_error(
        "config: [codesign] tolerance must lie in (0, 1)");
  }
  opts.depths = int_list(s, "depths", {});
  opts.depth_min = to_int(s, "depth_min", opts.depth_min);
  opts.depth_max = to_int(s, "depth_max", opts.depth_max);
  opts.depth_step = to_int(s, "depth_step", opts.depth_step);
  opts.heads = int_list(s, "heads", {});
  opts.heads_min = to_int(s, "heads_min", opts.heads_min);
  opts.heads_max = to_int(s, "heads_max", opts.heads_max);
  opts.heads_step = to_int(s, "heads_step", opts.heads_step);
  opts.head_dims = int_list(s, "head_dims", opts.head_dims);
  opts.aspect_min = to_double(s, "aspect_min", opts.aspect_min);
  opts.aspect_max = to_double(s, "aspect_max", opts.aspect_max);
  opts.hidden_multiple = to_int(s, "hidden_multiple", opts.hidden_multiple);
  opts.kv_heads = int_list(s, "kv_heads", opts.kv_heads);
  opts.moe_experts = int_list(s, "moe_experts", opts.moe_experts);
  // Re-run shape_family's own axis validation so a bad section fails here,
  // at load time, not later inside the search. A tiny probe base is enough:
  // validation happens before any shape is generated.
  try {
    (void)model::shape_family(model::gpt3_175b(), opts);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("config: [codesign] ") + e.what());
  }
  return opts;
}

core::ServingSpec serving_from_section(const Section& s) {
  reject_unknown(s,
                 {"prompt_len", "output_len", "tp", "pp", "batch",
                  "kv_cap_fraction", "max_batch"},
                 "serving");
  core::ServingSpec spec;
  spec.prompt_len = to_int(s, "prompt_len", spec.prompt_len);
  spec.output_len = to_int(s, "output_len", spec.output_len);
  spec.tp = int_list(s, "tp", spec.tp);
  spec.pp = int_list(s, "pp", spec.pp);
  spec.batch = int_list(s, "batch", spec.batch);
  spec.kv_cap_fraction = to_double(s, "kv_cap_fraction", spec.kv_cap_fraction);
  spec.max_batch = to_int(s, "max_batch", spec.max_batch);
  if (spec.prompt_len < 1 || spec.output_len < 1) {
    throw std::runtime_error(
        "config: [serving] prompt_len and output_len must be >= 1");
  }
  if (!(spec.kv_cap_fraction > 0.0) || spec.kv_cap_fraction > 1.0) {
    throw std::runtime_error(
        "config: [serving] kv_cap_fraction must lie in (0, 1]");
  }
  if (spec.tp.empty() || spec.pp.empty() || spec.batch.empty()) {
    throw std::runtime_error(
        "config: [serving] tp, pp and batch lists must be non-empty");
  }
  for (const auto* axis : {&spec.tp, &spec.pp, &spec.batch}) {
    for (const std::int64_t v : *axis) {
      if (v < 1) {
        throw std::runtime_error(
            "config: [serving] tp/pp/batch entries must be >= 1");
      }
    }
  }
  if (spec.max_batch < 0) {
    throw std::runtime_error("config: [serving] max_batch must be >= 0");
  }
  return spec;
}

LoadedConfig load_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open config file " + path);
  const ConfigSections sections = parse_config(in);
  LoadedConfig out;
  if (const auto it = sections.find("model"); it != sections.end()) {
    out.model = model_from_section(it->second);
  }
  if (const auto it = sections.find("system"); it != sections.end()) {
    out.system = system_from_section(it->second);
  }
  if (const auto it = sections.find("topology"); it != sections.end()) {
    out.topology = topology_from_section(it->second);
    if (out.system) out.system->fabric = *out.topology;
  }
  if (const auto it = sections.find("codesign"); it != sections.end()) {
    out.codesign = codesign_from_section(it->second);
  }
  if (const auto it = sections.find("serving"); it != sections.end()) {
    out.serving = serving_from_section(it->second);
  }
  return out;
}

}  // namespace tfpe::io
