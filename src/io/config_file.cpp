#include "io/config_file.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/units.hpp"

namespace tfpe::io {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::int64_t to_int(const Section& s, const std::string& key,
                    std::int64_t fallback) {
  const auto it = s.find(key);
  if (it == s.end()) return fallback;
  std::size_t pos = 0;
  const std::int64_t v = std::stoll(it->second, &pos);
  if (pos != it->second.size()) {
    throw std::runtime_error("config: '" + key + "' expects an integer, got '" +
                             it->second + "'");
  }
  return v;
}

double to_double(const Section& s, const std::string& key, double fallback) {
  const auto it = s.find(key);
  if (it == s.end()) return fallback;
  std::size_t pos = 0;
  const double v = std::stod(it->second, &pos);
  if (pos != it->second.size()) {
    throw std::runtime_error("config: '" + key + "' expects a number, got '" +
                             it->second + "'");
  }
  return v;
}

void reject_unknown(const Section& s, const std::set<std::string>& known,
                    const std::string& section) {
  for (const auto& [key, value] : s) {
    (void)value;
    if (!known.count(key)) {
      throw std::runtime_error("config: unknown key '" + key + "' in [" +
                               section + "]");
    }
  }
}

}  // namespace

ConfigSections parse_config(std::istream& in) {
  ConfigSections sections;
  std::string line;
  std::string current = "";
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        throw std::runtime_error("config line " + std::to_string(lineno) +
                                 ": unterminated section header");
      }
      current = trim(line.substr(1, line.size() - 2));
      sections[current];
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("config line " + std::to_string(lineno) +
                               ": expected 'key = value'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("config line " + std::to_string(lineno) +
                               ": empty key");
    }
    sections[current][key] = value;
  }
  return sections;
}

model::TransformerConfig model_from_section(const Section& s) {
  reject_unknown(s,
                 {"name", "seq_len", "embed", "heads", "depth", "hidden",
                  "kv_heads", "vocab", "attention", "window", "moe_experts",
                  "moe_top_k", "preset"},
                 "model");
  if (const auto it = s.find("preset"); it != s.end()) {
    const auto preset = model::preset_by_name(it->second);
    if (!preset) {
      throw std::runtime_error("config: unknown model preset '" + it->second +
                               "'");
    }
    return *preset;
  }
  model::TransformerConfig m;
  const auto name = s.find("name");
  m.name = name != s.end() ? name->second : "custom";
  m.seq_len = to_int(s, "seq_len", 0);
  m.embed = to_int(s, "embed", 0);
  m.heads = to_int(s, "heads", 0);
  m.depth = to_int(s, "depth", 0);
  m.hidden = to_int(s, "hidden", 4 * m.embed);
  m.kv_heads = to_int(s, "kv_heads", 0);
  m.vocab = to_int(s, "vocab", 0);
  m.window = to_int(s, "window", 0);
  m.moe_experts = to_int(s, "moe_experts", 0);
  m.moe_top_k = to_int(s, "moe_top_k", 2);
  if (const auto it = s.find("attention"); it != s.end()) {
    if (it->second == "full") m.attention = model::AttentionKind::kFull;
    else if (it->second == "windowed") m.attention = model::AttentionKind::kWindowed;
    else if (it->second == "linear") m.attention = model::AttentionKind::kLinear;
    else {
      throw std::runtime_error("config: unknown attention '" + it->second +
                               "' (full|windowed|linear)");
    }
  }
  try {
    m.validate();
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("config: invalid [model]: ") +
                             e.what());
  }
  return m;
}

hw::SystemConfig system_from_section(const Section& s) {
  reject_unknown(s,
                 {"gpu", "tensor_tflops", "vector_tflops", "flops_latency",
                  "hbm_gb", "hbm_gbs", "nvs_gbs", "nvs_latency", "ib_gbs",
                  "ib_latency", "nics_per_gpu", "efficiency", "nvs_domain",
                  "n_gpus", "host_gbs", "enable_tree", "pod_size",
                  "oversubscription"},
                 "system");
  hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8, 1024);
  if (const auto it = s.find("gpu"); it != s.end()) {
    if (it->second == "a100") sys = hw::make_system(hw::GpuGeneration::A100, 8, 1024);
    else if (it->second == "h200") sys = hw::make_system(hw::GpuGeneration::H200, 8, 1024);
    else if (it->second == "b200") sys = hw::make_system(hw::GpuGeneration::B200, 8, 1024);
    else {
      throw std::runtime_error("config: unknown gpu preset '" + it->second +
                               "' (a100|h200|b200)");
    }
  }
  sys.gpu.tensor_flops = FlopsPerSec(
      to_double(s, "tensor_tflops", sys.gpu.tensor_flops.value() / 1e12) * 1e12);
  sys.gpu.vector_flops = FlopsPerSec(
      to_double(s, "vector_tflops", sys.gpu.vector_flops.value() / 1e12) * 1e12);
  sys.gpu.flops_latency =
      Seconds(to_double(s, "flops_latency", sys.gpu.flops_latency.value()));
  sys.gpu.hbm_capacity =
      Bytes(to_double(s, "hbm_gb", sys.gpu.hbm_capacity.value() / 1e9) * 1e9);
  sys.gpu.hbm_bandwidth = BytesPerSec(
      to_double(s, "hbm_gbs", sys.gpu.hbm_bandwidth.value() / 1e9) * 1e9);
  sys.net.nvs_bandwidth = BytesPerSec(
      to_double(s, "nvs_gbs", sys.net.nvs_bandwidth.value() / 1e9) * 1e9);
  sys.net.nvs_latency =
      Seconds(to_double(s, "nvs_latency", sys.net.nvs_latency.value()));
  sys.net.ib_bandwidth = BytesPerSec(
      to_double(s, "ib_gbs", sys.net.ib_bandwidth.value() / 1e9) * 1e9);
  sys.net.ib_latency =
      Seconds(to_double(s, "ib_latency", sys.net.ib_latency.value()));
  sys.net.nics_per_gpu = to_double(s, "nics_per_gpu", sys.net.nics_per_gpu);
  sys.net.efficiency = to_double(s, "efficiency", sys.net.efficiency);
  sys.net.enable_tree = to_int(s, "enable_tree", 0) != 0;
  sys.net.pod_size = to_int(s, "pod_size", 0);
  sys.net.oversubscription = to_double(s, "oversubscription", 1.0);
  sys.nvs_domain = to_int(s, "nvs_domain", sys.nvs_domain);
  sys.n_gpus = to_int(s, "n_gpus", sys.n_gpus);
  sys.host_bandwidth = BytesPerSec(
      to_double(s, "host_gbs", sys.host_bandwidth.value() / 1e9) * 1e9);
  return sys;
}

LoadedConfig load_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open config file " + path);
  const ConfigSections sections = parse_config(in);
  LoadedConfig out;
  if (const auto it = sections.find("model"); it != sections.end()) {
    out.model = model_from_section(it->second);
  }
  if (const auto it = sections.find("system"); it != sections.end()) {
    out.system = system_from_section(it->second);
  }
  return out;
}

}  // namespace tfpe::io
