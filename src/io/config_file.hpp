#pragma once
// Plain-text configuration files for custom models and systems, so users
// can describe their own foundation model / cluster without recompiling:
//
//   # comments and blank lines are ignored
//   [model]
//   name = my-foundation-model
//   seq_len = 16384
//   embed = 8192
//   heads = 64
//   depth = 32
//   hidden = 32768        # optional, default 4*embed
//   kv_heads = 8          # optional (GQA)
//   attention = windowed  # full | windowed | linear
//   window = 4096
//   moe_experts = 64      # optional
//   moe_top_k = 2
//
//   [system]
//   gpu = b200            # preset, or give the fields below
//   tensor_tflops = 2500
//   vector_tflops = 339
//   hbm_gb = 192
//   hbm_gbs = 8000
//   nvs_gbs = 900
//   ib_gbs = 100
//   nvs_domain = 8
//   n_gpus = 4096
//
// Unknown keys are errors (typo protection). Either section may be absent.

#include <istream>
#include <map>
#include <optional>
#include <string>

#include "hw/system.hpp"
#include "model/transformer.hpp"

namespace tfpe::io {

using Section = std::map<std::string, std::string>;
using ConfigSections = std::map<std::string, Section>;

/// Parse "[section]" / "key = value" syntax. Throws std::runtime_error with
/// a line number on malformed input.
ConfigSections parse_config(std::istream& in);

/// Build a validated TransformerConfig from a [model] section.
model::TransformerConfig model_from_section(const Section& s);

/// Build a SystemConfig from a [system] section. Preset fields may be
/// overridden by explicit values.
hw::SystemConfig system_from_section(const Section& s);

struct LoadedConfig {
  std::optional<model::TransformerConfig> model;
  std::optional<hw::SystemConfig> system;
};

/// Parse a whole file; throws std::runtime_error if it cannot be read.
LoadedConfig load_config_file(const std::string& path);

}  // namespace tfpe::io
