#pragma once
// Plain-text configuration files for custom models and systems, so users
// can describe their own foundation model / cluster without recompiling:
//
//   # comments and blank lines are ignored
//   [model]
//   name = my-foundation-model
//   seq_len = 16384
//   embed = 8192
//   heads = 64
//   depth = 32
//   hidden = 32768        # optional, default 4*embed
//   kv_heads = 8          # optional (GQA)
//   attention = windowed  # full | windowed | linear
//   window = 4096
//   moe_experts = 64      # optional
//   moe_top_k = 2
//
//   [system]
//   gpu = b200            # preset, or give the fields below
//   tensor_tflops = 2500
//   vector_tflops = 339
//   hbm_gb = 192
//   hbm_gbs = 8000
//   nvs_gbs = 900
//   ib_gbs = 100
//   nvs_domain = 8
//   n_gpus = 4096
//
//   [codesign]                     # iso-parameter shape-family options
//   target_params_b = 1000         # parameter budget [billions];
//                                  # 0/absent = the [model]'s total
//   tolerance = 0.02               # relative band around the target
//   depth_min = 32                 # range axes (inclusive, with step)...
//   depth_max = 160
//   depth_step = 16
//   depths = 48, 96, 192           # ...or an explicit list (wins over range)
//   heads_min = 32
//   heads_max = 256
//   heads_step = 16
//   heads = 64, 96
//   head_dims = 128, 160
//   aspect_min = 2.0               # admitted f/e window
//   aspect_max = 6.0
//   hidden_multiple = 128
//   kv_heads = 0, 8                # 0 = MHA
//   moe_experts = 0                # 0 = dense
//
//   [serving]                      # serve-plan grid (core::ServingSpec)
//   prompt_len = 2048              # input sequence length (ISL)
//   output_len = 256               # generated tokens per request (OSL)
//   tp = 1, 2, 4, 8                # tensor-parallel widths to sweep
//   pp = 1, 2                      # pipeline depths to sweep
//   batch = 1, 8, 32, 128          # requested resident requests
//   kv_cap_fraction = 0.9          # HBM share the KV cache may occupy
//   max_batch = 0                  # scheduler cap; 0 = uncapped
//
//   [topology]                     # optional hierarchical fabric override
//   levels = nvs, leaf, spine      # innermost first
//   fan_in = 8, 4, 16              # children per element; 0 = unbounded top
//   latency_us = 0.3, 2.5, 5.0     # per-hop latency [us]
//   gbs = 900, 50, 50              # per-link bandwidth [GB/s]
//   rails = 1, 8, 8                # optional NIC rails, default 1
//   pod_size = 0, 0, 1024          # optional oversubscription gate
//   oversubscription = 1, 1, 4     # optional taper ratio, default 1
//   efficiency = 0.7               # scalar knobs (achievable fraction)
//   enable_tree = 0
//   enable_ll = 0
//   enable_hierarchical = 0
//
// Unknown keys are errors (typo protection). Every section may be absent.
// A [topology] section is attached to the [system] as its resolved fabric
// (hw::SystemConfig::fabric); per-level lists must all have one entry per
// named level.

#include <istream>
#include <map>
#include <optional>
#include <string>

#include "core/workload.hpp"
#include "hw/system.hpp"
#include "model/shape_family.hpp"
#include "model/transformer.hpp"

namespace tfpe::io {

using Section = std::map<std::string, std::string>;
using ConfigSections = std::map<std::string, Section>;

/// Parse "[section]" / "key = value" syntax. Throws std::runtime_error with
/// a line number on malformed input.
ConfigSections parse_config(std::istream& in);

/// 1-based source lines of one section: the header and each key's line
/// (last occurrence when a key repeats, matching the parsed value).
struct SectionLocations {
  int line = 0;                    ///< "[section]" header line; 0 = implicit.
  std::map<std::string, int> keys;
};
using ConfigLocations = std::map<std::string, SectionLocations>;

/// As above, additionally recording where each section and key was defined
/// (for line-accurate schema diagnostics; `locations` may be null).
ConfigSections parse_config(std::istream& in, ConfigLocations* locations);

/// Build a validated TransformerConfig from a [model] section.
model::TransformerConfig model_from_section(const Section& s);

/// Build a SystemConfig from a [system] section. Preset fields may be
/// overridden by explicit values.
hw::SystemConfig system_from_section(const Section& s);

/// Build a fabric Topology from a [topology] section. Throws
/// std::runtime_error on mismatched list lengths, non-positive bandwidths /
/// rails, oversubscription < 1 or depth > hw::Topology::kMaxDepth.
hw::Topology topology_from_section(const Section& s);

/// Serialize a fabric back into [topology]-section form; round-trips
/// exactly through topology_from_section.
Section topology_to_section(const hw::Topology& topo);

/// Build shape-family options from a [codesign] section (target_params_b is
/// given in BILLIONS of parameters). Throws std::runtime_error on values
/// model::shape_family would reject — the same conditions io/config_lint
/// reports as TFPE-CODESIGN diagnostics.
model::ShapeFamilyOptions codesign_from_section(const Section& s);

/// Build a serve-plan grid from a [serving] section. Throws
/// std::runtime_error on non-positive lengths/axis entries, an empty axis
/// list, or kv_cap_fraction outside (0, 1] — the same conditions
/// io/config_lint reports as TFPE-CFG-004 diagnostics.
core::ServingSpec serving_from_section(const Section& s);

struct LoadedConfig {
  std::optional<model::TransformerConfig> model;
  std::optional<hw::SystemConfig> system;
  /// Parsed [topology], also attached to system->fabric when both exist.
  std::optional<hw::Topology> topology;
  /// Parsed [codesign] shape-family options (tfpe codesign's --config path).
  std::optional<model::ShapeFamilyOptions> codesign;
  /// Parsed [serving] grid (tfpe serve-plan's --config path).
  std::optional<core::ServingSpec> serving;
};

/// Parse a whole file; throws std::runtime_error if it cannot be read.
LoadedConfig load_config_file(const std::string& path);

}  // namespace tfpe::io
