#include "io/config_lint.hpp"

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/consistency.hpp"
#include "core/inference_estimate.hpp"
#include "hw/topology.hpp"
#include "io/config_file.hpp"
#include "io/plan_io.hpp"
#include "util/strings.hpp"

namespace tfpe::io {

namespace {

using analysis::DiagnosticSink;
using analysis::RuleId;

/// Per-section key schemas — mirror the reject_unknown sets of the loaders
/// (config_file.cpp / plan_io.cpp / tfpe_sweep.cpp).
const std::set<std::string>& section_keys(const std::string& section) {
  static const std::set<std::string> kModel{
      "name", "seq_len", "embed",       "heads",     "depth",
      "hidden", "kv_heads", "vocab",    "attention", "window",
      "moe_experts", "moe_top_k", "preset"};
  static const std::set<std::string> kSystem{
      "gpu", "tensor_tflops", "vector_tflops", "flops_latency", "hbm_gb",
      "hbm_gbs", "nvs_gbs", "nvs_latency", "ib_gbs", "ib_latency",
      "nics_per_gpu", "efficiency", "nvs_domain", "n_gpus", "host_gbs",
      "enable_tree", "pod_size", "oversubscription"};
  static const std::set<std::string> kTopology{
      "levels", "fan_in", "latency_us", "gbs", "rails", "pod_size",
      "oversubscription", "efficiency", "enable_tree", "enable_ll",
      "ll_latency_scale", "ll_bandwidth_scale", "enable_hierarchical"};
  static const std::set<std::string> kPlan{
      "strategy", "n1", "n2", "np", "nd", "microbatches", "nb", "interleave",
      "zero", "nvs1", "nvs2", "nvsp", "nvsd", "global_batch"};
  static const std::set<std::string> kSweep{
      "model", "gpu", "nvs", "oversub", "leaf", "gpus", "strategy", "batch",
      "output"};
  static const std::set<std::string> kCalibration{
      "compute_efficiency", "bandwidth_efficiency", "global_batch",
      "measured_seconds"};
  static const std::set<std::string> kCodesign{
      "target_params_b", "tolerance", "depths", "depth_min", "depth_max",
      "depth_step", "heads", "heads_min", "heads_max", "heads_step",
      "head_dims", "aspect_min", "aspect_max", "hidden_multiple", "kv_heads",
      "moe_experts"};
  static const std::set<std::string> kServing{
      "prompt_len", "output_len", "tp", "pp", "batch", "kv_cap_fraction",
      "max_batch"};
  static const std::set<std::string> kNone{};
  if (section == "model") return kModel;
  if (section == "system") return kSystem;
  if (section == "topology") return kTopology;
  if (section == "plan") return kPlan;
  if (section == "sweep") return kSweep;
  if (section == "calibration") return kCalibration;
  if (section == "codesign") return kCodesign;
  if (section == "serving") return kServing;
  return kNone;
}

bool known_section(const std::string& section) {
  return section == "model" || section == "system" || section == "topology" ||
         section == "plan" || section == "sweep" ||
         section == "calibration" || section == "codesign" ||
         section == "serving";
}

bool parses_as_double(const std::string& value, double* out = nullptr) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) return false;
    if (out) *out = v;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool parses_as_int(const std::string& value, std::int64_t* out = nullptr) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(value, &pos);
    if (pos != value.size()) return false;
    if (out) *out = v;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

/// Extract "N" from "config line N: ..." parser messages; 0 when absent.
int parse_error_line(const std::string& what) {
  const std::string tag = "config line ";
  const auto at = what.find(tag);
  if (at == std::string::npos) return 0;
  return std::atoi(what.c_str() + at + tag.size());
}

class ConfigLinter {
 public:
  ConfigLinter(const std::string& filename, const analysis::LintOptions& opts)
      : file_(filename), sink_(opts.rules), opts_(opts) {}

  analysis::LintReport run(std::istream& in) {
    try {
      sections_ = parse_config(in, &where_);
    } catch (const std::exception& e) {
      sink_.emit(RuleId::kConfigParse, "<file>", 0, 0, e.what(), std::nullopt,
                 file_, parse_error_line(e.what()));
      return sink_.take();
    }

    for (const auto& [name, section] : sections_) {
      if (name.empty()) {
        if (!section.empty()) {
          sink_.emit(RuleId::kConfigUnknownSection, "<preamble>", 0, 0,
                     "keys before the first [section] header belong to no "
                     "loader",
                     std::nullopt, file_, 0);
        }
        continue;
      }
      if (!known_section(name)) {
        sink_.emit(RuleId::kConfigUnknownSection, "[" + name + "]", 0, 0,
                   "no loader consumes section [" + name + "]", std::nullopt,
                   file_, section_line(name));
        continue;
      }
      lint_keys(name, section);
    }

    lint_model();
    lint_system_section();
    lint_topology_section();
    lint_plan();
    lint_sweep();
    lint_calibration();
    lint_codesign();
    lint_serving();
    return sink_.take();
  }

 private:
  int section_line(const std::string& section) const {
    const auto it = where_.find(section);
    return it == where_.end() ? 0 : it->second.line;
  }
  int key_line(const std::string& section, const std::string& key) const {
    const auto it = where_.find(section);
    if (it == where_.end()) return 0;
    const auto kt = it->second.keys.find(key);
    return kt == it->second.keys.end() ? 0 : kt->second;
  }
  const Section* section(const std::string& name) const {
    const auto it = sections_.find(name);
    return it == sections_.end() ? nullptr : &it->second;
  }

  void emit(RuleId rule, const std::string& section, const std::string& key,
            double expected, double actual, const std::string& message) {
    const int line = key.empty() ? section_line(section)
                                 : key_line(section, key);
    const std::string op =
        key.empty() ? "[" + section + "]" : "[" + section + "] " + key;
    sink_.emit(rule, op, expected, actual, message, std::nullopt, file_,
               line);
  }

  /// Unknown keys of a known section, each at its own line. Returns true
  /// when the section's key set is schema-clean (the loaders would not
  /// reject it for a typo).
  bool lint_keys(const std::string& name, const Section& s) {
    bool ok = true;
    const auto& known = section_keys(name);
    for (const auto& [key, value] : s) {
      (void)value;
      if (!known.count(key)) {
        emit(RuleId::kConfigUnknownKey, name, key, 0, 0,
             "unknown key '" + key + "' in [" + name + "]");
        ok = false;
      }
    }
    return ok;
  }

  /// Strip unknown keys so a builder can still run after config-unknown-key
  /// fired (we want ALL problems in one report, not the first throw).
  Section known_subset(const std::string& name, const Section& s) const {
    Section out;
    const auto& known = section_keys(name);
    for (const auto& [key, value] : s) {
      if (known.count(key)) out[key] = value;
    }
    return out;
  }

  void lint_model() {
    const Section* s = section("model");
    if (!s) return;
    try {
      (void)model_from_section(known_subset("model", *s));
    } catch (const std::exception& e) {
      emit(RuleId::kConfigValue, "model", "", 0, 0, e.what());
    }
  }

  void lint_system_section() {
    const Section* s = section("system");
    if (!s) return;
    try {
      hw::SystemConfig sys = system_from_section(known_subset("system", *s));
      if (const Section* t = section("topology")) {
        try {
          sys.fabric = topology_from_section(known_subset("topology", *t));
        } catch (const std::exception&) {
          // Reported by lint_topology_section; lint the system without it.
        }
      }
      sink_.merge(with_location(analysis::lint_system(sys, opts_),
                                section_line("system")));
    } catch (const std::exception& e) {
      emit(RuleId::kConfigValue, "system", "", 0, 0, e.what());
    }
  }

  void lint_topology_section() {
    const Section* s = section("topology");
    if (!s) return;
    // Required keys first (the builder throws on the first one only).
    bool required_ok = true;
    for (const char* key : {"levels", "gbs"}) {
      if (!s->count(key)) {
        emit(RuleId::kConfigMissingKey, "topology", "", 0, 0,
             std::string("[topology] requires '") + key + "'");
        required_ok = false;
      }
    }
    // Per-level list lengths, each at its own key line.
    bool lists_ok = true;
    std::size_t n = 0;
    if (const auto lv = s->find("levels"); lv != s->end()) {
      n = util::split_list(lv->second).size();
      for (const char* key : {"fan_in", "latency_us", "gbs", "rails",
                              "pod_size", "oversubscription"}) {
        const auto it = s->find(key);
        if (it == s->end()) continue;
        const std::size_t got = util::split_list(it->second).size();
        if (got != n) {
          std::ostringstream msg;
          msg << "'" << key << "' has " << got << " entries, 'levels' names "
              << n << " levels";
          emit(RuleId::kConfigListLength, "topology", key,
               static_cast<double>(n), static_cast<double>(got), msg.str());
          lists_ok = false;
        }
      }
    }
    if (!required_ok || !lists_ok) return;
    try {
      const hw::Topology topo =
          topology_from_section(known_subset("topology", *s));
      std::int64_t n_gpus = 0;
      if (const Section* sys = section("system")) {
        const auto it = sys->find("n_gpus");
        if (it != sys->end()) parses_as_int(it->second, &n_gpus);
      }
      sink_.merge(with_location(analysis::lint_topology(topo, n_gpus, opts_),
                                section_line("topology")));
    } catch (const std::exception& e) {
      emit(RuleId::kConfigValue, "topology", "", 0, 0, e.what());
    }
  }

  void lint_plan() {
    const Section* s = section("plan");
    if (!s) return;
    for (const char* key :
         {"strategy", "n1", "np", "nd", "microbatches", "global_batch"}) {
      if (!s->count(key)) {
        emit(RuleId::kConfigMissingKey, "plan", "", 0, 0,
             std::string("[plan] requires '") + key + "'");
      }
    }
    if (const auto it = s->find("strategy"); it != s->end()) {
      if (it->second != "1d" && it->second != "2d" &&
          it->second != "summa") {
        emit(RuleId::kConfigValue, "plan", "strategy", 0, 0,
             "unknown strategy '" + it->second + "' (1d|2d|summa)");
      }
    }
    for (const auto& [key, value] : *s) {
      if (key == "strategy" || !section_keys("plan").count(key)) continue;
      std::int64_t v = 0;
      if (!parses_as_int(value, &v) || v < 1) {
        emit(RuleId::kConfigValue, "plan", key, 1, 0,
             "'" + key + "' must be a positive integer, got '" + value +
                 "'");
      }
    }
  }

  void lint_sweep() {
    const Section* s = section("sweep");
    if (!s) return;
    const auto check_axis = [&](const std::string& key, auto&& valid,
                                const char* expect) {
      const auto it = s->find(key);
      if (it == s->end()) return;
      for (const std::string& item : util::split_list(it->second)) {
        if (!valid(item)) {
          emit(RuleId::kConfigValue, "sweep", key, 0, 0,
               "'" + key + "' entry '" + item + "' " + expect);
        }
      }
    };
    check_axis("model",
               [](const std::string& v) {
                 return model::preset_by_name(v).has_value();
               },
               "is not a known model preset");
    check_axis("gpu",
               [](const std::string& v) {
                 return v == "a100" || v == "h200" || v == "b200";
               },
               "is not a known gpu preset (a100|h200|b200)");
    check_axis("strategy",
               [](const std::string& v) {
                 return v == "1d" || v == "2d" || v == "summa";
               },
               "is not a strategy (1d|2d|summa)");
    const auto positive_int = [](const std::string& v) {
      std::int64_t i = 0;
      return parses_as_int(v, &i) && i >= 1;
    };
    check_axis("nvs", positive_int, "must be a positive integer");
    check_axis("gpus", positive_int, "must be a positive integer");
    check_axis("batch", positive_int, "must be a positive integer");
    check_axis("leaf", positive_int, "must be a positive integer");
    check_axis("oversub",
               [](const std::string& v) {
                 double d = 0;
                 return parses_as_double(v, &d) && d >= 1.0;
               },
               "must be a ratio >= 1");
  }

  void lint_calibration() {
    const Section* s = section("calibration");
    if (!s) return;
    for (const char* key : {"compute_efficiency", "bandwidth_efficiency"}) {
      const auto it = s->find(key);
      if (it == s->end()) continue;
      double v = 0;
      if (!parses_as_double(it->second, &v) || !(v > 0.0) || v > 1.0) {
        emit(RuleId::kConfigValue, "calibration", key, 0.7, v,
             std::string("'") + key + "' must be a fraction in (0, 1], got '" +
                 it->second + "'");
      }
    }
    if (const auto it = s->find("global_batch"); it != s->end()) {
      std::int64_t v = 0;
      if (!parses_as_int(it->second, &v) || v < 1) {
        emit(RuleId::kConfigValue, "calibration", "global_batch", 1, 0,
             "'global_batch' must be a positive integer, got '" + it->second +
                 "'");
      }
    }
    if (const auto it = s->find("measured_seconds"); it != s->end()) {
      double v = 0;
      if (!parses_as_double(it->second, &v) || !(v > 0.0)) {
        emit(RuleId::kConfigValue, "calibration", "measured_seconds", 1, v,
             "'measured_seconds' must be > 0, got '" + it->second + "'");
      }
    }
  }

  /// [codesign] shape-family options, each problem at its own key line:
  /// the parameter-budget band (TFPE-CODESIGN-001), every enumeration axis
  /// (TFPE-CODESIGN-002), and — when the section is otherwise sound and a
  /// [model] builds — a warning when the options enumerate zero shapes
  /// (TFPE-CODESIGN-003).
  void lint_codesign() {
    const Section* s = section("codesign");
    if (!s) return;
    bool ok = true;
    const auto bad = [&](RuleId rule, const std::string& key, double expected,
                         double actual, const std::string& message) {
      emit(rule, "codesign", key, expected, actual, message);
      ok = false;
    };

    // -- budget band (TFPE-CODESIGN-001)
    if (const auto it = s->find("target_params_b"); it != s->end()) {
      double v = 0;
      if (!parses_as_double(it->second, &v) || v < 0.0) {
        bad(RuleId::kCodesignBudget, "target_params_b", 0, v,
            "'target_params_b' must be a parameter count in billions >= 0 "
            "(0 = the [model]'s own total), got '" + it->second + "'");
      }
    }
    if (const auto it = s->find("tolerance"); it != s->end()) {
      double v = 0;
      if (!parses_as_double(it->second, &v) || !(v > 0.0) || !(v < 1.0)) {
        bad(RuleId::kCodesignBudget, "tolerance", 0.02, v,
            "'tolerance' must be a relative band in (0, 1), got '" +
                it->second + "'");
      }
    }

    // -- enumeration axes (TFPE-CODESIGN-002)
    const auto int_axis = [&](const std::string& key, std::int64_t lo,
                              const char* expect) {
      const auto it = s->find(key);
      if (it == s->end()) return;
      for (const std::string& item : util::split_list(it->second)) {
        std::int64_t v = 0;
        if (!parses_as_int(item, &v) || v < lo) {
          bad(RuleId::kCodesignAxis, key, static_cast<double>(lo),
              static_cast<double>(v),
              "'" + key + "' entry '" + item + "' " + expect);
        }
      }
    };
    int_axis("depths", 1, "must be a positive layer count");
    int_axis("heads", 1, "must be a positive head count");
    int_axis("head_dims", 1, "must be a positive head dimension");
    int_axis("kv_heads", 0, "must be a K/V head count >= 0 (0 = MHA)");
    int_axis("moe_experts", 0, "must be an expert count >= 0 (0 = dense)");
    const auto range_axis = [&](const std::string& axis) {
      std::int64_t lo = 0, hi = 0, step = 1;
      bool have_lo = false, have_hi = false;
      for (const char* suffix : {"_min", "_max", "_step"}) {
        const std::string key = axis + suffix;
        const auto it = s->find(key);
        if (it == s->end()) continue;
        std::int64_t v = 0;
        if (!parses_as_int(it->second, &v) || v < 1) {
          bad(RuleId::kCodesignAxis, key, 1, static_cast<double>(v),
              "'" + key + "' must be a positive integer, got '" + it->second +
                  "'");
          return;
        }
        if (suffix == std::string("_min")) { lo = v; have_lo = true; }
        else if (suffix == std::string("_max")) { hi = v; have_hi = true; }
        else step = v;
      }
      (void)step;
      if (have_lo && have_hi && lo > hi) {
        bad(RuleId::kCodesignAxis, axis + "_min", static_cast<double>(hi),
            static_cast<double>(lo),
            "'" + axis + "_min' exceeds '" + axis + "_max'");
      }
    };
    range_axis("depth");
    range_axis("heads");
    double aspect_min = 2.0, aspect_max = 6.0;
    if (const auto it = s->find("aspect_min"); it != s->end()) {
      if (!parses_as_double(it->second, &aspect_min) ||
          !(aspect_min > 0.0)) {
        bad(RuleId::kCodesignAxis, "aspect_min", 2.0, aspect_min,
            "'aspect_min' must be > 0, got '" + it->second + "'");
      }
    }
    if (const auto it = s->find("aspect_max"); it != s->end()) {
      if (!parses_as_double(it->second, &aspect_max) ||
          !(aspect_max > 0.0)) {
        bad(RuleId::kCodesignAxis, "aspect_max", 6.0, aspect_max,
            "'aspect_max' must be > 0, got '" + it->second + "'");
      }
    }
    if (ok && aspect_min > aspect_max) {
      bad(RuleId::kCodesignAxis, "aspect_min", aspect_max, aspect_min,
          "'aspect_min' exceeds 'aspect_max'");
    }
    if (const auto it = s->find("hidden_multiple"); it != s->end()) {
      std::int64_t v = 0;
      if (!parses_as_int(it->second, &v) || v < 1) {
        bad(RuleId::kCodesignAxis, "hidden_multiple", 128,
            static_cast<double>(v),
            "'hidden_multiple' must be a positive integer, got '" +
                it->second + "'");
      }
    }

    // -- empty family (TFPE-CODESIGN-003): only meaningful once the section
    //    itself is sound and a base [model] builds.
    if (!ok) return;
    const Section* m = section("model");
    if (!m) return;
    try {
      const auto base = model_from_section(known_subset("model", *m));
      const auto opts = codesign_from_section(known_subset("codesign", *s));
      const auto family = model::shape_family(base, opts);
      if (family.empty()) {
        emit(RuleId::kCodesignEmptyFamily, "codesign", "", 1, 0,
             "[codesign] enumerates zero shapes around " + base.name +
                 "'s parameter budget — widen the axes, the aspect window "
                 "or the tolerance");
      }
    } catch (const std::exception&) {
      // Model/section problems are reported by their own passes.
    }
  }

  /// [serving] serve-plan grid: per-key value checks (TFPE-CFG-004), then —
  /// when the section is sound and a [model] + [system] build — the
  /// feasibility screens: no (tp, pp) shape whose KV budget admits even one
  /// resident request at batch = 1 is an error (TFPE-SERVE-001), and a
  /// requested batch beyond what the best shape can keep resident is a
  /// warning (TFPE-SERVE-002) — the scheduler would silently clip it.
  void lint_serving() {
    const Section* s = section("serving");
    if (!s) return;
    bool ok = true;
    const auto bad = [&](const std::string& key, double expected,
                         double actual, const std::string& message) {
      emit(RuleId::kConfigValue, "serving", key, expected, actual, message);
      ok = false;
    };

    for (const char* key : {"prompt_len", "output_len"}) {
      const auto it = s->find(key);
      if (it == s->end()) continue;
      std::int64_t v = 0;
      if (!parses_as_int(it->second, &v) || v < 1) {
        bad(key, 1, static_cast<double>(v),
            std::string("'") + key + "' must be a positive token count, "
            "got '" + it->second + "'");
      }
    }
    for (const char* key : {"tp", "pp", "batch"}) {
      const auto it = s->find(key);
      if (it == s->end()) continue;
      for (const std::string& item : util::split_list(it->second)) {
        std::int64_t v = 0;
        if (!parses_as_int(item, &v) || v < 1) {
          bad(key, 1, static_cast<double>(v),
              std::string("'") + key + "' entry '" + item +
                  "' must be a positive integer");
        }
      }
    }
    if (const auto it = s->find("kv_cap_fraction"); it != s->end()) {
      double v = 0;
      if (!parses_as_double(it->second, &v) || !(v > 0.0) || v > 1.0) {
        bad("kv_cap_fraction", 0.9, v,
            "'kv_cap_fraction' must be an HBM fraction in (0, 1], got '" +
                it->second + "'");
      }
    }
    if (const auto it = s->find("max_batch"); it != s->end()) {
      std::int64_t v = 0;
      if (!parses_as_int(it->second, &v) || v < 0) {
        bad("max_batch", 0, static_cast<double>(v),
            "'max_batch' must be >= 0 (0 = uncapped), got '" + it->second +
                "'");
      }
    }

    // -- feasibility (TFPE-SERVE-001/002): needs a sound section plus a
    //    buildable [model] and [system].
    if (!ok) return;
    const Section* m = section("model");
    const Section* sys_s = section("system");
    if (!m || !sys_s) return;
    try {
      const auto mdl = model_from_section(known_subset("model", *m));
      hw::SystemConfig sys =
          system_from_section(known_subset("system", *sys_s));
      if (const Section* t = section("topology")) {
        try {
          sys.fabric = topology_from_section(known_subset("topology", *t));
        } catch (const std::exception&) {
          // Reported by lint_topology_section; screen without the override.
        }
      }
      const auto spec = serving_from_section(known_subset("serving", *s));
      const core::Workload w = spec.workload();
      std::int64_t requested = 0;
      for (const std::int64_t b : spec.batch) {
        if (spec.max_batch > 0 && b > spec.max_batch) continue;
        requested = std::max(requested, b);
      }
      bool any_resident = false;
      std::int64_t best_admitted = 0;
      for (const std::int64_t tp : spec.tp) {
        for (const std::int64_t pp : spec.pp) {
          core::ServingConfig sc;
          sc.tp = tp;
          sc.pp = pp;
          sc.batch = std::max<std::int64_t>(requested, 1);
          sc.kv_cap_fraction = spec.kv_cap_fraction;
          const auto est = core::estimate_serving(mdl, sys, w, sc);
          if (est.admitted_batch >= 1) any_resident = true;
          if (est.feasible) {
            best_admitted = std::max(best_admitted, est.admitted_batch);
          }
        }
      }
      if (!any_resident) {
        emit(RuleId::kServeKvBudget, "serving", "", 1, 0,
             "no (tp, pp) shape of the [serving] grid fits one request's KV "
             "cache next to the weights — raise tp/pp, shorten the context "
             "or raise kv_cap_fraction");
      } else if (requested > best_admitted && best_admitted > 0) {
        emit(RuleId::kServeBatchCap, "serving", "batch",
             static_cast<double>(best_admitted),
             static_cast<double>(requested),
             "requested batch " + std::to_string(requested) +
                 " exceeds the " + std::to_string(best_admitted) +
                 " requests the best shape can keep resident; the scheduler "
                 "will clip it");
      }
    } catch (const std::exception&) {
      // Model/system/section problems are reported by their own passes.
    }
  }

  /// Anchor a merged sub-report's diagnostics at this file (section line).
  analysis::LintReport with_location(analysis::LintReport r, int line) const {
    for (analysis::Diagnostic& d : r.diagnostics) {
      if (d.file.empty()) {
        d.file = file_;
        d.line = line;
      }
    }
    return r;
  }

  std::string file_;
  DiagnosticSink sink_;
  analysis::LintOptions opts_;
  ConfigSections sections_;
  ConfigLocations where_;
};

}  // namespace

analysis::LintReport lint_config_text(std::istream& in,
                                      const std::string& filename,
                                      const analysis::LintOptions& opts) {
  return ConfigLinter(filename, opts).run(in);
}

analysis::LintReport lint_config_file(const std::string& path,
                                      const analysis::LintOptions& opts) {
  std::ifstream in(path);
  if (!in) {
    DiagnosticSink sink(opts.rules);
    sink.emit(RuleId::kConfigParse, "<file>", 0, 0,
              "cannot open config file " + path, std::nullopt, path, 0);
    return sink.take();
  }
  return lint_config_text(in, path, opts);
}

}  // namespace tfpe::io
