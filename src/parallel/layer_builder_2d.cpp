// 2D tensor parallelism (paper Table II): n1 partitions heads/hidden as in
// 1D TP, the orthogonal n2 group additionally partitions the sequence
// (context parallelism). AllGathers of K and V across n2 rebuild the full
// keys/values per head group; every collective volume now scales with one
// grid dimension, and weights are replicated (shared) across n2 — the
// paper's noted memory cost of plain 2D TP.

#include <algorithm>

#include "ops/op_factory.hpp"
#include "parallel/layer_builder.hpp"
#include "parallel/moe_mlp.hpp"

namespace tfpe::parallel {

using ops::add_conjugate_comm;
using ops::Collective;
using ops::CommGroup;
using ops::kBytesPerElement;

LayerCost build_layer_2d(const model::TransformerConfig& mdl,
                         const ParallelConfig& cfg,
                         std::int64_t local_microbatch) {
  const double B = static_cast<double>(local_microbatch);
  const double l = static_cast<double>(mdl.seq_len);
  const double e = static_cast<double>(mdl.embed);
  const double f = static_cast<double>(mdl.hidden);
  const double h = static_cast<double>(mdl.heads);
  const double eh = static_cast<double>(mdl.head_dim());
  const double ekv = static_cast<double>(mdl.kv_embed());
  const double hkv = static_cast<double>(mdl.kv_heads_or_default());
  const double lkv = static_cast<double>(mdl.attended_len());
  const double n1 = static_cast<double>(cfg.n1);
  const double n2 = static_cast<double>(cfg.n2);

  const double l2 = l / n2;           // sequence shard seen by matmuls
  const double l12 = l / (n1 * n2);   // sequence shard in the LN regions
  const Bytes vol_ag = Bytes(kBytesPerElement * B * l2 * e);  // b*(l/n2)*e
  // K/V gather across n2: the full sequence for dense attention, only the
  // window halo for windowed attention (linear attention reduces an
  // (e_h x e_h) state instead — see below).
  const double kv_gather_len =
      mdl.attention == model::AttentionKind::kWindowed
          ? std::min(l, l2 + static_cast<double>(mdl.window))
          : l;
  const Bytes vol_kv = Bytes(kBytesPerElement * B * kv_gather_len * ekv / n1);

  LayerCost lc;
  auto& v = lc.ops;

  // --- Self-attention ---
  {
    auto ln = ops::layernorm("ln1", B * l12 * e);
    ln.detail = "X~:(b,l/n2,e) <- AG(n1) <- X:(b,l/n1n2,e)";
    ln.out_elems = B * l2 * e;  // AllGather over n1 restores the l/n2 shard
    add_conjugate_comm(ln, Collective::AllGather, CommGroup::TP1, vol_ag);
    v.push_back(std::move(ln));
  }
  {
    auto qkv = ops::matmul("qkv_proj", B * l2, (e + 2.0 * ekv) / n1, e);
    qkv.detail = "Q:(b,h/n1,l/n2,eh) = X~:(b,l/n2,e) x WQKV:(e,(e+2ekv)/n1)";
    v.push_back(std::move(qkv));
  }
  {
    // K and V are AllGathered across n2 so each GPU attends over the full
    // sequence (or the window halo); queries stay sharded at l/n2. Linear
    // attention AllReduces the per-head (e_h x e_h) state instead.
    auto att = ops::fused_attention("attention", B, h / n1, l2, lkv, eh,
                                    B * l2 * (e + 2.0 * ekv) / n1, hkv / n1);
    att.detail = "A:(b,h/n1,l/n2,lkv); K,V <- AG(n2)";
    att.in_elems = B * l2 * (e + 2.0 * ekv) / n1;  // pre-gather Q/K/V shards
    if (mdl.attention == model::AttentionKind::kLinear) {
      add_conjugate_comm(att, Collective::AllReduce, CommGroup::TP2,
                         Bytes(kBytesPerElement * B * (hkv / n1) * eh * eh));
    } else if (cfg.ring_attention) {
      // Ring attention: the K/V shards circulate in n2 - 1 point-to-point
      // steps, each overlapped with the attention on the resident block
      // (modeled with the panel prologue/overlap machinery).
      att.detail = "A:(b,h/n1,l/n2,lkv); K,V ring over n2";
      att.summa_panels = cfg.n2;
      add_conjugate_comm(att, Collective::PointToPoint, CommGroup::TP2,
                         vol_kv * (2.0 * (n2 - 1.0) / n2));
    } else {
      add_conjugate_comm(att, Collective::AllGather, CommGroup::TP2, vol_kv);
      add_conjugate_comm(att, Collective::AllGather, CommGroup::TP2, vol_kv);
    }
    v.push_back(std::move(att));
  }
  {
    auto proj = ops::matmul("out_proj", B * l2, e, e / n1);
    proj.detail = "Y:(b,l/n1n2,e) <- RS(n1) <- S x Wp:(e/n1,e)";
    proj.out_elems = B * l12 * e;  // ReduceScatter back to l/(n1 n2) shards
    add_conjugate_comm(proj, Collective::ReduceScatter, CommGroup::TP1, vol_ag);
    v.push_back(std::move(proj));
  }
  v.push_back(ops::dropout("attn_dropout", B * l12 * e));
  v.push_back(ops::residual_add("attn_residual", B * l12 * e));

  // --- MLP ---
  {
    auto ln = ops::layernorm("ln2", B * l12 * e);
    ln.detail = "Y~:(b,l/n2,e) <- AG(n1) <- Y:(b,l/n1n2,e)";
    ln.out_elems = B * l2 * e;
    add_conjugate_comm(ln, Collective::AllGather, CommGroup::TP1, vol_ag);
    v.push_back(std::move(ln));
  }
  double mlp_weight_params;
  if (mdl.is_moe()) {
    // Owned tokens for the AllToAll: the (l/(n1 n2)) shard.
    mlp_weight_params = append_moe_mlp(v, mdl, cfg, B * l2, B * l12);
  } else {
    {
      auto mlp1 = ops::matmul("mlp_fc1", B * l2, f / n1, e);
      mlp1.detail = "Z:(b,l/n2,f/n1) = Y~ x W1:(e,f/n1)";
      v.push_back(std::move(mlp1));
    }
    v.push_back(ops::gelu("gelu", B * l2 * f / n1));
    {
      auto mlp2 = ops::matmul("mlp_fc2", B * l2, e, f / n1);
      mlp2.detail = "X:(b,l/n1n2,e) <- RS(n1) <- Z x W2:(f/n1,e)";
      mlp2.out_elems = B * l12 * e;
      add_conjugate_comm(mlp2, Collective::ReduceScatter, CommGroup::TP1,
                         vol_ag);
      v.push_back(std::move(mlp2));
    }
    mlp_weight_params = (2.0 * e * f + f + e) / n1;
  }
  v.push_back(ops::dropout("mlp_dropout", B * l12 * e));
  v.push_back(ops::residual_add("mlp_residual", B * l12 * e));

  // Weights are sharded over n1 only and SHARED across the n2 group; the
  // weight-gradient reduction therefore spans nd x n2.
  lc.weight_params = (2.0 * e * e + 2.0 * e * ekv) / n1 +
                     (2.0 * e + 2.0 * ekv) / n1 + mlp_weight_params + 4.0 * e;
  lc.dp_group_includes_tp2 = true;
  lc.pp_boundary_bytes = Bytes(kBytesPerElement * B * l * e / (n1 * n2));
  return lc;
}

}  // namespace tfpe::parallel
