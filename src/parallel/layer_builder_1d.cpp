// 1D tensor parallelism (paper Table I, Megatron-style with sequence-parallel
// LayerNorm/dropout regions).
//
// The nt = n1 GPUs partition weight matrices column/row-wise and the sequence
// dimension in the LN/dropout regions. AllGather re-materializes the full
// (b, l, e) activations before the weight multiplies — the replicated
// X~ / Y~ tensors are the memory pressure the paper calls out — and
// ReduceScatter returns partial sums to the sequence-parallel layout.
// Communication volume b*l*e is independent of nt.

#include "ops/op_factory.hpp"
#include "parallel/layer_builder.hpp"
#include "parallel/moe_mlp.hpp"

namespace tfpe::parallel {

using ops::add_conjugate_comm;
using ops::Collective;
using ops::CommGroup;
using ops::kBytesPerElement;

LayerCost build_layer_1d(const model::TransformerConfig& mdl,
                         const ParallelConfig& cfg,
                         std::int64_t local_microbatch) {
  const double B = static_cast<double>(local_microbatch);
  const double l = static_cast<double>(mdl.seq_len);
  const double e = static_cast<double>(mdl.embed);
  const double f = static_cast<double>(mdl.hidden);
  const double h = static_cast<double>(mdl.heads);
  const double eh = static_cast<double>(mdl.head_dim());
  const double ekv = static_cast<double>(mdl.kv_embed());
  const double hkv = static_cast<double>(mdl.kv_heads_or_default());
  const double lkv = static_cast<double>(mdl.attended_len());
  const double nt = static_cast<double>(cfg.n1);

  const double ble = B * l * e;           // full activation elements
  const double seq_local = B * (l / nt);  // sequence-parallel token count

  LayerCost lc;
  auto& v = lc.ops;

  // --- Self-attention ---
  {
    auto ln = ops::layernorm("ln1", seq_local * e);
    ln.detail = "X~:(b,l,e) <- AG <- X:(b,l/nt,e)";
    ln.out_elems = ble;  // AllGather re-materializes the full activations
    add_conjugate_comm(ln, Collective::AllGather, CommGroup::TP1,
                       Bytes(kBytesPerElement * ble));
    v.push_back(std::move(ln));
  }
  {
    // Q, K, V projections as one (b l, e) x (e, (e + 2 e_kv)/nt) multiply
    // (e_kv < e under grouped-query attention). The gathered X~ is stored
    // (replicated across nt) for backward.
    auto qkv = ops::matmul("qkv_proj", B * l, (e + 2.0 * ekv) / nt, e);
    qkv.detail = "Q:(b,h/nt,l,eh) = X~:(b,l,e) x WQKV:(e,(e+2ekv)/nt)";
    v.push_back(std::move(qkv));
  }
  {
    // Fused FlashAttention Logit/Attend over h/nt local heads; Q, K, V
    // shards are stored, the l x l map is recomputed. lkv reflects the
    // attention kind (full l, window w, or e_h for linear attention).
    auto att = ops::fused_attention("attention", B, h / nt, l, lkv, eh,
                                    B * l * (e + 2.0 * ekv) / nt, hkv / nt);
    att.detail = "A=SM(QK^T), S=AV : (b,h/nt,l,lkv)";
    att.in_elems = B * l * (e + 2.0 * ekv) / nt;  // local Q/K/V shards
    v.push_back(std::move(att));
  }
  {
    auto proj = ops::matmul("out_proj", B * l, e, e / nt);
    proj.detail = "Y:(b,l/nt,e) <- RS <- S:(b,h/nt,l,eh) x Wp:(e/nt,e)";
    proj.out_elems = seq_local * e;  // ReduceScatter back to sequence shards
    add_conjugate_comm(proj, Collective::ReduceScatter, CommGroup::TP1,
                       Bytes(kBytesPerElement * ble));
    v.push_back(std::move(proj));
  }
  v.push_back(ops::dropout("attn_dropout", seq_local * e));
  v.push_back(ops::residual_add("attn_residual", seq_local * e));

  // --- MLP ---
  {
    auto ln = ops::layernorm("ln2", seq_local * e);
    ln.detail = "Y~:(b,l,e) <- AG <- Y:(b,l/nt,e)";
    ln.out_elems = ble;
    add_conjugate_comm(ln, Collective::AllGather, CommGroup::TP1,
                       Bytes(kBytesPerElement * ble));
    v.push_back(std::move(ln));
  }
  double mlp_weight_params;
  if (mdl.is_moe()) {
    // Owned tokens for the AllToAll: the sequence-parallel shard B*l/nt.
    mlp_weight_params = append_moe_mlp(v, mdl, cfg, B * l, seq_local);
  } else {
    {
      auto mlp1 = ops::matmul("mlp_fc1", B * l, f / nt, e);
      mlp1.detail = "Z:(b,l,f/nt) = Y~:(b,l,e) x W1:(e,f/nt)";
      v.push_back(std::move(mlp1));
    }
    v.push_back(ops::gelu("gelu", B * l * f / nt));
    {
      auto mlp2 = ops::matmul("mlp_fc2", B * l, e, f / nt);
      mlp2.detail = "X:(b,l/nt,e) <- RS <- Z x W2:(f/nt,e)";
      mlp2.out_elems = seq_local * e;
      add_conjugate_comm(mlp2, Collective::ReduceScatter, CommGroup::TP1,
                         Bytes(kBytesPerElement * ble));
      v.push_back(std::move(mlp2));
    }
    mlp_weight_params = (2.0 * e * f + f + e) / nt;
  }
  v.push_back(ops::dropout("mlp_dropout", seq_local * e));
  v.push_back(ops::residual_add("mlp_residual", seq_local * e));

  // Weight shards: WQ/Wp (e x e) + WK/WV (e x e_kv) over nt plus the MLP
  // (dense shard or local experts), biases over nt, LayerNorm parameters
  // replicated.
  lc.weight_params = (2.0 * e * e + 2.0 * e * ekv) / nt +
                     (2.0 * e + 2.0 * ekv) / nt + mlp_weight_params + 4.0 * e;
  lc.pp_boundary_bytes = Bytes(kBytesPerElement * ble / nt);
  return lc;
}

}  // namespace tfpe::parallel
