// 2D tensor parallelism with SUMMA matrix multiplies (paper Table A2,
// Appendix A).
//
// Every activation-weight multiply (QKV, MLP fc1/fc2) is a SUMMA-distributed
// multiply on the n1 x n2 grid: both activations and weights are fully
// sharded (no redundant weight memory), at the cost of broadcasting panel
// blocks of both operands. The attention Logit/Attend keeps the 2D-TP
// AllGather of K/V; the output projection keeps its ReduceScatter (as in
// Table A2). The nb panel count trades prologue time against per-panel
// matmul efficiency and is part of the searched configuration.

#include <algorithm>

#include "ops/op_factory.hpp"
#include "parallel/layer_builder.hpp"

namespace tfpe::parallel {

using ops::add_conjugate_comm;
using ops::Collective;
using ops::CommGroup;
using ops::kBytesPerElement;

LayerCost build_layer_summa(const model::TransformerConfig& mdl,
                            const ParallelConfig& cfg,
                            std::int64_t local_microbatch) {
  const double B = static_cast<double>(local_microbatch);
  const double l = static_cast<double>(mdl.seq_len);
  const double e = static_cast<double>(mdl.embed);
  const double f = static_cast<double>(mdl.hidden);
  const double h = static_cast<double>(mdl.heads);
  const double eh = static_cast<double>(mdl.head_dim());
  const double ekv = static_cast<double>(mdl.kv_embed());
  const double hkv = static_cast<double>(mdl.kv_heads_or_default());
  const double lkv = static_cast<double>(mdl.attended_len());
  const double n1 = static_cast<double>(cfg.n1);
  const double n2 = static_cast<double>(cfg.n2);

  const double l2 = l / n2;
  const Bytes vol_ln = Bytes(kBytesPerElement * B * l2 * e);  // b*(l/n2)*e
  const double kv_gather_len =
      mdl.attention == model::AttentionKind::kWindowed
          ? std::min(l, l2 + static_cast<double>(mdl.window))
          : l;
  const Bytes vol_kv = Bytes(kBytesPerElement * B * kv_gather_len * ekv / n1);

  LayerCost lc;
  auto& v = lc.ops;

  // --- Self-attention ---
  {
    // X is sharded (b, l/n2, e/n1); the LayerNorm statistics need the full
    // embedding dimension, hence an AllReduce across n1 (Table A2).
    auto ln = ops::layernorm("ln1", B * l2 * (e / n1));
    ln.detail = "X~:(b,l/n2,e/n1); stats <- AR(n1)";
    add_conjugate_comm(ln, Collective::AllReduce, CommGroup::TP1, vol_ln);
    v.push_back(std::move(ln));
  }
  {
    auto qkv = ops::summa_matmul("qkv_proj", B * l, e + 2.0 * ekv, e, cfg.n1,
                                 cfg.n2, cfg.nb);
    qkv.detail = "SUMMA: Q = X~:(b,l/n2,e/n1) x WQKV:(e/n2,(e+2ekv)/n1), V1";
    v.push_back(std::move(qkv));
  }
  {
    auto att = ops::fused_attention("attention", B, h / n1, l2, lkv, eh,
                                    B * l2 * (e + 2.0 * ekv) / n1, hkv / n1);
    att.detail = "A:(b,h/n1,l/n2,lkv); K,V <- AG(n2)";
    att.in_elems = B * l2 * (e + 2.0 * ekv) / n1;  // pre-gather Q/K/V shards
    if (mdl.attention == model::AttentionKind::kLinear) {
      add_conjugate_comm(att, Collective::AllReduce, CommGroup::TP2,
                         Bytes(kBytesPerElement * B * (hkv / n1) * eh * eh));
    } else if (cfg.ring_attention) {
      att.detail = "A:(b,h/n1,l/n2,lkv); K,V ring over n2";
      att.summa_panels = cfg.n2;
      add_conjugate_comm(att, Collective::PointToPoint, CommGroup::TP2,
                         vol_kv * (2.0 * (n2 - 1.0) / n2));
    } else {
      add_conjugate_comm(att, Collective::AllGather, CommGroup::TP2, vol_kv);
      add_conjugate_comm(att, Collective::AllGather, CommGroup::TP2, vol_kv);
    }
    v.push_back(std::move(att));
  }
  {
    // Output projection stays a row-parallel multiply with ReduceScatter
    // (Table A2): Wp is sharded over n1 only.
    auto proj = ops::matmul("out_proj", B * l2, e, e / n1);
    proj.detail = "Y:(b,l/n1n2,e) <- RS(n1) <- S x Wp:(e/n1,e)";
    proj.out_elems = B * l2 * e / n1;  // ReduceScatter back to (e/n1) shards
    add_conjugate_comm(proj, Collective::ReduceScatter, CommGroup::TP1, vol_ln);
    v.push_back(std::move(proj));
  }
  v.push_back(ops::dropout("attn_dropout", B * l2 * e / n1));
  v.push_back(ops::residual_add("attn_residual", B * l2 * e / n1));

  // --- MLP ---
  {
    auto ln = ops::layernorm("ln2", B * l2 * (e / n1));
    ln.detail = "Y~:(b,l/n2,e/n1); stats <- AR(n1)";
    add_conjugate_comm(ln, Collective::AllReduce, CommGroup::TP1, vol_ln);
    v.push_back(std::move(ln));
  }
  {
    auto mlp1 =
        ops::summa_matmul("mlp_fc1", B * l, f, e, cfg.n1, cfg.n2, cfg.nb);
    mlp1.detail = "SUMMA: Z = Y~ x W1:(e/n2,f/n1), V2 = ble/n2 + ef/n1";
    v.push_back(std::move(mlp1));
  }
  v.push_back(ops::gelu("gelu", B * l2 * f / n1));
  {
    // Table A2 writes V3 = ble/n2 + ef/n1; the general SUMMA volume for a
    // (b l x f)(f x e) multiply is blf/n2 + fe/n1 — we use the general form.
    auto mlp2 =
        ops::summa_matmul("mlp_fc2", B * l, e, f, cfg.n1, cfg.n2, cfg.nb);
    mlp2.detail = "SUMMA: X = Z x W2:(f/n2,e/n1), V3";
    v.push_back(std::move(mlp2));
  }
  v.push_back(ops::dropout("mlp_dropout", B * l2 * e / n1));
  v.push_back(ops::residual_add("mlp_residual", B * l2 * e / n1));

  // Fully sharded weights except Wp (n1 only, per Table A2); LN parameters
  // sharded over n1.
  lc.weight_params = (e * e + 2.0 * e * ekv + 2.0 * e * f) / (n1 * n2) +
                     e * e / n1 +
                     (2.0 * e + 2.0 * ekv + f + e) / (n1 * n2) + 4.0 * e / n1;
  lc.pp_boundary_bytes = Bytes(kBytesPerElement * B * l * e / (n1 * n2));
  return lc;
}

}  // namespace tfpe::parallel
