#pragma once
// Per-block operation lists under each tensor-parallel strategy
// (paper Tables I, II and A2).
//
// build_layer() returns the cost description of ONE transformer block for
// one microbatch on one GPU: the op sequence (with FLOPs, HBM bytes,
// collectives and stored activations), the resident weight parameters, and
// the pipeline-boundary activation volume.

#include <cstdint>
#include <vector>

#include "model/transformer.hpp"
#include "ops/op.hpp"
#include "parallel/parallel_config.hpp"

namespace tfpe::parallel {

struct LayerCost {
  std::vector<ops::Op> ops;

  /// Learnable parameters resident per GPU for this block (includes the
  /// replication across n2 in plain 2D TP; SUMMA shards fully).
  double weight_params = 0;

  /// Unique (unreplicated) parameters this GPU contributes to the
  /// data-parallel gradient reduction: equals weight_params for 1D TP and
  /// SUMMA; for 2D TP the reduction group is extended over n2 instead.
  bool dp_group_includes_tp2 = false;

  /// Activation bytes crossing a pipeline-stage boundary per microbatch.
  Bytes pp_boundary_bytes;

  Bytes stored_bytes() const;
  Flops fwd_flops() const;
  Flops bwd_flops() const;
  Bytes fwd_hbm_bytes() const;
  Bytes bwd_hbm_bytes() const;
  /// Sum of forward collective volumes over a given group.
  Bytes fwd_comm_bytes(ops::CommGroup group) const;
  /// Sum of backward collective volumes over a given group. Together with
  /// fwd_comm_bytes these are the extraction hooks the cost-signature
  /// compiler's aggregate totals are checked against (analysis::
  /// lint_signature).
  Bytes bwd_comm_bytes(ops::CommGroup group) const;
};

/// Dispatches on cfg.strategy. `local_microbatch` is b/(nd*m).
LayerCost build_layer(const model::TransformerConfig& mdl,
                      const ParallelConfig& cfg, std::int64_t local_microbatch);

// Strategy-specific builders (exposed for tests and the table bench).
LayerCost build_layer_1d(const model::TransformerConfig& mdl,
                         const ParallelConfig& cfg,
                         std::int64_t local_microbatch);
LayerCost build_layer_2d(const model::TransformerConfig& mdl,
                         const ParallelConfig& cfg,
                         std::int64_t local_microbatch);
LayerCost build_layer_summa(const model::TransformerConfig& mdl,
                            const ParallelConfig& cfg,
                            std::int64_t local_microbatch);

/// Decode-phase block (ExecutionPhase::kDecode): `tokens` single-token
/// queries — one per resident request — against a `kv_len`-token K/V cache
/// under 1D tensor parallelism. Forward-only ops (no backward, no stored
/// activations), GEMV-shaped matmuls, a plain AllReduce at each TP seam.
/// `tokens` may be fractional (a resident batch split across pipeline
/// decode groups). Dense blocks only; throws for MoE models.
LayerCost build_decode_layer(const model::TransformerConfig& mdl,
                             std::int64_t tp, double tokens, double kv_len);

}  // namespace tfpe::parallel
