#include "parallel/layer_builder.hpp"

#include <stdexcept>

namespace tfpe::parallel {

Bytes LayerCost::stored_bytes() const {
  Bytes sum;
  for (const auto& op : ops) sum += op.stored_bytes;
  return sum;
}

Flops LayerCost::fwd_flops() const {
  Flops sum;
  for (const auto& op : ops) sum += op.fwd_flops;
  return sum;
}

Flops LayerCost::bwd_flops() const {
  Flops sum;
  for (const auto& op : ops) sum += op.bwd_flops;
  return sum;
}

Bytes LayerCost::fwd_hbm_bytes() const {
  Bytes sum;
  for (const auto& op : ops) sum += op.fwd_bytes;
  return sum;
}

Bytes LayerCost::bwd_hbm_bytes() const {
  Bytes sum;
  for (const auto& op : ops) sum += op.bwd_bytes;
  return sum;
}

Bytes LayerCost::fwd_comm_bytes(ops::CommGroup group) const {
  Bytes sum;
  for (const auto& op : ops) {
    for (const auto& req : op.fwd_comm) {
      if (req.group == group) sum += req.bytes;
    }
  }
  return sum;
}

Bytes LayerCost::bwd_comm_bytes(ops::CommGroup group) const {
  Bytes sum;
  for (const auto& op : ops) {
    for (const auto& req : op.bwd_comm) {
      if (req.group == group) sum += req.bytes;
    }
  }
  return sum;
}

LayerCost build_layer(const model::TransformerConfig& mdl,
                      const ParallelConfig& cfg,
                      std::int64_t local_microbatch) {
  switch (cfg.strategy) {
    case TpStrategy::TP1D: return build_layer_1d(mdl, cfg, local_microbatch);
    case TpStrategy::TP2D: return build_layer_2d(mdl, cfg, local_microbatch);
    case TpStrategy::Summa2D:
      return build_layer_summa(mdl, cfg, local_microbatch);
  }
  throw std::logic_error("build_layer: unknown strategy");
}

}  // namespace tfpe::parallel
