#include "parallel/parallel_config.hpp"

#include <sstream>

namespace tfpe::parallel {

std::string to_string(ZeroStage s) {
  switch (s) {
    case ZeroStage::kOptimizer: return "ZeRO-1";
    case ZeroStage::kWeights: return "ZeRO-3";
  }
  return "?";
}

std::string to_string(TpStrategy s) {
  switch (s) {
    case TpStrategy::TP1D: return "1D TP";
    case TpStrategy::TP2D: return "2D TP";
    case TpStrategy::Summa2D: return "2D TP SUMMA";
  }
  return "?";
}

std::int64_t ParallelConfig::local_microbatch(std::int64_t global_batch) const {
  return global_batch / (nd * microbatches);
}

std::optional<std::string> ParallelConfig::invalid_reason(
    const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
    std::int64_t global_batch) const {
  if (n1 < 1 || n2 < 1 || np < 1 || nd < 1 || microbatches < 1 || nb < 1) {
    return "all grid factors must be >= 1";
  }
  if (strategy == TpStrategy::TP1D && n2 != 1) return "1D TP requires n2 == 1";
  if (mdl.depth % np != 0) return "np must divide model depth";
  if (global_batch % nd != 0) return "nd must divide global batch";
  if ((global_batch / nd) % microbatches != 0) {
    return "m must divide the local batch";
  }
  // Tensor-dimension divisibility: heads/hidden/embed split over n1,
  // sequence split over n1*n2 (1D TP splits l over nt = n1).
  if (mdl.heads % n1 != 0) return "n1 must divide heads";
  if (mdl.kv_heads_or_default() % n1 != 0) return "n1 must divide kv heads";
  if (mdl.hidden % n1 != 0) return "n1 must divide hidden";
  if (mdl.embed % n1 != 0) return "n1 must divide embed";
  if (mdl.seq_len % (n1 * n2) != 0) return "n1*n2 must divide seq_len";
  if (strategy == TpStrategy::Summa2D) {
    if (mdl.embed % n2 != 0) return "n2 must divide embed (SUMMA)";
    if (mdl.hidden % n2 != 0) return "n2 must divide hidden (SUMMA)";
    if (mdl.embed % nb != 0) return "nb must divide the contraction dim";
  } else if (nb != 1) {
    return "nb is only meaningful for SUMMA";
  }
  if (mdl.is_moe()) {
    if (strategy == TpStrategy::Summa2D) {
      return "MoE is not supported with SUMMA";
    }
    // Expert parallelism over the DP group needs aligned sharding.
    if (nd <= mdl.moe_experts ? (mdl.moe_experts % nd != 0)
                              : (nd % mdl.moe_experts != 0)) {
      return "nd and moe_experts must divide each other";
    }
  }
  if (ring_attention) {
    if (strategy == TpStrategy::TP1D || n2 <= 1) {
      return "ring attention requires n2 > 1";
    }
    if (mdl.attention == model::AttentionKind::kLinear) {
      return "ring attention is incompatible with linear attention";
    }
  }
  if (interleave < 1) return "interleave must be >= 1";
  if (interleave > 1) {
    if (np <= 1) return "interleaving requires np > 1";
    if ((mdl.depth / np) % interleave != 0) {
      return "interleave must divide the layers per stage";
    }
  }
  if (total_gpus() > sys.n_gpus) return "configuration exceeds available GPUs";
  // Placement constraints.
  if (n1 % nvs1 != 0 || n2 % nvs2 != 0 || np % nvsp != 0 || nd % nvsd != 0) {
    return "each nvs_i must divide its group size";
  }
  if (placement_product() > sys.nvs_domain) {
    return "placement exceeds the NVS domain";
  }
  return std::nullopt;
}

std::string ParallelConfig::describe() const {
  std::ostringstream os;
  os << to_string(strategy) << " n1=" << n1;
  if (strategy != TpStrategy::TP1D) os << " n2=" << n2;
  os << " PP=" << np << " DP=" << nd << " m=" << microbatches;
  if (strategy == TpStrategy::Summa2D) os << " nb=" << nb;
  if (interleave > 1) os << " v=" << interleave;
  if (zero == ZeroStage::kWeights) os << " ZeRO3";
  if (ring_attention) os << " ringattn";
  os << " nvs=(" << nvs1 << "," << nvs2 << "," << nvsp << "," << nvsd << ")";
  return os.str();
}

}  // namespace tfpe::parallel
