#pragma once
// Mixture-of-experts MLP block for the 1D / 2D TP layer builders
// (extension; the paper's §V outlook lists architecture types beyond dense
// LLMs as future work).
//
// Experts shard over the data-parallel group (expert parallelism, degree
// ep = min(nd, E)); tokens move to their routed experts by AllToAll over
// that group and return after the expert MLP. Each expert's (W1, W2) is
// additionally sharded over the first TP dimension, exactly like the dense
// MLP. Routing is assumed balanced (capacity factor 1).

#include <cstdint>
#include <vector>

#include "model/transformer.hpp"
#include "ops/op.hpp"
#include "parallel/parallel_config.hpp"

namespace tfpe::parallel {

/// Expert-parallel degree for a configuration: min(nd, E).
std::int64_t expert_parallel_degree(const model::TransformerConfig& mdl,
                                    const ParallelConfig& cfg);

/// Appends router + dispatch + expert MLP + combine ops to `v` and returns
/// the MLP weight parameters resident per GPU.
///   matmul_tokens  tokens entering the (replicated) matmul region
///                  (1D TP: B*l; 2D TP: B*l/n2)
///   owned_tokens   tokens this GPU owns in the sequence-parallel layout
///                  (1D TP: B*l/nt; 2D TP: B*l/(n1*n2))
double append_moe_mlp(std::vector<ops::Op>& v,
                      const model::TransformerConfig& mdl,
                      const ParallelConfig& cfg, double matmul_tokens,
                      double owned_tokens);

}  // namespace tfpe::parallel
