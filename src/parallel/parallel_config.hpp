#pragma once
// Parallelization configuration (paper §III S3 item 1 & 2).
//
// A configuration assigns the n = n1*n2*np*nd GPU grid:
//   n1, n2  tensor-parallel dimensions (n2 == 1 for 1D TP)
//   np      pipeline-parallel stages
//   nd      data-parallel replicas
// plus the microbatch count m, the SUMMA panel count nb, and the placement
// of each group on the fast (NVS) domain: nvs_i GPUs of group i share a
// domain, with nvs1*nvs2*nvsp*nvsd <= nvs_domain.

#include <cstdint>
#include <optional>
#include <string>

#include "hw/system.hpp"
#include "model/transformer.hpp"

namespace tfpe::parallel {

enum class TpStrategy { TP1D, TP2D, Summa2D };

std::string to_string(TpStrategy s);

/// How far the data-parallel group shards training state (paper §V
/// limitations: "weights (and gradients) can also be partitioned using DP at
/// the cost of higher communication").
enum class ZeroStage {
  kOptimizer,  ///< ZeRO-1: optimizer states sharded over DP (paper default).
  kWeights,    ///< ZeRO-3: weights + gradients also sharded; weights are
               ///< re-AllGathered per microbatch.
};

std::string to_string(ZeroStage s);

struct ParallelConfig {
  TpStrategy strategy = TpStrategy::TP1D;
  std::int64_t n1 = 1;
  std::int64_t n2 = 1;
  std::int64_t np = 1;
  std::int64_t nd = 1;
  std::int64_t microbatches = 1;  ///< m
  std::int64_t nb = 1;            ///< SUMMA contraction panels

  /// Virtual pipeline chunks per GPU (interleaved 1F1B, paper §V
  /// limitations). 1 = the paper's non-interleaved schedule. v > 1 divides
  /// the bubble by v and multiplies the PP point-to-point volume by v.
  std::int64_t interleave = 1;

  /// Ring attention (extension): instead of AllGathering K/V across n2
  /// before attending, circulate the K/V shards around the n2 ring in
  /// n2 - 1 steps, each overlapped with the attention compute on the block
  /// already in hand. Same total volume, but only the excess over compute
  /// is exposed. Requires n2 > 1 (2D TP / SUMMA, full or windowed
  /// attention).
  bool ring_attention = false;

  ZeroStage zero = ZeroStage::kOptimizer;

  // NVS-domain placement per group.
  std::int64_t nvs1 = 1;
  std::int64_t nvs2 = 1;
  std::int64_t nvsp = 1;
  std::int64_t nvsd = 1;

  std::int64_t total_gpus() const { return n1 * n2 * np * nd; }
  std::int64_t tp() const { return n1 * n2; }
  std::int64_t placement_product() const { return nvs1 * nvs2 * nvsp * nvsd; }

  /// Per-GPU microbatch size for global batch `b`: b / (nd * m).
  std::int64_t local_microbatch(std::int64_t global_batch) const;

  /// Checks every divisibility/feasibility constraint from S3 against the
  /// model, system and global batch. Returns an explanation when invalid.
  std::optional<std::string> invalid_reason(const model::TransformerConfig& mdl,
                                            const hw::SystemConfig& sys,
                                            std::int64_t global_batch) const;

  /// "1DTP[nt=8] PP=64 DP=32 m=128 nvs=(8,1,1,1)"
  std::string describe() const;
};

}  // namespace tfpe::parallel
