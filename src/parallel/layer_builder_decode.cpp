// Decode-phase block (core/workload.hpp, ExecutionPhase::kDecode): `tokens`
// single-token queries — one per resident request — against a `kv_len`-token
// K/V cache, under Megatron-style 1D tensor parallelism.
//
// Every matmul is GEMV-shaped (m = tokens, contraction over the weight
// matrix), so the roofline lands memory-bound: the per-step traffic is the
// stage's weight matrices plus the K/V cache read, which is exactly the
// decode lower bound core/lower_bounds.hpp prices. Differences from the
// training builder:
//   * no sequence parallelism (each query is one token) — the TP seam is a
//     plain AllReduce after out_proj / mlp_fc2 instead of the AG/RS pair;
//   * no dropout, no backward, no stored activations (ops::forward_only);
//   * a kv_append op accounts the cache write of the step's new K/V.
// `tokens` is a double: the serving pipeline divides the resident batch
// across np decode groups, and fractional group sizes keep the analytic
// model smooth.

#include <stdexcept>

#include "ops/op_factory.hpp"
#include "parallel/layer_builder.hpp"

namespace tfpe::parallel {

using ops::Collective;
using ops::CommGroup;
using ops::forward_only;
using ops::kBytesPerElement;

LayerCost build_decode_layer(const model::TransformerConfig& mdl,
                             std::int64_t tp, double tokens, double kv_len) {
  if (mdl.is_moe()) {
    throw std::invalid_argument(
        "build_decode_layer models dense blocks only (MoE serving is "
        "reported infeasible by the estimator)");
  }
  const double R = tokens;
  const double e = static_cast<double>(mdl.embed);
  const double f = static_cast<double>(mdl.hidden);
  const double h = static_cast<double>(mdl.heads);
  const double eh = static_cast<double>(mdl.head_dim());
  const double ekv = static_cast<double>(mdl.kv_embed());
  const double hkv = static_cast<double>(mdl.kv_heads_or_default());
  const double nt = static_cast<double>(tp);
  // K/V heads per GPU: sharded while tp <= kv_heads, replicated beyond
  // (grouped-query attention cannot split a K/V head across ranks).
  const double hkv_local = hkv / nt > 1.0 ? hkv / nt : 1.0;
  // Cache tokens one step attends to, per the attention kind.
  double lkv = kv_len;
  switch (mdl.attention) {
    case model::AttentionKind::kFull: break;
    case model::AttentionKind::kWindowed:
      if (static_cast<double>(mdl.window) < lkv)
        lkv = static_cast<double>(mdl.window);
      break;
    case model::AttentionKind::kLinear: lkv = eh; break;
  }

  const Bytes re_bytes = Bytes(kBytesPerElement * R * e);

  LayerCost lc;
  auto& v = lc.ops;

  // --- Self-attention ---
  {
    auto ln = forward_only(ops::layernorm("ln1", R * e));
    ln.detail = "X:(R,e) replicated across nt";
    v.push_back(std::move(ln));
  }
  {
    auto qkv = forward_only(
        ops::matmul("qkv_proj", R, (e + 2.0 * ekv) / nt, e, 1.0,
                    /*store_a=*/false));
    qkv.detail = "q:(R,h/nt,eh) = X:(R,e) x WQKV:(e,(e+2ekv)/nt)";
    v.push_back(std::move(qkv));
  }
  {
    // Cache write of the step's new K/V rows (pure traffic, no FLOPs).
    auto app = forward_only(
        ops::vector_op("kv_append", R * 2.0 * hkv_local * eh, 0.0, 0.0));
    app.detail = "KV[:, kv_len] = k,v : (R,2,hkv/nt,eh)";
    app.in_elems = 0;  // sourced from qkv_proj, not the activation stream
    app.out_elems = 0;
    v.push_back(std::move(app));
  }
  {
    auto att = ops::decode_attention("attention", R, h / nt, lkv, eh,
                                     hkv_local);
    att.detail = "A=SM(qK^T), s=AV : (R,h/nt,1,kv_len)";
    att.in_elems = 0;  // reads the cache, not just the predecessor
    v.push_back(std::move(att));
  }
  {
    auto proj = forward_only(
        ops::matmul("out_proj", R, e, e / nt, 1.0, /*store_a=*/false));
    proj.detail = "Y:(R,e) <- AR <- s:(R,h/nt,eh) x Wp:(e/nt,e)";
    proj.fwd_comm.push_back({Collective::AllReduce, CommGroup::TP1, re_bytes});
    v.push_back(std::move(proj));
  }
  v.push_back(forward_only(ops::residual_add("attn_residual", R * e)));

  // --- MLP ---
  {
    auto ln = forward_only(ops::layernorm("ln2", R * e));
    ln.detail = "Y:(R,e) replicated across nt";
    v.push_back(std::move(ln));
  }
  {
    auto mlp1 = forward_only(
        ops::matmul("mlp_fc1", R, f / nt, e, 1.0, /*store_a=*/false));
    mlp1.detail = "Z:(R,f/nt) = Y:(R,e) x W1:(e,f/nt)";
    v.push_back(std::move(mlp1));
  }
  v.push_back(forward_only(ops::gelu("gelu", R * f / nt)));
  {
    auto mlp2 = forward_only(
        ops::matmul("mlp_fc2", R, e, f / nt, 1.0, /*store_a=*/false));
    mlp2.detail = "X:(R,e) <- AR <- Z x W2:(f/nt,e)";
    mlp2.fwd_comm.push_back({Collective::AllReduce, CommGroup::TP1, re_bytes});
    v.push_back(std::move(mlp2));
  }
  v.push_back(forward_only(ops::residual_add("mlp_residual", R * e)));

  // Same resident weights as the 1D training builder's dense block:
  // attention + MLP matmuls and biases over nt, LayerNorm replicated.
  lc.weight_params = (2.0 * e * e + 2.0 * e * ekv) / nt +
                     (2.0 * e + 2.0 * ekv) / nt + (2.0 * e * f + f + e) / nt +
                     4.0 * e;
  lc.pp_boundary_bytes = re_bytes;
  return lc;
}

}  // namespace tfpe::parallel
