#include "parallel/moe_mlp.hpp"

#include <algorithm>

#include "ops/op_factory.hpp"

namespace tfpe::parallel {

using ops::add_conjugate_comm;
using ops::Collective;
using ops::CommGroup;
using ops::kBytesPerElement;

std::int64_t expert_parallel_degree(const model::TransformerConfig& mdl,
                                    const ParallelConfig& cfg) {
  return std::min<std::int64_t>(cfg.nd, mdl.moe_experts);
}

double append_moe_mlp(std::vector<ops::Op>& v,
                      const model::TransformerConfig& mdl,
                      const ParallelConfig& cfg, double matmul_tokens,
                      double owned_tokens) {
  const double e = static_cast<double>(mdl.embed);
  const double f = static_cast<double>(mdl.hidden);
  const double E = static_cast<double>(mdl.moe_experts);
  const double topk = static_cast<double>(mdl.moe_top_k);
  const double n1 = static_cast<double>(cfg.n1);
  const double ep = static_cast<double>(expert_parallel_degree(mdl, cfg));

  // Router: (tokens, e) x (e, E) per owned token plus the routing softmax.
  {
    auto router = ops::matmul("moe_router", owned_tokens, E, e, 1.0,
                              /*store_a=*/false);
    router.detail = "G:(tokens,E) = Y~ x Wr:(e,E)";
    router.in_elems = 0;  // gate branch: not the residual-stream interface
    v.push_back(std::move(router));
  }
  v.push_back(ops::vector_op("moe_route_softmax", owned_tokens * E, 5.0,
                             owned_tokens * E));

  // Dispatch: each owned token is sent to top_k experts across the
  // expert-parallel (DP) group; balanced routing returns the same volume.
  const Bytes a2a_bytes = Bytes(kBytesPerElement * owned_tokens * e * topk);
  {
    ops::Op dispatch;
    dispatch.name = "moe_dispatch";
    dispatch.unit = ops::ComputeUnit::Vector;
    dispatch.fwd_bytes = 2.0 * a2a_bytes;  // pack + unpack through HBM
    dispatch.bwd_bytes = 2.0 * a2a_bytes;
    add_conjugate_comm(dispatch, Collective::AllToAll, CommGroup::DP,
                       a2a_bytes);
    v.push_back(std::move(dispatch));
  }

  // Expert MLP on top_k-times the tokens, weights sharded over n1 as in the
  // dense MLP (Tables I/II shapes with tokens scaled by top_k).
  const double routed_tokens = matmul_tokens * topk;
  {
    auto fc1 = ops::matmul("moe_fc1", routed_tokens, f / n1, e);
    fc1.detail = "Z = X_routed x W1[expert]:(e,f/n1)";
    v.push_back(std::move(fc1));
  }
  v.push_back(ops::gelu("moe_gelu", routed_tokens * f / n1));
  {
    auto fc2 = ops::matmul("moe_fc2", routed_tokens, e, f / n1);
    fc2.detail = "X <- RS(n1) <- Z x W2[expert]:(f/n1,e)";
    fc2.out_elems = 0;  // token layout is data-dependent until the combine
    add_conjugate_comm(fc2, Collective::ReduceScatter, CommGroup::TP1,
                       Bytes(kBytesPerElement * matmul_tokens * e * topk));
    v.push_back(std::move(fc2));
  }

  // Combine: routed outputs return to their home GPU and are mixed by the
  // router weights.
  {
    ops::Op combine;
    combine.name = "moe_combine";
    combine.unit = ops::ComputeUnit::Vector;
    combine.fwd_flops = Flops(owned_tokens * e * (2.0 * topk));  // weighted sum
    combine.fwd_bytes = 2.0 * a2a_bytes;
    combine.bwd_flops = combine.fwd_flops;
    combine.bwd_bytes = 2.0 * a2a_bytes;
    add_conjugate_comm(combine, Collective::AllToAll, CommGroup::DP,
                       a2a_bytes);
    v.push_back(std::move(combine));
  }

  // Resident weights: E/ep local experts, each sharded over n1, plus the
  // replicated router.
  const double experts_local = E / ep;
  return experts_local * (2.0 * e * f + f + e) / n1 + e * E;
}

}  // namespace tfpe::parallel
