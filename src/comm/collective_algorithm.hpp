#pragma once
// Topology-aware collective model: latency and effective bandwidth computed
// by walking the fabric levels a group placement spans, plus a pluggable
// CollectiveAlgorithm interface (flat ring, double-binary tree,
// hierarchical two-phase reduce-scatter/all-gather).
//
// For the canonical two-level fabric (hw::two_level_topology) every walk
// reproduces the legacy closed-form comm/collective_model expressions
// BITWISE — the legacy API is a thin adapter over this path, and the golden
// matrix in tests/test_topology.cpp pins the equivalence. Keep the
// floating-point expression groupings here in lockstep with the formulas
// documented in collective_model.hpp.

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "comm/collective_model.hpp"
#include "hw/topology.hpp"
#include "ops/op.hpp"

namespace tfpe::comm {

/// Per-level generalization of GroupPlacement: occupancy[i] = members of
/// the group inside one level-i unit (occupancy[0] is the legacy `nvs`).
/// Non-decreasing, and the outermost entry equals the group size — the top
/// level always spans the whole group.
struct TopoPlacement {
  std::int64_t size = 1;
  std::array<std::int64_t, hw::Topology::kMaxDepth> occupancy{};
};

/// Place a legacy (size, nvs) group on a fabric: occupancy[0] is the
/// clamped nvs, intermediate levels fill at their fan-in, and the outermost
/// level spans the whole group regardless of fan-in (sparse placements —
/// nvs below the level-0 fan-in — spill members outward, they do not
/// shrink the group).
TopoPlacement make_placement(const hw::Topology& topo, GroupPlacement g);

/// Why `g` is not a valid group placement (std::nullopt when valid):
/// requires size >= 1, 1 <= nvs <= size, and nvs | size. The clamping
/// helpers tolerate invalid placements; collective_time rejects them.
std::optional<std::string> invalid_placement_reason(GroupPlacement g);

/// Topology-aware validity: the base checks plus `nvs` must not exceed the
/// fabric's bounded leaf fan-in (a valid divisor that overfills the fast
/// domain would price a walk the machine cannot realize). Unbounded or
/// empty fabrics fall back to the base checks. The validating
/// collective_time(topo, ..., GroupPlacement) overload enforces this; the
/// legacy NetworkSpec adapter lifts to an unbounded fabric and therefore
/// only gets the base checks.
std::optional<std::string> invalid_placement_reason(const hw::Topology& topo,
                                                    GroupPlacement g);

/// Latency term of the flat ring: per-level hop counts derived from the
/// occupancy vector (level-i hops = units(i-1) - units(i)).
Seconds ring_latency(const hw::Topology& topo, const TopoPlacement& p);

/// Effective per-ring bandwidth: the minimum over every level the group
/// crosses of that level's aggregate uplink per fast-domain slice, with
/// per-level oversubscription applied.
BytesPerSec effective_bandwidth(const hw::Topology& topo,
                                const TopoPlacement& p);

/// Double-binary-tree time: latency scales with the per-level tree depths
/// instead of the ring length.
Seconds tree_time(const hw::Topology& topo, ops::Collective coll, Bytes bytes,
                  const TopoPlacement& p);

/// Hierarchical two-phase algorithm (NCCL-style): one ring phase per
/// crossed level, innermost first, each operating on the shard that
/// survives the previous phase (rail-parallel across the members of a
/// unit). AllReduce = reduce-scatter up + all-gather down (2x).
Seconds hierarchical_time(const hw::Topology& topo, ops::Collective coll,
                          Bytes bytes, const TopoPlacement& p);

/// Time for one collective over a placed group: the minimum over the
/// algorithms the topology enables (ring always; tree when
/// topo.enable_tree, hierarchical when topo.enable_hierarchical).
/// PointToPoint uses the innermost level both endpoints share.
Seconds collective_time(const hw::Topology& topo, ops::Collective coll,
                        Bytes bytes, const TopoPlacement& p);

/// Convenience: validate `g`, place it on the fabric, and time it.
Seconds collective_time(const hw::Topology& topo, ops::Collective coll,
                        Bytes bytes, GroupPlacement g);

/// One collective algorithm: a strategy the dispatcher can price for the
/// collectives it handles. Implementations are stateless singletons.
class CollectiveAlgorithm {
 public:
  virtual ~CollectiveAlgorithm() = default;
  virtual const char* name() const = 0;
  virtual bool handles(ops::Collective coll) const = 0;
  virtual Seconds time(const hw::Topology& topo, ops::Collective coll,
                       Bytes bytes, const TopoPlacement& p) const = 0;
};

const CollectiveAlgorithm& ring_algorithm();          ///< All collectives.
const CollectiveAlgorithm& tree_algorithm();          ///< AR / Bcast / Reduce.
const CollectiveAlgorithm& hierarchical_algorithm();  ///< AR / AG / RS.

/// Repeated-pricing fast path over one fabric: precomputes every pure,
/// bytes-independent sub-result a collective_time walk derives — per-level
/// member bandwidths, and per placed group the ring latency / effective
/// bandwidth / LL products / tree latency / hierarchical phase terms / P2P
/// level — so pricing many volumes against few placements costs a handful
/// of flops per call instead of a fabric walk.
///
/// BITWISE CONTRACT: price() evaluates the same expressions on the same
/// operands in the same grouping as collective_time(topo, coll, bytes, g);
/// every cached value is itself produced by the identical expression the
/// uncached walk computes, so the results are bit-for-bit equal (pinned by
/// the fuzz property in tests/test_signature.cpp). Keep place()/price() in
/// FP lockstep with ring_latency/effective_bandwidth/tree_time/
/// hierarchical_time and the collective_time dispatcher above.
///
/// The pricer holds a REFERENCE to the topology; it must not outlive it.
/// Immutable after construction (rebind() excepted) — any number of
/// threads may share one. Construction is allocation-free.
class FabricPricer {
 public:
  FabricPricer() = default;  ///< unbound; rebind() before use.
  explicit FabricPricer(const hw::Topology& topo) { rebind(topo); }

  /// Re-derive the per-level products from `topo` (e.g. the next point of a
  /// sweep chain). References the new topology from here on.
  void rebind(const hw::Topology& topo);

  bool bound() const { return topo_ != nullptr; }
  const hw::Topology& fabric() const { return *topo_; }

  /// A validated, pre-walked group placement: everything price() needs that
  /// does not depend on the volume. Valid only against the pricer that
  /// built it, until its next rebind().
  struct Placed {
    TopoPlacement p;
    double ring_factor = 0;  ///< (g-1)/g
    double ar_factor = 0;    ///< 2 * ring_factor (AllReduce = RS + AG)
    Seconds ring_lat, ar_ring_lat;       ///< flat-ring latency, AR-doubled
    BytesPerSec eff_bw;                  ///< effective_bandwidth(topo, p)
    Seconds ll_lat, ar_ll_lat;           ///< ring latencies * ll_latency_scale
    BytesPerSec eff_ll_bw;               ///< eff_bw * ll_bandwidth_scale
    Seconds tree_lat, ar_tree_lat;       ///< tree latency sum, AR-doubled
    /// Hierarchical phases, innermost first (one per crossed level):
    /// lat_term = lvl.latency * (k-1); coef = (k-1)/k; the shard entering
    /// the phase; the (oversubscription-adjusted) per-member bandwidth.
    struct HierPhase {
      Seconds lat_term;
      double coef = 0, shard = 1;
      BytesPerSec bw;
    };
    std::array<HierPhase, hw::Topology::kMaxDepth> hier{};
    std::size_t hier_phases = 0;
    Seconds p2p_lat;    ///< innermost shared level's latency
    BytesPerSec p2p_bw; ///< its member bandwidth
  };

  /// Validate `g` against the fabric (same checks and exception as the
  /// validating collective_time overload), place it, and pre-walk it.
  Placed place(GroupPlacement g) const;
  /// Memoized place() with a STABLE reference return: the Placed lives in
  /// the pricer's memo (a deque, so references survive later insertions)
  /// until the next rebind. The batch kernel keeps pointers to these
  /// instead of copying the struct once per (candidate, group, column).
  const Placed& place_ref(GroupPlacement g) const;
  /// Pre-walk an already-built placement (check_placement still applies).
  Placed place_topo(const TopoPlacement& p) const;

  /// collective_time(fabric(), coll, bytes, pl.p), bit for bit, from the
  /// cached sub-results. Throws on bytes < 0 like the walk.
  Seconds price(ops::Collective coll, Bytes bytes, const Placed& pl) const;

 private:
  const hw::Topology* topo_ = nullptr;
  std::size_t depth_ = 0;
  std::array<BytesPerSec, hw::Topology::kMaxDepth> member_bw_{};
  std::array<Seconds, hw::Topology::kMaxDepth> latency_{};
  bool enable_tree_ = false, enable_ll_ = false, enable_hier_ = false;
  double ll_latency_scale_ = 0, ll_bandwidth_scale_ = 0;
  /// place() memo, cleared on rebind: one validated walk per distinct
  /// (size, nvs) against the current fabric — across the candidates of one
  /// grid point the same group shapes recur hundreds of times. Entries are
  /// the walk's exact output, so a memo hit returns the same bits. Only
  /// valid placements are cached (rejections re-walk and re-throw). The
  /// memo makes place() non-reentrant: a pricer must not be shared by
  /// concurrent callers (each sweep chain owns one).
  struct PlaceMemoEntry {
    std::int64_t size = 0, nvs = 0;
    Placed pl;
  };
  mutable std::deque<PlaceMemoEntry> place_memo_;
};

/// Algorithm-independent lower bound on any collective of `bytes` over
/// `group_size` members: the larger of the per-member ingress floor (every
/// member must receive (g-1)/g * V through the sum of its link bandwidths)
/// and, for each level a group that large necessarily crosses, the
/// non-resident fraction of V through one full unit's aggregate uplink.
/// Used by core/lower_bounds; conservative for every algorithm above
/// (including LL and the hierarchical phases).
Seconds collective_time_floor(const hw::Topology& topo,
                              std::int64_t group_size, Bytes bytes);

/// Fastest single-link bandwidth anywhere in the fabric — the best case a
/// point-to-point hop can see. Used for the pipeline-handoff lower bound.
BytesPerSec best_p2p_bandwidth(const hw::Topology& topo);

}  // namespace tfpe::comm
