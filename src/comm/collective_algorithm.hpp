#pragma once
// Topology-aware collective model: latency and effective bandwidth computed
// by walking the fabric levels a group placement spans, plus a pluggable
// CollectiveAlgorithm interface (flat ring, double-binary tree,
// hierarchical two-phase reduce-scatter/all-gather).
//
// For the canonical two-level fabric (hw::two_level_topology) every walk
// reproduces the legacy closed-form comm/collective_model expressions
// BITWISE — the legacy API is a thin adapter over this path, and the golden
// matrix in tests/test_topology.cpp pins the equivalence. Keep the
// floating-point expression groupings here in lockstep with the formulas
// documented in collective_model.hpp.

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "comm/collective_model.hpp"
#include "hw/topology.hpp"
#include "ops/op.hpp"

namespace tfpe::comm {

/// Per-level generalization of GroupPlacement: occupancy[i] = members of
/// the group inside one level-i unit (occupancy[0] is the legacy `nvs`).
/// Non-decreasing, and the outermost entry equals the group size — the top
/// level always spans the whole group.
struct TopoPlacement {
  std::int64_t size = 1;
  std::array<std::int64_t, hw::Topology::kMaxDepth> occupancy{};
};

/// Place a legacy (size, nvs) group on a fabric: occupancy[0] is the
/// clamped nvs, intermediate levels fill at their fan-in, and the outermost
/// level spans the whole group regardless of fan-in (sparse placements —
/// nvs below the level-0 fan-in — spill members outward, they do not
/// shrink the group).
TopoPlacement make_placement(const hw::Topology& topo, GroupPlacement g);

/// Why `g` is not a valid group placement (std::nullopt when valid):
/// requires size >= 1, 1 <= nvs <= size, and nvs | size. The clamping
/// helpers tolerate invalid placements; collective_time rejects them.
std::optional<std::string> invalid_placement_reason(GroupPlacement g);

/// Topology-aware validity: the base checks plus `nvs` must not exceed the
/// fabric's bounded leaf fan-in (a valid divisor that overfills the fast
/// domain would price a walk the machine cannot realize). Unbounded or
/// empty fabrics fall back to the base checks. The validating
/// collective_time(topo, ..., GroupPlacement) overload enforces this; the
/// legacy NetworkSpec adapter lifts to an unbounded fabric and therefore
/// only gets the base checks.
std::optional<std::string> invalid_placement_reason(const hw::Topology& topo,
                                                    GroupPlacement g);

/// Latency term of the flat ring: per-level hop counts derived from the
/// occupancy vector (level-i hops = units(i-1) - units(i)).
Seconds ring_latency(const hw::Topology& topo, const TopoPlacement& p);

/// Effective per-ring bandwidth: the minimum over every level the group
/// crosses of that level's aggregate uplink per fast-domain slice, with
/// per-level oversubscription applied.
BytesPerSec effective_bandwidth(const hw::Topology& topo,
                                const TopoPlacement& p);

/// Double-binary-tree time: latency scales with the per-level tree depths
/// instead of the ring length.
Seconds tree_time(const hw::Topology& topo, ops::Collective coll, Bytes bytes,
                  const TopoPlacement& p);

/// Hierarchical two-phase algorithm (NCCL-style): one ring phase per
/// crossed level, innermost first, each operating on the shard that
/// survives the previous phase (rail-parallel across the members of a
/// unit). AllReduce = reduce-scatter up + all-gather down (2x).
Seconds hierarchical_time(const hw::Topology& topo, ops::Collective coll,
                          Bytes bytes, const TopoPlacement& p);

/// Time for one collective over a placed group: the minimum over the
/// algorithms the topology enables (ring always; tree when
/// topo.enable_tree, hierarchical when topo.enable_hierarchical).
/// PointToPoint uses the innermost level both endpoints share.
Seconds collective_time(const hw::Topology& topo, ops::Collective coll,
                        Bytes bytes, const TopoPlacement& p);

/// Convenience: validate `g`, place it on the fabric, and time it.
Seconds collective_time(const hw::Topology& topo, ops::Collective coll,
                        Bytes bytes, GroupPlacement g);

/// One collective algorithm: a strategy the dispatcher can price for the
/// collectives it handles. Implementations are stateless singletons.
class CollectiveAlgorithm {
 public:
  virtual ~CollectiveAlgorithm() = default;
  virtual const char* name() const = 0;
  virtual bool handles(ops::Collective coll) const = 0;
  virtual Seconds time(const hw::Topology& topo, ops::Collective coll,
                       Bytes bytes, const TopoPlacement& p) const = 0;
};

const CollectiveAlgorithm& ring_algorithm();          ///< All collectives.
const CollectiveAlgorithm& tree_algorithm();          ///< AR / Bcast / Reduce.
const CollectiveAlgorithm& hierarchical_algorithm();  ///< AR / AG / RS.

/// Algorithm-independent lower bound on any collective of `bytes` over
/// `group_size` members: the larger of the per-member ingress floor (every
/// member must receive (g-1)/g * V through the sum of its link bandwidths)
/// and, for each level a group that large necessarily crosses, the
/// non-resident fraction of V through one full unit's aggregate uplink.
/// Used by core/lower_bounds; conservative for every algorithm above
/// (including LL and the hierarchical phases).
Seconds collective_time_floor(const hw::Topology& topo,
                              std::int64_t group_size, Bytes bytes);

/// Fastest single-link bandwidth anywhere in the fabric — the best case a
/// point-to-point hop can see. Used for the pipeline-handoff lower bound.
BytesPerSec best_p2p_bandwidth(const hw::Topology& topo);

}  // namespace tfpe::comm
