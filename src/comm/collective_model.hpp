#pragma once
// Analytical collective-communication time model (paper §III S2).
//
// Collectives run over a GPU group of size g of which `nvs` consecutive
// members share a fast (NVSwitch) domain; the remaining hops cross the slow
// (InfiniBand) network. Following the NCCL ring performance model:
//
//   t_latency = alpha_s * (g/nvs - 1) + alpha_f * (g - g/nvs)
//   t         = t_latency + factor * V / min(r * beta_s * eta, beta_f * eta)
//
// where V is the full tensor size in bytes, factor is (g-1)/g for
// AllGather/ReduceScatter (2x for AllReduce), and r is the number of NIC
// rails the group can drive — proportional to the GPUs-per-node it occupies,
// which is how a larger fast domain "amplifies" the slow bandwidth
// (validated in the paper's Fig. A1 and against our discrete-event simulator).
//
// This header is the legacy two-level entry point; since the hierarchical
// topology layer landed it is a thin adapter over comm/collective_algorithm,
// which walks an arbitrary-depth hw::Topology. The two paths are
// bitwise-identical for the canonical two-level fabric (golden matrix in
// tests/test_topology.cpp).

#include <cstdint>

#include "hw/network.hpp"
#include "ops/op.hpp"

namespace tfpe::comm {

/// Placement of a communication group on the machine.
struct GroupPlacement {
  std::int64_t size = 1;  ///< g: GPUs participating in the collective.
  std::int64_t nvs = 1;   ///< GPUs of this group sharing one fast domain.
};

/// Latency term of the two-level ring: slow hops between fast domains plus
/// fast hops inside them.
Seconds ring_latency(const hw::NetworkSpec& net, GroupPlacement g);

/// Effective per-ring bandwidth available to the group: the slower of the
/// multi-rail IB path and the NVS path (pure NVS when the group fits in one
/// fast domain).
BytesPerSec effective_bandwidth(const hw::NetworkSpec& net, GroupPlacement g);

/// Time for one collective moving a full tensor of `bytes` over the group.
/// Returns 0 for groups of size <= 1 (PointToPoint excepted: `bytes` is the
/// message size between two neighbors, and `g.nvs >= 2` marks an in-domain
/// neighbor). When net.enable_tree is set, AllReduce / Broadcast / Reduce
/// use min(ring, tree).
///
/// Throws std::invalid_argument for negative `bytes` and — unless the
/// collective is None or the volume is zero — for invalid placements
/// (nvs <= 0, nvs > size, or size not a multiple of nvs), which previously
/// produced silent negative hop counts in ring_latency. The clamping
/// helpers above stay tolerant for exploratory use.
Seconds collective_time(const hw::NetworkSpec& net, ops::Collective coll,
                        Bytes bytes, GroupPlacement g);

/// Double-binary-tree time for AllReduce / Broadcast / Reduce: latency
/// scales with the tree depth instead of the ring length, bandwidth stays
/// pipelined. Exposed for tests and the collective-algorithm ablation.
Seconds tree_time(const hw::NetworkSpec& net, ops::Collective coll,
                  Bytes bytes, GroupPlacement g);

}  // namespace tfpe::comm
