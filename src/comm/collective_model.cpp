#include "comm/collective_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tfpe::comm {

Seconds ring_latency(const hw::NetworkSpec& net, GroupPlacement g) {
  const std::int64_t nvs = std::clamp<std::int64_t>(g.nvs, 1, g.size);
  const double nodes = static_cast<double>(g.size) / static_cast<double>(nvs);
  const double slow_hops = nodes - 1.0;
  const double fast_hops = static_cast<double>(g.size) - nodes;
  return net.ib_latency * slow_hops + net.nvs_latency * fast_hops;
}

BytesPerSec effective_bandwidth(const hw::NetworkSpec& net, GroupPlacement g) {
  const std::int64_t nvs = std::clamp<std::int64_t>(g.nvs, 1, g.size);
  const BytesPerSec bw_fast = net.effective_nvs_bandwidth();
  if (nvs == g.size) return bw_fast;  // fits inside one fast domain
  // The group occupies `nvs` GPUs per node, so NCCL can drive that many
  // rail-shares of the slow network concurrently.
  BytesPerSec bw_slow =
      static_cast<double>(nvs) * net.effective_ib_bandwidth_per_gpu();
  // Fat-tree oversubscription: traffic leaving the pod shares the thinner
  // spine links.
  if (net.pod_size > 0 && g.size > net.pod_size && net.oversubscription > 1) {
    bw_slow /= net.oversubscription;
  }
  return std::min(bw_slow, bw_fast);
}

Seconds tree_time(const hw::NetworkSpec& net, ops::Collective coll,
                  Bytes bytes, GroupPlacement g) {
  if (g.size <= 1 || bytes <= Bytes(0)) return Seconds(0);
  const std::int64_t nvs = std::clamp<std::int64_t>(g.nvs, 1, g.size);
  const double nodes = static_cast<double>(g.size) / static_cast<double>(nvs);
  // Tree depth: slow hops between node roots, fast hops inside nodes.
  const double slow_depth = nodes > 1 ? std::ceil(std::log2(nodes)) : 0.0;
  const double fast_depth =
      nvs > 1 ? std::ceil(std::log2(static_cast<double>(nvs))) : 0.0;
  Seconds latency = net.ib_latency * slow_depth + net.nvs_latency * fast_depth;
  double passes = 1.0;  // Broadcast / Reduce: one pipelined pass
  if (coll == ops::Collective::AllReduce) {
    passes = 2.0;  // reduce up + broadcast down
    latency *= 2.0;
  }
  return latency + passes * (bytes / effective_bandwidth(net, g));
}

Seconds collective_time(const hw::NetworkSpec& net, ops::Collective coll,
                        Bytes bytes, GroupPlacement g) {
  if (bytes < Bytes(0)) throw std::invalid_argument("collective_time: bytes < 0");
  if (coll == ops::Collective::None || bytes == Bytes(0)) return Seconds(0);

  if (coll == ops::Collective::PointToPoint) {
    const bool in_domain = g.nvs >= 2;
    const BytesPerSec bw = in_domain ? net.effective_nvs_bandwidth()
                                     : net.effective_ib_bandwidth_per_gpu();
    const Seconds alpha = in_domain ? net.nvs_latency : net.ib_latency;
    return alpha + bytes / bw;
  }

  if (g.size <= 1) return Seconds(0);

  const double gsz = static_cast<double>(g.size);
  const double ring_factor = (gsz - 1.0) / gsz;
  double factor = ring_factor;
  Seconds latency = ring_latency(net, g);
  switch (coll) {
    case ops::Collective::AllGather:
    case ops::Collective::ReduceScatter:
    case ops::Collective::Broadcast:
    case ops::Collective::Reduce:
    // AllToAll: each GPU keeps 1/g of its tensor and exchanges the rest —
    // the same (g-1)/g * V traffic as a ring AllGather of V.
    case ops::Collective::AllToAll:
      break;
    case ops::Collective::AllReduce:
      // Ring AllReduce = ReduceScatter + AllGather.
      factor = 2.0 * ring_factor;
      latency *= 2.0;
      break;
    default:
      break;
  }
  Seconds best = latency + factor * (bytes / effective_bandwidth(net, g));
  if (net.enable_ll) {
    // NCCL LL protocol: flag-based synchronization cuts the per-hop latency
    // at the cost of half the payload bandwidth.
    const Seconds ll =
        latency * net.ll_latency_scale +
        factor * (bytes / (effective_bandwidth(net, g) * net.ll_bandwidth_scale));
    best = std::min(best, ll);
  }
  if (net.enable_tree && (coll == ops::Collective::AllReduce ||
                          coll == ops::Collective::Broadcast ||
                          coll == ops::Collective::Reduce)) {
    best = std::min(best, tree_time(net, coll, bytes, g));
  }
  return best;
}

}  // namespace tfpe::comm
