#include "comm/collective_model.hpp"

#include <stdexcept>

#include "comm/collective_algorithm.hpp"
#include "hw/topology.hpp"

namespace tfpe::comm {

// The legacy two-level API is a thin adapter over the topology walk: every
// call lifts the NetworkSpec into the canonical two-level fabric and the
// (size, nvs) pair into its occupancy vector. The golden matrix in
// tests/test_topology.cpp pins this path bitwise against the original
// closed-form expressions.

namespace {

hw::Topology lifted(const hw::NetworkSpec& net) {
  // Fan-ins are irrelevant to the walks (only occupancies matter), so the
  // lift needs neither the NVS-domain size nor the GPU count.
  return hw::two_level_topology(net, 0, 0);
}

}  // namespace

Seconds ring_latency(const hw::NetworkSpec& net, GroupPlacement g) {
  const hw::Topology topo = lifted(net);
  return ring_latency(topo, make_placement(topo, g));
}

BytesPerSec effective_bandwidth(const hw::NetworkSpec& net, GroupPlacement g) {
  const hw::Topology topo = lifted(net);
  return effective_bandwidth(topo, make_placement(topo, g));
}

Seconds tree_time(const hw::NetworkSpec& net, ops::Collective coll,
                  Bytes bytes, GroupPlacement g) {
  const hw::Topology topo = lifted(net);
  return tree_time(topo, coll, bytes, make_placement(topo, g));
}

Seconds collective_time(const hw::NetworkSpec& net, ops::Collective coll,
                        Bytes bytes, GroupPlacement g) {
  if (bytes < Bytes(0)) {
    throw std::invalid_argument("collective_time: bytes < 0");
  }
  if (coll == ops::Collective::None || bytes == Bytes(0)) return Seconds(0);
  return collective_time(lifted(net), coll, bytes, g);
}

}  // namespace tfpe::comm
