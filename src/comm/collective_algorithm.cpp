#include "comm/collective_algorithm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tfpe::comm {

namespace {

/// Bandwidth one member drives at `level` (level 0: its fast-domain port;
/// outer levels: its NIC rail set). Same expression grouping as the legacy
/// effective_*_bandwidth helpers — do not refactor, bitwise-pinned.
BytesPerSec member_bandwidth(const hw::Topology& topo, std::size_t level) {
  const hw::FabricLevel& lvl = topo.levels[level];
  if (level == 0) return lvl.bandwidth * topo.efficiency;
  return lvl.bandwidth * (lvl.rails * topo.efficiency);
}

bool oversubscribed(const hw::FabricLevel& lvl, std::int64_t group_size) {
  return lvl.pod_size > 0 && group_size > lvl.pod_size &&
         lvl.oversubscription > 1;
}

void check_placement(const hw::Topology& topo, const TopoPlacement& p) {
  if (topo.empty()) {
    throw std::invalid_argument("collective_time: empty topology");
  }
  if (topo.depth() > hw::Topology::kMaxDepth) {
    throw std::invalid_argument("collective_time: topology deeper than " +
                                std::to_string(hw::Topology::kMaxDepth));
  }
  std::int64_t prev = 1;
  for (std::size_t i = 0; i < topo.depth(); ++i) {
    if (p.occupancy[i] < prev) {
      throw std::invalid_argument(
          "collective_time: occupancy must be non-decreasing");
    }
    prev = p.occupancy[i];
  }
  if (p.size >= 1 && p.occupancy[topo.depth() - 1] != p.size) {
    throw std::invalid_argument(
        "collective_time: outermost occupancy must equal the group size");
  }
}

}  // namespace

TopoPlacement make_placement(const hw::Topology& topo, GroupPlacement g) {
  TopoPlacement p;
  p.size = g.size;
  std::int64_t occ = std::clamp<std::int64_t>(g.nvs, 1, std::max<std::int64_t>(
                                                            g.size, 1));
  const std::size_t d = topo.depth();
  for (std::size_t i = 0; i < d && i < hw::Topology::kMaxDepth; ++i) {
    if (i > 0) {
      const std::int64_t fan = topo.levels[i].fan_in;
      occ = fan > 0 ? std::min(p.size, occ * fan) : p.size;
    }
    if (i + 1 == d) occ = p.size;  // the top level spans the whole group
    p.occupancy[i] = std::max<std::int64_t>(occ, 1);
  }
  return p;
}

std::optional<std::string> invalid_placement_reason(GroupPlacement g) {
  if (g.size < 1) return "group size must be >= 1";
  if (g.nvs < 1) return "nvs must be >= 1";
  if (g.nvs > g.size) return "nvs exceeds the group size";
  if (g.size % g.nvs != 0) return "nvs must divide the group size";
  return std::nullopt;
}

std::optional<std::string> invalid_placement_reason(const hw::Topology& topo,
                                                    GroupPlacement g) {
  if (auto why = invalid_placement_reason(g)) return why;
  const std::int64_t leaf = topo.leaf_fan_in();
  if (leaf > 0 && g.nvs > leaf) {
    return "nvs exceeds the fabric's leaf fan-in (" + std::to_string(leaf) +
           ")";
  }
  return std::nullopt;
}

Seconds ring_latency(const hw::Topology& topo, const TopoPlacement& p) {
  // Level-i hops of the flat ring: crossing out of a level-(i-1) unit uses
  // a level-i link, so hops_i = units(i-1) - units(i) with units(-1) = g.
  // For the two-level fabric this is exactly the legacy
  //   alpha_s * (g/nvs - 1) + alpha_f * (g - g/nvs).
  const double gsz = static_cast<double>(p.size);
  double units_prev = gsz;
  Seconds total;
  for (std::size_t i = 0; i < topo.depth(); ++i) {
    const double units = gsz / static_cast<double>(p.occupancy[i]);
    total += topo.levels[i].latency * (units_prev - units);
    units_prev = units;
  }
  return total;
}

BytesPerSec effective_bandwidth(const hw::Topology& topo,
                                const TopoPlacement& p) {
  BytesPerSec best = member_bandwidth(topo, 0);
  if (p.occupancy[0] >= p.size) return best;  // fits in one fast domain
  for (std::size_t i = 1; i < topo.depth(); ++i) {
    if (p.occupancy[i - 1] >= p.size) break;  // level not crossed
    const hw::FabricLevel& lvl = topo.levels[i];
    // The group occupies occupancy[i-1] members per level-(i-1) unit, so it
    // can drive that many rail-shares of this level concurrently.
    BytesPerSec bw = static_cast<double>(p.occupancy[i - 1]) *
                     member_bandwidth(topo, i);
    if (oversubscribed(lvl, p.size)) bw /= lvl.oversubscription;
    best = std::min(bw, best);
  }
  return best;
}

Seconds tree_time(const hw::Topology& topo, ops::Collective coll, Bytes bytes,
                  const TopoPlacement& p) {
  if (p.size <= 1 || bytes <= Bytes(0)) return Seconds(0);
  const double gsz = static_cast<double>(p.size);
  // Per-level tree depth: ceil(log2(branching)) where branching is the
  // number of level-(i-1) units one level-i subtree aggregates.
  double units_prev = gsz;
  Seconds latency;
  for (std::size_t i = 0; i < topo.depth(); ++i) {
    const double units = gsz / static_cast<double>(p.occupancy[i]);
    const double branching =
        i == 0 ? static_cast<double>(p.occupancy[0]) : units_prev / units;
    const double depth = branching > 1.0 ? std::ceil(std::log2(branching)) : 0.0;
    latency += topo.levels[i].latency * depth;
    units_prev = units;
  }
  double passes = 1.0;  // Broadcast / Reduce: one pipelined pass
  if (coll == ops::Collective::AllReduce) {
    passes = 2.0;  // reduce up + broadcast down
    latency *= 2.0;
  }
  return latency + passes * (bytes / effective_bandwidth(topo, p));
}

Seconds hierarchical_time(const hw::Topology& topo, ops::Collective coll,
                          Bytes bytes, const TopoPlacement& p) {
  if (p.size <= 1 || bytes <= Bytes(0)) return Seconds(0);
  // One ring phase per crossed level, innermost first. Phase i runs among
  // the k_i = occ_i / occ_{i-1} units inside each level-i unit,
  // rail-parallel across the occ_{i-1} members of a unit, on the 1/occ_{i-1}
  // shard that survives the inner phases (reduce-scatter direction; the
  // all-gather direction is its mirror and costs the same).
  Seconds total;
  double shard = 1.0;
  std::int64_t prev_occ = 1;
  for (std::size_t i = 0; i < topo.depth(); ++i) {
    const std::int64_t occ = p.occupancy[i];
    if (occ <= prev_occ) continue;
    const hw::FabricLevel& lvl = topo.levels[i];
    const double k =
        static_cast<double>(occ) / static_cast<double>(prev_occ);
    BytesPerSec bw = member_bandwidth(topo, i);
    if (i > 0 && oversubscribed(lvl, p.size)) bw /= lvl.oversubscription;
    total += lvl.latency * (k - 1.0) +
             ((k - 1.0) / k) * ((bytes * shard) / bw);
    shard /= k;
    prev_occ = occ;
  }
  if (coll == ops::Collective::AllReduce) total *= 2.0;
  return total;
}

namespace {

class RingAlgorithm final : public CollectiveAlgorithm {
 public:
  const char* name() const override { return "ring"; }
  bool handles(ops::Collective coll) const override {
    return coll != ops::Collective::None &&
           coll != ops::Collective::PointToPoint;
  }
  Seconds time(const hw::Topology& topo, ops::Collective coll, Bytes bytes,
               const TopoPlacement& p) const override {
    const double gsz = static_cast<double>(p.size);
    const double ring_factor = (gsz - 1.0) / gsz;
    double factor = ring_factor;
    Seconds latency = ring_latency(topo, p);
    if (coll == ops::Collective::AllReduce) {
      // Ring AllReduce = ReduceScatter + AllGather.
      factor = 2.0 * ring_factor;
      latency *= 2.0;
    }
    Seconds best = latency + factor * (bytes / effective_bandwidth(topo, p));
    if (topo.enable_ll) {
      // NCCL LL protocol: flag-based synchronization cuts the per-hop
      // latency at the cost of half the payload bandwidth.
      const Seconds ll = latency * topo.ll_latency_scale +
                         factor * (bytes / (effective_bandwidth(topo, p) *
                                            topo.ll_bandwidth_scale));
      best = std::min(best, ll);
    }
    return best;
  }
};

class TreeAlgorithm final : public CollectiveAlgorithm {
 public:
  const char* name() const override { return "tree"; }
  bool handles(ops::Collective coll) const override {
    return coll == ops::Collective::AllReduce ||
           coll == ops::Collective::Broadcast ||
           coll == ops::Collective::Reduce;
  }
  Seconds time(const hw::Topology& topo, ops::Collective coll, Bytes bytes,
               const TopoPlacement& p) const override {
    return tree_time(topo, coll, bytes, p);
  }
};

class HierarchicalAlgorithm final : public CollectiveAlgorithm {
 public:
  const char* name() const override { return "hierarchical"; }
  bool handles(ops::Collective coll) const override {
    return coll == ops::Collective::AllReduce ||
           coll == ops::Collective::AllGather ||
           coll == ops::Collective::ReduceScatter;
  }
  Seconds time(const hw::Topology& topo, ops::Collective coll, Bytes bytes,
               const TopoPlacement& p) const override {
    return hierarchical_time(topo, coll, bytes, p);
  }
};

}  // namespace

const CollectiveAlgorithm& ring_algorithm() {
  static const RingAlgorithm a;
  return a;
}
const CollectiveAlgorithm& tree_algorithm() {
  static const TreeAlgorithm a;
  return a;
}
const CollectiveAlgorithm& hierarchical_algorithm() {
  static const HierarchicalAlgorithm a;
  return a;
}

Seconds collective_time(const hw::Topology& topo, ops::Collective coll,
                        Bytes bytes, const TopoPlacement& p) {
  check_placement(topo, p);
  if (bytes < Bytes(0)) {
    throw std::invalid_argument("collective_time: bytes < 0");
  }
  if (coll == ops::Collective::None || bytes == Bytes(0)) return Seconds(0);

  if (coll == ops::Collective::PointToPoint) {
    // The innermost level both endpoints share; a group that spans no level
    // (size 1) falls through to the outermost link.
    std::size_t level = topo.depth() - 1;
    for (std::size_t i = 0; i < topo.depth(); ++i) {
      if (p.occupancy[i] >= 2) {
        level = i;
        break;
      }
    }
    return topo.levels[level].latency + bytes / member_bandwidth(topo, level);
  }

  if (p.size <= 1) return Seconds(0);

  Seconds best = ring_algorithm().time(topo, coll, bytes, p);
  if (topo.enable_tree && tree_algorithm().handles(coll)) {
    best = std::min(best, tree_algorithm().time(topo, coll, bytes, p));
  }
  if (topo.enable_hierarchical && hierarchical_algorithm().handles(coll)) {
    best = std::min(best, hierarchical_algorithm().time(topo, coll, bytes, p));
  }
  return best;
}

Seconds collective_time(const hw::Topology& topo, ops::Collective coll,
                        Bytes bytes, GroupPlacement g) {
  if (const auto why = invalid_placement_reason(topo, g)) {
    throw std::invalid_argument(
        "collective_time: " + *why + " (size=" + std::to_string(g.size) +
        ", nvs=" + std::to_string(g.nvs) + ")");
  }
  return collective_time(topo, coll, bytes, make_placement(topo, g));
}

void FabricPricer::rebind(const hw::Topology& topo) {
  if (topo.empty()) {
    throw std::invalid_argument("FabricPricer: empty topology");
  }
  if (topo.depth() > hw::Topology::kMaxDepth) {
    throw std::invalid_argument("FabricPricer: topology deeper than " +
                                std::to_string(hw::Topology::kMaxDepth));
  }
  topo_ = &topo;
  depth_ = topo.depth();
  for (std::size_t i = 0; i < depth_; ++i) {
    // The cached value IS member_bandwidth's result — not a refactored
    // expression — so reading it later cannot change any downstream bits.
    member_bw_[i] = member_bandwidth(topo, i);
    latency_[i] = topo.levels[i].latency;
  }
  enable_tree_ = topo.enable_tree;
  enable_ll_ = topo.enable_ll;
  enable_hier_ = topo.enable_hierarchical;
  ll_latency_scale_ = topo.ll_latency_scale;
  ll_bandwidth_scale_ = topo.ll_bandwidth_scale;
  place_memo_.clear();
}

FabricPricer::Placed FabricPricer::place(GroupPlacement g) const {
  return place_ref(g);
}

const FabricPricer::Placed& FabricPricer::place_ref(GroupPlacement g) const {
  if (!bound()) throw std::logic_error("FabricPricer::place: unbound pricer");
  for (const PlaceMemoEntry& m : place_memo_) {
    if (m.size == g.size && m.nvs == g.nvs) return m.pl;
  }
  if (const auto why = invalid_placement_reason(*topo_, g)) {
    // Same rejection (and message) as the validating collective_time
    // overload this fast path replaces.
    throw std::invalid_argument(
        "collective_time: " + *why + " (size=" + std::to_string(g.size) +
        ", nvs=" + std::to_string(g.nvs) + ")");
  }
  place_memo_.push_back({g.size, g.nvs, place_topo(make_placement(*topo_, g))});
  return place_memo_.back().pl;
}

FabricPricer::Placed FabricPricer::place_topo(const TopoPlacement& p) const {
  if (!bound()) throw std::logic_error("FabricPricer::place: unbound pricer");
  const hw::Topology& topo = *topo_;
  check_placement(topo, p);
  Placed pl;
  pl.p = p;

  // Flat ring (every collective): the exact sub-results RingAlgorithm::time
  // derives per call, computed by the same functions.
  const double gsz = static_cast<double>(p.size);
  pl.ring_factor = (gsz - 1.0) / gsz;
  pl.ar_factor = 2.0 * pl.ring_factor;
  pl.ring_lat = ring_latency(topo, p);
  pl.ar_ring_lat = pl.ring_lat * 2.0;  // the walk's `latency *= 2.0`
  pl.eff_bw = effective_bandwidth(topo, p);
  if (enable_ll_) {
    pl.ll_lat = pl.ring_lat * ll_latency_scale_;
    pl.ar_ll_lat = pl.ar_ring_lat * ll_latency_scale_;
    pl.eff_ll_bw = pl.eff_bw * ll_bandwidth_scale_;
  }

  if (enable_tree_) {
    // tree_time's latency accumulation, verbatim.
    double units_prev = gsz;
    Seconds latency;
    for (std::size_t i = 0; i < depth_; ++i) {
      const double units = gsz / static_cast<double>(p.occupancy[i]);
      const double branching =
          i == 0 ? static_cast<double>(p.occupancy[0]) : units_prev / units;
      const double depth =
          branching > 1.0 ? std::ceil(std::log2(branching)) : 0.0;
      latency += topo.levels[i].latency * depth;
      units_prev = units;
    }
    pl.tree_lat = latency;
    pl.ar_tree_lat = latency * 2.0;
  }

  if (enable_hier_) {
    // hierarchical_time's per-phase pure terms: the shard entering each
    // phase, the (oversubscription-adjusted) bandwidth, and the latency /
    // (k-1)/k products — bytes enters only through (bytes * shard) / bw.
    double shard = 1.0;
    std::int64_t prev_occ = 1;
    for (std::size_t i = 0; i < depth_; ++i) {
      const std::int64_t occ = p.occupancy[i];
      if (occ <= prev_occ) continue;
      const hw::FabricLevel& lvl = topo.levels[i];
      const double k = static_cast<double>(occ) / static_cast<double>(prev_occ);
      BytesPerSec bw = member_bandwidth(topo, i);
      if (i > 0 && oversubscribed(lvl, p.size)) bw /= lvl.oversubscription;
      Placed::HierPhase& h = pl.hier[pl.hier_phases++];
      h.lat_term = lvl.latency * (k - 1.0);
      h.coef = (k - 1.0) / k;
      h.shard = shard;
      h.bw = bw;
      shard /= k;
      prev_occ = occ;
    }
  }

  // P2P: the innermost level both endpoints share (collective_time's scan).
  std::size_t level = depth_ - 1;
  for (std::size_t i = 0; i < depth_; ++i) {
    if (p.occupancy[i] >= 2) {
      level = i;
      break;
    }
  }
  pl.p2p_lat = latency_[level];
  pl.p2p_bw = member_bw_[level];
  return pl;
}

Seconds FabricPricer::price(ops::Collective coll, Bytes bytes,
                            const Placed& pl) const {
  // Mirror of the collective_time dispatcher over the cached sub-results —
  // same branches, same expression groupings, same min order.
  if (bytes < Bytes(0)) {
    throw std::invalid_argument("collective_time: bytes < 0");
  }
  if (coll == ops::Collective::None || bytes == Bytes(0)) return Seconds(0);
  if (coll == ops::Collective::PointToPoint) {
    return pl.p2p_lat + bytes / pl.p2p_bw;
  }
  if (pl.p.size <= 1) return Seconds(0);

  const bool ar = coll == ops::Collective::AllReduce;
  const double factor = ar ? pl.ar_factor : pl.ring_factor;
  Seconds best =
      (ar ? pl.ar_ring_lat : pl.ring_lat) + factor * (bytes / pl.eff_bw);
  if (enable_ll_) {
    const Seconds ll =
        (ar ? pl.ar_ll_lat : pl.ll_lat) + factor * (bytes / pl.eff_ll_bw);
    best = std::min(best, ll);
  }
  if (enable_tree_ &&
      (ar || coll == ops::Collective::Broadcast ||
       coll == ops::Collective::Reduce)) {
    const double passes = ar ? 2.0 : 1.0;
    const Seconds t =
        (ar ? pl.ar_tree_lat : pl.tree_lat) + passes * (bytes / pl.eff_bw);
    best = std::min(best, t);
  }
  if (enable_hier_ &&
      (ar || coll == ops::Collective::AllGather ||
       coll == ops::Collective::ReduceScatter)) {
    Seconds total;
    for (std::size_t j = 0; j < pl.hier_phases; ++j) {
      const Placed::HierPhase& h = pl.hier[j];
      total += h.lat_term + h.coef * ((bytes * h.shard) / h.bw);
    }
    if (ar) total *= 2.0;
    best = std::min(best, total);
  }
  return best;
}

Seconds collective_time_floor(const hw::Topology& topo,
                              std::int64_t group_size, Bytes bytes) {
  if (topo.empty() || group_size <= 1 || bytes <= Bytes(0)) return Seconds(0);
  const double g = static_cast<double>(group_size);

  // Per-member ingress floor: every algorithm must deliver (g-1)/g * V to
  // each member through the sum of its link bandwidths (mediant inequality;
  // shared NICs across outer levels only make the true time larger).
  BytesPerSec member_sum = member_bandwidth(topo, 0);
  for (std::size_t i = 1; i < topo.depth(); ++i) {
    member_sum += member_bandwidth(topo, i);
  }
  Seconds floor = ((g - 1.0) / g) * (bytes / member_sum);

  // Necessarily-crossed levels: a group larger than one level-(i-1) unit
  // must move the non-resident fraction of V into each unit through its
  // aggregate uplink (at most cap_{i-1} members driving their rails),
  // whatever the algorithm.
  std::int64_t cap = topo.levels[0].fan_in;
  for (std::size_t i = 1; i < topo.depth(); ++i) {
    if (cap <= 0) break;  // unbounded level below: never necessarily crossed
    if (group_size <= cap) break;
    const hw::FabricLevel& lvl = topo.levels[i];
    BytesPerSec uplink = static_cast<double>(cap) * member_bandwidth(topo, i);
    if (oversubscribed(lvl, group_size)) uplink /= lvl.oversubscription;
    const double non_resident = 1.0 - static_cast<double>(cap) / g;
    floor = std::max(floor, non_resident * (bytes / uplink));
    if (lvl.fan_in <= 0) {
      cap = 0;
    } else {
      cap *= lvl.fan_in;
    }
  }
  return floor;
}

BytesPerSec best_p2p_bandwidth(const hw::Topology& topo) {
  BytesPerSec best = member_bandwidth(topo, 0);
  for (std::size_t i = 1; i < topo.depth(); ++i) {
    best = std::max(best, member_bandwidth(topo, i));
  }
  return best;
}

}  // namespace tfpe::comm
