#pragma once
// Batched structure-of-arrays lowering of a CostSignature: the evaluation
// hot path restructured from per-op scalar walks into contiguous-array
// kernels that time N placements (and M systems) per signature in one pass.
//
// The scalar two-phase path (core/cost_signature.hpp) walks the AoS
// SigOp/SigComm records once per placement, re-pricing every collective
// request with a full fabric walk each time. Across the placements of one
// candidate those walks are massively redundant: a request's
// collective_time depends on the placement only through its group's
// (size, nvs) pair, and across an enumerated placement set each group takes
// just a handful of distinct nvs values. lower_batched() packs the operands
// into flat arrays once per signature; time_placements_batch() then
//   * dedupes the comm pool into one pricing row per distinct
//     (collective, group, panel-bytes) triple and prices each row once
//     per DISTINCT nvs value of its group, on first read (a small table
//     instead of |placements| x |requests| fabric walks),
//   * streams every placement through one linear pass over the packed
//     arrays, assembling per-op exposed-communication sums, stage times and
//     the pipeline/DP terms from table lookups,
//   * memoizes the placement-dependent P2P (two variants: nvsp fast/slow)
//     and DP-collective terms (one per distinct DP-group nvs).
//
// BITWISE CONTRACT: every arithmetic statement evaluates the same pure
// functions on the same operands in the same order as the scalar
// time_placement/bind_system, so the results are bit-for-bit identical —
// not approximately equal (guarded by the golden matrix and the randomized
// property tests in tests/test_signature.cpp / tests/test_sweep_pipeline.cpp,
// the same discipline as the two-phase split itself). Keep this file in FP
// lockstep with core/cost_signature.cpp and core/evaluator.cpp.
//
// Thread-safety: BatchedSignature is immutable after lower_batched(); any
// number of threads may share it (cross-sweep sharing lives in
// search::BatchedCache). BatchScratch is per-thread mutable state.

#include <array>
#include <cstdint>
#include <vector>

#include "comm/collective_algorithm.hpp"
#include "core/cost_signature.hpp"

namespace tfpe::core {

/// Hardware-invariant SoA packing of one CostSignature. Parallel arrays
/// (one slot per CostSignature::ops entry, in op order) plus a flattened
/// comm pool in CostSignature::comm order; indices are shared with the AoS
/// form so the two views describe the same signature.
struct BatchedSignature {
  // Per-op roofline operands (op order preserved).
  std::vector<Flops> fwd_flops, bwd_flops;
  std::vector<Bytes> fwd_bytes, bwd_bytes;
  std::vector<std::int64_t> panels;
  std::vector<std::uint8_t> tensor_core;  ///< 0/1 (vector<bool> defeats SoA).
  std::vector<std::uint32_t> fwd_comm_begin, fwd_comm_count;
  std::vector<std::uint32_t> bwd_comm_begin, bwd_comm_count;
  /// Ops with panels > 1, in op order — mirrors SystemTiming::summa_panel_time.
  std::vector<std::uint32_t> summa_ops;

  // Comm pool (CostSignature::comm order preserved).
  std::vector<ops::Collective> comm_kind;
  std::vector<std::uint8_t> comm_group;  ///< ops::CommGroup as an index.
  /// Pre-scaled per-panel volume: req.bytes * (1 / op.panels), the exact
  /// product the scalar exposed_comm feeds to collective_time.
  std::vector<Bytes> comm_panel_bytes;
  /// Bitmask of the comm groups that actually appear in the pool
  /// (bit g set <=> some request has comm_group == g). The per-placement
  /// comm sums depend on the placement only through these groups' nvs
  /// values, so placements agreeing on them share one comm block.
  std::uint8_t comm_groups_mask = 0;
  /// Pricing-row dedup: requests with the same (collective, group) and
  /// bit-identical panel volume are the same pure collective_time call
  /// under every placement — a transformer layer repeats its boundary
  /// allreduce per op — so the comm table carries one priced row per
  /// distinct triple. comm_price_row maps each request to its table row;
  /// price_rep holds one representative request index per row.
  std::vector<std::uint32_t> comm_price_row;
  std::vector<std::uint32_t> price_rep;

  // Head ops (head order preserved).
  std::vector<Flops> head_fwd_flops, head_bwd_flops;
  std::vector<Bytes> head_fwd_bytes, head_bwd_bytes;
  std::vector<std::uint8_t> head_tensor_core;

  std::size_t op_count() const { return fwd_flops.size(); }
  std::size_t comm_count() const { return comm_kind.size(); }
};

/// Pack a compiled signature into its SoA form. Pure; call once per
/// signature and share the result (search::BatchedCache).
BatchedSignature lower_batched(const CostSignature& sig);

/// Reusable per-thread scratch for time_placements_batch, so the placement
/// scan of a sweep performs no per-candidate allocations once warm. Tables
/// are EPOCH-RESET: each kernel call bumps `epoch` and lazily reclaims the
/// cell storage through the per-cell epoch stamps instead of clearing it,
/// so a warm scratch's per-call cost is independent of its high-water mark.
struct BatchScratch {
  /// Distinct nvs values per comm group (TP1, TP2, DP, PP) and each
  /// placement's column index into them.
  std::array<std::vector<std::int64_t>, 4> distinct_nvs;
  std::array<std::vector<std::uint32_t>, 4> nvs_column;
  /// Pre-walked placement of each (group, distinct-nvs column) pair, for
  /// the groups in comm_groups_mask: validation and the fabric walk are
  /// hoisted here, once per column, out of the per-cell pricing loop. The
  /// entries point into the pricer's place_ref memo — rewritten at the top
  /// of every kernel call, valid only until the pricer rebinds.
  std::array<std::vector<const comm::FabricPricer::Placed*>, 4> placed;
  /// comm-table row offsets (one per pricing row, see comm_price_row) and
  /// the priced table itself. A cell is valid when its epoch stamp equals
  /// `epoch`; stale cells are re-priced on first use. Cells are priced one
  /// pricing-row pass per comm-block miss (the block memo below), so
  /// columns no missed placement lands on are never priced.
  std::vector<std::uint32_t> row_offset;
  std::vector<Seconds> comm_table;
  std::vector<std::uint64_t> cell_epoch;
  std::uint64_t epoch = 0;
  /// Comm-block memo: the op-walk's outputs depend on the placement only
  /// through the table columns of the groups in comm_groups_mask, so
  /// placements agreeing on those columns share one block bit for bit.
  struct CommBlock {
    Seconds t_fwd_stage, t_bwd_stage;
    double tp_comm = 0, bubble = 0;
  };
  std::vector<std::uint64_t> block_keys;
  std::vector<CommBlock> blocks;
  /// DP-term memo (t_reduce_scatter, t_all_gather per distinct DP-group
  /// nvs), kept here so a warm scan prices DP terms allocation-free.
  std::vector<std::int64_t> dp_keys;
  std::vector<std::array<Seconds, 2>> dp_terms;
};

/// SoA bind: bitwise-identical to bind_system(sig, sys, opts) — the same
/// panel_roofline calls accumulated in the same op order, read from the
/// packed arrays instead of the AoS records. `capture_fabric = false` skips
/// the SystemTiming::fabric copy for callers that price collectives through
/// an external FabricPricer (the generation-major sweep path) — every other
/// field is unaffected, but time_placement/time_signature must NOT be fed
/// such a timing.
SystemTiming bind_system_batched(const CostSignature& sig,
                                 const BatchedSignature& bat,
                                 const hw::SystemConfig& sys,
                                 const EvalOptions& opts = {},
                                 bool capture_fabric = true);

/// Bind one signature against M systems in one pass over the packed
/// operands. out[k] is bitwise-identical to bind_system(sig, systems[k]).
std::vector<SystemTiming> bind_systems_batch(
    const CostSignature& sig, const BatchedSignature& bat,
    const std::vector<hw::SystemConfig>& systems, const EvalOptions& opts = {});

/// Time N placements of one bound (signature, system) in one batched pass.
/// placements[i] is (nvs1, nvs2, nvsp, nvsd), the enumerate_placements
/// tuple order; out is resized to placements.size() and out[i] is
/// bitwise-identical to time_placement(sig, base, sys, cfg_i, opts) where
/// cfg_i is cfg with placements[i] applied. `scratch` may be reused across
/// calls (and should be, on the hot path); pass nullptr to use a transient
/// one. When `pricer` is non-null it performs ALL collective pricing and
/// `base.fabric` is never read — the caller guarantees it is bound to the
/// fabric these placements should be priced against (the generation-major
/// chain keeps one pricer per grid point, so the per-candidate SystemTiming
/// needs no fabric restamp). Null builds a transient pricer on base.fabric.
void time_placements_batch(
    const CostSignature& sig, const BatchedSignature& bat,
    const SystemTiming& base, const hw::SystemConfig& sys,
    const parallel::ParallelConfig& cfg,
    const std::vector<std::array<std::int64_t, 4>>& placements,
    const EvalOptions& opts, std::vector<PlacementTiming>& out,
    BatchScratch* scratch = nullptr,
    const comm::FabricPricer* pricer = nullptr);

/// N placements x M systems in one call: out[k] holds placements.size()
/// timings against systems[k] (bound via bind_systems_batch). Convenience
/// composition of the two kernels above for grid-shaped queries.
std::vector<std::vector<PlacementTiming>> time_placements_systems_batch(
    const CostSignature& sig, const BatchedSignature& bat,
    const std::vector<hw::SystemConfig>& systems,
    const parallel::ParallelConfig& cfg,
    const std::vector<std::array<std::int64_t, 4>>& placements,
    const EvalOptions& opts = {});

}  // namespace tfpe::core
