#pragma once
// Iteration-time evaluator (paper §III S2): converts the S1 counts of a
// parallelization configuration into a per-training-iteration time and
// memory breakdown on a given system.
//
//  * Compute: roofline max(flops/peak, bytes/bw) per op, tensor-core rate
//    for matmuls (plus the FLOPs-latency term t_sf), vector rate otherwise.
//    Each op's time is attributed to "compute" or "memory access" by its
//    dominant roofline side.
//  * TP communication: exposed (not overlapped), except SUMMA panel
//    broadcasts which overlap with panel matmuls beyond a prologue.
//  * Pipeline: 1F1B — iteration = (m + np - 1)(tf + tb) + exposed P2P.
//  * DP communication: gradient ReduceScatter overlapped with the last
//    microbatch's backward, weight AllGather with the first forward; only
//    the excess is exposed. In 2D TP the group is nd x n2.
//  * Optimizer: distributed Adam update, HBM-bandwidth bound.

#include <cstdint>
#include <string>

#include "hw/system.hpp"
#include "memory/memory_model.hpp"
#include "model/transformer.hpp"
#include "parallel/layer_builder.hpp"
#include "parallel/parallel_config.hpp"

namespace tfpe::core {

struct TimeBreakdown {
  double compute = 0;     ///< FLOP-bound op time (incl. t_sf), all microbatches.
  double memory = 0;      ///< HBM-bound op time.
  double tp_comm = 0;     ///< Exposed tensor-parallel collective time.
  double pp_comm = 0;     ///< Pipeline point-to-point time.
  double dp_comm = 0;     ///< Exposed data-parallel gradient/weight time.
  double bubble = 0;      ///< Pipeline idle time.
  double optimizer = 0;   ///< Distributed Adam update.

  double total() const {
    return compute + memory + tp_comm + pp_comm + dp_comm + bubble + optimizer;
  }
};

/// Optional modeling extensions beyond the paper's baseline (its §V
/// "Limitations" list). All default to the paper's assumptions.
struct EvalOptions {
  /// Fraction of non-SUMMA tensor-parallel collective time hidden behind
  /// compute ("more lower-level opportunities for TP communications to be
  /// overlapped"). 0 = fully exposed (paper baseline).
  double tp_overlap = 0.0;

  /// Fraction of stored activations offloaded to host memory over the
  /// system's host link; frees HBM but pays write+read-back traffic per
  /// microbatch ("offloading to the CPU ... may be very useful for large
  /// sequences"). 0 = no offload (paper baseline).
  double activation_offload = 0.0;

  /// Full activation checkpointing: keep only each block's input and re-run
  /// the forward pass inside the backward pass (Megatron-style selective
  /// recompute of whole layers). Shrinks activation memory to the block
  /// boundaries at ~one extra forward of compute per layer. The paper's
  /// baseline only recomputes inside FlashAttention.
  bool activation_recompute = false;
};

struct EvalResult {
  bool feasible = false;
  std::string reason;  ///< Why infeasible (empty when feasible).

  parallel::ParallelConfig cfg;
  TimeBreakdown time;           ///< Absolute seconds per iteration.
  memory::MemoryBreakdown mem;  ///< Bytes resident on the busiest GPU.

  double t_fwd_micro = 0;  ///< One microbatch forward through one stage.
  double t_bwd_micro = 0;

  double iteration() const { return time.total(); }
};

/// Evaluate one configuration end to end. `global_batch` is the paper's b.
EvalResult evaluate(const model::TransformerConfig& mdl,
                    const hw::SystemConfig& sys,
                    const parallel::ParallelConfig& cfg,
                    std::int64_t global_batch, const EvalOptions& opts = {});

/// Same, reusing a pre-built LayerCost (must match cfg's parallel dims and
/// local microbatch). Used by the search to amortize op-list construction
/// across NVS-placement candidates.
EvalResult evaluate_with_layer(const model::TransformerConfig& mdl,
                               const hw::SystemConfig& sys,
                               const parallel::ParallelConfig& cfg,
                               std::int64_t global_batch,
                               const parallel::LayerCost& layer,
                               const EvalOptions& opts = {});

/// Roofline time of a single op's forward (or backward) pass, excluding
/// communication. Exposed for unit tests.
struct OpTime {
  Seconds compute;  ///< Attributed FLOP-bound time.
  Seconds memory;   ///< Attributed memory-bound time.
  Seconds comm;     ///< Exposed communication time.
};
OpTime op_time(const ops::Op& op, bool backward, const hw::SystemConfig& sys,
               const parallel::ParallelConfig& cfg);

/// Same, against an already-resolved fabric (avoids re-deriving the
/// topology per op). The 4-argument overload resolves sys.resolved_fabric()
/// and delegates here.
OpTime op_time(const ops::Op& op, bool backward, const hw::SystemConfig& sys,
               const hw::Topology& fabric, const parallel::ParallelConfig& cfg);

}  // namespace tfpe::core
