#include "core/evaluator.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/invariants.hpp"
#include "comm/collective_algorithm.hpp"
#include "comm/collective_model.hpp"
#include "core/cost_signature.hpp"
#include "ops/op_factory.hpp"
#include "pipeline/pipeline_model.hpp"

namespace tfpe::core {

namespace {

comm::GroupPlacement placement_for(const parallel::ParallelConfig& cfg,
                                   ops::CommGroup group) {
  switch (group) {
    case ops::CommGroup::TP1: return {cfg.n1, cfg.nvs1};
    case ops::CommGroup::TP2: return {cfg.n2, cfg.nvs2};
    case ops::CommGroup::DP: return {cfg.nd, cfg.nvsd};
    case ops::CommGroup::PP: return {cfg.np, cfg.nvsp};
  }
  return {1, 1};
}

/// Sum of collective times for a request list, with volumes scaled by
/// 1/panels (per-panel time; latency paid per panel).
Seconds comm_time(const std::vector<ops::CommRequest>& reqs,
                  const hw::Topology& fabric,
                  const parallel::ParallelConfig& cfg, double inv_panels) {
  Seconds t;
  for (const auto& req : reqs) {
    t += comm::collective_time(fabric, req.collective, req.bytes * inv_panels,
                               placement_for(cfg, req.group));
  }
  return t;
}

}  // namespace

OpTime op_time(const ops::Op& op, bool backward, const hw::SystemConfig& sys,
               const parallel::ParallelConfig& cfg) {
  return op_time(op, backward, sys, sys.resolved_fabric(), cfg);
}

OpTime op_time(const ops::Op& op, bool backward, const hw::SystemConfig& sys,
               const hw::Topology& fabric, const parallel::ParallelConfig& cfg) {
  const Flops flops = backward ? op.bwd_flops : op.fwd_flops;
  const Bytes bytes = backward ? op.bwd_bytes : op.fwd_bytes;
  const auto& reqs = backward ? op.bwd_comm : op.fwd_comm;

  const std::int64_t panels = std::max<std::int64_t>(1, op.summa_panels);
  const double inv_panels = 1.0 / static_cast<double>(panels);

  // Per-panel roofline (panels == 1 for everything but SUMMA multiplies);
  // shared with the two-phase binder so both evaluators time ops with the
  // exact same arithmetic.
  const PanelRoofline r = panel_roofline(
      flops, bytes, panels, op.unit == ops::ComputeUnit::TensorCore, sys.gpu);
  OpTime out;
  out.compute = r.compute;
  out.memory = r.memory;

  if (reqs.empty()) return out;
  const Seconds t_panel_comm = comm_time(reqs, fabric, cfg, inv_panels);
  if (panels == 1) {
    // Non-SUMMA collectives are fully exposed (partial sums must complete
    // before the collective; successors wait on the synced tensor).
    out.comm = t_panel_comm;
  } else {
    // SUMMA: the first panel's broadcasts are a prologue; later panels'
    // broadcasts overlap the previous panel's matmul and only the excess is
    // exposed (Appendix A).
    out.comm = t_panel_comm + std::max(Seconds(0), t_panel_comm - r.t_panel) *
                                  static_cast<double>(panels - 1);
  }
  return out;
}

EvalResult evaluate_with_layer(const model::TransformerConfig& mdl,
                               const hw::SystemConfig& sys,
                               const parallel::ParallelConfig& cfg,
                               std::int64_t global_batch,
                               const parallel::LayerCost& layer,
                               const EvalOptions& opts) {
  EvalResult res;
  res.cfg = cfg;
  if (auto why = cfg.invalid_reason(mdl, sys, global_batch)) {
    res.reason = *why;
    return res;
  }

#ifndef NDEBUG
  // Debug builds cross-check every evaluated op list against the invariant
  // analyzer's independent re-derivation of the paper tables.
  analysis::assert_layer_invariants(mdl, cfg, cfg.local_microbatch(global_batch),
                                    layer);
#endif

  const std::int64_t m = cfg.microbatches;
  const std::int64_t layers = mdl.depth / cfg.np;
  const double Ld = static_cast<double>(layers);
  const double md = static_cast<double>(m);

  // Resolve the fabric once per evaluation; every collective below walks it.
  const hw::Topology fabric = sys.resolved_fabric();

  // Per-microbatch, per-stage forward/backward components. Non-SUMMA TP
  // collectives can be partially overlapped via the tp_overlap extension
  // (SUMMA broadcasts carry their own overlap model).
  OpTime fwd{}, bwd{};
  for (const auto& op : layer.ops) {
    OpTime f = op_time(op, /*backward=*/false, sys, fabric, cfg);
    OpTime b = op_time(op, /*backward=*/true, sys, fabric, cfg);
    if (op.summa_panels <= 1 && opts.tp_overlap > 0) {
      f.comm *= 1.0 - opts.tp_overlap;
      b.comm *= 1.0 - opts.tp_overlap;
    }
    fwd.compute += f.compute;
    fwd.memory += f.memory;
    fwd.comm += f.comm;
    bwd.compute += b.compute;
    bwd.memory += b.memory;
    bwd.comm += b.comm;
    if (opts.activation_recompute) {
      // The backward pass re-runs the whole block forward (including its
      // collectives) before differentiating it.
      bwd.compute += f.compute;
      bwd.memory += f.memory;
      bwd.comm += f.comm;
    }
  }

  // Activation offload: write out and read back the offloaded fraction of
  // every stored tensor over the host link, once per microbatch per stage.
  if (opts.activation_offload > 0) {
    const Seconds per_micro = layer.stored_bytes() *
                              (2.0 * opts.activation_offload) /
                              sys.host_bandwidth;
    fwd.memory += per_micro * 0.5;  // write-out during forward
    bwd.memory += per_micro * 0.5;  // read-back during backward
  }

  const Seconds t_fwd_micro = (fwd.compute + fwd.memory + fwd.comm) * Ld;
  const Seconds t_bwd_micro = (bwd.compute + bwd.memory + bwd.comm) * Ld;
  Seconds t_fwd_stage = t_fwd_micro;
  Seconds t_bwd_stage = t_bwd_micro;

  // Optional vocabulary modeling: the embedding gather on the first stage
  // and the logits matmul + softmax/cross-entropy on the last. The last
  // stage is the pipeline's critical stage, so its extra time enters the
  // steady period and the bubble (first-order stage-imbalance model).
  OpTime head_fwd{}, head_bwd{};
  double head_weight_params = 0;
  if (mdl.vocab > 0) {
    const double B = static_cast<double>(cfg.local_microbatch(global_batch));
    const double tokens2 =
        B * static_cast<double>(mdl.seq_len) / static_cast<double>(cfg.n2);
    const double Vshard =
        static_cast<double>(mdl.vocab) / static_cast<double>(cfg.n1);
    const ops::Op logits = ops::matmul(
        "lm_head", tokens2, Vshard, static_cast<double>(mdl.embed));
    const ops::Op loss = ops::vector_op("softmax_xent", tokens2 * Vshard, 6.0,
                                        tokens2 * Vshard);
    const ops::Op embed_gather =
        ops::vector_op("embedding", tokens2 * static_cast<double>(mdl.embed),
                       1.0, 0.0);
    for (const ops::Op* op : {&logits, &loss, &embed_gather}) {
      const OpTime f = op_time(*op, false, sys, fabric, cfg);
      const OpTime b = op_time(*op, true, sys, fabric, cfg);
      head_fwd.compute += f.compute;
      head_fwd.memory += f.memory;
      head_bwd.compute += b.compute;
      head_bwd.memory += b.memory;
    }
    t_fwd_stage += head_fwd.compute + head_fwd.memory;
    t_bwd_stage += head_bwd.compute + head_bwd.memory;
    head_weight_params = static_cast<double>(mdl.vocab) *
                         static_cast<double>(mdl.embed) /
                         static_cast<double>(cfg.n1);
  }
  res.t_fwd_micro = t_fwd_stage.value();
  res.t_bwd_micro = t_bwd_stage.value();

  // Steady phase: m microbatches, plus the (possibly interleaved) 1F1B
  // bubble.
  res.time.compute = (((fwd.compute + bwd.compute) * Ld + head_fwd.compute +
                       head_bwd.compute) *
                      md)
                         .value();
  res.time.memory =
      (((fwd.memory + bwd.memory) * Ld + head_fwd.memory + head_bwd.memory) *
       md)
          .value();
  res.time.tp_comm = ((fwd.comm + bwd.comm) * (md * Ld)).value();
  res.time.bubble =
      pipeline::bubble_time(cfg.np, t_fwd_stage, t_bwd_stage, cfg.interleave)
          .value();
  res.time.pp_comm =
      pipeline::p2p_time(fabric, cfg.np, m, layer.pp_boundary_bytes,
                         cfg.nvsp > 1 ? 2 : 1, cfg.interleave)
          .value();

  // Data-parallel communication; the 2D-TP weight-gradient reduction across
  // n2 joins the same group.
  const double stage_params = layer.weight_params * Ld;
  std::int64_t dp_size = cfg.nd;
  std::int64_t dp_nvs = cfg.nvsd;
  if (layer.dp_group_includes_tp2) {
    dp_size *= cfg.n2;
    dp_nvs *= cfg.nvs2;
  }
  if (dp_size > 1) {
    const Bytes grad_bytes = Bytes(2.0 * stage_params);
    const comm::GroupPlacement g{dp_size, dp_nvs};
    const Seconds t_rs = comm::collective_time(
        fabric, ops::Collective::ReduceScatter, grad_bytes, g);
    const Seconds t_ag = comm::collective_time(
        fabric, ops::Collective::AllGather, grad_bytes, g);
    if (cfg.zero == parallel::ZeroStage::kWeights) {
      // ZeRO-3: weights are re-AllGathered for forward and backward and the
      // gradients ReduceScattered on EVERY microbatch. Half of it overlaps
      // with the adjacent compute (first-order model).
      res.time.dp_comm = ((t_ag * 2.0 + t_rs) * (0.5 * md)).value();
    } else {
      // ZeRO-1: one gradient RS overlapped with the last microbatch's
      // backward, one weight AG with the first forward; only the excess is
      // exposed.
      res.time.dp_comm = (std::max(Seconds(0), t_rs - t_bwd_stage) +
                          std::max(Seconds(0), t_ag - t_fwd_stage))
                             .value();
    }
  }

  // Distributed Adam: each GPU updates its shard of the optimizer states
  // (read m1/m2/master, write back, read grad, write weight: ~28 B/param).
  double opt_shard = static_cast<double>(cfg.nd);
  if (layer.dp_group_includes_tp2) opt_shard *= static_cast<double>(cfg.n2);
  res.time.optimizer =
      (Bytes(28.0 * stage_params / opt_shard) / sys.gpu.hbm_bandwidth).value();

  // Memory feasibility.
  res.mem = memory::compute_memory(layer, cfg, layers,
                                   pipeline::in_flight_microbatches(cfg.np, m));
  if (opts.activation_recompute) {
    // Only the block-boundary inputs stay resident.
    res.mem.activations =
        layer.pp_boundary_bytes *
        (Ld * static_cast<double>(pipeline::in_flight_microbatches(cfg.np, m)));
  }
  res.mem.activations *= 1.0 - opts.activation_offload;
  if (head_weight_params > 0) {
    // The tied embedding/head shard lives on the boundary stages.
    res.mem.weights += Bytes(2.0 * head_weight_params);
    res.mem.gradients += Bytes(2.0 * head_weight_params);
    res.mem.optimizer += Bytes(12.0 * head_weight_params / opt_shard);
  }
  if (res.mem.total() > sys.gpu.hbm_capacity) {
    res.reason = "exceeds HBM capacity";
    return res;
  }

  res.feasible = true;
  return res;
}

EvalResult evaluate(const model::TransformerConfig& mdl,
                    const hw::SystemConfig& sys,
                    const parallel::ParallelConfig& cfg,
                    std::int64_t global_batch, const EvalOptions& opts) {
  EvalResult res;
  res.cfg = cfg;
  if (auto why = cfg.invalid_reason(mdl, sys, global_batch)) {
    res.reason = *why;
    return res;
  }
  const parallel::LayerCost layer =
      parallel::build_layer(mdl, cfg, cfg.local_microbatch(global_batch));
  return evaluate_with_layer(mdl, sys, cfg, global_batch, layer, opts);
}

}  // namespace tfpe::core
