#pragma once
// Serving-phase estimator (core/workload.hpp): TTFT, per-token latency and
// tok/s/GPU for one replica shape under a continuous-batching scheduler —
// ROADMAP item 1's "millions of users, heavy traffic" scenario, validated
// in shape against the TensorRT-LLM throughput tables in SNIPPETS.md.
//
// Model, per (tp, pp, batch, kv_cap_fraction) point:
//   * One replica = tp x pp GPUs (nd = 1; a cluster runs n_gpus/(tp*pp)
//     independent replicas, so per-GPU throughput is the figure of merit).
//   * KV budget: kv_cap_fraction x HBM minus weights and the transient
//     working set; each resident request reserves its worst-case context
//     (prompt_len + output_len) of cache. The admitted batch R is the
//     requested batch clipped to the budget — every reported point
//     respects KV residency by construction.
//   * Prefill: one prompt microbatch through the pp forward-only stages
//     (pipeline::prefill_latency) = TTFT.
//   * Decode: R requests split into pp groups rotating around the stages
//     (pipeline::decode_round_time); each round every resident request
//     advances one token. Continuous batching: R/output_len requests
//     complete per round, and their replacement prompts steal one prefill
//     stage-pass of time from every stage, so
//       TPOT = decode_round + (R / output_len) x prefill_stage_time.
//   * Throughput: R tokens per TPOT; tok/s/GPU divides by tp*pp. The
//     decode round is bounded below by the weights + KV HBM floor
//     (core::decode_round_floor).

#include <cstdint>
#include <string>

#include "core/cost_signature.hpp"
#include "core/workload.hpp"
#include "hw/system.hpp"
#include "memory/memory_model.hpp"
#include "model/transformer.hpp"

namespace tfpe::core {

/// One serving replica shape + scheduler limits (a point of the
/// ServingSpec grid).
struct ServingConfig {
  std::int64_t tp = 1;
  std::int64_t pp = 1;
  std::int64_t batch = 1;  ///< Requested resident requests per replica.
  double kv_cap_fraction = 0.9;
};

struct InferenceEstimate {
  bool feasible = false;
  std::string reason;  ///< Why not, when !feasible.
  ServingConfig cfg;

  std::int64_t admitted_batch = 0;  ///< R: requests the KV budget admits.
  double ttft = 0;             ///< Time to first token (one prompt) [s].
  double tpot = 0;             ///< Per-token latency in steady state [s].
  double request_latency = 0;  ///< ttft + output_len x tpot [s].
  double tokens_per_sec = 0;   ///< Replica output throughput.
  double tokens_per_sec_per_gpu = 0;
  double prefill_fraction = 0;  ///< Share of a round spent on new prompts.

  memory::MemoryBreakdown mem;  ///< Busiest GPU, kv_cache = R reservations.
  Bytes kv_bytes_per_request;   ///< Worst-case (ISL+OSL) reservation.
  double decode_floor = 0;  ///< HBM floor on the round [s]; tpot >= this.
};

/// The serving-shape validity screen: the training divisibility contract
/// (via ParallelConfig::invalid_reason on the prompt-length model) plus the
/// serve-specific constraints (dense model, positive ISL/OSL, sane KV cap).
/// nullopt = the shape can be estimated.
std::optional<std::string> serve_invalid_reason(
    const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
    const Workload& w, const ServingConfig& sc);

/// The ParallelConfig a serving replica evaluates under: 1D TP of sc.tp,
/// sc.pp stages, nd = 1, one prompt microbatch, NVS placement packed
/// innermost-group-first (the same packing rule the training search uses).
parallel::ParallelConfig serving_parallel_config(const hw::SystemConfig& sys,
                                                 const ServingConfig& sc);

/// Full estimate for one grid point. Compiles the prefill signature
/// internally; the serve-plan search passes a cached one to the overload
/// below instead.
InferenceEstimate estimate_serving(const model::TransformerConfig& mdl,
                                   const hw::SystemConfig& sys,
                                   const Workload& w, const ServingConfig& sc,
                                   const EvalOptions& opts = {});

/// Same, with the TRAINING-compiled prefill signature (model at seq_len =
/// prompt_len, cfg = serving_parallel_config, global batch 1) supplied by
/// the caller — search::SignatureCache shares it across the batch axis.
/// The phase adaptation (adapt_to_phase) happens inside.
InferenceEstimate estimate_serving(const model::TransformerConfig& mdl,
                                   const hw::SystemConfig& sys,
                                   const Workload& w, const ServingConfig& sc,
                                   const CostSignature& prefill_training_sig,
                                   const EvalOptions& opts = {});

}  // namespace tfpe::core
