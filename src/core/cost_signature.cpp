#include "core/cost_signature.hpp"

#include <algorithm>

#include "analysis/invariants.hpp"
#include "comm/collective_algorithm.hpp"
#include "comm/collective_model.hpp"
#include "ops/op_factory.hpp"
#include "pipeline/pipeline_model.hpp"

namespace tfpe::core {

namespace {

comm::GroupPlacement placement_for(const parallel::ParallelConfig& cfg,
                                   ops::CommGroup group) {
  switch (group) {
    case ops::CommGroup::TP1: return {cfg.n1, cfg.nvs1};
    case ops::CommGroup::TP2: return {cfg.n2, cfg.nvs2};
    case ops::CommGroup::DP: return {cfg.nd, cfg.nvsd};
    case ops::CommGroup::PP: return {cfg.np, cfg.nvsp};
  }
  return {1, 1};
}

/// Exposed collective time of one op pass: the request sum at per-panel
/// volume, with the SUMMA prologue/overlap model against the panel's
/// roofline time. Mirrors core::op_time's comm path bitwise.
Seconds exposed_comm(const CostSignature& sig, std::uint32_t begin,
                     std::uint32_t count, std::int64_t panels, Seconds t_panel,
                     const hw::Topology& fabric,
                     const parallel::ParallelConfig& cfg) {
  const double inv_panels = 1.0 / static_cast<double>(panels);
  Seconds t_panel_comm;
  for (std::uint32_t i = begin; i < begin + count; ++i) {
    const SigComm& req = sig.comm[i];
    t_panel_comm +=
        comm::collective_time(fabric, req.collective, req.bytes * inv_panels,
                              placement_for(cfg, req.group));
  }
  if (panels == 1) return t_panel_comm;
  return t_panel_comm + std::max(Seconds(0), t_panel_comm - t_panel) *
                            static_cast<double>(panels - 1);
}

constexpr std::size_t group_index(ops::CommGroup g) {
  return static_cast<std::size_t>(g);
}

/// The per-op lowering loop, shared verbatim by the training compiler
/// below and the decode compiler (compile_decode_signature) — same record
/// layout, same accumulation order, so extracting it is pure code motion
/// for the training path (bitwise-pinned by the golden tests).
void lower_ops(CostSignature& sig, const parallel::LayerCost& layer) {
  sig.ops.reserve(layer.ops.size());
  for (const auto& op : layer.ops) {
    SigOp s;
    s.fwd_flops = op.fwd_flops;
    s.fwd_bytes = op.fwd_bytes;
    s.bwd_flops = op.bwd_flops;
    s.bwd_bytes = op.bwd_bytes;
    s.panels = std::max<std::int64_t>(1, op.summa_panels);
    s.tensor_core = op.unit == ops::ComputeUnit::TensorCore;
    s.fwd_comm_begin = static_cast<std::uint32_t>(sig.comm.size());
    for (const auto& req : op.fwd_comm) {
      sig.comm.push_back({req.collective, req.group, req.bytes});
      sig.fwd_comm_volume[group_index(req.group)] += req.bytes;
    }
    s.fwd_comm_count =
        static_cast<std::uint32_t>(sig.comm.size()) - s.fwd_comm_begin;
    s.bwd_comm_begin = static_cast<std::uint32_t>(sig.comm.size());
    for (const auto& req : op.bwd_comm) {
      sig.comm.push_back({req.collective, req.group, req.bytes});
      sig.bwd_comm_volume[group_index(req.group)] += req.bytes;
    }
    s.bwd_comm_count =
        static_cast<std::uint32_t>(sig.comm.size()) - s.bwd_comm_begin;
    if (s.tensor_core) {
      sig.matmul_fwd_flops += op.fwd_flops;
      sig.matmul_bwd_flops += op.bwd_flops;
      sig.matmul_fwd_bytes += op.fwd_bytes;
      sig.matmul_bwd_bytes += op.bwd_bytes;
    } else {
      sig.vector_fwd_flops += op.fwd_flops;
      sig.vector_bwd_flops += op.bwd_flops;
      sig.vector_fwd_bytes += op.fwd_bytes;
      sig.vector_bwd_bytes += op.bwd_bytes;
    }
    sig.ops.push_back(s);
  }
}

}  // namespace

CostSignature compile_signature(const model::TransformerConfig& mdl,
                                const parallel::ParallelConfig& cfg,
                                std::int64_t global_batch,
                                const parallel::LayerCost& layer,
                                const EvalOptions& opts) {
  CostSignature sig;
  sig.microbatches = cfg.microbatches;
  sig.np = cfg.np;
  sig.layers_per_stage = mdl.depth / cfg.np;
  sig.local_microbatch = cfg.local_microbatch(global_batch);

  lower_ops(sig, layer);

  sig.stored_activation_bytes = layer.stored_bytes();
  sig.pp_boundary_bytes = layer.pp_boundary_bytes;
  sig.weight_params = layer.weight_params;
  const double Ld = static_cast<double>(sig.layers_per_stage);
  sig.stage_params = layer.weight_params * Ld;
  sig.dp_group_includes_tp2 = layer.dp_group_includes_tp2;
  sig.dp_size = cfg.nd;
  if (layer.dp_group_includes_tp2) sig.dp_size *= cfg.n2;
  sig.dp_grad_bytes = Bytes(2.0 * sig.stage_params);
  double opt_shard = static_cast<double>(cfg.nd);
  if (layer.dp_group_includes_tp2) opt_shard *= static_cast<double>(cfg.n2);
  sig.opt_shard = opt_shard;
  sig.optimizer_traffic = Bytes(28.0 * sig.stage_params / opt_shard);

  if (mdl.vocab > 0) {
    const double B = static_cast<double>(sig.local_microbatch);
    const double tokens2 =
        B * static_cast<double>(mdl.seq_len) / static_cast<double>(cfg.n2);
    const double Vshard =
        static_cast<double>(mdl.vocab) / static_cast<double>(cfg.n1);
    const ops::Op logits = ops::matmul(
        "lm_head", tokens2, Vshard, static_cast<double>(mdl.embed));
    const ops::Op loss = ops::vector_op("softmax_xent", tokens2 * Vshard, 6.0,
                                        tokens2 * Vshard);
    const ops::Op embed_gather =
        ops::vector_op("embedding", tokens2 * static_cast<double>(mdl.embed),
                       1.0, 0.0);
    for (const ops::Op* op : {&logits, &loss, &embed_gather}) {
      sig.head.push_back({op->fwd_flops, op->fwd_bytes, op->bwd_flops,
                          op->bwd_bytes,
                          op->unit == ops::ComputeUnit::TensorCore});
    }
    sig.head_weight_params = static_cast<double>(mdl.vocab) *
                             static_cast<double>(mdl.embed) /
                             static_cast<double>(cfg.n1);
  }

  const std::int64_t in_flight =
      pipeline::in_flight_microbatches(cfg.np, cfg.microbatches);
  sig.mem = memory::compute_memory(layer, cfg, sig.layers_per_stage, in_flight);
  if (opts.activation_recompute) {
    sig.mem.activations =
        layer.pp_boundary_bytes * (Ld * static_cast<double>(in_flight));
  }
  sig.mem.activations *= 1.0 - opts.activation_offload;
  if (sig.head_weight_params > 0) {
    sig.mem.weights += Bytes(2.0 * sig.head_weight_params);
    sig.mem.gradients += Bytes(2.0 * sig.head_weight_params);
    sig.mem.optimizer += Bytes(12.0 * sig.head_weight_params / opt_shard);
  }
  return sig;
}

CostSignature compile_signature(const model::TransformerConfig& mdl,
                                const parallel::ParallelConfig& cfg,
                                std::int64_t global_batch,
                                const EvalOptions& opts) {
  const std::int64_t local = cfg.local_microbatch(global_batch);
  const parallel::LayerCost layer = parallel::build_layer(mdl, cfg, local);
#ifndef NDEBUG
  analysis::assert_layer_invariants(mdl, cfg, local, layer);
#endif
  return compile_signature(mdl, cfg, global_batch, layer, opts);
}

SystemTiming bind_system(const CostSignature& sig, const hw::SystemConfig& sys,
                         const EvalOptions& opts) {
  SystemTiming bt;
  bt.fabric = sys.resolved_fabric();
  Seconds fwd_c, fwd_m, bwd_c, bwd_m;
  for (const SigOp& op : sig.ops) {
    const PanelRoofline f =
        panel_roofline(op.fwd_flops, op.fwd_bytes, op.panels, op.tensor_core,
                       sys.gpu);
    const PanelRoofline b =
        panel_roofline(op.bwd_flops, op.bwd_bytes, op.panels, op.tensor_core,
                       sys.gpu);
    fwd_c += f.compute;
    fwd_m += f.memory;
    bwd_c += b.compute;
    bwd_m += b.memory;
    if (opts.activation_recompute) {
      bwd_c += f.compute;
      bwd_m += f.memory;
    }
    if (op.panels > 1) bt.summa_panel_time.push_back({f.t_panel, b.t_panel});
  }

  if (opts.activation_offload > 0) {
    const Seconds per_micro = sig.stored_activation_bytes *
                              (2.0 * opts.activation_offload) /
                              sys.host_bandwidth;
    fwd_m += per_micro * 0.5;
    bwd_m += per_micro * 0.5;
  }

  Seconds head_fwd_c, head_fwd_m, head_bwd_c, head_bwd_m;
  for (const SigHeadOp& op : sig.head) {
    const PanelRoofline f =
        panel_roofline(op.fwd_flops, op.fwd_bytes, 1, op.tensor_core, sys.gpu);
    const PanelRoofline b =
        panel_roofline(op.bwd_flops, op.bwd_bytes, 1, op.tensor_core, sys.gpu);
    head_fwd_c += f.compute;
    head_fwd_m += f.memory;
    head_bwd_c += b.compute;
    head_bwd_m += b.memory;
  }

  const double Ld = static_cast<double>(sig.layers_per_stage);
  const double md = static_cast<double>(sig.microbatches);
  bt.time_compute =
      (((fwd_c + bwd_c) * Ld + head_fwd_c + head_bwd_c) * md).value();
  bt.time_memory =
      (((fwd_m + bwd_m) * Ld + head_fwd_m + head_bwd_m) * md).value();
  bt.optimizer = (sig.optimizer_traffic / sys.gpu.hbm_bandwidth).value();
  bt.fwd_cm = fwd_c + fwd_m;
  bt.bwd_cm = bwd_c + bwd_m;
  bt.head_fwd_cm = head_fwd_c + head_fwd_m;
  bt.head_bwd_cm = head_bwd_c + head_bwd_m;
  return bt;
}

PlacementTiming time_placement(const CostSignature& sig,
                               const SystemTiming& base,
                               const hw::SystemConfig& sys,
                               const parallel::ParallelConfig& cfg,
                               const EvalOptions& opts) {
  PlacementTiming out;

  const double Ld = static_cast<double>(sig.layers_per_stage);
  const double md = static_cast<double>(sig.microbatches);

  // Exposed communication per op, in op order — the only placement-
  // dependent part of the per-microbatch stage time.
  Seconds fwd_comm, bwd_comm;
  std::size_t summa = 0;
  for (const SigOp& op : sig.ops) {
    std::array<Seconds, 2> panel{};
    if (op.panels > 1) panel = base.summa_panel_time[summa++];
    Seconds f_comm, b_comm;
    if (op.fwd_comm_count > 0) {
      f_comm = exposed_comm(sig, op.fwd_comm_begin, op.fwd_comm_count,
                            op.panels, panel[0], base.fabric, cfg);
    }
    if (op.bwd_comm_count > 0) {
      b_comm = exposed_comm(sig, op.bwd_comm_begin, op.bwd_comm_count,
                            op.panels, panel[1], base.fabric, cfg);
    }
    if (op.panels <= 1 && opts.tp_overlap > 0) {
      f_comm *= 1.0 - opts.tp_overlap;
      b_comm *= 1.0 - opts.tp_overlap;
    }
    fwd_comm += f_comm;
    bwd_comm += b_comm;
    if (opts.activation_recompute) bwd_comm += f_comm;
  }

  const Seconds t_fwd_micro = (base.fwd_cm + fwd_comm) * Ld;
  const Seconds t_bwd_micro = (base.bwd_cm + bwd_comm) * Ld;
  Seconds t_fwd_stage = t_fwd_micro;
  Seconds t_bwd_stage = t_bwd_micro;
  if (!sig.head.empty()) {
    t_fwd_stage += base.head_fwd_cm;
    t_bwd_stage += base.head_bwd_cm;
  }
  out.t_fwd_stage = t_fwd_stage;
  out.t_bwd_stage = t_bwd_stage;

  out.time.compute = base.time_compute;
  out.time.memory = base.time_memory;
  out.time.tp_comm = ((fwd_comm + bwd_comm) * (md * Ld)).value();
  out.time.bubble =
      pipeline::bubble_time(cfg.np, t_fwd_stage, t_bwd_stage, cfg.interleave)
          .value();
  out.time.pp_comm =
      pipeline::p2p_time(base.fabric, cfg.np, sig.microbatches,
                         sig.pp_boundary_bytes, cfg.nvsp > 1 ? 2 : 1,
                         cfg.interleave)
          .value();

  std::int64_t dp_nvs = cfg.nvsd;
  if (sig.dp_group_includes_tp2) dp_nvs *= cfg.nvs2;
  if (sig.dp_size > 1) {
    const comm::GroupPlacement g{sig.dp_size, dp_nvs};
    const Seconds t_rs = comm::collective_time(
        base.fabric, ops::Collective::ReduceScatter, sig.dp_grad_bytes, g);
    const Seconds t_ag = comm::collective_time(
        base.fabric, ops::Collective::AllGather, sig.dp_grad_bytes, g);
    if (cfg.zero == parallel::ZeroStage::kWeights) {
      out.time.dp_comm = ((t_ag * 2.0 + t_rs) * (0.5 * md)).value();
    } else {
      out.time.dp_comm = (std::max(Seconds(0), t_rs - t_bwd_stage) +
                          std::max(Seconds(0), t_ag - t_fwd_stage))
                             .value();
    }
  }

  out.time.optimizer = base.optimizer;
  return out;
}

EvalResult time_signature(const CostSignature& sig, const SystemTiming& base,
                          const model::TransformerConfig& mdl,
                          const hw::SystemConfig& sys,
                          const parallel::ParallelConfig& cfg,
                          std::int64_t global_batch, const EvalOptions& opts) {
  EvalResult res;
  res.cfg = cfg;
  if (auto why = cfg.invalid_reason(mdl, sys, global_batch)) {
    res.reason = *why;
    return res;
  }

  const PlacementTiming pt = time_placement(sig, base, sys, cfg, opts);
  res.t_fwd_micro = pt.t_fwd_stage.value();
  res.t_bwd_micro = pt.t_bwd_stage.value();
  res.time = pt.time;

  res.mem = sig.mem;
  if (res.mem.total() > sys.gpu.hbm_capacity) {
    res.reason = "exceeds HBM capacity";
    return res;
  }

  res.feasible = true;
  return res;
}

EvalResult time_signature(const CostSignature& sig,
                          const model::TransformerConfig& mdl,
                          const hw::SystemConfig& sys,
                          const parallel::ParallelConfig& cfg,
                          std::int64_t global_batch, const EvalOptions& opts) {
  return time_signature(sig, bind_system(sig, sys, opts), mdl, sys, cfg,
                        global_batch, opts);
}

CostSignature adapt_to_phase(CostSignature sig, ExecutionPhase phase) {
  sig.phase = phase;
  for (SigOp& op : sig.ops) {
    op.bwd_flops = Flops(0);
    op.bwd_bytes = Bytes(0);
    op.bwd_comm_count = 0;
  }
  for (SigHeadOp& op : sig.head) {
    op.bwd_flops = Flops(0);
    op.bwd_bytes = Bytes(0);
  }
  sig.matmul_bwd_flops = Flops(0);
  sig.matmul_bwd_bytes = Bytes(0);
  sig.vector_bwd_flops = Flops(0);
  sig.vector_bwd_bytes = Bytes(0);
  sig.bwd_comm_volume = {};
  sig.dp_grad_bytes = Bytes(0);
  sig.optimizer_traffic = Bytes(0);
  // No backward: the gradient/optimizer residency vanishes, and nothing
  // accumulates across layers for a pass that never reverses — the forward
  // consumes each layer's activations as it produces the next. One layer's
  // stored footprint stays as a conservative bound on the live transient
  // buffers (training instead keeps layers_per_stage of them resident).
  sig.mem.gradients = Bytes(0);
  sig.mem.optimizer = Bytes(0);
  sig.mem.activations = sig.stored_activation_bytes;
  sig.stored_activation_bytes = Bytes(0);
  return sig;
}

CostSignature compile_decode_signature(const model::TransformerConfig& mdl,
                                       const parallel::ParallelConfig& cfg,
                                       double tokens_per_group,
                                       double kv_len) {
  const parallel::LayerCost layer =
      parallel::build_decode_layer(mdl, cfg.n1, tokens_per_group, kv_len);

  CostSignature sig;
  sig.phase = ExecutionPhase::kDecode;
  sig.phase_tokens = tokens_per_group;
  sig.microbatches = cfg.np;  // np decode groups rotate around the stages
  sig.np = cfg.np;
  sig.layers_per_stage = mdl.depth / cfg.np;
  sig.local_microbatch = 1;

  lower_ops(sig, layer);

  sig.stored_activation_bytes = Bytes(0);
  sig.pp_boundary_bytes = layer.pp_boundary_bytes;
  sig.weight_params = layer.weight_params;
  const double Ld = static_cast<double>(sig.layers_per_stage);
  sig.stage_params = layer.weight_params * Ld;
  // No data-parallel replica group, no optimizer: serving replicas are
  // nd = 1 and the backward dimension does not exist in this phase.
  sig.dp_size = 1;
  sig.dp_grad_bytes = Bytes(0);
  sig.opt_shard = 1;
  sig.optimizer_traffic = Bytes(0);

  if (mdl.vocab > 0) {
    // Every decode step samples from the full vocabulary: the lm_head GEMV
    // re-reads the (e x V/n1) shard, plus the softmax over the logits.
    const double Vshard =
        static_cast<double>(mdl.vocab) / static_cast<double>(cfg.n1);
    const ops::Op logits = ops::forward_only(ops::matmul(
        "lm_head", tokens_per_group, Vshard, static_cast<double>(mdl.embed)));
    const ops::Op soft = ops::forward_only(
        ops::vector_op("softmax", tokens_per_group * Vshard, 5.0, 0.0));
    for (const ops::Op* op : {&logits, &soft}) {
      sig.head.push_back({op->fwd_flops, op->fwd_bytes, op->bwd_flops,
                          op->bwd_bytes,
                          op->unit == ops::ComputeUnit::TensorCore});
    }
    sig.head_weight_params = static_cast<double>(mdl.vocab) *
                             static_cast<double>(mdl.embed) /
                             static_cast<double>(cfg.n1);
  }

  // Transient working set: the double-buffered (R, e) stream plus the
  // (R, f/nt) MLP intermediate — nothing is retained across ops.
  const Bytes working =
      Bytes(ops::kBytesPerElement * tokens_per_group *
            (2.0 * static_cast<double>(mdl.embed) +
             static_cast<double>(mdl.hidden) / static_cast<double>(cfg.n1)));
  // The K/V term is owned by the serving estimator (it decides residency
  // from the KV budget); the signature carries the weight/working terms.
  sig.mem = memory::compute_inference_memory(layer, sig.layers_per_stage,
                                             Bytes(0), working);
  if (sig.head_weight_params > 0) {
    sig.mem.weights += Bytes(2.0 * sig.head_weight_params);
  }
  return sig;
}

CostSignature compile_signature(const model::TransformerConfig& mdl,
                                const parallel::ParallelConfig& cfg,
                                std::int64_t global_batch,
                                const Workload& workload,
                                const EvalOptions& opts) {
  switch (workload.phase) {
    case ExecutionPhase::kTraining:
      // The Training-phase adapter: delegate to the historical lowering
      // unchanged (bitwise-pinned by tests/test_workload.cpp).
      return compile_signature(mdl, cfg, global_batch, opts);
    case ExecutionPhase::kPrefill: {
      model::TransformerConfig prompt = mdl;
      if (workload.prompt_len > 0) prompt.seq_len = workload.prompt_len;
      return adapt_to_phase(compile_signature(prompt, cfg, global_batch, opts),
                            ExecutionPhase::kPrefill);
    }
    case ExecutionPhase::kDecode:
      return compile_decode_signature(
          mdl, cfg,
          static_cast<double>(global_batch) / static_cast<double>(cfg.np),
          workload.decode_kv_len());
  }
  return compile_signature(mdl, cfg, global_batch, opts);
}

PhaseTiming time_phase(const CostSignature& sig, const SystemTiming& base,
                       const parallel::ParallelConfig& cfg,
                       const EvalOptions& opts) {
  // The forward arm of time_placement's exposed-comm walk, alone: decode
  // and prefill signatures carry no backward records, and the bound
  // backward terms of `base` are never read (see the header note on the
  // zero-operand t_sf attribution).
  Seconds fwd_comm;
  std::size_t summa = 0;
  for (const SigOp& op : sig.ops) {
    std::array<Seconds, 2> panel{};
    if (op.panels > 1) panel = base.summa_panel_time[summa++];
    Seconds f_comm;
    if (op.fwd_comm_count > 0) {
      f_comm = exposed_comm(sig, op.fwd_comm_begin, op.fwd_comm_count,
                            op.panels, panel[0], base.fabric, cfg);
    }
    if (op.panels <= 1 && opts.tp_overlap > 0) {
      f_comm *= 1.0 - opts.tp_overlap;
    }
    fwd_comm += f_comm;
  }
  const double Ld = static_cast<double>(sig.layers_per_stage);
  PhaseTiming out;
  out.comm = fwd_comm * Ld;
  out.t_stage = (base.fwd_cm + fwd_comm) * Ld;
  if (!sig.head.empty()) out.t_stage += base.head_fwd_cm;
  return out;
}

}  // namespace tfpe::core
