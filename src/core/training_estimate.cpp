#include "core/training_estimate.hpp"

namespace tfpe::core {

TrainingEstimate estimate_token_training(const model::TransformerConfig& mdl,
                                         std::int64_t global_batch,
                                         double iteration_seconds,
                                         double total_tokens) {
  const double tokens_per_step = tokens_per_unit(global_batch, mdl.seq_len);
  return run_length(total_tokens / tokens_per_step, iteration_seconds);
}

CostEstimate estimate_cost(const hw::SystemConfig& sys, std::int64_t n_gpus,
                           double total_seconds, double pue,
                           double usd_per_gpu_hour) {
  CostEstimate cost;
  const double hours = total_seconds / 3600.0;
  cost.gpu_hours = hours * static_cast<double>(n_gpus);
  cost.energy_mwh =
      sys.gpu.tdp_watts * pue * static_cast<double>(n_gpus) * hours / 1e6;
  cost.cost_usd = cost.gpu_hours * usd_per_gpu_hour;
  return cost;
}

TrainingEstimate estimate_sample_training(std::int64_t global_batch,
                                          double iteration_seconds,
                                          double total_samples) {
  return run_length(total_samples / static_cast<double>(global_batch),
                    iteration_seconds);
}

}  // namespace tfpe::core
