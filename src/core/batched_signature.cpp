#include "core/batched_signature.hpp"

#include <algorithm>
#include <bit>
#include <optional>

#ifndef NDEBUG
#include <stdexcept>

#include "analysis/consistency.hpp"
#endif
#include "comm/collective_algorithm.hpp"
#include "comm/collective_model.hpp"
#include "pipeline/pipeline_model.hpp"

namespace tfpe::core {

namespace {

/// Placement-tuple slot holding each comm group's nvs: the enumerated
/// tuples are (nvs1, nvs2, nvsp, nvsd) while the CommGroup index order is
/// (TP1, TP2, DP, PP).
constexpr std::array<std::size_t, 4> kGroupSlot = {0, 1, 3, 2};

}  // namespace

BatchedSignature lower_batched(const CostSignature& sig) {
  BatchedSignature b;
  const std::size_t n = sig.ops.size();
  b.fwd_flops.reserve(n);
  b.bwd_flops.reserve(n);
  b.fwd_bytes.reserve(n);
  b.bwd_bytes.reserve(n);
  b.panels.reserve(n);
  b.tensor_core.reserve(n);
  b.fwd_comm_begin.reserve(n);
  b.fwd_comm_count.reserve(n);
  b.bwd_comm_begin.reserve(n);
  b.bwd_comm_count.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const SigOp& op = sig.ops[i];
    b.fwd_flops.push_back(op.fwd_flops);
    b.bwd_flops.push_back(op.bwd_flops);
    b.fwd_bytes.push_back(op.fwd_bytes);
    b.bwd_bytes.push_back(op.bwd_bytes);
    b.panels.push_back(op.panels);
    b.tensor_core.push_back(op.tensor_core ? 1 : 0);
    b.fwd_comm_begin.push_back(op.fwd_comm_begin);
    b.fwd_comm_count.push_back(op.fwd_comm_count);
    b.bwd_comm_begin.push_back(op.bwd_comm_begin);
    b.bwd_comm_count.push_back(op.bwd_comm_count);
    if (op.panels > 1) b.summa_ops.push_back(static_cast<std::uint32_t>(i));
  }

  // Per-request panel scale of the owning op, resolved through the
  // begin/count ranges so the packing is correct for any pool tiling.
  std::vector<double> inv_scale(sig.comm.size(), 1.0);
  for (const SigOp& op : sig.ops) {
    const double inv_panels = 1.0 / static_cast<double>(op.panels);
    for (std::uint32_t r = op.fwd_comm_begin;
         r < op.fwd_comm_begin + op.fwd_comm_count; ++r) {
      inv_scale[r] = inv_panels;
    }
    for (std::uint32_t r = op.bwd_comm_begin;
         r < op.bwd_comm_begin + op.bwd_comm_count; ++r) {
      inv_scale[r] = inv_panels;
    }
  }
  b.comm_kind.reserve(sig.comm.size());
  b.comm_group.reserve(sig.comm.size());
  b.comm_panel_bytes.reserve(sig.comm.size());
  for (std::size_t r = 0; r < sig.comm.size(); ++r) {
    const SigComm& req = sig.comm[r];
    b.comm_kind.push_back(req.collective);
    b.comm_group.push_back(static_cast<std::uint8_t>(req.group));
    b.comm_groups_mask |=
        static_cast<std::uint8_t>(1u << static_cast<unsigned>(req.group));
    // The exact product the scalar exposed_comm computes per call.
    b.comm_panel_bytes.push_back(req.bytes * inv_scale[r]);
  }

  // Dedup the pricing rows: two requests agreeing on kind, group and the
  // exact volume bits make the identical pure collective_time call, so
  // they share one table row. Bit equality (not ==) so a would-be -0.0 /
  // 0.0 collision can never alias two different calls.
  b.comm_price_row.resize(sig.comm.size());
  for (std::size_t r = 0; r < sig.comm.size(); ++r) {
    const std::uint64_t bits =
        std::bit_cast<std::uint64_t>(b.comm_panel_bytes[r].value());
    std::size_t u = 0;
    for (; u < b.price_rep.size(); ++u) {
      const std::uint32_t rep = b.price_rep[u];
      if (b.comm_kind[rep] == b.comm_kind[r] &&
          b.comm_group[rep] == b.comm_group[r] &&
          std::bit_cast<std::uint64_t>(b.comm_panel_bytes[rep].value()) ==
              bits) {
        break;
      }
    }
    if (u == b.price_rep.size()) {
      b.price_rep.push_back(static_cast<std::uint32_t>(r));
    }
    b.comm_price_row[r] = static_cast<std::uint32_t>(u);
  }

  b.head_fwd_flops.reserve(sig.head.size());
  b.head_bwd_flops.reserve(sig.head.size());
  b.head_fwd_bytes.reserve(sig.head.size());
  b.head_bwd_bytes.reserve(sig.head.size());
  b.head_tensor_core.reserve(sig.head.size());
  for (const SigHeadOp& op : sig.head) {
    b.head_fwd_flops.push_back(op.fwd_flops);
    b.head_bwd_flops.push_back(op.bwd_flops);
    b.head_fwd_bytes.push_back(op.fwd_bytes);
    b.head_bwd_bytes.push_back(op.bwd_bytes);
    b.head_tensor_core.push_back(op.tensor_core ? 1 : 0);
  }
  return b;
}

SystemTiming bind_system_batched(const CostSignature& sig,
                                 const BatchedSignature& bat,
                                 const hw::SystemConfig& sys,
                                 const EvalOptions& opts, bool capture_fabric) {
#ifndef NDEBUG
  analysis::assert_batched_invariants(sig, bat);
#endif
  SystemTiming bt;
  if (capture_fabric) bt.fabric = sys.resolved_fabric();
  Seconds fwd_c, fwd_m, bwd_c, bwd_m;
  const std::size_t n = bat.op_count();
  for (std::size_t i = 0; i < n; ++i) {
    const bool tc = bat.tensor_core[i] != 0;
    const PanelRoofline f = panel_roofline(bat.fwd_flops[i], bat.fwd_bytes[i],
                                           bat.panels[i], tc, sys.gpu);
    const PanelRoofline b = panel_roofline(bat.bwd_flops[i], bat.bwd_bytes[i],
                                           bat.panels[i], tc, sys.gpu);
    fwd_c += f.compute;
    fwd_m += f.memory;
    bwd_c += b.compute;
    bwd_m += b.memory;
    if (opts.activation_recompute) {
      bwd_c += f.compute;
      bwd_m += f.memory;
    }
    if (bat.panels[i] > 1) bt.summa_panel_time.push_back({f.t_panel, b.t_panel});
  }

  if (opts.activation_offload > 0) {
    const Seconds per_micro = sig.stored_activation_bytes *
                              (2.0 * opts.activation_offload) /
                              sys.host_bandwidth;
    fwd_m += per_micro * 0.5;
    bwd_m += per_micro * 0.5;
  }

  Seconds head_fwd_c, head_fwd_m, head_bwd_c, head_bwd_m;
  const std::size_t h = bat.head_fwd_flops.size();
  for (std::size_t i = 0; i < h; ++i) {
    const bool tc = bat.head_tensor_core[i] != 0;
    const PanelRoofline f = panel_roofline(bat.head_fwd_flops[i],
                                           bat.head_fwd_bytes[i], 1, tc,
                                           sys.gpu);
    const PanelRoofline b = panel_roofline(bat.head_bwd_flops[i],
                                           bat.head_bwd_bytes[i], 1, tc,
                                           sys.gpu);
    head_fwd_c += f.compute;
    head_fwd_m += f.memory;
    head_bwd_c += b.compute;
    head_bwd_m += b.memory;
  }

  const double Ld = static_cast<double>(sig.layers_per_stage);
  const double md = static_cast<double>(sig.microbatches);
  bt.time_compute =
      (((fwd_c + bwd_c) * Ld + head_fwd_c + head_bwd_c) * md).value();
  bt.time_memory =
      (((fwd_m + bwd_m) * Ld + head_fwd_m + head_bwd_m) * md).value();
  bt.optimizer = (sig.optimizer_traffic / sys.gpu.hbm_bandwidth).value();
  bt.fwd_cm = fwd_c + fwd_m;
  bt.bwd_cm = bwd_c + bwd_m;
  bt.head_fwd_cm = head_fwd_c + head_fwd_m;
  bt.head_bwd_cm = head_bwd_c + head_bwd_m;
  return bt;
}

std::vector<SystemTiming> bind_systems_batch(
    const CostSignature& sig, const BatchedSignature& bat,
    const std::vector<hw::SystemConfig>& systems, const EvalOptions& opts) {
  std::vector<SystemTiming> out;
  out.reserve(systems.size());
  for (const hw::SystemConfig& sys : systems) {
    out.push_back(bind_system_batched(sig, bat, sys, opts));
  }
  return out;
}

void time_placements_batch(
    const CostSignature& sig, const BatchedSignature& bat,
    const SystemTiming& base, const hw::SystemConfig& sys,
    const parallel::ParallelConfig& cfg,
    const std::vector<std::array<std::int64_t, 4>>& placements,
    const EvalOptions& opts, std::vector<PlacementTiming>& out,
    BatchScratch* scratch, const comm::FabricPricer* pricer) {
  (void)sys;
  const std::size_t np = placements.size();
  out.clear();
  out.resize(np);
  if (np == 0) return;

  BatchScratch local;
  BatchScratch& s = scratch ? *scratch : local;
  // The transient pricer owns a deque (one allocation just to construct),
  // so it only exists on the slow path where no caller pricer was given.
  std::optional<comm::FabricPricer> transient;
  if (!pricer) {
    transient.emplace(base.fabric);
    pricer = &*transient;
  }
  const comm::FabricPricer& pr = *pricer;
  ++s.epoch;

  const std::array<std::int64_t, 4> group_size = {cfg.n1, cfg.n2, cfg.nd,
                                                  cfg.np};

  // Distinct nvs values per comm group over the placement batch, plus each
  // placement's column index — the whole point of the batch: a request is
  // priced once per (group, nvs) instead of once per placement. Only the
  // groups the pool uses are columned: the DP and P2P terms below read
  // their nvs straight off the placement tuple, so for (say) a pure-TP
  // pool three of the four per-placement scans would be dead work.
  const std::uint8_t used_groups = bat.comm_groups_mask;
  for (std::size_t g = 0; g < 4; ++g) {
    if (!(used_groups & (1u << g))) continue;
    s.distinct_nvs[g].clear();
    s.nvs_column[g].resize(np);
    for (std::size_t p = 0; p < np; ++p) {
      const std::int64_t v = placements[p][kGroupSlot[g]];
      const auto it =
          std::find(s.distinct_nvs[g].begin(), s.distinct_nvs[g].end(), v);
      std::size_t col;
      if (it == s.distinct_nvs[g].end()) {
        col = s.distinct_nvs[g].size();
        s.distinct_nvs[g].push_back(v);
      } else {
        col = static_cast<std::size_t>(it - s.distinct_nvs[g].begin());
      }
      s.nvs_column[g][p] = static_cast<std::uint32_t>(col);
    }
  }

  // Pre-place every (used group, distinct nvs) pair once: the validation,
  // clamp-and-fill placement and fabric walk that the scalar path re-runs
  // inside every collective_time call are hoisted here, leaving each table
  // cell a handful of flops. Every column comes from an actual placement of
  // the batch, so nothing is placed speculatively.
  for (std::size_t g = 0; g < 4; ++g) {
    if (!(used_groups & (1u << g))) continue;
    const std::size_t cols = s.distinct_nvs[g].size();
    s.placed[g].resize(cols);
    for (std::size_t c = 0; c < cols; ++c) {
      s.placed[g][c] = &pr.place_ref(
          comm::GroupPlacement{group_size[g], s.distinct_nvs[g][c]});
    }
  }

  // Lay out the comm table: one row per DISTINCT pricing triple (see
  // comm_price_row — repeated per-op requests of the same volume share a
  // row), one column per distinct nvs of its group. Each cell is the exact
  // collective_time call the scalar path makes for a placement mapping to
  // that column — priced by one contiguous pass over the pricing rows on
  // each comm-block miss (price_columns below), so columns only ever read
  // through block hits are never priced. collective_time is pure, so
  // neither the sharing nor the changed pricing order can change any
  // cell's bits.
  const std::size_t nu = bat.price_rep.size();
  s.row_offset.resize(nu);
  std::size_t cells = 0;
  for (std::size_t u = 0; u < nu; ++u) {
    s.row_offset[u] = static_cast<std::uint32_t>(cells);
    cells += s.distinct_nvs[bat.comm_group[bat.price_rep[u]]].size();
  }
  s.comm_table.resize(cells);
  s.cell_epoch.resize(cells, 0);
  // One strided pass per block miss: price placement p's column of every
  // pricing row (epoch stamps skip cells an earlier miss already priced).
  const auto price_columns = [&](std::size_t p) {
    for (std::size_t u = 0; u < nu; ++u) {
      const std::uint32_t rep = bat.price_rep[u];
      const std::size_t g = bat.comm_group[rep];
      const std::size_t col = s.nvs_column[g][p];
      const std::size_t idx = s.row_offset[u] + col;
      if (s.cell_epoch[idx] != s.epoch) {
        s.comm_table[idx] = pr.price(bat.comm_kind[rep],
                                     bat.comm_panel_bytes[rep],
                                     *s.placed[g][col]);
        s.cell_epoch[idx] = s.epoch;
      }
    }
  };
  // Branch-free table read for the op walk (all cells for p are priced).
  const auto comm_cell = [&](std::uint32_t r, std::size_t p) -> Seconds {
    return s.comm_table[s.row_offset[bat.comm_price_row[r]] +
                        s.nvs_column[bat.comm_group[r]][p]];
  };

  const double Ld = static_cast<double>(sig.layers_per_stage);
  const double md = static_cast<double>(sig.microbatches);

  // Placement-dependent but few-valued terms, memoized lazily in placement
  // order (first encounter prices; later ones reuse the identical bits).
  // The DP memo lives in the scratch so a warm scan prices allocation-free.
  std::array<Seconds, 2> p2p_value{};
  std::array<bool, 2> p2p_priced{false, false};
  s.dp_keys.clear();
  s.dp_terms.clear();

  // Comm-block memo: the op walk below reads the comm table only through
  // the columns of the groups actually present in the pool, so placements
  // agreeing on those columns produce bit-identical stage/tp/bubble terms.
  // Key on the used groups ONLY — placements differing in an unused group
  // (e.g. nvsd under a pure-TP signature) share the block.
  s.block_keys.clear();
  s.blocks.clear();

  const std::size_t n_ops = bat.op_count();
  for (std::size_t p = 0; p < np; ++p) {
    PlacementTiming& o = out[p];

    std::uint64_t key = 0;
    for (std::size_t g = 0; g < 4; ++g) {
      if (used_groups & (1u << g)) key = (key << 16) | s.nvs_column[g][p];
    }
    std::size_t bi = 0;
    for (; bi < s.block_keys.size(); ++bi) {
      if (s.block_keys[bi] == key) break;
    }
    if (bi == s.block_keys.size()) {
      // First placement on these columns: price its column of every pricing
      // row in one pass, then run the op walk — exactly the sums the scalar
      // time_placement would compute for this placement, read from the
      // table instead of priced mid-walk.
      price_columns(p);
      Seconds fwd_comm, bwd_comm;
      std::size_t summa = 0;
      for (std::size_t i = 0; i < n_ops; ++i) {
        const std::int64_t panels = bat.panels[i];
        std::array<Seconds, 2> panel{};
        if (panels > 1) panel = base.summa_panel_time[summa++];
        Seconds f_comm, b_comm;
        if (bat.fwd_comm_count[i] > 0) {
          Seconds t_panel_comm;
          const std::uint32_t begin = bat.fwd_comm_begin[i];
          const std::uint32_t end = begin + bat.fwd_comm_count[i];
          for (std::uint32_t r = begin; r < end; ++r) {
            t_panel_comm += comm_cell(r, p);
          }
          if (panels == 1) {
            f_comm = t_panel_comm;
          } else {
            f_comm = t_panel_comm +
                     std::max(Seconds(0), t_panel_comm - panel[0]) *
                         static_cast<double>(panels - 1);
          }
        }
        if (bat.bwd_comm_count[i] > 0) {
          Seconds t_panel_comm;
          const std::uint32_t begin = bat.bwd_comm_begin[i];
          const std::uint32_t end = begin + bat.bwd_comm_count[i];
          for (std::uint32_t r = begin; r < end; ++r) {
            t_panel_comm += comm_cell(r, p);
          }
          if (panels == 1) {
            b_comm = t_panel_comm;
          } else {
            b_comm = t_panel_comm +
                     std::max(Seconds(0), t_panel_comm - panel[1]) *
                         static_cast<double>(panels - 1);
          }
        }
        if (panels <= 1 && opts.tp_overlap > 0) {
          f_comm *= 1.0 - opts.tp_overlap;
          b_comm *= 1.0 - opts.tp_overlap;
        }
        fwd_comm += f_comm;
        bwd_comm += b_comm;
        if (opts.activation_recompute) bwd_comm += f_comm;
      }

      const Seconds t_fwd_micro = (base.fwd_cm + fwd_comm) * Ld;
      const Seconds t_bwd_micro = (base.bwd_cm + bwd_comm) * Ld;
      Seconds t_fwd_stage = t_fwd_micro;
      Seconds t_bwd_stage = t_bwd_micro;
      if (!sig.head.empty()) {
        t_fwd_stage += base.head_fwd_cm;
        t_bwd_stage += base.head_bwd_cm;
      }
      BatchScratch::CommBlock blk;
      blk.t_fwd_stage = t_fwd_stage;
      blk.t_bwd_stage = t_bwd_stage;
      blk.tp_comm = ((fwd_comm + bwd_comm) * (md * Ld)).value();
      blk.bubble = pipeline::bubble_time(cfg.np, t_fwd_stage, t_bwd_stage,
                                         cfg.interleave)
                       .value();
      s.block_keys.push_back(key);
      s.blocks.push_back(blk);
    }
    const BatchScratch::CommBlock& blk = s.blocks[bi];
    const Seconds t_fwd_stage = blk.t_fwd_stage;
    const Seconds t_bwd_stage = blk.t_bwd_stage;
    o.t_fwd_stage = t_fwd_stage;
    o.t_bwd_stage = t_bwd_stage;

    o.time.compute = base.time_compute;
    o.time.memory = base.time_memory;
    o.time.tp_comm = blk.tp_comm;
    o.time.bubble = blk.bubble;

    const std::size_t hop_idx = placements[p][2] > 1 ? 1 : 0;
    if (!p2p_priced[hop_idx]) {
      if (cfg.np > 1) {
        p2p_value[hop_idx] = pipeline::p2p_time(
            pr,
            pr.place_ref(comm::GroupPlacement{2, hop_idx != 0 ? 2 : 1}),
            cfg.np, sig.microbatches, sig.pp_boundary_bytes, cfg.interleave);
      } else {
        p2p_value[hop_idx] = Seconds(0);
      }
      p2p_priced[hop_idx] = true;
    }
    o.time.pp_comm = p2p_value[hop_idx].value();

    std::int64_t dp_nvs = placements[p][3];
    if (sig.dp_group_includes_tp2) dp_nvs *= placements[p][1];
    if (sig.dp_size > 1) {
      std::size_t k = 0;
      for (; k < s.dp_keys.size(); ++k) {
        if (s.dp_keys[k] == dp_nvs) break;
      }
      if (k == s.dp_keys.size()) {
        const comm::FabricPricer::Placed& g =
            pr.place_ref(comm::GroupPlacement{sig.dp_size, dp_nvs});
        const Seconds t_rs =
            pr.price(ops::Collective::ReduceScatter, sig.dp_grad_bytes, g);
        const Seconds t_ag =
            pr.price(ops::Collective::AllGather, sig.dp_grad_bytes, g);
        s.dp_keys.push_back(dp_nvs);
        s.dp_terms.push_back({t_rs, t_ag});
      }
      const Seconds t_rs = s.dp_terms[k][0];
      const Seconds t_ag = s.dp_terms[k][1];
      if (cfg.zero == parallel::ZeroStage::kWeights) {
        o.time.dp_comm = ((t_ag * 2.0 + t_rs) * (0.5 * md)).value();
      } else {
        o.time.dp_comm = (std::max(Seconds(0), t_rs - t_bwd_stage) +
                          std::max(Seconds(0), t_ag - t_fwd_stage))
                             .value();
      }
    }

    o.time.optimizer = base.optimizer;
  }

#ifndef NDEBUG
  // The scratch tables were just laid out above; a shape violation here
  // means the scan read (or will next read) through the wrong cells.
  {
    const analysis::LintReport shape = analysis::lint_batch_scratch(bat, s, np);
    if (shape.errors() > 0) {
      throw std::logic_error("batched scratch invariants violated:\n" +
                             shape.summary());
    }
  }
#endif
}

std::vector<std::vector<PlacementTiming>> time_placements_systems_batch(
    const CostSignature& sig, const BatchedSignature& bat,
    const std::vector<hw::SystemConfig>& systems,
    const parallel::ParallelConfig& cfg,
    const std::vector<std::array<std::int64_t, 4>>& placements,
    const EvalOptions& opts) {
  std::vector<std::vector<PlacementTiming>> out(systems.size());
  BatchScratch scratch;
  for (std::size_t k = 0; k < systems.size(); ++k) {
    const SystemTiming base = bind_system_batched(sig, bat, systems[k], opts);
    time_placements_batch(sig, bat, base, systems[k], cfg, placements, opts,
                          out[k], &scratch);
  }
  return out;
}

}  // namespace tfpe::core
