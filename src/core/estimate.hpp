#pragma once
// Run-length arithmetic shared by the end-to-end estimators
// (core/training_estimate.hpp and core/inference_estimate.hpp): one
// definition of the steps x step-time -> wall-clock conversion and of the
// tokens-per-step bookkeeping, so the two estimators cannot drift apart.

#include <cstdint>

#include "util/units.hpp"

namespace tfpe::core {

/// Wall-clock length of `steps` repetitions of a fixed-time unit — an
/// optimizer step for training, a decode round for serving.
struct RunLength {
  double steps = 0;      ///< Repetitions of the unit.
  double step_time = 0;  ///< Seconds per unit.
  double total_seconds = 0;
  double days = 0;
};

inline RunLength run_length(double steps, double step_seconds) {
  RunLength est;
  est.steps = steps;
  est.step_time = step_seconds;
  est.total_seconds = steps * step_seconds;
  est.days = est.total_seconds / util::kSecondsPerDay;
  return est;
}

/// Tokens consumed per optimizer step (training) or produced per full
/// decode round over `batch` resident requests (serving: tokens_per_unit
/// with tokens_each = 1).
inline double tokens_per_unit(std::int64_t batch, std::int64_t tokens_each) {
  return static_cast<double>(batch) * static_cast<double>(tokens_each);
}

}  // namespace tfpe::core
