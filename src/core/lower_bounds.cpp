#include "core/lower_bounds.hpp"

#include <algorithm>

#include "comm/collective_algorithm.hpp"

namespace tfpe::core {

namespace {

/// Per-GPU FLOP floor of an (m x k)(k x n) matmul sharded across `tp`
/// GPUs, whichever dimensions the split uses (see header).
double matmul_floor(double m, double n, double k, double tp) {
  return std::max(0.0, 2.0 * k - tp) * m * n / tp;
}

}  // namespace

SearchBounds search_bounds(const model::TransformerConfig& mdl,
                           const hw::SystemConfig& sys,
                           const parallel::ParallelConfig& cfg,
                           std::int64_t global_batch,
                           const EvalOptions& opts) {
  return search_bounds(mdl, sys, sys.resolved_fabric(), cfg, global_batch,
                       opts);
}

SearchBounds search_bounds(const model::TransformerConfig& mdl,
                           const hw::SystemConfig& sys,
                           const hw::Topology& fabric,
                           const parallel::ParallelConfig& cfg,
                           std::int64_t global_batch,
                           const EvalOptions& opts) {
  return finish_search_bounds(search_bounds_base(mdl, sys, cfg, global_batch,
                                                 opts),
                              mdl, fabric, cfg);
}

SearchBoundsBase search_bounds_base(const model::TransformerConfig& mdl,
                                    const hw::SystemConfig& sys,
                                    const parallel::ParallelConfig& cfg,
                                    std::int64_t global_batch,
                                    const EvalOptions& opts) {
  SearchBoundsBase out;
  const double tp = static_cast<double>(cfg.n1 * cfg.n2);
  const double b_loc = static_cast<double>(cfg.local_microbatch(global_batch));
  const double l = static_cast<double>(mdl.seq_len);
  const double e = static_cast<double>(mdl.embed);
  const double f = static_cast<double>(mdl.hidden);
  const double eh = static_cast<double>(mdl.head_dim());
  const double ekv = static_cast<double>(mdl.kv_embed());
  const double bl = b_loc * l;

  // --- Compute-only FLOP floor per block, per microbatch, per GPU. ---
  // Attention projections: Q and output (e x e), K and V (e x kv_embed).
  double fwd = matmul_floor(bl, e, e, tp) + matmul_floor(bl, e, e, tp) +
               2.0 * matmul_floor(bl, ekv, e, tp);
  // Logit + Attend: two bh-batched (l x e_h)(e_h x lkv) matmuls. The
  // attended length covers full/windowed/linear attention uniformly, and
  // ring attention moves the same FLOPs.
  const double lkv = static_cast<double>(mdl.attended_len());
  fwd += 2.0 * static_cast<double>(mdl.heads) * b_loc * l * lkv *
         std::max(0.0, 2.0 * eh - tp) / tp;
  // Dense MLP: (bl x e)(e x f) and (bl x f)(f x e). MoE routing and
  // capacity factors are strategy-dependent; the floor skips the MLP there.
  if (!mdl.is_moe()) {
    fwd += matmul_floor(bl, f, e, tp) + matmul_floor(bl, e, f, tp);
  }

  // 1F1B: m steady microbatches plus the (np-1)/v bubble, each at least the
  // per-stage FLOP time; backward costs at least one forward.
  const double layers = static_cast<double>(mdl.depth / cfg.np);
  const double micros = static_cast<double>(cfg.microbatches) +
                        static_cast<double>(cfg.np - 1) /
                            static_cast<double>(cfg.interleave);
  out.compute_floor =
      (Flops(micros * layers * 2.0 * fwd) / sys.gpu.tensor_flops).value();

  // Distributed Adam reads/writes ~28 B per locally updated parameter at
  // HBM bandwidth; it never overlaps in the model.
  const double moe_shard =
      mdl.is_moe() ? static_cast<double>(std::min(cfg.nd, mdl.moe_experts))
                   : 1.0;
  const double stage_params_floor =
      static_cast<double>(mdl.params_per_layer()) / (tp * moe_shard) * layers;
  const double shard_max = static_cast<double>(cfg.nd * cfg.n2);
  out.compute_floor +=
      (Bytes(28.0 * stage_params_floor / shard_max) / sys.gpu.hbm_bandwidth)
          .value();

  // --- Placement-independent memory floor. ---
  // FP16 weights + gradients (ZeRO-3 additionally shards them over at most
  // nd * n2), optimizer states sharded over at most nd * n2, and at least
  // the block-boundary activation (b_loc x l x e over at most tp GPUs) per
  // layer per in-flight microbatch — the floor both with and without full
  // activation recompute.
  const double wg = cfg.zero == parallel::ZeroStage::kWeights
                        ? 4.0 * stage_params_floor / shard_max
                        : 4.0 * stage_params_floor;
  const double opt_states = 12.0 * stage_params_floor / shard_max;
  const double in_flight =
      static_cast<double>(std::min(cfg.np, cfg.microbatches));
  const double act = 2.0 * bl * e / tp * layers * in_flight *
                     (1.0 - opts.activation_offload);
  out.memory_floor = wg + opt_states + act;
  out.stage_params_floor = stage_params_floor;
  out.bl = bl;
  out.tp = tp;
  return out;
}

SearchBounds finish_search_bounds(const SearchBoundsBase& base,
                                  const model::TransformerConfig& mdl,
                                  const hw::Topology& fabric,
                                  const parallel::ParallelConfig& cfg) {
  SearchBounds out;
  out.time_floor = base.compute_floor;
  out.memory_floor = base.memory_floor;

  // --- Network floors from the fabric's bottleneck levels. ---
  // Bandwidth-only (latency dropped), so they hold for every placement and
  // every collective algorithm the topology may enable.
  if (cfg.np > 1) {
    // Every microbatch hands the (b_loc x l x e)/tp boundary tensor across
    // each stage boundary twice per virtual chunk, at best over the fastest
    // single link of the fabric.
    const double e = static_cast<double>(mdl.embed);
    const Bytes boundary = Bytes(2.0 * base.bl * e / base.tp);
    out.time_floor += (boundary / comm::best_p2p_bandwidth(fabric)).value() *
                      (2.0 * static_cast<double>(cfg.microbatches) *
                       static_cast<double>(cfg.interleave));
  }
  if (cfg.zero == parallel::ZeroStage::kWeights && cfg.nd > 1) {
    // ZeRO-3 re-gathers the stage weights for forward and backward and
    // reduce-scatters the gradients on every microbatch, half overlapped:
    // three collectives of the 2 B/param stage volume over at least the nd
    // data-parallel ranks (collective_time_floor is monotone in both the
    // group size and the volume, so the nd-rank floor stays conservative
    // when the DP group also absorbs n2).
    const Bytes grads = Bytes(2.0 * base.stage_params_floor);
    out.time_floor += (comm::collective_time_floor(fabric, cfg.nd, grads) *
                       (3.0 * 0.5 * static_cast<double>(cfg.microbatches)))
                          .value();
  }
  return out;
}

}  // namespace tfpe::core
