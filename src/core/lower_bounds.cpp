#include "core/lower_bounds.hpp"

#include <algorithm>

#include "comm/collective_algorithm.hpp"
#include "ops/op_factory.hpp"

namespace tfpe::core {

namespace {

/// Per-GPU FLOP floor of an (m x k)(k x n) matmul sharded across `tp`
/// GPUs, whichever dimensions the split uses (see header). A contraction
/// split cannot use more than k parts, so the subtracted term saturates at
/// min(tp, k) — the floor stays positive even when tp > k (e.g. the
/// head-dim contraction of attention at large tp).
double matmul_floor(double m, double n, double k, double tp) {
  return (2.0 * k - std::min(tp, k)) * m * n / tp;
}

/// Floor on the fwd + bwd FLOPs of one (bl x C) = (bl x K)(K x C)
/// projection sharded across tp GPUs. The backward runs dgrad
/// (contraction C) and wgrad (contraction bl) in ops::matmul, but SUMMA
/// prices its backward as exactly twice the forward-contraction form, so
/// the valid cross-builder backward floor is the min of the two
/// accountings.
double projection_floor(double bl, double C, double K, double tp) {
  const double fwd = matmul_floor(bl, C, K, tp);
  const double bwd = std::min(2.0 * fwd, matmul_floor(bl, K, C, tp) +
                                              matmul_floor(C, K, bl, tp));
  return fwd + bwd;
}

/// Fused-attention fwd FLOPs per GPU: two (lq x eh x lkv) matmuls plus the
/// in-kernel softmax (5 FLOPs/logit), 4*eh + 3 per head-logit. Every
/// builder calls ops::fused_attention with the head dim whole (only heads,
/// queries and the batch are sharded), so the per-logit cost never shrinks
/// and the per-GPU share is at least the 1/tp slice. Backward is priced at
/// exactly 2.5x forward (FlashAttention recompute) in the factory.
constexpr double kAttentionFwdBwd = 3.5;

/// HBM bytes per element of the mandatory vector ops: every builder runs
/// 2x LN, 2x dropout and 2x residual on the (bl x e) stream plus GeLU on
/// (bl x f) for the dense MLP, each reading+writing 2 elements forward and
/// 3 backward at FP16. The roofline charges at least the HBM side.
constexpr double kVectorBytesPerElement = 5.0 * ops::kBytesPerElement;

}  // namespace

SearchBounds search_bounds(const model::TransformerConfig& mdl,
                           const hw::SystemConfig& sys,
                           const parallel::ParallelConfig& cfg,
                           std::int64_t global_batch,
                           const EvalOptions& opts) {
  return search_bounds(mdl, sys, sys.resolved_fabric(), cfg, global_batch,
                       opts);
}

SearchBounds search_bounds(const model::TransformerConfig& mdl,
                           const hw::SystemConfig& sys,
                           const hw::Topology& fabric,
                           const parallel::ParallelConfig& cfg,
                           std::int64_t global_batch,
                           const EvalOptions& opts) {
  return finish_search_bounds(search_bounds_base(mdl, sys, cfg, global_batch,
                                                 opts),
                              mdl, fabric, cfg);
}

SearchBoundsBase search_bounds_base(const model::TransformerConfig& mdl,
                                    const hw::SystemConfig& sys,
                                    const parallel::ParallelConfig& cfg,
                                    std::int64_t global_batch,
                                    const EvalOptions& opts) {
  SearchBoundsBase out;
  const double tp = static_cast<double>(cfg.n1 * cfg.n2);
  const double b_loc = static_cast<double>(cfg.local_microbatch(global_batch));
  const double l = static_cast<double>(mdl.seq_len);
  const double e = static_cast<double>(mdl.embed);
  const double f = static_cast<double>(mdl.hidden);
  const double eh = static_cast<double>(mdl.head_dim());
  const double ekv = static_cast<double>(mdl.kv_embed());
  const double bl = b_loc * l;

  // --- FLOP floor per block, per microbatch, per GPU (fwd + bwd). ---
  // Attention projections: Q and output (e x e), K and V (e x kv_embed),
  // each with its dgrad/wgrad backward (see projection_floor).
  double flops = 2.0 * projection_floor(bl, e, e, tp) +
                 2.0 * projection_floor(bl, ekv, e, tp);
  // Logit + Attend: the fused attention kernel, head dim never sharded.
  // The attended length covers full/windowed/linear attention uniformly,
  // and ring attention moves the same FLOPs.
  const double lkv = static_cast<double>(mdl.attended_len());
  flops += kAttentionFwdBwd * static_cast<double>(mdl.heads) * bl * lkv *
           (4.0 * eh + 3.0) / tp;
  // Dense MLP: (bl x e)(e x f) and (bl x f)(f x e). MoE routing and
  // capacity factors are strategy-dependent; the floor skips the MLP there.
  if (!mdl.is_moe()) {
    flops += projection_floor(bl, f, e, tp) + projection_floor(bl, e, f, tp);
  }

  // Mandatory vector ops on the residual stream: per-GPU element counts
  // are bl*e/tp (LN/dropout/residual x2 each) plus bl*f/tp (dense GeLU) in
  // every builder; the roofline charges at least the HBM side.
  const double vec_elems = (6.0 * e + (mdl.is_moe() ? 0.0 : f)) * bl / tp;
  const double t_vec =
      (Bytes(kVectorBytesPerElement * vec_elems) / sys.gpu.hbm_bandwidth)
          .value();

  // 1F1B: m steady microbatches plus the (np-1)/v bubble, each at least the
  // per-stage FLOP + vector time.
  const double layers = static_cast<double>(mdl.depth / cfg.np);
  const double micros = static_cast<double>(cfg.microbatches) +
                        static_cast<double>(cfg.np - 1) /
                            static_cast<double>(cfg.interleave);
  out.compute_floor =
      micros * layers *
      ((Flops(flops) / sys.gpu.tensor_flops).value() + t_vec);

  // Distributed Adam reads/writes ~28 B per locally updated parameter at
  // HBM bandwidth; it never overlaps in the model.
  const double moe_shard =
      mdl.is_moe() ? static_cast<double>(std::min(cfg.nd, mdl.moe_experts))
                   : 1.0;
  const double stage_params_floor =
      static_cast<double>(mdl.params_per_layer()) / (tp * moe_shard) * layers;
  const double shard_max = static_cast<double>(cfg.nd * cfg.n2);
  out.compute_floor +=
      (Bytes(28.0 * stage_params_floor / shard_max) / sys.gpu.hbm_bandwidth)
          .value();

  // --- Placement-independent memory floor. ---
  // FP16 weights + gradients (ZeRO-3 additionally shards them over at most
  // nd * n2), optimizer states sharded over at most nd * n2, and at least
  // the block-boundary activation (b_loc x l x e over at most tp GPUs) per
  // layer per in-flight microbatch — the floor both with and without full
  // activation recompute.
  const double wg = cfg.zero == parallel::ZeroStage::kWeights
                        ? 4.0 * stage_params_floor / shard_max
                        : 4.0 * stage_params_floor;
  const double opt_states = 12.0 * stage_params_floor / shard_max;
  const double in_flight =
      static_cast<double>(std::min(cfg.np, cfg.microbatches));
  const double act = 2.0 * bl * e / tp * layers * in_flight *
                     (1.0 - opts.activation_offload);
  out.memory_floor = wg + opt_states + act;
  out.stage_params_floor = stage_params_floor;
  out.bl = bl;
  out.tp = tp;
  return out;
}

SearchBounds finish_search_bounds(const SearchBoundsBase& base,
                                  const model::TransformerConfig& mdl,
                                  const hw::Topology& fabric,
                                  const parallel::ParallelConfig& cfg) {
  SearchBounds out;
  out.time_floor = base.compute_floor;
  out.memory_floor = base.memory_floor;

  // --- Network floors from the fabric's bottleneck levels. ---
  // Bandwidth-only (latency dropped), so they hold for every placement and
  // every collective algorithm the topology may enable.
  if (cfg.np > 1) {
    // Every microbatch hands the (b_loc x l x e)/tp boundary tensor across
    // each stage boundary twice per virtual chunk, at best over the fastest
    // single link of the fabric.
    const double e = static_cast<double>(mdl.embed);
    const Bytes boundary = Bytes(2.0 * base.bl * e / base.tp);
    out.time_floor += (boundary / comm::best_p2p_bandwidth(fabric)).value() *
                      (2.0 * static_cast<double>(cfg.microbatches) *
                       static_cast<double>(cfg.interleave));
  }
  if (cfg.zero == parallel::ZeroStage::kWeights && cfg.nd > 1) {
    // ZeRO-3 re-gathers the stage weights for forward and backward and
    // reduce-scatters the gradients on every microbatch, half overlapped:
    // three collectives of the 2 B/param stage volume over at least the nd
    // data-parallel ranks (collective_time_floor is monotone in both the
    // group size and the volume, so the nd-rank floor stays conservative
    // when the DP group also absorbs n2).
    const Bytes grads = Bytes(2.0 * base.stage_params_floor);
    out.time_floor += (comm::collective_time_floor(fabric, cfg.nd, grads) *
                       (3.0 * 0.5 * static_cast<double>(cfg.microbatches)))
                          .value();
  }
  return out;
}

double shape_time_floor(const model::TransformerConfig& mdl,
                        const hw::SystemConfig& sys, std::int64_t n_gpus,
                        std::int64_t global_batch) {
  const double n = static_cast<double>(n_gpus);
  const double b = static_cast<double>(global_batch);
  const double l = static_cast<double>(mdl.seq_len);
  const double e = static_cast<double>(mdl.embed);
  const double f = static_cast<double>(mdl.hidden);
  const double eh = static_cast<double>(mdl.head_dim());
  const double ekv = static_cast<double>(mdl.kv_embed());
  const double lkv = static_cast<double>(mdl.attended_len());
  const double d = static_cast<double>(mdl.depth);
  const double tokens = b * l;

  // tp -> n relaxation of the per-configuration terms (see header): each
  // factor collapse leaves coeff * (2k - min(n, k)) * tokens * d / n.
  const auto shard = [n](double k) { return 2.0 * k - std::min(n, k); };
  // The wgrad contraction runs over the token dimension; its total split
  // count across DP ranks, microbatches and sequence shards is at most
  // min(b * n, tokens).
  const double wgrad_coeff = 2.0 * tokens - std::min(b * n, tokens);
  // Per (C, K) projection pair: fwd + min(SUMMA-style 2x fwd,
  // dgrad + wgrad) — the same cross-builder min as projection_floor.
  const auto pair = [&](double C, double K) {
    const double fwd = C * shard(K) * tokens;
    const double bwd =
        std::min(2.0 * fwd, K * shard(C) * tokens + C * K * wgrad_coeff);
    return fwd + bwd;
  };
  double flops = 2.0 * pair(e, e) + 2.0 * pair(ekv, e);
  if (!mdl.is_moe()) flops += pair(f, e) + pair(e, f);
  // Fused attention, head dim never sharded (no relaxation loss): the term
  // that separates iso-parameter shapes — it grows with e*d at fixed
  // parameter budget, so narrow-deep shapes floor higher than wide-shallow.
  flops += kAttentionFwdBwd * static_cast<double>(mdl.heads) * tokens * lkv *
           (4.0 * eh + 3.0);
  double t = (Flops(flops * d / n) / sys.gpu.tensor_flops).value();
  // Mandatory vector ops, HBM side (element totals are conserved by every
  // sharding, so the per-GPU share is at least 1/n).
  const double vec_elems = (6.0 * e + (mdl.is_moe() ? 0.0 : f)) * tokens;
  t += (Bytes(kVectorBytesPerElement * vec_elems * d / n) /
        sys.gpu.hbm_bandwidth)
           .value();
  return t;
}

double decode_round_floor(Bytes stage_weight_bytes, Bytes stage_kv_bytes,
                          const hw::GpuSpec& gpu) {
  return ((stage_weight_bytes + stage_kv_bytes) / gpu.hbm_bandwidth).value();
}

}  // namespace tfpe::core
