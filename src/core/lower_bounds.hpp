#pragma once
// Cheap analytic lower bounds for the S3 configuration search.
//
// For a parallelization configuration these bound, WITHOUT building the op
// list (no build_layer call):
//   * time_floor   — a compute-only FLOP-time floor on the iteration time,
//                    valid for every NVS placement and every EvalOptions
//                    setting (overlap/offload/recompute only add time or
//                    move communication, never reduce the matmul FLOPs).
//   * memory_floor — a placement-independent floor on the busiest GPU's
//                    resident bytes, valid for every placement.
//
// Both are conservative: time_floor <= iteration() and memory_floor <=
// mem.total() for every evaluation of the configuration. The search uses
// them to reject configurations before the (much more expensive) op-list
// construction and placement scan run: a candidate whose time_floor already
// exceeds the incumbent's achieved iteration time cannot improve the
// optimum, and one whose memory_floor exceeds HBM capacity is infeasible
// under every placement.
//
// Construction of the floors (see docs/API.md "Search complexity & pruning"
// for when they are exact):
//   * Every matmul of m x n x k sharded across the tp = n1*n2 tensor-
//     parallel GPUs executes at least (2k - min(tp, k)) * m * n / tp FLOPs
//     on one GPU, whichever dimensions the strategy splits (splitting the
//     contraction dim k by s <= min(tp, k) gives (2k/s - 1) * mn/(tp/s) =
//     (2k - s) * mn / tp; splitting m or n keeps the (2k - 1) coefficient
//     and is larger still; replication only adds).
//   * The backward of a projection runs dgrad (contraction = the output
//     dim) and wgrad (contraction = the token dim) in ops::matmul; SUMMA
//     prices its backward as exactly 2x the forward-contraction form. The
//     cross-builder backward floor is the min of the two accountings —
//     roughly 2x forward, so fwd+bwd is ~3x the forward FLOPs.
//   * Attention is ops::fused_attention in every builder: two
//     (lq x eh x lkv) matmuls + the in-kernel softmax, with the head dim
//     never sharded (only heads/queries/batch split), backward priced at
//     2.5x forward — so the floor keeps the full (4*eh + 3)-per-head-logit
//     cost with no tp relaxation loss.
//   * Every builder runs LN x2, dropout x2 and residual x2 on the
//     (bl x e) stream plus the dense GeLU on (bl x f), with sharded
//     element counts summing to the unsharded totals; the roofline charges
//     at least their HBM traffic (5 element reads+writes fwd+bwd at FP16).
//   * 1F1B iteration time is at least (m + (np-1)/v) per-stage microbatch
//     times, and each of those is at least the stage's FLOP + vector time.
//   * Network floors walk the resolved hw::Topology: the pipeline handoff
//     pays at least the boundary-tensor wire time over the fabric's fastest
//     single link, and ZeRO-3's per-microbatch weight-gather/grad-scatter
//     at least comm::collective_time_floor — the algorithm-independent
//     ingress/bisection bound of the bottleneck level.

#include <cstdint>

#include "core/evaluator.hpp"
#include "hw/system.hpp"
#include "model/transformer.hpp"
#include "parallel/parallel_config.hpp"

namespace tfpe::core {

struct SearchBounds {
  /// Lower bound on iteration() [s]; <= every placement's evaluated time.
  double time_floor = 0;
  /// Lower bound on mem.total() [bytes]; placement-independent.
  double memory_floor = 0;
};

/// Bounds for `cfg` on `sys`. `cfg` must satisfy the divisibility
/// constraints (invalid_reason() == nullopt with unit placement); the
/// placement fields are ignored. `opts` is consulted for the extensions
/// that change the memory floor (activation offload).
SearchBounds search_bounds(const model::TransformerConfig& mdl,
                           const hw::SystemConfig& sys,
                           const parallel::ParallelConfig& cfg,
                           std::int64_t global_batch,
                           const EvalOptions& opts = {});

/// Same bounds, with the fabric resolved by the caller. The convenience
/// overload above calls sys.resolved_fabric() internally; a screen that
/// bounds many candidates against one system should resolve once and use
/// this form (bitwise-identical results — the fabric is the same object
/// either way).
SearchBounds search_bounds(const model::TransformerConfig& mdl,
                           const hw::SystemConfig& sys,
                           const hw::Topology& fabric,
                           const parallel::ParallelConfig& cfg,
                           std::int64_t global_batch,
                           const EvalOptions& opts = {});

/// The fabric-independent prefix of search_bounds: the compute/optimizer
/// time floor, the memory floor, and the intermediates the network terms
/// reuse. Valid for every fabric on a system with the same GPU roofline —
/// the sweep computes it once per chain and re-finishes it per point.
struct SearchBoundsBase {
  double compute_floor = 0;      ///< time_floor before the network terms
  double memory_floor = 0;
  double stage_params_floor = 0; ///< reused by the ZeRO-3 collective floor
  double bl = 0;                 ///< local batch x seq_len (P2P volume)
  double tp = 0;                 ///< n1 * n2 (P2P volume divisor)
};

SearchBoundsBase search_bounds_base(const model::TransformerConfig& mdl,
                                    const hw::SystemConfig& sys,
                                    const parallel::ParallelConfig& cfg,
                                    std::int64_t global_batch,
                                    const EvalOptions& opts = {});

/// Add the fabric-dependent network floors to a base. search_bounds(...)
/// is exactly finish_search_bounds(search_bounds_base(...), ...) — the
/// split sits on a statement boundary of the original accumulation, so the
/// composed result is bitwise-identical, whichever path computed it.
SearchBounds finish_search_bounds(const SearchBoundsBase& base,
                                  const model::TransformerConfig& mdl,
                                  const hw::Topology& fabric,
                                  const parallel::ParallelConfig& cfg);

/// Architecture-level time floor: a compute-only lower bound on iteration()
/// over EVERY valid parallelization and placement of `mdl` on `n_gpus`
/// GPUs, from the shape and the system's tensor-core peak alone — no
/// candidate enumeration, no per-configuration work. The co-design search
/// (search/codesign.hpp) screens whole shapes against the cross-shape
/// incumbent with it before enumerating their candidate spaces.
///
/// Construction: every per-configuration compute floor above is a sum of
/// terms of the form
///   micros * layers * coeff * (2k - min(tp, k)) * bl / tp
/// with micros >= m, layers = d/np, bl = b*l/(nd*m) and tp*np*nd = n. The
/// m / np / nd factors collapse to b*l*d*(2k - min(tp, k))/n, which is
/// non-increasing in tp <= n, so replacing tp by n bounds every candidate.
/// The wgrad terms contract the token dimension, whose total split count
/// across DP ranks, microbatches and sequence shards is at most
/// min(b*n, b*l); the fused-attention and vector-op terms collapse with no
/// relaxation loss at all (their per-element cost is sharding-invariant).
/// The Adam, memory and network terms are dropped (floors only shrink), so
/// shape_time_floor <= search_bounds(...).time_floor <= iteration() for
/// every candidate — the property that keeps shape-level pruning exact.
/// Iso-parameter shapes differ mainly through the fused-attention term
/// (~e*d*l*lkv head-logit FLOPs, growing with e*d at fixed budget) and the
/// vector-op HBM term (~(6e + f)*d bytes/token), which is what separates
/// narrow-deep from wide-shallow shapes; architecture variants whose floor
/// drops whole terms (e.g. MoE's strategy-dependent MLP) separate further.
double shape_time_floor(const model::TransformerConfig& mdl,
                        const hw::SystemConfig& sys, std::int64_t n_gpus,
                        std::int64_t global_batch);

/// Decode-phase floor on the per-token round time (ExecutionPhase::kDecode):
/// every decode round re-reads each stage's resident weight bytes at least
/// once and streams the whole resident K/V cache exactly once, so
///   TPOT >= (stage_weight_bytes + stage_kv_bytes) / hbm_bandwidth.
/// The modeled round (np group passes through the stage) reads the weights
/// np times, so decode_round_time >= this floor for every configuration —
/// asserted over the serve grid by tests/test_serving.cpp. FLOP and
/// collective terms are dropped (floors only shrink).
double decode_round_floor(Bytes stage_weight_bytes, Bytes stage_kv_bytes,
                          const hw::GpuSpec& gpu);

}  // namespace tfpe::core
