#include "core/inference_estimate.hpp"

#include <algorithm>
#include <cmath>

#include "core/lower_bounds.hpp"
#include "ops/op_factory.hpp"
#include "pipeline/pipeline_model.hpp"

namespace tfpe::core {

namespace {

/// Largest divisor of n that is <= cap — the packing primitive shared (by
/// value, not by code: search/ sits above core/) with the training
/// search's pack_placement; tests/test_serving.cpp pins the agreement.
std::int64_t largest_divisor_leq(std::int64_t n, std::int64_t cap) {
  std::int64_t best = 1;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d) continue;
    if (d <= cap) best = std::max(best, d);
    if (n / d <= cap) best = std::max(best, n / d);
  }
  return best;
}

model::TransformerConfig prompt_model(const model::TransformerConfig& mdl,
                                      const Workload& w) {
  model::TransformerConfig prompt = mdl;
  if (w.prompt_len > 0) prompt.seq_len = w.prompt_len;
  return prompt;
}

}  // namespace

parallel::ParallelConfig serving_parallel_config(const hw::SystemConfig& sys,
                                                 const ServingConfig& sc) {
  parallel::ParallelConfig cfg;
  cfg.strategy = parallel::TpStrategy::TP1D;
  cfg.n1 = sc.tp;
  cfg.np = sc.pp;
  cfg.nd = 1;
  cfg.microbatches = 1;
  std::int64_t budget = sys.nvs_domain;
  cfg.nvs1 = largest_divisor_leq(cfg.n1, budget);
  budget /= cfg.nvs1;
  cfg.nvsp = largest_divisor_leq(cfg.np, budget);
  return cfg;
}

std::optional<std::string> serve_invalid_reason(
    const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
    const Workload& w, const ServingConfig& sc) {
  if (sc.tp < 1 || sc.pp < 1) return "tp and pp must be >= 1";
  if (sc.batch < 1) return "batch must be >= 1";
  if (!(sc.kv_cap_fraction > 0.0) || sc.kv_cap_fraction > 1.0) {
    return "kv_cap_fraction must be in (0, 1]";
  }
  if (w.prompt_len < 1) return "prompt_len must be >= 1";
  if (w.output_len < 1) return "output_len must be >= 1";
  if (mdl.is_moe()) return "MoE serving is not modeled";
  // The training divisibility contract on the prompt-length model covers
  // heads/kv-heads/hidden/embed over tp, depth over pp, prompt over tp
  // (sequence-parallel prefill) and the replica <= system GPU count.
  const parallel::ParallelConfig cfg = serving_parallel_config(sys, sc);
  if (auto why = cfg.invalid_reason(prompt_model(mdl, w), sys, 1)) return why;
  return std::nullopt;
}

InferenceEstimate estimate_serving(const model::TransformerConfig& mdl,
                                   const hw::SystemConfig& sys,
                                   const Workload& w, const ServingConfig& sc,
                                   const CostSignature& prefill_training_sig,
                                   const EvalOptions& opts) {
  InferenceEstimate est;
  est.cfg = sc;
  if (auto why = serve_invalid_reason(mdl, sys, w, sc)) {
    est.reason = *why;
    return est;
  }
  const parallel::ParallelConfig cfg = serving_parallel_config(sys, sc);
  const double np = static_cast<double>(sc.pp);
  const double n_replica = static_cast<double>(sc.tp * sc.pp);
  const double osl = static_cast<double>(w.output_len);

  // --- Prefill: one prompt through the forward-only pipeline. ---
  const CostSignature sig_p =
      adapt_to_phase(prefill_training_sig, ExecutionPhase::kPrefill);
  const SystemTiming base_p = bind_system(sig_p, sys, opts);
  const Seconds t_stage_p = time_phase(sig_p, base_p, cfg, opts).t_stage;
  const Seconds t_hop_p = pipeline::p2p_hop(
      base_p.fabric, sig_p.pp_boundary_bytes, cfg.nvsp > 1 ? 2 : 1);
  est.ttft = pipeline::prefill_latency(sc.pp, 1, t_stage_p, t_hop_p).value();

  // --- KV budget -> admitted batch R. ---
  est.kv_bytes_per_request = memory::kv_cache_bytes(
      mdl, mdl.depth / sc.pp,
      static_cast<double>(w.prompt_len + w.output_len), sc.tp);
  const Bytes kv_budget = Bytes(sc.kv_cap_fraction *
                                sys.gpu.hbm_capacity.value()) -
                          sig_p.mem.weights - sig_p.mem.activations;
  if (!(kv_budget.value() >= est.kv_bytes_per_request.value())) {
    est.reason = "KV budget admits no resident request";
    return est;
  }
  const std::int64_t cap = static_cast<std::int64_t>(
      std::floor(kv_budget.value() / est.kv_bytes_per_request.value()));
  est.admitted_batch = std::min(sc.batch, cap);
  const double R = static_cast<double>(est.admitted_batch);

  // --- Decode: R requests in pp rotating groups. ---
  const CostSignature sig_d =
      compile_decode_signature(mdl, cfg, R / np, w.decode_kv_len());
  const SystemTiming base_d = bind_system(sig_d, sys, opts);
  const Seconds t_stage_d = time_phase(sig_d, base_d, cfg, opts).t_stage;
  const Seconds t_hop_d = pipeline::p2p_hop(
      base_d.fabric, sig_d.pp_boundary_bytes, cfg.nvsp > 1 ? 2 : 1);
  const Seconds round = pipeline::decode_round_time(sc.pp, t_stage_d, t_hop_d);

  // Continuous batching: R/OSL requests complete (and are replaced) per
  // round; each replacement prompt costs every stage one prefill pass.
  const Seconds prefill_steal = t_stage_p * (R / osl);
  const Seconds tpot = round + prefill_steal;
  est.tpot = tpot.value();
  est.prefill_fraction = (prefill_steal / tpot).value();
  est.request_latency = est.ttft + osl * est.tpot;
  est.tokens_per_sec = R / est.tpot;
  est.tokens_per_sec_per_gpu = est.tokens_per_sec / n_replica;

  // --- Residency on the busiest GPU. ---
  est.mem.weights = sig_p.mem.weights;
  est.mem.activations =
      std::max(sig_p.mem.activations, sig_d.mem.activations);
  est.mem.kv_cache = est.kv_bytes_per_request * R;
  est.decode_floor =
      decode_round_floor(est.mem.weights, est.mem.kv_cache, sys.gpu);
  if (est.mem.total() > sys.gpu.hbm_capacity) {
    est.reason = "exceeds HBM capacity";
    return est;
  }
  est.feasible = true;
  return est;
}

InferenceEstimate estimate_serving(const model::TransformerConfig& mdl,
                                   const hw::SystemConfig& sys,
                                   const Workload& w, const ServingConfig& sc,
                                   const EvalOptions& opts) {
  InferenceEstimate est;
  est.cfg = sc;
  if (auto why = serve_invalid_reason(mdl, sys, w, sc)) {
    est.reason = *why;
    return est;
  }
  const parallel::ParallelConfig cfg = serving_parallel_config(sys, sc);
  const CostSignature sig =
      compile_signature(prompt_model(mdl, w), cfg, 1, opts);
  return estimate_serving(mdl, sys, w, sc, sig, opts);
}

}  // namespace tfpe::core
