#pragma once
// Two-phase evaluation (build-once / re-time): hardware-invariant cost
// signatures compiled from a built layer, timed against a system in O(ops).
//
// A configuration's S1 op list depends only on (model, parallel config,
// microbatch) — never on the hardware — yet the paper's §IV sweeps re-run
// the full evaluation per hardware point (GPU generation, NVS domain size,
// bandwidth/capacity what-ifs). compile_signature() lowers a LayerCost into
// a CostSignature once:
//   * per-op roofline operands (FLOPs + HBM bytes per class, SUMMA panel
//     structure, tensor-core vs vector unit),
//   * flattened collective requests with per-group volumes,
//   * the vocabulary-head ops and the stored-activation / pipeline-boundary
//     bytes,
//   * the full hardware-free memory breakdown (weights, gradients, Adam
//     shard, in-flight activations) and the DP/optimizer traffic scalars.
// Timing then splits again:
//   * bind_system() — per (signature, system): the roofline dot products
//     that do not depend on the NVS placement (compute/HBM time, optimizer
//     update, SUMMA panel times);
//   * time_signature() — per placement: collective latencies, pipeline
//     bubble/P2P and the DP exposure, producing an EvalResult that is
//     BITWISE identical to core::evaluate_with_layer (guarded by
//     tests/test_signature.cpp). Keep the floating-point evaluation order
//     in this file in lockstep with core/evaluator.cpp AND with the SoA
//     batch kernels in core/batched_signature.cpp — three views of one
//     evaluation-order contract; a change to any of them must land in all
//     three (the golden matrix + randomized property tests enforce it).
//
// Thread-safety: CostSignature and SystemTiming are immutable after
// construction; any number of threads may share them. The compile phase is
// pure. Cross-sweep sharing lives in search::SignatureCache.

#include <array>
#include <cstdint>
#include <vector>

#include "core/evaluator.hpp"
#include "core/workload.hpp"
#include "hw/system.hpp"
#include "memory/memory_model.hpp"
#include "model/transformer.hpp"
#include "ops/op.hpp"
#include "parallel/layer_builder.hpp"
#include "parallel/parallel_config.hpp"

namespace tfpe::core {

/// Roofline of one op pass split per SUMMA panel: t_sf + max(flop, mem)
/// per panel, attributed to compute or memory by the dominant side. This is
/// the single source of the innermost evaluator arithmetic — core::op_time
/// and the two-phase binder both call it, so they cannot drift apart.
struct PanelRoofline {
  /// panel_roofline assigns only the dominant side, so both fields carry
  /// explicit zero initializers — the non-dominant side must read exactly
  /// Seconds(0), not whatever the storage held (pinned by
  /// tests/test_signature.cpp PanelRooflineZeroInitialized).
  Seconds compute = Seconds(0);  ///< Attributed FLOP-bound time (all panels).
  Seconds memory = Seconds(0);   ///< Attributed memory-bound time (all panels).
  Seconds t_panel = Seconds(0);  ///< One panel (the SUMMA overlap budget).
};

inline PanelRoofline panel_roofline(Flops flops, Bytes bytes,
                                    std::int64_t panels, bool tensor_core,
                                    const hw::GpuSpec& gpu) {
  const FlopsPerSec peak = tensor_core ? gpu.tensor_flops : gpu.vector_flops;
  const Seconds t_sf = tensor_core ? gpu.flops_latency : Seconds(0);
  const double inv_panels = 1.0 / static_cast<double>(panels);
  const Seconds t_flop = flops * inv_panels / peak;
  const Seconds t_mem = bytes * inv_panels / gpu.hbm_bandwidth;
  PanelRoofline out;
  out.t_panel = t_sf + std::max(t_flop, t_mem);
  if (t_flop >= t_mem) {
    out.compute = out.t_panel * static_cast<double>(panels);
  } else {
    out.memory = out.t_panel * static_cast<double>(panels);
  }
  return out;
}

/// One flattened collective request (the signature's comm pool; ops index
/// into it so the request vectors need no per-op allocation at time time).
struct SigComm {
  ops::Collective collective = ops::Collective::None;
  ops::CommGroup group = ops::CommGroup::TP1;
  Bytes bytes;  ///< Full tensor volume (per-panel scaling applied at time).
};

/// Roofline operands of one block op, forward and backward.
struct SigOp {
  Flops fwd_flops;
  Bytes fwd_bytes;
  Flops bwd_flops;
  Bytes bwd_bytes;
  std::int64_t panels = 1;   ///< SUMMA contraction panels (1 = plain op).
  bool tensor_core = false;  ///< Tensor-core vs vector FLOP rate.
  // [begin, begin+count) ranges into CostSignature::comm.
  std::uint32_t fwd_comm_begin = 0;
  std::uint32_t fwd_comm_count = 0;
  std::uint32_t bwd_comm_begin = 0;
  std::uint32_t bwd_comm_count = 0;
};

/// Vocabulary-head op (embedding gather / logits matmul / softmax+xent):
/// compute + HBM only, no collectives, never SUMMA-split.
struct SigHeadOp {
  Flops fwd_flops;
  Bytes fwd_bytes;
  Flops bwd_flops;
  Bytes bwd_bytes;
  bool tensor_core = false;
};

/// Hardware-invariant compilation of one candidate: everything the time
/// phase needs, with no reference back to the op list. Valid for any
/// hw::SystemConfig and any NVS placement of the same (n1, n2, np, nd);
/// also interleave-invariant (the schedule enters only at time time).
/// Depends on EvalOptions (recompute/offload shape the memory breakdown),
/// so cache signatures per (model, global batch, EvalOptions).
struct CostSignature {
  // Identity of the hardware-free slice this was compiled for.
  /// Execution phase of the op tables below. Training signatures carry the
  /// full fwd+bwd+optimizer records exactly as always; inference phases
  /// zero the backward dimension (ops, aggregates, DP/optimizer scalars).
  ExecutionPhase phase = ExecutionPhase::kTraining;
  /// Decode only: single-token queries per pipeline decode group (may be
  /// fractional — a resident batch split across np groups).
  double phase_tokens = 0;
  std::int64_t microbatches = 1;      ///< m (decode: np rotating groups)
  std::int64_t np = 1;                ///< pipeline stages
  std::int64_t layers_per_stage = 1;  ///< depth / np
  std::int64_t local_microbatch = 1;  ///< b / (nd * m)

  std::vector<SigOp> ops;
  std::vector<SigComm> comm;   ///< Flattened fwd+bwd requests of all ops.
  std::vector<SigHeadOp> head; ///< Empty when the model has no vocabulary.
  double head_weight_params = 0;

  Bytes stored_activation_bytes;  ///< Per microbatch per block.
  Bytes pp_boundary_bytes;        ///< Pipeline handoff per microbatch.
  double weight_params = 0;       ///< Per block.
  double stage_params = 0;        ///< weight_params * layers_per_stage.
  bool dp_group_includes_tp2 = false;
  std::int64_t dp_size = 1;  ///< nd (x n2 when the flag is set).
  Bytes dp_grad_bytes;       ///< 2 B/param gradient volume per stage.
  double opt_shard = 1;      ///< Adam shard width (dp_size).
  Bytes optimizer_traffic;   ///< 28 B/param HBM traffic of the Adam update.

  /// Busiest-GPU residency, hardware-free (recompute override, offload
  /// fraction and head-shard adjustments already applied).
  memory::MemoryBreakdown mem;

  // Aggregate totals per op class and comm group — summaries for the
  // invariant analyzer and reports; the per-op records drive the timing.
  Flops matmul_fwd_flops, matmul_bwd_flops;
  Bytes matmul_fwd_bytes, matmul_bwd_bytes;
  Flops vector_fwd_flops, vector_bwd_flops;
  Bytes vector_fwd_bytes, vector_bwd_bytes;
  std::array<Bytes, 4> fwd_comm_volume{};  ///< Indexed by ops::CommGroup.
  std::array<Bytes, 4> bwd_comm_volume{};

  Flops fwd_flops() const { return matmul_fwd_flops + vector_fwd_flops; }
  Flops bwd_flops() const { return matmul_bwd_flops + vector_bwd_flops; }
  Bytes fwd_hbm_bytes() const { return matmul_fwd_bytes + vector_fwd_bytes; }
  Bytes bwd_hbm_bytes() const { return matmul_bwd_bytes + vector_bwd_bytes; }
};

/// Lower a built layer into its signature. `cfg` must satisfy the
/// hardware-free divisibility constraints (np | depth, nd*m | b, ...);
/// the placement fields are ignored. `layer` must match cfg's parallel
/// dims and local microbatch, as for evaluate_with_layer.
CostSignature compile_signature(const model::TransformerConfig& mdl,
                                const parallel::ParallelConfig& cfg,
                                std::int64_t global_batch,
                                const parallel::LayerCost& layer,
                                const EvalOptions& opts = {});

/// Convenience: build the layer, then compile. Debug builds cross-check the
/// op list against the invariant analyzer first (same hook as the
/// single-phase evaluator).
CostSignature compile_signature(const model::TransformerConfig& mdl,
                                const parallel::ParallelConfig& cfg,
                                std::int64_t global_batch,
                                const EvalOptions& opts = {});

/// Phase-generic lowering (core/workload.hpp). The Training workload is a
/// pure adapter over the overload above — bitwise-identical output, pinned
/// by tests/test_workload.cpp. Prefill compiles the training lowering at
/// seq_len = workload.prompt_len and strips the backward dimension
/// (adapt_to_phase below). Decode lowers parallel::build_decode_layer with
/// global_batch resident requests split across cfg.np rotating groups.
CostSignature compile_signature(const model::TransformerConfig& mdl,
                                const parallel::ParallelConfig& cfg,
                                std::int64_t global_batch,
                                const Workload& workload,
                                const EvalOptions& opts = {});

/// Re-emit a training-compiled signature as a forward-only inference
/// phase: backward op records, aggregates and collectives zeroed, the
/// DP-gradient and Adam-traffic scalars dropped, and the memory breakdown
/// rebuilt for inference (no gradient/optimizer state; one microbatch's
/// stored-activation footprint is kept as a conservative transient
/// working-set bound; the K/V term is filled by the serving estimator,
/// which owns the residency decision).
CostSignature adapt_to_phase(CostSignature sig, ExecutionPhase phase);

/// Decode lowering: `tokens_per_group` single-token queries against a
/// `kv_len`-token cache per decode group, cfg.np groups rotating around
/// the stages (cfg must be 1D tensor parallel; only n1/np are read).
CostSignature compile_decode_signature(const model::TransformerConfig& mdl,
                                       const parallel::ParallelConfig& cfg,
                                       double tokens_per_group, double kv_len);

/// Placement-independent part of timing a signature on one system: the
/// roofline dot products over the op records. Amortizes across the NVS
/// placement scan — per placement only the collective terms remain.
struct SystemTiming {
  double time_compute = 0;  ///< TimeBreakdown::compute, all microbatches.
  double time_memory = 0;   ///< TimeBreakdown::memory.
  double optimizer = 0;     ///< TimeBreakdown::optimizer.
  /// The system's resolved fabric, captured once per bind so the placement
  /// scan walks it without re-deriving the topology per candidate.
  hw::Topology fabric;
  Seconds fwd_cm;           ///< Per-microbatch per-block compute+memory.
  Seconds bwd_cm;
  Seconds head_fwd_cm;      ///< Head compute+memory per microbatch.
  Seconds head_bwd_cm;
  /// (fwd t_panel, bwd t_panel) for each SUMMA op, in op order — the
  /// overlap budget of the panel broadcasts (empty for non-SUMMA layers).
  std::vector<std::array<Seconds, 2>> summa_panel_time;
};

SystemTiming bind_system(const CostSignature& sig, const hw::SystemConfig& sys,
                         const EvalOptions& opts = {});

/// Placement-dependent timing terms: the full TimeBreakdown (base fields
/// copied through, collective/pipeline/DP terms computed for cfg's NVS
/// placement) plus the per-microbatch stage times. This is the inner body
/// of time_signature without validity checks or EvalResult packaging — the
/// placement scan calls it directly, so every statement must stay in FP
/// lockstep with evaluate_with_layer.
struct PlacementTiming {
  TimeBreakdown time;
  Seconds t_fwd_stage;
  Seconds t_bwd_stage;
};

PlacementTiming time_placement(const CostSignature& sig,
                               const SystemTiming& base,
                               const hw::SystemConfig& sys,
                               const parallel::ParallelConfig& cfg,
                               const EvalOptions& opts = {});

/// Time a compiled signature for one concrete placement, reusing the bound
/// system partial. Bitwise-identical to evaluate_with_layer on the layer
/// the signature was compiled from (same mdl/cfg/batch/opts).
EvalResult time_signature(const CostSignature& sig, const SystemTiming& base,
                          const model::TransformerConfig& mdl,
                          const hw::SystemConfig& sys,
                          const parallel::ParallelConfig& cfg,
                          std::int64_t global_batch,
                          const EvalOptions& opts = {});

/// One-shot convenience: bind + time.
EvalResult time_signature(const CostSignature& sig,
                          const model::TransformerConfig& mdl,
                          const hw::SystemConfig& sys,
                          const parallel::ParallelConfig& cfg,
                          std::int64_t global_batch,
                          const EvalOptions& opts = {});

/// Forward-only per-stage time of one microbatch / decode group — the
/// timing primitive of the inference phases. Reads ONLY the forward terms
/// of `base` (fwd_cm, head_fwd_cm, summa panel budgets, fabric): the bound
/// backward terms of a zeroed signature carry a spurious per-op
/// FLOPs-latency t_sf (panel_roofline attributes t_sf even at zero
/// operands), so phase timing never consumes them. time_placement — and
/// the training lowering it times — is untouched by the phase refactor.
struct PhaseTiming {
  Seconds t_stage;  ///< layers_per_stage x (fwd_cm + exposed comm) + head.
  Seconds comm;     ///< Exposed forward collective time per stage.
};

PhaseTiming time_phase(const CostSignature& sig, const SystemTiming& base,
                       const parallel::ParallelConfig& cfg,
                       const EvalOptions& opts = {});

}  // namespace tfpe::core
