#pragma once
// End-to-end training-time estimates (paper §III-B / Fig. 5):
// GPT3-1T is pre-trained on 1T tokens; the ViT trains for 80 epochs on
// 40 years of hourly ERA5 data. Both use a global batch of 4096 samples.

#include <cstdint>

#include "core/estimate.hpp"
#include "hw/system.hpp"
#include "model/transformer.hpp"

namespace tfpe::core {

/// Training is a RunLength whose unit is the optimizer step (the shared
/// run-length math lives in core/estimate.hpp, next to the serving
/// estimator's use of it).
using TrainingEstimate = RunLength;

/// Token-budget training (LLM pre-training): steps = tokens / (b * l).
TrainingEstimate estimate_token_training(const model::TransformerConfig& mdl,
                                         std::int64_t global_batch,
                                         double iteration_seconds,
                                         double total_tokens);

/// Sample-budget training (epochs over a dataset): steps = samples / b.
TrainingEstimate estimate_sample_training(std::int64_t global_batch,
                                          double iteration_seconds,
                                          double total_samples);

/// The paper's training budgets.
inline constexpr double kGpt3PretrainTokens = 1e12;
/// 40 years x 365 days x 24 hourly samples x 80 epochs.
inline constexpr double kEra5TrainingSamples = 40.0 * 365.0 * 24.0 * 80.0;

/// Accelerator budget and energy of a training run (the cost framing of the
/// paper's introduction: "trained at large supercomputers at significant
/// cost").
struct CostEstimate {
  double gpu_hours = 0;
  double energy_mwh = 0;  ///< GPU board power x PUE over the run.
  double cost_usd = 0;    ///< gpu_hours x hourly rate (0 if rate is 0).
};

/// `pue` is the facility power-usage-effectiveness multiplier;
/// `usd_per_gpu_hour` of 0 skips the dollar estimate.
CostEstimate estimate_cost(const hw::SystemConfig& sys, std::int64_t n_gpus,
                           double total_seconds, double pue = 1.3,
                           double usd_per_gpu_hour = 0.0);

}  // namespace tfpe::core
