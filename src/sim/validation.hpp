#pragma once
// Model-vs-simulation validation (substitute for the paper's §IV "Empirical
// Validation" on Perlmutter and Fig. A1 NCCL tests).
//
// The analytic evaluator's closed-form collective and pipeline expressions
// are checked against an independent discrete-event execution of the same
// communication schedule (ring_sim) and pipeline schedule (pipeline_sim).
// The figure of merit matches the paper's: percentage error in iteration
// time and consistency of the performance ordering across configurations.

#include <string>

#include "core/cost_signature.hpp"
#include "core/evaluator.hpp"
#include "sim/pipeline_sim.hpp"

namespace tfpe::sim {

struct ValidationPoint {
  std::string label;
  double analytic_seconds = 0;
  double simulated_seconds = 0;

  double pct_error() const {
    if (simulated_seconds == 0) return 0;
    return 100.0 * (analytic_seconds - simulated_seconds) / simulated_seconds;
  }
  double abs_pct_error() const {
    const double e = pct_error();
    return e < 0 ? -e : e;
  }
};

/// Compare the analytic collective-time model against the ring simulator
/// for one collective of `bytes` over `g` GPUs placed `nvs` per node.
ValidationPoint validate_collective(const hw::NetworkSpec& net,
                                    ops::Collective coll, Bytes bytes,
                                    std::int64_t g, std::int64_t nvs,
                                    std::string label);

/// Compare the analytic iteration time of a configuration against a
/// discrete-event execution (ring collectives + 1F1B pipeline schedule).
/// The configuration must be feasible.
ValidationPoint validate_iteration(const model::TransformerConfig& mdl,
                                   const hw::SystemConfig& sys,
                                   const parallel::ParallelConfig& cfg,
                                   std::int64_t global_batch,
                                   std::string label);

/// Derive the discrete-event pipeline simulator's inputs from a compiled
/// cost signature: per-microbatch stage times via the two-phase bind/time
/// path (so they match the analytic evaluator bitwise) and the analytic
/// point-to-point boundary transfer for one handoff message. Lets sweeps
/// replay a candidate through simulate_pipeline without rebuilding its op
/// list. `cfg` must carry the placement the signature should be timed at.
PipelineParams pipeline_params_from_signature(
    const hw::SystemConfig& sys, const parallel::ParallelConfig& cfg,
    const core::CostSignature& sig, const core::EvalOptions& opts = {});

}  // namespace tfpe::sim
