#pragma once
// Execution of the 1F1B non-interleaved pipeline schedule, task by task.
//
// Validates the analytic iteration-time expression
//   (m + np - 1)(tf + tb) + P2P
// by actually running the schedule: each stage executes its 1F1B task list
// (warmup forwards, steady one-forward-one-backward, drain backwards)
// respecting cross-stage activation/gradient dependencies with a P2P
// transfer delay on each boundary.

#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace tfpe::sim {

struct PipelineParams {
  std::int64_t stages = 1;        ///< np
  std::int64_t microbatches = 1;  ///< m
  Seconds t_fwd;                  ///< Per-microbatch forward time per stage.
  Seconds t_bwd;                  ///< Per-microbatch backward time per stage.
  Seconds t_p2p;                  ///< Boundary transfer time per message.
};

/// One executed task in the simulated schedule.
struct PipelineTask {
  std::int64_t stage = 0;
  std::int64_t microbatch = 0;
  bool backward = false;
  double start = 0;
  double end = 0;
};

struct PipelineTrace {
  double completion_time = 0;
  /// Idle (bubble) time accumulated on stage 0 (the reference stage for the
  /// paper's bubble formula).
  double stage0_idle = 0;
  /// Every executed task with its simulated start/end times, in execution
  /// order per stage (consumed by the Chrome-trace exporter).
  std::vector<PipelineTask> tasks;
};

/// Build stage `s`'s 1F1B task order: pairs of (is_backward, microbatch).
std::vector<std::pair<bool, std::int64_t>> schedule_1f1b(std::int64_t stages,
                                                         std::int64_t stage,
                                                         std::int64_t m);

/// Run the schedule and return the completion time.
PipelineTrace simulate_pipeline(const PipelineParams& params);

}  // namespace tfpe::sim
