#pragma once
// Chrome-trace (chrome://tracing / Perfetto) export of a simulated pipeline
// schedule: one track per pipeline stage, "F<j>" / "B<j>" duration events.
// Lets users see the warmup / 1F1B-steady / drain phases and the bubble
// visually for any configuration.

#include <ostream>
#include <string>

#include "sim/pipeline_sim.hpp"

namespace tfpe::sim {

/// Serialize the trace in Chrome trace-event JSON (array format).
/// Times are emitted in microseconds, as the format requires.
void write_chrome_trace(std::ostream& os, const PipelineTrace& trace);

/// Convenience: write to a file. Throws std::runtime_error when the file
/// cannot be opened.
void write_chrome_trace_file(const std::string& path,
                             const PipelineTrace& trace);

}  // namespace tfpe::sim
