#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace tfpe::sim {

void EventQueue::schedule(double time, Handler fn) {
  if (time < now_) throw std::invalid_argument("EventQueue: time in the past");
  queue_.push(Event{time, seq_++, std::move(fn)});
}

void EventQueue::schedule_after(double delay, Handler fn) {
  schedule(now_ + delay, std::move(fn));
}

double EventQueue::run() {
  double last = 0;
  while (!queue_.empty()) {
    // Move the handler out before popping so re-entrant schedule() calls in
    // the handler see a consistent queue.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    last = ev.time;
    ++processed_;
    ev.fn();
  }
  return last;
}

}  // namespace tfpe::sim
