#include "sim/trace_export.hpp"

#include <fstream>
#include <stdexcept>

namespace tfpe::sim {

void write_chrome_trace(std::ostream& os, const PipelineTrace& trace) {
  os << "[\n";
  bool first = true;
  for (const auto& t : trace.tasks) {
    if (!first) os << ",\n";
    first = false;
    const double us = 1e6;
    os << R"(  {"name": ")" << (t.backward ? "B" : "F") << t.microbatch
       << R"(", "cat": ")" << (t.backward ? "backward" : "forward")
       << R"(", "ph": "X", "ts": )" << t.start * us << R"(, "dur": )"
       << (t.end - t.start) * us << R"(, "pid": 0, "tid": )" << t.stage
       << "}";
  }
  os << "\n]\n";
}

void write_chrome_trace_file(const std::string& path,
                             const PipelineTrace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_chrome_trace_file: cannot open " + path);
  write_chrome_trace(out, trace);
}

}  // namespace tfpe::sim
