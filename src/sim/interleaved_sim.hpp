#pragma once
// Discrete-event execution of the INTERLEAVED 1F1B schedule (Narayanan et
// al., Megatron SC'21), used to validate the analytic claim that v virtual
// chunks per GPU divide the pipeline bubble by v.
//
// The model is a virtual pipeline of np*v stages; virtual stage s lives on
// GPU s mod np and holds chunk s / np. Each GPU executes its Megatron task
// order (chunk-cycled warmup forwards, steady one-forward-one-backward,
// drain backwards) under cross-virtual-stage dependencies with P2P delays.

#include <cstdint>
#include <vector>

#include "sim/pipeline_sim.hpp"

namespace tfpe::sim {

struct InterleavedParams {
  std::int64_t stages = 1;        ///< np (physical GPUs in the pipeline)
  std::int64_t chunks = 1;        ///< v (virtual chunks per GPU)
  std::int64_t microbatches = 1;  ///< m, must be a multiple of np for v > 1
  double t_fwd_chunk = 0;  ///< Forward time of ONE chunk of one microbatch.
  double t_bwd_chunk = 0;
  double t_p2p = 0;
};

/// Run the interleaved schedule; for chunks == 1 this reduces to the plain
/// 1F1B simulation. Returns completion time and the stage-0 idle time.
/// Throws std::invalid_argument on malformed parameters.
PipelineTrace simulate_interleaved_pipeline(const InterleavedParams& params);

}  // namespace tfpe::sim
