#pragma once
// Minimal discrete-event simulation engine: a time-ordered event queue with
// deterministic FIFO tie-breaking. Used by the ring-collective simulator.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace tfpe::sim {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedule `fn` at absolute time `time` (must be >= now()).
  void schedule(double time, Handler fn);

  /// Schedule `fn` `delay` seconds from now.
  void schedule_after(double delay, Handler fn);

  /// Process events in time order until the queue drains. Returns the time
  /// of the last processed event (0 when no event ran).
  double run();

  double now() const { return now_; }
  std::size_t processed() const { return processed_; }
  bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t processed_ = 0;
};

}  // namespace tfpe::sim
