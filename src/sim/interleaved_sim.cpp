#include "sim/interleaved_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace tfpe::sim {

namespace {

constexpr std::size_t uz(std::int64_t v) { return static_cast<std::size_t>(v); }

/// Megatron's forward execution order on every rank: microbatches advance
/// in groups of np, cycling through the v chunks group by group. The k-th
/// forward (k in [0, m*v)) touches:
///   group = k / np, chunk = group % v, micro = (group / v) * np + k % np.
struct TaskRef {
  std::int64_t chunk;
  std::int64_t micro;
};

TaskRef forward_order(std::int64_t k, std::int64_t np, std::int64_t v) {
  const std::int64_t group = k / np;
  return {group % v, (group / v) * np + (k % np)};
}

TaskRef backward_order(std::int64_t k, std::int64_t np, std::int64_t v) {
  const std::int64_t group = k / np;
  return {v - 1 - (group % v), (group / v) * np + (k % np)};
}

}  // namespace

PipelineTrace simulate_interleaved_pipeline(const InterleavedParams& p) {
  const std::int64_t np = p.stages, v = p.chunks, m = p.microbatches;
  if (np < 1 || v < 1 || m < 1) {
    throw std::invalid_argument("simulate_interleaved_pipeline: bad params");
  }
  if (v == 1) {
    return simulate_pipeline({np, m, Seconds(p.t_fwd_chunk),
                              Seconds(p.t_bwd_chunk), Seconds(p.t_p2p)});
  }
  if (m % np != 0) {
    throw std::invalid_argument(
        "simulate_interleaved_pipeline: m must be a multiple of np for v > 1");
  }

  const std::int64_t total = m * v;  // chunk-tasks per rank per direction
  const std::int64_t vstages = np * v;
  constexpr double kNotDone = -1.0;
  // Completion times indexed by [virtual stage][microbatch].
  std::vector<std::vector<double>> fwd_done(
      uz(vstages), std::vector<double>(uz(m), kNotDone));
  std::vector<std::vector<double>> bwd_done(
      uz(vstages), std::vector<double>(uz(m), kNotDone));

  // Per-rank Megatron task order.
  struct Task {
    bool backward;
    std::int64_t chunk;
    std::int64_t micro;
  };
  std::vector<std::vector<Task>> tasks(uz(np));
  for (std::int64_t r = 0; r < np; ++r) {
    const std::int64_t warmup =
        std::min(total, (np - r - 1) * 2 + (v - 1) * np);
    auto& list = tasks[uz(r)];
    list.reserve(static_cast<std::size_t>(2 * total));
    for (std::int64_t k = 0; k < warmup; ++k) {
      const TaskRef f = forward_order(k, np, v);
      list.push_back({false, f.chunk, f.micro});
    }
    for (std::int64_t k = warmup; k < total; ++k) {
      // Steady 1F1B: forward first, then the matching backward (Megatron's
      // interleaved schedule ordering).
      const TaskRef f = forward_order(k, np, v);
      list.push_back({false, f.chunk, f.micro});
      const TaskRef b = backward_order(k - warmup, np, v);
      list.push_back({true, b.chunk, b.micro});
    }
    for (std::int64_t k = total - warmup; k < total; ++k) {
      const TaskRef b = backward_order(k, np, v);
      list.push_back({true, b.chunk, b.micro});
    }
  }

  std::vector<std::size_t> next_task(uz(np), 0);
  std::vector<double> clock(uz(np), 0.0);
  double rank0_busy = 0;
  std::size_t remaining = 0;
  for (const auto& t : tasks) remaining += t.size();

  PipelineTrace trace;
  trace.tasks.reserve(remaining);

  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t r = 0; r < uz(np); ++r) {
      while (next_task[r] < tasks[r].size()) {
        const Task& t = tasks[r][next_task[r]];
        const std::size_t s =
            uz(t.chunk) * uz(np) + r;  // virtual stage
        double ready;
        double duration;
        if (!t.backward) {
          if (s == 0) {
            ready = 0.0;
          } else {
            const double dep = fwd_done[s - 1][uz(t.micro)];
            if (dep == kNotDone) break;
            ready = dep + p.t_p2p;
          }
          duration = p.t_fwd_chunk;
        } else {
          if (s == uz(vstages) - 1) {
            const double dep = fwd_done[s][uz(t.micro)];
            if (dep == kNotDone) break;
            ready = dep;
          } else {
            const double dep = bwd_done[s + 1][uz(t.micro)];
            if (dep == kNotDone) break;
            ready = dep + p.t_p2p;
          }
          duration = p.t_bwd_chunk;
        }
        const double start = std::max(ready, clock[r]);
        const double finish = start + duration;
        clock[r] = finish;
        if (r == 0) rank0_busy += duration;
        (t.backward ? bwd_done : fwd_done)[s][uz(t.micro)] = finish;
        trace.tasks.push_back({static_cast<std::int64_t>(r), t.micro,
                               t.backward, start, finish});
        ++next_task[r];
        --remaining;
        progressed = true;
      }
    }
    if (!progressed) {
      throw std::logic_error("simulate_interleaved_pipeline: deadlocked");
    }
  }

  for (std::size_t r = 0; r < uz(np); ++r) {
    trace.completion_time = std::max(trace.completion_time, clock[r]);
  }
  trace.stage0_idle = trace.completion_time - rank0_busy;
  return trace;
}

}  // namespace tfpe::sim
