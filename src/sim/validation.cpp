#include "sim/validation.hpp"

#include <algorithm>
#include <stdexcept>

#include "comm/collective_algorithm.hpp"
#include "comm/collective_model.hpp"
#include "parallel/layer_builder.hpp"
#include "pipeline/pipeline_model.hpp"
#include "sim/pipeline_sim.hpp"
#include "sim/ring_sim.hpp"

namespace tfpe::sim {

namespace {

std::pair<std::int64_t, std::int64_t> group_of(
    const parallel::ParallelConfig& cfg, ops::CommGroup group) {
  switch (group) {
    case ops::CommGroup::TP1: return {cfg.n1, cfg.nvs1};
    case ops::CommGroup::TP2: return {cfg.n2, cfg.nvs2};
    case ops::CommGroup::DP: return {cfg.nd, cfg.nvsd};
    case ops::CommGroup::PP: return {cfg.np, cfg.nvsp};
  }
  return {1, 1};
}

/// Exposed communication time of one op via the discrete-event ring
/// simulator, mirroring the evaluator's SUMMA prologue/overlap treatment.
Seconds op_comm_sim(const ops::Op& op, bool backward,
                    const hw::SystemConfig& sys,
                    const parallel::ParallelConfig& cfg, Seconds t_panel_comp) {
  const auto& reqs = backward ? op.bwd_comm : op.fwd_comm;
  if (reqs.empty()) return Seconds(0);
  const std::int64_t panels = std::max<std::int64_t>(1, op.summa_panels);
  Seconds t_panel_comm;
  for (const auto& req : reqs) {
    const auto [g, nvs] = group_of(cfg, req.group);
    t_panel_comm += simulate_collective(
        sys.net, req.collective, req.bytes / static_cast<double>(panels), g, nvs);
  }
  if (panels == 1) return t_panel_comm;
  return t_panel_comm + std::max(Seconds(0), t_panel_comm - t_panel_comp) *
                            static_cast<double>(panels - 1);
}

}  // namespace

ValidationPoint validate_collective(const hw::NetworkSpec& net,
                                    ops::Collective coll, Bytes bytes,
                                    std::int64_t g, std::int64_t nvs,
                                    std::string label) {
  ValidationPoint point;
  point.label = std::move(label);
  point.analytic_seconds =
      comm::collective_time(net, coll, bytes, {.size = g, .nvs = nvs}).value();
  point.simulated_seconds = simulate_collective(net, coll, bytes, g, nvs).value();
  return point;
}

ValidationPoint validate_iteration(const model::TransformerConfig& mdl,
                                   const hw::SystemConfig& sys,
                                   const parallel::ParallelConfig& cfg,
                                   std::int64_t global_batch,
                                   std::string label) {
  const core::EvalResult analytic = core::evaluate(mdl, sys, cfg, global_batch);
  if (!analytic.feasible) {
    throw std::invalid_argument("validate_iteration: infeasible config: " +
                                analytic.reason);
  }

  const parallel::LayerCost layer =
      parallel::build_layer(mdl, cfg, cfg.local_microbatch(global_batch));
  const double layers = static_cast<double>(mdl.depth / cfg.np);

  // Per-microbatch per-stage times: analytic roofline for compute (the
  // validation targets the schedule and communication, as in the paper),
  // simulated ring collectives for TP communication.
  Seconds fwd, bwd;
  for (const auto& op : layer.ops) {
    const core::OpTime f = core::op_time(op, false, sys, cfg);
    const core::OpTime b = core::op_time(op, true, sys, cfg);
    const Seconds f_comp = f.compute + f.memory;
    const Seconds b_comp = b.compute + b.memory;
    const std::int64_t panels = std::max<std::int64_t>(1, op.summa_panels);
    fwd += f_comp + op_comm_sim(op, false, sys, cfg,
                                f_comp / static_cast<double>(panels));
    bwd += b_comp + op_comm_sim(op, true, sys, cfg,
                                b_comp / static_cast<double>(panels));
  }
  const Seconds t_fwd = fwd * layers;
  const Seconds t_bwd = bwd * layers;

  Seconds t_p2p;
  if (cfg.np > 1) {
    t_p2p = simulate_collective(sys.net, ops::Collective::PointToPoint,
                                layer.pp_boundary_bytes, 2,
                                cfg.nvsp > 1 ? 2 : 1);
  }
  const PipelineTrace trace = simulate_pipeline(
      {cfg.np, cfg.microbatches, t_fwd, t_bwd, t_p2p});

  // DP exposure with simulated collectives.
  Seconds dp_exposed;
  std::int64_t dp_size = cfg.nd, dp_nvs = cfg.nvsd;
  if (layer.dp_group_includes_tp2) {
    dp_size *= cfg.n2;
    dp_nvs *= cfg.nvs2;
  }
  const double stage_params = layer.weight_params * layers;
  if (dp_size > 1) {
    const Bytes grad_bytes = Bytes(2.0 * stage_params);
    const Seconds t_rs = simulate_collective(
        sys.net, ops::Collective::ReduceScatter, grad_bytes, dp_size, dp_nvs);
    const Seconds t_ag = simulate_collective(
        sys.net, ops::Collective::AllGather, grad_bytes, dp_size, dp_nvs);
    dp_exposed = std::max(Seconds(0), t_rs - t_bwd) +
                 std::max(Seconds(0), t_ag - t_fwd);
  }

  ValidationPoint point;
  point.label = std::move(label);
  point.analytic_seconds = analytic.iteration();
  point.simulated_seconds =
      trace.completion_time + dp_exposed.value() + analytic.time.optimizer;
  return point;
}

PipelineParams pipeline_params_from_signature(
    const hw::SystemConfig& sys, const parallel::ParallelConfig& cfg,
    const core::CostSignature& sig, const core::EvalOptions& opts) {
  const core::SystemTiming base = core::bind_system(sig, sys, opts);
  const core::PlacementTiming pt =
      core::time_placement(sig, base, sys, cfg, opts);
  PipelineParams params;
  params.stages = sig.np;
  params.microbatches = sig.microbatches;
  params.t_fwd = pt.t_fwd_stage;
  params.t_bwd = pt.t_bwd_stage;
  if (sig.np > 1) {
    // Same fabric the evaluator's pipeline term walks, so signature-driven
    // pipeline simulation stays in lockstep with time_placement.
    params.t_p2p = comm::collective_time(
        sys.resolved_fabric(), ops::Collective::PointToPoint,
        sig.pp_boundary_bytes, {.size = 2, .nvs = cfg.nvsp > 1 ? 2 : 1});
  }
  return params;
}

}  // namespace tfpe::sim
