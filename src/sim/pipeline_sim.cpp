#include "sim/pipeline_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace tfpe::sim {

namespace {
constexpr std::size_t uz(std::int64_t v) { return static_cast<std::size_t>(v); }
}  // namespace

std::vector<std::pair<bool, std::int64_t>> schedule_1f1b(std::int64_t stages,
                                                         std::int64_t stage,
                                                         std::int64_t m) {
  // Warmup depth shrinks toward the last stage so the steady phase strictly
  // alternates 1F1B (Narayanan et al., SC'21).
  const std::int64_t warmup = std::min(m, stages - stage);
  std::vector<std::pair<bool, std::int64_t>> tasks;
  tasks.reserve(static_cast<std::size_t>(2 * m));
  for (std::int64_t j = 0; j < warmup; ++j) tasks.emplace_back(false, j);
  for (std::int64_t j = warmup; j < m; ++j) {
    tasks.emplace_back(true, j - warmup);
    tasks.emplace_back(false, j);
  }
  for (std::int64_t j = m - warmup; j < m; ++j) tasks.emplace_back(true, j);
  return tasks;
}

PipelineTrace simulate_pipeline(const PipelineParams& params) {
  const std::int64_t np = params.stages;
  const std::int64_t m = params.microbatches;
  if (np < 1 || m < 1) {
    throw std::invalid_argument("simulate_pipeline: stages and m must be >= 1");
  }

  constexpr double kNotDone = -1.0;
  // fwd_done[s][j] / bwd_done[s][j]: completion time of microbatch j's
  // forward/backward on stage s.
  std::vector<std::vector<double>> fwd_done(
      uz(np), std::vector<double>(uz(m), kNotDone));
  std::vector<std::vector<double>> bwd_done(
      uz(np), std::vector<double>(uz(m), kNotDone));

  std::vector<std::vector<std::pair<bool, std::int64_t>>> tasks(uz(np));
  std::vector<std::size_t> next_task(uz(np), 0);
  std::vector<double> stage_clock(uz(np), 0.0);
  for (std::int64_t s = 0; s < np; ++s) {
    tasks[uz(s)] = schedule_1f1b(np, s, m);
  }

  double stage0_busy = 0;
  std::size_t remaining = 0;
  for (const auto& t : tasks) remaining += t.size();

  PipelineTrace trace;
  trace.tasks.reserve(remaining);

  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t s = 0; s < uz(np); ++s) {
      while (next_task[s] < tasks[s].size()) {
        const auto [is_bwd, j64] = tasks[s][next_task[s]];
        const std::size_t j = uz(j64);
        double ready;
        double duration;
        if (!is_bwd) {
          if (s == 0) {
            ready = 0.0;
          } else {
            if (fwd_done[s - 1][j] == kNotDone) break;
            ready = fwd_done[s - 1][j] + params.t_p2p.value();
          }
          duration = params.t_fwd.value();
        } else {
          if (s == uz(np) - 1) {
            if (fwd_done[s][j] == kNotDone) break;
            ready = fwd_done[s][j];
          } else {
            if (bwd_done[s + 1][j] == kNotDone) break;
            ready = bwd_done[s + 1][j] + params.t_p2p.value();
          }
          duration = params.t_bwd.value();
        }
        const double start = std::max(ready, stage_clock[s]);
        const double finish = start + duration;
        stage_clock[s] = finish;
        if (s == 0) stage0_busy += duration;
        trace.tasks.push_back(
            {static_cast<std::int64_t>(s), j64, is_bwd, start, finish});
        if (!is_bwd) {
          fwd_done[s][j] = finish;
        } else {
          bwd_done[s][j] = finish;
        }
        ++next_task[s];
        --remaining;
        progressed = true;
      }
    }
    if (!progressed) {
      throw std::logic_error("simulate_pipeline: schedule deadlocked");
    }
  }

  for (std::size_t s = 0; s < uz(np); ++s) {
    trace.completion_time = std::max(trace.completion_time, stage_clock[s]);
  }
  trace.stage0_idle = trace.completion_time - stage0_busy;
  return trace;
}

}  // namespace tfpe::sim
