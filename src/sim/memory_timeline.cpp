#include "sim/memory_timeline.hpp"

#include <algorithm>
#include <stdexcept>

namespace tfpe::sim {

std::vector<StageMemoryProfile> activation_timeline(const PipelineTrace& trace,
                                                    std::int64_t stages) {
  if (stages < 1) {
    throw std::invalid_argument("activation_timeline: stages must be >= 1");
  }
  // Events per stage: +1 at forward start, -1 at backward end.
  struct Event {
    double time;
    int delta;
  };
  std::vector<std::vector<Event>> events(static_cast<std::size_t>(stages));
  for (const auto& t : trace.tasks) {
    if (t.stage < 0 || t.stage >= stages) {
      throw std::invalid_argument("activation_timeline: stage out of range");
    }
    auto& stage_events = events[static_cast<std::size_t>(t.stage)];
    if (t.backward) {
      stage_events.push_back({t.end, -1});
    } else {
      stage_events.push_back({t.start, +1});
    }
  }

  std::vector<StageMemoryProfile> profiles(static_cast<std::size_t>(stages));
  for (std::int64_t s = 0; s < stages; ++s) {
    auto& ev = events[static_cast<std::size_t>(s)];
    // Releases before acquisitions at equal times (backward frees first).
    std::sort(ev.begin(), ev.end(), [](const Event& a, const Event& b) {
      if (a.time != b.time) return a.time < b.time;
      return a.delta < b.delta;
    });
    std::int64_t level = 0;
    StageMemoryProfile& p = profiles[static_cast<std::size_t>(s)];
    p.stage = s;
    for (const Event& e : ev) {
      level += e.delta;
      if (level > p.high_water_microbatches) {
        p.high_water_microbatches = level;
        p.peak_time = e.time;
      }
    }
    if (level != 0) {
      throw std::logic_error("activation_timeline: unbalanced schedule");
    }
  }
  return profiles;
}

std::int64_t peak_in_flight(const PipelineTrace& trace, std::int64_t stages) {
  std::int64_t peak = 0;
  for (const auto& p : activation_timeline(trace, stages)) {
    peak = std::max(peak, p.high_water_microbatches);
  }
  return peak;
}

}  // namespace tfpe::sim
