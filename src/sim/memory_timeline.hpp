#pragma once
// Activation-residency timeline: replay a simulated pipeline schedule and
// track how many microbatches' activations are simultaneously resident on
// each stage. Validates the memory model's 1F1B assumption — stage s keeps
// min(m, np - s) microbatches in flight, with stage 0 the busiest — by
// execution rather than by formula.

#include <cstdint>
#include <vector>

#include "sim/pipeline_sim.hpp"

namespace tfpe::sim {

struct StageMemoryProfile {
  std::int64_t stage = 0;
  std::int64_t high_water_microbatches = 0;  ///< Peak simultaneous residency.
  double peak_time = 0;  ///< When the peak was first reached.
};

/// Replay the trace: a microbatch's activations become resident on a stage
/// when its forward starts there and are released when its backward
/// finishes there. Returns one profile per stage, ordered by stage.
std::vector<StageMemoryProfile> activation_timeline(const PipelineTrace& trace,
                                                    std::int64_t stages);

/// The busiest stage's high-water mark (what the HBM model must cover).
std::int64_t peak_in_flight(const PipelineTrace& trace, std::int64_t stages);

}  // namespace tfpe::sim
