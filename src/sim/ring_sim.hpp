#pragma once
// Discrete-event simulation of ring collectives on a two-level topology.
//
// This is the repo's substitute for the paper's NCCL-tests measurements on
// Perlmutter (Fig. A1): instead of running on hardware, collectives are
// executed message-by-message on a simulated ring whose links are either
// fast (intra fast-domain) or slow (inter-node), with NCCL-style multi-rail
// rings. The analytic collective model is validated against these runs.
//
// AllGather: g data blocks of V/g bytes each start on their home GPU and
// travel g-1 hops; each link is a FIFO resource with per-message time
// alpha + bytes/bw. Messages are sliced to expose pipelining. With R rails,
// R independent rings each carry V/R (fast links share NVS bandwidth, each
// rail has its own NIC).

#include <cstdint>
#include <vector>

#include "comm/collective_algorithm.hpp"
#include "hw/network.hpp"
#include "hw/topology.hpp"
#include "ops/op.hpp"

namespace tfpe::sim {

struct RingLink {
  Seconds alpha;         ///< Per-message latency.
  BytesPerSec bandwidth;
};

/// Ring of g GPUs; links[i] connects GPU i -> (i+1) mod g.
struct RingTopology {
  std::vector<RingLink> links;

  std::int64_t size() const { return static_cast<std::int64_t>(links.size()); }

  /// Two-level ring: GPUs grouped in fast domains of `nvs` consecutive
  /// members; domain-internal links are (alpha_f, bw_f), domain-crossing
  /// links (alpha_s, bw_s). `nvs` must divide g.
  static RingTopology two_level(std::int64_t g, std::int64_t nvs,
                                Seconds alpha_f, BytesPerSec bw_f,
                                Seconds alpha_s, BytesPerSec bw_s);

  /// Multi-tier ring over an arbitrary-depth fabric: the hop i -> i+1 is
  /// charged to the outermost level whose block (the placement occupancy
  /// below it) ends at member i — the generalization of two_level's
  /// domain-boundary rule. `rails` is the ring's NVS bandwidth share
  /// (level-0 links divide by it; outer levels own a NIC rail each).
  static RingTopology hierarchical(const hw::Topology& topo,
                                   const comm::TopoPlacement& p,
                                   double rails = 1.0);
};

/// Simulate an AllGather of a `total_bytes` tensor on the ring, slicing each
/// block into `slices` messages. Returns completion time (all GPUs hold the
/// full tensor).
Seconds simulate_allgather(const RingTopology& ring, Bytes total_bytes,
                           int slices = 4);

/// Multi-rail wrapper mirroring the analytic model's assumptions: a group of
/// `g` GPUs placed `nvs` per node, driving `nvs` NIC rails. Supports
/// AllGather, ReduceScatter (time-symmetric), AllReduce (RS + AG) and
/// Broadcast/Reduce (one ring pass). Returns completion time for the full
/// tensor of `bytes`.
Seconds simulate_collective(const hw::NetworkSpec& net, ops::Collective coll,
                            Bytes bytes, std::int64_t g, std::int64_t nvs,
                            int slices = 4);

/// Same against a resolved fabric: NCCL-style multi-rail flat rings on the
/// hierarchical ring topology. For the canonical two-level fabric this is
/// the same simulation as the NetworkSpec overload; deeper fabrics add the
/// extra boundary tiers. Cross-validates comm::collective_time (Fig. A1).
Seconds simulate_collective(const hw::Topology& topo, ops::Collective coll,
                            Bytes bytes, const comm::TopoPlacement& p,
                            int slices = 4);

/// Discrete-event execution of the hierarchical two-phase schedule
/// (comm::hierarchical_time): one uniform ring per crossed level, each phase
/// moving the shard the analytic model prescribes; AllReduce runs the
/// mirrored RS + AG sequence (2x). Supports AllGather, ReduceScatter and
/// AllReduce only.
Seconds simulate_hierarchical(const hw::Topology& topo, ops::Collective coll,
                              Bytes bytes, const comm::TopoPlacement& p,
                              int slices = 4);

/// Discrete-event execution of a binary-tree AllReduce: slices flow
/// leaf-to-root (reduce) and back (broadcast) over FIFO edges; edges
/// crossing a fast-domain boundary use the slow network. Validates the
/// analytic tree_time model.
Seconds simulate_tree_allreduce(const hw::NetworkSpec& net, Bytes bytes,
                                std::int64_t g, std::int64_t nvs,
                                int slices = 8);

}  // namespace tfpe::sim
