#include "sim/ring_sim.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "sim/event_queue.hpp"

namespace tfpe::sim {

namespace {
constexpr std::size_t uz(std::int64_t v) { return static_cast<std::size_t>(v); }
}  // namespace

RingTopology RingTopology::two_level(std::int64_t g, std::int64_t nvs,
                                     Seconds alpha_f, BytesPerSec bw_f,
                                     Seconds alpha_s, BytesPerSec bw_s) {
  if (g < 1) throw std::invalid_argument("two_level: g must be >= 1");
  nvs = std::clamp<std::int64_t>(nvs, 1, g);
  if (g % nvs != 0) throw std::invalid_argument("two_level: nvs must divide g");
  RingTopology ring;
  ring.links.resize(uz(g));
  for (std::int64_t i = 0; i < g; ++i) {
    // Link i -> i+1 crosses a domain boundary when i is the last GPU of its
    // fast domain.
    const bool crossing = ((i + 1) % nvs) == 0 && nvs < g;
    ring.links[uz(i)] =
        crossing ? RingLink{alpha_s, bw_s} : RingLink{alpha_f, bw_f};
  }
  return ring;
}

RingTopology RingTopology::hierarchical(const hw::Topology& topo,
                                        const comm::TopoPlacement& p,
                                        double rails) {
  const std::int64_t g = p.size;
  if (g < 1) {
    throw std::invalid_argument("hierarchical: placement size must be >= 1");
  }
  if (topo.empty()) {
    throw std::invalid_argument("hierarchical: empty topology");
  }
  if (!(rails >= 1.0)) {
    throw std::invalid_argument("hierarchical: rails must be >= 1");
  }
  RingTopology ring;
  ring.links.resize(uz(g));
  for (std::int64_t i = 0; i < g; ++i) {
    // The hop i -> i+1 exits every block whose occupancy divides i+1; the
    // message must traverse the outermost (slowest) such level.
    std::size_t level = 0;
    for (std::size_t l = 1; l < topo.levels.size(); ++l) {
      const std::int64_t block = p.occupancy[l - 1];
      if (block >= 1 && block < g && (i + 1) % block == 0) level = l;
    }
    const hw::FabricLevel& lvl = topo.levels[level];
    // Level-0 links share the fast-domain bandwidth across the rail rings;
    // each outer-level link owns one NIC rail.
    BytesPerSec bw = level == 0 ? lvl.bandwidth * topo.efficiency / rails
                                : lvl.bandwidth * topo.efficiency;
    if (level > 0 && lvl.pod_size > 0 && g > lvl.pod_size &&
        lvl.oversubscription > 1.0) {
      bw = bw / lvl.oversubscription;
    }
    ring.links[uz(i)] = RingLink{lvl.latency, bw};
  }
  return ring;
}

Seconds simulate_allgather(const RingTopology& ring, Bytes total_bytes,
                           int slices) {
  const std::int64_t g = ring.size();
  if (g <= 1) return Seconds(0);
  if (slices < 1) throw std::invalid_argument("simulate_allgather: slices >= 1");

  const Bytes slice_bytes =
      total_bytes / static_cast<double>(g) / static_cast<double>(slices);

  EventQueue queue;
  std::vector<double> link_free(uz(g), 0.0);

  // One in-flight message: slice `s` of block `b`, currently departing GPU
  // `at`, with `hops_left` hops to traverse.
  struct Message {
    std::int64_t block;
    int slice;
    std::int64_t at;
    std::int64_t hops_left;
  };

  // The send of a message over link `at`: waits for the link, then arrives
  // at the next GPU after alpha + bytes/bw.
  std::function<void(Message)> send = [&](Message msg) {
    const std::size_t link = uz(msg.at);
    const double start = std::max(queue.now(), link_free[link]);
    const double duration =
        (ring.links[link].alpha + slice_bytes / ring.links[link].bandwidth)
            .value();
    const double finish = start + duration;
    link_free[link] = finish;
    queue.schedule(finish, [&, msg] {
      Message next = msg;
      next.at = (msg.at + 1) % g;
      next.hops_left = msg.hops_left - 1;
      if (next.hops_left > 0) send(next);
    });
  };

  for (std::int64_t b = 0; b < g; ++b) {
    for (int s = 0; s < slices; ++s) {
      queue.schedule(0.0, [&, b, s] {
        send(Message{b, s, b, g - 1});
      });
    }
  }
  return Seconds(queue.run());
}

Seconds simulate_collective(const hw::NetworkSpec& net, ops::Collective coll,
                            Bytes bytes, std::int64_t g, std::int64_t nvs,
                            int slices) {
  if (g <= 1 || bytes <= Bytes(0)) return Seconds(0);
  nvs = std::clamp<std::int64_t>(nvs, 1, g);
  // NCCL drives one ring per rail; each rail ring carries 1/rails of the
  // tensor, owns one NIC share, and shares the NVS bandwidth.
  const double rails =
      nvs < g ? static_cast<double>(nvs) * net.nics_per_gpu : 1.0;
  const BytesPerSec bw_fast = net.effective_nvs_bandwidth() / rails;
  const BytesPerSec bw_slow = net.ib_bandwidth * net.efficiency;
  const RingTopology ring = RingTopology::two_level(
      g, nvs, net.nvs_latency, bw_fast, net.ib_latency, bw_slow);
  const Bytes per_ring_bytes = bytes / rails;

  switch (coll) {
    case ops::Collective::AllGather:
    case ops::Collective::ReduceScatter:
    case ops::Collective::AllToAll:
      // RS is the time-reversed traffic pattern of AG on the same ring;
      // ring AllToAll moves the same per-link volume.
      return simulate_allgather(ring, per_ring_bytes, slices);
    case ops::Collective::AllReduce:
      return 2.0 * simulate_allgather(ring, per_ring_bytes, slices);
    case ops::Collective::Broadcast:
    case ops::Collective::Reduce: {
      // One pipelined pass of the full tensor around the ring: model as an
      // AllGather whose per-block volume equals the tensor (g blocks of
      // V/g is the same aggregate link load as one V-sized pipeline).
      return simulate_allgather(ring, per_ring_bytes, slices);
    }
    case ops::Collective::PointToPoint: {
      const RingLink& link = ring.links[0];
      return link.alpha + per_ring_bytes / link.bandwidth;
    }
    case ops::Collective::None:
      return Seconds(0);
  }
  return Seconds(0);
}

Seconds simulate_collective(const hw::Topology& topo, ops::Collective coll,
                            Bytes bytes, const comm::TopoPlacement& p,
                            int slices) {
  const std::int64_t g = p.size;
  if (g <= 1 || bytes <= Bytes(0)) return Seconds(0);
  if (topo.empty()) {
    throw std::invalid_argument("simulate_collective: empty topology");
  }
  // One ring per NIC rail when the group leaves the fast domain, as in the
  // NetworkSpec overload: rails = (GPUs per fast domain) x (NIC rails of
  // the first boundary level).
  const double nic_rails = topo.depth() > 1 ? topo.levels[1].rails : 1.0;
  const double rails = p.occupancy[0] < g
                           ? static_cast<double>(p.occupancy[0]) * nic_rails
                           : 1.0;
  const RingTopology ring = RingTopology::hierarchical(topo, p, rails);
  const Bytes per_ring_bytes = bytes / rails;

  switch (coll) {
    case ops::Collective::AllGather:
    case ops::Collective::ReduceScatter:
    case ops::Collective::AllToAll:
    case ops::Collective::Broadcast:
    case ops::Collective::Reduce:
      // Same per-link aggregate volumes as the two-level overload.
      return simulate_allgather(ring, per_ring_bytes, slices);
    case ops::Collective::AllReduce:
      return 2.0 * simulate_allgather(ring, per_ring_bytes, slices);
    case ops::Collective::PointToPoint: {
      const RingLink& link = ring.links[0];
      return link.alpha + per_ring_bytes / link.bandwidth;
    }
    case ops::Collective::None:
      return Seconds(0);
  }
  return Seconds(0);
}

Seconds simulate_hierarchical(const hw::Topology& topo, ops::Collective coll,
                              Bytes bytes, const comm::TopoPlacement& p,
                              int slices) {
  const std::int64_t g = p.size;
  if (g <= 1 || bytes <= Bytes(0)) return Seconds(0);
  if (topo.empty()) {
    throw std::invalid_argument("simulate_hierarchical: empty topology");
  }
  if (coll != ops::Collective::AllGather &&
      coll != ops::Collective::ReduceScatter &&
      coll != ops::Collective::AllReduce) {
    throw std::invalid_argument(
        "simulate_hierarchical: only AG / RS / AllReduce");
  }

  // Phase i runs concurrent uniform rings of k = occ_i / occ_{i-1} members
  // over level-i links, on the 1/occ_{i-1} shard the analytic two-phase
  // schedule prescribes (comm::hierarchical_time).
  Seconds total(0);
  double shard = 1.0;
  std::int64_t prev = 1;
  for (std::size_t i = 0; i < topo.levels.size(); ++i) {
    const std::int64_t occ = p.occupancy[i];
    const std::int64_t k = occ / std::max<std::int64_t>(prev, 1);
    if (k <= 1) {
      prev = std::max(prev, occ);
      continue;
    }
    const hw::FabricLevel& lvl = topo.levels[i];
    BytesPerSec bw = i == 0 ? lvl.bandwidth * topo.efficiency
                            : lvl.bandwidth * (lvl.rails * topo.efficiency);
    if (i > 0 && lvl.pod_size > 0 && g > lvl.pod_size &&
        lvl.oversubscription > 1.0) {
      bw = bw / lvl.oversubscription;
    }
    RingTopology ring;
    ring.links.assign(uz(k), RingLink{lvl.latency, bw});
    total += simulate_allgather(ring, bytes * shard, slices);
    shard /= static_cast<double>(k);
    prev = occ;
  }
  if (coll == ops::Collective::AllReduce) total = total * 2.0;
  return total;
}

Seconds simulate_tree_allreduce(const hw::NetworkSpec& net, Bytes bytes,
                                std::int64_t g, std::int64_t nvs,
                                int slices) {
  if (g <= 1 || bytes <= Bytes(0)) return Seconds(0);
  nvs = std::clamp<std::int64_t>(nvs, 1, g);
  if (slices < 1) throw std::invalid_argument("simulate_tree_allreduce: slices");
  if (g % nvs != 0) {
    throw std::invalid_argument("simulate_tree_allreduce: nvs must divide g");
  }

  // As with rings, NCCL builds one tree per NIC rail; each rail tree moves
  // 1/rails of the tensor, owns a NIC, and shares the NVS bandwidth.
  const double rails =
      nvs < g ? static_cast<double>(nvs) * net.nics_per_gpu : 1.0;
  const Bytes per_tree_bytes = bytes / rails;
  const BytesPerSec bw_fast = net.effective_nvs_bandwidth() / rails;
  const BytesPerSec bw_slow = net.ib_bandwidth * net.efficiency;

  // Two-level tree: inside each fast domain a heap-shaped fast tree rooted
  // at the domain leader (local index 0); the leaders form a heap-shaped
  // slow tree across domains.
  auto parent = [&](std::int64_t i) -> std::int64_t {
    const std::int64_t node = i / nvs, local = i % nvs;
    if (local > 0) return node * nvs + (local - 1) / 2;
    if (node > 0) return ((node - 1) / 2) * nvs;
    return -1;  // global root
  };
  auto edge_time = [&](std::int64_t child) {
    const bool crossing = child % nvs == 0;  // leader-to-leader edge
    const BytesPerSec bw = crossing ? bw_slow : bw_fast;
    const Seconds alpha = crossing ? net.ib_latency : net.nvs_latency;
    return (alpha + per_tree_bytes / static_cast<double>(slices) / bw).value();
  };

  EventQueue queue;
  // reduce_ready[i][s]: how many children of i have delivered slice s
  // (leaves start ready). up_free / down_free: FIFO edge availability.
  const std::int64_t S = slices;
  std::vector<std::vector<int>> pending(
      uz(g), std::vector<int>(uz(S), 0));
  std::vector<double> up_free(uz(g), 0.0), down_free(uz(g), 0.0);
  double completion = 0.0;

  std::vector<std::vector<std::int64_t>> children(uz(g));
  for (std::int64_t i = 0; i < g; ++i) {
    const std::int64_t p = parent(i);
    if (p >= 0) children[uz(p)].push_back(i);
  }
  auto children_of = [&](std::int64_t i) -> const std::vector<std::int64_t>& {
    return children[uz(i)];
  };

  std::function<void(std::int64_t, std::int64_t)> send_down =
      [&](std::int64_t node, std::int64_t s) {
        // Broadcast slice s from `node` to its children.
        for (std::int64_t c : children_of(node)) {
          const double start = std::max(queue.now(), down_free[uz(c)]);
          const double finish = start + edge_time(c);
          down_free[uz(c)] = finish;
          queue.schedule(finish, [&, c, s] {
            completion = std::max(completion, queue.now());
            send_down(c, s);
          });
        }
        if (children_of(node).empty()) {
          completion = std::max(completion, queue.now());
        }
      };

  std::function<void(std::int64_t, std::int64_t)> send_up =
      [&](std::int64_t node, std::int64_t s) {
        if (node == 0) {
          send_down(0, s);
          return;
        }
        const double start = std::max(queue.now(), up_free[uz(node)]);
        const double finish = start + edge_time(node);
        up_free[uz(node)] = finish;
        const std::int64_t p = parent(node);
        queue.schedule(finish, [&, p, s] {
          if (++pending[uz(p)][uz(s)] ==
              static_cast<int>(children_of(p).size())) {
            send_up(p, s);
          }
        });
      };

  for (std::int64_t i = 0; i < g; ++i) {
    if (!children_of(i).empty()) continue;  // leaves kick off the reduce
    for (std::int64_t s = 0; s < S; ++s) {
      queue.schedule(0.0, [&, i, s] { send_up(i, s); });
    }
  }
  queue.run();
  return Seconds(completion);
}

}  // namespace tfpe::sim
