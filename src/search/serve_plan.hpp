#pragma once
// Latency/throughput Pareto search over serving replica shapes
// (`tfpe serve-plan`, the [serving] config section).
//
// Enumerates the core::ServingSpec grid — (tp, pp, batch) at a KV
// residency cap — and evaluates each point with the phase-generic
// estimator (core/inference_estimate.hpp). The expensive lowering is
// shared, not recomputed: one search::SignatureCache holds the
// prompt-length prefill signature per (tp, pp), reused verbatim across
// the whole batch axis (the adaptation to the prefill phase is O(ops)).
// The result is the full evaluated grid plus the Pareto front over
// (request latency, tok/s/GPU): a point is on the front iff no other
// feasible point is at least as fast AND at least as efficient. Every
// feasible point respects the KV budget by construction (the estimator
// clips the resident batch), which the serve-plan CLI re-asserts before
// reporting.

#include <cstddef>
#include <vector>

#include "core/evaluator.hpp"
#include "core/inference_estimate.hpp"
#include "core/workload.hpp"
#include "hw/system.hpp"
#include "model/transformer.hpp"

namespace tfpe::search {

struct ServePlanOptions {
  core::ServingSpec spec;
  core::EvalOptions eval;
};

struct ServePlanStats {
  std::size_t evaluated = 0;   ///< Grid points estimated.
  std::size_t feasible = 0;
  std::size_t signature_compiles = 0;  ///< Prefill lowerings actually run.
  std::size_t signature_reuses = 0;    ///< Batch-axis cache hits.
};

struct ServePlanResult {
  /// Every grid point in enumeration order (infeasible ones keep their
  /// reason string).
  std::vector<core::InferenceEstimate> points;
  /// Indices into `points` of the Pareto front, sorted by ascending
  /// request latency (and therefore ascending tok/s/GPU).
  std::vector<std::size_t> front;
  ServePlanStats stats;
};

ServePlanResult run_serve_plan(const model::TransformerConfig& mdl,
                               const hw::SystemConfig& sys,
                               const ServePlanOptions& opts);

/// The front-selection rule, exposed for tests: indices of the maximal
/// points of `points` under (lower request_latency, higher
/// tokens_per_sec_per_gpu), feasible points only.
std::vector<std::size_t> pareto_front_serving(
    const std::vector<core::InferenceEstimate>& points);

}  // namespace tfpe::search
