#include "search/sweep_lint.hpp"

#include <array>
#include <sstream>
#include <string>

namespace tfpe::search {

namespace {

using analysis::DiagnosticSink;
using analysis::RuleId;

/// Chain identity of one grid point as run_sweep keys it.
struct ChainKey {
  std::string gpu_name;
  std::int64_t n_gpus = 0;
  bool operator==(const ChainKey&) const = default;
};

bool same_roofline(const hw::GpuSpec& a, const hw::GpuSpec& b) {
  return a.tensor_flops.value() == b.tensor_flops.value() &&
         a.vector_flops.value() == b.vector_flops.value() &&
         a.flops_latency.value() == b.flops_latency.value() &&
         a.hbm_bandwidth.value() == b.hbm_bandwidth.value() &&
         a.hbm_capacity.value() == b.hbm_capacity.value();
}

/// A representative config per strategy with every dim > 1 so a key that
/// ignores a dim is guaranteed to collapse the probe mutation.
parallel::ParallelConfig probe_config(parallel::TpStrategy strategy) {
  parallel::ParallelConfig cfg;
  cfg.strategy = strategy;
  cfg.n1 = 2;
  cfg.n2 = strategy == parallel::TpStrategy::TP1D ? 1 : 2;
  cfg.np = 2;
  cfg.nd = 2;
  cfg.microbatches = 2;
  cfg.nb = strategy == parallel::TpStrategy::Summa2D ? 2 : 1;
  cfg.interleave = 1;
  cfg.nvs1 = 1;
  cfg.nvs2 = 1;
  cfg.nvsp = 1;
  cfg.nvsd = 1;
  return cfg;
}

}  // namespace

analysis::LintReport lint_sweep_plan(const model::TransformerConfig& mdl,
                                     const std::vector<hw::SystemConfig>& points,
                                     const SweepOptions& opts,
                                     const analysis::LintOptions& lint_opts,
                                     const SweepLintHooks* hooks) {
  DiagnosticSink sink(lint_opts.rules);

  // --- sweep-options: knobs run_sweep rejects with a throw. ---
  if (opts.search.top_k != 0) {
    sink.emit(RuleId::kSweepOptions, "<options>", 0.0,
              static_cast<double>(opts.search.top_k),
              "search.top_k is unsupported under run_sweep (it keeps only "
              "the per-point optimum; rank with find_optimal instead)");
  }
  if (opts.search.threads != 0) {
    sink.emit(RuleId::kSweepOptions, "<options>", 0.0,
              static_cast<double>(opts.search.threads),
              "search.threads is unsupported under run_sweep (the sweep "
              "owns the thread budget via SweepOptions::threads)");
  }

  // --- sweep-cache-key: behavioral probe of the key extractors. ---
  const std::function<SignatureKey(const parallel::ParallelConfig&)> sig_key =
      hooks && hooks->signature_key
          ? hooks->signature_key
          : std::function<SignatureKey(const parallel::ParallelConfig&)>(
                signature_key);
  const std::function<LayerKey(const model::TransformerConfig&,
                               const parallel::ParallelConfig&, std::int64_t)>
      lay_key = hooks && hooks->layer_key
                    ? hooks->layer_key
                    : std::function<LayerKey(const model::TransformerConfig&,
                                             const parallel::ParallelConfig&,
                                             std::int64_t)>(layer_key);

  for (const parallel::TpStrategy strategy :
       {parallel::TpStrategy::TP1D, parallel::TpStrategy::TP2D,
        parallel::TpStrategy::Summa2D}) {
    const parallel::ParallelConfig base = probe_config(strategy);
    const SignatureKey base_key = sig_key(base);
    const std::string where =
        "<strategy " + parallel::to_string(strategy) + ">";

    // Placement/interleave mutations must NOT reach the key: signatures are
    // hardware-free, placement and schedule enter only at timing. A key
    // that depends on them fragments the cache (correct but useless); one
    // that depends on them asymmetrically is how stale-artifact bugs start.
    const auto invariant = [&](parallel::ParallelConfig mutated,
                               const std::string& field) {
      if (!(sig_key(mutated) == base_key)) {
        sink.emit(RuleId::kSweepCacheKey, where, 0.0, 1.0,
                  "SignatureKey depends on " + field +
                      " — placement/interleave-dependent state is reachable "
                      "from a SignatureCache key");
      }
    };
    {
      parallel::ParallelConfig m = base;
      m.nvs1 = 2;
      invariant(m, "nvs1");
    }
    {
      parallel::ParallelConfig m = base;
      m.nvs2 = 2;
      invariant(m, "nvs2");
    }
    {
      parallel::ParallelConfig m = base;
      m.nvsp = 2;
      invariant(m, "nvsp");
    }
    {
      parallel::ParallelConfig m = base;
      m.nvsd = 2;
      invariant(m, "nvsd");
    }
    {
      parallel::ParallelConfig m = base;
      m.interleave = 2;
      invariant(m, "interleave");
    }

    // Fields the compiled signature DOES depend on must separate keys — a
    // collapsed pair would serve one config's signature for the other.
    const auto separates = [&](parallel::ParallelConfig mutated,
                               const std::string& field) {
      if (sig_key(mutated) == base_key) {
        sink.emit(RuleId::kSweepCacheKey, where, 1.0, 0.0,
                  "SignatureKey ignores " + field +
                      " — two configs differing in it would share one "
                      "cached signature");
      }
    };
    {
      parallel::ParallelConfig m = base;
      m.n1 *= 2;
      separates(m, "n1");
    }
    {
      parallel::ParallelConfig m = base;
      m.np *= 2;
      separates(m, "np");
    }
    {
      parallel::ParallelConfig m = base;
      m.nd *= 2;
      separates(m, "nd");
    }
    {
      parallel::ParallelConfig m = base;
      m.microbatches *= 2;
      separates(m, "microbatches");
    }
    {
      parallel::ParallelConfig m = base;
      m.zero = m.zero == parallel::ZeroStage::kOptimizer
                   ? parallel::ZeroStage::kWeights
                   : parallel::ZeroStage::kOptimizer;
      separates(m, "zero stage");
    }
    {
      parallel::ParallelConfig m = base;
      m.ring_attention = !m.ring_attention;
      separates(m, "ring_attention");
    }

    // Same probes for the LayerKey (placement must not reach it either;
    // build_layer output depends on n1/n2/local microbatch).
    const std::int64_t global_batch = base.nd * base.microbatches * 2;
    const LayerKey base_lkey = lay_key(mdl, base, global_batch);
    {
      parallel::ParallelConfig m = base;
      m.nvs1 = 2;
      m.interleave = 2;
      if (!(lay_key(mdl, m, global_batch) == base_lkey)) {
        sink.emit(RuleId::kSweepCacheKey, where, 0.0, 1.0,
                  "LayerKey depends on placement/interleave — "
                  "schedule-dependent state is reachable from a "
                  "LayerCostCache key");
      }
    }
    {
      parallel::ParallelConfig m = base;
      m.n1 *= 2;
      if (lay_key(mdl, m, global_batch) == base_lkey) {
        sink.emit(RuleId::kSweepCacheKey, where, 1.0, 0.0,
                  "LayerKey ignores n1 — two layers differing in it would "
                  "share one cached build");
      }
    }
  }

  // --- sweep-warm-chain + per-point system sanity. ---
  std::vector<ChainKey> chain_keys;
  std::vector<std::size_t> chain_first;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const hw::SystemConfig& sys = points[i];
    sink.merge(analysis::lint_system(sys, lint_opts));

    const ChainKey key{sys.gpu.name, sys.n_gpus};
    std::size_t c = 0;
    for (; c < chain_keys.size(); ++c) {
      if (chain_keys[c] == key) break;
    }
    if (c == chain_keys.size()) {
      chain_keys.push_back(key);
      chain_first.push_back(i);
      continue;
    }
    const hw::SystemConfig& head = points[chain_first[c]];
    if (!same_roofline(head.gpu, sys.gpu) ||
        head.host_bandwidth.value() != sys.host_bandwidth.value()) {
      std::ostringstream msg;
      msg << "grid point " << i << " shares warm-start chain (gpu=\""
          << key.gpu_name << "\", scale=" << key.n_gpus << ") with point "
          << chain_first[c]
          << " but differs in roofline/host link — the engine will detect "
             "the mismatch and cold-start, so the chain name is misleading "
             "and the warm seed wasted";
      sink.emit(RuleId::kSweepWarmChain, "point[" + std::to_string(i) + "]",
                static_cast<double>(chain_first[c]), static_cast<double>(i),
                msg.str(), analysis::Severity::kWarning);
    }
  }

  return sink.take();
}

}  // namespace tfpe::search
