#include "search/codesign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "core/lower_bounds.hpp"
#include "search/point_scan.hpp"
#include "util/object_pool.hpp"
#include "util/thread_pool.hpp"

namespace tfpe::search {

namespace {

using Clock = std::chrono::steady_clock;

std::size_t hash_combine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

constexpr const char* kShapePrunedReason =
    "shape pruned: architecture compute floor above cross-shape incumbent";

/// Candidate identity inside one enumerated list: the parallelization /
/// schedule fields expand_candidates varies (placements are searched later
/// and enumerated lists carry unit placements).
bool same_candidate(const parallel::ParallelConfig& a,
                    const parallel::ParallelConfig& b) {
  return a.strategy == b.strategy && a.n1 == b.n1 && a.n2 == b.n2 &&
         a.np == b.np && a.nd == b.nd && a.microbatches == b.microbatches &&
         a.nb == b.nb && a.interleave == b.interleave &&
         a.ring_attention == b.ring_attention && a.zero == b.zero;
}

/// Index of `cfg` in `configs`, kNoSeed when absent — the by-value warm-
/// seed lookup (candidate indices are not comparable across shapes).
std::size_t find_candidate(const std::vector<parallel::ParallelConfig>& configs,
                           const parallel::ParallelConfig& cfg) {
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (same_candidate(configs[i], cfg)) return i;
  }
  return kNoSeed;
}

}  // namespace

ShapeKey shape_key(const model::TransformerConfig& mdl, std::int64_t n_gpus) {
  ShapeKey k;
  k.seq_len = mdl.seq_len;
  k.embed = mdl.embed;
  k.heads = mdl.heads;
  k.depth = mdl.depth;
  k.hidden = mdl.hidden;
  k.kv_heads = mdl.kv_heads;
  k.vocab = mdl.vocab;
  k.window = mdl.window;
  k.moe_experts = mdl.moe_experts;
  k.moe_top_k = mdl.moe_top_k;
  k.attention = mdl.attention;
  k.n_gpus = n_gpus;
  return k;
}

std::size_t CandidateCache::KeyHash::operator()(const ShapeKey& k) const {
  std::size_t h = static_cast<std::size_t>(k.attention);
  h = hash_combine(h, static_cast<std::size_t>(k.seq_len));
  h = hash_combine(h, static_cast<std::size_t>(k.embed));
  h = hash_combine(h, static_cast<std::size_t>(k.heads));
  h = hash_combine(h, static_cast<std::size_t>(k.depth));
  h = hash_combine(h, static_cast<std::size_t>(k.hidden));
  h = hash_combine(h, static_cast<std::size_t>(k.kv_heads));
  h = hash_combine(h, static_cast<std::size_t>(k.vocab));
  h = hash_combine(h, static_cast<std::size_t>(k.window));
  h = hash_combine(h, static_cast<std::size_t>(k.moe_experts));
  h = hash_combine(h, static_cast<std::size_t>(k.moe_top_k));
  h = hash_combine(h, static_cast<std::size_t>(k.n_gpus));
  return h;
}

std::shared_ptr<const std::vector<parallel::ParallelConfig>>
CandidateCache::get(const model::TransformerConfig& mdl,
                    const hw::SystemConfig& sys, const SearchOptions& opts) {
  const std::int64_t scale = opts.n_gpus > 0 ? opts.n_gpus : sys.n_gpus;
  const ShapeKey key = shape_key(mdl, scale);
  Shard& shard = shards_[KeyHash{}(key) % kShards];
  std::lock_guard lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  builds_.fetch_add(1, std::memory_order_relaxed);
  auto configs = std::make_shared<const std::vector<parallel::ParallelConfig>>(
      expand_candidates(mdl, sys, opts));
  candidates_.fetch_add(configs->size(), std::memory_order_relaxed);
  shard.map.emplace(key, configs);
  return configs;
}

CodesignResult run_codesign(const std::vector<model::TransformerConfig>& shapes,
                            const std::vector<hw::SystemConfig>& points,
                            const CodesignOptions& opts) {
  if (opts.sweep.search.top_k != 0) {
    throw std::invalid_argument(
        "run_codesign: search.top_k is not supported (the product search "
        "keeps only per-(shape, point) optima) — rank with find_optimal");
  }
  if (opts.sweep.search.threads != 0) {
    throw std::invalid_argument(
        "run_codesign: search.threads is not supported (the engine owns the "
        "thread budget) — set CodesignOptions::sweep.threads instead");
  }

  CodesignResult out;
  const std::size_t ns = shapes.size();
  const std::size_t np = points.size();
  out.shapes = shapes;
  out.best.resize(np);
  out.per_shape.assign(ns, std::vector<core::EvalResult>(np));
  out.pruned.assign(ns, std::vector<std::uint8_t>(np, 0));
  out.stats.shapes = ns;
  out.stats.points = np;
  for (std::size_t s = 0; s < ns; ++s) {
    for (std::size_t p = 0; p < np; ++p) {
      out.per_shape[s][p].reason = "no feasible configuration";
    }
  }
  for (auto& w : out.best) w.best.reason = "no feasible configuration";
  if (ns == 0 || np == 0) return out;
  const auto wall_t0 = Clock::now();

  if (!opts.sweep.use_signatures) {
    // Naive arm: one independent find_optimal per product point — the A/B
    // baseline and bitwise verification reference. Always exhaustive over
    // the matrix (prune_shapes is an engine feature, not a semantics
    // change, so the reference must cover every pair).
    SearchOptions per_point = opts.sweep.search;
    per_point.threads = opts.sweep.threads;
    for (std::size_t s = 0; s < ns; ++s) {
      for (std::size_t p = 0; p < np; ++p) {
        SearchResult r = find_optimal(shapes[s], points[p], per_point);
        ++out.stats.shapes_evaluated;
        ++out.stats.enumerations;
        out.stats.candidates += r.stats.candidates;
        out.stats.evaluated += r.evaluated;
        out.stats.bound_pruned += r.stats.bound_pruned;
        out.stats.memory_pruned += r.stats.memory_pruned;
        out.stats.build_layer_calls += r.stats.build_layer_calls;
        out.stats.layer_cache_hits += r.stats.layer_cache_hits;
        out.stats.placement_sets += r.stats.placement_sets;
        out.stats.placement_cache_hits += r.stats.placement_cache_hits;
        out.stats.signature_compiles += r.stats.signature_compiles;
        out.stats.signature_cache_hits += r.stats.signature_cache_hits;
        if (r.best.feasible) ++out.stats.feasible_shape_points;
        out.per_shape[s][p] = std::move(r.best);
        if (better_result(out.per_shape[s][p], out.best[p].best)) {
          out.best[p].best = out.per_shape[s][p];
          out.best[p].shape = s;
        }
      }
    }
    out.stats.profile.wall_s = static_cast<double>(ns_since(wall_t0)) * 1e-9;
    return out;
  }

  const std::int64_t b = opts.sweep.search.global_batch;
  std::vector<std::int64_t> scale_of(np);
  for (std::size_t p = 0; p < np; ++p) {
    scale_of[p] =
        opts.sweep.search.n_gpus > 0 ? opts.sweep.search.n_gpus
                                     : points[p].n_gpus;
  }

  // Chains exactly as in run_sweep: points sharing (GPU type, scale), in
  // input order — within one shape the chain streams the ChainContext and
  // the same-shape warm seed along the fabric axis.
  std::map<std::pair<std::string, std::int64_t>, std::size_t> chain_ids;
  std::vector<std::vector<std::size_t>> chains;
  for (std::size_t p = 0; p < np; ++p) {
    const auto key = std::make_pair(points[p].gpu.name, scale_of[p]);
    const auto [it, inserted] = chain_ids.try_emplace(key, chains.size());
    if (inserted) chains.emplace_back();
    chains[it->second].push_back(p);
  }

  // Product-sweep-scoped caches (model-keyed or model-free).
  CandidateCache cand_cache;
  PlacementCache placement_cache;
  std::atomic<std::int64_t> enumerate_ns{0};
  std::atomic<std::int64_t> compile_ns{0};
  std::atomic<std::int64_t> time_ns{0};

  // Per-point cross-shape state, updated sequentially between shapes: the
  // incumbent winner and the last surviving shape's optimal configuration
  // (the cross-shape warm seed, matched by value in the next shape's list).
  std::vector<std::optional<parallel::ParallelConfig>> seed_cfg(np);

  // One pool of workers and one pool of scratch bundles for the WHOLE
  // product loop: the leased ScanScratch carries its warm capacity across
  // shapes, not just across chains. With a single worker (or a single
  // chain) the chains run inline — no pool is ever spawned.
  const unsigned workers =
      opts.sweep.threads != 0
          ? opts.sweep.threads
          : std::max(1u, std::thread::hardware_concurrency());
  const bool inline_run = workers <= 1 || chains.size() <= 1;
  std::unique_ptr<util::ThreadPool> pool;
  if (!inline_run) pool = std::make_unique<util::ThreadPool>(opts.sweep.threads);
  util::ObjectPool<ScanScratch> scratch_pool;
  std::vector<PointOutcome> outcomes(np);
  for (std::size_t s = 0; s < ns; ++s) {
    const model::TransformerConfig& shape = shapes[s];

    // Architecture-level screen, BEFORE any enumeration for this shape: a
    // floor above an achieved time means no configuration of this shape
    // can win or tie at that point.
    bool any_scanned = false;
    for (std::size_t p = 0; p < np; ++p) {
      if (opts.prune_shapes && out.best[p].best.feasible &&
          core::shape_time_floor(shape, points[p], scale_of[p], b) >
              out.best[p].best.iteration()) {
        out.pruned[s][p] = 1;
        out.per_shape[s][p].reason = kShapePrunedReason;
        ++out.stats.shapes_pruned;
      } else {
        any_scanned = true;
      }
    }
    if (!any_scanned) continue;

    // Signature-level caches key below the model: one trio per shape,
    // shared by all of its grid points (see SignatureCache).
    LayerCostCache layer_cache;
    SignatureCache signature_cache;
    BatchedCache batched_cache;
    const ScanShared scan{shape,
                          opts.sweep,
                          layer_cache,
                          placement_cache,
                          signature_cache,
                          batched_cache,
                          compile_ns,
                          time_ns};

    const auto run_chain = [&](std::size_t c) {
      util::ObjectPool<ScanScratch>::Lease scratch = scratch_pool.acquire();
      ChainContext ctx;
      std::size_t chain_seed = kNoSeed;
      for (const std::size_t p : chains[c]) {
        if (out.pruned[s][p]) continue;
        const auto enum_t0 = Clock::now();
        const auto configs = cand_cache.get(shape, points[p],
                                            opts.sweep.search);
        enumerate_ns.fetch_add(ns_since(enum_t0), std::memory_order_relaxed);
        std::size_t seed = kNoSeed;
        if (opts.sweep.warm_start) {
          if (seed_cfg[p]) seed = find_candidate(*configs, *seed_cfg[p]);
          if (seed == kNoSeed) seed = chain_seed;
        }
        outcomes[p] = scan_point(scan, points[p], *configs, seed, *scratch,
                                 opts.sweep.batch ? &ctx : nullptr);
        chain_seed = outcomes[p].best_index;
      }
    };
    if (inline_run) {
      for (std::size_t c = 0; c < chains.size(); ++c) run_chain(c);
    } else {
      util::parallel_for_dynamic(*pool, chains.size(), run_chain);
    }

    // Sequential cross-shape reduction in point order: winners, seeds and
    // the work counters (deterministic — each scanned point was written by
    // exactly the chain that owns it).
    for (std::size_t p = 0; p < np; ++p) {
      if (out.pruned[s][p]) continue;
      PointOutcome& o = outcomes[p];
      ++out.stats.shapes_evaluated;
      out.stats.evaluated += o.evaluated;
      out.stats.bound_pruned += o.bound_pruned;
      out.stats.memory_pruned += o.memory_pruned;
      out.stats.batch_calls += o.batch_calls;
      out.stats.batch_placements += o.batch_placements;
      out.stats.signature_reuses += o.signature_reuses;
      if (o.warm_seeded) ++out.stats.warm_seeded;
      if (o.warm_seed_feasible) ++out.stats.warm_seed_feasible;
      out.per_shape[s][p] = std::move(o.best);
      const core::EvalResult& r = out.per_shape[s][p];
      if (r.feasible) {
        ++out.stats.feasible_shape_points;
        seed_cfg[p] = r.cfg;
      }
      if (better_result(r, out.best[p].best)) {
        out.best[p].best = r;
        out.best[p].shape = s;
      }
    }
    out.stats.signature_compiles += signature_cache.compiles();
    out.stats.signature_cache_hits += signature_cache.hits();
    out.stats.signature_lowers += batched_cache.lowers();
    out.stats.batched_cache_hits += batched_cache.hits();
    out.stats.build_layer_calls += layer_cache.builds();
    out.stats.layer_cache_hits += layer_cache.hits();
  }

  out.stats.enumerations = cand_cache.builds();
  out.stats.enumeration_hits = cand_cache.hits();
  out.stats.candidates = cand_cache.candidates();
  out.stats.placement_sets = placement_cache.builds();
  out.stats.placement_cache_hits = placement_cache.hits();
  out.stats.profile.wall_s = static_cast<double>(ns_since(wall_t0)) * 1e-9;
  out.stats.profile.enumerate_s =
      static_cast<double>(enumerate_ns.load()) * 1e-9;
  out.stats.profile.compile_s = static_cast<double>(compile_ns.load()) * 1e-9;
  out.stats.profile.time_s = static_cast<double>(time_ns.load()) * 1e-9;
  return out;
}

}  // namespace tfpe::search
