#pragma once
// Cross-hardware sweep engine (paper §IV Figs. 2-5, A2-A6): the optimal
// configuration of one model at many hardware points — GPU generations,
// NVS-domain sizes, bandwidth/capacity what-ifs — computed with the
// two-phase evaluator so the hardware axis re-times compiled signatures
// instead of re-running the full per-point search.
//
// Contrast with a find_optimal loop over the grid (the legacy workflow):
//   * candidates are enumerated ONCE per distinct GPU count (the candidate
//     space never depends on the GPU type or NVS size), lazily inside the
//     worker that first needs the scale — so enumeration OVERLAPS with
//     other workers' compile and timing work instead of serializing ahead
//     of the fan-out;
//   * each candidate is compiled ONCE into a hardware-invariant
//     CostSignature and lowered ONCE into its SoA BatchedSignature, shared
//     across every grid point through cross-sweep caches (and across the
//     interleave axis within one point);
//   * grid points are grouped into CHAINS — runs of points sharing a GPU
//     type and scale, i.e. the NVS/bandwidth axis of a hardware_grid — and
//     the chains stream over util::parallel_for_dynamic. Within a chain,
//     points run sequentially so each point can WARM-START from its
//     predecessor (SweepOptions::warm_start): the parent's optimal
//     candidate is re-timed first at the child point, which seeds the
//     child's incumbent with an *achieved* time and lets the lower-bound
//     prune cut deeper. A warm seed can only tighten the incumbent, never
//     below the child's true optimum, so the per-point optima are
//     unchanged — bit for bit — with or without warm starts;
//   * per point, candidates scan cheapest-lower-bound-first with a
//     point-local incumbent; with SweepOptions::batch (default) all
//     placements of a candidate are timed by one core::time_placements_batch
//     call over the SoA arrays instead of a per-placement scalar walk.
// The per-point optima are IDENTICAL — configuration, time and memory
// bits — to find_optimal run at that point, for every combination of
// {batch, warm_start} (bench_sweep_scaling asserts this on every run).
//
// Determinism: chains and seeds are fixed by the input order, and each
// chain is sequential, so every SweepStats WORK counter (evaluated, pruned,
// batch occupancy, warm-start counters) is invariant to the thread count.
// The stage PROFILE (busy seconds per pipeline stage) is wall-clock and
// schedule-dependent — use it for perf triage, never in golden tests.
//
// Supported per-point result is the optimum only (top_k / pareto still go
// through find_optimal / pareto_frontier).

#include <cstdint>
#include <vector>

#include "hw/system.hpp"
#include "search/search.hpp"

namespace tfpe::search {

struct SweepOptions {
  /// Candidate space + evaluation extensions, shared by every grid point.
  /// `search.prune` selects bounds + incumbent pruning per point.
  /// UNSUPPORTED here and rejected loudly: `search.top_k` (run_sweep keeps
  /// only the per-point optimum — rank with find_optimal instead) and
  /// `search.threads` (the sweep owns the thread budget via `threads`
  /// below; a nested per-point pool would silently oversubscribe). Leave
  /// both at 0 or run_sweep throws std::invalid_argument.
  SearchOptions search;

  /// Workers across chains of grid points; 0 = hardware concurrency.
  unsigned threads = 0;

  /// Two-phase engine (default). False falls back to one find_optimal call
  /// per grid point — the legacy workflow, kept for the A/B bench and the
  /// --verify-legacy CLI mode; identical optima either way.
  bool use_signatures = true;

  /// Time each candidate's placements through the SoA batch kernel
  /// (core/batched_signature.hpp) instead of the scalar per-placement walk.
  /// Identical results bit for bit; this is purely a throughput switch
  /// (false = PR-3 scalar engine, the A/B baseline).
  bool batch = true;

  /// Seed each point's incumbent from its chain predecessor's optimal
  /// candidate (see the header comment). Off by default so the default
  /// counters match the cold engine; turn on for large grids.
  bool warm_start = false;
};

/// Work counters for one sweep, aggregated over all grid points.
struct SweepStats {
  std::size_t points = 0;
  std::size_t feasible_points = 0;
  /// Candidate parallelizations per distinct GPU count, summed over the
  /// distinct counts (NOT multiplied by the points sharing them).
  std::size_t candidates = 0;
  /// Placement evaluations (scalar time_placement-equivalents) over all
  /// points; batch kernels count every placement they time.
  std::size_t evaluated = 0;
  std::size_t bound_pruned = 0;
  std::size_t memory_pruned = 0;
  /// Cross-sweep compile sharing: compiles is the number of distinct
  /// signatures actually lowered; hits counts every reuse served by a
  /// SignatureCache probe (across grid points and across the interleave
  /// axis).
  std::size_t signature_compiles = 0;
  std::size_t signature_cache_hits = 0;
  /// Candidate visits served by a chain-held signature with NO cache probe
  /// (the batch engine keeps each candidate's compiled signature in its
  /// ChainContext across the points of a chain). The scalar engine probes
  /// the cache on every visit, so these are the visits that would have
  /// been cache hits there — compile_hit_rate() folds them in to keep the
  /// rate comparable across engines.
  std::size_t signature_reuses = 0;
  /// SoA lowerings (one per distinct signature under `batch`) and their
  /// cross-point reuses.
  std::size_t signature_lowers = 0;
  std::size_t batched_cache_hits = 0;
  std::size_t build_layer_calls = 0;
  std::size_t layer_cache_hits = 0;
  std::size_t placement_sets = 0;
  std::size_t placement_cache_hits = 0;

  /// time_placements_batch invocations and the placements they timed;
  /// occupancy is the mean batch width (1.0 would mean the batch engine
  /// degenerated to the scalar walk).
  std::size_t batch_calls = 0;
  std::size_t batch_placements = 0;

  /// Points whose scan started from a chain predecessor's optimum, and how
  /// many of those seeds produced a feasible incumbent (a miss means the
  /// parent's optimum went invalid/over-capacity at the child point).
  std::size_t warm_seeded = 0;
  std::size_t warm_seed_feasible = 0;

  /// Busy wall-clock per pipeline stage, summed across workers, plus the
  /// sweep's wall time. overlap() > 1 means stages genuinely ran
  /// concurrently. Schedule-dependent — excluded from determinism tests.
  struct StageProfile {
    double enumerate_s = 0;  ///< expand_candidates
    double compile_s = 0;    ///< signature compile + SoA lower + bind_system
    double time_s = 0;       ///< bounds screen + placement timing
    double wall_s = 0;
    double overlap() const {
      return wall_s > 0 ? (enumerate_s + compile_s + time_s) / wall_s : 0.0;
    }
  };
  StageProfile profile;

  /// Fraction of candidate compile lookups that did NOT compile: cache
  /// hits plus chain-held reuses, over all lookups. Counting reuses is
  /// what makes the rate mean the same thing in both engines — the scalar
  /// engine resolves every visit through the cache while the batch engine
  /// answers most repeat visits from the chain without a probe; a
  /// probes-only rate under-reported the batch engine's sharing on
  /// identical work (see docs/API.md, "Counter semantics").
  double compile_hit_rate() const {
    const std::size_t served = signature_cache_hits + signature_reuses;
    const std::size_t total = signature_compiles + served;
    return total == 0 ? 0.0
                      : static_cast<double>(served) /
                            static_cast<double>(total);
  }
  double batch_occupancy() const {
    return batch_calls == 0 ? 0.0
                            : static_cast<double>(batch_placements) /
                                  static_cast<double>(batch_calls);
  }
};

struct SweepResult {
  /// Best configuration per grid point, in input order (feasible == false
  /// with a reason when nothing fits that point).
  std::vector<core::EvalResult> best;
  /// Placement evaluations per grid point (thread-count invariant).
  std::vector<std::size_t> evaluated_per_point;
  SweepStats stats;
};

/// Optimal configuration of `mdl` at every system in `points`.
/// Throws std::invalid_argument when opts.search.top_k or
/// opts.search.threads is nonzero (unsupported here; see SweepOptions).
SweepResult run_sweep(const model::TransformerConfig& mdl,
                      const std::vector<hw::SystemConfig>& points,
                      const SweepOptions& opts);

/// The Fig. 2-style grid: every (generation, NVS-domain size) pair at a
/// fixed GPU count, generations outer.
std::vector<hw::SystemConfig> hardware_grid(
    const std::vector<hw::GpuGeneration>& gens,
    const std::vector<std::int64_t>& nvs_domains, std::int64_t n_gpus);

/// Topology-axis grid: every (generation, NVS domain, spine
/// oversubscription) triple, oversubscription innermost. Ratio 1 keeps the
/// canonical two-level fabric; ratios > 1 attach a three-level leaf/spine
/// fabric (leaf pods of `leaf_size` GPUs, rounded down to a multiple of the
/// NVS domain) with that spine oversubscription — so run_sweep sweeps
/// oversubscription exactly like it sweeps the NVS-domain size.
std::vector<hw::SystemConfig> hardware_grid(
    const std::vector<hw::GpuGeneration>& gens,
    const std::vector<std::int64_t>& nvs_domains,
    const std::vector<double>& oversubscriptions, std::int64_t n_gpus,
    std::int64_t leaf_size);

}  // namespace tfpe::search
