#pragma once
// Cross-hardware sweep engine (paper §IV Figs. 2-5, A2-A6): the optimal
// configuration of one model at many hardware points — GPU generations,
// NVS-domain sizes, bandwidth/capacity what-ifs — computed with the
// two-phase evaluator so the hardware axis re-times compiled signatures
// instead of re-running the full per-point search.
//
// Contrast with a find_optimal loop over the grid (the legacy workflow):
//   * candidates are enumerated ONCE per distinct GPU count (the candidate
//     space never depends on the GPU type or NVS size);
//   * each candidate is compiled ONCE into a hardware-invariant
//     CostSignature, shared across every grid point through a cross-sweep
//     search::SignatureCache (and across the interleave axis within one
//     point);
//   * grid points fan out over util::parallel_for_dynamic — one worker per
//     point, each scanning its candidates cheapest-lower-bound-first with a
//     point-local incumbent (sequential within the point, so the per-point
//     work counters are thread-count invariant);
//   * per point only bind_system (one roofline dot product per candidate)
//     and the placement-dependent collective/pipeline/DP terms are
//     recomputed.
// The per-point optima are IDENTICAL — configuration, time and memory
// bits — to find_optimal run at that point (bench_sweep_scaling asserts
// this on every run).
//
// Supported per-point result is the optimum only (top_k / pareto still go
// through find_optimal / pareto_frontier).

#include <cstdint>
#include <vector>

#include "hw/system.hpp"
#include "search/search.hpp"

namespace tfpe::search {

struct SweepOptions {
  /// Candidate space + evaluation extensions, shared by every grid point.
  /// `search.threads` is ignored (the sweep parallelizes across points, not
  /// within them); `search.prune` selects bounds + incumbent pruning per
  /// point; `search.top_k` is not supported here.
  SearchOptions search;

  /// Workers across grid points; 0 = hardware concurrency.
  unsigned threads = 0;

  /// Two-phase engine (default). False falls back to one find_optimal call
  /// per grid point — the legacy workflow, kept for the A/B bench and the
  /// --verify-legacy CLI mode; identical optima either way.
  bool use_signatures = true;
};

/// Work counters for one sweep, aggregated over all grid points.
struct SweepStats {
  std::size_t points = 0;
  std::size_t feasible_points = 0;
  /// Candidate parallelizations per distinct GPU count, summed over the
  /// distinct counts (NOT multiplied by the points sharing them).
  std::size_t candidates = 0;
  /// Placement evaluations (time_signature calls) over all points.
  std::size_t evaluated = 0;
  std::size_t bound_pruned = 0;
  std::size_t memory_pruned = 0;
  /// Cross-sweep compile sharing: compiles is the number of distinct
  /// signatures actually lowered; hits counts every reuse (across grid
  /// points and across the interleave axis).
  std::size_t signature_compiles = 0;
  std::size_t signature_cache_hits = 0;
  std::size_t build_layer_calls = 0;
  std::size_t layer_cache_hits = 0;
  std::size_t placement_sets = 0;
  std::size_t placement_cache_hits = 0;

  double compile_hit_rate() const {
    const std::size_t total = signature_compiles + signature_cache_hits;
    return total == 0
               ? 0.0
               : static_cast<double>(signature_cache_hits) /
                     static_cast<double>(total);
  }
};

struct SweepResult {
  /// Best configuration per grid point, in input order (feasible == false
  /// with a reason when nothing fits that point).
  std::vector<core::EvalResult> best;
  /// Placement evaluations per grid point (thread-count invariant).
  std::vector<std::size_t> evaluated_per_point;
  SweepStats stats;
};

/// Optimal configuration of `mdl` at every system in `points`.
SweepResult run_sweep(const model::TransformerConfig& mdl,
                      const std::vector<hw::SystemConfig>& points,
                      const SweepOptions& opts);

/// The Fig. 2-style grid: every (generation, NVS-domain size) pair at a
/// fixed GPU count, generations outer.
std::vector<hw::SystemConfig> hardware_grid(
    const std::vector<hw::GpuGeneration>& gens,
    const std::vector<std::int64_t>& nvs_domains, std::int64_t n_gpus);

/// Topology-axis grid: every (generation, NVS domain, spine
/// oversubscription) triple, oversubscription innermost. Ratio 1 keeps the
/// canonical two-level fabric; ratios > 1 attach a three-level leaf/spine
/// fabric (leaf pods of `leaf_size` GPUs, rounded down to a multiple of the
/// NVS domain) with that spine oversubscription — so run_sweep sweeps
/// oversubscription exactly like it sweeps the NVS-domain size.
std::vector<hw::SystemConfig> hardware_grid(
    const std::vector<hw::GpuGeneration>& gens,
    const std::vector<std::int64_t>& nvs_domains,
    const std::vector<double>& oversubscriptions, std::int64_t n_gpus,
    std::int64_t leaf_size);

}  // namespace tfpe::search
