#include "search/enumerate.hpp"

#include <algorithm>
#include <functional>

#include "util/math.hpp"

namespace tfpe::search {

using util::divisors;

std::vector<parallel::ParallelConfig> enumerate_parallel(
    const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
    const EnumerationOptions& opts) {
  const std::int64_t n = opts.n_gpus > 0 ? opts.n_gpus : sys.n_gpus;
  const std::int64_t b = opts.global_batch;
  std::vector<parallel::ParallelConfig> out;
  if (mdl.is_moe() && opts.strategy == parallel::TpStrategy::Summa2D) {
    return out;  // MoE is not supported with SUMMA.
  }

  std::vector<std::int64_t> nb_candidates = opts.nb_candidates;
  if (opts.strategy != parallel::TpStrategy::Summa2D) {
    nb_candidates = {1};
  } else if (nb_candidates.empty()) {
    nb_candidates = {1, 2, 4, 8, 16};
  }

  auto keep = [](std::int64_t fixed, std::int64_t v) {
    return fixed == 0 || fixed == v;
  };

  for (std::int64_t n1 : divisors(n)) {
    if (!keep(opts.fixed_n1, n1)) continue;
    if (mdl.heads % n1 || mdl.hidden % n1 || mdl.embed % n1) continue;
    if (mdl.kv_heads_or_default() % n1) continue;
    const std::int64_t rem1 = n / n1;
    for (std::int64_t n2 : divisors(rem1)) {
      if (opts.strategy == parallel::TpStrategy::TP1D && n2 != 1) continue;
      if (!keep(opts.fixed_n2, n2)) continue;
      if (mdl.seq_len % (n1 * n2)) continue;
      if (opts.strategy == parallel::TpStrategy::Summa2D &&
          (mdl.embed % n2 || mdl.hidden % n2)) {
        continue;
      }
      const std::int64_t rem2 = rem1 / n2;
      for (std::int64_t np : divisors(rem2)) {
        if (!keep(opts.fixed_np, np)) continue;
        if (mdl.depth % np) continue;
        const std::int64_t nd = rem2 / np;
        if (!keep(opts.fixed_nd, nd)) continue;
        if (b % nd) continue;
        if (mdl.is_moe() &&
            (nd <= mdl.moe_experts ? mdl.moe_experts % nd != 0
                                   : nd % mdl.moe_experts != 0)) {
          continue;
        }
        const std::int64_t local_batch = b / nd;
        for (std::int64_t m : divisors(local_batch)) {
          if (!keep(opts.fixed_m, m)) continue;
          const std::int64_t b_loc = local_batch / m;
          if (opts.fixed_local_microbatch != 0 &&
              b_loc != opts.fixed_local_microbatch) {
            continue;
          }
          for (std::int64_t nb : nb_candidates) {
            if (opts.strategy == parallel::TpStrategy::Summa2D &&
                (mdl.embed % nb || mdl.hidden % nb)) {
              continue;
            }
            parallel::ParallelConfig cfg;
            cfg.strategy = opts.strategy;
            cfg.n1 = n1;
            cfg.n2 = n2;
            cfg.np = np;
            cfg.nd = nd;
            cfg.microbatches = m;
            cfg.nb = nb;
            out.push_back(cfg);
          }
        }
      }
    }
  }
  return out;
}

std::vector<std::array<std::int64_t, 4>> enumerate_placements(
    const parallel::ParallelConfig& cfg, std::int64_t nvs_domain) {
  auto group_divs = [&](std::int64_t size) {
    std::vector<std::int64_t> ds;
    for (std::int64_t d : divisors(size)) {
      if (d <= nvs_domain) ds.push_back(d);
    }
    return ds;
  };
  const auto d1 = group_divs(cfg.n1);
  const auto d2 = group_divs(cfg.n2);
  const auto dp = group_divs(cfg.np);
  const auto dd = group_divs(cfg.nd);

  std::vector<std::array<std::int64_t, 4>> all;
  for (std::int64_t a1 : d1) {
    if (a1 > nvs_domain) break;
    for (std::int64_t a2 : d2) {
      if (a1 * a2 > nvs_domain) break;
      for (std::int64_t ap : dp) {
        if (a1 * a2 * ap > nvs_domain) break;
        for (std::int64_t ad : dd) {
          if (a1 * a2 * ap * ad > nvs_domain) break;
          all.push_back({a1, a2, ap, ad});
        }
      }
    }
  }
  // Drop dominated placements: more fast-domain GPUs for any group never
  // hurts in the time model. Sort-and-sweep instead of the all-pairs scan:
  // in descending lexicographic order every dominator of c precedes c, and
  // dominance is transitive, so c only needs to be compared against the
  // non-dominated placements kept so far — O(n * frontier) not O(n^2).
  std::sort(all.begin(), all.end(),
            std::greater<std::array<std::int64_t, 4>>());
  std::vector<std::array<std::int64_t, 4>> keep;
  for (const auto& c : all) {
    bool dominated = false;
    for (const auto& o : keep) {
      if (o[0] >= c[0] && o[1] >= c[1] && o[2] >= c[2] && o[3] >= c[3] &&
          (o[0] > c[0] || o[1] > c[1] || o[2] > c[2] || o[3] > c[3])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) keep.push_back(c);
  }
  // Restore generation order (ascending lexicographic) so downstream
  // first-wins tie-breaking is unchanged.
  std::sort(keep.begin(), keep.end());
  return keep;
}

std::vector<std::array<std::int64_t, 4>> enumerate_placements(
    const parallel::ParallelConfig& cfg, const hw::Topology& fabric) {
  const std::int64_t domain =
      fabric.empty() ? 1 : std::max<std::int64_t>(1, fabric.levels[0].fan_in);
  return enumerate_placements(cfg, domain);
}

}  // namespace tfpe::search
