#pragma once
// Architecture x configuration co-design search (ROADMAP item 3; Anthony
// et al., arXiv 2401.14489): the optimal (shape, parallelization,
// placement) triple over an iso-parameter architecture family
// (model/shape_family.hpp) crossed with a hardware grid, run as a
// branch-and-bound over the PRODUCT space instead of a find_optimal loop
// per (shape, point):
//
//   * SHAPE-LEVEL PRUNING — core::shape_time_floor bounds every candidate
//     of a shape from the architecture and the system peaks alone, BEFORE
//     the shape's candidate space is enumerated. A shape whose floor
//     already exceeds the point's cross-shape incumbent (an achieved
//     iteration time from an earlier shape) is skipped outright: floor >
//     incumbent implies every one of its configurations is strictly slower
//     than an achieved time, so it can neither win nor tie. Pruned
//     (shape, point) pairs are reported as such, never with a fabricated
//     optimum.
//   * MEMOIZED ENUMERATION — expand_candidates is model-shape-dependent
//     (see search.hpp), so CandidateCache memoizes it on the full
//     (shape key, GPU count) pair and shares the lists across the grid.
//   * WARM-START CHAINS ACROSS SHAPES — per point, the previous surviving
//     shape's optimal ParallelConfig is looked up BY VALUE in the current
//     shape's candidate list (indices are not comparable across shapes)
//     and re-timed first, seeding the scan's incumbent with an achieved
//     time exactly like PR 6's chain warm starts; within one shape, points
//     chain along the hardware grid with the PR 6 ChainContext (compile
//     once, bind once, fabric restamp) via search/point_scan.hpp.
//   * PER-SHAPE CACHES — SignatureCache/LayerCostCache/BatchedCache key
//     below the model, so the engine scopes one trio per shape (shared by
//     all of that shape's grid points); the PlacementCache and
//     CandidateCache are model-keyed or model-free and live for the whole
//     product sweep.
//
// EXACTNESS CONTRACT: for every (shape, point) pair the engine scans, the
// reported result is BITWISE identical — configuration, time and memory —
// to find_optimal(shape, point); per-point winners equal the shape-order
// better_result reduction of those per-shape optima. Shape-level pruning
// only ever removes pairs that provably cannot affect a winner (their
// per-shape entry is flagged pruned). With prune_shapes = false the full
// per-shape matrix is exact. bench_codesign and the codesign smoke ctest
// assert both properties on every run.
//
// DETERMINISM: shapes run in family order with a sequential winner
// reduction between them; within a shape, chains fan out across the pool
// but each (shape, point) scan is sequential. Every CodesignStats WORK
// counter is therefore invariant to the thread count; the StageProfile is
// wall-clock and schedule-dependent (never golden-test it).
//
// Complexity: |family| x |grid| x |candidates| product points, of which
// the engine evaluates only the shapes surviving the architecture floor,
// and per surviving shape only the candidates surviving the warm-seeded
// per-point incumbent — the bench's GPT3-1T-class family resolves a
// 200-shape x 3-generation product at >= 5x the per-shape find_optimal
// throughput.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "model/shape_family.hpp"
#include "search/sweep.hpp"

namespace tfpe::search {

/// The architecture slice expand_candidates reads (every divisibility
/// constraint of enumerate_parallel plus the MoE/GQA widths and the
/// interleave depth filter), plus the GPU count — the full memoization key.
/// Two different shapes at the same scale MUST miss each other (the
/// regression test pins this; see the expand_candidates comment in
/// search.hpp for why keying on the count alone would alias them).
struct ShapeKey {
  std::int64_t seq_len = 0;
  std::int64_t embed = 0;
  std::int64_t heads = 0;
  std::int64_t depth = 0;
  std::int64_t hidden = 0;
  std::int64_t kv_heads = 0;
  std::int64_t vocab = 0;
  std::int64_t window = 0;
  std::int64_t moe_experts = 0;
  std::int64_t moe_top_k = 0;
  model::AttentionKind attention = model::AttentionKind::kFull;
  std::int64_t n_gpus = 0;

  bool operator==(const ShapeKey&) const = default;
};

ShapeKey shape_key(const model::TransformerConfig& mdl, std::int64_t n_gpus);

/// Memoized expand_candidates over (shape, GPU count), shared by every
/// grid point and shape of one co-design run. Thread-safe; a shard's mutex
/// is held across the build so each key enumerates exactly once (builds()
/// is deterministic) and readers share the immutable list.
class CandidateCache {
 public:
  /// The expanded candidate list for `mdl` at the scale find_optimal would
  /// use (opts.n_gpus when positive, else sys.n_gpus), enumerating on
  /// first use.
  std::shared_ptr<const std::vector<parallel::ParallelConfig>> get(
      const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
      const SearchOptions& opts);

  std::size_t builds() const { return builds_.load(); }
  std::size_t hits() const { return hits_.load(); }
  /// Summed size of the distinct lists built (not multiplied by reuse).
  std::size_t candidates() const { return candidates_.load(); }

 private:
  struct KeyHash {
    std::size_t operator()(const ShapeKey& k) const;
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<
        ShapeKey, std::shared_ptr<const std::vector<parallel::ParallelConfig>>,
        KeyHash>
        map;
  };
  static constexpr std::size_t kShards = 16;
  std::array<Shard, kShards> shards_;
  std::atomic<std::size_t> builds_{0};
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> candidates_{0};
};

struct CodesignOptions {
  /// Engine knobs shared with run_sweep: `sweep.search` fixes the candidate
  /// space and global batch for every shape; `sweep.batch` /
  /// `sweep.warm_start` / `sweep.threads` tune the scan; and
  /// `sweep.use_signatures = false` selects the naive arm (one find_optimal
  /// per (shape, point) — the A/B baseline and verification reference,
  /// which ignores prune_shapes and always fills the full matrix). The same
  /// restrictions as run_sweep apply: search.top_k and search.threads must
  /// stay 0.
  SweepOptions sweep;

  /// Screen whole shapes with core::shape_time_floor against the per-point
  /// cross-shape incumbent (see header). Winners are unaffected bit for
  /// bit; pruned (shape, point) entries are flagged instead of evaluated.
  /// Set false when the full exact per-shape matrix is the product wanted
  /// (e.g. tfpe-sweep --arch CSV dumps).
  bool prune_shapes = true;
};

/// Work counters for one co-design run. All except `profile` are invariant
/// to the thread count.
struct CodesignStats {
  std::size_t shapes = 0;            ///< family size
  std::size_t points = 0;            ///< hardware grid size
  /// (shape, point) pairs skipped by the architecture-level floor…
  std::size_t shapes_pruned = 0;
  /// …and pairs actually scanned (pruned + evaluated = shapes * points).
  std::size_t shapes_evaluated = 0;
  std::size_t feasible_shape_points = 0;

  /// CandidateCache builds (distinct (shape, scale) lists enumerated) /
  /// hits, and the summed size of the distinct lists.
  std::size_t enumerations = 0;
  std::size_t enumeration_hits = 0;
  std::size_t candidates = 0;

  /// Scan-level work, summed over all scanned (shape, point) pairs —
  /// same meaning as the SweepStats counters.
  std::size_t evaluated = 0;
  std::size_t bound_pruned = 0;
  std::size_t memory_pruned = 0;
  std::size_t batch_calls = 0;
  std::size_t batch_placements = 0;
  std::size_t warm_seeded = 0;
  std::size_t warm_seed_feasible = 0;
  std::size_t signature_compiles = 0;
  std::size_t signature_cache_hits = 0;
  /// Chain-held signature reuses (no cache probe) — same semantics as
  /// SweepStats::signature_reuses.
  std::size_t signature_reuses = 0;
  std::size_t signature_lowers = 0;
  std::size_t batched_cache_hits = 0;
  std::size_t build_layer_calls = 0;
  std::size_t layer_cache_hits = 0;
  std::size_t placement_sets = 0;
  std::size_t placement_cache_hits = 0;

  /// Busy seconds per stage + wall clock; schedule-dependent.
  SweepStats::StageProfile profile;
};

struct CodesignResult {
  static constexpr std::size_t kNoShape = static_cast<std::size_t>(-1);

  /// The family, echoed in enumeration order (row index of the matrices).
  std::vector<model::TransformerConfig> shapes;

  /// Per grid point: the winning shape index and its optimal
  /// configuration — the shape-order better_result reduction over the
  /// per-shape optima. shape == kNoShape when no (shape, point) pair was
  /// feasible.
  struct Winner {
    std::size_t shape = kNoShape;
    core::EvalResult best;
  };
  std::vector<Winner> best;

  /// per_shape[s][p]: find_optimal(shapes[s], points[p])'s exact result
  /// when scanned; when pruned[s][p] (architecture floor above the
  /// cross-shape incumbent) it is infeasible with the shape-pruned reason.
  std::vector<std::vector<core::EvalResult>> per_shape;
  std::vector<std::vector<std::uint8_t>> pruned;

  CodesignStats stats;
};

/// Co-design search of `shapes` x `points`. Throws std::invalid_argument
/// when opts.sweep.search.top_k or .threads is nonzero (same contract as
/// run_sweep).
CodesignResult run_codesign(const std::vector<model::TransformerConfig>& shapes,
                            const std::vector<hw::SystemConfig>& points,
                            const CodesignOptions& opts);

}  // namespace tfpe::search
