#pragma once
// Sweep-plan lint: static soundness checks on a sweep BEFORE it runs.
//
//   sweep-options     run_sweep's loudly-rejected knobs (search.top_k,
//                     search.threads) caught as diagnostics instead of a
//                     mid-sweep throw
//   sweep-cache-key   cache-key soundness, probed behaviorally: the
//                     SignatureKey/LayerKey extractors must be invariant
//                     under every placement (nvs1/nvs2/nvsp/nvsd) and
//                     interleave mutation (those enter only at timing), and
//                     must SEPARATE configs differing in a field the
//                     compiled artifact depends on — a key that collapses
//                     two such configs would serve one's signature for the
//                     other across the whole sweep
//   sweep-warm-chain  warm-start seeding chains key on (gpu.name, n_gpus);
//                     grid points sharing a chain key but differing in
//                     roofline or host link would seed from a predecessor
//                     bound against different hardware (the engine detects
//                     this and cold-starts, so a warning: the chain is
//                     misnamed, not wrong)
//
// Also merges analysis::lint_system over every grid point. Pure; the CLI
// runs it on [sweep] configs and the fuzz harness on every fuzzed plan.

#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/consistency.hpp"
#include "analysis/invariants.hpp"
#include "hw/system.hpp"
#include "model/transformer.hpp"
#include "search/search_cache.hpp"
#include "search/sweep.hpp"

namespace tfpe::search {

/// Key extractors probed by the cache-key rule. Defaults to the production
/// signature_key / layer_key; mutation tests inject corrupted extractors to
/// prove the rule fires.
struct SweepLintHooks {
  std::function<SignatureKey(const parallel::ParallelConfig&)> signature_key;
  std::function<LayerKey(const model::TransformerConfig&,
                         const parallel::ParallelConfig&, std::int64_t)>
      layer_key;
};

/// Lint a sweep plan: `points` is the grid, `opts` the engine options.
analysis::LintReport lint_sweep_plan(
    const model::TransformerConfig& mdl,
    const std::vector<hw::SystemConfig>& points, const SweepOptions& opts,
    const analysis::LintOptions& lint_opts = {},
    const SweepLintHooks* hooks = nullptr);

}  // namespace tfpe::search
