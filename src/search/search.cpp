#include "search/search.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>

#include "core/lower_bounds.hpp"
#include "parallel/layer_builder.hpp"
#include "search/search_cache.hpp"
#include "util/thread_pool.hpp"

namespace tfpe::search {

bool better_result(const core::EvalResult& a, const core::EvalResult& b) {
  if (!a.feasible) return false;
  if (!b.feasible) return true;
  if (a.iteration() != b.iteration()) return a.iteration() < b.iteration();
  return a.mem.total() < b.mem.total();
}

void pack_placement(parallel::ParallelConfig& cfg, std::int64_t nvs_domain) {
  auto largest_divisor_leq = [](std::int64_t n, std::int64_t cap) {
    std::int64_t best = 1;
    for (std::int64_t d = 1; d * d <= n; ++d) {
      if (n % d) continue;
      if (d <= cap) best = std::max(best, d);
      if (n / d <= cap) best = std::max(best, n / d);
    }
    return best;
  };
  std::int64_t budget = nvs_domain;
  cfg.nvs1 = largest_divisor_leq(cfg.n1, budget);
  budget /= cfg.nvs1;
  cfg.nvs2 = largest_divisor_leq(cfg.n2, budget);
  budget /= cfg.nvs2;
  cfg.nvsp = largest_divisor_leq(cfg.np, budget);
  budget /= cfg.nvsp;
  cfg.nvsd = largest_divisor_leq(cfg.nd, budget);
}

core::EvalResult scan_placements_signature(
    const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
    parallel::ParallelConfig cfg, std::int64_t global_batch,
    const core::CostSignature& sig, const core::SystemTiming& base,
    const std::vector<std::array<std::int64_t, 4>>& placements,
    const core::EvalOptions& eval, std::size_t& evals,
    bool stop_after_infeasible) {
  if (placements.empty()) {
    core::EvalResult best;
    best.cfg = cfg;
    best.reason = "no valid placement";
    return best;
  }
  const auto apply = [&](std::size_t idx) {
    cfg.nvs1 = placements[idx][0];
    cfg.nvs2 = placements[idx][1];
    cfg.nvsp = placements[idx][2];
    cfg.nvsd = placements[idx][3];
  };

  // Feasibility is placement-invariant over an enumerate_placements list:
  // every tuple satisfies the nvs divisibility + domain constraints by
  // construction, and the remaining checks (validity, HBM capacity) do not
  // read the placement fields. So decide it once. When infeasible, the
  // reference scan keeps the first placement's result under
  // stop_after_infeasible and the last one's otherwise — reproduce that.
  apply(0);
  const bool invalid = cfg.invalid_reason(mdl, sys, global_batch).has_value();
  const bool over_capacity =
      !invalid && sig.mem.total() > sys.gpu.hbm_capacity;
  if (invalid || over_capacity) {
    evals += stop_after_infeasible ? 1 : placements.size();
    apply(stop_after_infeasible ? 0 : placements.size() - 1);
    return core::time_signature(sig, base, mdl, sys, cfg, global_batch, eval);
  }

  // All placements feasible: argmin of the breakdown total, first index
  // winning ties — exactly better_result's ordering when time and memory
  // (placement-invariant) are equal. Only the winner is materialized into
  // a full EvalResult.
  std::size_t best_idx = 0;
  double best_total = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < placements.size(); ++i) {
    apply(i);
    const core::PlacementTiming pt =
        core::time_placement(sig, base, sys, cfg, eval);
    ++evals;
    const double total = pt.time.total();
    if (total < best_total) {
      best_total = total;
      best_idx = i;
    }
  }
  apply(best_idx);
  return core::time_signature(sig, base, mdl, sys, cfg, global_batch, eval);
}

core::EvalResult scan_placements_batch(
    const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
    parallel::ParallelConfig cfg, std::int64_t global_batch,
    const core::CostSignature& sig, const core::BatchedSignature& bat,
    const core::SystemTiming& base,
    const std::vector<std::array<std::int64_t, 4>>& placements,
    const core::EvalOptions& eval, std::size_t& evals,
    bool stop_after_infeasible, core::BatchScratch& scratch,
    std::vector<core::PlacementTiming>& timings,
    const comm::FabricPricer* pricer, bool prevalidated) {
  timings.clear();
  if (placements.empty()) {
    core::EvalResult best;
    best.cfg = cfg;
    best.reason = "no valid placement";
    return best;
  }
  const auto apply = [&](std::size_t idx) {
    cfg.nvs1 = placements[idx][0];
    cfg.nvs2 = placements[idx][1];
    cfg.nvsp = placements[idx][2];
    cfg.nvsd = placements[idx][3];
  };

  // Same placement-invariant feasibility shortcut (and eval accounting) as
  // the scalar scan — the batch kernel never runs for a doomed candidate.
  // A prevalidated caller has already decided both verdicts (valid, fits),
  // so the probe — the only reader of base.fabric on this path — is
  // skipped, not merely predicted false.
  if (!prevalidated) {
    apply(0);
    const bool invalid =
        cfg.invalid_reason(mdl, sys, global_batch).has_value();
    const bool over_capacity =
        !invalid && sig.mem.total() > sys.gpu.hbm_capacity;
    if (invalid || over_capacity) {
      evals += stop_after_infeasible ? 1 : placements.size();
      apply(stop_after_infeasible ? 0 : placements.size() - 1);
      return core::time_signature(sig, base, mdl, sys, cfg, global_batch,
                                  eval);
    }
  }

  core::time_placements_batch(sig, bat, base, sys, cfg, placements, eval,
                              timings, &scratch, pricer);
  evals += placements.size();

  // The batched timings are bitwise equal to the scalar per-placement ones,
  // so this argmin (first index winning ties) lands on the exact candidate
  // scan_placements_signature would pick.
  std::size_t best_idx = 0;
  double best_total = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const double total = timings[i].time.total();
    if (total < best_total) {
      best_total = total;
      best_idx = i;
    }
  }
  apply(best_idx);

  // The winner's timing already holds every field time_signature would
  // recompute (validity and capacity were decided above, and
  // time_placement is pure), so materialize the EvalResult from it
  // directly instead of re-timing the placement.
  core::EvalResult res;
  res.cfg = cfg;
  const core::PlacementTiming& pt = timings[best_idx];
  res.t_fwd_micro = pt.t_fwd_stage.value();
  res.t_bwd_micro = pt.t_bwd_stage.value();
  res.time = pt.time;
  res.mem = sig.mem;
  res.feasible = true;
  return res;
}

namespace {

/// Single-phase variant of scan_placements_signature, used by the
/// exhaustive reference engine (one full evaluate_with_layer per
/// placement). Kept deliberately on the legacy path so the pruned/
/// exhaustive equivalence tests compare the two-phase pipeline against an
/// independent evaluation, not against itself.
core::EvalResult scan_placements(
    const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
    parallel::ParallelConfig cfg, std::int64_t global_batch,
    const parallel::LayerCost& layer,
    const std::vector<std::array<std::int64_t, 4>>& placements,
    const core::EvalOptions& eval, std::size_t& evals,
    bool stop_after_infeasible) {
  core::EvalResult best;
  best.cfg = cfg;
  best.reason = "no valid placement";
  for (const auto& pl : placements) {
    cfg.nvs1 = pl[0];
    cfg.nvs2 = pl[1];
    cfg.nvsp = pl[2];
    cfg.nvsd = pl[3];
    core::EvalResult r =
        core::evaluate_with_layer(mdl, sys, cfg, global_batch, layer, eval);
    ++evals;
    if (better_result(r, best)) best = r;
    if (!r.feasible) {
      if (!best.feasible) best = r;  // keep a concrete reason
      if (stop_after_infeasible) break;
    }
  }
  return best;
}

}  // namespace

// Expands the enumerated parallelizations by the extension axes
// (interleave chunks, ZeRO stage, ring attention).
std::vector<parallel::ParallelConfig> expand_candidates(
    const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
    const SearchOptions& opts) {
  const auto base_configs = enumerate_parallel(mdl, sys, opts);
  std::vector<std::int64_t> interleaves = opts.interleave_candidates;
  if (interleaves.empty()) interleaves = {1};
  std::vector<parallel::ParallelConfig> configs;
  configs.reserve(base_configs.size() * interleaves.size() *
                  (opts.allow_zero3 ? 2 : 1));
  for (const auto& base : base_configs) {
    for (std::int64_t v : interleaves) {
      if (v > 1 && (base.np <= 1 || (mdl.depth / base.np) % v != 0)) continue;
      parallel::ParallelConfig cfg = base;
      cfg.interleave = v;
      const bool ring_ok = opts.allow_ring_attention && cfg.n2 > 1 &&
                           mdl.attention != model::AttentionKind::kLinear;
      for (int ring = 0; ring <= (ring_ok ? 1 : 0); ++ring) {
        cfg.ring_attention = ring != 0;
        configs.push_back(cfg);
        if (opts.allow_zero3) {
          cfg.zero = parallel::ZeroStage::kWeights;
          configs.push_back(cfg);
          cfg.zero = parallel::ZeroStage::kOptimizer;
        }
      }
    }
  }
  return configs;
}

namespace {

void atomic_min(std::atomic<double>& target, double value) {
  double cur = target.load();
  while (value < cur && !target.compare_exchange_weak(cur, value)) {
  }
}

/// Per-candidate results of one sweep over the configuration space.
struct SweepState {
  std::vector<parallel::ParallelConfig> configs;
  std::vector<core::EvalResult> best_per_config;
  std::vector<std::size_t> evals_per_config;
  SearchStats stats;
};

/// Evaluate the candidate space. With opts.prune, uses the memoization
/// caches and the memory-floor rejection; `use_incumbent` additionally
/// enables the branch-and-bound incumbent (disabled when every feasible
/// candidate must survive, i.e. top-k ranking and Pareto frontiers).
SweepState sweep(const model::TransformerConfig& mdl,
                 const hw::SystemConfig& sys, const SearchOptions& opts,
                 bool use_incumbent) {
  SweepState st;
  st.configs = expand_candidates(mdl, sys, opts);
  const std::size_t n = st.configs.size();
  st.best_per_config.resize(n);
  st.evals_per_config.assign(n, 0);
  st.stats.candidates = n;
  if (n == 0) return st;

  const std::int64_t b = opts.global_batch;
  util::ThreadPool pool(opts.threads);

  if (!opts.prune) {
    // Exhaustive brute force (the seed engine): one op list per candidate,
    // one placement enumeration per candidate, no rejection.
    util::parallel_for_dynamic(pool, n, [&](std::size_t i) {
      parallel::ParallelConfig cfg = st.configs[i];
      if (opts.search_placement) {
        const parallel::LayerCost layer =
            parallel::build_layer(mdl, cfg, cfg.local_microbatch(b));
        st.best_per_config[i] = scan_placements(
            mdl, sys, cfg, b, layer, enumerate_placements(cfg, sys.nvs_domain),
            opts.eval, st.evals_per_config[i], /*stop_after_infeasible=*/false);
      } else {
        pack_placement(cfg, sys.nvs_domain);
        st.best_per_config[i] = core::evaluate(mdl, sys, cfg, b, opts.eval);
        st.evals_per_config[i] = 1;
      }
    });
    st.stats.build_layer_calls = n;
    st.stats.placement_sets = opts.search_placement ? n : 0;
    return st;
  }

  LayerCostCache layer_cache;
  PlacementCache placement_cache;
  SignatureCache signature_cache;
  enum : std::uint8_t { kPending, kInvalid, kMemPruned, kBoundPruned };
  std::vector<std::uint8_t> state(n, kPending);
  std::vector<double> lb(n, 0.0);

  // Phase 1: divisibility checks and analytic bounds — no op lists built.
  util::parallel_for_dynamic(
      pool, n,
      [&](std::size_t i) {
        const parallel::ParallelConfig& cfg = st.configs[i];
        core::EvalResult& slot = st.best_per_config[i];
        slot.cfg = cfg;
        if (auto why = cfg.invalid_reason(mdl, sys, b)) {
          slot.reason = *why;
          state[i] = kInvalid;
          return;
        }
        const core::SearchBounds bounds =
            core::search_bounds(mdl, sys, cfg, b, opts.eval);
        if (Bytes(bounds.memory_floor) > sys.gpu.hbm_capacity) {
          slot.reason = "exceeds HBM capacity";
          state[i] = kMemPruned;
          return;
        }
        lb[i] = bounds.time_floor;
      },
      /*grain=*/64);
  for (std::size_t i = 0; i < n; ++i) {
    if (state[i] == kMemPruned) ++st.stats.memory_pruned;
  }

  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (state[i] == kPending) order.push_back(i);
  }
  // Cheapest bound first, so early rounds likely contain the optimum and
  // the incumbent tightens as fast as possible.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t c) {
    return lb[a] != lb[c] ? lb[a] < lb[c] : a < c;
  });

  std::atomic<double> incumbent{std::numeric_limits<double>::infinity()};
  std::atomic<std::size_t> racy_pruned{0};

  // The pruned engine evaluates through the two-phase pipeline: compile the
  // candidate once (shared across the interleave axis via the signature
  // cache), bind the system once, then re-time per placement — the
  // placement scan re-does only the collective/pipeline/DP terms instead of
  // the whole op-list roofline.
  auto evaluate_candidate = [&](std::size_t i) {
    parallel::ParallelConfig cfg = st.configs[i];
    const auto sig = signature_cache.get(mdl, cfg, b, opts.eval, layer_cache);
    const core::SystemTiming base = core::bind_system(*sig, sys, opts.eval);
    core::EvalResult r;
    if (opts.search_placement) {
      const auto placements = placement_cache.get(cfg, sys.nvs_domain);
      r = scan_placements_signature(mdl, sys, cfg, b, *sig, base, *placements,
                                    opts.eval, st.evals_per_config[i],
                                    /*stop_after_infeasible=*/true);
    } else {
      pack_placement(cfg, sys.nvs_domain);
      r = core::time_signature(*sig, base, mdl, sys, cfg, b, opts.eval);
      st.evals_per_config[i] = 1;
    }
    if (r.feasible) atomic_min(incumbent, r.iteration());
    st.best_per_config[i] = std::move(r);
  };

  if (!use_incumbent) {
    util::parallel_for_dynamic(pool, order.size(), [&](std::size_t j) {
      evaluate_candidate(order[j]);
    });
  } else {
    // Branch-and-bound rounds: evaluate round_size candidates, re-read the
    // incumbent at the barrier, and cut off the sorted suffix whose lower
    // bound it beats. The incumbent after a barrier is a min over a
    // completed set of evaluations, so with opts.deterministic the pruning
    // decisions — and all counters — are independent of the thread count.
    // A pruned candidate satisfies time >= lb > incumbent >= optimum, so
    // it can change neither the optimum nor its memory tie-break.
    const std::size_t round_size = std::max<std::size_t>(1, opts.round_size);
    std::size_t pos = 0;
    std::size_t active_end = order.size();
    while (pos < active_end) {
      const double t_best = incumbent.load();
      const auto cut = std::upper_bound(
          order.begin() + static_cast<std::ptrdiff_t>(pos),
          order.begin() + static_cast<std::ptrdiff_t>(active_end), t_best,
          [&](double t, std::size_t idx) { return t < lb[idx]; });
      const std::size_t new_end =
          static_cast<std::size_t>(cut - order.begin());
      for (std::size_t j = new_end; j < active_end; ++j) {
        state[order[j]] = kBoundPruned;
        st.best_per_config[order[j]].reason =
            "pruned: lower bound above incumbent";
        ++st.stats.bound_pruned;
      }
      active_end = new_end;
      if (pos >= active_end) break;

      const std::size_t round_end = std::min(pos + round_size, active_end);
      const double round_min_lb = lb[order[pos]];
      std::function<bool()> stop;
      if (!opts.deterministic) {
        stop = [&incumbent, round_min_lb] {
          return incumbent.load() < round_min_lb;
        };
      }
      util::parallel_for_dynamic(
          pool, round_end - pos,
          [&, pos](std::size_t j) {
            const std::size_t i = order[pos + j];
            if (!opts.deterministic && lb[i] > incumbent.load()) {
              state[i] = kBoundPruned;
              st.best_per_config[i].reason =
                  "pruned: lower bound above incumbent";
              racy_pruned.fetch_add(1, std::memory_order_relaxed);
              return;
            }
            evaluate_candidate(i);
          },
          /*grain=*/1, stop);
      if (!opts.deterministic) {
        // A stopped round leaves an unexecuted tail; every such candidate
        // was abandoned because the incumbent beat the round's minimum
        // bound, so it is bound-pruned, not skipped.
        for (std::size_t j = pos; j < round_end; ++j) {
          const std::size_t i = order[j];
          if (state[i] == kPending && st.evals_per_config[i] == 0 &&
              !st.best_per_config[i].feasible &&
              st.best_per_config[i].reason.empty()) {
            state[i] = kBoundPruned;
            st.best_per_config[i].reason =
                "pruned: lower bound above incumbent";
            racy_pruned.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      pos = round_end;
      ++st.stats.rounds;
    }
    st.stats.bound_pruned += racy_pruned.load();
  }

  st.stats.build_layer_calls = layer_cache.builds();
  st.stats.layer_cache_hits = layer_cache.hits();
  st.stats.placement_sets = placement_cache.builds();
  st.stats.placement_cache_hits = placement_cache.hits();
  st.stats.signature_compiles = signature_cache.compiles();
  st.stats.signature_cache_hits = signature_cache.hits();
  return st;
}

/// Feasible candidate indices sorted best-first (time, then memory, then
/// index for a deterministic order on exact ties).
std::vector<std::size_t> feasible_by_rank(const SweepState& st) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < st.best_per_config.size(); ++i) {
    if (st.best_per_config[i].feasible) idx.push_back(i);
  }
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t c) {
    const core::EvalResult& ra = st.best_per_config[a];
    const core::EvalResult& rc = st.best_per_config[c];
    if (ra.iteration() != rc.iteration()) {
      return ra.iteration() < rc.iteration();
    }
    if (ra.mem.total() != rc.mem.total()) {
      return ra.mem.total() < rc.mem.total();
    }
    return a < c;
  });
  return idx;
}

}  // namespace

core::EvalResult best_placement(const model::TransformerConfig& mdl,
                                const hw::SystemConfig& sys,
                                parallel::ParallelConfig cfg,
                                std::int64_t global_batch,
                                const core::EvalOptions& eval) {
  core::EvalResult best;
  best.cfg = cfg;
  best.reason = "no valid placement";
  // Divisibility failures are placement-independent: report them directly.
  cfg.nvs1 = cfg.nvs2 = cfg.nvsp = cfg.nvsd = 1;
  if (auto why = cfg.invalid_reason(mdl, sys, global_batch)) {
    best.reason = *why;
    return best;
  }
  // Two-phase: compile once, bind once, re-time per placement.
  const core::CostSignature sig =
      core::compile_signature(mdl, cfg, global_batch, eval);
  const core::SystemTiming base = core::bind_system(sig, sys, eval);
  std::size_t evals = 0;
  return scan_placements_signature(mdl, sys, cfg, global_batch, sig, base,
                                   enumerate_placements(cfg, sys.nvs_domain),
                                   eval, evals,
                                   /*stop_after_infeasible=*/false);
}

SearchResult find_optimal(const model::TransformerConfig& mdl,
                          const hw::SystemConfig& sys,
                          const SearchOptions& opts) {
  // Incumbent pruning discards everything provably slower than the optimum,
  // which is exactly what a top-k ranking must keep — bypass it there.
  SweepState st = sweep(mdl, sys, opts,
                        /*use_incumbent=*/opts.prune && opts.top_k == 0);

  SearchResult result;
  result.best.reason = "no feasible configuration";
  result.stats = st.stats;
  for (std::size_t i = 0; i < st.best_per_config.size(); ++i) {
    result.evaluated += st.evals_per_config[i];
    if (st.best_per_config[i].feasible) ++result.feasible;
    if (better_result(st.best_per_config[i], result.best)) {
      result.best = st.best_per_config[i];
    }
  }

  if (opts.top_k > 0) {
    std::vector<std::size_t> idx = feasible_by_rank(st);
    if (idx.size() > opts.top_k) idx.resize(opts.top_k);
    result.top.reserve(idx.size());
    for (std::size_t i : idx) {
      result.top.push_back(std::move(st.best_per_config[i]));
    }
  }
  return result;
}

std::vector<core::EvalResult> pareto_frontier(
    const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
    SearchOptions opts) {
  opts.top_k = 0;
  // Every feasible candidate must be inspected; the caches still apply.
  SweepState st = sweep(mdl, sys, opts, /*use_incumbent=*/false);
  // Walk the ranking fastest-first, keeping strictly lighter entries —
  // the frontier is streamed out of the per-candidate slots rather than
  // materializing a copy of the whole feasible set.
  std::vector<core::EvalResult> frontier;
  double best_mem = std::numeric_limits<double>::infinity();
  for (std::size_t i : feasible_by_rank(st)) {
    if (st.best_per_config[i].mem.total().value() < best_mem) {
      best_mem = st.best_per_config[i].mem.total().value();
      frontier.push_back(std::move(st.best_per_config[i]));
    }
  }
  return frontier;
}

}  // namespace tfpe::search
