#include "search/search.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "parallel/layer_builder.hpp"
#include "util/thread_pool.hpp"

namespace tfpe::search {

namespace {

/// True when `a` is strictly better: faster, or equal and lighter on HBM.
bool better(const core::EvalResult& a, const core::EvalResult& b) {
  if (!a.feasible) return false;
  if (!b.feasible) return true;
  if (a.iteration() != b.iteration()) return a.iteration() < b.iteration();
  return a.mem.total() < b.mem.total();
}

/// Greedy packing of the fast domain when placement search is disabled:
/// give NVS GPUs to TP1 first, then TP2, PP, DP.
void pack_placement(parallel::ParallelConfig& cfg, std::int64_t nvs_domain) {
  auto largest_divisor_leq = [](std::int64_t n, std::int64_t cap) {
    std::int64_t best = 1;
    for (std::int64_t d = 1; d * d <= n; ++d) {
      if (n % d) continue;
      if (d <= cap) best = std::max(best, d);
      if (n / d <= cap) best = std::max(best, n / d);
    }
    return best;
  };
  std::int64_t budget = nvs_domain;
  cfg.nvs1 = largest_divisor_leq(cfg.n1, budget);
  budget /= cfg.nvs1;
  cfg.nvs2 = largest_divisor_leq(cfg.n2, budget);
  budget /= cfg.nvs2;
  cfg.nvsp = largest_divisor_leq(cfg.np, budget);
  budget /= cfg.nvsp;
  cfg.nvsd = largest_divisor_leq(cfg.nd, budget);
}

}  // namespace

core::EvalResult best_placement(const model::TransformerConfig& mdl,
                                const hw::SystemConfig& sys,
                                parallel::ParallelConfig cfg,
                                std::int64_t global_batch,
                                const core::EvalOptions& eval) {
  core::EvalResult best;
  best.cfg = cfg;
  best.reason = "no valid placement";
  // Divisibility failures are placement-independent: report them directly.
  cfg.nvs1 = cfg.nvs2 = cfg.nvsp = cfg.nvsd = 1;
  if (auto why = cfg.invalid_reason(mdl, sys, global_batch)) {
    best.reason = *why;
    return best;
  }
  const parallel::LayerCost layer =
      parallel::build_layer(mdl, cfg, cfg.local_microbatch(global_batch));
  for (const auto& pl : enumerate_placements(cfg, sys.nvs_domain)) {
    cfg.nvs1 = pl[0];
    cfg.nvs2 = pl[1];
    cfg.nvsp = pl[2];
    cfg.nvsd = pl[3];
    core::EvalResult r =
        core::evaluate_with_layer(mdl, sys, cfg, global_batch, layer, eval);
    if (better(r, best)) best = r;
    if (!r.feasible && !best.feasible) best = r;  // keep a concrete reason
  }
  return best;
}

SearchResult find_optimal(const model::TransformerConfig& mdl,
                          const hw::SystemConfig& sys,
                          const SearchOptions& opts) {
  const std::int64_t b = opts.global_batch;
  const auto base_configs = enumerate_parallel(mdl, sys, opts);

  // Expand by the extension axes (interleave chunks, ZeRO stage).
  std::vector<parallel::ParallelConfig> configs;
  std::vector<std::int64_t> interleaves = opts.interleave_candidates;
  if (interleaves.empty()) interleaves = {1};
  configs.reserve(base_configs.size() * interleaves.size() *
                  (opts.allow_zero3 ? 2 : 1));
  for (const auto& base : base_configs) {
    for (std::int64_t v : interleaves) {
      if (v > 1 && (base.np <= 1 || (mdl.depth / base.np) % v != 0)) continue;
      parallel::ParallelConfig cfg = base;
      cfg.interleave = v;
      const bool ring_ok = opts.allow_ring_attention && cfg.n2 > 1 &&
                           mdl.attention != model::AttentionKind::kLinear;
      for (int ring = 0; ring <= (ring_ok ? 1 : 0); ++ring) {
        cfg.ring_attention = ring != 0;
        configs.push_back(cfg);
        if (opts.allow_zero3) {
          cfg.zero = parallel::ZeroStage::kWeights;
          configs.push_back(cfg);
          cfg.zero = parallel::ZeroStage::kOptimizer;
        }
      }
    }
  }

  SearchResult result;
  result.best.reason = "no feasible configuration";
  if (configs.empty()) return result;

  std::vector<core::EvalResult> best_per_config(configs.size());
  std::vector<std::size_t> evals_per_config(configs.size(), 0);

  util::ThreadPool pool(opts.threads);
  util::parallel_for_index(pool, configs.size(), [&](std::size_t i) {
    parallel::ParallelConfig cfg = configs[i];
    if (opts.search_placement) {
      const parallel::LayerCost layer =
          parallel::build_layer(mdl, cfg, cfg.local_microbatch(b));
      core::EvalResult best;
      best.cfg = cfg;
      best.reason = "no valid placement";
      std::size_t evals = 0;
      for (const auto& pl : enumerate_placements(cfg, sys.nvs_domain)) {
        cfg.nvs1 = pl[0];
        cfg.nvs2 = pl[1];
        cfg.nvsp = pl[2];
        cfg.nvsd = pl[3];
        core::EvalResult r =
            core::evaluate_with_layer(mdl, sys, cfg, b, layer, opts.eval);
        ++evals;
        if (better(r, best)) best = r;
        if (!r.feasible && !best.feasible) best = r;
      }
      best_per_config[i] = best;
      evals_per_config[i] = evals;
    } else {
      pack_placement(cfg, sys.nvs_domain);
      best_per_config[i] = core::evaluate(mdl, sys, cfg, b, opts.eval);
      evals_per_config[i] = 1;
    }
  });

  for (std::size_t i = 0; i < configs.size(); ++i) {
    result.evaluated += evals_per_config[i];
    if (best_per_config[i].feasible) ++result.feasible;
    if (better(best_per_config[i], result.best)) {
      result.best = best_per_config[i];
    }
  }

  if (opts.top_k > 0) {
    std::vector<core::EvalResult> feasible;
    for (auto& r : best_per_config) {
      if (r.feasible) feasible.push_back(std::move(r));
    }
    std::sort(feasible.begin(), feasible.end(),
              [](const core::EvalResult& a, const core::EvalResult& b2) {
                return better(a, b2);
              });
    if (feasible.size() > opts.top_k) feasible.resize(opts.top_k);
    result.top = std::move(feasible);
  }
  return result;
}

std::vector<core::EvalResult> pareto_frontier(
    const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
    SearchOptions opts) {
  opts.top_k = std::numeric_limits<std::size_t>::max();
  SearchResult all = find_optimal(mdl, sys, opts);
  // `top` is sorted fastest-first; walk it keeping strictly lighter entries.
  std::vector<core::EvalResult> frontier;
  double best_mem = std::numeric_limits<double>::infinity();
  for (auto& r : all.top) {
    if (r.mem.total() < best_mem) {
      best_mem = r.mem.total();
      frontier.push_back(std::move(r));
    }
  }
  return frontier;
}

}  // namespace tfpe::search
