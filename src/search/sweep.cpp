#include "search/sweep.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>

#include "core/lower_bounds.hpp"
#include "search/search_cache.hpp"
#include "util/thread_pool.hpp"

namespace tfpe::search {

namespace {

struct PointOutcome {
  core::EvalResult best;
  std::size_t evaluated = 0;
  std::size_t bound_pruned = 0;
  std::size_t memory_pruned = 0;
};

/// One grid point: scan the shared candidate list sequentially,
/// cheapest-lower-bound-first with a point-local incumbent. Sequential on
/// purpose — the sweep's parallelism is across points, and a sequential
/// scan both updates the incumbent after every single candidate (tighter
/// than find_optimal's round barriers) and keeps the per-point counters
/// independent of the worker count.
PointOutcome scan_point(const model::TransformerConfig& mdl,
                        const hw::SystemConfig& sys,
                        const std::vector<parallel::ParallelConfig>& configs,
                        const SweepOptions& opts, LayerCostCache& layer_cache,
                        PlacementCache& placement_cache,
                        SignatureCache& signature_cache) {
  const std::int64_t b = opts.search.global_batch;
  const core::EvalOptions& eval = opts.search.eval;
  const std::size_t n = configs.size();
  PointOutcome out;

  std::vector<core::EvalResult> results(n);
  std::vector<double> lb(n, 0.0);
  std::vector<bool> pending(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const parallel::ParallelConfig& cfg = configs[i];
    results[i].cfg = cfg;
    if (auto why = cfg.invalid_reason(mdl, sys, b)) {
      results[i].reason = *why;
      continue;
    }
    if (opts.search.prune) {
      const core::SearchBounds bounds =
          core::search_bounds(mdl, sys, cfg, b, eval);
      if (Bytes(bounds.memory_floor) > sys.gpu.hbm_capacity) {
        results[i].reason = "exceeds HBM capacity";
        ++out.memory_pruned;
        continue;
      }
      lb[i] = bounds.time_floor;
    }
    pending[i] = true;
  }

  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (pending[i]) order.push_back(i);
  }
  if (opts.search.prune) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t c) {
      return lb[a] != lb[c] ? lb[a] < lb[c] : a < c;
    });
  }

  double incumbent = std::numeric_limits<double>::infinity();
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const std::size_t i = order[pos];
    if (opts.search.prune && lb[i] > incumbent) {
      // The order is lb-sorted: everything from here on is provably slower
      // than an achieved time (and a pruned candidate cannot tie, so the
      // index-order reduction below still picks find_optimal's answer).
      for (std::size_t j = pos; j < order.size(); ++j) {
        results[order[j]].reason = "pruned: lower bound above incumbent";
        ++out.bound_pruned;
      }
      break;
    }
    parallel::ParallelConfig cfg = configs[i];
    const auto sig = signature_cache.get(mdl, cfg, b, eval, layer_cache);
    const core::SystemTiming base = core::bind_system(*sig, sys, eval);
    core::EvalResult r;
    if (opts.search.search_placement) {
      const auto placements = placement_cache.get(cfg, sys.nvs_domain);
      std::size_t evals = 0;
      r = scan_placements_signature(mdl, sys, cfg, b, *sig, base, *placements,
                                    eval, evals,
                                    /*stop_after_infeasible=*/opts.search.prune);
      out.evaluated += evals;
    } else {
      pack_placement(cfg, sys.nvs_domain);
      r = core::time_signature(*sig, base, mdl, sys, cfg, b, eval);
      ++out.evaluated;
    }
    if (r.feasible && r.iteration() < incumbent) incumbent = r.iteration();
    results[i] = std::move(r);
  }

  // Reduce in candidate-index order with the shared predicate — the same
  // tie-breaking walk find_optimal performs, so the two agree bitwise even
  // between equal-time configurations.
  out.best.reason = "no feasible configuration";
  for (std::size_t i = 0; i < n; ++i) {
    if (better_result(results[i], out.best)) out.best = results[i];
  }
  return out;
}

}  // namespace

SweepResult run_sweep(const model::TransformerConfig& mdl,
                      const std::vector<hw::SystemConfig>& points,
                      const SweepOptions& opts) {
  SweepResult out;
  const std::size_t n = points.size();
  out.best.resize(n);
  out.evaluated_per_point.assign(n, 0);
  out.stats.points = n;
  if (n == 0) return out;

  if (!opts.use_signatures) {
    // Legacy workflow: one independent find_optimal per grid point, its
    // worker pool getting the sweep's thread budget.
    SearchOptions per_point = opts.search;
    per_point.threads = opts.threads;
    for (std::size_t i = 0; i < n; ++i) {
      SearchResult r = find_optimal(mdl, points[i], per_point);
      out.evaluated_per_point[i] = r.evaluated;
      out.stats.candidates += r.stats.candidates;
      out.stats.evaluated += r.evaluated;
      out.stats.bound_pruned += r.stats.bound_pruned;
      out.stats.memory_pruned += r.stats.memory_pruned;
      out.stats.build_layer_calls += r.stats.build_layer_calls;
      out.stats.layer_cache_hits += r.stats.layer_cache_hits;
      out.stats.placement_sets += r.stats.placement_sets;
      out.stats.placement_cache_hits += r.stats.placement_cache_hits;
      out.stats.signature_compiles += r.stats.signature_compiles;
      out.stats.signature_cache_hits += r.stats.signature_cache_hits;
      if (r.best.feasible) ++out.stats.feasible_points;
      out.best[i] = std::move(r.best);
    }
    return out;
  }

  // Candidates depend on the system only through its GPU count: enumerate
  // once per distinct count and share the list across the grid.
  std::map<std::int64_t,
           std::shared_ptr<const std::vector<parallel::ParallelConfig>>>
      by_scale;
  std::vector<const std::vector<parallel::ParallelConfig>*> candidates(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t scale =
        opts.search.n_gpus > 0 ? opts.search.n_gpus : points[i].n_gpus;
    auto& slot = by_scale[scale];
    if (!slot) {
      slot = std::make_shared<const std::vector<parallel::ParallelConfig>>(
          expand_candidates(mdl, points[i], opts.search));
    }
    candidates[i] = slot.get();
  }
  for (const auto& [scale, list] : by_scale) {
    (void)scale;
    out.stats.candidates += list->size();
  }

  // One set of caches for the whole sweep: signatures compiled for one grid
  // point are re-timed everywhere else.
  LayerCostCache layer_cache;
  PlacementCache placement_cache;
  SignatureCache signature_cache;

  util::ThreadPool pool(opts.threads);
  std::vector<PointOutcome> outcomes(n);
  util::parallel_for_dynamic(pool, n, [&](std::size_t i) {
    outcomes[i] = scan_point(mdl, points[i], *candidates[i], opts, layer_cache,
                             placement_cache, signature_cache);
  });

  for (std::size_t i = 0; i < n; ++i) {
    out.evaluated_per_point[i] = outcomes[i].evaluated;
    out.stats.evaluated += outcomes[i].evaluated;
    out.stats.bound_pruned += outcomes[i].bound_pruned;
    out.stats.memory_pruned += outcomes[i].memory_pruned;
    if (outcomes[i].best.feasible) ++out.stats.feasible_points;
    out.best[i] = std::move(outcomes[i].best);
  }
  out.stats.build_layer_calls = layer_cache.builds();
  out.stats.layer_cache_hits = layer_cache.hits();
  out.stats.placement_sets = placement_cache.builds();
  out.stats.placement_cache_hits = placement_cache.hits();
  out.stats.signature_compiles = signature_cache.compiles();
  out.stats.signature_cache_hits = signature_cache.hits();
  return out;
}

std::vector<hw::SystemConfig> hardware_grid(
    const std::vector<hw::GpuGeneration>& gens,
    const std::vector<std::int64_t>& nvs_domains, std::int64_t n_gpus) {
  std::vector<hw::SystemConfig> grid;
  grid.reserve(gens.size() * nvs_domains.size());
  for (hw::GpuGeneration gen : gens) {
    for (std::int64_t nvs : nvs_domains) {
      grid.push_back(hw::make_system(gen, nvs, n_gpus));
    }
  }
  return grid;
}

std::vector<hw::SystemConfig> hardware_grid(
    const std::vector<hw::GpuGeneration>& gens,
    const std::vector<std::int64_t>& nvs_domains,
    const std::vector<double>& oversubscriptions, std::int64_t n_gpus,
    std::int64_t leaf_size) {
  std::vector<hw::SystemConfig> grid;
  grid.reserve(gens.size() * nvs_domains.size() * oversubscriptions.size());
  for (hw::GpuGeneration gen : gens) {
    for (std::int64_t nvs : nvs_domains) {
      for (double oversub : oversubscriptions) {
        hw::SystemConfig sys = hw::make_system(gen, nvs, n_gpus);
        if (oversub > 1.0) {
          const std::int64_t leaf =
              std::max(nvs, leaf_size - leaf_size % std::max<std::int64_t>(
                                                        nvs, 1));
          sys.fabric =
              hw::leaf_spine_topology(sys.net, nvs, leaf, n_gpus, oversub);
        }
        grid.push_back(std::move(sys));
      }
    }
  }
  return grid;
}

}  // namespace tfpe::search
