#include "search/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/lower_bounds.hpp"
#include "search/search_cache.hpp"
#include "util/thread_pool.hpp"

namespace tfpe::search {

namespace {

constexpr std::size_t kNoSeed = static_cast<std::size_t>(-1);

using Clock = std::chrono::steady_clock;

std::int64_t ns_since(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              t0)
      .count();
}

/// Candidate list of one GPU scale, enumerated lazily by the first worker
/// that needs it (call_once) so enumeration overlaps the other chains'
/// compile/timing work instead of serializing ahead of the fan-out.
struct ScaleSlot {
  std::once_flag once;
  std::vector<parallel::ParallelConfig> configs;
};

/// State shared by every chain worker of one sweep: the cross-sweep caches
/// and the stage-profile accumulators (busy nanoseconds per stage).
struct SweepShared {
  SweepShared(const model::TransformerConfig& m, const SweepOptions& o)
      : mdl(m), opts(o) {}
  const model::TransformerConfig& mdl;
  const SweepOptions& opts;
  LayerCostCache layer_cache;
  PlacementCache placement_cache;
  SignatureCache signature_cache;
  BatchedCache batched_cache;
  std::atomic<std::int64_t> enumerate_ns{0};
  std::atomic<std::int64_t> compile_ns{0};
  std::atomic<std::int64_t> time_ns{0};
};

struct PointOutcome {
  core::EvalResult best;
  /// Candidate index (into the scale's shared list) of the optimum — the
  /// warm seed handed to the next point of the chain. kNoSeed when nothing
  /// was feasible.
  std::size_t best_index = kNoSeed;
  std::size_t evaluated = 0;
  std::size_t bound_pruned = 0;
  std::size_t memory_pruned = 0;
  std::size_t batch_calls = 0;
  std::size_t batch_placements = 0;
  bool warm_seeded = false;
  bool warm_seed_feasible = false;
};

/// Per-candidate state carried across the points of one chain (fixed GPU
/// type and scale; see ChainContext).
struct ChainEntry {
  /// Hardware-invariant: the compiled signature and its SoA lowering are
  /// valid for every point of the sweep, not just the chain.
  std::shared_ptr<const core::CostSignature> sig;
  std::shared_ptr<const core::BatchedSignature> bat;
  /// Bound timing; valid when `bound`. Everything in it except `.fabric`
  /// reads only the GPU roofline, so along a chain it is restamped with the
  /// current point's fabric instead of re-bound.
  core::SystemTiming base;
  std::size_t fabric_point = kNoSeed;  ///< chain point whose fabric base has
  /// Fabric-independent half of the candidate's lower bounds; the screen
  /// finishes it with the current point's fabric.
  core::SearchBoundsBase lb_base;
  std::int64_t screen_n_gpus = -1;     ///< cluster size the verdict is for
  std::uint8_t screened = 0;           ///< 0 unknown, 1 valid, 2 invalid
  std::uint8_t bound = 0;
  std::uint8_t lb_ready = 0;
};

/// Batch-arm chain context: candidate state reused across the points of one
/// chain. The signature (and capacity verdict derived from it) never
/// changes; the bound SystemTiming changes only through the fabric; the
/// validity screen of a unit-placement candidate reads only the GPU count.
/// Each is cached with the stamp that invalidates it. The scalar arm does
/// not use the context, staying the PR-3-faithful baseline the batch
/// speedup is measured against.
struct ChainContext {
  std::vector<ChainEntry> entries;
  hw::Topology fabric;          ///< current point's fabric, resolved once
  std::size_t point = kNoSeed;  ///< ordinal of the current point
  /// Roofline identity guard: chains key on gpu.name, but with_memory /
  /// with_compute grids can reuse a name with different rates — detect that
  /// and drop the bound state (the signatures stay; they are
  /// hardware-invariant).
  hw::GpuSpec gpu;
  BytesPerSec host_bw;
};

bool same_roofline(const hw::GpuSpec& a, const hw::GpuSpec& b) {
  return a.tensor_flops.value() == b.tensor_flops.value() &&
         a.vector_flops.value() == b.vector_flops.value() &&
         a.flops_latency.value() == b.flops_latency.value() &&
         a.hbm_bandwidth.value() == b.hbm_bandwidth.value() &&
         a.hbm_capacity.value() == b.hbm_capacity.value();
}

/// One grid point: scan the shared candidate list sequentially,
/// cheapest-lower-bound-first with a point-local incumbent — optionally
/// seeded by re-timing the chain parent's optimal candidate first.
/// Sequential on purpose: the sweep's parallelism is across chains, and a
/// sequential scan both updates the incumbent after every single candidate
/// (tighter than find_optimal's round barriers) and keeps the per-point
/// counters independent of the worker count.
PointOutcome scan_point(SweepShared& sh, const hw::SystemConfig& sys,
                        const std::vector<parallel::ParallelConfig>& configs,
                        std::size_t seed_index, core::BatchScratch& scratch,
                        std::vector<core::PlacementTiming>& timings,
                        ChainContext* chain) {
  const SweepOptions& opts = sh.opts;
  const std::int64_t b = opts.search.global_batch;
  const core::EvalOptions& eval = opts.search.eval;
  const std::size_t n = configs.size();
  PointOutcome out;
  std::int64_t compile_ns = 0;
  std::int64_t time_ns = 0;
  const auto screen_t0 = Clock::now();

  if (chain) {
    chain->point = chain->point == kNoSeed ? 0 : chain->point + 1;
    chain->entries.resize(n);
    chain->fabric = sys.resolved_fabric();
    if (chain->point == 0 || !same_roofline(chain->gpu, sys.gpu) ||
        chain->host_bw.value() != sys.host_bandwidth.value()) {
      for (ChainEntry& e : chain->entries) {
        e.bound = 0;
        e.lb_ready = 0;
      }
      chain->gpu = sys.gpu;
      chain->host_bw = sys.host_bandwidth;
    }
  }

  // A result only escapes scan_point when it is feasible (better_result
  // never prefers an infeasible one, and an all-infeasible point reports
  // the fixed "no feasible configuration" reason), so the batch arm keeps
  // just the sparse list of feasible results and skips every infeasible
  // store — reasons, cfg copies, the dense vector itself. The scalar arm
  // keeps the dense PR-3 bookkeeping it is benchmarked as.
  std::vector<core::EvalResult> results(chain ? 0 : n);
  std::vector<std::pair<std::size_t, core::EvalResult>> feasible;
  std::vector<double> lb(n, 0.0);
  std::vector<char> pending(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const parallel::ParallelConfig& cfg = configs[i];
    if (!chain) results[i].cfg = cfg;
    if (chain && cfg.placement_product() == 1) {
      // A unit-placement candidate's validity reads only the cluster size,
      // so the verdict survives along the chain (stamped for safety).
      ChainEntry& e = chain->entries[i];
      if (e.screened == 0 || e.screen_n_gpus != sys.n_gpus) {
        e.screened = cfg.invalid_reason(sh.mdl, sys, b) ? 2 : 1;
        e.screen_n_gpus = sys.n_gpus;
      }
      if (e.screened == 2) continue;
    } else if (auto why = cfg.invalid_reason(sh.mdl, sys, b)) {
      if (!chain) results[i].reason = *why;
      continue;
    }
    if (chain && opts.search.search_placement) {
      // Screen-level capacity gate: a candidate compiled on an earlier
      // point of the chain whose signature already exceeds this point's
      // HBM is charged its one capacity probe right here and never enters
      // the scan order — no bounds, no placement lookup, no reduction
      // visit. (First-point candidates have no signature yet; they gate
      // inside evaluate_chain after compiling.) Classification shifts from
      // memory_pruned / bound_pruned to evaluated relative to the scalar
      // arm, but stays deterministic and thread-invariant — chains are
      // sequential — and the optima are untouched: an over-capacity
      // candidate is infeasible under every placement.
      const ChainEntry& e = chain->entries[i];
      if (e.sig && e.sig->mem.total() > sys.gpu.hbm_capacity) {
        ++out.evaluated;
        continue;
      }
    }
    if (opts.search.prune) {
      core::SearchBounds bounds;
      if (chain) {
        ChainEntry& e = chain->entries[i];
        if (!e.lb_ready) {
          e.lb_base = core::search_bounds_base(sh.mdl, sys, cfg, b, eval);
          e.lb_ready = 1;
        }
        bounds = core::finish_search_bounds(e.lb_base, sh.mdl, chain->fabric,
                                            cfg);
      } else {
        bounds = core::search_bounds(sh.mdl, sys, cfg, b, eval);
      }
      if (Bytes(bounds.memory_floor) > sys.gpu.hbm_capacity) {
        if (!chain) results[i].reason = "exceeds HBM capacity";
        ++out.memory_pruned;
        continue;
      }
      lb[i] = bounds.time_floor;
    }
    pending[i] = 1;
  }

  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (pending[i]) order.push_back(i);
  }
  if (opts.search.prune) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t c) {
      return lb[a] != lb[c] ? lb[a] < lb[c] : a < c;
    });
  }
  time_ns += ns_since(screen_t0);

  // Evaluate candidate i through the compile -> bind -> time stages,
  // returning its achieved iteration time (infinity when infeasible).
  std::vector<char> done(n, 0);

  // Batch arm: candidate state persists along the chain. A candidate is
  // compiled once, its capacity verdict decided once, and — if it ever
  // needs timing — lowered and bound once, with only the fabric restamped
  // on later points. Over-capacity candidates (the bulk of a large-model
  // grid) skip bind/lower/timing entirely: better_result never prefers an
  // infeasible result, so only the eval count must match the reference
  // scan. Gated shortcuts after the first point are too small to bracket
  // with the stage clock; the stage profile counts the heavyweight stage
  // bodies.
  const auto evaluate_chain = [&](std::size_t i) -> double {
    parallel::ParallelConfig cfg = configs[i];
    ChainEntry& e = chain->entries[i];
    if (!e.sig) {
      const auto compile_t0 = Clock::now();
      e.sig = sh.signature_cache.get(sh.mdl, cfg, b, eval, sh.layer_cache);
      compile_ns += ns_since(compile_t0);
    }
    const bool over_capacity = e.sig->mem.total() > sys.gpu.hbm_capacity;
    if (over_capacity && opts.search.search_placement) {
      // One capacity probe — the candidate's placements are never
      // enumerated, looked up, or timed, so the evaluation counters report
      // the work the batch arm actually did (the reference scans charge the
      // whole placement set in exhaustive mode; optima are unaffected
      // either way, only the bookkeeping differs).
      ++out.evaluated;
      done[i] = 1;
      return std::numeric_limits<double>::infinity();
    }
    if (!e.bound) {
      const auto compile_t0 = Clock::now();
      e.bat = sh.batched_cache.get(e.sig);
      e.base = core::bind_system_batched(*e.sig, *e.bat, sys, eval);
      e.fabric_point = chain->point;
      e.bound = 1;
      compile_ns += ns_since(compile_t0);
    } else if (e.fabric_point != chain->point) {
      e.base.fabric = chain->fabric;
      e.fabric_point = chain->point;
    }

    const auto time_t0 = Clock::now();
    core::EvalResult r;
    if (opts.search.search_placement) {
      const auto placements = sh.placement_cache.get(cfg, sys.nvs_domain);
      std::size_t evals = 0;
      r = scan_placements_batch(sh.mdl, sys, cfg, b, *e.sig, *e.bat, e.base,
                                *placements, eval, evals,
                                /*stop_after_infeasible=*/opts.search.prune,
                                scratch, timings);
      if (!timings.empty()) {
        ++out.batch_calls;
        out.batch_placements += timings.size();
      }
      out.evaluated += evals;
    } else {
      pack_placement(cfg, sys.nvs_domain);
      r = core::time_signature(*e.sig, e.base, sh.mdl, sys, cfg, b, eval);
      ++out.evaluated;
    }
    time_ns += ns_since(time_t0);
    done[i] = 1;
    if (!r.feasible) return std::numeric_limits<double>::infinity();
    const double t = r.iteration();
    feasible.emplace_back(i, std::move(r));
    return t;
  };

  const auto evaluate = [&](std::size_t i) -> double {
    if (chain) return evaluate_chain(i);
    parallel::ParallelConfig cfg = configs[i];
    const auto compile_t0 = Clock::now();
    const auto sig = sh.signature_cache.get(sh.mdl, cfg, b, eval,
                                            sh.layer_cache);
    std::shared_ptr<const core::BatchedSignature> bat;
    core::SystemTiming base;
    if (opts.batch) {
      bat = sh.batched_cache.get(sig);
      base = core::bind_system_batched(*sig, *bat, sys, eval);
    } else {
      base = core::bind_system(*sig, sys, eval);
    }
    compile_ns += ns_since(compile_t0);

    const auto time_t0 = Clock::now();
    core::EvalResult r;
    if (opts.search.search_placement) {
      const auto placements = sh.placement_cache.get(cfg, sys.nvs_domain);
      std::size_t evals = 0;
      if (opts.batch) {
        r = scan_placements_batch(sh.mdl, sys, cfg, b, *sig, *bat, base,
                                  *placements, eval, evals,
                                  /*stop_after_infeasible=*/opts.search.prune,
                                  scratch, timings);
        if (!timings.empty()) {
          ++out.batch_calls;
          out.batch_placements += timings.size();
        }
      } else {
        r = scan_placements_signature(
            sh.mdl, sys, cfg, b, *sig, base, *placements, eval, evals,
            /*stop_after_infeasible=*/opts.search.prune);
      }
      out.evaluated += evals;
    } else {
      pack_placement(cfg, sys.nvs_domain);
      r = core::time_signature(*sig, base, sh.mdl, sys, cfg, b, eval);
      ++out.evaluated;
    }
    time_ns += ns_since(time_t0);
    done[i] = 1;
    const double t = r.feasible ? r.iteration()
                                : std::numeric_limits<double>::infinity();
    results[i] = std::move(r);
    return t;
  };

  double incumbent = std::numeric_limits<double>::infinity();

  // Warm start: re-time the chain parent's optimal candidate first. Its
  // time at THIS point is an achieved iteration time, so using it as the
  // incumbent is exactly as conservative as any other achieved time — a
  // candidate pruned against it satisfies time >= lb > incumbent >= optimum
  // and can neither be nor tie the optimum. The optimum is therefore
  // bitwise-unchanged; only the pruning (and eval counts) tighten.
  if (seed_index != kNoSeed && seed_index < n && pending[seed_index]) {
    out.warm_seeded = true;
    const double t = evaluate(seed_index);
    if (t < incumbent) {
      incumbent = t;
      out.warm_seed_feasible = true;
    }
  }

  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const std::size_t i = order[pos];
    if (done[i]) continue;
    if (opts.search.prune && lb[i] > incumbent) {
      // The order is lb-sorted: everything from here on is provably slower
      // than an achieved time (and a pruned candidate cannot tie, so the
      // index-order reduction below still picks find_optimal's answer).
      for (std::size_t j = pos; j < order.size(); ++j) {
        if (done[order[j]]) continue;
        if (!chain) {
          results[order[j]].reason = "pruned: lower bound above incumbent";
        }
        ++out.bound_pruned;
      }
      break;
    }
    const double t = evaluate(i);
    if (t < incumbent) incumbent = t;
  }

  // Reduce in candidate-index order with the shared predicate — the same
  // tie-breaking walk find_optimal performs, so the two agree bitwise even
  // between equal-time configurations. The sparse list visits the same
  // feasible results in the same index order as the dense walk; the dense
  // walk's extra visits are all infeasible, which the predicate never
  // prefers.
  out.best.reason = "no feasible configuration";
  if (chain) {
    std::sort(feasible.begin(), feasible.end(),
              [](const auto& a, const auto& c) { return a.first < c.first; });
    for (const auto& [i, r] : feasible) {
      if (better_result(r, out.best)) {
        out.best = r;
        out.best_index = i;
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      if (better_result(results[i], out.best)) {
        out.best = results[i];
        out.best_index = i;
      }
    }
  }
  if (!out.best.feasible) out.best_index = kNoSeed;
  sh.compile_ns.fetch_add(compile_ns, std::memory_order_relaxed);
  sh.time_ns.fetch_add(time_ns, std::memory_order_relaxed);
  return out;
}

}  // namespace

SweepResult run_sweep(const model::TransformerConfig& mdl,
                      const std::vector<hw::SystemConfig>& points,
                      const SweepOptions& opts) {
  if (opts.search.top_k != 0) {
    throw std::invalid_argument(
        "run_sweep: search.top_k is not supported (the sweep keeps only the "
        "per-point optimum) — rank candidates with find_optimal instead");
  }
  if (opts.search.threads != 0) {
    throw std::invalid_argument(
        "run_sweep: search.threads is not supported (the sweep owns the "
        "thread budget) — set SweepOptions::threads instead");
  }

  SweepResult out;
  const std::size_t n = points.size();
  out.best.resize(n);
  out.evaluated_per_point.assign(n, 0);
  out.stats.points = n;
  if (n == 0) return out;

  if (!opts.use_signatures) {
    // Legacy workflow: one independent find_optimal per grid point, its
    // worker pool getting the sweep's thread budget.
    SearchOptions per_point = opts.search;
    per_point.threads = opts.threads;
    for (std::size_t i = 0; i < n; ++i) {
      SearchResult r = find_optimal(mdl, points[i], per_point);
      out.evaluated_per_point[i] = r.evaluated;
      out.stats.candidates += r.stats.candidates;
      out.stats.evaluated += r.evaluated;
      out.stats.bound_pruned += r.stats.bound_pruned;
      out.stats.memory_pruned += r.stats.memory_pruned;
      out.stats.build_layer_calls += r.stats.build_layer_calls;
      out.stats.layer_cache_hits += r.stats.layer_cache_hits;
      out.stats.placement_sets += r.stats.placement_sets;
      out.stats.placement_cache_hits += r.stats.placement_cache_hits;
      out.stats.signature_compiles += r.stats.signature_compiles;
      out.stats.signature_cache_hits += r.stats.signature_cache_hits;
      if (r.best.feasible) ++out.stats.feasible_points;
      out.best[i] = std::move(r.best);
    }
    return out;
  }

  // Candidates depend on the system only through its GPU count. The slots
  // are keyed up front (std::map nodes are stable, so workers may read the
  // map concurrently) but filled lazily inside the fan-out.
  std::map<std::int64_t, ScaleSlot> by_scale;
  std::vector<std::int64_t> scale_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    scale_of[i] =
        opts.search.n_gpus > 0 ? opts.search.n_gpus : points[i].n_gpus;
    (void)by_scale[scale_of[i]];
  }

  // Chains: points sharing (GPU type, scale), in input order — the axis
  // along which a hardware_grid varies only the fabric, so a parent's
  // optimal candidate is a plausible (and index-compatible, since the
  // candidate list is shared) seed for its successor.
  std::map<std::pair<std::string, std::int64_t>, std::size_t> chain_ids;
  std::vector<std::vector<std::size_t>> chains;
  for (std::size_t i = 0; i < n; ++i) {
    const auto key = std::make_pair(points[i].gpu.name, scale_of[i]);
    const auto [it, inserted] = chain_ids.try_emplace(key, chains.size());
    if (inserted) chains.emplace_back();
    chains[it->second].push_back(i);
  }

  SweepShared sh{mdl, opts};
  const auto wall_t0 = Clock::now();

  // Stream chains over the pool. Within a chain the points run in input
  // order, threading the warm seed; scratch and the timing buffer persist
  // across the whole chain so the batch kernel allocates only on growth.
  util::ThreadPool pool(opts.threads);
  std::vector<PointOutcome> outcomes(n);
  util::parallel_for_dynamic(pool, chains.size(), [&](std::size_t c) {
    core::BatchScratch scratch;
    std::vector<core::PlacementTiming> timings;
    ChainContext ctx;
    std::size_t seed = kNoSeed;
    for (const std::size_t i : chains[c]) {
      ScaleSlot& slot = by_scale.find(scale_of[i])->second;
      std::call_once(slot.once, [&] {
        const auto t0 = Clock::now();
        slot.configs = expand_candidates(mdl, points[i], opts.search);
        sh.enumerate_ns.fetch_add(ns_since(t0), std::memory_order_relaxed);
      });
      outcomes[i] = scan_point(sh, points[i], slot.configs,
                               opts.warm_start ? seed : kNoSeed, scratch,
                               timings, opts.batch ? &ctx : nullptr);
      seed = outcomes[i].best_index;
    }
  });
  out.stats.profile.wall_s = static_cast<double>(ns_since(wall_t0)) * 1e-9;

  for (const auto& [scale, slot] : by_scale) {
    (void)scale;
    out.stats.candidates += slot.configs.size();
  }
  for (std::size_t i = 0; i < n; ++i) {
    out.evaluated_per_point[i] = outcomes[i].evaluated;
    out.stats.evaluated += outcomes[i].evaluated;
    out.stats.bound_pruned += outcomes[i].bound_pruned;
    out.stats.memory_pruned += outcomes[i].memory_pruned;
    out.stats.batch_calls += outcomes[i].batch_calls;
    out.stats.batch_placements += outcomes[i].batch_placements;
    if (outcomes[i].warm_seeded) ++out.stats.warm_seeded;
    if (outcomes[i].warm_seed_feasible) ++out.stats.warm_seed_feasible;
    if (outcomes[i].best.feasible) ++out.stats.feasible_points;
    out.best[i] = std::move(outcomes[i].best);
  }
  out.stats.build_layer_calls = sh.layer_cache.builds();
  out.stats.layer_cache_hits = sh.layer_cache.hits();
  out.stats.placement_sets = sh.placement_cache.builds();
  out.stats.placement_cache_hits = sh.placement_cache.hits();
  out.stats.signature_compiles = sh.signature_cache.compiles();
  out.stats.signature_cache_hits = sh.signature_cache.hits();
  out.stats.signature_lowers = sh.batched_cache.lowers();
  out.stats.batched_cache_hits = sh.batched_cache.hits();
  out.stats.profile.enumerate_s =
      static_cast<double>(sh.enumerate_ns.load()) * 1e-9;
  out.stats.profile.compile_s =
      static_cast<double>(sh.compile_ns.load()) * 1e-9;
  out.stats.profile.time_s = static_cast<double>(sh.time_ns.load()) * 1e-9;
  return out;
}

std::vector<hw::SystemConfig> hardware_grid(
    const std::vector<hw::GpuGeneration>& gens,
    const std::vector<std::int64_t>& nvs_domains, std::int64_t n_gpus) {
  std::vector<hw::SystemConfig> grid;
  grid.reserve(gens.size() * nvs_domains.size());
  for (hw::GpuGeneration gen : gens) {
    for (std::int64_t nvs : nvs_domains) {
      grid.push_back(hw::make_system(gen, nvs, n_gpus));
    }
  }
  return grid;
}

std::vector<hw::SystemConfig> hardware_grid(
    const std::vector<hw::GpuGeneration>& gens,
    const std::vector<std::int64_t>& nvs_domains,
    const std::vector<double>& oversubscriptions, std::int64_t n_gpus,
    std::int64_t leaf_size) {
  std::vector<hw::SystemConfig> grid;
  grid.reserve(gens.size() * nvs_domains.size() * oversubscriptions.size());
  for (hw::GpuGeneration gen : gens) {
    for (std::int64_t nvs : nvs_domains) {
      for (double oversub : oversubscriptions) {
        hw::SystemConfig sys = hw::make_system(gen, nvs, n_gpus);
        if (oversub > 1.0) {
          const std::int64_t leaf =
              std::max(nvs, leaf_size - leaf_size % std::max<std::int64_t>(
                                                        nvs, 1));
          sys.fabric =
              hw::leaf_spine_topology(sys.net, nvs, leaf, n_gpus, oversub);
        }
        grid.push_back(std::move(sys));
      }
    }
  }
  return grid;
}

}  // namespace tfpe::search
