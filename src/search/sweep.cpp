#include "search/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "search/point_scan.hpp"
#include "search/search_cache.hpp"
#include "util/object_pool.hpp"
#include "util/thread_pool.hpp"

namespace tfpe::search {

namespace {

using Clock = std::chrono::steady_clock;

/// Candidate list of one GPU scale, enumerated lazily by the first worker
/// that needs it (call_once) so enumeration overlaps the other chains'
/// compile/timing work instead of serializing ahead of the fan-out.
struct ScaleSlot {
  std::once_flag once;
  std::vector<parallel::ParallelConfig> configs;
};

/// Cache + stage-clock storage for one sweep; scan_point reaches it through
/// the non-owning ScanShared view (search/point_scan.hpp).
struct SweepShared {
  LayerCostCache layer_cache;
  PlacementCache placement_cache;
  SignatureCache signature_cache;
  BatchedCache batched_cache;
  std::atomic<std::int64_t> enumerate_ns{0};
  std::atomic<std::int64_t> compile_ns{0};
  std::atomic<std::int64_t> time_ns{0};
};

}  // namespace

SweepResult run_sweep(const model::TransformerConfig& mdl,
                      const std::vector<hw::SystemConfig>& points,
                      const SweepOptions& opts) {
  if (opts.search.top_k != 0) {
    throw std::invalid_argument(
        "run_sweep: search.top_k is not supported (the sweep keeps only the "
        "per-point optimum) — rank candidates with find_optimal instead");
  }
  if (opts.search.threads != 0) {
    throw std::invalid_argument(
        "run_sweep: search.threads is not supported (the sweep owns the "
        "thread budget) — set SweepOptions::threads instead");
  }

  SweepResult out;
  const std::size_t n = points.size();
  out.best.resize(n);
  out.evaluated_per_point.assign(n, 0);
  out.stats.points = n;
  if (n == 0) return out;

  if (!opts.use_signatures) {
    // Legacy workflow: one independent find_optimal per grid point, its
    // worker pool getting the sweep's thread budget.
    SearchOptions per_point = opts.search;
    per_point.threads = opts.threads;
    for (std::size_t i = 0; i < n; ++i) {
      SearchResult r = find_optimal(mdl, points[i], per_point);
      out.evaluated_per_point[i] = r.evaluated;
      out.stats.candidates += r.stats.candidates;
      out.stats.evaluated += r.evaluated;
      out.stats.bound_pruned += r.stats.bound_pruned;
      out.stats.memory_pruned += r.stats.memory_pruned;
      out.stats.build_layer_calls += r.stats.build_layer_calls;
      out.stats.layer_cache_hits += r.stats.layer_cache_hits;
      out.stats.placement_sets += r.stats.placement_sets;
      out.stats.placement_cache_hits += r.stats.placement_cache_hits;
      out.stats.signature_compiles += r.stats.signature_compiles;
      out.stats.signature_cache_hits += r.stats.signature_cache_hits;
      if (r.best.feasible) ++out.stats.feasible_points;
      out.best[i] = std::move(r.best);
    }
    return out;
  }

  // Candidates depend on the system only through the model shape and the
  // GPU count (never the GPU type or NVS domain), and the model is fixed
  // across this sweep — so one list per distinct scale. The slots are keyed
  // up front (std::map nodes are stable, so workers may read the map
  // concurrently) but filled lazily inside the fan-out.
  std::map<std::int64_t, ScaleSlot> by_scale;
  std::vector<std::int64_t> scale_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    scale_of[i] =
        opts.search.n_gpus > 0 ? opts.search.n_gpus : points[i].n_gpus;
    (void)by_scale[scale_of[i]];
  }

  // Chains: points sharing (GPU type, scale), in input order — the axis
  // along which a hardware_grid varies only the fabric, so a parent's
  // optimal candidate is a plausible (and index-compatible, since the
  // candidate list is shared) seed for its successor.
  std::map<std::pair<std::string, std::int64_t>, std::size_t> chain_ids;
  std::vector<std::vector<std::size_t>> chains;
  for (std::size_t i = 0; i < n; ++i) {
    const auto key = std::make_pair(points[i].gpu.name, scale_of[i]);
    const auto [it, inserted] = chain_ids.try_emplace(key, chains.size());
    if (inserted) chains.emplace_back();
    chains[it->second].push_back(i);
  }

  SweepShared sh;
  const ScanShared scan{mdl,
                        opts,
                        sh.layer_cache,
                        sh.placement_cache,
                        sh.signature_cache,
                        sh.batched_cache,
                        sh.compile_ns,
                        sh.time_ns};
  const auto wall_t0 = Clock::now();

  // Stream chains over the workers. Within a chain the points run in input
  // order, threading the warm seed; the leased ScanScratch persists across
  // the whole chain (and, through the pool, across chains) so the batch
  // kernel and the per-point bookkeeping allocate only on growth. The
  // ChainContext stays chain-local on purpose: its per-candidate entries
  // are indexed into THIS chain's candidate list and must not leak into
  // the next one.
  util::ObjectPool<ScanScratch> scratch_pool;
  std::vector<PointOutcome> outcomes(n);
  const auto run_chain = [&](std::size_t c) {
    util::ObjectPool<ScanScratch>::Lease scratch = scratch_pool.acquire();
    ChainContext ctx;
    std::size_t seed = kNoSeed;
    for (const std::size_t i : chains[c]) {
      ScaleSlot& slot = by_scale.find(scale_of[i])->second;
      std::call_once(slot.once, [&] {
        const auto t0 = Clock::now();
        slot.configs = expand_candidates(mdl, points[i], opts.search);
        sh.enumerate_ns.fetch_add(ns_since(t0), std::memory_order_relaxed);
      });
      outcomes[i] = scan_point(scan, points[i], slot.configs,
                               opts.warm_start ? seed : kNoSeed, *scratch,
                               opts.batch ? &ctx : nullptr);
      seed = outcomes[i].best_index;
    }
  };
  // One worker (or one chain) runs inline: spawning a pool to feed a
  // single consumer costs more than a small sweep's whole scan, and the
  // counters are thread-invariant either way.
  const unsigned workers =
      opts.threads != 0 ? opts.threads
                        : std::max(1u, std::thread::hardware_concurrency());
  if (workers <= 1 || chains.size() <= 1) {
    for (std::size_t c = 0; c < chains.size(); ++c) run_chain(c);
  } else {
    util::ThreadPool pool(opts.threads);
    util::parallel_for_dynamic(pool, chains.size(), run_chain);
  }
  out.stats.profile.wall_s = static_cast<double>(ns_since(wall_t0)) * 1e-9;

  for (const auto& [scale, slot] : by_scale) {
    (void)scale;
    out.stats.candidates += slot.configs.size();
  }
  for (std::size_t i = 0; i < n; ++i) {
    out.evaluated_per_point[i] = outcomes[i].evaluated;
    out.stats.evaluated += outcomes[i].evaluated;
    out.stats.bound_pruned += outcomes[i].bound_pruned;
    out.stats.memory_pruned += outcomes[i].memory_pruned;
    out.stats.batch_calls += outcomes[i].batch_calls;
    out.stats.batch_placements += outcomes[i].batch_placements;
    out.stats.signature_reuses += outcomes[i].signature_reuses;
    if (outcomes[i].warm_seeded) ++out.stats.warm_seeded;
    if (outcomes[i].warm_seed_feasible) ++out.stats.warm_seed_feasible;
    if (outcomes[i].best.feasible) ++out.stats.feasible_points;
    out.best[i] = std::move(outcomes[i].best);
  }
  out.stats.build_layer_calls = sh.layer_cache.builds();
  out.stats.layer_cache_hits = sh.layer_cache.hits();
  out.stats.placement_sets = sh.placement_cache.builds();
  out.stats.placement_cache_hits = sh.placement_cache.hits();
  out.stats.signature_compiles = sh.signature_cache.compiles();
  out.stats.signature_cache_hits = sh.signature_cache.hits();
  out.stats.signature_lowers = sh.batched_cache.lowers();
  out.stats.batched_cache_hits = sh.batched_cache.hits();
  out.stats.profile.enumerate_s =
      static_cast<double>(sh.enumerate_ns.load()) * 1e-9;
  out.stats.profile.compile_s =
      static_cast<double>(sh.compile_ns.load()) * 1e-9;
  out.stats.profile.time_s = static_cast<double>(sh.time_ns.load()) * 1e-9;
  return out;
}

std::vector<hw::SystemConfig> hardware_grid(
    const std::vector<hw::GpuGeneration>& gens,
    const std::vector<std::int64_t>& nvs_domains, std::int64_t n_gpus) {
  std::vector<hw::SystemConfig> grid;
  grid.reserve(gens.size() * nvs_domains.size());
  for (hw::GpuGeneration gen : gens) {
    for (std::int64_t nvs : nvs_domains) {
      grid.push_back(hw::make_system(gen, nvs, n_gpus));
    }
  }
  return grid;
}

std::vector<hw::SystemConfig> hardware_grid(
    const std::vector<hw::GpuGeneration>& gens,
    const std::vector<std::int64_t>& nvs_domains,
    const std::vector<double>& oversubscriptions, std::int64_t n_gpus,
    std::int64_t leaf_size) {
  std::vector<hw::SystemConfig> grid;
  grid.reserve(gens.size() * nvs_domains.size() * oversubscriptions.size());
  for (hw::GpuGeneration gen : gens) {
    for (std::int64_t nvs : nvs_domains) {
      for (double oversub : oversubscriptions) {
        hw::SystemConfig sys = hw::make_system(gen, nvs, n_gpus);
        if (oversub > 1.0) {
          const std::int64_t leaf =
              std::max(nvs, leaf_size - leaf_size % std::max<std::int64_t>(
                                                        nvs, 1));
          sys.fabric =
              hw::leaf_spine_topology(sys.net, nvs, leaf, n_gpus, oversub);
        }
        grid.push_back(std::move(sys));
      }
    }
  }
  return grid;
}

}  // namespace tfpe::search
