#pragma once
// Configuration-space enumeration (paper §III S3).
//
// The space is the Cartesian product of
//   1) parallelization factorizations n = n1*n2*np*nd with microbatch count
//      m and SUMMA panel count nb, filtered by divisibility constraints, and
//   2) GPU-placement assignments (nvs1, nvs2, nvsp, nvsd) of each group onto
//      the fast domain, with each nvs_i dividing n_i and the product bounded
//      by the NVS domain size.

#include <array>
#include <cstdint>
#include <vector>

#include "hw/system.hpp"
#include "model/transformer.hpp"
#include "parallel/parallel_config.hpp"

namespace tfpe::search {

struct EnumerationOptions {
  parallel::TpStrategy strategy = parallel::TpStrategy::TP1D;
  std::int64_t global_batch = 4096;
  std::int64_t n_gpus = 0;  ///< 0 -> use sys.n_gpus.

  // 0 = unconstrained; otherwise pin that factor.
  std::int64_t fixed_n1 = 0;
  std::int64_t fixed_n2 = 0;
  std::int64_t fixed_np = 0;
  std::int64_t fixed_nd = 0;
  std::int64_t fixed_m = 0;
  /// Pin b/(nd*m) (the paper's "microbatch size 1" sweeps). 0 = free.
  std::int64_t fixed_local_microbatch = 0;

  /// SUMMA panel counts to try; empty -> {1, 2, 4, 8, 16} (filtered by
  /// divisibility).
  std::vector<std::int64_t> nb_candidates;
};

/// All valid parallelization configurations (placement fields left at 1).
std::vector<parallel::ParallelConfig> enumerate_parallel(
    const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
    const EnumerationOptions& opts);

/// All non-dominated placements (nvs1, nvs2, nvsp, nvsd) for a configuration
/// on a fast domain of `nvs_domain` GPUs. A placement is dominated when
/// another placement is component-wise >=. Always contains (1,1,1,1)'s
/// dominator set; every returned placement satisfies nvs_i | n_i and
/// product <= nvs_domain.
std::vector<std::array<std::int64_t, 4>> enumerate_placements(
    const parallel::ParallelConfig& cfg, std::int64_t nvs_domain);

/// Same against a resolved fabric: the fast-domain budget is the innermost
/// level's fan-in (identical to the nvs_domain overload for the canonical
/// two-level fabric; deeper fabrics do not change the placement space,
/// only how placements are timed).
std::vector<std::array<std::int64_t, 4>> enumerate_placements(
    const parallel::ParallelConfig& cfg, const hw::Topology& fabric);

}  // namespace tfpe::search
