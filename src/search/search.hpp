#pragma once
// Optimal-configuration search (paper §III S3): find the feasible
// (parallelization x placement x panel) configuration with minimum
// iteration time.
//
// The default engine is a prune-and-memoize branch-and-bound over the
// enumerated space:
//   * cheap analytic lower bounds (core/lower_bounds.hpp) reject
//     configurations whose compute-only FLOP floor already exceeds the
//     shared incumbent (best achieved iteration time) or whose
//     placement-independent memory floor exceeds HBM, before any op list
//     is built;
//   * a concurrent LayerCost cache shares one op list across all
//     (np, nd, m) combinations with the same tensor shapes, and a
//     placement cache shares the non-dominated placement sets across the
//     interleave/ZeRO/ring expansion axes;
//   * candidates are evaluated cheapest-bound-first in fixed-size rounds
//     with dynamically scheduled workers; the incumbent is re-read at each
//     round barrier, which keeps the pruning decisions (and therefore
//     SearchResult::evaluated) independent of the thread count.
// Pruning is conservative: the returned optimum is identical — same
// configuration, same iteration time — to the exhaustive sweep's
// (SearchOptions::prune = false).

#include <cstdint>

#include "core/batched_signature.hpp"
#include "core/cost_signature.hpp"
#include "core/evaluator.hpp"
#include "search/enumerate.hpp"

namespace tfpe::search {

struct SearchOptions : EnumerationOptions {
  /// Search the NVS-domain placement of each group (S3 item 2). When false,
  /// the fast domain is packed greedily onto TP1, then TP2, PP, DP.
  bool search_placement = true;
  /// Worker threads; 0 -> hardware concurrency.
  unsigned threads = 0;

  /// Prune-and-memoize engine (default). Set false for the exhaustive
  /// brute-force sweep; the optimum is identical either way, only the work
  /// performed (SearchStats) differs. Incumbent-based pruning is
  /// automatically bypassed when top_k > 0, because near-optimal
  /// configurations must then survive to be ranked (the memory-floor
  /// rejection and both caches still apply).
  bool prune = true;

  /// When true (default), incumbent pruning decisions happen only at round
  /// barriers, making the evaluated/pruned counts — not just the optimum —
  /// invariant to the thread count. When false, workers additionally skip
  /// candidates mid-round against the live incumbent and abandon a round
  /// early once the incumbent beats every remaining lower bound: slightly
  /// faster, but the stats become schedule-dependent.
  bool deterministic = true;

  /// Candidates evaluated between incumbent re-reads in the pruned engine.
  std::size_t round_size = 64;

  /// Interleaved-pipeline chunk counts to try (extension; {1} = the paper's
  /// non-interleaved schedule).
  std::vector<std::int64_t> interleave_candidates{1};
  /// Also try ZeRO-3 weight sharding per configuration (extension).
  bool allow_zero3 = false;
  /// Also try ring attention for n2 > 1 configurations (extension).
  bool allow_ring_attention = false;
  /// Modeling extensions applied to every evaluation.
  core::EvalOptions eval;

  /// Keep the k best distinct parallelizations in SearchResult::top
  /// (0 = just the optimum).
  std::size_t top_k = 0;
};

/// Work counters for one search, for perf tracking and the pruned-vs-
/// exhaustive A/B benches.
struct SearchStats {
  /// Parallelizations after the interleave/ZeRO/ring expansion (the size of
  /// the candidate space before any pruning).
  std::size_t candidates = 0;
  /// Candidates rejected because their iteration-time lower bound exceeded
  /// the incumbent.
  std::size_t bound_pruned = 0;
  /// Candidates rejected because their placement-independent memory floor
  /// exceeded HBM capacity.
  std::size_t memory_pruned = 0;
  /// build_layer invocations (exhaustive: one per candidate; pruned: one
  /// per distinct LayerCost cache key actually needed).
  std::size_t build_layer_calls = 0;
  std::size_t layer_cache_hits = 0;
  /// enumerate_placements invocations / placement-set cache hits.
  std::size_t placement_sets = 0;
  std::size_t placement_cache_hits = 0;
  /// compile_signature invocations / signature cache hits of the two-phase
  /// engine. Distinct from the layer-cache counters: a layer hit reuses an
  /// op LIST (hardware-free S1 counts), a signature hit reuses the full
  /// COMPILED candidate (op records + memory breakdown + DP/optimizer
  /// scalars), and a placement hit reuses the enumerated placement SET.
  std::size_t signature_compiles = 0;
  std::size_t signature_cache_hits = 0;
  /// Incumbent rounds executed by the pruned engine.
  std::size_t rounds = 0;
};

struct SearchResult {
  core::EvalResult best;  ///< best.feasible == false if nothing fits.
  /// Placement evaluations actually performed (pruned candidates perform
  /// none; memory-infeasible candidates perform one).
  std::size_t evaluated = 0;
  std::size_t feasible = 0;
  /// The top_k fastest feasible results, best first (one per
  /// parallelization, each with its best placement).
  std::vector<core::EvalResult> top;
  SearchStats stats;
};

SearchResult find_optimal(const model::TransformerConfig& mdl,
                          const hw::SystemConfig& sys,
                          const SearchOptions& opts);

/// The (iteration time, HBM memory) Pareto frontier of the feasible space:
/// configurations for which no other feasible configuration is both faster
/// and lighter. Sorted fastest-first (memory strictly decreasing along the
/// frontier). Answers "what is the fastest plan under X GB?" for system
/// co-design. Runs without incumbent pruning (every feasible candidate must
/// be inspected) and streams the frontier out of the per-candidate results
/// instead of materializing the whole feasible set.
std::vector<core::EvalResult> pareto_frontier(
    const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
    SearchOptions opts);

/// Best placement for a fixed parallelization configuration: evaluates every
/// non-dominated placement and returns the fastest feasible result (used by
/// the paper's Q1 sweeps, which fix the parallelization and optimize the
/// placement).
core::EvalResult best_placement(const model::TransformerConfig& mdl,
                                const hw::SystemConfig& sys,
                                parallel::ParallelConfig cfg,
                                std::int64_t global_batch,
                                const core::EvalOptions& eval = {});

// -- Building blocks shared with the cross-hardware sweep engine
//    (search/sweep.hpp) ----------------------------------------------------

/// True when `a` is strictly better than `b`: faster, or equally fast and
/// lighter on HBM. find_optimal and run_sweep both reduce per-candidate
/// results in candidate-index order with this predicate, which is what
/// makes their optima identical configuration-for-configuration.
bool better_result(const core::EvalResult& a, const core::EvalResult& b);

/// The candidate parallelizations find_optimal scans: enumerate_parallel
/// expanded by the interleave / ZeRO-3 / ring-attention axes. Depends on
/// the SYSTEM only through its GPU count (or opts.n_gpus), never on the
/// GPU type or NVS domain size — a hardware sweep at fixed scale enumerates
/// once and reuses the list for every grid point. It does depend on the
/// MODEL shape (divisibility of heads/hidden/depth/seq_len, GQA and MoE
/// widths, the interleave filter on depth/np), so any memo shared across
/// architectures must key on the full (shape, GPU count) pair — see
/// search::CandidateCache in search/codesign.hpp.
std::vector<parallel::ParallelConfig> expand_candidates(
    const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
    const SearchOptions& opts);

/// Greedy packing of the fast domain when placement search is disabled:
/// give NVS GPUs to TP1 first, then TP2, PP, DP.
void pack_placement(parallel::ParallelConfig& cfg, std::int64_t nvs_domain);

/// Evaluate a compiled candidate under every placement in `placements` via
/// the two-phase path (per placement only the collective/pipeline/DP terms
/// are recomputed), returning the best result. `sig`/`base` must come from
/// compile_signature/bind_system for the same (mdl, cfg, batch, eval, sys).
/// Increments `evals` once per placement evaluated. Infeasibility of a
/// valid placement can only come from the placement-independent memory
/// model, so `stop_after_infeasible` lets callers cut the scan short.
core::EvalResult scan_placements_signature(
    const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
    parallel::ParallelConfig cfg, std::int64_t global_batch,
    const core::CostSignature& sig, const core::SystemTiming& base,
    const std::vector<std::array<std::int64_t, 4>>& placements,
    const core::EvalOptions& eval, std::size_t& evals,
    bool stop_after_infeasible);

/// Batched twin of scan_placements_signature: one time_placements_batch
/// call over the whole placement set instead of a per-placement
/// time_placement loop. Returns the bitwise-identical result and increments
/// `evals` by the same counts (the batch kernel's timings equal the scalar
/// ones bit for bit, so the argmin picks the same winner). `bat` must be
/// lower_batched(sig); `scratch` and `timings` are caller-owned so a
/// placement scan reuses their allocations across candidates. On return
/// `timings` holds the batch actually timed (empty when the
/// placement-invariant infeasibility shortcut skipped the kernel) — callers
/// use its size for batch-occupancy accounting.
///
/// Generation-major fast path: a non-null `pricer` (bound to the fabric
/// these placements should be priced against) is forwarded to
/// time_placements_batch and performs ALL collective pricing. With
/// `prevalidated` the caller additionally guarantees cfg is valid at `sys`
/// and the signature fits HBM — both decided by the chain's screens before
/// the call — so the placement-invariant shortcut is skipped. Together the
/// two make `base.fabric` dead on this path, which is what lets the chain
/// bind candidates with capture_fabric = false and never restamp them.
core::EvalResult scan_placements_batch(
    const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
    parallel::ParallelConfig cfg, std::int64_t global_batch,
    const core::CostSignature& sig, const core::BatchedSignature& bat,
    const core::SystemTiming& base,
    const std::vector<std::array<std::int64_t, 4>>& placements,
    const core::EvalOptions& eval, std::size_t& evals,
    bool stop_after_infeasible, core::BatchScratch& scratch,
    std::vector<core::PlacementTiming>& timings,
    const comm::FabricPricer* pricer = nullptr, bool prevalidated = false);

}  // namespace tfpe::search
