#pragma once
// Brute-force optimal-configuration search (paper §III S3): evaluate every
// valid (parallelization x placement x panel) configuration and return the
// feasible one with minimum iteration time. The search is embarrassingly
// parallel and runs on the utility thread pool.

#include <cstdint>

#include "core/evaluator.hpp"
#include "search/enumerate.hpp"

namespace tfpe::search {

struct SearchOptions : EnumerationOptions {
  /// Search the NVS-domain placement of each group (S3 item 2). When false,
  /// the fast domain is packed greedily onto TP1, then TP2, PP, DP.
  bool search_placement = true;
  /// Worker threads; 0 -> hardware concurrency.
  unsigned threads = 0;

  /// Interleaved-pipeline chunk counts to try (extension; {1} = the paper's
  /// non-interleaved schedule).
  std::vector<std::int64_t> interleave_candidates{1};
  /// Also try ZeRO-3 weight sharding per configuration (extension).
  bool allow_zero3 = false;
  /// Also try ring attention for n2 > 1 configurations (extension).
  bool allow_ring_attention = false;
  /// Modeling extensions applied to every evaluation.
  core::EvalOptions eval;

  /// Keep the k best distinct parallelizations in SearchResult::top
  /// (0 = just the optimum).
  std::size_t top_k = 0;
};

struct SearchResult {
  core::EvalResult best;  ///< best.feasible == false if nothing fits.
  std::size_t evaluated = 0;
  std::size_t feasible = 0;
  /// The top_k fastest feasible results, best first (one per
  /// parallelization, each with its best placement).
  std::vector<core::EvalResult> top;
};

SearchResult find_optimal(const model::TransformerConfig& mdl,
                          const hw::SystemConfig& sys,
                          const SearchOptions& opts);

/// The (iteration time, HBM memory) Pareto frontier of the feasible space:
/// configurations for which no other feasible configuration is both faster
/// and lighter. Sorted fastest-first (memory strictly decreasing along the
/// frontier). Answers "what is the fastest plan under X GB?" for system
/// co-design.
std::vector<core::EvalResult> pareto_frontier(
    const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
    SearchOptions opts);

/// Best placement for a fixed parallelization configuration: evaluates every
/// non-dominated placement and returns the fastest feasible result (used by
/// the paper's Q1 sweeps, which fix the parallelization and optimize the
/// placement).
core::EvalResult best_placement(const model::TransformerConfig& mdl,
                                const hw::SystemConfig& sys,
                                parallel::ParallelConfig cfg,
                                std::int64_t global_batch,
                                const core::EvalOptions& eval = {});

}  // namespace tfpe::search
