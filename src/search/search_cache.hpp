#pragma once
// Concurrent memoization caches for the S3 search (shared by all worker
// threads of one find_optimal call).
//
// build_layer() only reads the placement-independent slice of a
// ParallelConfig — (strategy, n1, n2, nb, ring_attention) plus the local
// microbatch size and, for MoE, the expert-parallel width min(nd, E) — so
// the many (np, nd, m) combinations that share those fields reuse one
// LayerCost instead of rebuilding the op list per configuration.
// enumerate_placements() similarly depends only on (n1, n2, np, nd) and the
// NVS-domain size, and is shared across the interleave/ZeRO/ring expansion
// axes.
//
// Both caches are sharded hash maps; a shard's mutex is held across the
// build so each key is constructed exactly once (making the build counters
// deterministic) and readers share immutable values via shared_ptr.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/batched_signature.hpp"
#include "core/cost_signature.hpp"
#include "model/transformer.hpp"
#include "parallel/layer_builder.hpp"
#include "parallel/parallel_config.hpp"

namespace tfpe::search {

/// The slice of (model, ParallelConfig, global batch) that build_layer's
/// output depends on.
struct LayerKey {
  parallel::TpStrategy strategy = parallel::TpStrategy::TP1D;
  std::int64_t n1 = 1;
  std::int64_t n2 = 1;
  std::int64_t nb = 1;
  std::int64_t local_microbatch = 1;
  std::int64_t moe_ep = 0;  ///< min(nd, experts) for MoE, 0 otherwise.
  bool ring_attention = false;

  bool operator==(const LayerKey&) const = default;
};

LayerKey layer_key(const model::TransformerConfig& mdl,
                   const parallel::ParallelConfig& cfg,
                   std::int64_t global_batch);

class LayerCostCache {
 public:
  /// The LayerCost for cfg, building it on first use. Thread-safe.
  std::shared_ptr<const parallel::LayerCost> get(
      const model::TransformerConfig& mdl, const parallel::ParallelConfig& cfg,
      std::int64_t global_batch);

  std::size_t builds() const { return builds_.load(); }
  std::size_t hits() const { return hits_.load(); }

 private:
  struct KeyHash {
    std::size_t operator()(const LayerKey& k) const;
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<LayerKey, std::shared_ptr<const parallel::LayerCost>,
                       KeyHash>
        map;
  };
  static constexpr std::size_t kShards = 16;
  std::array<Shard, kShards> shards_;
  std::atomic<std::size_t> builds_{0};
  std::atomic<std::size_t> hits_{0};
};

class PlacementCache {
 public:
  /// The non-dominated placements of cfg's (n1, n2, np, nd) on a fast
  /// domain of `nvs_domain` GPUs, enumerating on first use. Thread-safe;
  /// the returned vector is immutable and shared.
  std::shared_ptr<const std::vector<std::array<std::int64_t, 4>>> get(
      const parallel::ParallelConfig& cfg, std::int64_t nvs_domain);

  std::size_t builds() const { return builds_.load(); }
  std::size_t hits() const { return hits_.load(); }

 private:
  using Key = std::array<std::int64_t, 5>;  // n1, n2, np, nd, nvs_domain
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<
        Key, std::shared_ptr<const std::vector<std::array<std::int64_t, 4>>>,
        KeyHash>
        map;
  };
  static constexpr std::size_t kShards = 16;
  std::array<Shard, kShards> shards_;
  std::atomic<std::size_t> builds_{0};
  std::atomic<std::size_t> hits_{0};
};

/// The slice of a ParallelConfig that compile_signature's output depends on
/// — a hardware-free key, so one cache instance can be shared across every
/// hw::SystemConfig of a sweep. Excluded on purpose: the NVS placement
/// fields and the interleave factor (signatures are invariant to both; the
/// schedule enters only at time_signature). The key does NOT capture the
/// model, the global batch or the EvalOptions: use one SignatureCache per
/// (model, global batch, EvalOptions) tuple, as the search and the sweep
/// engine do.
struct SignatureKey {
  parallel::TpStrategy strategy = parallel::TpStrategy::TP1D;
  std::int64_t n1 = 1;
  std::int64_t n2 = 1;
  std::int64_t np = 1;
  std::int64_t nd = 1;
  std::int64_t m = 1;
  std::int64_t nb = 1;
  bool ring_attention = false;
  parallel::ZeroStage zero = parallel::ZeroStage::kOptimizer;

  bool operator==(const SignatureKey&) const = default;
};

SignatureKey signature_key(const parallel::ParallelConfig& cfg);

class SignatureCache {
 public:
  /// The compiled CostSignature for cfg, compiling it on first use (the op
  /// list comes from `layers`, so build_layer reuse across signatures is
  /// still counted there). Thread-safe; the returned signature is immutable
  /// and shared.
  std::shared_ptr<const core::CostSignature> get(
      const model::TransformerConfig& mdl, const parallel::ParallelConfig& cfg,
      std::int64_t global_batch, const core::EvalOptions& opts,
      LayerCostCache& layers);

  std::size_t compiles() const { return compiles_.load(); }
  std::size_t hits() const { return hits_.load(); }

 private:
  struct KeyHash {
    std::size_t operator()(const SignatureKey& k) const;
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<SignatureKey,
                       std::shared_ptr<const core::CostSignature>, KeyHash>
        map;
  };
  static constexpr std::size_t kShards = 16;
  std::array<Shard, kShards> shards_;
  std::atomic<std::size_t> compiles_{0};
  std::atomic<std::size_t> hits_{0};
};

/// SoA lowerings of compiled signatures, keyed by the signature's identity
/// (the shared_ptr-owned address handed out by SignatureCache — stable for
/// the cache's lifetime, so the pointer is a valid key). One lowering per
/// signature is shared by every grid point and placement batch of a sweep;
/// the batched timing path pairs one BatchedCache with one SignatureCache.
class BatchedCache {
 public:
  /// The SoA form of `sig`, lowering it on first use. `sig` must stay alive
  /// for the cache's lifetime (guaranteed when it comes from a
  /// SignatureCache sharing the sweep's scope). Thread-safe; the returned
  /// lowering is immutable and shared.
  std::shared_ptr<const core::BatchedSignature> get(
      const std::shared_ptr<const core::CostSignature>& sig);

  std::size_t lowers() const { return lowers_.load(); }
  std::size_t hits() const { return hits_.load(); }

 private:
  struct Shard {
    std::mutex mutex;
    std::unordered_map<const core::CostSignature*,
                       std::shared_ptr<const core::BatchedSignature>>
        map;
  };
  static constexpr std::size_t kShards = 16;
  std::array<Shard, kShards> shards_;
  std::atomic<std::size_t> lowers_{0};
  std::atomic<std::size_t> hits_{0};
};

}  // namespace tfpe::search
