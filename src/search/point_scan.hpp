#pragma once
// The per-grid-point candidate scan shared by the cross-hardware sweep
// (search/sweep.hpp) and the architecture co-design search
// (search/codesign.hpp): one system's sequential, lower-bound-ordered scan
// of a candidate list with an achieved-time incumbent, warm seeding, and
// the batch-arm ChainContext that persists per-candidate state (compiled
// signature, SoA lowering, bound timing with fabric restamp, screen and
// lower-bound caches) across the points of one chain.
//
// This is the search layer's internal engine room — the public entry
// points are run_sweep and run_codesign, which own the caches, group
// points into chains and aggregate PointOutcome counters into their stats.
// Everything here preserves the bitwise contract: scan_point's best result
// equals find_optimal's optimum at the same point, for every combination
// of {batch, warm seed, prune} (see sweep.hpp for the argument).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "core/batched_signature.hpp"
#include "core/cost_signature.hpp"
#include "core/lower_bounds.hpp"
#include "hw/system.hpp"
#include "search/search_cache.hpp"
#include "search/sweep.hpp"

namespace tfpe::search {

/// Sentinel candidate index: "no warm seed" / "nothing feasible".
inline constexpr std::size_t kNoSeed = static_cast<std::size_t>(-1);

inline std::int64_t ns_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Everything scan_point reads and mutates, owned by the caller: the model
/// and engine options the scan is for, the memoization caches (signature /
/// batched caches must be paired per (model, global batch, EvalOptions)
/// tuple — see SignatureCache), and the stage-profile busy counters.
struct ScanShared {
  const model::TransformerConfig& mdl;
  const SweepOptions& opts;
  LayerCostCache& layer_cache;
  PlacementCache& placement_cache;
  SignatureCache& signature_cache;
  BatchedCache& batched_cache;
  std::atomic<std::int64_t>& compile_ns;
  std::atomic<std::int64_t>& time_ns;
};

struct PointOutcome {
  core::EvalResult best;
  /// Candidate index (into the scale's shared list) of the optimum — the
  /// warm seed handed to the next point of the chain. kNoSeed when nothing
  /// was feasible.
  std::size_t best_index = kNoSeed;
  std::size_t evaluated = 0;
  std::size_t bound_pruned = 0;
  std::size_t memory_pruned = 0;
  std::size_t batch_calls = 0;
  std::size_t batch_placements = 0;
  /// Candidate visits served by the chain's own already-compiled signature,
  /// with no SignatureCache probe at all. The scalar engine probes the
  /// cache on every visit (each probe a hit or a compile), so hit-rate
  /// accounting that only counts probes makes identical work look like a
  /// lower hit rate under the chain engine — SweepStats::compile_hit_rate
  /// counts these reuses alongside cache hits to stay comparable.
  std::size_t signature_reuses = 0;
  bool warm_seeded = false;
  bool warm_seed_feasible = false;
};

/// Per-candidate state carried across the points of one chain (fixed GPU
/// type and scale; see ChainContext).
struct ChainEntry {
  /// Hardware-invariant: the compiled signature and its SoA lowering are
  /// valid for every point of the sweep, not just the chain.
  std::shared_ptr<const core::CostSignature> sig;
  std::shared_ptr<const core::BatchedSignature> bat;
  /// Bound timing; valid when `bound`. Everything in it except `.fabric`
  /// reads only the GPU roofline. On the placement-search path collectives
  /// are priced through the chain's FabricPricer and `.fabric` is never
  /// read (bound with capture_fabric = false, no restamp); the
  /// time_signature path still restamps the current point's fabric
  /// instead of re-binding.
  core::SystemTiming base;
  std::size_t fabric_point = kNoSeed;  ///< chain point whose fabric base has
  /// Fabric-independent half of the candidate's lower bounds; the screen
  /// finishes it with the current point's fabric.
  core::SearchBoundsBase lb_base;
  std::int64_t screen_n_gpus = -1;     ///< cluster size the verdict is for
  std::uint8_t screened = 0;           ///< 0 unknown, 1 valid, 2 invalid
  std::uint8_t bound = 0;
  std::uint8_t lb_ready = 0;
};

/// Batch-arm chain context: candidate state reused across the points of one
/// chain. The signature (and capacity verdict derived from it) never
/// changes; the bound SystemTiming changes only through the fabric; the
/// validity screen of a unit-placement candidate reads only the GPU count.
/// Each is cached with the stamp that invalidates it. The scalar arm does
/// not use the context, staying the PR-3-faithful baseline the batch
/// speedup is measured against.
struct ChainContext {
  std::vector<ChainEntry> entries;
  hw::Topology fabric;          ///< current point's fabric, resolved once
  /// Pricer bound to `fabric`, rebound once per point AFTER the fabric is
  /// resolved (it holds a pointer to `fabric`, whose address is stable for
  /// the context's lifetime). On the placement-search path it performs all
  /// collective pricing, so the per-candidate SystemTiming never needs its
  /// own fabric copy — bind_system_batched runs with capture_fabric =
  /// false and the per-point restamp disappears.
  comm::FabricPricer pricer;
  std::size_t point = kNoSeed;  ///< ordinal of the current point
  /// Roofline identity guard: chains key on gpu.name, but with_memory /
  /// with_compute grids can reuse a name with different rates — detect that
  /// and drop the bound state (the signatures stay; they are
  /// hardware-invariant).
  hw::GpuSpec gpu;
  BytesPerSec host_bw;
};

/// Per-worker scratch bundle for scan_point: the batch-kernel scratch, the
/// timing buffer, and scan_point's own per-candidate bookkeeping vectors.
/// Reset capacity-preservingly at the top of every call, so a warm bundle
/// makes the whole candidate scan allocation-free. Callers lease bundles
/// from a util::ObjectPool so the warmth survives across chain tasks (and,
/// in the co-design engine, across shapes) instead of dying with each
/// worker lambda.
struct ScanScratch {
  core::BatchScratch batch;
  std::vector<core::PlacementTiming> timings;
  // scan_point-internal per-candidate state (sized to the candidate list).
  std::vector<core::EvalResult> results;  ///< scalar arm's dense store
  std::vector<std::pair<std::size_t, core::EvalResult>> feasible;
  std::vector<double> lb;
  std::vector<char> pending;
  std::vector<char> done;
  std::vector<std::size_t> order;
};

/// One grid point: scan the shared candidate list sequentially,
/// cheapest-lower-bound-first with a point-local incumbent — optionally
/// seeded by re-timing the chain parent's optimal candidate first.
/// Sequential on purpose: the callers' parallelism is across chains, and a
/// sequential scan both updates the incumbent after every single candidate
/// (tighter than find_optimal's round barriers) and keeps the per-point
/// counters independent of the worker count.
PointOutcome scan_point(const ScanShared& sh, const hw::SystemConfig& sys,
                        const std::vector<parallel::ParallelConfig>& configs,
                        std::size_t seed_index, ScanScratch& scratch,
                        ChainContext* chain);

}  // namespace tfpe::search
