#include "search/point_scan.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace tfpe::search {

namespace {

using Clock = std::chrono::steady_clock;

bool same_roofline(const hw::GpuSpec& a, const hw::GpuSpec& b) {
  return a.tensor_flops.value() == b.tensor_flops.value() &&
         a.vector_flops.value() == b.vector_flops.value() &&
         a.flops_latency.value() == b.flops_latency.value() &&
         a.hbm_bandwidth.value() == b.hbm_bandwidth.value() &&
         a.hbm_capacity.value() == b.hbm_capacity.value();
}

}  // namespace

PointOutcome scan_point(const ScanShared& sh, const hw::SystemConfig& sys,
                        const std::vector<parallel::ParallelConfig>& configs,
                        std::size_t seed_index, ScanScratch& scratch,
                        ChainContext* chain) {
  const SweepOptions& opts = sh.opts;
  const std::int64_t b = opts.search.global_batch;
  const core::EvalOptions& eval = opts.search.eval;
  const std::size_t n = configs.size();
  std::vector<core::PlacementTiming>& timings = scratch.timings;
  PointOutcome out;
  std::int64_t compile_ns = 0;
  std::int64_t time_ns = 0;
  const auto screen_t0 = Clock::now();

  if (chain) {
    chain->point = chain->point == kNoSeed ? 0 : chain->point + 1;
    chain->entries.resize(n);
    chain->fabric = sys.resolved_fabric();
    // Rebind AFTER the fabric assignment: the pricer points at
    // chain->fabric (stable address) and precomputes its per-level terms.
    chain->pricer.rebind(chain->fabric);
    if (chain->point == 0 || !same_roofline(chain->gpu, sys.gpu) ||
        chain->host_bw.value() != sys.host_bandwidth.value()) {
      for (ChainEntry& e : chain->entries) {
        e.bound = 0;
        e.lb_ready = 0;
      }
      chain->gpu = sys.gpu;
      chain->host_bw = sys.host_bandwidth;
    }
  }

  // A result only escapes scan_point when it is feasible (better_result
  // never prefers an infeasible one, and an all-infeasible point reports
  // the fixed "no feasible configuration" reason), so the batch arm keeps
  // just the sparse list of feasible results and skips every infeasible
  // store — reasons, cfg copies, the dense vector itself. The scalar arm
  // keeps the dense PR-3 bookkeeping it is benchmarked as.
  std::vector<core::EvalResult>& results = scratch.results;
  results.clear();
  results.resize(chain ? 0 : n);
  std::vector<std::pair<std::size_t, core::EvalResult>>& feasible =
      scratch.feasible;
  feasible.clear();
  std::vector<double>& lb = scratch.lb;
  lb.assign(n, 0.0);
  std::vector<char>& pending = scratch.pending;
  pending.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const parallel::ParallelConfig& cfg = configs[i];
    if (!chain) results[i].cfg = cfg;
    if (chain && cfg.placement_product() == 1) {
      // A unit-placement candidate's validity reads only the cluster size,
      // so the verdict survives along the chain (stamped for safety).
      ChainEntry& e = chain->entries[i];
      if (e.screened == 0 || e.screen_n_gpus != sys.n_gpus) {
        e.screened = cfg.invalid_reason(sh.mdl, sys, b) ? 2 : 1;
        e.screen_n_gpus = sys.n_gpus;
      }
      if (e.screened == 2) continue;
    } else if (auto why = cfg.invalid_reason(sh.mdl, sys, b)) {
      if (!chain) results[i].reason = *why;
      continue;
    }
    if (chain && opts.search.search_placement) {
      // Screen-level capacity gate: a candidate compiled on an earlier
      // point of the chain whose signature already exceeds this point's
      // HBM is charged its one capacity probe right here and never enters
      // the scan order — no bounds, no placement lookup, no reduction
      // visit. (First-point candidates have no signature yet; they gate
      // inside evaluate_chain after compiling.) Classification shifts from
      // memory_pruned / bound_pruned to evaluated relative to the scalar
      // arm, but stays deterministic and thread-invariant — chains are
      // sequential — and the optima are untouched: an over-capacity
      // candidate is infeasible under every placement.
      const ChainEntry& e = chain->entries[i];
      if (e.sig && e.sig->mem.total() > sys.gpu.hbm_capacity) {
        // Served by the chain-held signature — the scalar engine's visit
        // here would be one SignatureCache hit (see signature_reuses).
        ++out.signature_reuses;
        ++out.evaluated;
        continue;
      }
    }
    if (opts.search.prune) {
      core::SearchBounds bounds;
      if (chain) {
        ChainEntry& e = chain->entries[i];
        if (!e.lb_ready) {
          e.lb_base = core::search_bounds_base(sh.mdl, sys, cfg, b, eval);
          e.lb_ready = 1;
        }
        bounds = core::finish_search_bounds(e.lb_base, sh.mdl, chain->fabric,
                                            cfg);
      } else {
        bounds = core::search_bounds(sh.mdl, sys, cfg, b, eval);
      }
      if (Bytes(bounds.memory_floor) > sys.gpu.hbm_capacity) {
        if (!chain) results[i].reason = "exceeds HBM capacity";
        ++out.memory_pruned;
        continue;
      }
      lb[i] = bounds.time_floor;
    }
    pending[i] = 1;
  }

  std::vector<std::size_t>& order = scratch.order;
  order.clear();
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (pending[i]) order.push_back(i);
  }
  if (opts.search.prune) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t c) {
      return lb[a] != lb[c] ? lb[a] < lb[c] : a < c;
    });
  }
  time_ns += ns_since(screen_t0);

  // Evaluate candidate i through the compile -> bind -> time stages,
  // returning its achieved iteration time (infinity when infeasible).
  std::vector<char>& done = scratch.done;
  done.assign(n, 0);

  // Batch arm: candidate state persists along the chain. A candidate is
  // compiled once, its capacity verdict decided once, and — if it ever
  // needs timing — lowered and bound once, with only the fabric restamped
  // on later points. Over-capacity candidates (the bulk of a large-model
  // grid) skip bind/lower/timing entirely: better_result never prefers an
  // infeasible result, so only the eval count must match the reference
  // scan. Gated shortcuts after the first point are too small to bracket
  // with the stage clock; the stage profile counts the heavyweight stage
  // bodies.
  const auto evaluate_chain = [&](std::size_t i) -> double {
    parallel::ParallelConfig cfg = configs[i];
    ChainEntry& e = chain->entries[i];
    if (!e.sig) {
      const auto compile_t0 = Clock::now();
      e.sig = sh.signature_cache.get(sh.mdl, cfg, b, eval, sh.layer_cache);
      compile_ns += ns_since(compile_t0);
    } else {
      ++out.signature_reuses;
    }
    const bool over_capacity = e.sig->mem.total() > sys.gpu.hbm_capacity;
    if (over_capacity && opts.search.search_placement) {
      // One capacity probe — the candidate's placements are never
      // enumerated, looked up, or timed, so the evaluation counters report
      // the work the batch arm actually did (the reference scans charge the
      // whole placement set in exhaustive mode; optima are unaffected
      // either way, only the bookkeeping differs).
      ++out.evaluated;
      done[i] = 1;
      return std::numeric_limits<double>::infinity();
    }
    if (!e.bound) {
      const auto compile_t0 = Clock::now();
      e.bat = sh.batched_cache.get(e.sig);
      // On the placement-search path every collective is priced through
      // chain->pricer and the candidate's own fabric copy is dead weight —
      // skip the capture AND the per-point restamp below. The
      // time_signature path still reads base.fabric.
      e.base = core::bind_system_batched(
          *e.sig, *e.bat, sys, eval,
          /*capture_fabric=*/!opts.search.search_placement);
      e.fabric_point = chain->point;
      e.bound = 1;
      compile_ns += ns_since(compile_t0);
    } else if (!opts.search.search_placement &&
               e.fabric_point != chain->point) {
      e.base.fabric = chain->fabric;
      e.fabric_point = chain->point;
    }

    const auto time_t0 = Clock::now();
    core::EvalResult r;
    if (opts.search.search_placement) {
      const auto placements = sh.placement_cache.get(cfg, sys.nvs_domain);
      std::size_t evals = 0;
      // prevalidated: the screening loop / capacity gates above already
      // decided validity and HBM fit for this candidate, so the scan's
      // placement-invariant shortcut (which reads base.fabric via
      // time_signature) is provably dead — skipping it is what lets the
      // bind above drop the fabric capture.
      r = scan_placements_batch(sh.mdl, sys, cfg, b, *e.sig, *e.bat, e.base,
                                *placements, eval, evals,
                                /*stop_after_infeasible=*/opts.search.prune,
                                scratch.batch, timings, &chain->pricer,
                                /*prevalidated=*/true);
      if (!timings.empty()) {
        ++out.batch_calls;
        out.batch_placements += timings.size();
      }
      out.evaluated += evals;
    } else {
      pack_placement(cfg, sys.nvs_domain);
      r = core::time_signature(*e.sig, e.base, sh.mdl, sys, cfg, b, eval);
      ++out.evaluated;
    }
    time_ns += ns_since(time_t0);
    done[i] = 1;
    if (!r.feasible) return std::numeric_limits<double>::infinity();
    const double t = r.iteration();
    feasible.emplace_back(i, std::move(r));
    return t;
  };

  const auto evaluate = [&](std::size_t i) -> double {
    if (chain) return evaluate_chain(i);
    parallel::ParallelConfig cfg = configs[i];
    const auto compile_t0 = Clock::now();
    const auto sig = sh.signature_cache.get(sh.mdl, cfg, b, eval,
                                            sh.layer_cache);
    std::shared_ptr<const core::BatchedSignature> bat;
    core::SystemTiming base;
    if (opts.batch) {
      bat = sh.batched_cache.get(sig);
      base = core::bind_system_batched(*sig, *bat, sys, eval);
    } else {
      base = core::bind_system(*sig, sys, eval);
    }
    compile_ns += ns_since(compile_t0);

    const auto time_t0 = Clock::now();
    core::EvalResult r;
    if (opts.search.search_placement) {
      const auto placements = sh.placement_cache.get(cfg, sys.nvs_domain);
      std::size_t evals = 0;
      if (opts.batch) {
        r = scan_placements_batch(sh.mdl, sys, cfg, b, *sig, *bat, base,
                                  *placements, eval, evals,
                                  /*stop_after_infeasible=*/opts.search.prune,
                                  scratch.batch, timings);
        if (!timings.empty()) {
          ++out.batch_calls;
          out.batch_placements += timings.size();
        }
      } else {
        r = scan_placements_signature(
            sh.mdl, sys, cfg, b, *sig, base, *placements, eval, evals,
            /*stop_after_infeasible=*/opts.search.prune);
      }
      out.evaluated += evals;
    } else {
      pack_placement(cfg, sys.nvs_domain);
      r = core::time_signature(*sig, base, sh.mdl, sys, cfg, b, eval);
      ++out.evaluated;
    }
    time_ns += ns_since(time_t0);
    done[i] = 1;
    const double t = r.feasible ? r.iteration()
                                : std::numeric_limits<double>::infinity();
    results[i] = std::move(r);
    return t;
  };

  double incumbent = std::numeric_limits<double>::infinity();

  // Warm start: re-time the chain parent's optimal candidate first. Its
  // time at THIS point is an achieved iteration time, so using it as the
  // incumbent is exactly as conservative as any other achieved time — a
  // candidate pruned against it satisfies time >= lb > incumbent >= optimum
  // and can neither be nor tie the optimum. The optimum is therefore
  // bitwise-unchanged; only the pruning (and eval counts) tighten.
  if (seed_index != kNoSeed && seed_index < n && pending[seed_index]) {
    out.warm_seeded = true;
    const double t = evaluate(seed_index);
    if (t < incumbent) {
      incumbent = t;
      out.warm_seed_feasible = true;
    }
  }

  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const std::size_t i = order[pos];
    if (done[i]) continue;
    if (opts.search.prune && lb[i] > incumbent) {
      // The order is lb-sorted: everything from here on is provably slower
      // than an achieved time (and a pruned candidate cannot tie, so the
      // index-order reduction below still picks find_optimal's answer).
      for (std::size_t j = pos; j < order.size(); ++j) {
        if (done[order[j]]) continue;
        if (!chain) {
          results[order[j]].reason = "pruned: lower bound above incumbent";
        }
        ++out.bound_pruned;
      }
      break;
    }
    const double t = evaluate(i);
    if (t < incumbent) incumbent = t;
  }

  // Reduce in candidate-index order with the shared predicate — the same
  // tie-breaking walk find_optimal performs, so the two agree bitwise even
  // between equal-time configurations. The sparse list visits the same
  // feasible results in the same index order as the dense walk; the dense
  // walk's extra visits are all infeasible, which the predicate never
  // prefers.
  out.best.reason = "no feasible configuration";
  if (chain) {
    std::sort(feasible.begin(), feasible.end(),
              [](const auto& a, const auto& c) { return a.first < c.first; });
    for (const auto& [i, r] : feasible) {
      if (better_result(r, out.best)) {
        out.best = r;
        out.best_index = i;
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      if (better_result(results[i], out.best)) {
        out.best = results[i];
        out.best_index = i;
      }
    }
  }
  if (!out.best.feasible) out.best_index = kNoSeed;
  sh.compile_ns.fetch_add(compile_ns, std::memory_order_relaxed);
  sh.time_ns.fetch_add(time_ns, std::memory_order_relaxed);
  return out;
}

}  // namespace tfpe::search
