#include "search/search_cache.hpp"

#include <algorithm>

#include "analysis/invariants.hpp"
#include "search/enumerate.hpp"

namespace tfpe::search {

namespace {

std::size_t hash_combine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

}  // namespace

LayerKey layer_key(const model::TransformerConfig& mdl,
                   const parallel::ParallelConfig& cfg,
                   std::int64_t global_batch) {
  LayerKey k;
  k.strategy = cfg.strategy;
  k.n1 = cfg.n1;
  k.n2 = cfg.n2;
  k.nb = cfg.nb;
  k.local_microbatch = cfg.local_microbatch(global_batch);
  k.moe_ep = mdl.is_moe() ? std::min(cfg.nd, mdl.moe_experts) : 0;
  k.ring_attention = cfg.ring_attention;
  return k;
}

std::size_t LayerCostCache::KeyHash::operator()(const LayerKey& k) const {
  std::size_t h = static_cast<std::size_t>(k.strategy);
  h = hash_combine(h, static_cast<std::size_t>(k.n1));
  h = hash_combine(h, static_cast<std::size_t>(k.n2));
  h = hash_combine(h, static_cast<std::size_t>(k.nb));
  h = hash_combine(h, static_cast<std::size_t>(k.local_microbatch));
  h = hash_combine(h, static_cast<std::size_t>(k.moe_ep));
  h = hash_combine(h, static_cast<std::size_t>(k.ring_attention));
  return h;
}

std::shared_ptr<const parallel::LayerCost> LayerCostCache::get(
    const model::TransformerConfig& mdl, const parallel::ParallelConfig& cfg,
    std::int64_t global_batch) {
  const LayerKey key = layer_key(mdl, cfg, global_batch);
  Shard& shard = shards_[KeyHash{}(key) % kShards];
  std::lock_guard lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  builds_.fetch_add(1, std::memory_order_relaxed);
  auto layer = std::make_shared<const parallel::LayerCost>(
      parallel::build_layer(mdl, cfg, key.local_microbatch));
  shard.map.emplace(key, layer);
  return layer;
}

std::size_t PlacementCache::KeyHash::operator()(const Key& k) const {
  std::size_t h = 0;
  for (std::int64_t v : k) h = hash_combine(h, static_cast<std::size_t>(v));
  return h;
}

std::shared_ptr<const std::vector<std::array<std::int64_t, 4>>>
PlacementCache::get(const parallel::ParallelConfig& cfg,
                    std::int64_t nvs_domain) {
  const Key key{cfg.n1, cfg.n2, cfg.np, cfg.nd, nvs_domain};
  Shard& shard = shards_[KeyHash{}(key) % kShards];
  std::lock_guard lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  builds_.fetch_add(1, std::memory_order_relaxed);
  auto placements =
      std::make_shared<const std::vector<std::array<std::int64_t, 4>>>(
          enumerate_placements(cfg, nvs_domain));
  shard.map.emplace(key, placements);
  return placements;
}

SignatureKey signature_key(const parallel::ParallelConfig& cfg) {
  SignatureKey k;
  k.strategy = cfg.strategy;
  k.n1 = cfg.n1;
  k.n2 = cfg.n2;
  k.np = cfg.np;
  k.nd = cfg.nd;
  k.m = cfg.microbatches;
  k.nb = cfg.nb;
  k.ring_attention = cfg.ring_attention;
  k.zero = cfg.zero;
  return k;
}

std::size_t SignatureCache::KeyHash::operator()(const SignatureKey& k) const {
  std::size_t h = static_cast<std::size_t>(k.strategy);
  h = hash_combine(h, static_cast<std::size_t>(k.n1));
  h = hash_combine(h, static_cast<std::size_t>(k.n2));
  h = hash_combine(h, static_cast<std::size_t>(k.np));
  h = hash_combine(h, static_cast<std::size_t>(k.nd));
  h = hash_combine(h, static_cast<std::size_t>(k.m));
  h = hash_combine(h, static_cast<std::size_t>(k.nb));
  h = hash_combine(h, static_cast<std::size_t>(k.ring_attention));
  h = hash_combine(h, static_cast<std::size_t>(k.zero));
  return h;
}

std::shared_ptr<const core::CostSignature> SignatureCache::get(
    const model::TransformerConfig& mdl, const parallel::ParallelConfig& cfg,
    std::int64_t global_batch, const core::EvalOptions& opts,
    LayerCostCache& layers) {
  const SignatureKey key = signature_key(cfg);
  Shard& shard = shards_[KeyHash{}(key) % kShards];
  std::lock_guard lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  compiles_.fetch_add(1, std::memory_order_relaxed);
  // Lock order is always signature shard -> layer shard, so the nested
  // acquisition cannot deadlock against LayerCostCache users.
  const auto layer = layers.get(mdl, cfg, global_batch);
#ifndef NDEBUG
  // Debug builds cross-check each compiled op list against the invariant
  // analyzer, mirroring the single-phase evaluator's hook (once per
  // compile instead of once per evaluation).
  analysis::assert_layer_invariants(mdl, cfg, cfg.local_microbatch(global_batch),
                                    *layer);
#endif
  auto sig = std::make_shared<const core::CostSignature>(
      core::compile_signature(mdl, cfg, global_batch, *layer, opts));
  shard.map.emplace(key, sig);
  return sig;
}

std::shared_ptr<const core::BatchedSignature> BatchedCache::get(
    const std::shared_ptr<const core::CostSignature>& sig) {
  const core::CostSignature* key = sig.get();
  Shard& shard = shards_[std::hash<const core::CostSignature*>{}(key) % kShards];
  std::lock_guard lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  lowers_.fetch_add(1, std::memory_order_relaxed);
  auto lowered = std::make_shared<const core::BatchedSignature>(
      core::lower_batched(*sig));
  shard.map.emplace(key, lowered);
  return lowered;
}

}  // namespace tfpe::search
