#include "search/serve_plan.hpp"

#include <algorithm>
#include <numeric>

#include "search/search_cache.hpp"

namespace tfpe::search {

std::vector<std::size_t> pareto_front_serving(
    const std::vector<core::InferenceEstimate>& points) {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].feasible) order.push_back(i);
  }
  // Ascending latency; at equal latency the most efficient point first so
  // the dominance sweep keeps exactly one of a tie group.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (points[a].request_latency != points[b].request_latency) {
      return points[a].request_latency < points[b].request_latency;
    }
    return points[a].tokens_per_sec_per_gpu > points[b].tokens_per_sec_per_gpu;
  });
  std::vector<std::size_t> front;
  double best = -1.0;
  for (const std::size_t i : order) {
    if (points[i].tokens_per_sec_per_gpu > best) {
      front.push_back(i);
      best = points[i].tokens_per_sec_per_gpu;
    }
  }
  return front;
}

ServePlanResult run_serve_plan(const model::TransformerConfig& mdl,
                               const hw::SystemConfig& sys,
                               const ServePlanOptions& opts) {
  const core::ServingSpec& spec = opts.spec;
  const core::Workload w = spec.workload();
  model::TransformerConfig prompt = mdl;
  if (spec.prompt_len > 0) prompt.seq_len = spec.prompt_len;

  ServePlanResult res;
  LayerCostCache layers;
  SignatureCache signatures;
  for (const std::int64_t tp : spec.tp) {
    for (const std::int64_t pp : spec.pp) {
      core::ServingConfig shape;
      shape.tp = tp;
      shape.pp = pp;
      shape.kv_cap_fraction = spec.kv_cap_fraction;
      // One shape-validity screen covers the whole batch axis; the prefill
      // signature is compiled on the shape's first batch point and comes
      // back as a SignatureCache hit for every later one.
      const auto shape_why = core::serve_invalid_reason(mdl, sys, w, shape);
      const parallel::ParallelConfig cfg =
          core::serving_parallel_config(sys, shape);
      for (const std::int64_t batch : spec.batch) {
        if (spec.max_batch > 0 && batch > spec.max_batch) continue;
        core::ServingConfig sc = shape;
        sc.batch = batch;
        ++res.stats.evaluated;
        if (shape_why) {
          core::InferenceEstimate est;
          est.cfg = sc;
          est.reason = *shape_why;
          res.points.push_back(std::move(est));
          continue;
        }
        const std::shared_ptr<const core::CostSignature> sig =
            signatures.get(prompt, cfg, 1, opts.eval, layers);
        res.points.push_back(
            core::estimate_serving(mdl, sys, w, sc, *sig, opts.eval));
        if (res.points.back().feasible) ++res.stats.feasible;
      }
    }
  }
  res.stats.signature_compiles = signatures.compiles();
  res.stats.signature_reuses = signatures.hits();
  res.front = pareto_front_serving(res.points);
  return res;
}

}  // namespace tfpe::search
