#pragma once
// Fixed-size thread pool used by the brute-force configuration search (S3).
//
// The search evaluates hundreds of thousands of independent configurations;
// parallel_for_index() splits an index range into contiguous chunks and runs
// the body on pool threads. The pool is also exercised directly by the unit
// tests as a standalone substrate.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tfpe::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run body(i) for i in [0, count) across the pool, blocking until done.
/// The body must be safe to invoke concurrently for distinct i.
/// Splits the range into fixed contiguous chunks up-front; prefer
/// parallel_for_dynamic when per-index cost is uneven.
void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& body);

/// Dynamically scheduled parallel-for: workers claim chunks of `grain`
/// consecutive indices from a shared atomic cursor, so uneven per-index
/// work (e.g. configurations with very different placement counts) cannot
/// straggle one statically assigned worker.
///
/// If `stop` is provided, it is polled before each chunk claim; once it
/// returns true no further chunks are claimed (in-flight chunks finish).
/// The search uses this for incumbent-aware early exit: when the shared
/// best-so-far already beats every remaining candidate's lower bound, the
/// rest of the range is abandoned. Returns the number of indices executed
/// (== count when the loop was not stopped).
std::size_t parallel_for_dynamic(ThreadPool& pool, std::size_t count,
                                 const std::function<void(std::size_t)>& body,
                                 std::size_t grain = 1,
                                 const std::function<bool()>& stop = {});

}  // namespace tfpe::util
