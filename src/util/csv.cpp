#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace tfpe::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string q = "\"";
  for (char ch : cell) {
    if (ch == '"') q += "\"\"";
    else q += ch;
  }
  q += '"';
  return q;
}

void CsvWriter::write_header(const std::vector<std::string>& cols) {
  arity_ = cols.size();
  write_row(cols);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (arity_ != 0 && cells.size() != arity_) {
    throw std::invalid_argument("CsvWriter: arity mismatch");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream os;
    os << v;
    s.push_back(os.str());
  }
  write_row(s);
}

}  // namespace tfpe::util
