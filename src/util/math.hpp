#pragma once
// Small integer-math helpers used by the configuration enumeration (S3).

#include <cstdint>
#include <vector>

namespace tfpe::util {

/// All positive divisors of n, ascending. n must be >= 1.
std::vector<std::int64_t> divisors(std::int64_t n);

/// All ordered k-tuples (f0,...,f{k-1}) of positive integers with
/// f0*...*f{k-1} == n. Order matters: (2,4) and (4,2) are distinct.
std::vector<std::vector<std::int64_t>> ordered_factorizations(std::int64_t n,
                                                              int k);

/// True if v is a power of two (v >= 1).
bool is_power_of_two(std::int64_t v);

/// Ceiling division for non-negative integers.
std::int64_t ceil_div(std::int64_t a, std::int64_t b);

/// Greatest common divisor.
std::int64_t gcd(std::int64_t a, std::int64_t b);

}  // namespace tfpe::util
