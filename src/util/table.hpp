#pragma once
// Column-aligned plain-text table printer used by the report layer and the
// bench binaries to reproduce the paper's configuration / time-breakdown
// panels as text output.

#include <ostream>
#include <string>
#include <vector>

namespace tfpe::util {

class TextTable {
 public:
  /// Define the header row. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Number of data rows currently stored.
  std::size_t rows() const { return rows_.size(); }

  /// Render with single-space-padded columns and a rule under the header.
  void print(std::ostream& os) const;

  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tfpe::util
