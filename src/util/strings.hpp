#pragma once
// Small string helpers shared by the tools (list flags, sweep specs).

#include <string>
#include <vector>

namespace tfpe::util {

/// Split on `sep`, trimming spaces/tabs around each piece; empty pieces are
/// dropped ("a, b,,c" -> {"a","b","c"}).
std::vector<std::string> split_list(const std::string& text, char sep = ',');

/// Join with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

}  // namespace tfpe::util
