#pragma once
// Unit constants and human-readable formatting helpers.
//
// All quantities inside the library are SI: bytes, bytes/second, FLOP/s,
// seconds. These helpers exist only at the presentation boundary.

#include <string>

namespace tfpe::util {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;
inline constexpr double kTB = 1e12;

inline constexpr double kGFLOPs = 1e9;
inline constexpr double kTFLOPs = 1e12;
inline constexpr double kPFLOPs = 1e15;

inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;
inline constexpr double kSecondsPerDay = 86400.0;

/// Format a byte count as e.g. "12.3 GB" (decimal units, as in GPU datasheets).
std::string format_bytes(double bytes);

/// Format a duration as e.g. "123.4 us", "1.23 ms", "4.56 s", "2.3 days".
std::string format_time(double seconds);

/// Format a FLOP count as e.g. "312.0 TFLOP".
std::string format_flops(double flops);

/// Format a rate as e.g. "900.0 GB/s".
std::string format_bandwidth(double bytes_per_second);

/// Fixed-precision double formatting ("%.*f").
std::string format_fixed(double value, int precision);

}  // namespace tfpe::util
