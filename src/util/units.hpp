#pragma once
// Unit constants, compile-time dimensional safety, and human-readable
// formatting helpers.
//
// All quantities inside the library are SI: bytes, bytes/second, FLOP/s,
// seconds. The strong unit types below make the dimension part of the type
// so that mixing them up (the classic "passed bytes where flops were
// expected" bug) is a compile error rather than a silently skewed figure:
//
//   Seconds t = Bytes(1e9) / BytesPerSec(1e12);   // ok: 1 ms
//   Seconds u = Flops(1e12) / BytesPerSec(1e12);  // compile error
//   Bytes b   = Bytes(8) + Seconds(1);            // compile error
//
// Construction from a raw double is explicit; dimensionally valid products
// and quotients compose (Flops / FlopsPerSec -> Seconds, BytesPerSec *
// Seconds -> Bytes, ...); same-dimension ratios collapse to plain double.

#include <compare>
#include <string>

namespace tfpe::util {

/// A double tagged with its physical dimension, expressed as integer
/// exponents over the library's three base dimensions (FLOPs, bytes,
/// seconds). Arithmetic follows dimensional algebra: addition requires the
/// same dimension, multiplication/division add/subtract exponents, and the
/// all-zero (dimensionless) case converts implicitly to double.
template <int FlopDim, int ByteDim, int SecondDim>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : v_(value) {}

  /// The raw SI magnitude. The presentation boundary (formatting, CSV,
  /// gtest comparisons) reads this; model code should stay in unit space.
  [[nodiscard]] constexpr double value() const { return v_; }

  /// Dimensionless quantities (e.g. Bytes / Bytes) are just numbers.
  constexpr operator double() const  // NOLINT(google-explicit-constructor)
    requires(FlopDim == 0 && ByteDim == 0 && SecondDim == 0)
  {
    return v_;
  }

  // Same-dimension linear arithmetic.
  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.v_ + b.v_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.v_ - b.v_);
  }
  constexpr Quantity operator-() const { return Quantity(-v_); }
  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }

  // Scaling by dimensionless factors.
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity(a.v_ * s);
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity(a.v_ * s);
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity(a.v_ / s);
  }
  constexpr Quantity& operator*=(double s) {
    v_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    v_ /= s;
    return *this;
  }

  friend constexpr bool operator==(const Quantity&, const Quantity&) = default;
  friend constexpr auto operator<=>(const Quantity&, const Quantity&) = default;

 private:
  double v_ = 0.0;
};

/// Dimensional product: exponents add (Bytes * per-second -> Bytes/s, ...).
template <int F1, int B1, int S1, int F2, int B2, int S2>
constexpr Quantity<F1 + F2, B1 + B2, S1 + S2> operator*(Quantity<F1, B1, S1> a,
                                                        Quantity<F2, B2, S2> b) {
  return Quantity<F1 + F2, B1 + B2, S1 + S2>(a.value() * b.value());
}

/// Dimensional quotient: exponents subtract (Bytes / BytesPerSec -> Seconds,
/// Flops / FlopsPerSec -> Seconds, Bytes / Bytes -> double).
template <int F1, int B1, int S1, int F2, int B2, int S2>
constexpr Quantity<F1 - F2, B1 - B2, S1 - S2> operator/(Quantity<F1, B1, S1> a,
                                                        Quantity<F2, B2, S2> b) {
  return Quantity<F1 - F2, B1 - B2, S1 - S2>(a.value() / b.value());
}

using Flops = Quantity<1, 0, 0>;        ///< Floating-point operation count.
using Bytes = Quantity<0, 1, 0>;        ///< Data volume.
using Seconds = Quantity<0, 0, 1>;      ///< Duration.
using BytesPerSec = Quantity<0, 1, -1>; ///< Bandwidth.
using FlopsPerSec = Quantity<1, 0, -1>; ///< Compute rate.

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;
inline constexpr double kTB = 1e12;

inline constexpr double kGFLOPs = 1e9;
inline constexpr double kTFLOPs = 1e12;
inline constexpr double kPFLOPs = 1e15;

inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;
inline constexpr double kSecondsPerDay = 86400.0;

/// Format a byte count as e.g. "12.3 GB" (decimal units, as in GPU datasheets).
std::string format_bytes(double bytes);
inline std::string format_bytes(Bytes b) { return format_bytes(b.value()); }

/// Format a duration as e.g. "123.4 us", "1.23 ms", "4.56 s", "2.3 days".
std::string format_time(double seconds);
inline std::string format_time(Seconds s) { return format_time(s.value()); }

/// Format a FLOP count as e.g. "312.0 TFLOP".
std::string format_flops(double flops);
inline std::string format_flops(Flops f) { return format_flops(f.value()); }

/// Format a rate as e.g. "900.0 GB/s".
std::string format_bandwidth(double bytes_per_second);
inline std::string format_bandwidth(BytesPerSec b) {
  return format_bandwidth(b.value());
}

/// Fixed-precision double formatting ("%.*f").
std::string format_fixed(double value, int precision);

}  // namespace tfpe::util

namespace tfpe {
// The unit vocabulary is used across every module; promote it to the
// project namespace so signatures stay readable.
using util::Bytes;
using util::BytesPerSec;
using util::Flops;
using util::FlopsPerSec;
using util::Seconds;
}  // namespace tfpe
