#pragma once
// Terminal plotting for the bench harness: heatmaps (Figs. A5/A6) and simple
// series plots (Figs. 4/5) rendered with ASCII intensity ramps so that the
// figure *shape* is visible directly in bench output.

#include <ostream>
#include <string>
#include <vector>

namespace tfpe::util {

/// Render a row-major grid of values as an ASCII heatmap. Lower values map to
/// lighter glyphs. `row_labels`/`col_labels` annotate axes (may be empty).
/// NaN cells render as blanks (used for infeasible configurations).
void ascii_heatmap(std::ostream& os, const std::vector<std::vector<double>>& grid,
                   const std::vector<std::string>& row_labels,
                   const std::vector<std::string>& col_labels,
                   bool log_scale = true);

/// Render one or more (x, y) series as a log-log ASCII scatter chart.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};
void ascii_chart(std::ostream& os, const std::vector<Series>& series, int width = 72,
                 int height = 20);

}  // namespace tfpe::util
