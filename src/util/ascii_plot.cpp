#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>

namespace tfpe::util {

namespace {
constexpr const char* kRamp = " .:-=+*#%@";
constexpr int kRampLen = 10;
}  // namespace

void ascii_heatmap(std::ostream& os, const std::vector<std::vector<double>>& grid,
                   const std::vector<std::string>& row_labels,
                   const std::vector<std::string>& col_labels, bool log_scale) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& row : grid) {
    for (double v : row) {
      if (std::isnan(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!std::isfinite(lo)) {
    os << "(empty heatmap)\n";
    return;
  }
  auto xform = [&](double v) { return log_scale ? std::log(std::max(v, 1e-300)) : v; };
  const double tlo = xform(lo), thi = xform(hi);
  const double span = (thi > tlo) ? (thi - tlo) : 1.0;

  std::size_t label_w = 0;
  for (const auto& s : row_labels) label_w = std::max(label_w, s.size());

  for (std::size_t r = 0; r < grid.size(); ++r) {
    const std::string label = r < row_labels.size() ? row_labels[r] : "";
    os << std::setw(static_cast<int>(label_w)) << label << " |";
    for (double v : grid[r]) {
      if (std::isnan(v)) {
        os << "  . ";
        continue;
      }
      int idx = static_cast<int>((xform(v) - tlo) / span * (kRampLen - 1) + 0.5);
      idx = std::clamp(idx, 0, kRampLen - 1);
      os << ' ' << kRamp[idx] << kRamp[idx] << ' ';
    }
    os << '\n';
  }
  if (!col_labels.empty()) {
    os << std::string(label_w, ' ') << "  ";
    for (const auto& c : col_labels) {
      std::string s = c.substr(0, 3);
      os << ' ' << std::setw(3) << s;
    }
    os << '\n';
  }
  os << "scale: min=" << lo << " ('" << kRamp[0] << "') max=" << hi << " ('"
     << kRamp[kRampLen - 1] << "')"
     << (log_scale ? " [log]" : "") << '\n';
}

void ascii_chart(std::ostream& os, const std::vector<Series>& series, int width,
                 int height) {
  double xlo = std::numeric_limits<double>::infinity(), xhi = -xlo;
  double ylo = xlo, yhi = -xlo;
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (s.x[i] <= 0 || s.y[i] <= 0) continue;
      xlo = std::min(xlo, s.x[i]);
      xhi = std::max(xhi, s.x[i]);
      ylo = std::min(ylo, s.y[i]);
      yhi = std::max(yhi, s.y[i]);
    }
  }
  if (!std::isfinite(xlo)) {
    os << "(empty chart)\n";
    return;
  }
  const double lx0 = std::log(xlo), lx1 = std::log(xhi);
  const double ly0 = std::log(ylo), ly1 = std::log(yhi);
  const double sx = (lx1 > lx0) ? (lx1 - lx0) : 1.0;
  const double sy = (ly1 > ly0) ? (ly1 - ly0) : 1.0;

  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
  const char marks[] = "ox+*sdv^";
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char mark = marks[si % (sizeof(marks) - 1)];
    const auto& s = series[si];
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (s.x[i] <= 0 || s.y[i] <= 0) continue;
      int cx = static_cast<int>((std::log(s.x[i]) - lx0) / sx * (width - 1) + 0.5);
      int cy = static_cast<int>((std::log(s.y[i]) - ly0) / sy * (height - 1) + 0.5);
      cx = std::clamp(cx, 0, width - 1);
      cy = std::clamp(cy, 0, height - 1);
      canvas[static_cast<std::size_t>(height - 1 - cy)]
            [static_cast<std::size_t>(cx)] = mark;
    }
  }
  os << "y: " << ylo << " .. " << yhi << " (log)\n";
  for (const auto& line : canvas) os << '|' << line << "|\n";
  os << "x: " << xlo << " .. " << xhi << " (log)\n";
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "  '" << marks[si % (sizeof(marks) - 1)] << "' = " << series[si].name
       << '\n';
  }
}

}  // namespace tfpe::util
