#include "util/args.hpp"

#include <cstdlib>
#include <stdexcept>

namespace tfpe::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--flag value" when the next token is not itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";
    }
  }
}

std::optional<std::string> ArgParser::get(const std::string& name) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get_or(const std::string& name,
                              const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::int64_t ArgParser::get_int_or(const std::string& name,
                                   std::int64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const std::int64_t out = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                *v + "'");
  }
  return out;
}

double ArgParser::get_double_or(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const double out = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                *v + "'");
  }
  return out;
}

bool ArgParser::has(const std::string& name) const {
  queried_[name] = true;
  return flags_.count(name) > 0;
}

std::vector<std::string> ArgParser::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (!queried_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace tfpe::util
