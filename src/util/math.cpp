#include "util/math.hpp"

#include <algorithm>
#include <stdexcept>

namespace tfpe::util {

std::vector<std::int64_t> divisors(std::int64_t n) {
  if (n < 1) throw std::invalid_argument("divisors: n must be >= 1");
  std::vector<std::int64_t> low, high;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      low.push_back(d);
      if (d != n / d) high.push_back(n / d);
    }
  }
  low.insert(low.end(), high.rbegin(), high.rend());
  return low;
}

namespace {

void factorize_rec(std::int64_t n, int k, std::vector<std::int64_t>& prefix,
                   std::vector<std::vector<std::int64_t>>& out) {
  if (k == 1) {
    prefix.push_back(n);
    out.push_back(prefix);
    prefix.pop_back();
    return;
  }
  for (std::int64_t d : divisors(n)) {
    prefix.push_back(d);
    factorize_rec(n / d, k - 1, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

std::vector<std::vector<std::int64_t>> ordered_factorizations(std::int64_t n,
                                                              int k) {
  if (n < 1) throw std::invalid_argument("ordered_factorizations: n must be >= 1");
  if (k < 1) throw std::invalid_argument("ordered_factorizations: k must be >= 1");
  std::vector<std::vector<std::int64_t>> out;
  std::vector<std::int64_t> prefix;
  factorize_rec(n, k, prefix, out);
  return out;
}

bool is_power_of_two(std::int64_t v) { return v >= 1 && (v & (v - 1)) == 0; }

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  if (b <= 0) throw std::invalid_argument("ceil_div: b must be > 0");
  return (a + b - 1) / b;
}

std::int64_t gcd(std::int64_t a, std::int64_t b) {
  while (b != 0) {
    std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a < 0 ? -a : a;
}

}  // namespace tfpe::util
