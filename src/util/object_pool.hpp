#pragma once
// Thread-safe free-list pool for heavy, reusable scratch objects.
//
// The sweep/codesign engines hand each chain task a warm scratch bundle
// (core::BatchScratch tables, timing buffers, per-candidate bookkeeping
// vectors). Constructing those per chain — or per shape, in the co-design
// product loop — re-pays every vector's growth path thousands of times.
// An ObjectPool keeps returned objects WITH THEIR CAPACITY: a lease either
// revives a warm object off the free list or default-constructs a fresh
// one, and the destructor of the RAII Lease returns it. Objects are never
// cleared by the pool — the consumers own their reset discipline (e.g.
// BatchScratch is epoch-reset, scan_point re-`assign`s its per-point
// vectors), which is exactly what makes reuse free.
//
// Concurrency: acquire/release take one mutex each; contention is one
// lock per CHAIN (thousands of candidate scans), not per scan, so the
// lock is invisible next to the work it brackets.

#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace tfpe::util {

template <class T>
class ObjectPool {
 public:
  /// Move-only RAII handle: dereference to use, destroy (or reset) to
  /// return the object to its pool. Outliving the pool is undefined —
  /// leases are scoped inside the parallel region that owns the pool.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          obj_(std::move(other.obj_)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = std::exchange(other.pool_, nullptr);
        obj_ = std::move(other.obj_);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    T& operator*() const { return *obj_; }
    T* operator->() const { return obj_.get(); }

   private:
    friend class ObjectPool;
    Lease(ObjectPool* pool, std::unique_ptr<T> obj)
        : pool_(pool), obj_(std::move(obj)) {}
    void release() {
      if (pool_ && obj_) pool_->put(std::move(obj_));
      pool_ = nullptr;
    }

    ObjectPool* pool_ = nullptr;
    std::unique_ptr<T> obj_;
  };

  ObjectPool() = default;
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  /// Warm object off the free list when one is available, otherwise a
  /// default-constructed fresh one.
  Lease acquire() {
    {
      std::lock_guard lock(mutex_);
      if (!free_.empty()) {
        std::unique_ptr<T> obj = std::move(free_.back());
        free_.pop_back();
        ++reuses_;
        return Lease(this, std::move(obj));
      }
      ++constructions_;
    }
    return Lease(this, std::make_unique<T>());
  }

  /// Objects default-constructed because the free list was empty — the
  /// steady-state value is the peak concurrency, not the task count.
  std::size_t constructions() const {
    std::lock_guard lock(mutex_);
    return constructions_;
  }
  /// Leases served warm off the free list.
  std::size_t reuses() const {
    std::lock_guard lock(mutex_);
    return reuses_;
  }

 private:
  void put(std::unique_ptr<T> obj) {
    std::lock_guard lock(mutex_);
    free_.push_back(std::move(obj));
  }

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<T>> free_;
  std::size_t constructions_ = 0;
  std::size_t reuses_ = 0;
};

}  // namespace tfpe::util
