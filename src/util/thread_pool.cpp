#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace tfpe::util {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

std::size_t parallel_for_dynamic(ThreadPool& pool, std::size_t count,
                                 const std::function<void(std::size_t)>& body,
                                 std::size_t grain,
                                 const std::function<bool()>& stop) {
  if (count == 0) return 0;
  if (grain == 0) grain = 1;
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> executed{0};
  const std::size_t chunks = (count + grain - 1) / grain;
  const std::size_t workers =
      std::min<std::size_t>(pool.size(), chunks);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&cursor, &executed, &body, &stop, count, grain] {
      for (;;) {
        if (stop && stop()) return;
        const std::size_t begin =
            cursor.fetch_add(grain, std::memory_order_relaxed);
        if (begin >= count) return;
        const std::size_t end = std::min(count, begin + grain);
        for (std::size_t i = begin; i < end; ++i) body(i);
        executed.fetch_add(end - begin, std::memory_order_relaxed);
      }
    });
  }
  pool.wait_idle();
  return executed.load();
}

void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t chunks = std::min<std::size_t>(count, pool.size() * 4);
  const std::size_t per_chunk = (count + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(count, begin + per_chunk);
    if (begin >= end) break;
    pool.submit([begin, end, &body] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  pool.wait_idle();
}

}  // namespace tfpe::util
