#include "util/thread_pool.hpp"

#include <algorithm>

namespace tfpe::util {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t chunks = std::min<std::size_t>(count, pool.size() * 4);
  const std::size_t per_chunk = (count + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(count, begin + per_chunk);
    if (begin >= end) break;
    pool.submit([begin, end, &body] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  pool.wait_idle();
}

}  // namespace tfpe::util
