#include "util/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace tfpe::util {

namespace {

std::string scaled(double value, double scale, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value / scale, suffix);
  return buf;
}

}  // namespace

std::string format_bytes(double bytes) {
  if (bytes < kKB) return scaled(bytes, 1.0, "B");
  if (bytes < kMB) return scaled(bytes, kKB, "KB");
  if (bytes < kGB) return scaled(bytes, kMB, "MB");
  if (bytes < kTB) return scaled(bytes, kGB, "GB");
  return scaled(bytes, kTB, "TB");
}

std::string format_time(double seconds) {
  if (seconds < 0) {
    // Built with += rather than `"-" + format_time(...)`: the operator+
    // overload inlines string::insert, which trips a GCC 12 libstdc++
    // -Wrestrict false positive at -O3 (PR105651) and breaks -Werror builds.
    std::string negated = "-";
    negated += format_time(-seconds);
    return negated;
  }
  if (seconds < kMicro) return scaled(seconds, 1e-9, "ns");
  if (seconds < kMilli) return scaled(seconds, kMicro, "us");
  if (seconds < 1.0) return scaled(seconds, kMilli, "ms");
  if (seconds < 600.0) return scaled(seconds, 1.0, "s");
  if (seconds < kSecondsPerDay) return scaled(seconds, 3600.0, "hr");
  return scaled(seconds, kSecondsPerDay, "days");
}

std::string format_flops(double flops) {
  if (flops < kGFLOPs) return scaled(flops, 1e6, "MFLOP");
  if (flops < kTFLOPs) return scaled(flops, kGFLOPs, "GFLOP");
  if (flops < kPFLOPs) return scaled(flops, kTFLOPs, "TFLOP");
  return scaled(flops, kPFLOPs, "PFLOP");
}

std::string format_bandwidth(double bytes_per_second) {
  return format_bytes(bytes_per_second) + "/s";
}

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace tfpe::util
