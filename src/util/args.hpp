#pragma once
// Minimal command-line flag parser for the tools: supports
//   --flag value   and   --flag=value   and boolean   --flag
// Unknown flags are collected as errors so tools can fail fast with usage.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tfpe::util {

class ArgParser {
 public:
  /// Parses argv; flags must start with "--". Positional arguments are kept
  /// in order and available via positional().
  ArgParser(int argc, const char* const* argv);

  /// Value of --name, if present (boolean flags yield "").
  std::optional<std::string> get(const std::string& name) const;

  std::string get_or(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int_or(const std::string& name, std::int64_t fallback) const;
  double get_double_or(const std::string& name, double fallback) const;
  bool has(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags seen but never queried — call after all get()s to reject typos.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace tfpe::util
