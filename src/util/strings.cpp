#include "util/strings.hpp"

namespace tfpe::util {

namespace {
std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}
}  // namespace

std::vector<std::string> split_list(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto pos = text.find(sep, start);
    const std::string piece =
        trim(text.substr(start, pos == std::string::npos ? std::string::npos
                                                         : pos - start));
    if (!piece.empty()) out.push_back(piece);
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace tfpe::util
