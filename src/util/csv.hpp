#pragma once
// Minimal CSV emitter for the figure-reproduction benches: each bench can
// mirror its printed series into a CSV file for external plotting.

#include <fstream>
#include <string>
#include <vector>

namespace tfpe::util {

class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_header(const std::vector<std::string>& cols);
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: all-numeric row.
  void write_row(const std::vector<double>& cells);

 private:
  static std::string escape(const std::string& cell);
  std::ofstream out_;
  std::size_t arity_ = 0;
};

}  // namespace tfpe::util
