#pragma once
// Factories that perform the paper's S1 counting for each operation class:
// plain / batched matrix multiplies, SUMMA-distributed multiplies, fused
// FlashAttention Logit/Attend, and element-wise vector ops.
//
// Conventions:
//  * All counts are per GPU and per microbatch.
//  * FP16 storage: kBytesPerElement = 2 for activations and weights.
//  * CommRequest.bytes is the size of the FULL tensor entering the
//    collective (the paper's "Vol" column, in bytes); the collective model
//    applies the ring (g-1)/g factor.
//  * Backward matmul = two matmuls (dA = dC B^T, dB = A^T dC) so ~2x the
//    forward FLOPs and bytes; backward collectives are the conjugates of the
//    forward ones (AG <-> RS) with equal volume.

#include <cstdint>

#include "ops/op.hpp"

namespace tfpe::ops {

inline constexpr double kBytesPerElement = 2.0;  ///< FP16.
inline constexpr double kBytesPerMaskElement = 1.0;

/// C[m x n] = A[m x k] B[k x n], `batch` independent instances.
/// λf = (2k-1)mn, λm = 2(mk + kn + mn) per instance.
/// If `store_a`, A is kept for backward (counts toward activation memory);
/// B is a weight matrix accounted in the weight-memory model unless
/// `store_b` is set (activation-activation multiplies).
Op matmul(std::string name, double m, double n, double k, double batch = 1.0,
          bool store_a = true, bool store_b = false);

/// Fused FlashAttention Logit/Attend: softmax(Q K^T) V for `batch` samples
/// and `heads` local heads, query length lq, key/value length lkv, head dim
/// eh. Memory traffic touches only inputs/outputs (no l x l intermediate);
/// the backward pass recomputes the forward (2.5x forward FLOPs).
/// `stored_elems` is the caller-determined activation storage (e.g. the
/// pre-AllGather K/V shards in 2D TP). `kv_heads` (grouped-query attention)
/// shrinks the K/V traffic; 0 means kv_heads == heads.
Op fused_attention(std::string name, double batch, double heads, double lq,
                   double lkv, double eh, double stored_elems,
                   double kv_heads = 0);

/// Element-wise vector op over `elements` values with `flops_per_element`.
/// `stored_elems` activation elements are retained for backward.
/// `stored_mask_elems` retains 1-byte mask elements (dropout).
Op vector_op(std::string name, double elements, double flops_per_element,
             double stored_elems, double stored_mask_elems = 0.0);

// Canonical vector ops used by the transformer block.
Op layernorm(std::string name, double elements);
Op gelu(std::string name, double elements);
Op dropout(std::string name, double elements);
Op residual_add(std::string name, double elements);

/// SUMMA-distributed C[M x N] = A[M x K] B[K x N] on an n1 x n2 grid with
/// nb contraction panels (paper Appendix A, Table A2). Global (unpartitioned)
/// M, N, K. Per-GPU comm: A row-block broadcast over TP1 of M*K/n2 elements
/// and B column-block broadcast over TP2 of K*N/n1 elements.
Op summa_matmul(std::string name, double M, double N, double K,
                std::int64_t n1, std::int64_t n2, std::int64_t nb,
                bool store_a = true);

/// Append a communication request to the op's forward list and its conjugate
/// (AG <-> RS, B <-> R, AR/P2P self-conjugate) to the backward list.
void add_conjugate_comm(Op& op, Collective coll, CommGroup group, Bytes bytes);

// -- Execution-phase specializations (core/workload.hpp). The factories
// above count a training op: forward + backward + stored activations. The
// inference phases reuse the same counting with the backward dimension
// removed at the op level, so every downstream consumer (signature
// compiler, roofline, lint) sees ordinary Ops.

/// Re-emit `op` for a forward-only phase: no backward FLOPs/bytes, no
/// backward collectives, and no stored activations (nothing is kept for a
/// pass that never runs).
Op forward_only(Op op);

/// Decode-phase fused attention: `batch` single-token queries (one per
/// resident request), each attending over a `kv_len`-token K/V cache.
/// GEMV-shaped — fused_attention with lq = 1 — so the roofline lands
/// memory-bound: the dominant traffic is the K/V cache read of
/// 2 * kv_heads * kv_len * eh elements per request. Forward-only.
Op decode_attention(std::string name, double batch, double heads,
                    double kv_len, double eh, double kv_heads = 0);

}  // namespace tfpe::ops
