#include "ops/op.hpp"

namespace tfpe::ops {

std::string to_string(Collective c) {
  switch (c) {
    case Collective::None: return "-";
    case Collective::AllGather: return "AG";
    case Collective::ReduceScatter: return "RS";
    case Collective::AllReduce: return "AR";
    case Collective::Broadcast: return "B";
    case Collective::Reduce: return "R";
    case Collective::PointToPoint: return "P2P";
    case Collective::AllToAll: return "A2A";
  }
  return "?";
}

std::string to_string(CommGroup g) {
  switch (g) {
    case CommGroup::TP1: return "TP1";
    case CommGroup::TP2: return "TP2";
    case CommGroup::DP: return "DP";
    case CommGroup::PP: return "PP";
  }
  return "?";
}

std::string to_string(ComputeUnit u) {
  switch (u) {
    case ComputeUnit::TensorCore: return "tensor";
    case ComputeUnit::Vector: return "vector";
    case ComputeUnit::None: return "none";
  }
  return "?";
}

}  // namespace tfpe::ops
