#pragma once
// Operation descriptors — the unit of the paper's S1 counting stage.
//
// Each transformer-block operation is described by its per-GPU, per-microbatch
// FLOP count, HBM traffic, stored-activation footprint and communication
// requests (collective type, group, bytes). The evaluator (S2) converts these
// into time with the roofline + collective models. All counts carry strong
// unit types (util/units.hpp) so a bytes/flops mix-up cannot compile.

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace tfpe::ops {

/// Which execution unit services the op's FLOPs (paper: tensor-core rate for
/// matrix multiplies, vector rate for LN/Softmax/GeLU/Dropout/residual).
enum class ComputeUnit { TensorCore, Vector, None };

enum class Collective {
  None,
  AllGather,
  ReduceScatter,
  AllReduce,
  Broadcast,
  Reduce,
  PointToPoint,
  AllToAll,  ///< MoE token dispatch/combine (expert parallelism).
};

/// Which orthogonal GPU group a communication runs over.
/// TP1 = first tensor-parallel dimension (n1), TP2 = second (n2),
/// DP = data parallel, PP = pipeline neighbors.
enum class CommGroup { TP1, TP2, DP, PP };

struct CommRequest {
  Collective collective = Collective::None;
  CommGroup group = CommGroup::TP1;
  Bytes bytes;  ///< V: bytes per GPU entering the collective.
};

struct Op {
  std::string name;
  /// Human-readable partitioned-shape description ("(b, l/n2, e) x (e, f/n1)")
  /// used to regenerate the paper's Tables I / II / A2.
  std::string detail;
  ComputeUnit unit = ComputeUnit::Vector;

  // Forward pass counts (per GPU, per microbatch).
  Flops fwd_flops;
  Bytes fwd_bytes;
  std::vector<CommRequest> fwd_comm;

  // Backward pass counts (per GPU, per microbatch).
  Flops bwd_flops;
  Bytes bwd_bytes;
  std::vector<CommRequest> bwd_comm;

  /// Bytes of intermediate activations this op keeps resident per microbatch
  /// for its backward pass (FlashAttention recomputation already accounted).
  Bytes stored_bytes;

  /// Forward dataflow interface in activation ELEMENTS (not bytes): the
  /// number of input elements this op consumes from its predecessor and the
  /// number of output elements it hands to its successor, after any
  /// collective attached to this op has resized the tensor. 0 means
  /// "unchecked" — the invariant analyzer skips the producer/consumer chain
  /// link at such ops (e.g. MoE dispatch, whose layout is data-dependent).
  double in_elems = 0;
  double out_elems = 0;

  // SUMMA panel metadata: when `summa_panels` > 1, the fwd/bwd TP comm of
  // this op is a sequence of per-panel broadcasts that overlap with the
  // per-panel matmuls; the evaluator applies the prologue/exposed model.
  // `summa_k` is the full contraction dimension (per-GPU) so panel matmul
  // efficiency can be derated via the FLOPs-latency term.
  std::int64_t summa_panels = 1;
  double summa_k = 0;
};

std::string to_string(Collective c);
std::string to_string(CommGroup g);
std::string to_string(ComputeUnit u);

}  // namespace tfpe::ops
