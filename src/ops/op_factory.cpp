#include "ops/op_factory.hpp"

#include <utility>

namespace tfpe::ops {

namespace {

Collective conjugate(Collective c) {
  switch (c) {
    case Collective::AllGather: return Collective::ReduceScatter;
    case Collective::ReduceScatter: return Collective::AllGather;
    case Collective::Broadcast: return Collective::Reduce;
    case Collective::Reduce: return Collective::Broadcast;
    default: return c;
  }
}

}  // namespace

void add_conjugate_comm(Op& op, Collective coll, CommGroup group, Bytes bytes) {
  op.fwd_comm.push_back({coll, group, bytes});
  op.bwd_comm.push_back({conjugate(coll), group, bytes});
}

Op matmul(std::string name, double m, double n, double k, double batch,
          bool store_a, bool store_b) {
  Op op;
  op.name = std::move(name);
  op.unit = ComputeUnit::TensorCore;
  op.fwd_flops = Flops(batch * (2.0 * k - 1.0) * m * n);
  op.fwd_bytes = Bytes(batch * kBytesPerElement * (m * k + k * n + m * n));
  // dA = dC B^T : (2n-1) m k FLOPs; dB = A^T dC : (2m-1) k n FLOPs.
  op.bwd_flops =
      Flops(batch * ((2.0 * n - 1.0) * m * k + (2.0 * m - 1.0) * k * n));
  op.bwd_bytes = 2.0 * op.fwd_bytes;
  op.stored_bytes = Bytes(batch * kBytesPerElement *
                          ((store_a ? m * k : 0.0) + (store_b ? k * n : 0.0)));
  op.in_elems = batch * m * k;
  op.out_elems = batch * m * n;
  return op;
}

Op fused_attention(std::string name, double batch, double heads, double lq,
                   double lkv, double eh, double stored_elems,
                   double kv_heads) {
  Op op;
  op.name = std::move(name);
  op.unit = ComputeUnit::TensorCore;
  const double bh = batch * heads;
  const double bh_kv = batch * (kv_heads > 0 ? kv_heads : heads);
  // Logits (lq x lkv x eh) + Attend (lq x eh x lkv) matmuls plus the fused
  // softmax (~5 FLOPs per logit, executed inside the kernel). Every query
  // head attends, so GQA does not change the FLOPs — only the K/V traffic.
  const double mm = bh * (2.0 * eh - 1.0) * lq * lkv * 2.0;
  const double sm = bh * 5.0 * lq * lkv;
  op.fwd_flops = Flops(mm + sm);
  // IO-aware fusion: traffic is Q + K + V + output only (FLASHATTENTION).
  op.fwd_bytes = Bytes(kBytesPerElement *
                       (bh * 2.0 * lq * eh + bh_kv * 2.0 * lkv * eh));
  // Backward recomputes the forward attention then runs the gradient
  // matmuls: ~2.5x the forward FLOPs (Dao et al. 2022).
  op.bwd_flops = 2.5 * op.fwd_flops;
  op.bwd_bytes = 2.0 * op.fwd_bytes;
  // Stored: caller-provided tensors, the attention output (the FlashAttention
  // backward needs Q, K, V and O), and per-row softmax statistics.
  op.stored_bytes = Bytes(kBytesPerElement * (stored_elems + bh * lq * eh) +
                          4.0 * bh * lq);
  // Dense-attention default: Q plus full K/V; builders override `in_elems`
  // when K/V arrive sharded (2D gather/ring) or the kind is windowed/linear.
  op.in_elems = bh * lq * eh + bh_kv * 2.0 * lkv * eh;
  op.out_elems = bh * lq * eh;
  return op;
}

Op vector_op(std::string name, double elements, double flops_per_element,
             double stored_elems, double stored_mask_elems) {
  Op op;
  op.name = std::move(name);
  op.unit = ComputeUnit::Vector;
  op.fwd_flops = Flops(elements * flops_per_element);
  op.fwd_bytes = Bytes(2.0 * kBytesPerElement * elements);  // read + write
  op.bwd_flops = op.fwd_flops;
  // Backward reads the incoming gradient and the stored input, writes the
  // outgoing gradient.
  op.bwd_bytes = Bytes(3.0 * kBytesPerElement * elements);
  op.stored_bytes = Bytes(kBytesPerElement * stored_elems +
                          kBytesPerMaskElement * stored_mask_elems);
  op.in_elems = elements;
  op.out_elems = elements;
  return op;
}

Op layernorm(std::string name, double elements) {
  // Mean, variance, normalize, scale + shift: ~5 FLOPs/element.
  return vector_op(std::move(name), elements, 5.0, elements);
}

Op gelu(std::string name, double elements) {
  // tanh-approximation GeLU: ~8 FLOPs/element.
  return vector_op(std::move(name), elements, 8.0, elements);
}

Op dropout(std::string name, double elements) {
  // Mask multiply; stores the 1-byte mask, not the activations.
  return vector_op(std::move(name), elements, 2.0, 0.0, elements);
}

Op residual_add(std::string name, double elements) {
  // x + y; nothing stored (gradient passes through unchanged).
  return vector_op(std::move(name), elements, 1.0, 0.0);
}

Op summa_matmul(std::string name, double M, double N, double K, std::int64_t n1,
                std::int64_t n2, std::int64_t nb, bool store_a) {
  Op op;
  op.name = std::move(name);
  op.unit = ComputeUnit::TensorCore;
  const double p = static_cast<double>(n1) * static_cast<double>(n2);
  op.fwd_flops = Flops((2.0 * K - 1.0) * M * N / p);
  // The gathered row/column blocks stream through HBM in addition to the
  // local C tile.
  op.fwd_bytes =
      Bytes(kBytesPerElement *
            (M * K / static_cast<double>(n2) +
             K * N / static_cast<double>(n1) + M * N / p));
  op.bwd_flops = 2.0 * op.fwd_flops;
  op.bwd_bytes = 2.0 * op.fwd_bytes;
  op.stored_bytes = Bytes(store_a ? kBytesPerElement * M * K / p : 0.0);
  op.in_elems = M * K / p;
  op.out_elems = M * N / p;

  const Bytes a_block_bytes =
      Bytes(kBytesPerElement * M * K / static_cast<double>(n2));
  const Bytes b_block_bytes =
      Bytes(kBytesPerElement * K * N / static_cast<double>(n1));
  // Forward: broadcast A panels along process rows (TP1 group of n1) and B
  // panels along process columns (TP2 group of n2).
  op.fwd_comm.push_back({Collective::Broadcast, CommGroup::TP1, a_block_bytes});
  op.fwd_comm.push_back({Collective::Broadcast, CommGroup::TP2, b_block_bytes});
  // Backward: dA = dC B^T and dB = A^T dC are SUMMA multiplies with a
  // Broadcast and a Reduce each (same block volumes).
  op.bwd_comm.push_back({Collective::Broadcast, CommGroup::TP2, b_block_bytes});
  op.bwd_comm.push_back({Collective::Reduce, CommGroup::TP1, a_block_bytes});
  op.bwd_comm.push_back({Collective::Broadcast, CommGroup::TP1, a_block_bytes});
  op.bwd_comm.push_back({Collective::Reduce, CommGroup::TP2, b_block_bytes});

  op.summa_panels = nb;
  op.summa_k = K;
  return op;
}

Op forward_only(Op op) {
  op.bwd_flops = Flops(0);
  op.bwd_bytes = Bytes(0);
  op.bwd_comm.clear();
  op.stored_bytes = Bytes(0);
  return op;
}

Op decode_attention(std::string name, double batch, double heads,
                    double kv_len, double eh, double kv_heads) {
  // Single-token queries over the cache: the training counting with lq = 1
  // (GQA K/V shrink included), then the backward dimension stripped.
  return forward_only(fused_attention(std::move(name), batch, heads,
                                      /*lq=*/1.0, /*lkv=*/kv_len, eh,
                                      /*stored_elems=*/0.0, kv_heads));
}

}  // namespace tfpe::ops
