#include "analysis/consistency.hpp"

#include <bit>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace tfpe::analysis {

namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

std::string op_name(std::size_t i) { return "op[" + std::to_string(i) + "]"; }
std::string req_name(std::size_t r) {
  return "comm[" + std::to_string(r) + "]";
}

}  // namespace

LintReport lint_batched(const core::CostSignature& sig,
                        const core::BatchedSignature& bat,
                        const LintOptions& opts) {
  DiagnosticSink sink(opts.rules);
  const std::size_t n = sig.ops.size();
  const std::size_t nc = sig.comm.size();

  const auto shape = [&](const std::string& op, double expected,
                         double actual, const std::string& what) {
    std::ostringstream msg;
    msg << what << ": expected " << expected << ", got " << actual;
    sink.emit(RuleId::kBatchedShape, op, expected, actual, msg.str());
  };

  // --- batched-shape: array sizes mirror the AoS signature. ---
  bool sized_ok = true;
  const auto size_check = [&](std::size_t got, std::size_t want,
                              const std::string& what) {
    if (got != want) {
      shape("<batch>", static_cast<double>(want), static_cast<double>(got),
            what + " array length");
      sized_ok = false;
    }
  };
  size_check(bat.fwd_flops.size(), n, "fwd_flops");
  size_check(bat.bwd_flops.size(), n, "bwd_flops");
  size_check(bat.fwd_bytes.size(), n, "fwd_bytes");
  size_check(bat.bwd_bytes.size(), n, "bwd_bytes");
  size_check(bat.panels.size(), n, "panels");
  size_check(bat.tensor_core.size(), n, "tensor_core");
  size_check(bat.fwd_comm_begin.size(), n, "fwd_comm_begin");
  size_check(bat.fwd_comm_count.size(), n, "fwd_comm_count");
  size_check(bat.bwd_comm_begin.size(), n, "bwd_comm_begin");
  size_check(bat.bwd_comm_count.size(), n, "bwd_comm_count");
  size_check(bat.comm_kind.size(), nc, "comm_kind");
  size_check(bat.comm_group.size(), nc, "comm_group");
  size_check(bat.comm_panel_bytes.size(), nc, "comm_panel_bytes");
  size_check(bat.comm_price_row.size(), nc, "comm_price_row");
  size_check(bat.head_fwd_flops.size(), sig.head.size(), "head_fwd_flops");
  size_check(bat.head_bwd_flops.size(), sig.head.size(), "head_bwd_flops");
  size_check(bat.head_fwd_bytes.size(), sig.head.size(), "head_fwd_bytes");
  size_check(bat.head_bwd_bytes.size(), sig.head.size(), "head_bwd_bytes");
  size_check(bat.head_tensor_core.size(), sig.head.size(),
             "head_tensor_core");
  if (!sized_ok) return sink.take();  // Element checks would index OOB.

  // --- batched-shape: per-slot value agreement (bitwise). ---
  for (std::size_t i = 0; i < n; ++i) {
    const core::SigOp& op = sig.ops[i];
    const auto mirror = [&](double want, double got,
                            const std::string& what) {
      if (bits(want) != bits(got)) {
        shape(op_name(i), want, got, what + " differs from the signature");
      }
    };
    mirror(op.fwd_flops.value(), bat.fwd_flops[i].value(), "fwd flops");
    mirror(op.bwd_flops.value(), bat.bwd_flops[i].value(), "bwd flops");
    mirror(op.fwd_bytes.value(), bat.fwd_bytes[i].value(), "fwd bytes");
    mirror(op.bwd_bytes.value(), bat.bwd_bytes[i].value(), "bwd bytes");
    if (op.panels != bat.panels[i]) {
      shape(op_name(i), static_cast<double>(op.panels),
            static_cast<double>(bat.panels[i]), "panel count");
    }
    if ((op.tensor_core ? 1 : 0) != bat.tensor_core[i]) {
      shape(op_name(i), op.tensor_core ? 1.0 : 0.0,
            static_cast<double>(bat.tensor_core[i]), "tensor-core flag");
    }
    const auto range = [&](std::uint32_t begin, std::uint32_t count,
                           std::uint32_t want_begin, std::uint32_t want_count,
                           const std::string& what) {
      if (begin != want_begin || count != want_count) {
        shape(op_name(i), static_cast<double>(want_begin),
              static_cast<double>(begin), what + " comm range differs");
      } else if (static_cast<std::size_t>(begin) + count > nc) {
        shape(op_name(i), static_cast<double>(nc),
              static_cast<double>(begin) + count,
              what + " comm range exceeds the pool");
      }
    };
    range(bat.fwd_comm_begin[i], bat.fwd_comm_count[i], op.fwd_comm_begin,
          op.fwd_comm_count, "forward");
    range(bat.bwd_comm_begin[i], bat.bwd_comm_count[i], op.bwd_comm_begin,
          op.bwd_comm_count, "backward");
  }
  for (std::size_t r = 0; r < nc; ++r) {
    const core::SigComm& req = sig.comm[r];
    if (bat.comm_kind[r] != req.collective) {
      shape(req_name(r), static_cast<double>(req.collective),
            static_cast<double>(bat.comm_kind[r]),
            "collective kind differs from the signature");
    }
    if (bat.comm_group[r] != static_cast<std::uint8_t>(req.group)) {
      shape(req_name(r), static_cast<double>(req.group),
            static_cast<double>(bat.comm_group[r]),
            "comm group differs from the signature");
    }
  }
  for (std::size_t i = 0; i < sig.head.size(); ++i) {
    const core::SigHeadOp& op = sig.head[i];
    const std::string name = "head[" + std::to_string(i) + "]";
    if (bits(op.fwd_flops.value()) != bits(bat.head_fwd_flops[i].value()) ||
        bits(op.bwd_flops.value()) != bits(bat.head_bwd_flops[i].value()) ||
        bits(op.fwd_bytes.value()) != bits(bat.head_fwd_bytes[i].value()) ||
        bits(op.bwd_bytes.value()) != bits(bat.head_bwd_bytes[i].value()) ||
        (op.tensor_core ? 1 : 0) != bat.head_tensor_core[i]) {
      shape(name, op.fwd_flops.value(), bat.head_fwd_flops[i].value(),
            "head op operands differ from the signature");
    }
  }

  // --- batched-panel-scale: pre-scaled volume is the exact scalar product.
  // Resolve each request's owning op through the begin/count ranges, as the
  // packer does; unowned requests keep scale 1.
  std::vector<double> inv_scale(nc, 1.0);
  for (const core::SigOp& op : sig.ops) {
    const double inv_panels = 1.0 / static_cast<double>(op.panels);
    for (std::uint32_t r = op.fwd_comm_begin;
         r < op.fwd_comm_begin + op.fwd_comm_count && r < nc; ++r) {
      inv_scale[r] = inv_panels;
    }
    for (std::uint32_t r = op.bwd_comm_begin;
         r < op.bwd_comm_begin + op.bwd_comm_count && r < nc; ++r) {
      inv_scale[r] = inv_panels;
    }
  }
  for (std::size_t r = 0; r < nc; ++r) {
    const double want = (sig.comm[r].bytes * inv_scale[r]).value();
    const double got = bat.comm_panel_bytes[r].value();
    if (bits(want) != bits(got)) {
      std::ostringstream msg;
      msg << "pre-scaled panel volume is " << got << " B, scalar path feeds "
          << want << " B to collective_time";
      sink.emit(RuleId::kBatchedPanelScale, req_name(r), want, got,
                msg.str());
    }
  }

  // --- batched-price-row: the dedup preserves the request multiset. ---
  bool rows_ok = true;
  for (std::size_t u = 0; u < bat.price_rep.size(); ++u) {
    if (bat.price_rep[u] >= nc) {
      sink.emit(RuleId::kBatchedPriceRow, "row[" + std::to_string(u) + "]",
                static_cast<double>(nc), static_cast<double>(bat.price_rep[u]),
                "row representative indexes past the comm pool");
      rows_ok = false;
    } else if (bat.comm_price_row[bat.price_rep[u]] != u) {
      sink.emit(RuleId::kBatchedPriceRow, "row[" + std::to_string(u) + "]",
                static_cast<double>(u),
                static_cast<double>(bat.comm_price_row[bat.price_rep[u]]),
                "row representative does not map back to its own row");
      rows_ok = false;
    }
  }
  for (std::size_t r = 0; rows_ok && r < nc; ++r) {
    const std::uint32_t u = bat.comm_price_row[r];
    if (u >= bat.price_rep.size()) {
      sink.emit(RuleId::kBatchedPriceRow, req_name(r),
                static_cast<double>(bat.price_rep.size()),
                static_cast<double>(u),
                "request maps to a nonexistent pricing row");
      continue;
    }
    const std::uint32_t rep = bat.price_rep[u];
    if (bat.comm_kind[rep] != bat.comm_kind[r] ||
        bat.comm_group[rep] != bat.comm_group[r] ||
        bits(bat.comm_panel_bytes[rep].value()) !=
            bits(bat.comm_panel_bytes[r].value())) {
      std::ostringstream msg;
      msg << "request shares pricing row " << u
          << " with a different (collective, group, volume) triple — the "
             "dedup no longer preserves the request multiset";
      sink.emit(RuleId::kBatchedPriceRow, req_name(r),
                bat.comm_panel_bytes[rep].value(),
                bat.comm_panel_bytes[r].value(), msg.str());
    }
  }

  // --- batched-group-mask: bit g set iff group g appears in the pool. ---
  std::uint8_t want_mask = 0;
  for (std::size_t r = 0; r < nc; ++r) {
    want_mask |= static_cast<std::uint8_t>(1u << bat.comm_group[r]);
  }
  if (want_mask != bat.comm_groups_mask) {
    std::ostringstream msg;
    msg << "comm_groups_mask is 0x" << std::hex
        << static_cast<unsigned>(bat.comm_groups_mask)
        << ", pool contains groups 0x" << static_cast<unsigned>(want_mask)
        << " — the comm-block memo would key on the wrong columns";
    sink.emit(RuleId::kBatchedGroupMask, "<batch>",
              static_cast<double>(want_mask),
              static_cast<double>(bat.comm_groups_mask), msg.str());
  }

  // --- batched-summa-ops: exactly the panels>1 ops, in op order. ---
  std::vector<std::uint32_t> want_summa;
  for (std::size_t i = 0; i < n; ++i) {
    if (sig.ops[i].panels > 1) {
      want_summa.push_back(static_cast<std::uint32_t>(i));
    }
  }
  if (want_summa != bat.summa_ops) {
    sink.emit(RuleId::kBatchedSummaOps, "<batch>",
              static_cast<double>(want_summa.size()),
              static_cast<double>(bat.summa_ops.size()),
              "summa_ops does not list exactly the panels>1 ops in op "
              "order");
  }

  return sink.take();
}

LintReport lint_batch_scratch(const core::BatchedSignature& bat,
                              const core::BatchScratch& scratch,
                              std::size_t n_placements,
                              const LintOptions& opts) {
  DiagnosticSink sink(opts.rules);
  const auto diag = [&](const std::string& op, double expected, double actual,
                        const std::string& what) {
    std::ostringstream msg;
    msg << what << ": expected " << expected << ", got " << actual;
    sink.emit(RuleId::kBatchedScratchShape, op, expected, actual, msg.str());
  };

  // Column maps: one entry per placement, each indexing a distinct-nvs slot.
  // Only the groups the pool actually uses are columned (unused groups may
  // carry stale state; the kernel never reads them).
  for (std::size_t g = 0; g < 4; ++g) {
    if (!(bat.comm_groups_mask & (1u << g))) continue;
    const std::string name = "group[" + std::to_string(g) + "]";
    if (scratch.nvs_column[g].size() != n_placements) {
      diag(name, static_cast<double>(n_placements),
           static_cast<double>(scratch.nvs_column[g].size()),
           "nvs_column length");
      continue;
    }
    for (std::uint32_t col : scratch.nvs_column[g]) {
      if (col >= scratch.distinct_nvs[g].size()) {
        diag(name, static_cast<double>(scratch.distinct_nvs[g].size()), col,
             "column index past the distinct-nvs list");
        break;
      }
    }
  }

  // Row offsets: one per pricing row, prefix sums of the column counts.
  if (scratch.row_offset.size() != bat.price_rep.size()) {
    diag("<scratch>", static_cast<double>(bat.price_rep.size()),
         static_cast<double>(scratch.row_offset.size()),
         "row_offset length (one per pricing row)");
    return sink.take();
  }
  std::size_t cells = 0;
  for (std::size_t u = 0; u < scratch.row_offset.size(); ++u) {
    if (scratch.row_offset[u] != cells) {
      diag("row[" + std::to_string(u) + "]", static_cast<double>(cells),
           static_cast<double>(scratch.row_offset[u]),
           "row offset breaks the prefix-sum layout");
      return sink.take();
    }
    cells += scratch.distinct_nvs[bat.comm_group[bat.price_rep[u]]].size();
  }
  if (scratch.comm_table.size() != cells) {
    diag("<scratch>", static_cast<double>(cells),
         static_cast<double>(scratch.comm_table.size()),
         "comm_table cell count");
  }
  if (scratch.cell_epoch.size() != cells) {
    diag("<scratch>", static_cast<double>(cells),
         static_cast<double>(scratch.cell_epoch.size()),
         "cell_epoch stamp count");
  }
  // Pre-walked placements: one per distinct-nvs column of every group the
  // pool actually uses (unused groups may carry stale state; the kernel
  // never reads them).
  for (std::size_t g = 0; g < 4; ++g) {
    if (!(bat.comm_groups_mask & (1u << g))) continue;
    if (scratch.placed[g].size() != scratch.distinct_nvs[g].size()) {
      diag("group[" + std::to_string(g) + "]",
           static_cast<double>(scratch.distinct_nvs[g].size()),
           static_cast<double>(scratch.placed[g].size()),
           "placed-group count out of step with the distinct-nvs list");
    }
  }
  if (scratch.block_keys.size() != scratch.blocks.size()) {
    diag("<scratch>", static_cast<double>(scratch.blocks.size()),
         static_cast<double>(scratch.block_keys.size()),
         "comm-block memo keys out of step with its entries");
  }
  return sink.take();
}

LintReport lint_system(const hw::SystemConfig& sys, const LintOptions& opts) {
  DiagnosticSink sink(opts.rules);
  const auto diag = [&](RuleId rule, const std::string& op, double expected,
                        double actual, const std::string& what) {
    std::ostringstream msg;
    msg << what << ": expected " << expected << ", got " << actual;
    sink.emit(rule, op, expected, actual, msg.str());
  };
  const std::string gpu = sys.gpu.name.empty() ? "<gpu>" : sys.gpu.name;

  if (!(sys.gpu.tensor_flops > FlopsPerSec(0))) {
    diag(RuleId::kSystemCompute, gpu, 1.0, sys.gpu.tensor_flops.value(),
         "tensor-core rate must be > 0");
  }
  if (!(sys.gpu.vector_flops > FlopsPerSec(0))) {
    diag(RuleId::kSystemCompute, gpu, 1.0, sys.gpu.vector_flops.value(),
         "vector rate must be > 0");
  }
  if (sys.gpu.flops_latency < Seconds(0)) {
    diag(RuleId::kSystemCompute, gpu, 0.0, sys.gpu.flops_latency.value(),
         "kernel launch latency must be >= 0");
  }
  if (!(sys.gpu.hbm_bandwidth > BytesPerSec(0))) {
    diag(RuleId::kSystemCompute, gpu, 1.0, sys.gpu.hbm_bandwidth.value(),
         "HBM bandwidth must be > 0");
  }
  if (!(sys.gpu.hbm_capacity > Bytes(0))) {
    diag(RuleId::kSystemCompute, gpu, 1.0, sys.gpu.hbm_capacity.value(),
         "HBM capacity must be > 0");
  }

  if (!(sys.net.nvs_bandwidth > BytesPerSec(0))) {
    diag(RuleId::kSystemNetwork, "<net>", 1.0, sys.net.nvs_bandwidth.value(),
         "NVS bandwidth must be > 0");
  }
  if (!(sys.net.ib_bandwidth > BytesPerSec(0))) {
    diag(RuleId::kSystemNetwork, "<net>", 1.0, sys.net.ib_bandwidth.value(),
         "IB bandwidth must be > 0");
  }
  if (sys.net.nvs_latency < Seconds(0)) {
    diag(RuleId::kSystemNetwork, "<net>", 0.0, sys.net.nvs_latency.value(),
         "fast-domain hop latency must be >= 0");
  }
  if (sys.net.ib_latency < Seconds(0)) {
    diag(RuleId::kSystemNetwork, "<net>", 0.0, sys.net.ib_latency.value(),
         "slow-domain hop latency must be >= 0");
  }
  if (!(sys.net.nics_per_gpu > 0.0)) {
    diag(RuleId::kSystemNetwork, "<net>", 1.0, sys.net.nics_per_gpu,
         "NIC rail count must be > 0");
  }
  if (!(sys.net.efficiency > 0.0) || sys.net.efficiency > 1.0) {
    diag(RuleId::kSystemNetwork, "<net>", 0.7, sys.net.efficiency,
         "network efficiency must be in (0, 1]");
  }
  if (sys.net.oversubscription < 1.0) {
    diag(RuleId::kSystemNetwork, "<net>", 1.0, sys.net.oversubscription,
         "oversubscription ratio must be >= 1");
  }

  if (sys.n_gpus < 1) {
    diag(RuleId::kSystemDomain, "<system>", 1.0,
         static_cast<double>(sys.n_gpus), "GPU count must be >= 1");
  }
  if (sys.nvs_domain < 1) {
    diag(RuleId::kSystemDomain, "<system>", 1.0,
         static_cast<double>(sys.nvs_domain), "NVS domain must be >= 1");
  } else if (sys.n_gpus >= 1 && sys.n_gpus % sys.nvs_domain != 0) {
    diag(RuleId::kSystemDomain, "<system>", 0.0,
         static_cast<double>(sys.n_gpus % sys.nvs_domain),
         "NVS domain must divide the GPU count");
  }
  if (!(sys.host_bandwidth > BytesPerSec(0))) {
    diag(RuleId::kSystemDomain, "<system>", 1.0, sys.host_bandwidth.value(),
         "host link bandwidth must be > 0");
  }

  sink.merge(lint_topology(sys.resolved_fabric(), sys.n_gpus, opts));
  return sink.take();
}

LintReport lint_system(const hw::SystemConfig& sys,
                       const core::CostSignature& sig,
                       const LintOptions& opts) {
  DiagnosticSink sink(opts.rules);
  sink.merge(lint_system(sys, opts));
  // Static residency floor: weights + gradients + optimizer are resident
  // regardless of recompute/offload settings; exceeding HBM capacity means
  // no EvalOptions can make this (signature, system) bind fit.
  const Bytes floor = sig.mem.weights + sig.mem.gradients + sig.mem.optimizer;
  if (sys.gpu.hbm_capacity > Bytes(0) && floor > sys.gpu.hbm_capacity) {
    std::ostringstream msg;
    msg << "static residency (weights+gradients+optimizer) is "
        << floor.value() << " B, HBM capacity is "
        << sys.gpu.hbm_capacity.value()
        << " B — no recompute or offload setting can fit this bind";
    sink.emit(RuleId::kSystemHbmFloor,
              sys.gpu.name.empty() ? "<gpu>" : sys.gpu.name,
              sys.gpu.hbm_capacity.value(), floor.value(), msg.str());
  }
  return sink.take();
}

void assert_batched_invariants(const core::CostSignature& sig,
                               const core::BatchedSignature& bat) {
  const LintReport report = lint_batched(sig, bat);
  if (report.errors() > 0) {
    throw std::logic_error("batched lowering invariants violated:\n" +
                           report.summary());
  }
}

}  // namespace tfpe::analysis
