#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

namespace tfpe::analysis {

namespace {

constexpr std::array<RuleInfo, kRuleCount> kRegistry{{
    {RuleId::kOpSequence, "TFPE-OP-001", "op-sequence", Severity::kError,
     "the block must emit the canonical op order"},
    {RuleId::kFlopInvariance, "TFPE-OP-002", "flop-invariance",
     Severity::kError,
     "n1*n2 x per-GPU FLOPs must reproduce the serial block"},
    {RuleId::kActivationTerm, "TFPE-OP-003", "activation-term",
     Severity::kError, "each op must store exactly its table entry"},
    {RuleId::kActivationSum, "TFPE-OP-004", "activation-sum", Severity::kError,
     "the per-block stored total must partition across the ops"},
    {RuleId::kCollectiveStructure, "TFPE-OP-005", "collective-structure",
     Severity::kError,
     "each op must carry the collectives its table row prescribes"},
    {RuleId::kCollectiveVolume, "TFPE-OP-006", "collective-volume",
     Severity::kError,
     "collective volumes must match the re-derived Table I/II/A2 entries"},
    {RuleId::kShapeChain, "TFPE-OP-007", "shape-chain", Severity::kError,
     "each op's output element count must feed the next op's input"},
    {RuleId::kFwdBwdComm, "TFPE-OP-008", "fwd-bwd-comm", Severity::kError,
     "backward collectives must be the conjugates of the forward ones"},
    {RuleId::kFwdBwdFlops, "TFPE-OP-009", "fwd-bwd-flops", Severity::kWarning,
     "bwd/fwd FLOP ratios must stay in the counting-rule bands"},
    {RuleId::kPpBoundary, "TFPE-OP-010", "pp-boundary", Severity::kError,
     "the pipeline handoff must be one (b,l,e)/(n1 n2) tensor"},
    {RuleId::kSignatureNonnegative, "TFPE-SIG-001", "signature-nonnegative",
     Severity::kError,
     "every signature operand, volume and memory term must be >= 0"},
    {RuleId::kSignatureOpCount, "TFPE-SIG-002", "signature-op-count",
     Severity::kError, "the signature must carry one SigOp per layer op"},
    {RuleId::kSignatureFlopTotal, "TFPE-SIG-003", "signature-flop-total",
     Severity::kError,
     "per-class FLOP sums must reproduce the layer totals"},
    {RuleId::kSignatureHbmTotal, "TFPE-SIG-004", "signature-hbm-total",
     Severity::kError,
     "per-class HBM byte sums must reproduce the layer totals"},
    {RuleId::kSignatureCommVolume, "TFPE-SIG-005", "signature-comm-volume",
     Severity::kError,
     "per-group collective volumes must match the layer extraction"},
    {RuleId::kSignatureStoredBytes, "TFPE-SIG-006", "signature-stored-bytes",
     Severity::kError,
     "stored activations must match layer.stored_bytes()"},
    {RuleId::kSignaturePpBoundary, "TFPE-SIG-007", "signature-pp-boundary",
     Severity::kError, "the pipeline handoff volume must be preserved"},
    {RuleId::kTopologyDepth, "TFPE-TOPO-001", "topology-depth",
     Severity::kError, "fabric depth must be within 1..kMaxDepth"},
    {RuleId::kTopologyPositive, "TFPE-TOPO-002", "topology-positive",
     Severity::kError,
     "every level needs positive bandwidth/rails and sane latency"},
    {RuleId::kTopologyFanIn, "TFPE-TOPO-003", "topology-fan-in",
     Severity::kError, "the fan-in product must cover the GPU count"},
    {RuleId::kTopologyMonotoneBw, "TFPE-TOPO-004", "topology-monotone-bw",
     Severity::kWarning,
     "per-member tier bandwidth should not increase outward"},
    {RuleId::kPlacementValid, "TFPE-PLACE-001", "placement-valid",
     Severity::kError, "size >= 1, 0 < nvs <= size, nvs divides size"},
    {RuleId::kPlacementLeafFanIn, "TFPE-PLACE-002", "placement-leaf-fan-in",
     Severity::kError,
     "nvs must not exceed the fabric's bounded leaf fan-in"},
    {RuleId::kBatchedShape, "TFPE-BATCH-001", "batched-shape",
     Severity::kError,
     "SoA arrays must mirror the signature record counts and ranges"},
    {RuleId::kBatchedPanelScale, "TFPE-BATCH-002", "batched-panel-scale",
     Severity::kError,
     "per-panel pre-scaled volumes must match the scalar comm pool"},
    {RuleId::kBatchedPriceRow, "TFPE-BATCH-003", "batched-price-row",
     Severity::kError,
     "pricing-row dedup must preserve the request multiset"},
    {RuleId::kBatchedGroupMask, "TFPE-BATCH-004", "batched-group-mask",
     Severity::kError,
     "comm_groups_mask must list exactly the groups in the pool"},
    {RuleId::kBatchedSummaOps, "TFPE-BATCH-005", "batched-summa-ops",
     Severity::kError,
     "summa_ops must list exactly the panelled ops in op order"},
    {RuleId::kBatchedScratchShape, "TFPE-BATCH-006", "batched-scratch-shape",
     Severity::kError,
     "BatchScratch column/row shapes must agree with the pool and batch"},
    {RuleId::kSweepOptions, "TFPE-SWEEP-001", "sweep-options",
     Severity::kError,
     "run_sweep rejects search.top_k / search.threads != 0"},
    {RuleId::kSweepCacheKey, "TFPE-SWEEP-002", "sweep-cache-key",
     Severity::kError,
     "no placement- or interleave-dependent field may reach a cache key"},
    {RuleId::kSweepWarmChain, "TFPE-SWEEP-003", "sweep-warm-chain",
     Severity::kWarning,
     "points sharing a warm-start chain key should share one roofline"},
    {RuleId::kSystemCompute, "TFPE-SYS-001", "system-compute",
     Severity::kError,
     "GPU rooflines need positive rates, capacity and sane latency"},
    {RuleId::kSystemNetwork, "TFPE-SYS-002", "system-network",
     Severity::kError,
     "network alpha/beta/rails/efficiency must be sane"},
    {RuleId::kSystemDomain, "TFPE-SYS-003", "system-domain", Severity::kError,
     "nvs_domain must be >= 1 and divide the GPU count"},
    {RuleId::kSystemHbmFloor, "TFPE-SYS-004", "system-hbm-floor",
     Severity::kError,
     "the placement-invariant memory floor must fit in HBM"},
    {RuleId::kConfigParse, "TFPE-CFG-001", "config-parse", Severity::kError,
     "the file must parse as [section] / key = value lines"},
    {RuleId::kConfigUnknownSection, "TFPE-CFG-002", "config-unknown-section",
     Severity::kWarning, "section name not recognized by any consumer"},
    {RuleId::kConfigUnknownKey, "TFPE-CFG-003", "config-unknown-key",
     Severity::kError, "key not in the section's schema (typo protection)"},
    {RuleId::kConfigValue, "TFPE-CFG-004", "config-value", Severity::kError,
     "value fails the key's type or range check"},
    {RuleId::kConfigListLength, "TFPE-CFG-005", "config-list-length",
     Severity::kError,
     "per-level list length must match the declared levels"},
    {RuleId::kConfigMissingKey, "TFPE-CFG-006", "config-missing-key",
     Severity::kError, "a required key for this section is absent"},
    {RuleId::kCodesignBudget, "TFPE-CODESIGN-001", "codesign-budget",
     Severity::kError,
     "target_params_b must be positive and tolerance in (0, 1)"},
    {RuleId::kCodesignAxis, "TFPE-CODESIGN-002", "codesign-axis",
     Severity::kError,
     "a shape axis needs positive entries, min <= max and step >= 1"},
    {RuleId::kCodesignEmptyFamily, "TFPE-CODESIGN-003",
     "codesign-empty-family", Severity::kWarning,
     "the options enumerate zero iso-parameter shapes"},
    {RuleId::kServeKvBudget, "TFPE-SERVE-001", "serve-kv-budget",
     Severity::kError,
     "the [serving] KV budget must admit at least one resident request"},
    {RuleId::kServeBatchCap, "TFPE-SERVE-002", "serve-batch-cap",
     Severity::kWarning,
     "requested decode batch exceeds the KV occupancy cap"},
}};

/// JSON string escaping (control chars, quotes, backslash).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON number: finite doubles round-trip at max precision, non-finite
/// values (never expected, but never invalid JSON) render as null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

std::string sarif_level(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

}  // namespace

std::string to_string(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

const RuleInfo& rule_info(RuleId id) {
  return kRegistry[static_cast<std::size_t>(id)];
}

const std::array<RuleInfo, kRuleCount>& all_rules() { return kRegistry; }

std::optional<RuleId> find_rule(std::string_view code_or_name) {
  for (const RuleInfo& r : kRegistry) {
    if (r.code == code_or_name || r.name == code_or_name) return r.id;
  }
  return std::nullopt;
}

bool RuleConfig::suppress(std::string_view code_or_name) {
  const auto id = find_rule(code_or_name);
  if (!id) return false;
  disable(*id);
  return true;
}

std::size_t LintReport::errors() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::kError;
                    }));
}

std::size_t LintReport::warnings() const {
  return diagnostics.size() - errors();
}

std::string LintReport::summary() const { return render_text(*this); }

void DiagnosticSink::emit(RuleId id, std::string op, double expected,
                          double actual, std::string message,
                          std::optional<Severity> severity, std::string file,
                          int line) {
  if (!rules_.is_enabled(id)) return;
  const RuleInfo& info = rule_info(id);
  Diagnostic d;
  d.id = id;
  d.rule = std::string(info.name);
  d.op = std::move(op);
  d.expected = expected;
  d.actual = actual;
  d.message = std::move(message);
  d.severity = severity.value_or(info.default_severity);
  d.file = std::move(file);
  d.line = line;
  report_.diagnostics.push_back(std::move(d));
}

void DiagnosticSink::merge(LintReport other) {
  for (Diagnostic& d : other.diagnostics) {
    if (!rules_.is_enabled(d.id)) continue;
    report_.diagnostics.push_back(std::move(d));
  }
}

std::string render_text(const LintReport& report) {
  std::ostringstream out;
  for (const Diagnostic& d : report.diagnostics) {
    out << "[" << to_string(d.severity) << "] " << d.rule << " (" << d.code()
        << ") @ " << d.op;
    if (!d.file.empty()) {
      out << " [" << d.file;
      if (d.line > 0) out << ":" << d.line;
      out << "]";
    }
    out << ": " << d.message << "\n";
  }
  out << report.errors() << " error(s), " << report.warnings()
      << " warning(s)";
  return out.str();
}

std::string render_json(const LintReport& report) {
  std::ostringstream out;
  out << "{\n  \"tool\": \"tfpe-lint\",\n  \"schema_version\": 1,\n"
      << "  \"errors\": " << report.errors()
      << ",\n  \"warnings\": " << report.warnings()
      << ",\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    out << (i ? ",\n    {" : "\n    {");
    out << "\"id\": \"" << d.code() << "\", \"rule\": \""
        << json_escape(d.rule) << "\", \"severity\": \""
        << to_string(d.severity) << "\", \"op\": \"" << json_escape(d.op)
        << "\", \"expected\": " << json_number(d.expected)
        << ", \"actual\": " << json_number(d.actual) << ", \"message\": \""
        << json_escape(d.message) << "\"";
    if (!d.file.empty()) {
      out << ", \"file\": \"" << json_escape(d.file) << "\", \"line\": "
          << d.line;
    }
    out << "}";
  }
  out << (report.diagnostics.empty() ? "],\n" : "\n  ],\n");
  out << "  \"clean\": " << (report.clean() ? "true" : "false") << "\n}\n";
  return out.str();
}

std::string render_sarif(const LintReport& report) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\n"
      << "      \"name\": \"tfpe-lint\",\n"
      << "      \"informationUri\": "
         "\"https://github.com/tfpe/tfpe\",\n"
      << "      \"rules\": [";
  const auto& rules = all_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const RuleInfo& r = rules[i];
    out << (i ? ",\n        {" : "\n        {");
    out << "\"id\": \"" << r.code << "\", \"name\": \"" << r.name
        << "\", \"shortDescription\": {\"text\": \"" << json_escape(r.summary)
        << "\"}, \"defaultConfiguration\": {\"level\": \""
        << sarif_level(r.default_severity) << "\"}}";
  }
  out << "\n      ]\n    }},\n"
      << "    \"results\": [";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    out << (i ? ",\n      {" : "\n      {");
    out << "\"ruleId\": \"" << d.code()
        << "\", \"ruleIndex\": " << static_cast<std::size_t>(d.id)
        << ", \"level\": \"" << sarif_level(d.severity)
        << "\", \"message\": {\"text\": \"" << json_escape(d.message)
        << "\"}, \"locations\": [{";
    if (!d.file.empty()) {
      out << "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
          << json_escape(d.file) << "\"}, \"region\": {\"startLine\": "
          << (d.line > 0 ? d.line : 1) << "}}, ";
    }
    out << "\"logicalLocations\": [{\"fullyQualifiedName\": \""
        << json_escape(d.op) << "\"}]}]";
    out << ", \"properties\": {\"expected\": " << json_number(d.expected)
        << ", \"actual\": " << json_number(d.actual) << "}}";
  }
  out << (report.diagnostics.empty() ? "]\n" : "\n    ]\n");
  out << "  }]\n}\n";
  return out.str();
}

}  // namespace tfpe::analysis
