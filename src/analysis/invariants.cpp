#include "analysis/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "comm/collective_algorithm.hpp"
#include "ops/op_factory.hpp"

namespace tfpe::analysis {

namespace {

using ops::Collective;
using ops::CommGroup;
using ops::kBytesPerElement;
using ops::kBytesPerMaskElement;

double rel_diff(double expected, double actual) {
  const double scale = std::max(std::abs(expected), std::abs(actual));
  if (scale == 0.0) return 0.0;
  return std::abs(expected - actual) / scale;
}

Collective conjugate(Collective c) {
  switch (c) {
    case Collective::AllGather: return Collective::ReduceScatter;
    case Collective::ReduceScatter: return Collective::AllGather;
    case Collective::Broadcast: return Collective::Reduce;
    case Collective::Reduce: return Collective::Broadcast;
    default: return c;  // AR, P2P, A2A are self-conjugate.
  }
}

struct ExpectedComm {
  Collective coll = Collective::None;
  CommGroup group = CommGroup::TP1;
  double bytes = 0;
};

/// Independent re-derivation of one op's table row: its stored-activation
/// bytes and forward collectives (paper Tables I / II / A2).
struct ExpectedOp {
  std::string name;
  double stored = 0;
  std::vector<ExpectedComm> fwd;
};

/// The per-op expectations for the block (mdl, cfg, B) in canonical order.
/// Formulas mirror the tables, NOT the builder code: volumes are written as
/// the paper's Vol column entries so a builder regression is caught even if
/// it is self-consistent.
std::vector<ExpectedOp> expected_ops(const model::TransformerConfig& mdl,
                                     const parallel::ParallelConfig& cfg,
                                     std::int64_t local_microbatch) {
  const double B = static_cast<double>(local_microbatch);
  const double l = static_cast<double>(mdl.seq_len);
  const double e = static_cast<double>(mdl.embed);
  const double f = static_cast<double>(mdl.hidden);
  const double h = static_cast<double>(mdl.heads);
  const double eh = static_cast<double>(mdl.head_dim());
  const double ekv = static_cast<double>(mdl.kv_embed());
  const double hkv = static_cast<double>(mdl.kv_heads_or_default());
  const double n1 = static_cast<double>(cfg.n1);
  const double n2 = static_cast<double>(cfg.n2);
  const bool two_d = cfg.strategy != parallel::TpStrategy::TP1D;
  const bool summa = cfg.strategy == parallel::TpStrategy::Summa2D;
  const double eps = kBytesPerElement;

  // Sequence shard the weight matmuls see (full l under 1D TP) and the
  // fully partitioned shard in the LayerNorm/dropout regions.
  const double lq = two_d ? l / n2 : l;
  const double ln_elems = B * l * e / (n1 * n2);

  // K/V volume gathered across n2 (Table II): full sequence for dense
  // attention, the window halo for windowed attention.
  const double kv_gather_len =
      mdl.attention == model::AttentionKind::kWindowed
          ? std::min(l, l / n2 + static_cast<double>(mdl.window))
          : l;
  const double vol_kv = eps * B * kv_gather_len * ekv / n1;

  // Sequence-parallel AllGather/ReduceScatter volume: b*l*e under 1D TP
  // (Table I), b*(l/n2)*e per grid row under 2D TP (Table II).
  const double vol_seq = eps * B * lq * e;

  std::vector<ExpectedOp> exp;
  auto add = [&](std::string name, double stored,
                 std::vector<ExpectedComm> fwd = {}) {
    exp.push_back({std::move(name), stored, std::move(fwd)});
  };

  // --- Self-attention ---
  if (summa) {
    // LN statistics AllReduce across the embedding shards (Table A2).
    add("ln1", eps * ln_elems, {{Collective::AllReduce, CommGroup::TP1, vol_seq}});
  } else {
    add("ln1", eps * ln_elems, {{Collective::AllGather, CommGroup::TP1, vol_seq}});
  }
  if (summa) {
    // SUMMA QKV: A row-panels over TP1 (b*l*e/n2) + B column-panels over
    // TP2 (e*(e+2ekv)/n1), Table A2 V1.
    add("qkv_proj", eps * B * l * e / (n1 * n2),
        {{Collective::Broadcast, CommGroup::TP1, eps * B * l * e / n2},
         {Collective::Broadcast, CommGroup::TP2, eps * e * (e + 2.0 * ekv) / n1}});
  } else {
    // Stores the gathered X~ (replicated over n1).
    add("qkv_proj", eps * B * lq * e);
  }
  {
    // FlashAttention keeps Q/K/V shards + output + softmax statistics.
    const double bh = B * h / n1;
    const double stored = eps * (B * lq * (e + 2.0 * ekv) / n1 + bh * lq * eh) +
                          4.0 * bh * lq;
    std::vector<ExpectedComm> fwd;
    if (two_d) {
      if (mdl.attention == model::AttentionKind::kLinear) {
        // Linear attention reduces the per-head (eh x eh) state across n2.
        fwd.push_back({Collective::AllReduce, CommGroup::TP2,
                       eps * B * (hkv / n1) * eh * eh});
      } else if (cfg.ring_attention) {
        // n2-1 P2P steps circulate both K and V shards around the ring.
        fwd.push_back({Collective::PointToPoint, CommGroup::TP2,
                       2.0 * vol_kv * (n2 - 1.0) / n2});
      } else {
        fwd.push_back({Collective::AllGather, CommGroup::TP2, vol_kv});
        fwd.push_back({Collective::AllGather, CommGroup::TP2, vol_kv});
      }
    }
    add("attention", stored, std::move(fwd));
  }
  add("out_proj", eps * B * lq * e / n1,
      {{Collective::ReduceScatter, CommGroup::TP1, vol_seq}});
  add("attn_dropout", kBytesPerMaskElement * ln_elems);
  add("attn_residual", 0.0);

  // --- MLP ---
  if (summa) {
    add("ln2", eps * ln_elems, {{Collective::AllReduce, CommGroup::TP1, vol_seq}});
  } else {
    add("ln2", eps * ln_elems, {{Collective::AllGather, CommGroup::TP1, vol_seq}});
  }
  // The SUMMA builder keeps the MLP dense (Table A2 has no MoE variant).
  if (mdl.is_moe() && !summa) {
    const double E = static_cast<double>(mdl.moe_experts);
    const double topk = static_cast<double>(mdl.moe_top_k);
    const double owned = ln_elems / e;        // tokens this GPU owns
    const double routed = B * lq * topk;      // tokens through the experts
    const double a2a = eps * owned * e * topk;
    add("moe_router", 0.0);
    add("moe_route_softmax", eps * owned * E);
    add("moe_dispatch", 0.0, {{Collective::AllToAll, CommGroup::DP, a2a}});
    add("moe_fc1", eps * routed * e);
    add("moe_gelu", eps * routed * f / n1);
    add("moe_fc2", eps * routed * f / n1,
        {{Collective::ReduceScatter, CommGroup::TP1, eps * B * lq * e * topk}});
    add("moe_combine", 0.0, {{Collective::AllToAll, CommGroup::DP, a2a}});
  } else if (summa) {
    add("mlp_fc1", eps * B * l * e / (n1 * n2),
        {{Collective::Broadcast, CommGroup::TP1, eps * B * l * e / n2},
         {Collective::Broadcast, CommGroup::TP2, eps * e * f / n1}});
    add("gelu", eps * B * lq * f / n1);
    add("mlp_fc2", eps * B * l * f / (n1 * n2),
        {{Collective::Broadcast, CommGroup::TP1, eps * B * l * f / n2},
         {Collective::Broadcast, CommGroup::TP2, eps * f * e / n1}});
  } else {
    add("mlp_fc1", eps * B * lq * e);
    add("gelu", eps * B * lq * f / n1);
    add("mlp_fc2", eps * B * lq * f / n1,
        {{Collective::ReduceScatter, CommGroup::TP1, vol_seq}});
  }
  add("mlp_dropout", kBytesPerMaskElement * ln_elems);
  add("mlp_residual", 0.0);
  return exp;
}

class Linter {
 public:
  Linter(const model::TransformerConfig& mdl,
         const parallel::ParallelConfig& cfg, std::int64_t local_microbatch,
         const parallel::LayerCost& layer, const LintOptions& opts)
      : mdl_(mdl), cfg_(cfg), b_(local_microbatch), layer_(layer),
        opts_(opts), sink_(opts.rules) {}

  LintReport run() {
    const bool aligned = check_sequence();
    if (aligned) {
      check_activations();
      check_collectives();
    }
    check_shape_chain();
    check_fwd_bwd_comm();
    check_fwd_bwd_flops();
    check_flop_invariance();
    check_pp_boundary();
    return sink_.take();
  }

 private:
  void emit(RuleId rule, std::string op, double expected, double actual,
            std::string message,
            std::optional<Severity> sev = std::nullopt) {
    sink_.emit(rule, std::move(op), expected, actual, std::move(message), sev);
  }

  bool check_sequence() {
    const auto exp = expected_ops(mdl_, cfg_, b_);
    bool aligned = layer_.ops.size() == exp.size();
    if (!aligned) {
      std::ostringstream msg;
      msg << "expected " << exp.size() << " ops, layer has "
          << layer_.ops.size();
      emit(RuleId::kOpSequence, "<layer>", static_cast<double>(exp.size()),
           static_cast<double>(layer_.ops.size()), msg.str());
      return false;
    }
    for (std::size_t i = 0; i < exp.size(); ++i) {
      if (layer_.ops[i].name != exp[i].name) {
        emit(RuleId::kOpSequence, layer_.ops[i].name, 0, 0,
             "op #" + std::to_string(i) + " is '" + layer_.ops[i].name +
                 "', expected '" + exp[i].name + "'");
        aligned = false;
      }
    }
    return aligned;
  }

  void check_activations() {
    const auto exp = expected_ops(mdl_, cfg_, b_);
    double exp_total = 0;
    for (std::size_t i = 0; i < exp.size(); ++i) {
      exp_total += exp[i].stored;
      const double actual = layer_.ops[i].stored_bytes.value();
      if (rel_diff(exp[i].stored, actual) > opts_.bytes_rtol) {
        std::ostringstream msg;
        msg << "op '" << exp[i].name << "' stores " << actual
            << " B, table prescribes " << exp[i].stored << " B";
        emit(RuleId::kActivationTerm, exp[i].name, exp[i].stored, actual, msg.str());
      }
    }
    const double actual_total = layer_.stored_bytes().value();
    if (rel_diff(exp_total, actual_total) > opts_.bytes_rtol) {
      std::ostringstream msg;
      msg << "block stores " << actual_total
          << " B total, activation partition sums to " << exp_total << " B";
      emit(RuleId::kActivationSum, "<layer>", exp_total, actual_total, msg.str());
    }
  }

  void check_collectives() {
    const auto exp = expected_ops(mdl_, cfg_, b_);
    for (std::size_t i = 0; i < exp.size(); ++i) {
      const auto& op = layer_.ops[i];
      if (op.fwd_comm.size() != exp[i].fwd.size()) {
        std::ostringstream msg;
        msg << "op '" << op.name << "' has " << op.fwd_comm.size()
            << " forward collectives, table prescribes " << exp[i].fwd.size();
        emit(RuleId::kCollectiveStructure, op.name,
             static_cast<double>(exp[i].fwd.size()),
             static_cast<double>(op.fwd_comm.size()), msg.str());
        continue;
      }
      for (std::size_t j = 0; j < exp[i].fwd.size(); ++j) {
        const auto& want = exp[i].fwd[j];
        const auto& got = op.fwd_comm[j];
        if (got.collective != want.coll || got.group != want.group) {
          std::ostringstream msg;
          msg << "op '" << op.name << "' collective #" << j << " is "
              << ops::to_string(got.collective) << " over "
              << ops::to_string(got.group) << ", table prescribes "
              << ops::to_string(want.coll) << " over "
              << ops::to_string(want.group);
          emit(RuleId::kCollectiveStructure, op.name, 0, 0, msg.str());
          continue;
        }
        if (rel_diff(want.bytes, got.bytes.value()) > opts_.bytes_rtol) {
          std::ostringstream msg;
          msg << "op '" << op.name << "' " << ops::to_string(want.coll)
              << " volume is " << got.bytes.value() << " B, table Vol is "
              << want.bytes << " B";
          emit(RuleId::kCollectiveVolume, op.name, want.bytes, got.bytes.value(),
               msg.str());
        }
      }
    }
  }

  void check_shape_chain() {
    for (std::size_t i = 0; i + 1 < layer_.ops.size(); ++i) {
      const auto& prod = layer_.ops[i];
      const auto& cons = layer_.ops[i + 1];
      if (prod.out_elems <= 0 || cons.in_elems <= 0) continue;  // unchecked
      if (rel_diff(prod.out_elems, cons.in_elems) > opts_.shape_rtol) {
        std::ostringstream msg;
        msg << "'" << prod.name << "' produces " << prod.out_elems
            << " elements but '" << cons.name << "' consumes "
            << cons.in_elems;
        emit(RuleId::kShapeChain, cons.name, prod.out_elems, cons.in_elems,
             msg.str());
      }
    }
  }

  void check_fwd_bwd_comm() {
    for (const auto& op : layer_.ops) {
      if (op.bwd_comm.size() == op.fwd_comm.size()) {
        for (std::size_t j = 0; j < op.fwd_comm.size(); ++j) {
          const auto& fr = op.fwd_comm[j];
          const auto& br = op.bwd_comm[j];
          if (br.collective != conjugate(fr.collective) ||
              br.group != fr.group) {
            std::ostringstream msg;
            msg << "op '" << op.name << "' backward collective #" << j
                << " is " << ops::to_string(br.collective) << " over "
                << ops::to_string(br.group) << ", conjugate of forward is "
                << ops::to_string(conjugate(fr.collective)) << " over "
                << ops::to_string(fr.group);
            emit(RuleId::kFwdBwdComm, op.name, 0, 0, msg.str());
          } else if (rel_diff(fr.bytes.value(), br.bytes.value()) >
                     opts_.bytes_rtol) {
            std::ostringstream msg;
            msg << "op '" << op.name << "' backward volume "
                << br.bytes.value() << " B != forward volume "
                << fr.bytes.value() << " B";
            emit(RuleId::kFwdBwdComm, op.name, fr.bytes.value(), br.bytes.value(),
                 msg.str());
          }
        }
      } else if (op.bwd_comm.size() == 2 * op.fwd_comm.size()) {
        // SUMMA multiplies: dA and dB are each a broadcast+reduce pair, so
        // the backward carries 2x the forward volume per group.
        for (CommGroup g : {CommGroup::TP1, CommGroup::TP2, CommGroup::DP,
                            CommGroup::PP}) {
          double fwd_vol = 0, bwd_vol = 0;
          for (const auto& r : op.fwd_comm)
            if (r.group == g) fwd_vol += r.bytes.value();
          for (const auto& r : op.bwd_comm)
            if (r.group == g) bwd_vol += r.bytes.value();
          if (rel_diff(2.0 * fwd_vol, bwd_vol) > opts_.bytes_rtol) {
            std::ostringstream msg;
            msg << "op '" << op.name << "' backward volume over "
                << ops::to_string(g) << " is " << bwd_vol
                << " B, expected 2x forward = " << 2.0 * fwd_vol << " B";
            emit(RuleId::kFwdBwdComm, op.name, 2.0 * fwd_vol, bwd_vol, msg.str());
          }
        }
      } else {
        std::ostringstream msg;
        msg << "op '" << op.name << "' has " << op.bwd_comm.size()
            << " backward collectives for " << op.fwd_comm.size()
            << " forward ones (expected equal, or 2x for SUMMA)";
        emit(RuleId::kFwdBwdComm, op.name,
             static_cast<double>(op.fwd_comm.size()),
             static_cast<double>(op.bwd_comm.size()), msg.str());
      }
    }
  }

  void check_fwd_bwd_flops() {
    for (const auto& op : layer_.ops) {
      if (op.fwd_flops.value() <= 0) continue;
      const double ratio = op.bwd_flops.value() / op.fwd_flops.value();
      // Matmuls: two backward multiplies (~2x, exactly 2.5x for fused
      // attention's recompute). Vector ops: same element count (~1x).
      const double lo = op.unit == ops::ComputeUnit::TensorCore ? 1.5 : 0.5;
      const double hi = op.unit == ops::ComputeUnit::TensorCore ? 3.0 : 1.5;
      if (ratio < lo || ratio > hi) {
        std::ostringstream msg;
        msg << "op '" << op.name << "' bwd/fwd FLOP ratio " << ratio
            << " outside [" << lo << ", " << hi << "] for "
            << ops::to_string(op.unit) << " ops";
        emit(RuleId::kFwdBwdFlops, op.name, lo, ratio, msg.str(),
             Severity::kWarning);
      }
    }
  }

  void check_flop_invariance() {
    // The SUMMA builder intentionally keeps a dense MLP for MoE models, so
    // the serial MoE baseline is not comparable.
    if (cfg_.strategy == parallel::TpStrategy::Summa2D && mdl_.is_moe())
      return;
    parallel::ParallelConfig serial = cfg_;
    serial.strategy = parallel::TpStrategy::TP1D;
    serial.n1 = 1;
    serial.n2 = 1;
    serial.ring_attention = false;
    const parallel::LayerCost base = parallel::build_layer_1d(mdl_, serial, b_);
    const double tp = static_cast<double>(cfg_.tp());
    const double fwd_scaled = tp * layer_.fwd_flops().value();
    const double bwd_scaled = tp * layer_.bwd_flops().value();
    if (rel_diff(base.fwd_flops().value(), fwd_scaled) > opts_.flop_rtol) {
      std::ostringstream msg;
      msg << "n1*n2 * per-GPU forward FLOPs = " << fwd_scaled
          << ", serial block = " << base.fwd_flops().value()
          << " (dimension splits must conserve work)";
      emit(RuleId::kFlopInvariance, "<layer>", base.fwd_flops().value(), fwd_scaled,
           msg.str());
    }
    if (rel_diff(base.bwd_flops().value(), bwd_scaled) > opts_.flop_rtol) {
      std::ostringstream msg;
      msg << "n1*n2 * per-GPU backward FLOPs = " << bwd_scaled
          << ", serial block = " << base.bwd_flops().value();
      emit(RuleId::kFlopInvariance, "<layer>", base.bwd_flops().value(), bwd_scaled,
           msg.str());
    }
  }

  void check_pp_boundary() {
    const double expected = kBytesPerElement * static_cast<double>(b_) *
                            static_cast<double>(mdl_.seq_len) *
                            static_cast<double>(mdl_.embed) /
                            (static_cast<double>(cfg_.n1) *
                             static_cast<double>(cfg_.n2));
    const double actual = layer_.pp_boundary_bytes.value();
    if (rel_diff(expected, actual) > opts_.bytes_rtol) {
      std::ostringstream msg;
      msg << "pipeline boundary is " << actual
          << " B, one (b,l,e)/(n1 n2) activation tensor is " << expected
          << " B";
      emit(RuleId::kPpBoundary, "<layer>", expected, actual, msg.str());
    }
  }

  const model::TransformerConfig& mdl_;
  const parallel::ParallelConfig& cfg_;
  std::int64_t b_;
  const parallel::LayerCost& layer_;
  LintOptions opts_;
  DiagnosticSink sink_;
};

}  // namespace

LintReport lint_layer(const model::TransformerConfig& mdl,
                      const parallel::ParallelConfig& cfg,
                      std::int64_t local_microbatch,
                      const parallel::LayerCost& layer,
                      const LintOptions& opts) {
  return Linter(mdl, cfg, local_microbatch, layer, opts).run();
}

LintReport lint_config(const model::TransformerConfig& mdl,
                       const parallel::ParallelConfig& cfg,
                       std::int64_t local_microbatch,
                       const LintOptions& opts) {
  const parallel::LayerCost layer =
      parallel::build_layer(mdl, cfg, local_microbatch);
  return lint_layer(mdl, cfg, local_microbatch, layer, opts);
}

void assert_layer_invariants(const model::TransformerConfig& mdl,
                             const parallel::ParallelConfig& cfg,
                             std::int64_t local_microbatch,
                             const parallel::LayerCost& layer) {
  const LintReport report = lint_layer(mdl, cfg, local_microbatch, layer);
  if (report.errors() > 0) {
    throw std::logic_error("layer invariants violated for " + cfg.describe() +
                           ":\n" + report.summary());
  }
}

LintReport lint_signature(const model::TransformerConfig& mdl,
                          const parallel::ParallelConfig& cfg,
                          const core::CostSignature& sig,
                          const parallel::LayerCost& layer,
                          const LintOptions& opts) {
  (void)mdl;
  DiagnosticSink sink(opts.rules);
  const auto diag = [&](RuleId rule, const std::string& op, double expected,
                        double actual, const std::string& what) {
    std::ostringstream msg;
    msg << what << ": expected " << expected << ", got " << actual;
    sink.emit(rule, op, expected, actual, msg.str());
  };
  const auto nonneg = [&](const std::string& op, double v,
                          const std::string& what) {
    if (v < 0) {
      diag(RuleId::kSignatureNonnegative, op, 0.0, v, what + " < 0");
    }
  };

  for (std::size_t i = 0; i < sig.ops.size(); ++i) {
    const core::SigOp& op = sig.ops[i];
    const std::string name = "op[" + std::to_string(i) + "]";
    nonneg(name, op.fwd_flops.value(), "fwd flops");
    nonneg(name, op.bwd_flops.value(), "bwd flops");
    nonneg(name, op.fwd_bytes.value(), "fwd bytes");
    nonneg(name, op.bwd_bytes.value(), "bwd bytes");
    if (op.panels < 1) {
      diag(RuleId::kSignatureNonnegative, name, 1.0,
           static_cast<double>(op.panels), "panels < 1");
    }
  }
  for (const core::SigComm& c : sig.comm) {
    nonneg("<comm>", c.bytes.value(), "collective volume");
  }
  nonneg("<layer>", sig.stored_activation_bytes.value(), "stored activations");
  nonneg("<layer>", sig.pp_boundary_bytes.value(), "pp boundary bytes");
  nonneg("<layer>", sig.weight_params, "weight params");
  nonneg("<mem>", sig.mem.weights.value(), "weight memory");
  nonneg("<mem>", sig.mem.gradients.value(), "gradient memory");
  nonneg("<mem>", sig.mem.optimizer.value(), "optimizer memory");
  nonneg("<mem>", sig.mem.activations.value(), "activation memory");

  if (sig.ops.size() != layer.ops.size()) {
    diag(RuleId::kSignatureOpCount, "<layer>",
         static_cast<double>(layer.ops.size()),
         static_cast<double>(sig.ops.size()), "op record count");
  }

  const auto match = [&](RuleId rule, const std::string& op, double expected,
                         double actual, const std::string& what) {
    if (rel_diff(expected, actual) > opts.bytes_rtol) {
      diag(rule, op, expected, actual, what);
    }
  };
  match(RuleId::kSignatureFlopTotal, "<layer>", layer.fwd_flops().value(),
        sig.fwd_flops().value(), "forward FLOP total");
  match(RuleId::kSignatureFlopTotal, "<layer>", layer.bwd_flops().value(),
        sig.bwd_flops().value(), "backward FLOP total");
  match(RuleId::kSignatureHbmTotal, "<layer>", layer.fwd_hbm_bytes().value(),
        sig.fwd_hbm_bytes().value(), "forward HBM total");
  match(RuleId::kSignatureHbmTotal, "<layer>", layer.bwd_hbm_bytes().value(),
        sig.bwd_hbm_bytes().value(), "backward HBM total");
  for (CommGroup g : {CommGroup::TP1, CommGroup::TP2, CommGroup::DP,
                      CommGroup::PP}) {
    const auto gi = static_cast<std::size_t>(g);
    match(RuleId::kSignatureCommVolume,
          "<group " + std::to_string(gi) + ">",
          layer.fwd_comm_bytes(g).value(), sig.fwd_comm_volume[gi].value(),
          "forward collective volume");
    match(RuleId::kSignatureCommVolume,
          "<group " + std::to_string(gi) + ">",
          layer.bwd_comm_bytes(g).value(), sig.bwd_comm_volume[gi].value(),
          "backward collective volume");
  }
  match(RuleId::kSignatureStoredBytes, "<layer>",
        layer.stored_bytes().value(), sig.stored_activation_bytes.value(),
        "stored activation bytes");
  match(RuleId::kSignaturePpBoundary, "<layer>",
        layer.pp_boundary_bytes.value(), sig.pp_boundary_bytes.value(),
        "pipeline boundary bytes");

  (void)cfg;
  return sink.take();
}

LintReport lint_topology(const hw::Topology& topo, std::int64_t n_gpus,
                         const LintOptions& opts) {
  DiagnosticSink sink(opts.rules);
  if (topo.empty()) {
    return sink.take();  // Resolves to the canonical two-level fabric.
  }
  const auto diag = [&](RuleId rule, const std::string& op, double expected,
                        double actual, const std::string& what,
                        Severity sev) {
    std::ostringstream msg;
    msg << what << ": expected " << expected << ", got " << actual;
    sink.emit(rule, op, expected, actual, msg.str(), sev);
  };

  if (topo.depth() > hw::Topology::kMaxDepth) {
    diag(RuleId::kTopologyDepth, "<topology>",
         static_cast<double>(hw::Topology::kMaxDepth),
         static_cast<double>(topo.depth()), "fabric depth over kMaxDepth",
         Severity::kError);
  }

  bool shape_ok = true;
  for (std::size_t i = 0; i < topo.levels.size(); ++i) {
    const hw::FabricLevel& lvl = topo.levels[i];
    const std::string name =
        lvl.name.empty() ? "level[" + std::to_string(i) + "]" : lvl.name;
    if (lvl.latency < Seconds(0)) {
      diag(RuleId::kTopologyPositive, name, 0.0, lvl.latency.value(),
           "negative hop latency", Severity::kError);
      shape_ok = false;
    }
    if (!(lvl.bandwidth > BytesPerSec(0))) {
      diag(RuleId::kTopologyPositive, name, 0.0, lvl.bandwidth.value(),
           "link bandwidth must be > 0", Severity::kError);
      shape_ok = false;
    }
    if (!(lvl.rails > 0.0)) {
      diag(RuleId::kTopologyPositive, name, 1.0, lvl.rails,
           "rail count must be > 0", Severity::kError);
      shape_ok = false;
    }
    if (lvl.oversubscription < 1.0) {
      diag(RuleId::kTopologyPositive, name, 1.0, lvl.oversubscription,
           "oversubscription ratio below 1", Severity::kError);
      shape_ok = false;
    }
  }

  // Fan-in coverage: the product of bounded fan-ins is the GPU count the
  // fabric can host. An unbounded top level (fan_in <= 0) covers any count.
  if (n_gpus > 0) {
    bool unbounded = false;
    std::int64_t capacity = 1;
    for (const hw::FabricLevel& lvl : topo.levels) {
      if (lvl.fan_in <= 0) {
        unbounded = true;
        break;
      }
      capacity *= lvl.fan_in;
    }
    if (!unbounded && capacity < n_gpus) {
      diag(RuleId::kTopologyFanIn, "<topology>", static_cast<double>(n_gpus),
           static_cast<double>(capacity),
           "fan-in product smaller than the GPU count", Severity::kError);
    } else if (!unbounded && capacity > n_gpus) {
      diag(RuleId::kTopologyFanIn, "<topology>", static_cast<double>(n_gpus),
           static_cast<double>(capacity),
           "fan-in product exceeds the GPU count (fabric oversized)",
           Severity::kWarning);
    }
  }

  // Per-member tier bandwidth should not increase outward: an outer level
  // faster than an inner one is legal in the model but almost always means
  // swapped levels or a units typo in the spec.
  if (shape_ok) {
    for (std::size_t i = 1; i < topo.levels.size(); ++i) {
      const hw::FabricLevel& lvl = topo.levels[i];
      const double inner =
          i == 1 ? (topo.levels[0].bandwidth * topo.efficiency).value()
                 : (topo.levels[i - 1].bandwidth *
                    (topo.levels[i - 1].rails * topo.efficiency))
                       .value();
      const double outer =
          (lvl.bandwidth * (lvl.rails * topo.efficiency)).value();
      if (outer > inner) {
        diag(RuleId::kTopologyMonotoneBw,
             lvl.name.empty() ? "level[" + std::to_string(i) + "]" : lvl.name,
             inner, outer,
             "per-member bandwidth increases outward across this level",
             Severity::kWarning);
      }
    }
  }
  return sink.take();
}

LintReport lint_placement(const comm::GroupPlacement& g,
                          const LintOptions& opts) {
  DiagnosticSink sink(opts.rules);
  if (auto why = comm::invalid_placement_reason(g)) {
    std::ostringstream msg;
    msg << *why << " (size=" << g.size << ", nvs=" << g.nvs << ")";
    sink.emit(RuleId::kPlacementValid, "<placement>",
              static_cast<double>(g.size), static_cast<double>(g.nvs),
              msg.str());
  }
  return sink.take();
}

LintReport lint_placement(const hw::Topology& topo,
                          const comm::GroupPlacement& g,
                          const LintOptions& opts) {
  DiagnosticSink sink(opts.rules);
  sink.merge(lint_placement(g, opts));
  const std::int64_t leaf = topo.leaf_fan_in();
  if (leaf > 0 && g.nvs > leaf) {
    std::ostringstream msg;
    msg << "fast-domain span nvs=" << g.nvs
        << " exceeds the fabric's leaf fan-in " << leaf
        << " (group size " << g.size << ")";
    sink.emit(RuleId::kPlacementLeafFanIn, "<placement>",
              static_cast<double>(leaf), static_cast<double>(g.nvs),
              msg.str());
  }
  return sink.take();
}

}  // namespace tfpe::analysis
