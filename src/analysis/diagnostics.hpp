#pragma once
// Diagnostics engine shared by every lint pass: the central rule registry
// (stable machine-readable IDs, default severities, one-line meanings), the
// Diagnostic record, per-rule enable/suppress configuration, the
// DiagnosticSink the passes emit through, and renderers for human text,
// JSON and SARIF 2.1 output (`tfpe lint --format=...`).
//
// Every invariant checked anywhere in the codebase registers exactly one
// RuleId here. The stable code ("TFPE-SIG-003") is the external contract —
// CI annotations, suppression lists and the SARIF rule index key on it —
// while the short name ("signature-flop-total") stays the human mnemonic.
// Adding a rule means adding an enumerator AND a registry row (the table is
// static_assert-checked against kRuleCount); never renumber existing codes.
//
// This header is intentionally dependency-free (standard library only) so
// the negative-compile tests and every layer of the library can include it.

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tfpe::analysis {

enum class Severity {
  kWarning,  ///< Suspicious but heuristic (e.g. bwd/fwd FLOP ratio range).
  kError,    ///< A conservation law is violated; the artifact is wrong.
};

std::string to_string(Severity s);

/// Every registered lint rule, grouped by family. The enumerator order is
/// the registry order; codes are stable and never reused.
enum class RuleId : std::uint8_t {
  // TFPE-OP: op-graph conservation laws (Tables I / II / A2).
  kOpSequence,
  kFlopInvariance,
  kActivationTerm,
  kActivationSum,
  kCollectiveStructure,
  kCollectiveVolume,
  kShapeChain,
  kFwdBwdComm,
  kFwdBwdFlops,
  kPpBoundary,
  // TFPE-SIG: compiled CostSignature vs the layer it lowered from.
  kSignatureNonnegative,
  kSignatureOpCount,
  kSignatureFlopTotal,
  kSignatureHbmTotal,
  kSignatureCommVolume,
  kSignatureStoredBytes,
  kSignaturePpBoundary,
  // TFPE-TOPO: fabric topology sanity.
  kTopologyDepth,
  kTopologyPositive,
  kTopologyFanIn,
  kTopologyMonotoneBw,
  // TFPE-PLACE: collective group placements.
  kPlacementValid,
  kPlacementLeafFanIn,
  // TFPE-BATCH: SoA lowering soundness (batched engine vs scalar pool).
  kBatchedShape,
  kBatchedPanelScale,
  kBatchedPriceRow,
  kBatchedGroupMask,
  kBatchedSummaOps,
  kBatchedScratchShape,
  // TFPE-SWEEP: sweep-plan / cache-key soundness.
  kSweepOptions,
  kSweepCacheKey,
  kSweepWarmChain,
  // TFPE-SYS: hardware description sanity.
  kSystemCompute,
  kSystemNetwork,
  kSystemDomain,
  kSystemHbmFloor,
  // TFPE-CFG: config-file schema (line-accurate locations).
  kConfigParse,
  kConfigUnknownSection,
  kConfigUnknownKey,
  kConfigValue,
  kConfigListLength,
  kConfigMissingKey,
  // TFPE-CODESIGN: [codesign] shape-family options (io/config_lint.cpp).
  kCodesignBudget,
  kCodesignAxis,
  kCodesignEmptyFamily,
  // TFPE-SERVE: [serving] evaluator feasibility (io/config_lint.cpp).
  kServeKvBudget,
  kServeBatchCap,
};

inline constexpr std::size_t kRuleCount = 47;

/// One registry row: the stable code, the short mnemonic name, the default
/// severity and the one-line meaning (surfaced in docs and SARIF).
struct RuleInfo {
  RuleId id = RuleId::kOpSequence;
  std::string_view code;     ///< Stable machine ID, e.g. "TFPE-OP-006".
  std::string_view name;     ///< Short mnemonic, e.g. "collective-volume".
  Severity default_severity = Severity::kError;
  std::string_view summary;  ///< One-line meaning of a firing.
};

/// The registry row for `id` (O(1); the table is indexed by enumerator).
const RuleInfo& rule_info(RuleId id);

/// All registered rules in enumerator order.
const std::array<RuleInfo, kRuleCount>& all_rules();

/// Lookup by stable code ("TFPE-OP-006") or short name ("collective-volume").
std::optional<RuleId> find_rule(std::string_view code_or_name);

/// One violated invariant, tied to the registered rule that derived it and
/// a structured location: the op / fabric level / comm group it fired on,
/// plus a file:line source reference for config-schema diagnostics.
struct Diagnostic {
  RuleId id = RuleId::kOpSequence;
  std::string rule;     ///< Short rule name, always rule_info(id).name.
  std::string op;       ///< Op/level/group anchor, "<layer>" for aggregates.
  double expected = 0;  ///< Value the invariant prescribes.
  double actual = 0;    ///< Value found in the checked artifact.
  std::string message;  ///< Human-readable explanation with units.
  Severity severity = Severity::kError;
  std::string file;     ///< Source config file; empty = not file-anchored.
  int line = 0;         ///< 1-based line in `file`; 0 = none.

  /// The stable code of this diagnostic's rule.
  std::string_view code() const { return rule_info(id).code; }
};

/// Per-rule enable/suppress switches applied at emission time.
struct RuleConfig {
  std::array<bool, kRuleCount> enabled;

  RuleConfig() { enabled.fill(true); }
  void enable(RuleId id) { enabled[static_cast<std::size_t>(id)] = true; }
  void disable(RuleId id) { enabled[static_cast<std::size_t>(id)] = false; }
  bool is_enabled(RuleId id) const {
    return enabled[static_cast<std::size_t>(id)];
  }
  /// Disable by code or name; false when the rule is unknown.
  bool suppress(std::string_view code_or_name);
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;

  bool clean() const { return diagnostics.empty(); }
  std::size_t errors() const;
  std::size_t warnings() const;
  /// Multi-line human report: one line per diagnostic plus a trailing count
  /// line (the text renderer; JSON/SARIF renderers live alongside).
  std::string summary() const;
};

/// Collects diagnostics for one lint pass, applying the per-rule
/// enable/suppress switches and filling severity + rule name from the
/// registry. Passes emit through a sink instead of pushing raw vectors.
class DiagnosticSink {
 public:
  DiagnosticSink() = default;
  explicit DiagnosticSink(RuleConfig rules) : rules_(rules) {}

  bool enabled(RuleId id) const { return rules_.is_enabled(id); }

  /// Emit one diagnostic; severity defaults to the registry's, the rule
  /// name is always taken from the registry. Dropped when suppressed.
  void emit(RuleId id, std::string op, double expected, double actual,
            std::string message,
            std::optional<Severity> severity = std::nullopt,
            std::string file = {}, int line = 0);

  /// Append another pass's report, re-applying this sink's suppressions.
  void merge(LintReport other);

  const LintReport& report() const { return report_; }
  LintReport take() { return std::move(report_); }

 private:
  RuleConfig rules_;
  LintReport report_;
};

/// Renderers for `tfpe lint --format=...`. All pure.
std::string render_text(const LintReport& report);
/// Single JSON object: {"tool", "schema_version", counts, "diagnostics"}.
std::string render_json(const LintReport& report);
/// SARIF 2.1.0 log with the full rule registry as tool.driver.rules and one
/// result per diagnostic (uploadable to the GitHub code-scanning API).
std::string render_sarif(const LintReport& report);

}  // namespace tfpe::analysis
