#pragma once
// Cross-layer consistency passes over the two-phase/batched pipeline. The
// op-graph linter (analysis/invariants.hpp) audits the layer builders;
// these passes audit everything compiled FROM a layer: the batched SoA
// lowering, the per-sweep scratch tables and the hardware descriptions the
// signatures are bound against. All pure; debug builds run the batched
// checks inside bind_system_batched / time_placements_batch.
//
//   batched-shape         every SoA array mirrors the AoS signature slot
//                         for slot (sizes, values, comm begin/count ranges)
//   batched-panel-scale   comm_panel_bytes is bitwise req.bytes * (1 /
//                         panels) of the owning op — the exact product the
//                         scalar exposed_comm feeds to collective_time
//   batched-price-row     the pricing-row dedup preserves the request
//                         multiset: every request maps to a row whose
//                         representative carries the identical (collective,
//                         group, volume-bits) triple, and each row maps
//                         back to itself
//   batched-group-mask    comm_groups_mask has bit g set iff some request
//                         targets group g
//   batched-summa-ops     summa_ops lists exactly the ops with panels > 1,
//                         in op order
//   batched-scratch-shape BatchScratch row offsets / table cells / column
//                         indices agree with the signature and batch shape
//   system-compute        GPU rates, HBM bandwidth/capacity positive,
//                         kernel latency non-negative
//   system-network        link bandwidths positive, latencies non-negative,
//                         NIC rails positive, efficiency in (0, 1]
//   system-domain         n_gpus >= 1, nvs_domain >= 1 and divides n_gpus,
//                         host link positive
//   system-hbm-floor      the signature's static residency (weights +
//                         gradients + optimizer) alone overflows HBM — no
//                         recompute or offload setting can save this bind

#include <cstddef>

#include "analysis/invariants.hpp"
#include "core/batched_signature.hpp"
#include "core/cost_signature.hpp"
#include "hw/system.hpp"

namespace tfpe::analysis {

/// Lint a SoA lowering against the signature it was packed from
/// (batched-shape, -panel-scale, -price-row, -group-mask, -summa-ops).
LintReport lint_batched(const core::CostSignature& sig,
                        const core::BatchedSignature& bat,
                        const LintOptions& opts = {});

/// Lint a populated BatchScratch against the batch that filled it
/// (batched-scratch-shape). `n_placements` is the placement count of the
/// time_placements_batch call that last used the scratch.
LintReport lint_batch_scratch(const core::BatchedSignature& bat,
                              const core::BatchScratch& scratch,
                              std::size_t n_placements,
                              const LintOptions& opts = {});

/// Lint a hardware description (system-compute, -network, -domain) and its
/// resolved fabric (merges lint_topology).
LintReport lint_system(const hw::SystemConfig& sys,
                       const LintOptions& opts = {});

/// System lint plus the signature-aware HBM floor (system-hbm-floor).
LintReport lint_system(const hw::SystemConfig& sys,
                       const core::CostSignature& sig,
                       const LintOptions& opts = {});

/// Debug-build hook: throws std::logic_error with the report summary when
/// the lowering violates any error-severity batched invariant.
void assert_batched_invariants(const core::CostSignature& sig,
                               const core::BatchedSignature& bat);

}  // namespace tfpe::analysis
